package lbrm_test

import (
	"testing"
	"time"

	"lbrm"
	"lbrm/internal/obs"
	"lbrm/internal/wire"
)

// Flight-recorder integration tests: drive each recovery branch through
// the in-memory testbed, then stitch the receivers' flight rings against
// every server-side ring and assert the reconstructed chains tell the
// right story — exactly one terminal per sequence, the expected recovery
// path, completeness and causal ordering (DESIGN.md §10).

// flightServerRings snapshots every server-side flight ring in the
// testbed: sender, primary, replicas and all site secondaries.
func flightServerRings(tb *lbrm.Testbed) [][]obs.Event {
	var rings [][]obs.Event
	if tb.SenderCfg.Obs != nil {
		rings = append(rings, tb.SenderCfg.Obs.FlightRing().Snapshot())
	}
	if tb.PrimaryCfg.Obs != nil {
		rings = append(rings, tb.PrimaryCfg.Obs.FlightRing().Snapshot())
	}
	for _, rc := range tb.ReplicaCfgs {
		if rc.Obs != nil {
			rings = append(rings, rc.Obs.FlightRing().Snapshot())
		}
	}
	for _, s := range tb.Sites {
		if s.SecondaryCfg.Obs != nil {
			rings = append(rings, s.SecondaryCfg.Obs.FlightRing().Snapshot())
		}
	}
	return rings
}

// stitchReceiver reconstructs one receiver's recovery chains.
func stitchReceiver(tb *lbrm.Testbed, site, idx int) map[uint64]*obs.FlightChain {
	return obs.StitchFlights(
		tb.Sites[site].ReceiverCfgs[idx].Obs.FlightRing().Snapshot(),
		flightServerRings(tb)...)
}

// rcvRef names one receiver in the testbed.
type rcvRef struct{ site, idx int }

// TestFlightRecorderBranches enumerates every recovery branch and checks
// the stitched chain for the lost sequence at each affected receiver.
func TestFlightRecorderBranches(t *testing.T) {
	tests := []struct {
		name string
		// drive runs the scenario and returns the testbed, the lost
		// sequence number and the receivers that lost it.
		drive func(t *testing.T) (*lbrm.Testbed, uint64, []rcvRef)

		terminal      obs.Kind
		path          wire.RecoveryPath
		detected      bool
		hbRevealed    bool
		abandonReason uint64
		wantNack      bool // the chain must include at least one NACK
		wantServe     bool // the chain must resolve a serving repair
		wantStatMiss  bool // the chain must include the sender's stat-miss
	}{
		{
			name: "local hit: site secondary serves the repair",
			drive: func(t *testing.T) (*lbrm.Testbed, uint64, []rcvRef) {
				tb := newFlightTB(t, lbrm.TestbedConfig{
					Seed: 41, Sites: 2, ReceiversPerSite: 3,
					Sender:    lbrm.SenderConfig{Heartbeat: fastHB},
					Receiver:  lbrm.ReceiverConfig{NackDelay: 10 * time.Millisecond},
					Secondary: lbrm.SecondaryConfig{NackDelay: 10 * time.Millisecond},
				})
				tb.Send([]byte("warm"))
				tb.Run(200 * time.Millisecond)
				tb.Sites[0].ReceiverNodes[0].DownLink().SetLoss(&lbrm.FirstN{N: 1})
				tb.Send([]byte("lost"))
				tb.Run(2 * time.Second)
				return tb, 2, []rcvRef{{0, 0}}
			},
			terminal: obs.KindDeliver, path: wire.PathLocal,
			detected: true, hbRevealed: true, wantNack: true, wantServe: true,
		},
		{
			name: "primary callback: dead secondary, receiver escalates",
			drive: func(t *testing.T) (*lbrm.Testbed, uint64, []rcvRef) {
				tb := newFlightTB(t, lbrm.TestbedConfig{
					Seed: 42, Sites: 1, ReceiversPerSite: 3,
					Sender: lbrm.SenderConfig{Heartbeat: fastHB},
					Receiver: lbrm.ReceiverConfig{
						NackDelay: 10 * time.Millisecond, RequestTimeout: 100 * time.Millisecond,
						SecondaryRetries: 2,
					},
				})
				tb.Send([]byte("warm"))
				tb.Run(300 * time.Millisecond)
				gate := &lbrm.Gate{Down: true}
				tb.Sites[0].SecondaryNode.UpLink().SetLoss(gate)
				tb.Sites[0].SecondaryNode.DownLink().SetLoss(gate)
				tb.Sites[0].ReceiverNodes[0].DownLink().SetLoss(&lbrm.FirstN{N: 1})
				tb.Send([]byte("lost"))
				tb.Run(5 * time.Second)
				return tb, 2, []rcvRef{{0, 0}}
			},
			terminal: obs.KindDeliver, path: wire.PathPrimaryCallback,
			detected: true, hbRevealed: true, wantNack: true, wantServe: true,
		},
		{
			name: "multicast retrans: missing statistical ACK re-multicast",
			drive: func(t *testing.T) (*lbrm.Testbed, uint64, []rcvRef) {
				tb := newFlightTB(t, lbrm.TestbedConfig{
					Seed: 43, Sites: 5, ReceiversPerSite: 4,
					Sender: lbrm.SenderConfig{
						Heartbeat: lbrm.HeartbeatParams{HMin: 2 * time.Second, HMax: 16 * time.Second, Backoff: 2},
						StatAck: lbrm.StatAckConfig{
							Enabled: true, K: 5, EpochInterval: time.Minute,
							RTT:       lbrm.RTTConfig{Initial: 120 * time.Millisecond},
							GroupSize: lbrm.GroupSizeConfig{Initial: 5},
						},
					},
					// Receivers must not be the ones doing the repairing.
					Receiver:  lbrm.ReceiverConfig{NackDelay: 10 * time.Second},
					Secondary: lbrm.SecondaryConfig{NackDelay: 10 * time.Second},
				})
				tb.Run(2 * time.Second) // epoch establishes
				tb.Send([]byte("warm"))
				tb.Run(time.Second)
				tb.SourceSite.TailUp().SetLoss(&lbrm.FirstN{N: 1})
				tb.Send([]byte("wide-loss"))
				tb.Run(1500 * time.Millisecond)
				var victims []rcvRef
				for s := range tb.Sites {
					for j := range tb.Sites[s].Receivers {
						victims = append(victims, rcvRef{s, j})
					}
				}
				return tb, 2, victims
			},
			// The re-multicast beats every detector: slow heartbeats mean
			// no receiver notices the gap before the repair lands.
			terminal: obs.KindDeliver, path: wire.PathSourceMulticast,
			detected: false, wantServe: true, wantStatMiss: true,
		},
		{
			name: "abandon: total log failure exhausts escalation",
			drive: func(t *testing.T) (*lbrm.Testbed, uint64, []rcvRef) {
				tb := newFlightTB(t, lbrm.TestbedConfig{
					Seed: 44, Sites: 1, ReceiversPerSite: 1,
					Sender: lbrm.SenderConfig{Heartbeat: fastHB},
					Receiver: lbrm.ReceiverConfig{
						NackDelay: 10 * time.Millisecond, RequestTimeout: 100 * time.Millisecond,
						SecondaryRetries: 1, PrimaryRetries: 1,
					},
				})
				tb.Send([]byte("warm"))
				tb.Run(300 * time.Millisecond)
				gate := &lbrm.Gate{Down: true}
				tb.PrimaryNode.UpLink().SetLoss(gate)
				tb.PrimaryNode.DownLink().SetLoss(gate)
				tb.Sites[0].SecondaryNode.UpLink().SetLoss(gate)
				tb.Sites[0].SecondaryNode.DownLink().SetLoss(gate)
				tb.Sites[0].ReceiverNodes[0].DownLink().SetLoss(&lbrm.FirstN{N: 1})
				tb.Send([]byte("unrecoverable"))
				tb.Run(10 * time.Second)
				return tb, 2, []rcvRef{{0, 0}}
			},
			terminal: obs.KindAbandon, path: wire.PathNone,
			detected: true, hbRevealed: true, abandonReason: 0, wantNack: true,
		},
		{
			name: "abandon: recovery-window skip-ahead",
			drive: func(t *testing.T) (*lbrm.Testbed, uint64, []rcvRef) {
				tb := newFlightTB(t, lbrm.TestbedConfig{
					Seed: 45, Sites: 1, ReceiversPerSite: 1,
					Sender: lbrm.SenderConfig{Heartbeat: fastHB},
					// NACK machinery effectively off: the stream outruns
					// the tiny recovery window before any NACK fires.
					Receiver: lbrm.ReceiverConfig{NackDelay: 10 * time.Second, RecoveryWindow: 2},
				})
				tb.Send([]byte("warm"))
				tb.Run(200 * time.Millisecond)
				tb.Sites[0].ReceiverNodes[0].DownLink().SetLoss(&lbrm.FirstN{N: 1})
				tb.Send([]byte("lost"))
				tb.Run(100 * time.Millisecond)
				tb.Send([]byte("three"))
				tb.Run(100 * time.Millisecond)
				tb.Send([]byte("four"))
				tb.Run(time.Second)
				return tb, 2, []rcvRef{{0, 0}}
			},
			terminal: obs.KindAbandon, path: wire.PathNone,
			detected: true, hbRevealed: true, abandonReason: 1,
		},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			tb, seq, victims := tc.drive(t)
			for _, v := range victims {
				chains := stitchReceiver(tb, v.site, v.idx)
				c := chains[seq]
				if c == nil {
					t.Fatalf("receiver %d/%d: no chain for seq %d (chains: %d)",
						v.site, v.idx, seq, len(chains))
				}
				if c.TerminalCount != 1 {
					t.Fatalf("receiver %d/%d seq %d: %d terminals, want exactly 1\nevents: %+v",
						v.site, v.idx, seq, c.TerminalCount, c.Events)
				}
				if c.Terminal != tc.terminal || c.Path != tc.path {
					t.Fatalf("receiver %d/%d seq %d: terminal %v path %v, want %v/%v",
						v.site, v.idx, seq, c.Terminal, c.Path, tc.terminal, tc.path)
				}
				if c.Detected() != tc.detected {
					t.Fatalf("receiver %d/%d seq %d: detected=%v, want %v",
						v.site, v.idx, seq, c.Detected(), tc.detected)
				}
				if tc.detected && c.HeartbeatRevealed != tc.hbRevealed {
					t.Fatalf("receiver %d/%d seq %d: heartbeatRevealed=%v, want %v",
						v.site, v.idx, seq, c.HeartbeatRevealed, tc.hbRevealed)
				}
				if c.Terminal == obs.KindAbandon && c.AbandonReason != tc.abandonReason {
					t.Fatalf("receiver %d/%d seq %d: abandon reason %d, want %d",
						v.site, v.idx, seq, c.AbandonReason, tc.abandonReason)
				}
				if tc.wantNack && c.NackCount == 0 {
					t.Fatalf("receiver %d/%d seq %d: chain has no NACK", v.site, v.idx, seq)
				}
				if tc.wantServe && c.ServeAt == 0 {
					t.Fatalf("receiver %d/%d seq %d: chain has no serving repair\nevents: %+v",
						v.site, v.idx, seq, c.Events)
				}
				if tc.wantStatMiss && !chainHas(c, obs.KindStatMiss) {
					t.Fatalf("receiver %d/%d seq %d: chain missing the sender's stat-miss\nevents: %+v",
						v.site, v.idx, seq, c.Events)
				}
				if !c.Complete() {
					t.Fatalf("receiver %d/%d seq %d: chain incomplete\nevents: %+v",
						v.site, v.idx, seq, c.Events)
				}
				if !c.CausallyOrdered() {
					t.Fatalf("receiver %d/%d seq %d: hops out of causal order "+
						"(detect=%d nack=%d serve=%d terminal=%d)",
						v.site, v.idx, seq, c.DetectAt, c.NackAt, c.ServeAt, c.TerminalAt)
				}
				// A detected delivery's embedded latency must agree with
				// the hop timestamps it was computed from.
				if c.Terminal == obs.KindDeliver && tc.detected {
					d, ok := c.DetectToDeliver()
					if !ok || d != c.DeliverLatency {
						t.Fatalf("receiver %d/%d seq %d: DetectToDeliver=%v ok=%v vs DeliverLatency=%v",
							v.site, v.idx, seq, d, ok, c.DeliverLatency)
					}
				}
				// The E22 dataset: per-hop breakdown for this branch.
				if v == victims[0] {
					dn, _ := c.DetectToNack()
					ns, _ := c.NackToServe()
					sd, _ := c.ServeToDeliver()
					t.Logf("path=%s detect→nack=%v nack→serve=%v serve→deliver=%v detect→deliver=%v",
						c.Path, dn, ns, sd, c.DeliverLatency)
				}
			}
			// Sweep every receiver in the fleet: no chain anywhere may hold
			// more than one terminal for a sequence.
			for s := range tb.Sites {
				for j := range tb.Sites[s].Receivers {
					for q, c := range stitchReceiver(tb, s, j) {
						if c.TerminalCount > 1 {
							t.Fatalf("receiver %d/%d seq %d: %d terminals", s, j, q, c.TerminalCount)
						}
					}
				}
			}
		})
	}
}

// chainHas reports whether the chain's event list includes kind k.
func chainHas(c *obs.FlightChain, k obs.Kind) bool {
	for _, ev := range c.Events {
		if ev.Kind == k {
			return true
		}
	}
	return false
}

// newFlightTB builds a testbed or fails the test.
func newFlightTB(t *testing.T, cfg lbrm.TestbedConfig) *lbrm.Testbed {
	t.Helper()
	tb, err := lbrm.NewTestbed(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return tb
}
