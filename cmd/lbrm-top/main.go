// Command lbrm-top is the fleet observability scraper (DESIGN.md §15):
// it polls every daemon's exposition endpoint, merges the snapshots into
// per-target time-series, runs the fleet health engine over them (the
// crying-baby rule needs exactly this cross-site view), and renders a
// live per-site health table. With -serve it also exposes the merged
// state as a JSON control-plane API on the standard obs mux.
//
// Usage:
//
//	lbrm-top -targets localhost:9301,localhost:9302,localhost:9303
//	lbrm-top -targets localhost:9301 -once -strict -json
package main

import (
	"flag"
	"fmt"
	"net/http"
	"os"
	"strings"
	"time"

	"lbrm/internal/obs"
	"lbrm/internal/obs/fleet"
	"lbrm/internal/obs/health"
)

func main() {
	var (
		targetsFlag = flag.String("targets", "", "comma-separated daemon metrics addresses (host:port)")
		every       = flag.Duration("every", 2*time.Second, "scrape interval")
		once        = flag.Bool("once", false, "scrape once, print, exit (non-zero if any target is down or any alert fires)")
		strict      = flag.Bool("strict", false, "also fetch /metrics/prom from every target and fail on parse errors")
		serveAddr   = flag.String("serve", "", "serve the merged fleet state on this address (/fleet, /metrics, /metrics/prom)")
		jsonOut     = flag.Bool("json", false, "print the fleet report as JSON instead of a table")
	)
	flag.Parse()

	targets := splitTargets(*targetsFlag)
	if len(targets) == 0 {
		fmt.Fprintln(os.Stderr, "lbrm-top: -targets is required (e.g. -targets localhost:9301,localhost:9302)")
		os.Exit(2)
	}

	// The scraper's own metrics ride the same obs sink machinery as the
	// daemons it watches, so -serve exposes both layers at once.
	sink := obs.NewSink()
	cfg := health.Defaults()
	cfg.EvalEvery = *every
	sc := fleet.NewScraper(targets, cfg, sink)

	if *serveAddr != "" {
		mux := http.NewServeMux()
		mux.Handle("/metrics", obs.Handler(sink))
		mux.Handle("/metrics/prom", obs.PromHandler(sink))
		mux.Handle("/metrics/runtime", obs.RuntimeHandler())
		mux.Handle("/metrics/health", fleet.HealthHandler(sc.Engine()))
		mux.Handle("/fleet", sc.FleetHandler(func() int64 { return time.Now().UnixNano() }))
		go func() {
			if err := http.ListenAndServe(*serveAddr, mux); err != nil {
				fmt.Fprintf(os.Stderr, "lbrm-top: serve: %v\n", err)
				os.Exit(1)
			}
		}()
		fmt.Fprintf(os.Stderr, "lbrm-top: fleet API on http://%s/fleet\n", *serveAddr)
	}

	exitCode := 0
	scrape := func() fleet.Report {
		now := time.Now().UnixNano()
		sc.ScrapeOnce(now)
		if *strict {
			for _, t := range targets {
				if n, err := sc.ValidatePromOne(t); err != nil {
					fmt.Fprintf(os.Stderr, "lbrm-top: prom validation %s: %v\n", t, err)
					exitCode = 1
				} else if *once {
					fmt.Fprintf(os.Stderr, "lbrm-top: prom validation %s: %d families ok\n", t, n)
				}
			}
		}
		return sc.Report(now)
	}

	render := func(rep fleet.Report) {
		if *jsonOut {
			fmt.Println(fleet.ReportJSON(rep))
			return
		}
		fleet.WriteTable(os.Stdout, rep)
	}

	if *once {
		rep := scrape()
		render(rep)
		for _, tr := range rep.Targets {
			if !tr.Up {
				exitCode = 1
			}
		}
		if len(rep.Active) > 0 {
			exitCode = 1
		}
		os.Exit(exitCode)
	}

	for {
		rep := scrape()
		if !*jsonOut {
			// Poor man's live view: clear + home, then redraw.
			fmt.Print("\x1b[2J\x1b[H")
			fmt.Printf("lbrm-top  %s  targets=%d  interval=%v\n\n",
				time.Now().Format(time.TimeOnly), len(targets), *every)
		}
		render(rep)
		time.Sleep(*every)
	}
}

func splitTargets(s string) []string {
	var out []string
	for _, t := range strings.Split(s, ",") {
		if t = strings.TrimSpace(t); t != "" {
			out = append(out, t)
		}
	}
	return out
}
