// Command lbrm-perf runs the hot-datapath micro-benchmarks (internal/perf)
// outside `go test` and writes the results as JSON, so the performance
// trajectory of the datapath is recorded in-repo across changes
// (BENCH_1.json for this revision; later revisions append _2, _3, ...).
//
// Usage:
//
//	lbrm-perf              # writes BENCH_1.json
//	lbrm-perf -o -         # prints JSON to stdout
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"testing"
	"time"

	"lbrm/internal/obs"
	"lbrm/internal/perf"
)

type result struct {
	Name        string  `json:"name"`
	Iterations  int     `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
}

type report struct {
	Date           string   `json:"date"`
	GoVersion      string   `json:"go_version"`
	GOOS           string   `json:"goos"`
	GOARCH         string   `json:"goarch"`
	DatapathAllocs float64  `json:"datapath_allocs_per_op"`
	// DatapathAllocsObs is the same measurement with a live metrics sink
	// attached; the observability contract keeps it at zero too.
	DatapathAllocsObs float64  `json:"datapath_allocs_obs_per_op"`
	Benchmarks        []result `json:"benchmarks"`
}

func main() {
	out := flag.String("o", "BENCH_1.json", "output file, or - for stdout")
	flag.Parse()

	rep := report{
		Date:      time.Now().UTC().Format(time.RFC3339),
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		// The allocation gate's exact measurement, not a benchmark
		// estimate: average allocations per steady-state pipeline step.
		DatapathAllocs:    perf.MeasureDatapathAllocs(5000, nil),
		DatapathAllocsObs: perf.MeasureDatapathAllocs(5000, obs.NewSink()),
	}
	for _, bn := range perf.All() {
		fmt.Fprintf(os.Stderr, "running %s...\n", bn.Name)
		r := testing.Benchmark(bn.F)
		rep.Benchmarks = append(rep.Benchmarks, result{
			Name:        bn.Name,
			Iterations:  r.N,
			NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
			BytesPerOp:  r.AllocedBytesPerOp(),
			AllocsPerOp: r.AllocsPerOp(),
		})
	}

	buf, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "lbrm-perf:", err)
		os.Exit(1)
	}
	buf = append(buf, '\n')
	if *out == "-" {
		os.Stdout.Write(buf)
		return
	}
	if err := os.WriteFile(*out, buf, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "lbrm-perf:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "wrote %s\n", *out)
}
