// Command lbrm-perf runs the hot-datapath micro-benchmarks (internal/perf)
// outside `go test` and writes the results as JSON, so the performance
// trajectory of the datapath is recorded in-repo across changes
// (BENCH_1.json for the pre-sharding datapath, BENCH_2.json for the
// batched/sharded one; later revisions append _3, ...).
//
// Usage:
//
//	lbrm-perf                      # writes BENCH_2.json
//	lbrm-perf -o -                 # prints JSON to stdout
//	lbrm-perf -sim                 # writes BENCH_4.json (sim-engine headline
//	                               # + adversarial scenario matrix)
//	lbrm-perf -gate                # regression gate against BENCH_2.json
//	                               # and BENCH_4.json
//	lbrm-perf -gate -baseline F    # gate against a specific baseline
//
// The gate re-measures the cheap invariants (zero steady-state
// allocations on the logging pipeline and the recovery episode) and the
// egress headline, failing if throughput drops below 80% of the committed
// baseline's udp_pps_per_core; it also validates the committed sim-engine
// speedup (BENCH_4.json, 5× floor at 10k sites) and re-measures the
// engine live on the 1k-site scenario (3× floor, exact trace equality).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"testing"
	"time"

	"lbrm/internal/chaos"
	"lbrm/internal/obs"
	"lbrm/internal/perf"
)

type result struct {
	Name        string  `json:"name"`
	Iterations  int     `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	// PPS is the achieved packets/second for benchmarks that report the
	// "pps" metric (the egress floods).
	PPS float64 `json:"pps,omitempty"`
}

type report struct {
	Date           string  `json:"date"`
	GoVersion      string  `json:"go_version"`
	GOOS           string  `json:"goos"`
	GOARCH         string  `json:"goarch"`
	DatapathAllocs float64 `json:"datapath_allocs_per_op"`
	// DatapathAllocsObs is the same measurement with a live metrics sink
	// attached; the observability contract keeps it at zero too.
	DatapathAllocsObs float64 `json:"datapath_allocs_obs_per_op"`
	// RecoveryAllocs is the steady-state allocation count of one full
	// loss-recovery episode (gap → NACK → retransmit → deliver).
	RecoveryAllocs float64 `json:"recovery_allocs_per_op"`
	// UDPPpsPerCore is the batched-egress headline: datagrams/second one
	// core pushes through the real UDP stack (the UDPEgress flood).
	UDPPpsPerCore float64  `json:"udp_pps_per_core"`
	Benchmarks    []result `json:"benchmarks"`
}

func run() report {
	rep := report{
		Date:      time.Now().UTC().Format(time.RFC3339),
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		// The allocation gates' exact measurements, not benchmark
		// estimates: average allocations per steady-state operation.
		DatapathAllocs:    perf.MeasureDatapathAllocs(5000, nil),
		DatapathAllocsObs: perf.MeasureDatapathAllocs(5000, obs.NewSink()),
		RecoveryAllocs:    perf.MeasureRecoveryAllocs(2000),
	}
	for _, bn := range perf.All() {
		fmt.Fprintf(os.Stderr, "running %s...\n", bn.Name)
		r := testing.Benchmark(bn.F)
		res := result{
			Name:        bn.Name,
			Iterations:  r.N,
			NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
			BytesPerOp:  r.AllocedBytesPerOp(),
			AllocsPerOp: r.AllocsPerOp(),
			PPS:         r.Extra["pps"],
		}
		rep.Benchmarks = append(rep.Benchmarks, res)
		if bn.Name == "UDPEgress" {
			rep.UDPPpsPerCore = res.PPS
		}
	}
	return rep
}

// simScenarioResult records one adversarial scenario class's protocol
// numbers for BENCH_4.json (all runs are virtual-time; wall_ms is the host
// cost of executing the scenario sequentially).
type simScenarioResult struct {
	Class         string  `json:"class"`
	Seed          int64   `json:"seed"`
	TraceHash     string  `json:"trace_hash"`
	Events        uint64  `json:"events"`
	Deliveries    uint64  `json:"deliveries"`
	Receivers     int     `json:"receivers"`
	Joiners       int     `json:"joiners,omitempty"`
	Recovered     uint64  `json:"recovered"`
	NacksSent     uint64  `json:"nacks_sent"`
	BackfillP50MS float64 `json:"backfill_p50_ms,omitempty"`
	BackfillP99MS float64 `json:"backfill_p99_ms,omitempty"`
	WallMS        float64 `json:"wall_ms"`
}

// simReport is the BENCH_4.json schema: the simulation-engine headline
// (logical events per wall second on the ROADMAP's 10k-site scenario,
// scale-out engine vs the pre-scale-out baseline) plus per-scenario
// protocol numbers from the adversarial matrix.
type simReport struct {
	Date      string `json:"date"`
	GoVersion string `json:"go_version"`
	GOOS      string `json:"goos"`
	GOARCH    string `json:"goarch"`
	// The 10k-site scenario shape the headline was measured on.
	Islands          int     `json:"islands"`
	Sites            int     `json:"sites"`
	ReceiversPerSite int     `json:"receivers_per_site"`
	VirtualSeconds   float64 `json:"virtual_seconds"`
	// SimEventsPerSec is the headline: the scale-out engine (timer wheel +
	// bulk delivery + parallel islands) on the 10k-site scenario.
	SimEventsPerSec float64 `json:"sim_events_per_sec"`
	// BaselineEventsPerSec is the pre-scale-out engine (heap scheduler,
	// per-member delivery, sequential) on the identical scenario.
	BaselineEventsPerSec float64 `json:"baseline_events_per_sec"`
	Speedup              float64 `json:"speedup"`
	Events               uint64  `json:"events"`
	Deliveries           uint64  `json:"deliveries"`
	// TraceHashMatch is measured on a separate trace-enabled pair of runs
	// (tracing off for the headline): both engines must execute the
	// byte-identical packet trace.
	TraceHash      string              `json:"trace_hash"`
	TraceHashMatch bool                `json:"trace_hash_match"`
	Scenarios      []simScenarioResult `json:"scenarios"`
}

// runSim measures the engine headline and the scenario matrix.
func runSim() (simReport, error) {
	opts := perf.Scenario10k()
	rep := simReport{
		Date:             time.Now().UTC().Format(time.RFC3339),
		GoVersion:        runtime.Version(),
		GOOS:             runtime.GOOS,
		GOARCH:           runtime.GOARCH,
		Islands:          opts.Islands,
		Sites:            opts.Sites,
		ReceiversPerSite: opts.ReceiversPerSite,
		VirtualSeconds:   opts.Duration.Seconds(),
	}

	fmt.Fprintln(os.Stderr, "sim: 10k-site headline (scale-out engine)...")
	scaled, err := perf.MeasureSimEngine(opts, false)
	if err != nil {
		return rep, err
	}
	fmt.Fprintln(os.Stderr, "sim: 10k-site headline (baseline engine)...")
	base, err := perf.MeasureSimEngine(opts, true)
	if err != nil {
		return rep, err
	}
	rep.SimEventsPerSec = scaled.EventsPerSec
	rep.BaselineEventsPerSec = base.EventsPerSec
	rep.Speedup = scaled.EventsPerSec / base.EventsPerSec
	rep.Events = scaled.Events
	rep.Deliveries = scaled.Deliveries

	// Trace equality is checked on its own pair of runs: the headline runs
	// without tracing, and an untraced hash compares nothing.
	fmt.Fprintln(os.Stderr, "sim: 10k-site trace-equality pair...")
	opts.Trace = true
	tScaled, err := perf.MeasureSimEngine(opts, false)
	if err != nil {
		return rep, err
	}
	tBase, err := perf.MeasureSimEngine(opts, true)
	if err != nil {
		return rep, err
	}
	rep.TraceHash = fmt.Sprintf("%016x", tScaled.TraceHash)
	rep.TraceHashMatch = tScaled.TraceHash == tBase.TraceHash &&
		tScaled.Events == tBase.Events && tScaled.Deliveries > 0

	for _, class := range chaos.ScenarioClasses() {
		fmt.Fprintf(os.Stderr, "sim: scenario %s...\n", class)
		seed := int64(100 + len(class)) // the scenario matrix test's pinning
		res, err := chaos.RunScenario(chaos.ScenarioConfig{Class: class, Seed: seed})
		if err != nil {
			return rep, fmt.Errorf("scenario %s: %v", class, err)
		}
		if !res.OK() {
			return rep, fmt.Errorf("scenario %s failed invariants:\n%s", class, res.Report())
		}
		rep.Scenarios = append(rep.Scenarios, simScenarioResult{
			Class:         string(class),
			Seed:          seed,
			TraceHash:     fmt.Sprintf("%016x", res.TraceHash),
			Events:        res.Events,
			Deliveries:    res.Deliveries,
			Receivers:     res.Receivers,
			Joiners:       res.Joiners,
			Recovered:     res.Recovered,
			NacksSent:     res.NacksSent,
			BackfillP50MS: float64(res.BackfillP50) / 1e6,
			BackfillP99MS: float64(res.BackfillP99) / 1e6,
			WallMS:        float64(res.Elapsed) / 1e6,
		})
	}
	return rep, nil
}

// simGate validates the committed sim-engine baseline and re-measures the
// engine live on the cheap 1k-site scenario: the committed 10k speedup
// must meet the 5× acceptance floor, the live speedup must stay above 3×
// (conservative against shared-machine noise; a real engine regression
// shows up as ~1×), and a live trace-enabled pair must agree exactly.
func simGate(baselinePath string) bool {
	ok := true
	fail := func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, "perf gate FAIL: "+format+"\n", args...)
		ok = false
	}
	buf, err := os.ReadFile(baselinePath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "perf gate: no sim baseline (%v); skipping sim-engine check\n", err)
		return ok
	}
	var base simReport
	if err := json.Unmarshal(buf, &base); err != nil {
		fail("sim baseline %s unreadable: %v", baselinePath, err)
		return ok
	}
	if base.Speedup < 5 {
		fail("committed %s speedup %.2f < 5x acceptance floor", baselinePath, base.Speedup)
	}
	if !base.TraceHashMatch {
		fail("committed %s records trace-hash mismatch between engines", baselinePath)
	}

	live, err := perf.MeasureSimEngineQuick()
	if err != nil {
		fail("live sim measurement: %v", err)
		return ok
	}
	if live.Speedup < 3 {
		fail("live 1k-site sim speedup %.2f < 3x floor (committed 10k baseline %.2f)", live.Speedup, base.Speedup)
	} else {
		fmt.Fprintf(os.Stderr, "perf gate: sim engine %.2fx live at 1k sites (committed %.2fx at 10k)\n", live.Speedup, base.Speedup)
	}
	if !live.TraceHashMatch {
		fail("live trace-enabled engines diverged: scale-out hash != baseline hash")
	}
	return ok
}

// gate re-measures the datapath invariants against a committed baseline
// report and returns false on regression.
func gate(baselinePath string) bool {
	ok := true
	fail := func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, "perf gate FAIL: "+format+"\n", args...)
		ok = false
	}
	if a := perf.MeasureDatapathAllocs(2000, nil); a != 0 {
		fail("datapath allocates %.2f allocs/op, want 0", a)
	}
	if a := perf.MeasureDatapathAllocs(2000, obs.NewSink()); a != 0 {
		fail("instrumented datapath allocates %.2f allocs/op, want 0", a)
	}
	if a := perf.MeasureRecoveryAllocs(1000); a != 0 {
		fail("recovery episode allocates %.2f allocs/op, want 0", a)
	}
	for _, tc := range []struct {
		name     string
		fallback bool
	}{{"batched", false}, {"fallback", true}} {
		if a := perf.MeasureUDPLoopbackAllocs(500, tc.fallback); a > 0 {
			fail("%s loopback round-trip allocates %.2f allocs/op, want 0", tc.name, a)
		}
	}

	buf, err := os.ReadFile(baselinePath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "perf gate: no baseline (%v); skipping throughput check\n", err)
		return ok
	}
	var base report
	if err := json.Unmarshal(buf, &base); err != nil {
		fail("baseline %s unreadable: %v", baselinePath, err)
		return ok
	}
	if base.UDPPpsPerCore <= 0 {
		fmt.Fprintln(os.Stderr, "perf gate: baseline has no udp_pps_per_core; skipping throughput check")
		return ok
	}
	r := testing.Benchmark(perf.UDPEgress)
	pps := r.Extra["pps"]
	if pps == 0 {
		fmt.Fprintln(os.Stderr, "perf gate: UDP unavailable; skipping throughput check")
		return ok
	}
	// 0.8× absorbs scheduler noise on shared machines while still
	// catching a real datapath regression (which shows up as 2×+).
	if floor := 0.8 * base.UDPPpsPerCore; pps < floor {
		fail("UDPEgress %.0f pps < %.0f (80%% of baseline %.0f)", pps, floor, base.UDPPpsPerCore)
	} else {
		fmt.Fprintf(os.Stderr, "perf gate: UDPEgress %.0f pps (baseline %.0f)\n", pps, base.UDPPpsPerCore)
	}
	return ok
}

func main() {
	out := flag.String("o", "", "output file, or - for stdout (default BENCH_2.json; BENCH_4.json with -sim)")
	gateMode := flag.Bool("gate", false, "regression-gate mode: check invariants against -baseline and -sim-baseline and exit")
	baseline := flag.String("baseline", "BENCH_2.json", "datapath baseline report for -gate")
	simMode := flag.Bool("sim", false, "measure the simulation engine (10k-site headline + scenario matrix) instead of the datapath suite")
	simBaseline := flag.String("sim-baseline", "BENCH_4.json", "sim-engine baseline report for -gate")
	flag.Parse()

	if *gateMode {
		ok := gate(*baseline)
		ok = simGate(*simBaseline) && ok
		if !ok {
			os.Exit(1)
		}
		fmt.Fprintln(os.Stderr, "perf gate: ok")
		return
	}

	var rep any
	if *simMode {
		if *out == "" {
			*out = "BENCH_4.json"
		}
		sr, err := runSim()
		if err != nil {
			fmt.Fprintln(os.Stderr, "lbrm-perf:", err)
			os.Exit(1)
		}
		rep = sr
	} else {
		if *out == "" {
			*out = "BENCH_2.json"
		}
		rep = run()
	}
	buf, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "lbrm-perf:", err)
		os.Exit(1)
	}
	buf = append(buf, '\n')
	if *out == "-" {
		os.Stdout.Write(buf)
		return
	}
	if err := os.WriteFile(*out, buf, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "lbrm-perf:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "wrote %s\n", *out)
}
