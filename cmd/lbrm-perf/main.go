// Command lbrm-perf runs the hot-datapath micro-benchmarks (internal/perf)
// outside `go test` and writes the results as JSON, so the performance
// trajectory of the datapath is recorded in-repo across changes
// (BENCH_1.json for the pre-sharding datapath, BENCH_2.json for the
// batched/sharded one; later revisions append _3, ...).
//
// Usage:
//
//	lbrm-perf                      # writes BENCH_2.json
//	lbrm-perf -o -                 # prints JSON to stdout
//	lbrm-perf -gate                # regression gate against BENCH_2.json
//	lbrm-perf -gate -baseline F    # gate against a specific baseline
//
// The gate re-measures the cheap invariants (zero steady-state
// allocations on the logging pipeline and the recovery episode) and the
// egress headline, failing if throughput drops below 80% of the committed
// baseline's udp_pps_per_core.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"testing"
	"time"

	"lbrm/internal/obs"
	"lbrm/internal/perf"
)

type result struct {
	Name        string  `json:"name"`
	Iterations  int     `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	// PPS is the achieved packets/second for benchmarks that report the
	// "pps" metric (the egress floods).
	PPS float64 `json:"pps,omitempty"`
}

type report struct {
	Date           string  `json:"date"`
	GoVersion      string  `json:"go_version"`
	GOOS           string  `json:"goos"`
	GOARCH         string  `json:"goarch"`
	DatapathAllocs float64 `json:"datapath_allocs_per_op"`
	// DatapathAllocsObs is the same measurement with a live metrics sink
	// attached; the observability contract keeps it at zero too.
	DatapathAllocsObs float64 `json:"datapath_allocs_obs_per_op"`
	// RecoveryAllocs is the steady-state allocation count of one full
	// loss-recovery episode (gap → NACK → retransmit → deliver).
	RecoveryAllocs float64 `json:"recovery_allocs_per_op"`
	// UDPPpsPerCore is the batched-egress headline: datagrams/second one
	// core pushes through the real UDP stack (the UDPEgress flood).
	UDPPpsPerCore float64  `json:"udp_pps_per_core"`
	Benchmarks    []result `json:"benchmarks"`
}

func run() report {
	rep := report{
		Date:      time.Now().UTC().Format(time.RFC3339),
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		// The allocation gates' exact measurements, not benchmark
		// estimates: average allocations per steady-state operation.
		DatapathAllocs:    perf.MeasureDatapathAllocs(5000, nil),
		DatapathAllocsObs: perf.MeasureDatapathAllocs(5000, obs.NewSink()),
		RecoveryAllocs:    perf.MeasureRecoveryAllocs(2000),
	}
	for _, bn := range perf.All() {
		fmt.Fprintf(os.Stderr, "running %s...\n", bn.Name)
		r := testing.Benchmark(bn.F)
		res := result{
			Name:        bn.Name,
			Iterations:  r.N,
			NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
			BytesPerOp:  r.AllocedBytesPerOp(),
			AllocsPerOp: r.AllocsPerOp(),
			PPS:         r.Extra["pps"],
		}
		rep.Benchmarks = append(rep.Benchmarks, res)
		if bn.Name == "UDPEgress" {
			rep.UDPPpsPerCore = res.PPS
		}
	}
	return rep
}

// gate re-measures the datapath invariants against a committed baseline
// report and returns false on regression.
func gate(baselinePath string) bool {
	ok := true
	fail := func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, "perf gate FAIL: "+format+"\n", args...)
		ok = false
	}
	if a := perf.MeasureDatapathAllocs(2000, nil); a != 0 {
		fail("datapath allocates %.2f allocs/op, want 0", a)
	}
	if a := perf.MeasureDatapathAllocs(2000, obs.NewSink()); a != 0 {
		fail("instrumented datapath allocates %.2f allocs/op, want 0", a)
	}
	if a := perf.MeasureRecoveryAllocs(1000); a != 0 {
		fail("recovery episode allocates %.2f allocs/op, want 0", a)
	}
	for _, tc := range []struct {
		name     string
		fallback bool
	}{{"batched", false}, {"fallback", true}} {
		if a := perf.MeasureUDPLoopbackAllocs(500, tc.fallback); a > 0 {
			fail("%s loopback round-trip allocates %.2f allocs/op, want 0", tc.name, a)
		}
	}

	buf, err := os.ReadFile(baselinePath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "perf gate: no baseline (%v); skipping throughput check\n", err)
		return ok
	}
	var base report
	if err := json.Unmarshal(buf, &base); err != nil {
		fail("baseline %s unreadable: %v", baselinePath, err)
		return ok
	}
	if base.UDPPpsPerCore <= 0 {
		fmt.Fprintln(os.Stderr, "perf gate: baseline has no udp_pps_per_core; skipping throughput check")
		return ok
	}
	r := testing.Benchmark(perf.UDPEgress)
	pps := r.Extra["pps"]
	if pps == 0 {
		fmt.Fprintln(os.Stderr, "perf gate: UDP unavailable; skipping throughput check")
		return ok
	}
	// 0.8× absorbs scheduler noise on shared machines while still
	// catching a real datapath regression (which shows up as 2×+).
	if floor := 0.8 * base.UDPPpsPerCore; pps < floor {
		fail("UDPEgress %.0f pps < %.0f (80%% of baseline %.0f)", pps, floor, base.UDPPpsPerCore)
	} else {
		fmt.Fprintf(os.Stderr, "perf gate: UDPEgress %.0f pps (baseline %.0f)\n", pps, base.UDPPpsPerCore)
	}
	return ok
}

func main() {
	out := flag.String("o", "BENCH_2.json", "output file, or - for stdout")
	gateMode := flag.Bool("gate", false, "regression-gate mode: check invariants against -baseline and exit")
	baseline := flag.String("baseline", "BENCH_2.json", "baseline report for -gate")
	flag.Parse()

	if *gateMode {
		if !gate(*baseline) {
			os.Exit(1)
		}
		fmt.Fprintln(os.Stderr, "perf gate: ok")
		return
	}

	rep := run()
	buf, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "lbrm-perf:", err)
		os.Exit(1)
	}
	buf = append(buf, '\n')
	if *out == "-" {
		os.Stdout.Write(buf)
		return
	}
	if err := os.WriteFile(*out, buf, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "lbrm-perf:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "wrote %s\n", *out)
}
