// Command lbrm-recv is an LBRM receiver over real UDP. It prints every
// delivered update and announces staleness episodes and abandoned ranges.
//
// With -groups N it joins N groups on consecutive ports from -mcast (one
// receiver instance per group); -shards splits those groups across
// independent datapath shards, and -batch sizes the sendmmsg/recvmmsg
// rings.
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"lbrm"
	"lbrm/internal/obs"
	"lbrm/internal/obs/fleet"
	"lbrm/internal/shard"
	"lbrm/internal/transport"
	"lbrm/internal/transport/udp"
	"lbrm/internal/wire"
)

// serveMetrics exposes the daemon's observability control plane over
// HTTP: golden exposition at /metrics (?format=json for the JSON
// document), Prometheus text at /metrics/prom, Go runtime health at
// /metrics/runtime, the health/SLO engine at /metrics/health, windowed
// series at /metrics/series, and the standard pprof profiling endpoints
// under /debug/pprof/. It also starts the wall-clock series sampler
// driving the local health engine (DESIGN.md §15).
func serveMetrics(addr string, sink *obs.Sink) {
	node := fleet.NewNode(sink, 2*time.Second)
	node.Start()
	mux := node.Mux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	go func() {
		if err := http.ListenAndServe(addr, mux); err != nil {
			log.Printf("lbrm-recv: metrics server: %v", err)
		}
	}()
	log.Printf("lbrm-recv: metrics on http://%s/metrics (prom at /metrics/prom, health at /metrics/health, profiles at /debug/pprof/)", addr)
}

func main() {
	mcast := flag.String("mcast", "239.9.9.9:7000", "multicast base ip:port (group i uses port+i-1)")
	secondary := flag.String("secondary", "", "site secondary logger host:port (empty: discover or use primary)")
	loggers := flag.String("loggers", "", "comma-separated upward recovery chain for an N-level logger tree, site secondary first then regional tiers (overrides -secondary)")
	primary := flag.String("primary", "", "primary logger host:port")
	discover := flag.Bool("discover", false, "discover a nearby logger by scoped multicast")
	hmin := flag.Duration("hmin", 250*time.Millisecond, "sender's minimum heartbeat interval")
	hmax := flag.Duration("hmax", 32*time.Second, "sender's maximum heartbeat interval")
	backoff := flag.Float64("backoff", 2, "sender's heartbeat backoff multiple")
	ordered := flag.Bool("ordered", false, "deliver in sequence order")
	iface := flag.String("iface", "", "network interface for multicast")
	trace := flag.Bool("trace", false, "log every packet in and out (decoded)")
	metricsAddr := flag.String("metrics-addr", "", "serve the metrics/trace exposition over HTTP on this host:port")
	nGroups := flag.Int("groups", 1, "number of multicast groups joined (consecutive ports from -mcast)")
	shards := flag.Int("shards", 1, "datapath shards; groups are spread across shards by stable modulus")
	batch := flag.Int("batch", 0, "datagrams per socket syscall (0 = default ring, 1 = unbatched)")
	flag.Parse()
	if err := shard.ValidateCounts(*nGroups, *shards, *batch); err != nil {
		log.Fatalf("lbrm-recv: %v", err)
	}

	var sink *obs.Sink
	if *metricsAddr != "" {
		sink = obs.NewSink()
	}
	groups, err := shard.GroupSpecs(*mcast, *nGroups)
	if err != nil {
		log.Fatal(err)
	}
	if *shards > *nGroups {
		log.Printf("lbrm-recv: clamping -shards %d to -groups %d", *shards, *nGroups)
		*shards = *nGroups
	}
	var secAddr, priAddr transport.Addr
	if *secondary != "" {
		if secAddr, err = udp.ParseAddr(*secondary); err != nil {
			log.Fatalf("bad -secondary: %v", err)
		}
	}
	if *primary != "" {
		if priAddr, err = udp.ParseAddr(*primary); err != nil {
			log.Fatalf("bad -primary: %v", err)
		}
	}
	var chain []transport.Addr
	if *loggers != "" {
		for _, s := range strings.Split(*loggers, ",") {
			a, err := udp.ParseAddr(strings.TrimSpace(s))
			if err != nil {
				log.Fatalf("bad -loggers entry %q: %v", s, err)
			}
			chain = append(chain, a)
		}
	}

	mk := func(g lbrm.GroupID) (*lbrm.Receiver, transport.Handler) {
		rcv := lbrm.NewReceiver(lbrm.ReceiverConfig{
			Group:     g,
			Heartbeat: lbrm.HeartbeatParams{HMin: *hmin, HMax: *hmax, Backoff: *backoff},
			Discover:  *discover,
			Ordered:   *ordered,
			Secondary: secAddr,
			Loggers:   chain,
			Primary:   priAddr,
			Obs:       sink,
			OnData: func(e lbrm.Event) {
				tag := ""
				if e.Retransmitted {
					tag = " (recovered)"
				}
				log.Printf("g%d src %d seq %d: %q%s", g, e.Stream.Source, e.Seq, e.Payload, tag)
			},
			OnStale: func(k lbrm.StreamKey, silent time.Duration) {
				log.Printf("g%d src %d: STALE (silent for %v)", g, k.Source, silent)
			},
			OnFresh: func(k lbrm.StreamKey) {
				log.Printf("g%d src %d: fresh again", g, k.Source)
			},
			OnLost: func(k lbrm.StreamKey, rg lbrm.SeqRange) {
				log.Printf("g%d src %d: gave up on seqs [%d,%d]", g, k.Source, rg.From, rg.To)
			},
		})
		var handler lbrm.Handler = rcv
		if *trace {
			handler = lbrm.Trace(rcv, func(ev lbrm.TraceEvent) {
				var p wire.Packet
				desc := fmt.Sprintf("%d bytes (non-LBRM)", len(ev.Data))
				if p.Unmarshal(ev.Data) == nil {
					desc = p.String()
				}
				peer := ""
				if ev.Peer != nil {
					peer = " " + ev.Peer.String()
				}
				log.Printf("[%s]%s %s", ev.Dir, peer, desc)
			})
		}
		return rcv, handler
	}

	rcvsByShard := make([][]*lbrm.Receiver, *shards)
	fleet, err := shard.Start(shard.Config{
		Shards: *shards,
		Groups: groups,
		Node: udp.Config{
			Interface: *iface,
			Obs:       sink,
			Batch:     *batch,
		},
	}, func(s int, gs []wire.GroupID) transport.Handler {
		hs := make(map[wire.GroupID]transport.Handler, len(gs))
		for _, g := range gs {
			rcv, h := mk(g)
			hs[g] = h
			rcvsByShard[s] = append(rcvsByShard[s], rcv)
		}
		if len(gs) == 1 {
			return hs[gs[0]]
		}
		return shard.NewMux(hs, nil)
	})
	if err != nil {
		log.Fatal(err)
	}
	defer fleet.Close()
	for s := 0; s < fleet.Shards(); s++ {
		log.Printf("lbrm-recv: shard %d/%d listening from %s (unicast %s)",
			s, fleet.Shards(), *mcast, fleet.Node(s).Addr())
	}
	if *metricsAddr != "" {
		serveMetrics(*metricsAddr, sink)
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	<-sig
	for s := 0; s < fleet.Shards(); s++ {
		for _, rcv := range rcvsByShard[s] {
			fleet.Node(s).Do(func() {
				st := rcv.Stats()
				log.Printf("delivered=%d recovered=%d nacks=%d escalations=%d abandoned=%d stale=%d",
					st.DataDelivered, st.Recovered, st.NacksSent, st.Escalations,
					st.RangesAbandoned, st.StaleEpisodes)
			})
		}
	}
}
