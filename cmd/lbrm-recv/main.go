// Command lbrm-recv is an LBRM receiver over real UDP. It prints every
// delivered update and announces staleness episodes and abandoned ranges.
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"lbrm"
	"lbrm/internal/obs"
	"lbrm/internal/transport/udp"
	"lbrm/internal/wire"
)

// serveMetrics exposes a sink over HTTP at /metrics (text by default,
// ?format=json for the JSON document), Go runtime health at
// /metrics/runtime (GC pauses, goroutines, heap), and the standard pprof
// profiling endpoints under /debug/pprof/.
func serveMetrics(addr string, sink *obs.Sink) {
	mux := http.NewServeMux()
	mux.Handle("/metrics", obs.Handler(sink))
	mux.Handle("/metrics/runtime", obs.RuntimeHandler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	go func() {
		if err := http.ListenAndServe(addr, mux); err != nil {
			log.Printf("lbrm-recv: metrics server: %v", err)
		}
	}()
	log.Printf("lbrm-recv: metrics on http://%s/metrics (runtime at /metrics/runtime, profiles at /debug/pprof/)", addr)
}

func main() {
	mcast := flag.String("mcast", "239.9.9.9:7000", "multicast group ip:port")
	secondary := flag.String("secondary", "", "site secondary logger host:port (empty: discover or use primary)")
	primary := flag.String("primary", "", "primary logger host:port")
	discover := flag.Bool("discover", false, "discover a nearby logger by scoped multicast")
	hmin := flag.Duration("hmin", 250*time.Millisecond, "sender's minimum heartbeat interval")
	hmax := flag.Duration("hmax", 32*time.Second, "sender's maximum heartbeat interval")
	backoff := flag.Float64("backoff", 2, "sender's heartbeat backoff multiple")
	ordered := flag.Bool("ordered", false, "deliver in sequence order")
	iface := flag.String("iface", "", "network interface for multicast")
	trace := flag.Bool("trace", false, "log every packet in and out (decoded)")
	metricsAddr := flag.String("metrics-addr", "", "serve the metrics/trace exposition over HTTP on this host:port")
	flag.Parse()

	var sink *obs.Sink
	if *metricsAddr != "" {
		sink = obs.NewSink()
	}
	cfg := lbrm.ReceiverConfig{
		Group:     1,
		Heartbeat: lbrm.HeartbeatParams{HMin: *hmin, HMax: *hmax, Backoff: *backoff},
		Discover:  *discover,
		Ordered:   *ordered,
		Obs:       sink,
		OnData: func(e lbrm.Event) {
			tag := ""
			if e.Retransmitted {
				tag = " (recovered)"
			}
			log.Printf("src %d seq %d: %q%s", e.Stream.Source, e.Seq, e.Payload, tag)
		},
		OnStale: func(k lbrm.StreamKey, silent time.Duration) {
			log.Printf("src %d: STALE (silent for %v)", k.Source, silent)
		},
		OnFresh: func(k lbrm.StreamKey) {
			log.Printf("src %d: fresh again", k.Source)
		},
		OnLost: func(k lbrm.StreamKey, rg lbrm.SeqRange) {
			log.Printf("src %d: gave up on seqs [%d,%d]", k.Source, rg.From, rg.To)
		},
	}
	var err error
	if *secondary != "" {
		if cfg.Secondary, err = udp.ParseAddr(*secondary); err != nil {
			log.Fatalf("bad -secondary: %v", err)
		}
	}
	if *primary != "" {
		if cfg.Primary, err = udp.ParseAddr(*primary); err != nil {
			log.Fatalf("bad -primary: %v", err)
		}
	}
	rcv := lbrm.NewReceiver(cfg)
	var handler lbrm.Handler = rcv
	if *trace {
		handler = lbrm.Trace(rcv, func(ev lbrm.TraceEvent) {
			var p wire.Packet
			desc := fmt.Sprintf("%d bytes (non-LBRM)", len(ev.Data))
			if p.Unmarshal(ev.Data) == nil {
				desc = p.String()
			}
			peer := ""
			if ev.Peer != nil {
				peer = " " + ev.Peer.String()
			}
			log.Printf("[%s]%s %s", ev.Dir, peer, desc)
		})
	}
	node, err := udp.Start(udp.Config{
		Groups:    map[wire.GroupID]string{1: *mcast},
		Interface: *iface,
		Obs:       sink,
	}, handler)
	if err != nil {
		log.Fatal(err)
	}
	defer node.Close()
	log.Printf("lbrm-recv: listening on %s (unicast %s)", *mcast, node.Addr())
	if *metricsAddr != "" {
		serveMetrics(*metricsAddr, sink)
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	<-sig
	node.Do(func() {
		st := rcv.Stats()
		log.Printf("delivered=%d recovered=%d nacks=%d escalations=%d abandoned=%d stale=%d",
			st.DataDelivered, st.Recovered, st.NacksSent, st.Escalations,
			st.RangesAbandoned, st.StaleEpisodes)
	})
}
