package main

import (
	"strings"
	"testing"

	"lbrm/internal/shard"
)

// TestFlagCountValidation pins the -groups/-shards/-batch guard the
// command runs right after flag parsing: zero or negative counts must be
// rejected with an error naming the offending flag before any multicast
// groups are joined.
func TestFlagCountValidation(t *testing.T) {
	for _, tc := range []struct {
		groups, shards, batch int
		wantFlag              string // empty = must be accepted
	}{
		{1, 1, 0, ""},
		{4, 4, 1, ""},
		{-2, 1, 0, "-groups"},
		{2, -1, 0, "-shards"},
		{2, 1, -1, "-batch"},
	} {
		err := shard.ValidateCounts(tc.groups, tc.shards, tc.batch)
		if tc.wantFlag == "" {
			if err != nil {
				t.Errorf("(%d, %d, %d): rejected: %v", tc.groups, tc.shards, tc.batch, err)
			}
			continue
		}
		if err == nil {
			t.Errorf("(%d, %d, %d): accepted, want error naming %s", tc.groups, tc.shards, tc.batch, tc.wantFlag)
		} else if !strings.Contains(err.Error(), tc.wantFlag) {
			t.Errorf("(%d, %d, %d): error %q does not name %s", tc.groups, tc.shards, tc.batch, err, tc.wantFlag)
		}
	}
}
