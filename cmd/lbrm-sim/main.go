// Command lbrm-sim runs an LBRM deployment inside the deterministic
// network simulator and reports delivery, recovery and traffic statistics.
// Hours of protocol time execute in seconds of wall time, reproducibly.
//
// Example: 50 sites × 20 receivers, 10% tail-circuit loss, 2 minutes of
// virtual time at one update per second:
//
//	lbrm-sim -sites 50 -receivers 20 -loss 0.1 -interval 1s -duration 2m
//
// The adversarial scenario classes (broadcast, flash-crowd, crying-baby,
// diurnal, mixed) run a multi-stream fleet on the parallel island cluster
// with their seeded invariants enforced:
//
//	lbrm-sim -scenario crying-baby -seed 3 -parallel -bulk
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"
	"time"

	"lbrm"
	"lbrm/internal/chaos"
	"lbrm/internal/obs"
	"lbrm/internal/wire"
)

// printMetrics renders a merged registry snapshot (plus the sender's trace
// window) in the text exposition format.
func printMetrics(m obs.Snapshot, trace []obs.Event) {
	fmt.Println("merged handler metrics:")
	d := obs.Dump{
		Counters: m.Counters, Gauges: m.Gauges,
		Histograms: m.Histograms, Trace: trace,
	}
	if err := d.WriteText(os.Stdout); err != nil {
		log.Printf("metrics: %v", err)
	}
}

func main() {
	seed := flag.Int64("seed", 1, "simulation seed")
	sites := flag.Int("sites", 10, "receiver sites")
	receivers := flag.Int("receivers", 5, "receivers per site")
	replicas := flag.Int("replicas", 0, "primary log replicas")
	loss := flag.Float64("loss", 0.05, "tail-circuit downstream loss probability per site")
	burst := flag.Bool("burst", false, "use bursty (Gilbert-Elliott) loss instead of Bernoulli")
	interval := flag.Duration("interval", time.Second, "data packet interval")
	duration := flag.Duration("duration", 2*time.Minute, "virtual run duration")
	hmin := flag.Duration("hmin", 250*time.Millisecond, "minimum heartbeat interval")
	hmax := flag.Duration("hmax", 32*time.Second, "maximum heartbeat interval")
	statack := flag.Bool("statack", false, "enable statistical acknowledgement")
	k := flag.Int("k", 20, "desired ACKs per packet (with -statack)")
	pcapPath := flag.String("pcap", "", "write traffic on the tapped link to this pcap file (open in Wireshark)")
	pcapLink := flag.String("pcap-link", "source-site/tail-up", "link-name substring to tap for -pcap")
	chaosMode := flag.Bool("chaos", false, "run the deterministic chaos harness instead of the traffic simulation")
	chaosCrash := flag.Bool("chaos-crash-primary", false, "with -chaos: force a primary crash into the schedule")
	chaosFaults := flag.Int("chaos-faults", 0, "with -chaos: number of faults to schedule (0 = default)")
	chaosSrcPart := flag.Bool("chaos-source-partition", false, "with -chaos: isolate the acting primary from the source segment (epoch fencing)")
	chaosJoinWin := flag.Bool("chaos-join-window", false, "with -chaos: land every fault in the first tenth of the run")
	chaosOverlap := flag.Bool("chaos-overlapping", false, "with -chaos: overlap a flaky-link and a partition window on one site")
	chaosQuorum := flag.Int("chaos-quorum", 0, "with -chaos: enable quorum replication with this write quorum and run the quorum durability schedule (invariant 11)")
	chaosQuorumFault := flag.String("chaos-quorum-fault", "", "with -chaos-quorum: pin the replication fault (crash-primary | crash-replica | ring-partition | none; empty = seed-drawn)")
	chaosHealth := flag.String("chaos-health", "", "with -chaos: replace the random schedule with one long-lived health-detection target (crying-baby | regional-loss | none; empty = normal schedule)")
	flightLog := flag.String("flight-log", "", "with -chaos: write the fleet timeline (one merged metrics snapshot per second of virtual time) to this file as JSONL")
	metrics := flag.Bool("metrics", false, "after the run, print every handler's metrics merged (counters/histograms summed, gauges max-merged) plus the sender's trace window")
	scenario := flag.String("scenario", "", "run one adversarial scenario class (broadcast | flash-crowd | crying-baby | diurnal | mixed) on the island cluster instead of the traffic simulation; -seed pins it")
	islands := flag.Int("islands", 0, "with -scenario: receiver island count (0 = class default)")
	parallel := flag.Bool("parallel", false, "with -scenario: execute islands in parallel (same seed, same trace)")
	bulk := flag.Bool("bulk", false, "with -scenario: batch model-free multicast deliveries into bulk clock events")
	flag.Parse()

	if *scenario != "" {
		class := chaos.ScenarioClass(*scenario)
		known := false
		for _, c := range chaos.ScenarioClasses() {
			known = known || c == class
		}
		if !known {
			log.Fatalf("unknown scenario class %q (have %v)", *scenario, chaos.ScenarioClasses())
		}
		res, err := chaos.RunScenario(chaos.ScenarioConfig{
			Class:    class,
			Seed:     *seed,
			Islands:  *islands,
			Parallel: *parallel,
			Bulk:     *bulk,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(res.Report())
		if !res.OK() {
			os.Exit(1)
		}
		return
	}

	if *chaosMode {
		res, err := chaos.Run(chaos.Config{
			Seed:             *seed,
			Sites:            *sites,
			ReceiversPerSite: *receivers,
			Replicas:         *replicas,
			Duration:         *duration,
			SendEvery:        *interval,
			Faults:           *chaosFaults,
			CrashPrimary:     *chaosCrash,
			SourcePartition:  *chaosSrcPart,
			JoinWindow:       *chaosJoinWin,
			Overlapping:      *chaosOverlap,
			Quorum:           *chaosQuorum,
			QuorumFault:      *chaosQuorumFault,
			HealthFault:      *chaosHealth,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Print(res.Report())
		if *flightLog != "" {
			f, err := os.Create(*flightLog)
			if err != nil {
				log.Fatalf("flight log: %v", err)
			}
			if err := obs.WriteFlightLog(f, res.Flight); err != nil {
				f.Close()
				log.Fatalf("flight log: %v", err)
			}
			if err := f.Close(); err != nil {
				log.Fatalf("flight log: %v", err)
			}
			fmt.Printf("flight log: %d samples → %s\n", len(res.Flight), *flightLog)
		}
		if *metrics {
			printMetrics(res.Metrics, res.SenderTrace)
		}
		if !res.OK() {
			os.Exit(1)
		}
		return
	}

	scfg := lbrm.SenderConfig{
		Heartbeat: lbrm.HeartbeatParams{HMin: *hmin, HMax: *hmax, Backoff: 2},
	}
	if *statack {
		scfg.StatAck = lbrm.StatAckConfig{
			Enabled: true, K: *k,
			GroupSize: lbrm.GroupSizeConfig{Initial: float64(*sites)},
		}
	}
	tb, err := lbrm.NewTestbed(lbrm.TestbedConfig{
		Seed: *seed, Sites: *sites, ReceiversPerSite: *receivers, Replicas: *replicas,
		Sender: scfg,
	})
	if err != nil {
		log.Fatal(err)
	}
	for _, s := range tb.Sites {
		if *burst {
			s.Site.TailDown().SetLoss(&lbrm.GilbertElliott{
				PGoodToBad: *loss / 5, PBadToGood: 0.2, LossGood: 0, LossBad: 1,
			})
		} else {
			s.Site.TailDown().SetLoss(lbrm.Bernoulli{P: *loss})
		}
	}

	// Traffic accounting across all tail circuits, plus the optional pcap
	// capture of one wire.
	tail := map[wire.Type]uint64{}
	var tailBytes uint64
	var pcapTap lbrm.TapFunc
	var pcapWriter *lbrm.PcapWriter
	if *pcapPath != "" {
		f, err := os.Create(*pcapPath)
		if err != nil {
			log.Fatalf("create pcap: %v", err)
		}
		defer f.Close()
		pcapWriter, err = lbrm.NewPcapWriter(f)
		if err != nil {
			log.Fatal(err)
		}
		pcapTap = lbrm.PcapTap(pcapWriter, *pcapLink, func(err error) { log.Printf("pcap: %v", err) })
	}
	tb.Net.SetTap(func(ev lbrm.TapEvent) {
		if pcapTap != nil {
			pcapTap(ev)
		}
		if !strings.Contains(ev.Link.Name(), "tail-") || ev.Dropped {
			return
		}
		var p wire.Packet
		if p.Unmarshal(ev.Data) == nil {
			tail[p.Type]++
			tailBytes += uint64(ev.Size)
		}
	})

	// Warm-up: let heartbeats establish first contact everywhere, so a
	// loss of the very first data packet is recoverable rather than
	// indistinguishable from pre-join history.
	tb.Run(2 * *hmin)

	start := time.Now()
	packets := 0
	for elapsed := time.Duration(0); elapsed < *duration; elapsed += *interval {
		if _, err := tb.Send([]byte(fmt.Sprintf("update-%d", packets+1))); err != nil {
			log.Fatalf("send: %v", err)
		}
		packets++
		tb.Run(*interval)
	}
	tb.Run(10 * time.Second) // drain recovery
	wall := time.Since(start)

	full := 0
	for seq := uint64(1); seq <= uint64(packets); seq++ {
		if tb.EveryoneHas(seq) {
			full++
		}
	}
	var recovered, nacks, abandoned uint64
	for _, s := range tb.Sites {
		for _, r := range s.Receivers {
			st := r.Stats()
			recovered += st.Recovered
			nacks += st.NacksSent
			abandoned += st.RangesAbandoned
		}
	}
	var secServed, secRemcast, secUp uint64
	for _, s := range tb.Sites {
		if s.Secondary == nil {
			continue
		}
		st := s.Secondary.Stats()
		secServed += st.RetransUnicast
		secRemcast += st.Remulticasts
		secUp += st.NacksToPrimary
	}

	fmt.Printf("simulated %v of protocol time in %v wall clock (%d sites × %d receivers, seed %d)\n",
		*duration, wall.Round(time.Millisecond), *sites, *receivers, *seed)
	fmt.Printf("data packets: %d; fully delivered to all %d receivers: %d (%.1f%%)\n",
		packets, tb.TotalReceivers(), full, 100*float64(full)/float64(packets))
	fmt.Printf("sender: %+v\n", tb.Sender.Stats())
	fmt.Printf("receivers: recovered=%d nacks=%d abandoned=%d\n", recovered, nacks, abandoned)
	fmt.Printf("secondaries: unicastRepairs=%d siteRemulticasts=%d nacksToPrimary=%d\n",
		secServed, secRemcast, secUp)
	fmt.Printf("primary: %+v\n", tb.Primary.Stats())
	if pcapWriter != nil {
		fmt.Printf("pcap: %d frames captured on %q → %s\n", pcapWriter.Count(), *pcapLink, *pcapPath)
	}
	fmt.Printf("tail-circuit traffic (delivered): %d bytes\n", tailBytes)
	for _, ty := range []wire.Type{wire.TypeData, wire.TypeHeartbeat, wire.TypeNack,
		wire.TypeRetrans, wire.TypeAck, wire.TypeAckerSelect, wire.TypeSourceAck} {
		if tail[ty] > 0 {
			fmt.Printf("  %-10v %d\n", ty, tail[ty])
		}
	}
	if *metrics {
		// The testbed retains one sink per handler in the handler's config;
		// merge them all into the fleet view.
		snaps := []obs.Snapshot{
			tb.SenderCfg.Obs.Registry().Snapshot(),
			tb.PrimaryCfg.Obs.Registry().Snapshot(),
		}
		for _, rcfg := range tb.ReplicaCfgs {
			snaps = append(snaps, rcfg.Obs.Registry().Snapshot())
		}
		for _, s := range tb.Sites {
			snaps = append(snaps, s.SecondaryCfg.Obs.Registry().Snapshot())
			for _, rcfg := range s.ReceiverCfgs {
				snaps = append(snaps, rcfg.Obs.Registry().Snapshot())
			}
		}
		printMetrics(obs.Merge(snaps...), tb.SenderCfg.Obs.Ring().Snapshot())
	}
}
