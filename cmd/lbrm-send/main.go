// Command lbrm-send is an LBRM multicast source over real UDP. It reads
// lines from stdin (or generates synthetic updates with -interval) and
// publishes each as one LBRM data packet, with variable heartbeats filling
// the idle periods.
//
// Example (three terminals):
//
//	lbrm-logger -mode primary -listen :7001 -mcast 239.9.9.9:7000
//	lbrm-recv   -mcast 239.9.9.9:7000 -primary 127.0.0.1:7001
//	lbrm-send   -mcast 239.9.9.9:7000 -primary 127.0.0.1:7001
package main

import (
	"bufio"
	"flag"
	"fmt"
	"log"
	"net/http"
	"net/http/pprof"
	"os"
	"time"

	"lbrm"
	"lbrm/internal/obs"
	"lbrm/internal/transport/udp"
	"lbrm/internal/wire"
)

// serveMetrics exposes a sink over HTTP at /metrics (text by default,
// ?format=json for the JSON document), Go runtime health at
// /metrics/runtime (GC pauses, goroutines, heap), and the standard pprof
// profiling endpoints under /debug/pprof/.
func serveMetrics(addr, cmd string, sink *obs.Sink) {
	mux := http.NewServeMux()
	mux.Handle("/metrics", obs.Handler(sink))
	mux.Handle("/metrics/runtime", obs.RuntimeHandler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	go func() {
		if err := http.ListenAndServe(addr, mux); err != nil {
			log.Printf("%s: metrics server: %v", cmd, err)
		}
	}()
	log.Printf("%s: metrics on http://%s/metrics (runtime at /metrics/runtime, profiles at /debug/pprof/)", cmd, addr)
}

func main() {
	mcast := flag.String("mcast", "239.9.9.9:7000", "multicast group ip:port")
	primary := flag.String("primary", "", "primary logger host:port (empty = basic receiver-reliable mode)")
	source := flag.Uint64("source", 1, "source/stream id")
	hmin := flag.Duration("hmin", 250*time.Millisecond, "minimum heartbeat interval (MaxIT)")
	hmax := flag.Duration("hmax", 32*time.Second, "maximum heartbeat interval")
	backoff := flag.Float64("backoff", 2, "heartbeat backoff multiple")
	interval := flag.Duration("interval", 0, "auto-send synthetic updates at this interval (0 = read stdin)")
	statack := flag.Bool("statack", false, "enable statistical acknowledgement")
	k := flag.Int("k", 20, "desired ACKs per packet (with -statack)")
	iface := flag.String("iface", "", "network interface for multicast")
	metricsAddr := flag.String("metrics-addr", "", "serve the metrics/trace exposition over HTTP on this host:port")
	flag.Parse()

	var sink *obs.Sink
	if *metricsAddr != "" {
		sink = obs.NewSink()
	}
	cfg := lbrm.SenderConfig{
		Source:    lbrm.SourceID(*source),
		Group:     1,
		Heartbeat: lbrm.HeartbeatParams{HMin: *hmin, HMax: *hmax, Backoff: *backoff},
		Obs:       sink,
	}
	if *primary != "" {
		pa, err := udp.ParseAddr(*primary)
		if err != nil {
			log.Fatalf("bad -primary: %v", err)
		}
		cfg.Primary = pa
	}
	if *statack {
		cfg.StatAck = lbrm.StatAckConfig{Enabled: true, K: *k}
	}
	sender, err := lbrm.NewSender(cfg)
	if err != nil {
		log.Fatal(err)
	}
	node, err := udp.Start(udp.Config{
		Groups:    map[wire.GroupID]string{1: *mcast},
		Interface: *iface,
		Obs:       sink,
	}, sender)
	if err != nil {
		log.Fatal(err)
	}
	defer node.Close()
	log.Printf("lbrm-send: source %d on %s from %s", *source, *mcast, node.Addr())
	if *metricsAddr != "" {
		serveMetrics(*metricsAddr, "lbrm-send", sink)
	}

	send := func(payload []byte) {
		// Serialize with the node's packet/timer callbacks.
		node.Do(func() {
			seq, err := sender.Send(payload)
			if err != nil {
				log.Printf("send: %v", err)
				return
			}
			log.Printf("sent seq %d (%d bytes), retained=%d", seq, len(payload), sender.Retained())
		})
	}

	if *interval > 0 {
		for i := 1; ; i++ {
			send([]byte(fmt.Sprintf("update %d at %s", i, time.Now().Format(time.RFC3339Nano))))
			time.Sleep(*interval)
		}
	}
	sc := bufio.NewScanner(os.Stdin)
	for sc.Scan() {
		send(append([]byte(nil), sc.Bytes()...))
	}
	if err := sc.Err(); err != nil {
		log.Fatal(err)
	}
}
