// Command lbrm-send is an LBRM multicast source over real UDP. It reads
// lines from stdin (or generates synthetic updates with -interval) and
// publishes each as one LBRM data packet, with variable heartbeats filling
// the idle periods.
//
// With -groups N it runs one source per group on consecutive ports from
// -mcast, striping updates round-robin — a load generator for sharded
// deployments; -shards splits the groups across independent datapath
// shards, and -batch sizes the sendmmsg egress rings.
//
// Example (three terminals):
//
//	lbrm-logger -mode primary -listen :7001 -mcast 239.9.9.9:7000
//	lbrm-recv   -mcast 239.9.9.9:7000 -primary 127.0.0.1:7001
//	lbrm-send   -mcast 239.9.9.9:7000 -primary 127.0.0.1:7001
package main

import (
	"bufio"
	"flag"
	"fmt"
	"log"
	"net/http"
	"net/http/pprof"
	"os"
	"time"

	"lbrm"
	"lbrm/internal/obs"
	"lbrm/internal/obs/fleet"
	"lbrm/internal/shard"
	"lbrm/internal/transport"
	"lbrm/internal/transport/udp"
	"lbrm/internal/wire"
)

// serveMetrics exposes the daemon's observability control plane over
// HTTP: golden exposition at /metrics (?format=json for the JSON
// document), Prometheus text at /metrics/prom, Go runtime health at
// /metrics/runtime, the health/SLO engine at /metrics/health, windowed
// series at /metrics/series, and the standard pprof profiling endpoints
// under /debug/pprof/. It also starts the wall-clock series sampler
// driving the local health engine (DESIGN.md §15).
func serveMetrics(addr, cmd string, sink *obs.Sink) {
	node := fleet.NewNode(sink, 2*time.Second)
	node.Start()
	mux := node.Mux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	go func() {
		if err := http.ListenAndServe(addr, mux); err != nil {
			log.Printf("%s: metrics server: %v", cmd, err)
		}
	}()
	log.Printf("%s: metrics on http://%s/metrics (prom at /metrics/prom, health at /metrics/health, profiles at /debug/pprof/)", cmd, addr)
}

func main() {
	mcast := flag.String("mcast", "239.9.9.9:7000", "multicast base ip:port (group i uses port+i-1)")
	primary := flag.String("primary", "", "primary logger host:port (empty = basic receiver-reliable mode)")
	source := flag.Uint64("source", 1, "source/stream id")
	hmin := flag.Duration("hmin", 250*time.Millisecond, "minimum heartbeat interval (MaxIT)")
	hmax := flag.Duration("hmax", 32*time.Second, "maximum heartbeat interval")
	backoff := flag.Float64("backoff", 2, "heartbeat backoff multiple")
	interval := flag.Duration("interval", 0, "auto-send synthetic updates at this interval (0 = read stdin)")
	statack := flag.Bool("statack", false, "enable statistical acknowledgement")
	k := flag.Int("k", 20, "desired ACKs per packet (with -statack)")
	iface := flag.String("iface", "", "network interface for multicast")
	metricsAddr := flag.String("metrics-addr", "", "serve the metrics/trace exposition over HTTP on this host:port")
	nGroups := flag.Int("groups", 1, "number of multicast groups published (consecutive ports from -mcast), striped round-robin")
	shards := flag.Int("shards", 1, "datapath shards; groups are spread across shards by stable modulus")
	batch := flag.Int("batch", 0, "datagrams per socket syscall (0 = default ring, 1 = unbatched)")
	flag.Parse()
	if err := shard.ValidateCounts(*nGroups, *shards, *batch); err != nil {
		log.Fatalf("lbrm-send: %v", err)
	}

	var sink *obs.Sink
	if *metricsAddr != "" {
		sink = obs.NewSink()
	}
	groups, err := shard.GroupSpecs(*mcast, *nGroups)
	if err != nil {
		log.Fatal(err)
	}
	if *shards > *nGroups {
		log.Printf("lbrm-send: clamping -shards %d to -groups %d", *shards, *nGroups)
		*shards = *nGroups
	}
	var priAddr transport.Addr
	if *primary != "" {
		if priAddr, err = udp.ParseAddr(*primary); err != nil {
			log.Fatalf("bad -primary: %v", err)
		}
	}

	senders := make(map[lbrm.GroupID]*lbrm.Sender, *nGroups)
	mk := func(g lbrm.GroupID) *lbrm.Sender {
		cfg := lbrm.SenderConfig{
			Source:    lbrm.SourceID(*source),
			Group:     g,
			Heartbeat: lbrm.HeartbeatParams{HMin: *hmin, HMax: *hmax, Backoff: *backoff},
			Primary:   priAddr,
			Obs:       sink,
		}
		if *statack {
			cfg.StatAck = lbrm.StatAckConfig{Enabled: true, K: *k}
		}
		snd, err := lbrm.NewSender(cfg)
		if err != nil {
			log.Fatal(err)
		}
		senders[g] = snd
		return snd
	}

	fleet, err := shard.Start(shard.Config{
		Shards: *shards,
		Groups: groups,
		Node: udp.Config{
			Interface: *iface,
			Obs:       sink,
			Batch:     *batch,
		},
	}, func(s int, gs []wire.GroupID) transport.Handler {
		hs := make(map[wire.GroupID]transport.Handler, len(gs))
		for _, g := range gs {
			hs[g] = mk(g)
		}
		if len(gs) == 1 {
			return hs[gs[0]]
		}
		return shard.NewMux(hs, nil)
	})
	if err != nil {
		log.Fatal(err)
	}
	defer fleet.Close()
	for s := 0; s < fleet.Shards(); s++ {
		log.Printf("lbrm-send: source %d, shard %d/%d from %s",
			*source, s, fleet.Shards(), fleet.Node(s).Addr())
	}
	if *metricsAddr != "" {
		serveMetrics(*metricsAddr, "lbrm-send", sink)
	}

	next := 0
	send := func(payload []byte) {
		// Stripe across groups; serialize with the owning shard's
		// packet/timer callbacks.
		g := lbrm.GroupID(next%*nGroups + 1)
		next++
		snd := senders[g]
		fleet.Do(g, func() {
			seq, err := snd.Send(payload)
			if err != nil {
				log.Printf("send g%d: %v", g, err)
				return
			}
			log.Printf("sent g%d seq %d (%d bytes), retained=%d", g, seq, len(payload), snd.Retained())
		})
	}

	if *interval > 0 {
		for i := 1; ; i++ {
			send([]byte(fmt.Sprintf("update %d at %s", i, time.Now().Format(time.RFC3339Nano))))
			time.Sleep(*interval)
		}
	}
	sc := bufio.NewScanner(os.Stdin)
	for sc.Scan() {
		send(append([]byte(nil), sc.Bytes()...))
	}
	if err := sc.Err(); err != nil {
		log.Fatal(err)
	}
}
