package main

import (
	"strings"
	"testing"

	"lbrm/internal/shard"
)

// TestFlagCountValidation pins the -groups/-shards/-batch guard the
// command runs right after flag parsing: zero or negative counts must be
// rejected with an error naming the offending flag before any sockets
// open or stdin is read.
func TestFlagCountValidation(t *testing.T) {
	for _, tc := range []struct {
		groups, shards, batch int
		wantFlag              string // empty = must be accepted
	}{
		{1, 1, 0, ""},
		{8, 2, 16, ""},
		{0, 1, 0, "-groups"},
		{1, 0, 0, "-shards"},
		{1, 1, -4, "-batch"},
	} {
		err := shard.ValidateCounts(tc.groups, tc.shards, tc.batch)
		if tc.wantFlag == "" {
			if err != nil {
				t.Errorf("(%d, %d, %d): rejected: %v", tc.groups, tc.shards, tc.batch, err)
			}
			continue
		}
		if err == nil {
			t.Errorf("(%d, %d, %d): accepted, want error naming %s", tc.groups, tc.shards, tc.batch, tc.wantFlag)
		} else if !strings.Contains(err.Error(), tc.wantFlag) {
			t.Errorf("(%d, %d, %d): error %q does not name %s", tc.groups, tc.shards, tc.batch, err, tc.wantFlag)
		}
	}
}
