// Command lbrm-bench runs the paper-reproduction experiment harness: one
// experiment per table/figure of the LBRM paper plus the quantitative
// in-text claims and ablations (see DESIGN.md for the index).
//
// Usage:
//
//	lbrm-bench -list
//	lbrm-bench -exp fig4,table1
//	lbrm-bench -exp all
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"time"

	"lbrm/internal/experiments"
)

// jsonDoc is the -json output document, shaped like the committed
// BENCH_*.json artifacts: an environment header plus the selected
// experiments' full results.
type jsonDoc struct {
	Date        string           `json:"date"`
	GoVersion   string           `json:"go_version"`
	GOOS        string           `json:"goos"`
	GOARCH      string           `json:"goarch"`
	Experiments []jsonExperiment `json:"experiments"`
}

type jsonExperiment struct {
	ID      string             `json:"id"`
	Title   string             `json:"title"`
	Headers []string           `json:"headers"`
	Rows    [][]string         `json:"rows"`
	Values  map[string]float64 `json:"values"`
	Notes   []string           `json:"notes,omitempty"`
}

func main() {
	list := flag.Bool("list", false, "list available experiments and exit")
	exp := flag.String("exp", "all", "comma-separated experiment IDs, or 'all'")
	format := flag.String("format", "table", "output format: table | csv")
	jsonPath := flag.String("json", "", "also write the selected experiments' results (tables, values, notes) to this file as JSON")
	flag.Parse()

	if *list {
		for _, r := range experiments.All() {
			fmt.Printf("%-12s %s\n", r.ID, r.Title)
		}
		return
	}

	var runners []experiments.Runner
	if *exp == "all" {
		runners = experiments.All()
	} else {
		for _, id := range strings.Split(*exp, ",") {
			id = strings.TrimSpace(id)
			r, ok := experiments.ByID(id)
			if !ok {
				fmt.Fprintf(os.Stderr, "unknown experiment %q; try -list\n", id)
				os.Exit(2)
			}
			runners = append(runners, r)
		}
	}
	doc := jsonDoc{
		Date:      time.Now().UTC().Format(time.RFC3339),
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
	}
	for i, r := range runners {
		if i > 0 {
			fmt.Println()
		}
		res := r.Run()
		switch *format {
		case "csv":
			fmt.Printf("# %s: %s\n%s", res.ID, res.Title, res.CSV())
		default:
			fmt.Print(res.String())
		}
		if *jsonPath != "" {
			doc.Experiments = append(doc.Experiments, jsonExperiment{
				ID: res.ID, Title: res.Title, Headers: res.Headers,
				Rows: res.Rows, Values: res.Values, Notes: res.Notes,
			})
		}
	}
	if *jsonPath != "" {
		buf, err := json.MarshalIndent(doc, "", "  ")
		if err != nil {
			fmt.Fprintf(os.Stderr, "json: %v\n", err)
			os.Exit(1)
		}
		if err := os.WriteFile(*jsonPath, append(buf, '\n'), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "json: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "wrote %s\n", *jsonPath)
	}
}
