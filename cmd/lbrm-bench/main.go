// Command lbrm-bench runs the paper-reproduction experiment harness: one
// experiment per table/figure of the LBRM paper plus the quantitative
// in-text claims and ablations (see DESIGN.md for the index).
//
// Usage:
//
//	lbrm-bench -list
//	lbrm-bench -exp fig4,table1
//	lbrm-bench -exp all
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"lbrm/internal/experiments"
)

func main() {
	list := flag.Bool("list", false, "list available experiments and exit")
	exp := flag.String("exp", "all", "comma-separated experiment IDs, or 'all'")
	format := flag.String("format", "table", "output format: table | csv")
	flag.Parse()

	if *list {
		for _, r := range experiments.All() {
			fmt.Printf("%-12s %s\n", r.ID, r.Title)
		}
		return
	}

	var runners []experiments.Runner
	if *exp == "all" {
		runners = experiments.All()
	} else {
		for _, id := range strings.Split(*exp, ",") {
			id = strings.TrimSpace(id)
			r, ok := experiments.ByID(id)
			if !ok {
				fmt.Fprintf(os.Stderr, "unknown experiment %q; try -list\n", id)
				os.Exit(2)
			}
			runners = append(runners, r)
		}
	}
	for i, r := range runners {
		if i > 0 {
			fmt.Println()
		}
		res := r.Run()
		switch *format {
		case "csv":
			fmt.Printf("# %s: %s\n%s", res.ID, res.Title, res.CSV())
		default:
			fmt.Print(res.String())
		}
	}
}
