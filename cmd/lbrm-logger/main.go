// Command lbrm-logger runs an LBRM logging server over real UDP, in one of
// three roles:
//
//   - secondary: a site's secondary logging server (§2.2.1) — logs the
//     multicast stream, serves site-local retransmissions, answers
//     discovery queries and Acker Selection packets. With -tier/-parents
//     it becomes a node in an N-level logger tree: site secondaries
//     (-tier 0) escalate misses to a regional aggregator (-tier 1), and
//     regionals to the primary, re-homing to -siblings or the next tier
//     up when a parent dies.
//   - primary: the primary logging server (§2.2) — logs everything,
//     acknowledges the source, serves retransmissions, replicates to
//     -replica peers.
//   - replica: a passive replica (§2.2.3), promoted by the source on
//     primary failure.
//
// With -groups N the logger serves N groups on consecutive ports from
// -mcast (one logger instance per group); -shards splits those groups
// across independent datapath shards (each with its own socket, batch
// rings and lock), and -batch sizes the sendmmsg/recvmmsg rings.
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"lbrm"
	"lbrm/internal/obs"
	"lbrm/internal/obs/fleet"
	"lbrm/internal/shard"
	"lbrm/internal/transport"
	"lbrm/internal/transport/udp"
	"lbrm/internal/wire"
)

// serveMetrics exposes the daemon's observability control plane over
// HTTP: golden exposition at /metrics (?format=json for the JSON
// document), Prometheus text at /metrics/prom, Go runtime health at
// /metrics/runtime, the health/SLO engine at /metrics/health, windowed
// series at /metrics/series, and the standard pprof profiling endpoints
// under /debug/pprof/. It also starts the wall-clock series sampler
// driving the local health engine (DESIGN.md §15).
func serveMetrics(addr string, sink *obs.Sink) {
	node := fleet.NewNode(sink, 2*time.Second)
	node.Start()
	mux := node.Mux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	go func() {
		if err := http.ListenAndServe(addr, mux); err != nil {
			log.Printf("lbrm-logger: metrics server: %v", err)
		}
	}()
	log.Printf("lbrm-logger: metrics on http://%s/metrics (prom at /metrics/prom, health at /metrics/health, profiles at /debug/pprof/)", addr)
}

// parseAddrList parses a comma-separated list of host:ports, naming the
// flag in the error so a typo points at the right place.
func parseAddrList(name, spec string) ([]transport.Addr, error) {
	if spec == "" {
		return nil, nil
	}
	var out []transport.Addr
	for _, s := range strings.Split(spec, ",") {
		a, err := udp.ParseAddr(strings.TrimSpace(s))
		if err != nil {
			return nil, fmt.Errorf("bad %s entry %q: %v", name, s, err)
		}
		out = append(out, a)
	}
	return out, nil
}

func main() {
	mode := flag.String("mode", "secondary", "secondary | primary | replica")
	mcast := flag.String("mcast", "239.9.9.9:7000", "multicast base ip:port (group i uses port+i-1)")
	listen := flag.String("listen", "0.0.0.0:0", "unicast bind host:port (with -shards > 1, shard s binds port+s)")
	primary := flag.String("primary", "", "primary logger host:port (secondary mode)")
	tier := flag.Int("tier", 0, "global tier in the logger tree: 0 = site secondary, 1+ = regional aggregator (secondary mode)")
	parents := flag.String("parents", "", "comma-separated upward escalation chain, immediate parent first; empty = escalate straight to -primary (secondary mode)")
	siblings := flag.String("siblings", "", "comma-separated alternate parents at the immediate parent's tier, tried when the parent stays dead (secondary mode)")
	treeEpoch := flag.Uint("tree-epoch", 0, "tree-configuration generation announced in reparent packets; bump on restart so children fence stale announcements (0 = 1; secondary mode)")
	announceTTL := flag.Int("announce-ttl", 0, "multicast TTL scope for reparent announcements (0 = region scope; secondary mode)")
	makespan := flag.Bool("makespan-repair", false, "makespan-aware repair scheduling: release upward backfill fetches largest-demand-first (secondary mode)")
	replicas := flag.String("replicas", "", "comma-separated replica host:ports (primary mode)")
	quorum := flag.Int("quorum", 0, "write quorum: replicas that must apply a packet before the source ack mints (0 = ack immediately; primary mode)")
	maxPackets := flag.Int("max-packets", 0, "retention: max packets per stream in memory (0 = unlimited)")
	maxAge := flag.Duration("max-age", 0, "retention: max packet age (0 = unlimited)")
	spill := flag.Bool("spill", false, "spill memory-evicted packets to disk (keeps them servable)")
	spillDir := flag.String("spill-dir", "", "directory for spill files (default: os temp dir)")
	iface := flag.String("iface", "", "network interface for multicast")
	statsEvery := flag.Duration("stats", 10*time.Second, "stats logging interval")
	metricsAddr := flag.String("metrics-addr", "", "serve the metrics/trace exposition over HTTP on this host:port")
	nGroups := flag.Int("groups", 1, "number of multicast groups served (consecutive ports from -mcast)")
	shards := flag.Int("shards", 1, "datapath shards; groups are spread across shards by stable modulus")
	batch := flag.Int("batch", 0, "datagrams per socket syscall (0 = default ring, 1 = unbatched)")
	flag.Parse()
	if err := shard.ValidateCounts(*nGroups, *shards, *batch); err != nil {
		log.Fatalf("lbrm-logger: %v", err)
	}

	var sink *obs.Sink
	if *metricsAddr != "" {
		sink = obs.NewSink()
	}
	ret := lbrm.Retention{
		MaxPackets: *maxPackets, MaxAge: *maxAge,
		SpillToDisk: *spill, SpillDir: *spillDir,
	}
	groups, err := shard.GroupSpecs(*mcast, *nGroups)
	if err != nil {
		log.Fatal(err)
	}
	if *shards > *nGroups {
		log.Printf("lbrm-logger: clamping -shards %d to -groups %d", *shards, *nGroups)
		*shards = *nGroups
	}

	// mk builds the protocol handler (and its stats reporter) for one
	// group; a shard serving several groups muxes them on its socket.
	var mk func(g lbrm.GroupID) (transport.Handler, func())
	switch *mode {
	case "secondary":
		var pa transport.Addr
		if *primary != "" {
			if pa, err = udp.ParseAddr(*primary); err != nil {
				log.Fatalf("bad -primary: %v", err)
			}
		}
		parentChain, err := parseAddrList("-parents", *parents)
		if err != nil {
			log.Fatal(err)
		}
		sibs, err := parseAddrList("-siblings", *siblings)
		if err != nil {
			log.Fatal(err)
		}
		mk = func(g lbrm.GroupID) (transport.Handler, func()) {
			sec := lbrm.NewSecondaryLogger(lbrm.SecondaryConfig{
				Group: g, Retention: ret, Primary: pa, Obs: sink,
				Tier: *tier, Parents: parentChain, Siblings: sibs,
				TreeEpoch: uint32(*treeEpoch), AnnounceTTL: *announceTTL,
				MakespanRepair: *makespan,
			})
			return sec, func() {
				st := sec.Stats()
				log.Printf("g%d: logged=%d nacksIn=%d served=%d remcast=%d nacksUp=%d acks=%d",
					g, st.PacketsLogged, st.NacksFromClients, st.RetransUnicast,
					st.Remulticasts, st.NacksToPrimary, st.AcksSent)
			}
		}
	case "primary", "replica":
		reps, err := parseAddrList("-replicas", *replicas)
		if err != nil {
			log.Fatal(err)
		}
		if *quorum > len(reps) {
			log.Fatalf("-quorum %d unsatisfiable with %d replicas", *quorum, len(reps))
		}
		mk = func(g lbrm.GroupID) (transport.Handler, func()) {
			pri := lbrm.NewPrimaryLogger(lbrm.PrimaryConfig{
				Group: g, Retention: ret, Replica: *mode == "replica",
				Replicas: reps, Quorum: *quorum, Obs: sink,
			})
			return pri, func() {
				st := pri.Stats()
				log.Printf("g%d: logged=%d srcAcks=%d nacksIn=%d served=%d syncsOut=%d syncsIn=%d replica=%v",
					g, st.PacketsLogged, st.SourceAcks, st.NacksFromClients,
					st.RetransServed, st.LogSyncsSent, st.LogSyncsApplied, pri.IsReplica())
				if *quorum > 0 && !pri.IsReplica() {
					log.Printf("g%d: quorum=%d parked=%d ringStalls=%d ringRepairs=%d",
						g, *quorum, st.AcksParked, st.RingStalls, st.RingRepairs)
				}
			}
		}
	default:
		log.Fatalf("unknown -mode %q", *mode)
	}

	reports := make([][]func(), *shards)
	fleet, err := shard.Start(shard.Config{
		Shards: *shards,
		Groups: groups,
		Node: udp.Config{
			Listen:    *listen,
			Interface: *iface,
			Obs:       sink,
			Batch:     *batch,
		},
	}, func(s int, gs []wire.GroupID) transport.Handler {
		hs := make(map[wire.GroupID]transport.Handler, len(gs))
		for _, g := range gs {
			h, rep := mk(g)
			hs[g] = h
			reports[s] = append(reports[s], rep)
		}
		if len(gs) == 1 {
			return hs[gs[0]]
		}
		return shard.NewMux(hs, nil)
	})
	if err != nil {
		log.Fatal(err)
	}
	defer fleet.Close()
	for s := 0; s < fleet.Shards(); s++ {
		log.Printf("lbrm-logger: %s shard %d/%d on %s, unicast %s",
			*mode, s, fleet.Shards(), *mcast, fleet.Node(s).Addr())
	}
	if *metricsAddr != "" {
		serveMetrics(*metricsAddr, sink)
	}

	report := func() {
		for s := 0; s < fleet.Shards(); s++ {
			for _, rep := range reports[s] {
				fleet.Node(s).Do(rep)
			}
		}
	}
	tick := time.NewTicker(*statsEvery)
	defer tick.Stop()
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	for {
		select {
		case <-tick.C:
			report()
		case <-sig:
			report()
			return
		}
	}
}
