// Command lbrm-logger runs an LBRM logging server over real UDP, in one of
// three roles:
//
//   - secondary: a site's secondary logging server (§2.2.1) — logs the
//     multicast stream, serves site-local retransmissions, answers
//     discovery queries and Acker Selection packets.
//   - primary: the primary logging server (§2.2) — logs everything,
//     acknowledges the source, serves retransmissions, replicates to
//     -replica peers.
//   - replica: a passive replica (§2.2.3), promoted by the source on
//     primary failure.
package main

import (
	"flag"
	"log"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"lbrm"
	"lbrm/internal/obs"
	"lbrm/internal/transport"
	"lbrm/internal/transport/udp"
	"lbrm/internal/wire"
)

// serveMetrics exposes a sink over HTTP at /metrics (text by default,
// ?format=json for the JSON document), Go runtime health at
// /metrics/runtime (GC pauses, goroutines, heap), and the standard pprof
// profiling endpoints under /debug/pprof/.
func serveMetrics(addr string, sink *obs.Sink) {
	mux := http.NewServeMux()
	mux.Handle("/metrics", obs.Handler(sink))
	mux.Handle("/metrics/runtime", obs.RuntimeHandler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	go func() {
		if err := http.ListenAndServe(addr, mux); err != nil {
			log.Printf("lbrm-logger: metrics server: %v", err)
		}
	}()
	log.Printf("lbrm-logger: metrics on http://%s/metrics (runtime at /metrics/runtime, profiles at /debug/pprof/)", addr)
}

func main() {
	mode := flag.String("mode", "secondary", "secondary | primary | replica")
	mcast := flag.String("mcast", "239.9.9.9:7000", "multicast group ip:port")
	listen := flag.String("listen", "0.0.0.0:0", "unicast bind host:port (give loggers a stable port)")
	primary := flag.String("primary", "", "primary logger host:port (secondary mode)")
	replicas := flag.String("replicas", "", "comma-separated replica host:ports (primary mode)")
	maxPackets := flag.Int("max-packets", 0, "retention: max packets per stream in memory (0 = unlimited)")
	maxAge := flag.Duration("max-age", 0, "retention: max packet age (0 = unlimited)")
	spill := flag.Bool("spill", false, "spill memory-evicted packets to disk (keeps them servable)")
	spillDir := flag.String("spill-dir", "", "directory for spill files (default: os temp dir)")
	iface := flag.String("iface", "", "network interface for multicast")
	statsEvery := flag.Duration("stats", 10*time.Second, "stats logging interval")
	metricsAddr := flag.String("metrics-addr", "", "serve the metrics/trace exposition over HTTP on this host:port")
	flag.Parse()

	var sink *obs.Sink
	if *metricsAddr != "" {
		sink = obs.NewSink()
	}
	ret := lbrm.Retention{
		MaxPackets: *maxPackets, MaxAge: *maxAge,
		SpillToDisk: *spill, SpillDir: *spillDir,
	}
	groups := map[wire.GroupID]string{1: *mcast}
	var handler transport.Handler
	var report func()

	switch *mode {
	case "secondary":
		cfg := lbrm.SecondaryConfig{Group: 1, Retention: ret, Obs: sink}
		if *primary != "" {
			pa, err := udp.ParseAddr(*primary)
			if err != nil {
				log.Fatalf("bad -primary: %v", err)
			}
			cfg.Primary = pa
		}
		sec := lbrm.NewSecondaryLogger(cfg)
		handler = sec
		report = func() {
			st := sec.Stats()
			log.Printf("logged=%d nacksIn=%d served=%d remcast=%d nacksUp=%d acks=%d",
				st.PacketsLogged, st.NacksFromClients, st.RetransUnicast,
				st.Remulticasts, st.NacksToPrimary, st.AcksSent)
		}
	case "primary", "replica":
		cfg := lbrm.PrimaryConfig{Group: 1, Retention: ret, Replica: *mode == "replica", Obs: sink}
		if *replicas != "" {
			for _, r := range strings.Split(*replicas, ",") {
				ra, err := udp.ParseAddr(strings.TrimSpace(r))
				if err != nil {
					log.Fatalf("bad -replicas entry %q: %v", r, err)
				}
				cfg.Replicas = append(cfg.Replicas, ra)
			}
		}
		pri := lbrm.NewPrimaryLogger(cfg)
		handler = pri
		report = func() {
			st := pri.Stats()
			log.Printf("logged=%d srcAcks=%d nacksIn=%d served=%d syncsOut=%d syncsIn=%d replica=%v",
				st.PacketsLogged, st.SourceAcks, st.NacksFromClients,
				st.RetransServed, st.LogSyncsSent, st.LogSyncsApplied, pri.IsReplica())
		}
	default:
		log.Fatalf("unknown -mode %q", *mode)
	}

	node, err := udp.Start(udp.Config{
		Listen:    *listen,
		Groups:    groups,
		Interface: *iface,
		Obs:       sink,
	}, handler)
	if err != nil {
		log.Fatal(err)
	}
	defer node.Close()
	log.Printf("lbrm-logger: %s on %s, unicast %s", *mode, *mcast, node.Addr())
	if *metricsAddr != "" {
		serveMetrics(*metricsAddr, sink)
	}

	tick := time.NewTicker(*statsEvery)
	defer tick.Stop()
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	for {
		select {
		case <-tick.C:
			node.Do(report)
		case <-sig:
			node.Do(report)
			return
		}
	}
}
