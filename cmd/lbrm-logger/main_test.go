package main

import (
	"strings"
	"testing"

	"lbrm/internal/shard"
)

// TestFlagCountValidation pins the -groups/-shards/-batch guard the
// command runs right after flag parsing: zero or negative counts must be
// rejected with an error naming the offending flag, and the documented
// sentinel values (batch 0 = default ring, 1 = unbatched) must pass.
func TestFlagCountValidation(t *testing.T) {
	for _, tc := range []struct {
		groups, shards, batch int
		wantFlag              string // empty = must be accepted
	}{
		{1, 1, 0, ""},
		{16, 4, 64, ""},
		{1, 1, 1, ""},
		{0, 1, 0, "-groups"},
		{-1, 1, 0, "-groups"},
		{1, 0, 0, "-shards"},
		{1, -2, 0, "-shards"},
		{1, 1, -1, "-batch"},
	} {
		err := shard.ValidateCounts(tc.groups, tc.shards, tc.batch)
		if tc.wantFlag == "" {
			if err != nil {
				t.Errorf("(%d, %d, %d): rejected: %v", tc.groups, tc.shards, tc.batch, err)
			}
			continue
		}
		if err == nil {
			t.Errorf("(%d, %d, %d): accepted, want error naming %s", tc.groups, tc.shards, tc.batch, tc.wantFlag)
		} else if !strings.Contains(err.Error(), tc.wantFlag) {
			t.Errorf("(%d, %d, %d): error %q does not name %s", tc.groups, tc.shards, tc.batch, err, tc.wantFlag)
		}
	}
}

// TestParseAddrList covers the comma-separated address flags (-parents,
// -siblings, -replicas): empty specs are nil, entries are trimmed, and a
// malformed entry fails with the flag's name in the error.
func TestParseAddrList(t *testing.T) {
	if got, err := parseAddrList("-parents", ""); err != nil || got != nil {
		t.Fatalf("empty spec: got %v, %v; want nil, nil", got, err)
	}
	got, err := parseAddrList("-parents", "127.0.0.1:7001, 127.0.0.1:7002")
	if err != nil {
		t.Fatalf("valid spec rejected: %v", err)
	}
	if len(got) != 2 || got[0].String() != "127.0.0.1:7001" || got[1].String() != "127.0.0.1:7002" {
		t.Fatalf("valid spec parsed as %v", got)
	}
	if _, err := parseAddrList("-siblings", "127.0.0.1:7001,nonsense"); err == nil {
		t.Fatal("malformed entry accepted")
	} else if !strings.Contains(err.Error(), "-siblings") {
		t.Fatalf("error %q does not name the flag", err)
	}
}
