// Command lbrm-pcap decodes a capture produced by lbrm-sim -pcap (or any
// pcap of LBRM traffic written by this library) and prints the protocol
// timeline: one line per packet with relative timestamps, addresses and
// the decoded LBRM header.
//
//	lbrm-sim -sites 5 -receivers 3 -loss 0.2 -pcap /tmp/run.pcap
//	lbrm-pcap /tmp/run.pcap
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"time"

	"lbrm/internal/pcapio"
	"lbrm/internal/wire"
)

func main() {
	typeFilter := flag.String("type", "", "only show this packet type (e.g. NACK, RETRANS)")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: lbrm-pcap [-type T] <capture.pcap>")
		os.Exit(2)
	}
	f, err := os.Open(flag.Arg(0))
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	r, err := pcapio.NewReader(f)
	if err != nil {
		log.Fatal(err)
	}
	var t0 time.Time
	counts := map[string]int{}
	shown, total := 0, 0
	for {
		rec, err := r.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			log.Fatalf("record %d: %v", total, err)
		}
		total++
		if t0.IsZero() {
			t0 = rec.Time
		}
		var p wire.Packet
		desc := fmt.Sprintf("non-LBRM payload (%d bytes)", len(rec.Payload))
		name := "OTHER"
		if err := p.Unmarshal(rec.Payload); err == nil {
			desc = p.String()
			name = p.Type.String()
		}
		counts[name]++
		if *typeFilter != "" && name != *typeFilter {
			continue
		}
		shown++
		fmt.Printf("%12s  %d.%d.%d.%d → %d.%d.%d.%d  %s\n",
			rec.Time.Sub(t0).Round(time.Microsecond),
			rec.Src[0], rec.Src[1], rec.Src[2], rec.Src[3],
			rec.Dst[0], rec.Dst[1], rec.Dst[2], rec.Dst[3],
			desc)
	}
	fmt.Printf("\n%d packets (%d shown)\n", total, shown)
	for name, n := range counts {
		fmt.Printf("  %-12s %d\n", name, n)
	}
}
