//go:build race

package lbrm_test

// raceEnabled reports whether this test binary was built with the race
// detector; perf-sensitive benchmarks skip themselves when it is (their
// wall-clock metrics are meaningless at race-instrumented speed).
const raceEnabled = true
