package lbrm_test

import (
	"testing"
	"time"

	"lbrm"
)

// TestFacadeConstructors exercises the public constructors and the
// re-exported defaults.
func TestFacadeConstructors(t *testing.T) {
	if lbrm.DefaultHeartbeat.HMin != 250*time.Millisecond ||
		lbrm.DefaultHeartbeat.HMax != 32*time.Second ||
		lbrm.DefaultHeartbeat.Backoff != 2 {
		t.Fatalf("DefaultHeartbeat = %+v, want the paper's DIS parameters", lbrm.DefaultHeartbeat)
	}
	f := lbrm.FixedHeartbeat(time.Second)
	if f.HMin != time.Second || f.HMax != time.Second || f.Backoff != 1 {
		t.Fatalf("FixedHeartbeat = %+v", f)
	}
	if _, err := lbrm.NewSender(lbrm.SenderConfig{
		Source: 1, Group: 1,
		Heartbeat: lbrm.HeartbeatParams{HMin: -time.Second, HMax: time.Second, Backoff: 2},
	}); err == nil {
		t.Fatal("invalid heartbeat accepted")
	}
	if r := lbrm.NewReceiver(lbrm.ReceiverConfig{Group: 1}); r == nil {
		t.Fatal("NewReceiver nil")
	}
	if p := lbrm.NewPrimaryLogger(lbrm.PrimaryConfig{Group: 1}); p == nil {
		t.Fatal("NewPrimaryLogger nil")
	}
	if s := lbrm.NewSecondaryLogger(lbrm.SecondaryConfig{Group: 1}); s == nil {
		t.Fatal("NewSecondaryLogger nil")
	}
}

// TestTestbedDefaults checks the builder's zero-value behaviour.
func TestTestbedDefaults(t *testing.T) {
	tb, err := lbrm.NewTestbed(lbrm.TestbedConfig{Seed: 1,
		Sender: lbrm.SenderConfig{Heartbeat: fastHB}})
	if err != nil {
		t.Fatal(err)
	}
	if tb.Group != 1 || tb.Source != 1 {
		t.Fatalf("defaults group=%d source=%d", tb.Group, tb.Source)
	}
	if len(tb.Sites) != 2 || tb.TotalReceivers() != 6 {
		t.Fatalf("default topology: %d sites, %d receivers", len(tb.Sites), tb.TotalReceivers())
	}
	if tb.Primary == nil || tb.Sender == nil || tb.SourceSite == nil {
		t.Fatal("testbed pieces missing")
	}
	// PathDelay sanity through the façade.
	d := tb.Net.PathDelay(tb.SenderNode.ID(), tb.Sites[0].ReceiverNodes[0].ID())
	if d != 40*time.Millisecond {
		t.Fatalf("sender→receiver one-way = %v, want 40ms", d)
	}
}

// TestTestbedStop stops every component and verifies the network drains
// (the documented RunUntilIdle precondition).
func TestTestbedStop(t *testing.T) {
	tb, err := lbrm.NewTestbed(lbrm.TestbedConfig{Seed: 2, Sites: 2, ReceiversPerSite: 2,
		Sender: lbrm.SenderConfig{Heartbeat: fastHB}})
	if err != nil {
		t.Fatal(err)
	}
	tb.Send([]byte("x"))
	tb.Run(500 * time.Millisecond)
	tb.StopAll()
	done := make(chan struct{})
	go func() {
		tb.RunUntilIdle() // must terminate once everything is stopped
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("RunUntilIdle did not terminate after stopping all components")
	}
}
