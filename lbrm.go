// Package lbrm is a Go implementation of Log-Based Receiver-reliable
// Multicast (LBRM), the reliable-multicast protocol of Holbrook, Singhal &
// Cheriton (SIGCOMM '95), designed for low-rate, freshness-critical state
// dissemination: distributed simulation (DIS) terrain updates, stock
// tickers, cache invalidation.
//
// The protocol in one paragraph: a source multicasts sequence-numbered
// data packets and fills idle periods with heartbeats whose spacing starts
// at HMin right after data and backs off geometrically to HMax (§2.1), so
// receivers detect isolated losses within HMin at a fraction of a fixed
// heartbeat scheme's cost. Reliability comes from a logging service rather
// than per-receiver ACKs: a primary logger records every packet (the
// source buffers until the primary acknowledges), per-site secondary
// loggers record the stream and serve local retransmissions, so one NACK
// per site — not one per receiver — ever crosses the WAN (§2.2). With
// statistical acknowledgement (§2.3) a small random set of secondary
// loggers acknowledges each packet, letting the source detect and repair
// widespread loss with one immediate re-multicast while isolated losses
// stay on the cheap unicast path.
//
// The package re-exports the protocol endpoints (Sender, Receiver), the
// logging servers (PrimaryLogger, SecondaryLogger), and two bindings: a
// deterministic network simulator (Testbed, for experiments and tests) and
// real UDP multicast (lbrm/udp... see cmd/ for ready-made daemons).
package lbrm

import (
	"time"

	"lbrm/internal/core"
	"lbrm/internal/estimator"
	"lbrm/internal/heartbeat"
	"lbrm/internal/logger"
	"lbrm/internal/obs"
	"lbrm/internal/transport"
	"lbrm/internal/wire"
)

// Protocol endpoint types.
type (
	// Sender is an LBRM multicast source.
	Sender = core.Sender
	// SenderConfig configures a Sender.
	SenderConfig = core.SenderConfig
	// SenderStats counts a sender's protocol activity.
	SenderStats = core.SenderStats
	// StatAckConfig tunes statistical acknowledgement (§2.3).
	StatAckConfig = core.StatAckConfig
	// Durability selects when the sender may release retained packets.
	Durability = core.Durability
	// Receiver is an LBRM receiver endpoint.
	Receiver = core.Receiver
	// ReceiverConfig configures a Receiver.
	ReceiverConfig = core.ReceiverConfig
	// ReceiverStats counts a receiver's protocol activity.
	ReceiverStats = core.ReceiverStats
	// Event is one packet delivered to the application.
	Event = core.Event
	// StreamKey identifies one source's stream within a group.
	StreamKey = core.StreamKey
)

// Logging service types (§2.2).
type (
	// PrimaryLogger is the primary logging server (or a replica).
	PrimaryLogger = logger.Primary
	// PrimaryConfig configures a PrimaryLogger.
	PrimaryConfig = logger.PrimaryConfig
	// PrimaryStats counts a primary's activity.
	PrimaryStats = logger.PrimaryStats
	// SecondaryLogger is a site secondary logging server.
	SecondaryLogger = logger.Secondary
	// SecondaryConfig configures a SecondaryLogger.
	SecondaryConfig = logger.SecondaryConfig
	// SecondaryStats counts a secondary's activity.
	SecondaryStats = logger.SecondaryStats
	// Retention bounds a log store.
	Retention = logger.Retention
	// LogStreamKey identifies a stream inside a logging server's store.
	LogStreamKey = logger.StreamKey
	// LogStore is a logging server's per-stream packet log.
	LogStore = logger.Store
)

// Heartbeat scheduling (§2.1).
type (
	// HeartbeatParams parametrizes the variable heartbeat.
	HeartbeatParams = heartbeat.Params
)

// Transport plumbing.
type (
	// Addr is a transport address.
	Addr = transport.Addr
	// Env is the environment protocol handlers run in.
	Env = transport.Env
	// Handler is a protocol node.
	Handler = transport.Handler
	// TraceEvent is one datagram crossing a traced node's boundary.
	TraceEvent = transport.TraceEvent
	// GroupID names a multicast group.
	GroupID = wire.GroupID
	// SourceID names a data stream.
	SourceID = wire.SourceID
	// SeqRange is an inclusive range of sequence numbers.
	SeqRange = wire.SeqRange
)

// Estimator configuration re-exports.
type (
	// RTTConfig tunes the t_wait estimator.
	RTTConfig = estimator.RTTConfig
	// GroupSizeConfig tunes the N_sl estimator.
	GroupSizeConfig = estimator.GroupSizeConfig
	// ProbePlan tunes bootstrap group-size probing.
	ProbePlan = estimator.ProbePlan
)

// Observability re-exports (DESIGN.md §9).
type (
	// ObsSink bundles a metrics registry and trace ring for one component.
	ObsSink = obs.Sink
	// ObsRegistry is a preregistered, lock-free-on-the-hot-path metrics
	// registry.
	ObsRegistry = obs.Registry
	// ObsSnapshot is a point-in-time registry capture.
	ObsSnapshot = obs.Snapshot
	// ObsDump is the exposition payload (registry snapshot + trace window).
	ObsDump = obs.Dump
)

// NewObsSink returns a sink with a fresh registry and trace ring.
func NewObsSink() *ObsSink { return obs.NewSink() }

// ObsDumpOf captures a sink's current state for exposition.
func ObsDumpOf(s *ObsSink) ObsDump { return obs.DumpOf(s) }

// ObsMerge sums counters/histograms and max-merges gauges across snapshots.
func ObsMerge(snaps ...ObsSnapshot) ObsSnapshot { return obs.Merge(snaps...) }

// Durability modes.
const (
	// ReleaseOnPrimaryAck frees retained packets on the primary's ack.
	ReleaseOnPrimaryAck = core.ReleaseOnPrimaryAck
	// ReleaseOnReplicaAck waits for replica durability.
	ReleaseOnReplicaAck = core.ReleaseOnReplicaAck
)

// DefaultHeartbeat is the paper's DIS parameterization: HMin 250ms (the
// terrain freshness bound), HMax 32s, backoff 2.
var DefaultHeartbeat = heartbeat.DefaultParams

// FixedHeartbeat returns the fixed-interval baseline schedule (§2's basic
// protocol; compared against in Figures 4-5).
func FixedHeartbeat(h time.Duration) HeartbeatParams { return heartbeat.Fixed(h) }

// NewSender returns a Sender for cfg; attach it to a transport by calling
// Start (the simulator and UDP bindings do this for you).
func NewSender(cfg SenderConfig) (*Sender, error) { return core.NewSender(cfg) }

// NewReceiver returns a Receiver for cfg.
func NewReceiver(cfg ReceiverConfig) *Receiver { return core.NewReceiver(cfg) }

// NewPrimaryLogger returns a primary logging server (or replica).
func NewPrimaryLogger(cfg PrimaryConfig) *PrimaryLogger { return logger.NewPrimary(cfg) }

// NewSecondaryLogger returns a site secondary logging server.
func NewSecondaryLogger(cfg SecondaryConfig) *SecondaryLogger { return logger.NewSecondary(cfg) }

// Trace wraps a protocol handler so every datagram it receives or
// transmits is reported to fn; it composes with both bindings.
func Trace(h Handler, fn func(TraceEvent)) Handler { return transport.Trace(h, fn) }
