// Factory: factory-automation monitoring over LBRM (§4.4).
//
// Sensors on the factory floor publish equipment status; monitoring
// systems subscribe. The paper highlights three fits:
//
//   - record-keeping: "factory automation typically requires that all
//     transactions are logged" — the LBRM logging service provides this as
//     a side effect of reliability (the primary's log below spills to disk
//     once its memory budget fills);
//   - dynamic reconfiguration: receiver-reliability means no receiver
//     lists — a new monitor appears mid-run with no connection setup;
//   - mobile devices: "when a mobile host reconnects, it can recover any
//     lost data from a logging server without interfering with the other
//     receivers."
//
// This example runs three sensor streams on one group (exercising the
// endpoints' multi-stream state), a fixed monitor, a handheld that drops
// off the network and recovers its backlog on reconnect, and a monitor
// that joins mid-run.
//
// Run with: go run ./examples/factory
package main

import (
	"fmt"
	"time"

	"lbrm"
)

const (
	group       = lbrm.GroupID(1)
	pressSensor = lbrm.SourceID(1)
	ovenSensor  = lbrm.SourceID(2)
	beltSensor  = lbrm.SourceID(3)
)

var sensorName = map[lbrm.SourceID]string{
	pressSensor: "press", ovenSensor: "oven", beltSensor: "belt",
}

func main() {
	hb := lbrm.HeartbeatParams{HMin: 100 * time.Millisecond, HMax: 3200 * time.Millisecond, Backoff: 2}
	net := lbrm.NewNetwork(13)

	floor := net.NewSite(lbrm.SiteParams{Name: "floor"})
	office := net.NewSite(lbrm.SiteParams{Name: "office"})

	// The plant historian: the primary logger with a small memory budget
	// spilling to disk — the paper's record-keeping requirement.
	primary := lbrm.NewPrimaryLogger(lbrm.PrimaryConfig{
		Group: group,
		Retention: lbrm.Retention{
			MaxBytes: 256, SpillToDisk: true,
		},
	})
	primaryNode := floor.NewHost("historian", primary)

	// Three sensors, each an independent LBRM stream on the same group.
	sensors := map[lbrm.SourceID]*lbrm.Sender{}
	for _, id := range []lbrm.SourceID{pressSensor, ovenSensor, beltSensor} {
		s, err := lbrm.NewSender(lbrm.SenderConfig{
			Source: id, Group: group, Heartbeat: hb, Primary: primaryNode.Addr(),
		})
		if err != nil {
			panic(err)
		}
		sensors[id] = s
		floor.NewHost("sensor/"+sensorName[id], s)
	}

	// The office site logger serves the monitors.
	officeLogger := lbrm.NewSecondaryLogger(lbrm.SecondaryConfig{
		Group: group, Primary: primaryNode.Addr(),
	})
	officeLoggerNode := office.NewHost("logger", officeLogger)

	newMonitor := func(site *lbrm.Site, name string) *lbrm.SimNode {
		rcv := lbrm.NewReceiver(lbrm.ReceiverConfig{
			Group: group, Heartbeat: hb,
			Secondary: officeLoggerNode.Addr(),
			Primary:   primaryNode.Addr(),
			NackDelay: 10 * time.Millisecond,
			OnData: func(e lbrm.Event) {
				tag := ""
				if e.Retransmitted {
					tag = "  (recovered from log)"
				}
				fmt.Printf("  %-10s %-5s #%d %s%s\n", name, sensorName[e.Stream.Source], e.Seq, e.Payload, tag)
			},
		})
		return site.NewHost(name, rcv)
	}
	newMonitor(office, "wallboard")
	handheldNode := newMonitor(office, "handheld")
	net.Start()

	emit := func(id lbrm.SourceID, msg string) {
		if _, err := sensors[id].Send([]byte(msg)); err != nil {
			panic(err)
		}
	}

	fmt.Println("== shift starts: sensors reporting ==")
	emit(pressSensor, "temp=180C ok")
	emit(ovenSensor, "temp=240C ok")
	net.RunFor(time.Second)

	fmt.Println("\n== handheld walks into a dead zone; press faults meanwhile ==")
	outage := &lbrm.Gate{Down: true}
	handheldNode.DownLink().SetLoss(outage)
	handheldNode.UpLink().SetLoss(outage)
	emit(pressSensor, "FAULT overpressure")
	emit(beltSensor, "speed=1.2m/s ok")
	net.RunFor(2 * time.Second)

	fmt.Println("\n== handheld reconnects: backlog recovered from the office logger ==")
	outage.Down = false
	net.RunFor(4 * time.Second)

	fmt.Println("\n== a new monitor appears mid-run — no receiver list, no setup handshake ==")
	newMonitor(office, "lineboss")
	emit(ovenSensor, "temp=245C ok")
	net.RunFor(2 * time.Second)

	fmt.Println("\n== historian record ==")
	for _, id := range []lbrm.SourceID{pressSensor, ovenSensor, beltSensor} {
		key := lbrm.LogStreamKey{Source: id, Group: group}
		if st := primary.Store(key); st != nil {
			fmt.Printf("  %-5s stream: %d transactions logged (contiguous through #%d)\n",
				sensorName[id], st.Contiguous(), st.Contiguous())
		}
	}
}
