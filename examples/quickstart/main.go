// Quickstart: a complete LBRM deployment in the deterministic simulator.
//
// It builds the paper's canonical topology — a source site with the sender
// and primary logger, plus receiver sites each with a secondary logger and
// a few receivers behind a shared tail circuit — publishes a handful of
// updates, injects a tail-circuit loss that an entire site misses at once,
// and shows the hierarchy recovering it: receivers ask their site logger,
// the site logger asks the primary, one NACK crosses the WAN.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"time"

	"lbrm"
)

func main() {
	tb, err := lbrm.NewTestbed(lbrm.TestbedConfig{
		Seed:             1,
		Sites:            2,
		ReceiversPerSite: 3,
		Sender: lbrm.SenderConfig{
			// The paper's DIS parameters: first heartbeat 250 ms after
			// data (the freshness bound), backing off ×2 up to 32 s.
			Heartbeat: lbrm.DefaultHeartbeat,
		},
		Receiver: lbrm.ReceiverConfig{
			OnData: func(e lbrm.Event) {
				tag := ""
				if e.Retransmitted {
					tag = "   ← recovered"
				}
				fmt.Printf("  receiver got seq %d: %q%s\n", e.Seq, e.Payload, tag)
			},
		},
	})
	if err != nil {
		panic(err)
	}

	fmt.Println("== 1. normal operation ==")
	tb.Send([]byte("bridge intact"))
	tb.Run(time.Second)

	fmt.Println("\n== 2. site 1's tail circuit drops the next update ==")
	fmt.Println("(all three receivers there — and their logger — miss it together)")
	tb.Sites[0].Site.TailDown().SetLoss(&lbrm.FirstN{N: 1})
	tb.Send([]byte("bridge destroyed"))
	tb.Run(3 * time.Second)

	fmt.Println("\n== 3. where the recovery traffic went ==")
	sec := tb.Sites[0].Secondary.Stats()
	fmt.Printf("site 1 logger: %d receiver requests served, %d NACK sent up to the primary\n",
		sec.NacksFromClients, sec.NacksToPrimary)
	fmt.Printf("primary logger: %d retransmissions served\n", tb.Primary.Stats().RetransServed)
	fmt.Printf("every receiver has the update: %v\n", tb.EveryoneHas(2))
	fmt.Printf("sender retention drained (primary acked): %d packets held\n", tb.Sender.Retained())
}
