// Terrain: the paper's motivating DIS scenario (§1).
//
// A virtual battlefield holds terrain entities — here, a bridge — that
// stay static for minutes but whose destruction must reach every simulator
// within a fraction of a second, or a tank drives onto a bridge that no
// longer exists. The bridge is an LBRM stream: almost no data traffic,
// variable heartbeats guaranteeing freshness, the logging hierarchy
// repairing losses.
//
// The example puts tank simulators at three sites, lets the terrain sit
// idle (watch the heartbeats back off), destroys the bridge while one
// site's tail circuit is congested, and reports how each simulator learned
// of the destruction.
//
// Run with: go run ./examples/terrain
package main

import (
	"fmt"
	"time"

	"lbrm"
)

func main() {
	tb, err := lbrm.NewTestbed(lbrm.TestbedConfig{
		Seed:             7,
		Sites:            3,
		ReceiversPerSite: 2,
		// The paper's terrain parameters: 250 ms freshness bound (MaxIT),
		// heartbeat backoff ×2 to a 32 s ceiling.
		Sender:   lbrm.SenderConfig{Heartbeat: lbrm.DefaultHeartbeat},
		Receiver: lbrm.ReceiverConfig{NackDelay: 10 * time.Millisecond},
	})
	if err != nil {
		panic(err)
	}

	fmt.Println("t=0s    bridge standing; update multicast once")
	tb.Send([]byte("bridge:1 status:intact"))

	fmt.Println("t=0-30s terrain idle; heartbeats back off 0.25s → 0.5s → 1s → ... → capped")
	tb.Run(30 * time.Second)
	fmt.Printf("        heartbeats so far: %d (a fixed 250 ms beacon would have sent ~%d)\n",
		tb.Sender.Stats().HeartbeatsSent, 30*4)

	fmt.Println("t=30s   site 2's tail circuit congested: 600 ms outage begins")
	now := tb.Net.Clock().Now()
	tb.Sites[1].Site.TailDown().SetLoss(&lbrm.Outages{
		Windows: []lbrm.Window{{Start: now, End: now.Add(600 * time.Millisecond)}},
	})

	fmt.Println("t=30s   ** bridge destroyed ** (update multicast once, into the outage)")
	tb.Send([]byte("bridge:1 status:destroyed"))
	tb.Run(5 * time.Second)

	fmt.Println()
	fmt.Printf("destruction delivered to %d/%d simulators:\n",
		tb.DeliveredCount(2), tb.TotalReceivers())
	key := lbrm.StreamKey{Source: tb.Source, Group: tb.Group}
	for i, site := range tb.Sites {
		for j, rcv := range site.Receivers {
			if d, ok := rcv.RecoveryTimes(key)[2]; ok {
				fmt.Printf("  site%d/tank%d: missed the multicast; heartbeat revealed the gap, recovered %v later via the site logger\n",
					i+1, j+1, d)
			} else {
				fmt.Printf("  site%d/tank%d: saw it on the first transmission\n", i+1, j+1)
			}
		}
	}
	sec := tb.Sites[1].Secondary.Stats()
	fmt.Println()
	fmt.Printf("site 2 logger during the outage: fetched %d NACK worth of packets from the primary, served its tanks locally (%d unicast, %d site-scoped re-multicast)\n",
		sec.NacksToPrimary, sec.RetransUnicast, sec.Remulticasts)
}
