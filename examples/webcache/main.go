// Webcache: the paper's Appendix A — HTML document invalidation over LBRM
// (§4.3), the protocol the authors prototyped in Mosaic.
//
// Each HTML file is associated with a multicast address; browsers that
// cache a page subscribe. When the HTTP server sees a local document
// change, it reliably multicasts an invalidation ("TRANS:<seq>.0:UPDATE:
// <url>" in the appendix's text format); the browser highlights its RELOAD
// button. LBRM heartbeats assure each browser its picture is fresh, and
// the logging service replays missed invalidations ("RETRANS:...") — here
// exercised by knocking one browser off the network during an update.
//
// Unlike the other examples this one assembles the topology by hand from
// the public simulation API (sites, hosts, loggers, receivers), which is
// also how you would embed LBRM components in your own simulation.
//
// Run with: go run ./examples/webcache
package main

import (
	"fmt"
	"strings"
	"time"

	"lbrm"
)

// browser models one Mosaic-style client cache.
type browser struct {
	name  string
	cache map[string]bool // url → RELOAD highlighted
}

func (b *browser) onData(e lbrm.Event) {
	url, ok := strings.CutPrefix(string(e.Payload), "UPDATE: ")
	if !ok {
		return
	}
	if _, cached := b.cache[url]; !cached {
		return // page not cached here; ignore the invalidation
	}
	b.cache[url] = true
	kind := "TRANS"
	if e.Retransmitted {
		kind = "RETRANS"
	}
	fmt.Printf("  %-16s %s:%d.0:UPDATE: %s → RELOAD highlighted\n", b.name, kind, e.Seq, url)
}

func main() {
	const (
		group   = lbrm.GroupID(1)
		members = "http://www-DSG.Stanford.EDU/groupMembers.html"
		papers  = "http://www-DSG.Stanford.EDU/papers.html"
	)
	hb := lbrm.HeartbeatParams{HMin: 250 * time.Millisecond, HMax: 16 * time.Second, Backoff: 2}

	// --- assemble the topology by hand ---
	net := lbrm.NewNetwork(5)
	serverSite := net.NewSite(lbrm.SiteParams{Name: "server-site"})
	site1 := net.NewSite(lbrm.SiteParams{Name: "site1"})
	site2 := net.NewSite(lbrm.SiteParams{Name: "site2"})

	// Primary logger lives next to the HTTP server.
	primary := lbrm.NewPrimaryLogger(lbrm.PrimaryConfig{Group: group})
	primaryNode := serverSite.NewHost("primary", primary)

	// The HTTP server's invalidation publisher.
	server, err := lbrm.NewSender(lbrm.SenderConfig{
		Source: 1, Group: group, Heartbeat: hb, Primary: primaryNode.Addr(),
	})
	if err != nil {
		panic(err)
	}
	serverSite.NewHost("httpd", server)

	// Each client site runs a secondary logger; browsers find it by
	// scoped-multicast discovery (§2.2.1), like the paper's receivers.
	for _, site := range []*lbrm.Site{site1, site2} {
		site.NewHost("logger", lbrm.NewSecondaryLogger(lbrm.SecondaryConfig{
			Group: group, Primary: primaryNode.Addr(),
		}))
	}

	newBrowser := func(site *lbrm.Site, name string, urls ...string) *browser {
		b := &browser{name: name, cache: map[string]bool{}}
		for _, u := range urls {
			b.cache[u] = false
		}
		rcv := lbrm.NewReceiver(lbrm.ReceiverConfig{
			Group: group, Heartbeat: hb,
			Primary:  primaryNode.Addr(),
			Discover: true, // find the site logger by expanding-ring search
			OnData:   b.onData,
		})
		site.NewHost(name, rcv)
		return b
	}
	b1 := newBrowser(site1, "mosaic@alice", members, papers)
	b2 := newBrowser(site1, "mosaic@bob", members)
	b3 := newBrowser(site2, "mosaic@carol", members, papers)
	site2Hosts := net.Nodes()
	carolNode := site2Hosts[len(site2Hosts)-1]

	net.Start()
	net.RunFor(time.Second) // discovery completes

	fmt.Println("== groupMembers.html modified on the server ==")
	server.Send([]byte("UPDATE: " + members))
	net.RunFor(2 * time.Second)

	fmt.Println("\n== carol's host drops off the network for 2 s; papers.html changes meanwhile ==")
	now := net.Clock().Now()
	outage := &lbrm.Outages{Windows: []lbrm.Window{{Start: now, End: now.Add(2 * time.Second)}}}
	carolNode.DownLink().SetLoss(outage)
	server.Send([]byte("UPDATE: " + papers))
	net.RunFor(6 * time.Second)

	fmt.Println("\n== final browser cache state ==")
	for _, b := range []*browser{b1, b2, b3} {
		for url, dirty := range b.cache {
			state := "fresh"
			if dirty {
				state = "RELOAD highlighted"
			}
			fmt.Printf("  %-16s %-55s %s\n", b.name, url, state)
		}
	}
	fmt.Println("\n(bob never cached papers.html, so its invalidation didn't touch him;")
	fmt.Println(" carol missed the multicast during her outage and recovered it from her site's logger)")
}
