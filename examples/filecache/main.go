// Filecache: LBRM as an alternative to leases for fault-tolerant
// distributed file caching (§4.2).
//
// Instead of per-file leases with timers to maintain, each client
// subscribes to one LBRM channel per file server and reliably receives
// invalidation notifications on it. The channel's heartbeats double as the
// lease: "if the client detects a failure of its connection to the server
// (by the absence of heartbeats or other traffic), it invalidates its
// cache; this action occurs in time comparable to a lease timeout."
//
// The example caches files at two client sites, invalidates one file,
// then crashes the file server and shows every client dropping its whole
// cache within the staleness bound — and revalidating when the server
// returns.
//
// Run with: go run ./examples/filecache
package main

import (
	"fmt"
	"strings"
	"time"

	"lbrm"
)

// cacheClient models one NFS-style client cache.
type cacheClient struct {
	name  string
	files map[string]string // path → cached content ("" = invalid)
}

func (c *cacheClient) list() string {
	var valid, invalid []string
	for f, content := range c.files {
		if content == "" {
			invalid = append(invalid, f)
		} else {
			valid = append(valid, f)
		}
	}
	return fmt.Sprintf("valid=%v invalid=%v", valid, invalid)
}

func main() {
	// A short heartbeat ceiling bounds the "lease timeout": with HMax=2s
	// and StaleFactor 2, a dead server is detected within ~4-5s.
	hb := lbrm.HeartbeatParams{HMin: 250 * time.Millisecond, HMax: 2 * time.Second, Backoff: 2}

	clients := map[int][]*cacheClient{}
	mkClients := func(site int) {
		for j := 0; j < 2; j++ {
			clients[site] = append(clients[site], &cacheClient{
				name: fmt.Sprintf("site%d/client%d", site+1, j+1),
				files: map[string]string{
					"/etc/motd":      "welcome",
					"/home/a/th.tex": "draft-3",
				},
			})
		}
	}
	mkClients(0)
	mkClients(1)

	// Wire each receiver to its client: delivery invalidates single files,
	// staleness (the lease expiring) invalidates everything.
	tb, err := lbrm.NewTestbed(lbrm.TestbedConfig{
		Seed: 3, Sites: 2, ReceiversPerSite: 2,
		Sender: lbrm.SenderConfig{Heartbeat: hb},
		Receiver: lbrm.ReceiverConfig{
			StaleFactor: 2, StaleSlack: 200 * time.Millisecond,
		},
		ConfigureReceiver: func(site, idx int, cfg *lbrm.ReceiverConfig) {
			c := clients[site][idx]
			cfg.OnData = func(e lbrm.Event) {
				path, ok := strings.CutPrefix(string(e.Payload), "INVALIDATE ")
				if !ok {
					return
				}
				if _, cached := c.files[path]; cached {
					c.files[path] = ""
					fmt.Printf("  %s: %s invalidated by server notification\n", c.name, path)
				}
			}
			cfg.OnStale = func(k lbrm.StreamKey, silent time.Duration) {
				for f := range c.files {
					c.files[f] = ""
				}
				fmt.Printf("  %s: server silent for %v → whole cache invalidated (lease expiry)\n",
					c.name, silent.Round(100*time.Millisecond))
			}
			cfg.OnFresh = func(lbrm.StreamKey) {
				fmt.Printf("  %s: server back; revalidating on demand\n", c.name)
			}
		},
	})
	if err != nil {
		panic(err)
	}

	fmt.Println("t=0: caches warm; server heartbeating")
	tb.Send([]byte("hello")) // establish the stream
	tb.Run(3 * time.Second)

	fmt.Println("\nt=3s: /etc/motd changes on the server")
	tb.Send([]byte("INVALIDATE /etc/motd"))
	tb.Run(2 * time.Second)

	fmt.Println("\nt=5s: ** file server crashes ** (all its links go dark)")
	gate := &lbrm.Gate{Down: true}
	tb.SenderNode.UpLink().SetLoss(gate)
	tb.SenderNode.DownLink().SetLoss(gate)
	tb.Run(8 * time.Second)

	fmt.Println("\nt=13s: server restored")
	gate.Down = false
	tb.Send([]byte("hello-again"))
	tb.Run(2 * time.Second)

	fmt.Println("\nfinal cache state:")
	for si := range clients {
		for _, c := range clients[si] {
			fmt.Printf("  %-16s %s\n", c.name, c.list())
		}
	}
}
