// Stockticker: wide-area information dissemination (§4.1).
//
// One exchange publishes quote updates to brokers' terminals at many
// sites. This is the regime statistical acknowledgement (§2.3) was built
// for: with hundreds of subscribing sites, the source cannot wait for
// per-receiver ACKs, yet it wants to notice immediately when a quote
// missed a large part of the audience.
//
// The example runs 100 sites. A random ~k of the site loggers volunteer as
// Designated Ackers each epoch. When a quote is dropped on the exchange's
// own tail circuit (everyone misses it), the missing ACKs trigger one
// immediate re-multicast ~t_wait later — no NACK implosion, no waiting for
// receivers to time out. A quote lost by a single site stays a site-local
// unicast affair.
//
// Run with: go run ./examples/stockticker
package main

import (
	"fmt"
	"time"

	"lbrm"
)

func main() {
	tb, err := lbrm.NewTestbed(lbrm.TestbedConfig{
		Seed:             11,
		Sites:            100,
		ReceiversPerSite: 2,
		Sender: lbrm.SenderConfig{
			Heartbeat: lbrm.HeartbeatParams{
				HMin: 500 * time.Millisecond, HMax: 8 * time.Second, Backoff: 2,
			},
			StatAck: lbrm.StatAckConfig{
				Enabled:       true,
				K:             10,
				EpochInterval: time.Minute,
				RTT:           lbrm.RTTConfig{Initial: 150 * time.Millisecond},
				GroupSize:     lbrm.GroupSizeConfig{Initial: 100},
			},
		},
		// Receivers fall back to NACK recovery only if the statistical
		// path hasn't repaired the loss within a second.
		Receiver: lbrm.ReceiverConfig{NackDelay: time.Second},
	})
	if err != nil {
		panic(err)
	}

	// Let the first epoch establish: ACKSEL out, ~k loggers volunteer.
	tb.Run(2 * time.Second)
	fmt.Printf("epoch %d established: %d of 100 site loggers are Designated Ackers (k=10)\n",
		tb.Sender.Epoch(), tb.Sender.AckerCount())
	fmt.Printf("sender's population estimate: %.0f loggers, p_ack=%.3f\n\n",
		tb.Sender.GroupSizeEstimate(), 10/tb.Sender.GroupSizeEstimate())

	quotes := []string{"ACME 101.25", "ACME 101.40", "ACME 99.80", "ACME 100.10"}
	fmt.Printf("publishing %q\n", quotes[0])
	tb.Send([]byte(quotes[0]))
	tb.Run(time.Second)

	fmt.Printf("publishing %q — dropped on the exchange's tail circuit (all 100 sites miss it)\n", quotes[1])
	tb.SourceSite.TailUp().SetLoss(&lbrm.FirstN{N: 1})
	t0 := tb.Net.Clock().Now()
	tb.Send([]byte(quotes[1]))
	tb.Run(800 * time.Millisecond)
	st := tb.Sender.Stats()
	fmt.Printf("  → source saw %d/%d expected ACKs, re-multicast once (t_wait=%v); delivered to %d/%d terminals, receiver NACKs sent: %d\n",
		0, tb.Sender.AckerCount(), tb.Sender.TWait().Round(time.Millisecond),
		tb.DeliveredCount(2), tb.TotalReceivers(), countReceiverNacks(tb))
	_ = st
	_ = t0

	fmt.Printf("publishing %q — lost only at site 42\n", quotes[2])
	tb.Sites[41].Site.TailDown().SetLoss(&lbrm.FirstN{N: 1})
	tb.Send([]byte(quotes[2]))
	tb.Run(5 * time.Second)
	fmt.Printf("  → no group-wide re-multicast (total so far: %d); site 42's logger repaired it locally; delivered to %d/%d\n",
		tb.Sender.Stats().StatRemulticasts, tb.DeliveredCount(3), tb.TotalReceivers())

	fmt.Printf("publishing %q — clean\n", quotes[3])
	tb.Send([]byte(quotes[3]))
	tb.Run(2 * time.Second)
	fmt.Printf("  → delivered to %d/%d\n\n", tb.DeliveredCount(4), tb.TotalReceivers())

	fmt.Printf("summary: %d quotes, %d statistical re-multicasts, %d ACKs total at the source (vs %d under per-receiver positive ACKs)\n",
		len(quotes), tb.Sender.Stats().StatRemulticasts,
		tb.Sender.Stats().AcksReceived, len(quotes)*tb.TotalReceivers())
}

func countReceiverNacks(tb *lbrm.Testbed) uint64 {
	var n uint64
	for _, s := range tb.Sites {
		for _, r := range s.Receivers {
			n += r.Stats().NacksSent
		}
	}
	return n
}
