package lbrm_test

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"lbrm"
	"lbrm/internal/heartbeat"
	"lbrm/internal/wire"
)

// fastHB is a quick heartbeat schedule for tests (50ms..400ms, backoff 2).
var fastHB = lbrm.HeartbeatParams{
	HMin: 50 * time.Millisecond, HMax: 400 * time.Millisecond, Backoff: 2,
}

// tapCounter counts packets by wire type crossing links whose name
// contains a substring.
type tapCounter struct {
	match string
	count map[wire.Type]int
}

func newTapCounter(net *lbrm.Network, match string) *tapCounter {
	tc := &tapCounter{match: match, count: make(map[wire.Type]int)}
	net.SetTap(func(ev lbrm.TapEvent) {
		if !strings.Contains(ev.Link.Name(), tc.match) {
			return
		}
		var p wire.Packet
		if p.Unmarshal(ev.Data) == nil {
			tc.count[p.Type]++
		}
	})
	return tc
}

func TestLosslessDelivery(t *testing.T) {
	tb, err := lbrm.NewTestbed(lbrm.TestbedConfig{
		Seed: 1, Sites: 3, ReceiversPerSite: 4,
		Sender: lbrm.SenderConfig{Heartbeat: fastHB},
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 10; i++ {
		if _, err := tb.Send([]byte(fmt.Sprintf("update-%d", i))); err != nil {
			t.Fatal(err)
		}
		tb.Run(200 * time.Millisecond)
	}
	tb.Run(2 * time.Second)
	for seq := uint64(1); seq <= 10; seq++ {
		if !tb.EveryoneHas(seq) {
			t.Fatalf("seq %d delivered to %d/%d receivers",
				seq, tb.DeliveredCount(seq), tb.TotalReceivers())
		}
	}
	// No recovery traffic at all.
	for _, site := range tb.Sites {
		if st := site.Secondary.Stats(); st.NacksFromClients != 0 || st.NacksToPrimary != 0 {
			t.Fatalf("recovery traffic on lossless run: %+v", st)
		}
	}
	// Sender's retention drained via primary acks.
	if tb.Sender.Retained() != 0 {
		t.Fatalf("retained = %d after acks, want 0", tb.Sender.Retained())
	}
}

// TestSiteTailLossRecoversViaSecondary is the paper's core distributed
// logging scenario (§2.2.2 / Figure 7b): a packet lost on one site's tail
// circuit is missed by all its receivers, yet exactly one NACK crosses the
// tail circuit and all receivers recover from the site's secondary logger.
func TestSiteTailLossRecoversViaSecondary(t *testing.T) {
	tb, err := lbrm.NewTestbed(lbrm.TestbedConfig{
		Seed: 2, Sites: 2, ReceiversPerSite: 20,
		Sender:    lbrm.SenderConfig{Heartbeat: fastHB},
		Secondary: lbrm.SecondaryConfig{NackDelay: 10 * time.Millisecond},
		Receiver:  lbrm.ReceiverConfig{NackDelay: 10 * time.Millisecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	tc := newTapCounter(tb.Net, "site1/tail-up")

	tb.Send([]byte("one"))
	tb.Run(200 * time.Millisecond)
	// Drop the next packet on site1's tail-down: logger and all 20
	// receivers miss it together.
	tb.Sites[0].Site.TailDown().SetLoss(&lbrm.FirstN{N: 1})
	tb.Send([]byte("two"))
	tb.Run(200 * time.Millisecond)
	tb.Send([]byte("three"))
	tb.Run(3 * time.Second)

	for seq := uint64(1); seq <= 3; seq++ {
		if !tb.EveryoneHas(seq) {
			t.Fatalf("seq %d delivered to %d/%d",
				seq, tb.DeliveredCount(seq), tb.TotalReceivers())
		}
	}
	// The aggregation property: one NACK from the whole site crossed the
	// tail circuit (not 20).
	if got := tc.count[wire.TypeNack]; got != 1 {
		t.Fatalf("NACKs across tail circuit = %d, want 1", got)
	}
	sec := tb.Sites[0].Secondary.Stats()
	if sec.NacksToPrimary != 1 {
		t.Fatalf("secondary → primary NACKs = %d, want 1", sec.NacksToPrimary)
	}
	if sec.NacksFromClients == 0 {
		t.Fatal("receivers never asked the secondary")
	}
	// Local repair went out as a site-scoped re-multicast (20 > threshold),
	// not 20 unicasts.
	if sec.Remulticasts < 1 {
		t.Fatalf("secondary stats = %+v, want a site-scoped re-multicast", sec)
	}
}

// TestLocalLossRecoversLocally: a single receiver behind a lossy last hop
// (the "crying baby", §6) recovers from the site logger with no WAN
// traffic at all.
func TestLocalLossRecoversLocally(t *testing.T) {
	tb, err := lbrm.NewTestbed(lbrm.TestbedConfig{
		Seed: 3, Sites: 2, ReceiversPerSite: 5,
		Sender:   lbrm.SenderConfig{Heartbeat: fastHB},
		Receiver: lbrm.ReceiverConfig{NackDelay: 5 * time.Millisecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	tb.Send([]byte("warm"))
	tb.Run(200 * time.Millisecond)

	tc := newTapCounter(tb.Net, "tail-") // any tail circuit
	// The unlucky receiver misses the next packet on its own downlink.
	victim := tb.Sites[0].ReceiverNodes[0]
	victim.DownLink().SetLoss(&lbrm.FirstN{N: 1})
	tb.Send([]byte("lost-for-one"))
	tb.Run(2 * time.Second)

	if !tb.EveryoneHas(2) {
		t.Fatalf("seq 2 delivered to %d/%d", tb.DeliveredCount(2), tb.TotalReceivers())
	}
	if got := tc.count[wire.TypeNack]; got != 0 {
		t.Fatalf("local loss leaked %d NACKs onto the WAN", got)
	}
	if got := tc.count[wire.TypeRetrans]; got != 0 {
		t.Fatalf("local loss pulled %d retransmissions over the WAN", got)
	}
	st := tb.Sites[0].Secondary.Stats()
	if st.RetransUnicast != 1 {
		t.Fatalf("secondary stats = %+v, want exactly one unicast repair", st)
	}
}

// TestRecoveryLatencyLocalVsRemote quantifies §2.2.2's RTT argument:
// recovery from the site logger takes on the order of the LAN RTT (~4ms),
// recovery from the primary across the WAN ~80ms.
func TestRecoveryLatencyLocalVsRemote(t *testing.T) {
	measure := func(noSecondaries bool) time.Duration {
		var recoveredAt time.Time
		tb, err := lbrm.NewTestbed(lbrm.TestbedConfig{
			Seed: 4, Sites: 1, ReceiversPerSite: 1, NoSecondaries: noSecondaries,
			Sender:   lbrm.SenderConfig{Heartbeat: fastHB},
			Receiver: lbrm.ReceiverConfig{NackDelay: time.Millisecond},
		})
		if err != nil {
			t.Fatal(err)
		}
		rcv := tb.Sites[0].Receivers[0]
		_ = rcv
		tb.Send([]byte("one"))
		tb.Run(200 * time.Millisecond)
		victim := tb.Sites[0].ReceiverNodes[0]
		victim.DownLink().SetLoss(&lbrm.FirstN{N: 1})
		tb.Send([]byte("two")) // lost at the victim only
		var lossDetected time.Time
		tb.Net.SetTap(func(ev lbrm.TapEvent) {
			var p wire.Packet
			if p.Unmarshal(ev.Data) != nil {
				return
			}
			// Measure at the victim's own links: NACK leaving it, repair
			// reaching it — i.e. the full recovery round trip.
			if p.Type == wire.TypeNack && lossDetected.IsZero() &&
				strings.Contains(ev.Link.Name(), "rcv0/up") {
				lossDetected = ev.Time
			}
			if p.Type == wire.TypeRetrans && recoveredAt.IsZero() && !ev.Dropped &&
				strings.Contains(ev.Link.Name(), "rcv0/down") {
				recoveredAt = ev.Time
			}
		})
		tb.Send([]byte("three")) // reveals the gap immediately
		tb.Run(3 * time.Second)
		if !tb.EveryoneHas(2) {
			t.Fatal("victim never recovered")
		}
		if lossDetected.IsZero() || recoveredAt.IsZero() {
			t.Fatal("tap missed the recovery exchange")
		}
		return recoveredAt.Sub(lossDetected)
	}
	local := measure(false)
	remote := measure(true)
	if local >= 10*time.Millisecond {
		t.Fatalf("local recovery took %v, want LAN-scale (<10ms)", local)
	}
	if remote < 70*time.Millisecond {
		t.Fatalf("remote recovery took %v, want WAN-scale (≥70ms)", remote)
	}
	if remote < 5*local {
		t.Fatalf("local %v vs remote %v: expected ~order-of-magnitude gap", local, remote)
	}
}

// TestSecondaryFetchesFromPrimary: when the site's logger itself missed
// the packet (tail loss), it recovers from the primary and then serves its
// receivers.
func TestSecondaryFetchesFromPrimary(t *testing.T) {
	tb, err := lbrm.NewTestbed(lbrm.TestbedConfig{
		Seed: 5, Sites: 1, ReceiversPerSite: 3,
		Sender: lbrm.SenderConfig{Heartbeat: fastHB},
	})
	if err != nil {
		t.Fatal(err)
	}
	tb.Send([]byte("one"))
	tb.Run(200 * time.Millisecond)
	tb.Sites[0].Site.TailDown().SetLoss(&lbrm.FirstN{N: 1})
	tb.Send([]byte("two"))
	tb.Run(3 * time.Second)
	if !tb.EveryoneHas(2) {
		t.Fatalf("seq 2 delivered to %d/%d", tb.DeliveredCount(2), tb.TotalReceivers())
	}
	if st := tb.Sites[0].Secondary.Stats(); st.NacksToPrimary == 0 {
		t.Fatalf("secondary stats = %+v, expected a fetch from primary", st)
	}
	if ps := tb.Primary.Stats(); ps.RetransServed == 0 {
		t.Fatalf("primary stats = %+v, expected it to serve the secondary", ps)
	}
}

// TestHeartbeatRevealsFinalLoss: the last packet before an idle period is
// lost; only heartbeats can reveal it (§2.1). Detection must happen within
// HMin of the transmission for this isolated loss.
func TestHeartbeatRevealsFinalLoss(t *testing.T) {
	tb, err := lbrm.NewTestbed(lbrm.TestbedConfig{
		Seed: 6, Sites: 1, ReceiversPerSite: 1,
		Sender:   lbrm.SenderConfig{Heartbeat: fastHB},
		Receiver: lbrm.ReceiverConfig{NackDelay: time.Millisecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	tb.Send([]byte("one"))
	tb.Run(200 * time.Millisecond)
	tb.Sites[0].Site.TailDown().SetLoss(&lbrm.FirstN{N: 1})
	tb.Send([]byte("final")) // lost; no more data follows
	tb.Run(2 * time.Second)
	if !tb.EveryoneHas(2) {
		t.Fatalf("final packet never recovered: %d/%d", tb.DeliveredCount(2), tb.TotalReceivers())
	}
}

// TestStatisticalAckRepairsWidespreadLoss: a packet dropped on the source
// site's tail-up is missed by every site at once. With statistical
// acknowledgement the source detects the missing ACKs within ~t_wait and
// re-multicasts once — receivers never need to NACK.
func TestStatisticalAckRepairsWidespreadLoss(t *testing.T) {
	tb, err := lbrm.NewTestbed(lbrm.TestbedConfig{
		Seed: 7, Sites: 5, ReceiversPerSite: 4,
		Sender: lbrm.SenderConfig{
			Heartbeat: lbrm.HeartbeatParams{HMin: 2 * time.Second, HMax: 16 * time.Second, Backoff: 2},
			StatAck: lbrm.StatAckConfig{
				Enabled: true, K: 5, EpochInterval: time.Minute,
				RTT:       lbrm.RTTConfig{Initial: 120 * time.Millisecond},
				GroupSize: lbrm.GroupSizeConfig{Initial: 5},
			},
		},
		// Long receiver NACK delay: in this test receivers must not be the
		// ones doing the repairing.
		Receiver:  lbrm.ReceiverConfig{NackDelay: 10 * time.Second},
		Secondary: lbrm.SecondaryConfig{NackDelay: 10 * time.Second},
	})
	if err != nil {
		t.Fatal(err)
	}
	// Let the epoch establish (ACKSEL → responses → switch).
	tb.Run(2 * time.Second)
	if tb.Sender.Epoch() != 1 || tb.Sender.AckerCount() == 0 {
		t.Fatalf("epoch=%d ackers=%d, want established epoch",
			tb.Sender.Epoch(), tb.Sender.AckerCount())
	}
	tb.Send([]byte("warm"))
	tb.Run(time.Second)
	// Everyone misses the next packet (drop on source tail-up).
	tb.SourceSite.TailUp().SetLoss(&lbrm.FirstN{N: 1})
	sentAt := tb.Net.Clock().Now()
	tb.Send([]byte("wide-loss"))
	tb.Run(1500 * time.Millisecond)
	if !tb.EveryoneHas(2) {
		t.Fatalf("seq 2 delivered to %d/%d", tb.DeliveredCount(2), tb.TotalReceivers())
	}
	if tb.Sender.Stats().StatRemulticasts != 1 {
		t.Fatalf("sender stats = %+v, want exactly 1 statistical re-multicast", tb.Sender.Stats())
	}
	// Repair happened within a small multiple of t_wait, long before any
	// receiver NACK machinery (10s) could run.
	elapsed := tb.Net.Clock().Now().Sub(sentAt)
	if elapsed > 2*time.Second {
		t.Fatalf("repair window %v too long", elapsed)
	}
	var rcvNacks uint64
	for _, site := range tb.Sites {
		for _, r := range site.Receivers {
			rcvNacks += r.Stats().NacksSent
		}
	}
	if rcvNacks != 0 {
		t.Fatalf("receivers sent %d NACKs; statistical ack should have repaired first", rcvNacks)
	}
}

// TestPrimaryFailover: the primary dies; the sender promotes the most
// up-to-date replica, receivers are redirected, and recovery keeps working.
func TestPrimaryFailover(t *testing.T) {
	tb, err := lbrm.NewTestbed(lbrm.TestbedConfig{
		Seed: 8, Sites: 2, ReceiversPerSite: 3, Replicas: 2,
		Sender: lbrm.SenderConfig{
			Heartbeat:       fastHB,
			FailoverTimeout: 500 * time.Millisecond,
			FailoverWait:    100 * time.Millisecond,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	tb.Send([]byte("one"))
	tb.Send([]byte("two"))
	tb.Run(500 * time.Millisecond)
	if tb.Sender.Retained() != 0 {
		t.Fatalf("retention not drained before failure: %d", tb.Sender.Retained())
	}
	// Kill the primary: all its traffic disappears.
	gate := &lbrm.Gate{Down: true}
	tb.PrimaryNode.DownLink().SetLoss(gate)
	tb.PrimaryNode.UpLink().SetLoss(gate)
	tb.Send([]byte("three")) // will never be acked by the dead primary
	tb.Run(3 * time.Second)
	if tb.Sender.Stats().Failovers != 1 {
		t.Fatalf("failovers = %d, want 1", tb.Sender.Stats().Failovers)
	}
	promoted := 0
	for _, rep := range tb.Replicas {
		if !rep.IsReplica() {
			promoted++
		}
	}
	if promoted != 1 {
		t.Fatalf("promoted replicas = %d, want 1", promoted)
	}
	// Retention drains against the new primary.
	tb.Send([]byte("four"))
	tb.Run(2 * time.Second)
	if tb.Sender.Retained() != 0 {
		t.Fatalf("retention stuck after failover: %d", tb.Sender.Retained())
	}
	// Recovery still works: lose a packet at a site and watch it heal via
	// the promoted primary.
	tb.Sites[0].Site.TailDown().SetLoss(&lbrm.FirstN{N: 1})
	tb.Send([]byte("five"))
	tb.Run(3 * time.Second)
	if !tb.EveryoneHas(5) {
		t.Fatalf("seq 5 delivered to %d/%d after failover", tb.DeliveredCount(5), tb.TotalReceivers())
	}
}

// TestReceiverDiscoveryFindsSiteLogger: receivers configured with
// discovery locate their own site's logger via the site-scoped ring.
func TestReceiverDiscoveryFindsSiteLogger(t *testing.T) {
	tb, err := lbrm.NewTestbed(lbrm.TestbedConfig{
		Seed: 9, Sites: 2, ReceiversPerSite: 3,
		Sender:   lbrm.SenderConfig{Heartbeat: fastHB},
		Receiver: lbrm.ReceiverConfig{Discover: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	tb.Run(time.Second)
	for i, site := range tb.Sites {
		want := site.SecondaryNode.Addr()
		for j, r := range site.Receivers {
			got := r.SecondaryAddr()
			if got != want {
				t.Fatalf("site %d receiver %d discovered %v, want own site logger %v",
					i, j, got, want)
			}
		}
	}
	// And recovery through the discovered logger works.
	tb.Sites[1].Site.TailDown().SetLoss(&lbrm.FirstN{N: 1})
	tb.Send([]byte("one"))
	tb.Run(3 * time.Second)
	if !tb.EveryoneHas(1) {
		t.Fatalf("delivery %d/%d", tb.DeliveredCount(1), tb.TotalReceivers())
	}
}

// TestBurstOutageDetectionBound reproduces §2.1.1's burst congestion
// analysis end to end: during a t_burst outage covering a data packet,
// the loss is detected within the analytic bound after the outage ends.
func TestBurstOutageDetectionBound(t *testing.T) {
	for _, burst := range []time.Duration{100 * time.Millisecond, 300 * time.Millisecond, 900 * time.Millisecond} {
		tb, err := lbrm.NewTestbed(lbrm.TestbedConfig{
			Seed: 10, Sites: 1, ReceiversPerSite: 1,
			Sender:   lbrm.SenderConfig{Heartbeat: fastHB},
			Receiver: lbrm.ReceiverConfig{NackDelay: time.Millisecond},
		})
		if err != nil {
			t.Fatal(err)
		}
		tb.Send([]byte("warm"))
		tb.Run(time.Second)
		// Outage on the site tail-down starting exactly at the data packet.
		start := tb.Net.Clock().Now()
		tb.Sites[0].Site.TailDown().SetLoss(&lbrm.Outages{
			Windows: []lbrm.Window{{Start: start, End: start.Add(burst)}},
		})
		tb.Send([]byte("lost-in-burst"))
		tb.Run(burst + 2*time.Second)
		rcv := tb.Sites[0].Receivers[0]
		if !tb.EveryoneHas(2) {
			t.Fatalf("burst %v: never recovered", burst)
		}
		if rcv.Stats().GapsDetected == 0 {
			t.Fatalf("burst %v: loss never detected via heartbeat", burst)
		}
	}
}

// TestManyPacketsRandomLoss soak-tests the whole stack: sustained traffic
// through independently lossy tail circuits must converge to full
// delivery.
func TestManyPacketsRandomLoss(t *testing.T) {
	tb, err := lbrm.NewTestbed(lbrm.TestbedConfig{
		Seed: 11, Sites: 4, ReceiversPerSite: 5,
		Sender:    lbrm.SenderConfig{Heartbeat: fastHB},
		Receiver:  lbrm.ReceiverConfig{NackDelay: 10 * time.Millisecond},
		Secondary: lbrm.SecondaryConfig{NackDelay: 10 * time.Millisecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	// Warm-up: let heartbeats establish first contact everywhere before
	// loss begins (a receiver whose very first packet is lost cannot be
	// distinguished from a late joiner).
	tb.Run(200 * time.Millisecond)
	for _, s := range tb.Sites {
		s.Site.TailDown().SetLoss(lbrm.Bernoulli{P: 0.1})
	}
	const n = 100
	for i := 1; i <= n; i++ {
		if _, err := tb.Send([]byte(fmt.Sprintf("u%d", i))); err != nil {
			t.Fatal(err)
		}
		tb.Run(100 * time.Millisecond)
	}
	tb.Run(10 * time.Second)
	missing := 0
	for seq := uint64(1); seq <= n; seq++ {
		if !tb.EveryoneHas(seq) {
			missing++
			t.Logf("seq %d: %d/%d", seq, tb.DeliveredCount(seq), tb.TotalReceivers())
		}
	}
	if missing != 0 {
		t.Fatalf("%d/%d packets not fully delivered", missing, n)
	}
}

// TestFig4SimulatedCrossCheck validates the Figure 4 analytics against the
// live protocol: a sender publishing every dt emits exactly the
// heartbeat count the closed form predicts, observed on the wire.
func TestFig4SimulatedCrossCheck(t *testing.T) {
	hb := lbrm.HeartbeatParams{HMin: 250 * time.Millisecond, HMax: 32 * time.Second, Backoff: 2}
	for _, dtSec := range []float64{1, 5, 30} {
		dt := time.Duration(dtSec * float64(time.Second))
		tb, err := lbrm.NewTestbed(lbrm.TestbedConfig{
			Seed: 21, Sites: 1, ReceiversPerSite: 1,
			Sender: lbrm.SenderConfig{Heartbeat: hb},
		})
		if err != nil {
			t.Fatal(err)
		}
		hbCount := 0
		tb.Net.SetTap(func(ev lbrm.TapEvent) {
			if ev.Link.Name() != "source-site/tail-up" || ev.Dropped {
				return
			}
			var p wire.Packet
			if p.Unmarshal(ev.Data) == nil && p.Type == wire.TypeHeartbeat {
				hbCount++
			}
		})
		const periods = 10
		// First data packet resets the pre-data heartbeat schedule; count
		// heartbeats over the following full periods.
		tb.Send([]byte("start"))
		hbCount = 0
		for i := 0; i < periods; i++ {
			tb.Run(dt)
			tb.Send([]byte("tick"))
		}
		want := periods * heartbeat.CountVariable(heartbeat.Params(hb), dt)
		if hbCount != want {
			t.Errorf("dt=%v: observed %d heartbeats on the wire, analytics predict %d",
				dt, hbCount, want)
		}
	}
}

// TestSecondaryFailureEscalation: the site logger dies; receivers exhaust
// their retries against it and escalate to the primary, exactly as §2.2.1
// prescribes ("if the secondary logging service fails, a receiver requests
// retransmissions directly from the primary").
func TestSecondaryFailureEscalation(t *testing.T) {
	tb, err := lbrm.NewTestbed(lbrm.TestbedConfig{
		Seed: 31, Sites: 1, ReceiversPerSite: 3,
		Sender: lbrm.SenderConfig{Heartbeat: fastHB},
		Receiver: lbrm.ReceiverConfig{
			NackDelay: 10 * time.Millisecond, RequestTimeout: 100 * time.Millisecond,
			SecondaryRetries: 2,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	tb.Send([]byte("warm"))
	tb.Run(300 * time.Millisecond)
	// Kill the site logger entirely.
	gate := &lbrm.Gate{Down: true}
	tb.Sites[0].SecondaryNode.UpLink().SetLoss(gate)
	tb.Sites[0].SecondaryNode.DownLink().SetLoss(gate)
	// One receiver misses a packet.
	tb.Sites[0].ReceiverNodes[0].DownLink().SetLoss(&lbrm.FirstN{N: 1})
	tb.Send([]byte("lost"))
	tb.Run(5 * time.Second)
	if !tb.EveryoneHas(2) {
		t.Fatalf("recovery failed with dead secondary: %d/%d", tb.DeliveredCount(2), tb.TotalReceivers())
	}
	rs := tb.Sites[0].Receivers[0].Stats()
	if rs.Escalations == 0 || rs.NacksToPrimary == 0 {
		t.Fatalf("receiver did not escalate to the primary: %+v", rs)
	}
}

// TestTotalLogFailureAbandons: primary dead, no replicas — the receiver
// eventually abandons recovery (receiver-reliable semantics: the
// application learns what was lost and moves on).
func TestTotalLogFailureAbandons(t *testing.T) {
	var lost []lbrm.SeqRange
	tb, err := lbrm.NewTestbed(lbrm.TestbedConfig{
		Seed: 32, Sites: 1, ReceiversPerSite: 1,
		Sender: lbrm.SenderConfig{Heartbeat: fastHB},
		Receiver: lbrm.ReceiverConfig{
			NackDelay: 10 * time.Millisecond, RequestTimeout: 100 * time.Millisecond,
			SecondaryRetries: 1, PrimaryRetries: 1,
			OnLost: func(k lbrm.StreamKey, rg lbrm.SeqRange) { lost = append(lost, rg) },
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	tb.Send([]byte("warm"))
	tb.Run(300 * time.Millisecond)
	gate := &lbrm.Gate{Down: true}
	tb.PrimaryNode.UpLink().SetLoss(gate)
	tb.PrimaryNode.DownLink().SetLoss(gate)
	tb.Sites[0].SecondaryNode.UpLink().SetLoss(gate)
	tb.Sites[0].SecondaryNode.DownLink().SetLoss(gate)
	tb.Sites[0].ReceiverNodes[0].DownLink().SetLoss(&lbrm.FirstN{N: 1})
	tb.Send([]byte("unrecoverable"))
	tb.Run(10 * time.Second)
	if len(lost) != 1 || !lost[0].Contains(2) {
		t.Fatalf("OnLost = %v, want seq 2 abandoned", lost)
	}
	// The stream keeps flowing afterwards.
	tb.Send([]byte("after"))
	tb.Run(time.Second)
	if tb.DeliveredCount(3) != 1 {
		t.Fatal("stream stalled after abandonment")
	}
}

// TestStatAckSurvivesLostSelectionPacket: the Acker Selection Packet
// itself is lost; the sender's retry establishes the epoch anyway.
func TestStatAckSurvivesLostSelectionPacket(t *testing.T) {
	tb, err := lbrm.NewTestbed(lbrm.TestbedConfig{
		Seed: 33, Sites: 5, ReceiversPerSite: 1,
		Sender: lbrm.SenderConfig{
			Heartbeat: fastHB,
			StatAck: lbrm.StatAckConfig{
				Enabled: true, K: 5, EpochInterval: time.Minute,
				RTT:       lbrm.RTTConfig{Initial: 100 * time.Millisecond},
				GroupSize: lbrm.GroupSizeConfig{Initial: 5},
			},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	// The very first multicast (the epoch-1 ACKSEL) dies on the source
	// tail circuit.
	tb.SourceSite.TailUp().SetLoss(&lbrm.FirstN{N: 1})
	tb.Run(3 * time.Second)
	if tb.Sender.Epoch() != 1 || tb.Sender.AckerCount() == 0 {
		t.Fatalf("epoch=%d ackers=%d after lost ACKSEL; retry failed",
			tb.Sender.Epoch(), tb.Sender.AckerCount())
	}
}

// TestSpillingPrimaryServesOldPackets: a primary with a tiny memory budget
// spilling to disk still serves ancient packets to a very late requester.
func TestSpillingPrimaryServesOldPackets(t *testing.T) {
	tb, err := lbrm.NewTestbed(lbrm.TestbedConfig{
		Seed: 34, Sites: 1, ReceiversPerSite: 1,
		Sender: lbrm.SenderConfig{Heartbeat: fastHB},
		Primary: lbrm.PrimaryConfig{
			Retention: lbrm.Retention{MaxPackets: 3, SpillToDisk: true},
		},
		Receiver: lbrm.ReceiverConfig{NackDelay: 10 * time.Millisecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	// Stream 30 packets; the receiver misses #2 but its NACKs can't reach
	// anyone (its uplink is dead) until much later.
	upGate := &lbrm.Gate{Down: true}
	tb.Sites[0].ReceiverNodes[0].UpLink().SetLoss(upGate)
	tb.Sites[0].ReceiverNodes[0].DownLink().SetLoss(&lbrm.DropSeqs{Indices: map[int]bool{2: true}})
	// Also keep the site secondary tiny so the old packet is only at the
	// (spilling) primary.
	for i := 0; i < 30; i++ {
		tb.Send([]byte(fmt.Sprintf("u%d", i)))
		tb.Run(50 * time.Millisecond)
	}
	key := lbrm.LogStreamKey{Source: tb.Source, Group: tb.Group}
	if st := tb.Primary.Store(key); st.Len() > 3 {
		t.Fatalf("primary memory budget exceeded: %d in memory", st.Len())
	}
	if st := tb.Primary.Store(key); !st.Has(2) {
		t.Fatal("spilled packet no longer servable at primary")
	}
	upGate.Down = false // the receiver can finally ask
	tb.Run(5 * time.Second)
	if !tb.EveryoneHas(2) {
		t.Fatalf("ancient packet never recovered: %d/%d", tb.DeliveredCount(2), tb.TotalReceivers())
	}
}

// TestOrderedDeliveryUnderJitterAndLoss soaks the ordered-delivery mode:
// with tail jitter reordering packets and random loss forcing recoveries,
// every receiver must still observe strictly increasing sequence numbers.
func TestOrderedDeliveryUnderJitterAndLoss(t *testing.T) {
	violations := 0
	tb, err := lbrm.NewTestbed(lbrm.TestbedConfig{
		Seed: 41, Sites: 3, ReceiversPerSite: 3,
		Sender: lbrm.SenderConfig{Heartbeat: fastHB},
		Receiver: lbrm.ReceiverConfig{
			Ordered:   true,
			NackDelay: 20 * time.Millisecond,
		},
		// Each receiver gets its own strict-ordering checker: with no
		// abandonments, ordered delivery must be exactly prev+1.
		ConfigureReceiver: func(site, idx int, cfg *lbrm.ReceiverConfig) {
			var last uint64
			cfg.OnData = func(e lbrm.Event) {
				if e.Seq != last+1 {
					violations++
				}
				last = e.Seq
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range tb.Sites {
		s.Site.TailDown().SetLoss(lbrm.Bernoulli{P: 0.08})
	}
	tb.Run(300 * time.Millisecond) // warm-up contact
	const n = 60
	for i := 1; i <= n; i++ {
		if _, err := tb.Send([]byte(fmt.Sprintf("u%d", i))); err != nil {
			t.Fatal(err)
		}
		tb.Run(50 * time.Millisecond)
	}
	tb.Run(10 * time.Second)
	for seq := uint64(1); seq <= n; seq++ {
		if !tb.EveryoneHas(seq) {
			t.Fatalf("seq %d delivered to %d/%d", seq, tb.DeliveredCount(seq), tb.TotalReceivers())
		}
	}
	key := lbrm.StreamKey{Source: tb.Source, Group: tb.Group}
	for _, s := range tb.Sites {
		for _, r := range s.Receivers {
			if r.Contiguous(key) != n {
				t.Fatalf("receiver contiguity %d, want %d", r.Contiguous(key), n)
			}
		}
	}
	if violations != 0 {
		t.Fatalf("%d out-of-order deliveries in ordered mode", violations)
	}
}

// TestReplicaDurabilityNoDataLoss validates §2.2.3's retention argument
// end to end: with ReleaseOnReplicaAck the sender keeps packets until a
// replica has them, so even when the primary dies after acknowledging but
// before replicating, the promoted replica is backfilled from the
// sender's buffer and no packet is ever unrecoverable.
func TestReplicaDurabilityNoDataLoss(t *testing.T) {
	tb, err := lbrm.NewTestbed(lbrm.TestbedConfig{
		Seed: 51, Sites: 1, ReceiversPerSite: 2, Replicas: 1,
		Sender: lbrm.SenderConfig{
			Heartbeat:       fastHB,
			Durability:      lbrm.ReleaseOnReplicaAck,
			FailoverTimeout: 400 * time.Millisecond,
			FailoverWait:    100 * time.Millisecond,
		},
		// Replication is slow: the primary acks the source well before the
		// replica has the data — the §2.2.3 danger window.
		Primary: lbrm.PrimaryConfig{SyncRetry: 10 * time.Second},
	})
	if err != nil {
		t.Fatal(err)
	}
	// The eager LogSync for the first packet is lost, so the replica has
	// nothing until the (slow) retry — the danger window stays open.
	tb.ReplicaNodes[0].DownLink().SetLoss(&lbrm.FirstN{N: 1})
	tb.Send([]byte("one"))
	tb.Run(100 * time.Millisecond)
	// Primary has acked seq 1 (primary seq), but the replica's LogSync is
	// still in flight at best. With replica durability the sender must
	// still be holding it.
	if tb.Sender.Retained() == 0 {
		t.Fatal("sender released before replica durability was reached")
	}
	// The primary dies inside the window.
	gate := &lbrm.Gate{Down: true}
	tb.PrimaryNode.UpLink().SetLoss(gate)
	tb.PrimaryNode.DownLink().SetLoss(gate)
	tb.Run(3 * time.Second) // failover: replica promoted, backfilled
	if tb.Sender.Stats().Failovers != 1 {
		t.Fatalf("failovers = %d", tb.Sender.Stats().Failovers)
	}
	promoted := tb.Replicas[0]
	if promoted.IsReplica() {
		t.Fatal("replica not promoted")
	}
	key := lbrm.LogStreamKey{Source: tb.Source, Group: tb.Group}
	if got := promoted.Contiguous(key); got != 1 {
		t.Fatalf("promoted log contiguous = %d, want 1 (backfilled from sender retention)", got)
	}
	// The replica's own LogSync was dropped, so the packet can only have
	// come from the sender's retention buffer during failover.
	// The log service remains fully functional: a receiver that lost the
	// packet recovers it from the promoted primary.
	tb.Sites[0].Site.TailDown().SetLoss(&lbrm.FirstN{N: 1})
	tb.Send([]byte("two"))
	tb.Run(3 * time.Second)
	if !tb.EveryoneHas(2) {
		t.Fatalf("recovery after failover failed: %d/%d", tb.DeliveredCount(2), tb.TotalReceivers())
	}
	// And the new acks drain the sender's buffer.
	if tb.Sender.Retained() != 0 {
		t.Fatalf("retention = %d after promoted primary acked", tb.Sender.Retained())
	}
}

// TestPrimaryAckDurabilityWindow documents the contrast: with the default
// ReleaseOnPrimaryAck the same crash makes the packet unrecoverable from
// the logging service — exactly why §2.2.3 adds the replica sequence
// number for applications that need it.
func TestPrimaryAckDurabilityWindow(t *testing.T) {
	tb, err := lbrm.NewTestbed(lbrm.TestbedConfig{
		Seed: 52, Sites: 1, ReceiversPerSite: 1, Replicas: 1,
		Sender: lbrm.SenderConfig{
			Heartbeat:       fastHB,
			Durability:      lbrm.ReleaseOnPrimaryAck, // the weaker default
			FailoverTimeout: 400 * time.Millisecond,
			FailoverWait:    100 * time.Millisecond,
		},
		Primary: lbrm.PrimaryConfig{SyncRetry: 10 * time.Second},
	})
	if err != nil {
		t.Fatal(err)
	}
	// The eager LogSync is lost; the slow retry never happens before the
	// crash.
	tb.ReplicaNodes[0].DownLink().SetLoss(&lbrm.FirstN{N: 1})
	// The receiver also misses the packet (it only ever existed at the
	// primary).
	tb.Sites[0].Site.TailDown().SetLoss(&lbrm.FirstN{N: 1})
	tb.Send([]byte("doomed"))
	tb.Run(100 * time.Millisecond)
	if tb.Sender.Retained() != 0 {
		t.Fatal("primary-ack durability should have released already")
	}
	gate := &lbrm.Gate{Down: true}
	tb.PrimaryNode.UpLink().SetLoss(gate)
	tb.PrimaryNode.DownLink().SetLoss(gate)
	// Failover triggers on unacknowledged backlog; send one more packet
	// into the void.
	tb.Send([]byte("trigger"))
	tb.Run(5 * time.Second)
	promoted := tb.Replicas[0]
	if promoted.IsReplica() {
		t.Fatal("replica not promoted")
	}
	key := lbrm.LogStreamKey{Source: tb.Source, Group: tb.Group}
	// Seq 1 ("doomed") was released before replication and died with the
	// primary: the promoted log can never become contiguous through it.
	// Seq 2 ("trigger") was still retained and is backfilled.
	st := promoted.Store(key)
	if st == nil {
		t.Fatal("no stream at promoted primary")
	}
	if st.Has(1) {
		t.Fatal("seq 1 survived; expected it lost (released before replication)")
	}
	if !st.Has(2) {
		t.Fatal("retained seq 2 not backfilled to the promoted primary")
	}
}
