package lbrm_test

import (
	"testing"
	"time"

	"lbrm"
	"lbrm/internal/wire"
)

// TestFencedSplitBrainStalePrimaryIgnoredEverywhere is the end-to-end epoch
// fencing regression (§2.2.3 failover hygiene): the acting primary is
// partitioned from the source segment with all state intact, the sender
// fails over and mints a new epoch, and after the partition heals the stale
// primary keeps speaking with its old epoch. Every component must provably
// ignore that authority — the sender's retention watermark, the surviving
// replica's log, and the redirect targets of receivers and secondaries all
// stay exactly where the new epoch put them — and the first heartbeat the
// stale primary hears demotes it deterministically.
func TestFencedSplitBrainStalePrimaryIgnoredEverywhere(t *testing.T) {
	tb, err := lbrm.NewTestbed(lbrm.TestbedConfig{
		Seed: 77, Sites: 1, ReceiversPerSite: 2, Replicas: 2,
		Sender: lbrm.SenderConfig{
			Heartbeat:       fastHB,
			FailoverTimeout: 400 * time.Millisecond,
			FailoverWait:    100 * time.Millisecond,
		},
		Secondary: lbrm.SecondaryConfig{NackDelay: 10 * time.Millisecond},
		Receiver:  lbrm.ReceiverConfig{NackDelay: 10 * time.Millisecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	key := lbrm.StreamKey{Source: tb.Source, Group: tb.Group}
	logKey := lbrm.LogStreamKey{Source: tb.Source, Group: tb.Group}

	// Steady state at epoch 1: a few packets flow and are fully acked.
	for i := 0; i < 3; i++ {
		tb.Send([]byte("steady"))
		tb.Run(100 * time.Millisecond)
	}
	tb.Run(time.Second)
	if got := tb.Sender.PrimaryEpoch(); got != 1 {
		t.Fatalf("initial epoch = %d, want 1", got)
	}

	// The primary is cut off from everyone — deaf and mute, state intact.
	// Unacked backlog arms the sender's idle check; it fails over and mints
	// epoch 2, promoting a replica. The stale primary misses the redirect.
	healOld := tb.PrimaryNode.Isolate(true, true)
	tb.Send([]byte("during-partition"))
	tb.Run(3 * time.Second)

	if got := tb.Sender.Stats().Failovers; got != 1 {
		t.Fatalf("failovers = %d, want 1", got)
	}
	if got := tb.Sender.PrimaryEpoch(); got != 2 {
		t.Fatalf("post-failover epoch = %d, want 2", got)
	}
	newIdx := -1
	for i, r := range tb.Replicas {
		if !r.IsReplica() {
			newIdx = i
		}
	}
	if newIdx < 0 {
		t.Fatal("no replica was promoted")
	}
	survivorIdx := 1 - newIdx
	newAddr := tb.ReplicaNodes[newIdx].Addr().String()
	if tb.Replicas[newIdx].Epoch() != 2 {
		t.Fatalf("promoted replica epoch = %d, want 2", tb.Replicas[newIdx].Epoch())
	}
	// One more packet at epoch 2 so the promoted primary replicates to the
	// survivor, teaching it the new epoch through the LogSync stream.
	tb.Send([]byte("epoch-two"))
	tb.Run(time.Second)
	if got := tb.Replicas[survivorIdx].Epoch(); got != 2 {
		t.Fatalf("surviving replica epoch = %d, want 2", got)
	}
	survivorContig := tb.Replicas[survivorIdx].Contiguous(logKey)
	sec := tb.Sites[0].Secondary
	rcv := tb.Sites[0].Receivers[0]
	if a, e := sec.PrimaryTarget(logKey); a == nil || a.String() != newAddr || e != 2 {
		t.Fatalf("secondary target = %v epoch %d, want %s epoch 2", a, e, newAddr)
	}
	if a, e := rcv.PrimaryTarget(key); a == nil || a.String() != newAddr || e != 2 {
		t.Fatalf("receiver target = %v epoch %d, want %s epoch 2", a, e, newAddr)
	}

	// Heal the partition. The stale primary is back on the network, still
	// believing it is the epoch-1 primary. A tester host replays its stale
	// authority into every component.
	healOld()
	tester := tb.Sites[0].Site.NewHost("tester", nil)
	craft := func(to lbrm.Addr, p wire.Packet) {
		data, err := p.Marshal()
		if err != nil {
			t.Fatal(err)
		}
		if err := tester.Env().Send(to, data); err != nil {
			t.Fatal(err)
		}
	}

	// (1) Stale SourceAck into the sender while real backlog is pending: gate
	// the new primary so no genuine ack races in, send a packet, and replay
	// an epoch-1 ack claiming everything is logged. If fencing failed, the
	// bogus watermark would drain the retention buffer.
	tb.Send([]byte("pre-fence"))
	tb.Run(50 * time.Millisecond) // acked over the source LAN: idle clock fresh
	healNew := tb.ReplicaNodes[newIdx].Isolate(true, true)
	lastSeq, _ := tb.Send([]byte("fence-me"))
	craft(tb.SenderNode.Addr(), wire.Packet{
		Type: wire.TypeSourceAck, Source: tb.Source, Group: tb.Group,
		Seq: lastSeq, ReplicaSeq: lastSeq, Epoch: 1,
	})
	tb.Run(100 * time.Millisecond) // well inside FailoverTimeout: no re-election
	if got := tb.Sender.Stats().StaleSourceAcks; got == 0 {
		t.Fatal("stale epoch-1 SourceAck was not fenced by the sender")
	}
	if tb.Sender.Retained() == 0 {
		t.Fatal("stale SourceAck drained the retention buffer")
	}
	healNew()

	// (2) Stale LogSync into the surviving replica: a bogus high-sequence
	// record at epoch 1 must not touch the log.
	craft(tb.ReplicaNodes[survivorIdx].Addr(), wire.Packet{
		Type: wire.TypeLogSync, Source: tb.Source, Group: tb.Group,
		Seq: survivorContig + 50, Payload: []byte("bogus"), Epoch: 1,
	})
	// (3) Stale PrimaryRedirect naming the old primary into the secondary and
	// a receiver: neither may move its target back.
	stale := wire.Packet{
		Type: wire.TypePrimaryRedirect, Source: tb.Source, Group: tb.Group,
		Addr: tb.PrimaryNode.Addr().String(), Epoch: 1,
	}
	craft(tb.Sites[0].SecondaryNode.Addr(), stale)
	craft(tb.Sites[0].ReceiverNodes[0].Addr(), stale)
	tb.Run(2 * time.Second)

	// At least the crafted sync is fenced; the healed stale primary also
	// replicates its post-heal log at epoch 1 organically, adding more.
	if got := tb.Replicas[survivorIdx].Stats().StaleSyncs; got == 0 {
		t.Fatal("stale epoch-1 LogSync was not fenced by the surviving replica")
	}
	if got := tb.Replicas[survivorIdx].Store(logKey).Has(survivorContig + 50); got {
		t.Fatal("stale LogSync was applied to the surviving replica's log")
	}
	if got := sec.Stats().StaleRedirects; got != 1 {
		t.Fatalf("secondary StaleRedirects = %d, want 1", got)
	}
	if a, _ := sec.PrimaryTarget(logKey); a == nil || a.String() != newAddr {
		t.Fatalf("stale redirect moved the secondary's target to %v", a)
	}
	if got := rcv.Stats().StaleRedirects; got != 1 {
		t.Fatalf("receiver StaleRedirects = %d, want 1", got)
	}
	if a, _ := rcv.PrimaryTarget(key); a == nil || a.String() != newAddr {
		t.Fatalf("stale redirect moved the receiver's target to %v", a)
	}

	// The healed stale primary heard an epoch-2 heartbeat and stepped down on
	// that evidence alone; there is exactly one acting primary again.
	if got := tb.Primary.Stats().Demotions; got != 1 {
		t.Fatalf("stale primary Demotions = %d, want 1", got)
	}
	if !tb.Primary.IsReplica() {
		t.Fatal("stale primary still acting after hearing epoch 2")
	}
	if got := tb.Sender.Stats().Failovers; got != 1 {
		t.Fatalf("extra failover during fencing probes: %d", got)
	}

	// And the deployment still delivers: the backlog and one more packet
	// reach every receiver through the epoch-2 primary.
	tb.Send([]byte("after"))
	tb.Run(3 * time.Second)
	if !tb.EveryoneHas(lastSeq + 1) {
		t.Fatalf("seq %d delivered to %d/%d after the split-brain probes",
			lastSeq+1, tb.DeliveredCount(lastSeq+1), tb.TotalReceivers())
	}
	if tb.Sender.Retained() != 0 {
		t.Fatalf("retention stuck after recovery: %d", tb.Sender.Retained())
	}
}
