package lbrm_test

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// TestCLITools smoke-tests the command-line binaries that can run without
// a network: the simulator driver, the experiment harness, and the pcap
// pipeline (capture with lbrm-sim, decode with lbrm-pcap).
func TestCLITools(t *testing.T) {
	if testing.Short() {
		t.Skip("compiles and runs subprocesses")
	}
	t.Run("lbrm-sim", func(t *testing.T) {
		t.Parallel()
		out, err := exec.Command("go", "run", "./cmd/lbrm-sim",
			"-sites", "3", "-receivers", "2", "-loss", "0.1", "-duration", "20s").CombinedOutput()
		if err != nil {
			t.Fatalf("lbrm-sim: %v\n%s", err, out)
		}
		if !strings.Contains(string(out), "fully delivered to all 6 receivers: 20 (100.0%)") {
			t.Errorf("unexpected sim summary:\n%s", out)
		}
	})
	t.Run("lbrm-bench-list", func(t *testing.T) {
		t.Parallel()
		out, err := exec.Command("go", "run", "./cmd/lbrm-bench", "-list").CombinedOutput()
		if err != nil {
			t.Fatalf("lbrm-bench -list: %v\n%s", err, out)
		}
		for _, id := range []string{"fig4", "table3", "statack", "freshness"} {
			if !strings.Contains(string(out), id) {
				t.Errorf("-list missing %s", id)
			}
		}
	})
	t.Run("lbrm-bench-fig5", func(t *testing.T) {
		t.Parallel()
		out, err := exec.Command("go", "run", "./cmd/lbrm-bench", "-exp", "fig5").CombinedOutput()
		if err != nil {
			t.Fatalf("lbrm-bench: %v\n%s", err, out)
		}
		if !strings.Contains(string(out), "53.2") {
			t.Errorf("fig5 output missing the 53.2 marked point:\n%s", out)
		}
	})
	t.Run("pcap-pipeline", func(t *testing.T) {
		t.Parallel()
		pcap := filepath.Join(t.TempDir(), "run.pcap")
		out, err := exec.Command("go", "run", "./cmd/lbrm-sim",
			"-sites", "2", "-receivers", "1", "-loss", "0.2", "-duration", "15s",
			"-pcap", pcap).CombinedOutput()
		if err != nil {
			t.Fatalf("lbrm-sim -pcap: %v\n%s", err, out)
		}
		if fi, err := os.Stat(pcap); err != nil || fi.Size() < 100 {
			t.Fatalf("pcap file missing/empty: %v", err)
		}
		out, err = exec.Command("go", "run", "./cmd/lbrm-pcap", pcap).CombinedOutput()
		if err != nil {
			t.Fatalf("lbrm-pcap: %v\n%s", err, out)
		}
		for _, want := range []string{"DATA", "HEARTBEAT", "packets ("} {
			if !strings.Contains(string(out), want) {
				t.Errorf("decode output missing %q:\n%s", want, out)
			}
		}
	})
	t.Run("lbrm-bench-unknown", func(t *testing.T) {
		t.Parallel()
		out, err := exec.Command("go", "run", "./cmd/lbrm-bench", "-exp", "nosuch").CombinedOutput()
		if err == nil {
			t.Fatalf("unknown experiment accepted:\n%s", out)
		}
	})
}
