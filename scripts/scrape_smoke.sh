#!/usr/bin/env bash
# Scrape smoke for the fleet observability control plane: boot one of
# each daemon (lbrm-send, lbrm-recv, lbrm-logger) with -metrics-addr,
# curl both exposition formats plus the Prometheus mapping off every
# endpoint, check the advertised Content-Types and the method
# discipline (405 on POST), then point lbrm-top at the three targets in
# -once -strict mode — which re-parses each /metrics/prom body with the
# line-discipline parser and fails on any down target or active alert.
#
# Used as a CI leg (.github/workflows/ci.yml); runs standalone too:
#   ./scripts/scrape_smoke.sh
set -euo pipefail

cd "$(dirname "$0")/.."

BIN="$(mktemp -d)"
cleanup() {
	local pids
	pids=$(jobs -p)
	# Unquoted on purpose: one PID per background daemon.
	# shellcheck disable=SC2086
	[ -n "$pids" ] && kill $pids >/dev/null 2>&1
	wait >/dev/null 2>&1 || true
	rm -rf "$BIN"
}
trap cleanup EXIT

echo "scrape-smoke: building daemons"
go build -o "$BIN" ./cmd/lbrm-send ./cmd/lbrm-recv ./cmd/lbrm-logger ./cmd/lbrm-top

SEND=127.0.0.1:9471
RECV=127.0.0.1:9472
LOGR=127.0.0.1:9473

"$BIN/lbrm-logger" -mode secondary -listen 127.0.0.1:0 -metrics-addr "$LOGR" >"$BIN/logger.log" 2>&1 &
"$BIN/lbrm-recv" -metrics-addr "$RECV" >"$BIN/recv.log" 2>&1 &
"$BIN/lbrm-send" -interval 50ms -metrics-addr "$SEND" >"$BIN/send.log" 2>&1 &

wait_up() {
	local target=$1 i
	for i in $(seq 1 50); do
		if curl -fsS -o /dev/null "http://$target/metrics"; then
			return 0
		fi
		sleep 0.2
	done
	echo "scrape-smoke: FAIL $target never came up" >&2
	cat "$BIN"/*.log >&2 || true
	return 1
}

# expect_ct GET-fetches a path and requires the given Content-Type.
expect_ct() {
	local target=$1 path=$2 want=$3 got
	got=$(curl -fsS -o /dev/null -w '%{content_type}' "http://$target$path")
	if [ "$got" != "$want" ]; then
		echo "scrape-smoke: FAIL $target$path Content-Type '$got', want '$want'" >&2
		return 1
	fi
	echo "scrape-smoke: ok $target$path ($got)"
}

# expect_405 POSTs to a path and requires 405 Method Not Allowed.
expect_405() {
	local target=$1 path=$2 code
	code=$(curl -sS -o /dev/null -w '%{http_code}' -X POST "http://$target$path")
	if [ "$code" != 405 ]; then
		echo "scrape-smoke: FAIL POST $target$path returned $code, want 405" >&2
		return 1
	fi
}

for t in "$SEND" "$RECV" "$LOGR"; do
	wait_up "$t"
	expect_ct "$t" /metrics 'text/plain; version=lbrm.1; charset=utf-8'
	expect_ct "$t" '/metrics?format=json' 'application/json; charset=utf-8'
	expect_ct "$t" /metrics/prom 'text/plain; version=0.0.4; charset=utf-8'
	expect_ct "$t" /metrics/health 'application/json; charset=utf-8'
	expect_405 "$t" /metrics
	expect_405 "$t" /metrics/prom
	# Every Prometheus line must be a comment or `name{...} value`; the
	# strict parse below does the real check, this guards raw emptiness.
	lines=$(curl -fsS "http://$t/metrics/prom" | wc -l)
	if [ "$lines" -lt 3 ]; then
		echo "scrape-smoke: FAIL $t/metrics/prom only $lines lines" >&2
		exit 1
	fi
done

echo "scrape-smoke: fleet scrape via lbrm-top -once -strict"
"$BIN/lbrm-top" -targets "$SEND,$RECV,$LOGR" -once -strict

# The JSON control-plane report must carry live runtime gauges for every
# target (the RuntimeHandler satellite): a zero goroutine count means the
# scrape never saw runtime.* series.
"$BIN/lbrm-top" -targets "$SEND,$RECV,$LOGR" -once -json >"$BIN/fleet.json"
if grep -q '"goroutines": 0' "$BIN/fleet.json"; then
	echo "scrape-smoke: FAIL a target reported 0 goroutines:" >&2
	cat "$BIN/fleet.json" >&2
	exit 1
fi

echo "scrape-smoke: PASS"
