package pcapio

import (
	"bytes"
	"io"
	"testing"
	"time"
)

func TestWriteReadRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w, err := NewWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	t0 := time.Date(2026, 1, 1, 0, 0, 0, 123456000, time.UTC)
	src := [4]byte{10, 77, 0, 1}
	dst := [4]byte{239, 77, 0, 7}
	payloads := [][]byte{[]byte("alpha"), []byte("beta"), {}}
	for i, p := range payloads {
		ts := t0.Add(time.Duration(i) * time.Second)
		if err := w.WriteUDP(ts, src, dst, 7000, 7001, p); err != nil {
			t.Fatal(err)
		}
	}
	if w.Count() != 3 {
		t.Fatalf("Count = %d", w.Count())
	}

	r, err := NewReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range payloads {
		rec, err := r.Next()
		if err != nil {
			t.Fatalf("record %d: %v", i, err)
		}
		if rec.Src != src || rec.Dst != dst {
			t.Fatalf("record %d addrs = %v→%v", i, rec.Src, rec.Dst)
		}
		if rec.SrcPort != 7000 || rec.DstPort != 7001 {
			t.Fatalf("record %d ports = %d→%d", i, rec.SrcPort, rec.DstPort)
		}
		if !bytes.Equal(rec.Payload, p) {
			t.Fatalf("record %d payload = %q, want %q", i, rec.Payload, p)
		}
		want := t0.Add(time.Duration(i) * time.Second)
		if !rec.Time.Equal(want) {
			t.Fatalf("record %d ts = %v, want %v", i, rec.Time, want)
		}
	}
	if _, err := r.Next(); err != io.EOF {
		t.Fatalf("want EOF, got %v", err)
	}
}

func TestIPChecksumValid(t *testing.T) {
	var buf bytes.Buffer
	w, _ := NewWriter(&buf)
	w.WriteUDP(time.Unix(0, 0), [4]byte{1, 2, 3, 4}, [4]byte{5, 6, 7, 8}, 1, 2, []byte("x"))
	frame := buf.Bytes()[24+16:]
	// Recomputing the checksum over the header including the stored
	// checksum must yield 0xFFFF-complement semantics: sum == 0.
	sum := uint32(0)
	for i := 0; i < 20; i += 2 {
		sum += uint32(frame[i])<<8 | uint32(frame[i+1])
	}
	for sum>>16 != 0 {
		sum = (sum & 0xFFFF) + sum>>16
	}
	if uint16(sum) != 0xFFFF {
		t.Fatalf("IP checksum invalid: folded sum = %#x", sum)
	}
}

func TestReaderRejectsGarbage(t *testing.T) {
	if _, err := NewReader(bytes.NewReader([]byte("not a pcap file at all....."))); err == nil {
		t.Fatal("accepted garbage header")
	}
}
