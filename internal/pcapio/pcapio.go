// Package pcapio writes simulator traffic as standard pcap capture files,
// openable in Wireshark/tcpdump. Each simulated datagram is encapsulated
// in a synthesized IPv4+UDP frame: node N becomes 10.77.(N>>8).(N&255),
// multicast groups become 239.77.0.G, and the LBRM wire format rides as
// the UDP payload. Timestamps are the virtual-clock times, so a capture of
// a deterministic run is itself deterministic.
package pcapio

import (
	"encoding/binary"
	"fmt"
	"io"
	"time"
)

// pcap constants (classic little-endian format, LINKTYPE_RAW = raw IPv4/6).
const (
	magicLE     = 0xA1B2C3D4
	versionMaj  = 2
	versionMin  = 4
	linkTypeRaw = 101
	// SnapLen is the maximum captured frame size.
	SnapLen = 65535
)

// Writer emits one pcap stream.
type Writer struct {
	w     io.Writer
	count int
}

// NewWriter writes the pcap global header and returns the writer.
func NewWriter(w io.Writer) (*Writer, error) {
	var hdr [24]byte
	binary.LittleEndian.PutUint32(hdr[0:], magicLE)
	binary.LittleEndian.PutUint16(hdr[4:], versionMaj)
	binary.LittleEndian.PutUint16(hdr[6:], versionMin)
	// thiszone, sigfigs = 0
	binary.LittleEndian.PutUint32(hdr[16:], SnapLen)
	binary.LittleEndian.PutUint32(hdr[20:], linkTypeRaw)
	if _, err := w.Write(hdr[:]); err != nil {
		return nil, fmt.Errorf("pcapio: write header: %w", err)
	}
	return &Writer{w: w}, nil
}

// Count returns the number of packets written.
func (pw *Writer) Count() int { return pw.count }

// WriteUDP writes one synthesized IPv4/UDP frame carrying payload.
func (pw *Writer) WriteUDP(ts time.Time, src, dst [4]byte, srcPort, dstPort uint16, payload []byte) error {
	ipLen := 20 + 8 + len(payload)
	if ipLen > SnapLen {
		return fmt.Errorf("pcapio: frame %d exceeds snaplen", ipLen)
	}
	frame := make([]byte, ipLen)
	// IPv4 header.
	frame[0] = 0x45 // version 4, IHL 5
	binary.BigEndian.PutUint16(frame[2:], uint16(ipLen))
	frame[8] = 64 // TTL (cosmetic; scoping happened in the simulator)
	frame[9] = 17 // UDP
	copy(frame[12:16], src[:])
	copy(frame[16:20], dst[:])
	binary.BigEndian.PutUint16(frame[10:], ipChecksum(frame[:20]))
	// UDP header (checksum 0 = unset, legal for IPv4).
	binary.BigEndian.PutUint16(frame[20:], srcPort)
	binary.BigEndian.PutUint16(frame[22:], dstPort)
	binary.BigEndian.PutUint16(frame[24:], uint16(8+len(payload)))
	copy(frame[28:], payload)

	var rec [16]byte
	binary.LittleEndian.PutUint32(rec[0:], uint32(ts.Unix()))
	binary.LittleEndian.PutUint32(rec[4:], uint32(ts.Nanosecond()/1000))
	binary.LittleEndian.PutUint32(rec[8:], uint32(len(frame)))
	binary.LittleEndian.PutUint32(rec[12:], uint32(len(frame)))
	if _, err := pw.w.Write(rec[:]); err != nil {
		return fmt.Errorf("pcapio: write record: %w", err)
	}
	if _, err := pw.w.Write(frame); err != nil {
		return fmt.Errorf("pcapio: write frame: %w", err)
	}
	pw.count++
	return nil
}

func ipChecksum(hdr []byte) uint16 {
	sum := uint32(0)
	for i := 0; i+1 < len(hdr); i += 2 {
		if i == 10 {
			continue // checksum field itself
		}
		sum += uint32(binary.BigEndian.Uint16(hdr[i:]))
	}
	for sum>>16 != 0 {
		sum = (sum & 0xFFFF) + sum>>16
	}
	return ^uint16(sum)
}

// Record is one parsed capture record (used by the reader below; the
// library reads its own output for tests and tooling).
type Record struct {
	Time     time.Time
	Src, Dst [4]byte
	SrcPort  uint16
	DstPort  uint16
	Payload  []byte
}

// Reader parses pcap streams written by this package (classic
// little-endian, LINKTYPE_RAW, IPv4/UDP frames).
type Reader struct {
	r io.Reader
}

// NewReader validates the global header.
func NewReader(r io.Reader) (*Reader, error) {
	var hdr [24]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, fmt.Errorf("pcapio: read header: %w", err)
	}
	if binary.LittleEndian.Uint32(hdr[0:]) != magicLE {
		return nil, fmt.Errorf("pcapio: bad magic")
	}
	if lt := binary.LittleEndian.Uint32(hdr[20:]); lt != linkTypeRaw {
		return nil, fmt.Errorf("pcapio: unsupported link type %d", lt)
	}
	return &Reader{r: r}, nil
}

// Next returns the next record, or io.EOF at the end of the stream.
func (pr *Reader) Next() (*Record, error) {
	var rec [16]byte
	if _, err := io.ReadFull(pr.r, rec[:]); err != nil {
		if err == io.ErrUnexpectedEOF {
			err = io.EOF
		}
		return nil, err
	}
	capLen := binary.LittleEndian.Uint32(rec[8:])
	if capLen > SnapLen {
		return nil, fmt.Errorf("pcapio: record length %d exceeds snaplen", capLen)
	}
	frame := make([]byte, capLen)
	if _, err := io.ReadFull(pr.r, frame); err != nil {
		return nil, fmt.Errorf("pcapio: short frame: %w", err)
	}
	if len(frame) < 28 || frame[0]>>4 != 4 || frame[9] != 17 {
		return nil, fmt.Errorf("pcapio: not an IPv4/UDP frame")
	}
	out := &Record{
		Time: time.Unix(int64(binary.LittleEndian.Uint32(rec[0:])),
			int64(binary.LittleEndian.Uint32(rec[4:]))*1000).UTC(),
		SrcPort: binary.BigEndian.Uint16(frame[20:]),
		DstPort: binary.BigEndian.Uint16(frame[22:]),
		Payload: frame[28:],
	}
	copy(out.Src[:], frame[12:16])
	copy(out.Dst[:], frame[16:20])
	return out, nil
}
