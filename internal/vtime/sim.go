package vtime

import (
	"container/heap"
	"fmt"
	"time"
)

// Sim is a deterministic discrete-event simulated clock. Events scheduled at
// the same instant fire in the order they were scheduled. Sim is not safe
// for concurrent use: all callbacks execute synchronously inside Run,
// RunUntil, RunFor or Step, on the calling goroutine.
//
// The zero value is not usable; construct with NewSim.
type Sim struct {
	now      time.Time
	queue    eventQueue
	nextSeq  uint64
	running  bool
	pending  int
	executed uint64
}

// NewSim returns a simulated clock whose current time is start.
func NewSim(start time.Time) *Sim {
	return &Sim{now: start}
}

// Now implements Clock.
func (s *Sim) Now() time.Time { return s.now }

// AfterFunc implements Clock. The callback runs when simulated time reaches
// now+d during a subsequent (or the current) Run call.
func (s *Sim) AfterFunc(d time.Duration, fn func()) Timer {
	if fn == nil {
		panic("vtime: AfterFunc with nil callback")
	}
	if d < 0 {
		d = 0
	}
	ev := &event{sim: s, at: s.now.Add(d), seq: s.nextSeq, fn: fn}
	s.nextSeq++
	heap.Push(&s.queue, ev)
	s.pending++
	return ev
}

// Len returns the number of pending (not yet fired, not stopped) events.
func (s *Sim) Len() int { return s.pending }

// Executed returns the number of events that have fired so far.
func (s *Sim) Executed() uint64 { return s.executed }

// Step fires the single earliest pending event, advancing simulated time to
// its deadline. It reports whether an event fired.
func (s *Sim) Step() bool {
	for s.queue.Len() > 0 {
		ev := heap.Pop(&s.queue).(*event)
		if ev.stopped {
			continue
		}
		s.pending--
		if ev.at.After(s.now) {
			s.now = ev.at
		}
		ev.fired = true
		s.executed++
		ev.fn()
		return true
	}
	return false
}

// Run fires events until none remain. Callbacks may schedule further events.
func (s *Sim) Run() {
	s.enter()
	defer s.exit()
	for s.Step() {
	}
}

// RunUntil fires events with deadlines at or before t, then sets the clock
// to t (if t is later than the last event fired).
func (s *Sim) RunUntil(t time.Time) {
	s.enter()
	defer s.exit()
	for {
		ev := s.peek()
		if ev == nil || ev.at.After(t) {
			break
		}
		s.step()
	}
	if t.After(s.now) {
		s.now = t
	}
}

// RunFor advances the clock by d, firing all events that fall due.
func (s *Sim) RunFor(d time.Duration) {
	if d < 0 {
		panic(fmt.Sprintf("vtime: RunFor with negative duration %v", d))
	}
	s.RunUntil(s.now.Add(d))
}

// step is Step without re-entrancy accounting (used inside RunUntil).
func (s *Sim) step() bool {
	for s.queue.Len() > 0 {
		ev := heap.Pop(&s.queue).(*event)
		if ev.stopped {
			continue
		}
		s.pending--
		if ev.at.After(s.now) {
			s.now = ev.at
		}
		ev.fired = true
		s.executed++
		ev.fn()
		return true
	}
	return false
}

// peek returns the earliest live event without firing it, discarding
// stopped events it encounters.
func (s *Sim) peek() *event {
	for s.queue.Len() > 0 {
		ev := s.queue.events[0]
		if !ev.stopped {
			return ev
		}
		heap.Pop(&s.queue)
	}
	return nil
}

func (s *Sim) enter() {
	if s.running {
		panic("vtime: re-entrant Run on Sim (callbacks must not call Run)")
	}
	s.running = true
}

func (s *Sim) exit() { s.running = false }

type event struct {
	sim     *Sim
	at      time.Time
	seq     uint64
	fn      func()
	index   int
	stopped bool
	fired   bool
	inHeap  bool
}

// Stop implements Timer. The event is removed lazily from the heap.
func (ev *event) Stop() bool {
	if ev.stopped || ev.fired {
		return false
	}
	ev.stopped = true
	ev.sim.pending--
	return true
}

// Reset implements Timer: it re-arms the event to fire d from now with the
// original callback, reusing the handle whether the event is pending,
// stopped, or already fired (including from inside its own callback).
func (ev *event) Reset(d time.Duration) bool {
	s := ev.sim
	if d < 0 {
		d = 0
	}
	wasPending := !ev.stopped && !ev.fired
	ev.at = s.now.Add(d)
	ev.seq = s.nextSeq
	s.nextSeq++
	if !wasPending {
		ev.stopped, ev.fired = false, false
		s.pending++
	}
	if ev.inHeap {
		heap.Fix(&s.queue, ev.index)
	} else {
		heap.Push(&s.queue, ev)
	}
	return wasPending
}

// eventQueue is a min-heap ordered by (deadline, scheduling sequence).
type eventQueue struct {
	events []*event
}

func (q *eventQueue) Len() int { return len(q.events) }

func (q *eventQueue) Less(i, j int) bool {
	a, b := q.events[i], q.events[j]
	if !a.at.Equal(b.at) {
		return a.at.Before(b.at)
	}
	return a.seq < b.seq
}

func (q *eventQueue) Swap(i, j int) {
	q.events[i], q.events[j] = q.events[j], q.events[i]
	q.events[i].index = i
	q.events[j].index = j
}

func (q *eventQueue) Push(x any) {
	ev := x.(*event)
	ev.index = len(q.events)
	ev.inHeap = true
	q.events = append(q.events, ev)
}

func (q *eventQueue) Pop() any {
	old := q.events
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	ev.inHeap = false
	q.events = old[:n-1]
	return ev
}
