package vtime

import (
	"container/heap"
	"fmt"
	"sync/atomic"
	"time"
)

// Sim is a deterministic discrete-event simulated clock. Events scheduled at
// the same instant fire in the order they were scheduled. Sim is not safe
// for concurrent use: all callbacks execute synchronously inside Run,
// RunUntil, RunFor or Step, on the calling goroutine.
//
// Internally events live in a pluggable scheduler. The default is a
// hierarchical timer wheel (wheel.go) with O(1) schedule/cancel/reset for
// near-future timers; the original container/heap implementation is kept
// behind UseHeapScheduler as a differential-testing reference. Both order
// events identically by (deadline, scheduling sequence), so traces are
// byte-identical across the two.
//
// The zero value is not usable; construct with NewSim.
type Sim struct {
	now      time.Time
	start    time.Time
	sched    scheduler
	nextSeq  uint64
	running  bool
	pending  int
	executed uint64
}

// forceHeap selects the legacy heap scheduler for subsequently created
// Sims. Test-only: flipped by differential tests and the perf baseline
// runner; production code never touches it.
var forceHeap atomic.Bool

// UseHeapScheduler switches Sims created after the call to the legacy
// container/heap event queue (true) or the default timer wheel (false).
// It exists so differential tests and baseline benchmarks can run the
// exact pre-wheel scheduler; it is not part of the supported API surface.
func UseHeapScheduler(on bool) { forceHeap.Store(on) }

// HeapSchedulerForced reports the current setting of UseHeapScheduler.
func HeapSchedulerForced() bool { return forceHeap.Load() }

// NewSim returns a simulated clock whose current time is start.
func NewSim(start time.Time) *Sim {
	s := &Sim{now: start, start: start}
	if forceHeap.Load() {
		s.sched = &heapSched{}
	} else {
		s.sched = newWheelSched()
	}
	return s
}

// newHeapSim returns a Sim on the legacy heap scheduler regardless of the
// global knob (test helper).
func newHeapSim(start time.Time) *Sim {
	return &Sim{now: start, start: start, sched: &heapSched{}}
}

// newWheelSim returns a Sim on the timer wheel regardless of the global
// knob (test helper).
func newWheelSim(start time.Time) *Sim {
	return &Sim{now: start, start: start, sched: newWheelSched()}
}

// Now implements Clock.
func (s *Sim) Now() time.Time { return s.now }

// AfterFunc implements Clock. The callback runs when simulated time reaches
// now+d during a subsequent (or the current) Run call.
func (s *Sim) AfterFunc(d time.Duration, fn func()) Timer {
	if fn == nil {
		panic("vtime: AfterFunc with nil callback")
	}
	if d < 0 {
		d = 0
	}
	at := s.now.Add(d)
	ev := &event{sim: s, at: at, atNS: at.Sub(s.start).Nanoseconds(), seq: s.nextSeq, fn: fn}
	s.nextSeq++
	s.sched.schedule(ev)
	s.pending++
	return ev
}

// Len returns the number of pending (not yet fired, not stopped) events.
func (s *Sim) Len() int { return s.pending }

// Executed returns the number of events that have fired so far.
func (s *Sim) Executed() uint64 { return s.executed }

// Step fires the single earliest pending event, advancing simulated time to
// its deadline. It reports whether an event fired.
func (s *Sim) Step() bool { return s.step() }

// Run fires events until none remain. Callbacks may schedule further events.
func (s *Sim) Run() {
	s.enter()
	defer s.exit()
	for s.step() {
	}
}

// RunUntil fires events with deadlines at or before t, then sets the clock
// to t (if t is later than the last event fired).
func (s *Sim) RunUntil(t time.Time) {
	s.enter()
	defer s.exit()
	for {
		ev := s.sched.peek()
		if ev == nil || ev.at.After(t) {
			break
		}
		s.step()
	}
	if t.After(s.now) {
		s.now = t
	}
}

// RunFor advances the clock by d, firing all events that fall due.
func (s *Sim) RunFor(d time.Duration) {
	if d < 0 {
		panic(fmt.Sprintf("vtime: RunFor with negative duration %v", d))
	}
	s.RunUntil(s.now.Add(d))
}

// step pops and fires the earliest live event.
func (s *Sim) step() bool {
	ev := s.sched.pop()
	if ev == nil {
		return false
	}
	s.pending--
	if ev.at.After(s.now) {
		s.now = ev.at
	}
	ev.fired = true
	s.executed++
	ev.fn()
	return true
}

func (s *Sim) enter() {
	if s.running {
		panic("vtime: re-entrant Run on Sim (callbacks must not call Run)")
	}
	s.running = true
}

func (s *Sim) exit() { s.running = false }

// scheduler is the pluggable event queue behind Sim. Both implementations
// return events in strict (atNS, seq) order and drop stopped or
// superseded (re-armed) events lazily.
type scheduler interface {
	// schedule inserts a freshly created event.
	schedule(ev *event)
	// reschedule re-inserts ev after Reset updated at/atNS/seq/gen.
	reschedule(ev *event)
	// pop removes and returns the earliest live event, or nil.
	pop() *event
	// peek returns the earliest live event without removing it, or nil.
	peek() *event
}

type event struct {
	sim  *Sim
	at   time.Time
	atNS int64 // at relative to the sim epoch, for the wheel
	seq  uint64
	fn   func()
	// gen invalidates stale wheel entries: Reset bumps it, so entries
	// recorded under an older generation are discarded when encountered.
	gen     uint32
	index   int // heap scheduler bookkeeping
	stopped bool
	fired   bool
	inHeap  bool
}

// Stop implements Timer. The event is removed lazily from the scheduler.
func (ev *event) Stop() bool {
	if ev.stopped || ev.fired {
		return false
	}
	ev.stopped = true
	ev.sim.pending--
	return true
}

// Reset implements Timer: it re-arms the event to fire d from now with the
// original callback, reusing the handle whether the event is pending,
// stopped, or already fired (including from inside its own callback).
func (ev *event) Reset(d time.Duration) bool {
	s := ev.sim
	if d < 0 {
		d = 0
	}
	wasPending := !ev.stopped && !ev.fired
	ev.at = s.now.Add(d)
	ev.atNS = ev.at.Sub(s.start).Nanoseconds()
	ev.seq = s.nextSeq
	s.nextSeq++
	ev.gen++
	if !wasPending {
		ev.stopped, ev.fired = false, false
		s.pending++
	}
	s.sched.reschedule(ev)
	return wasPending
}

// heapSched is the original global min-heap scheduler, retained as the
// differential-testing reference behind UseHeapScheduler.
type heapSched struct {
	queue eventQueue
}

func (h *heapSched) schedule(ev *event) { heap.Push(&h.queue, ev) }

func (h *heapSched) reschedule(ev *event) {
	if ev.inHeap {
		heap.Fix(&h.queue, ev.index)
	} else {
		heap.Push(&h.queue, ev)
	}
}

func (h *heapSched) pop() *event {
	for h.queue.Len() > 0 {
		ev := heap.Pop(&h.queue).(*event)
		if ev.stopped {
			continue
		}
		return ev
	}
	return nil
}

func (h *heapSched) peek() *event {
	for h.queue.Len() > 0 {
		ev := h.queue.events[0]
		if !ev.stopped {
			return ev
		}
		heap.Pop(&h.queue)
	}
	return nil
}

// eventQueue is a min-heap ordered by (deadline, scheduling sequence).
type eventQueue struct {
	events []*event
}

func (q *eventQueue) Len() int { return len(q.events) }

func (q *eventQueue) Less(i, j int) bool {
	a, b := q.events[i], q.events[j]
	if a.atNS != b.atNS {
		return a.atNS < b.atNS
	}
	return a.seq < b.seq
}

func (q *eventQueue) Swap(i, j int) {
	q.events[i], q.events[j] = q.events[j], q.events[i]
	q.events[i].index = i
	q.events[j].index = j
}

func (q *eventQueue) Push(x any) {
	ev := x.(*event)
	ev.index = len(q.events)
	ev.inHeap = true
	q.events = append(q.events, ev)
}

func (q *eventQueue) Pop() any {
	old := q.events
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	ev.inHeap = false
	q.events = old[:n-1]
	return ev
}
