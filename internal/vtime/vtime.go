// Package vtime provides a clock abstraction with two implementations: a
// real clock backed by package time, and a deterministic discrete-event
// simulated clock. Protocol code is written against Clock so that the same
// state machines run over real UDP multicast and inside the network
// simulator, where hours of protocol time execute in milliseconds and every
// run is reproducible.
package vtime

import "time"

// Timer is a handle to a pending callback scheduled with Clock.AfterFunc.
type Timer interface {
	// Stop cancels the timer. It reports whether the call prevented the
	// callback from firing. Stopping an already-fired or already-stopped
	// timer is a no-op that returns false.
	Stop() bool
	// Reset re-arms the timer to fire d from now with its original
	// callback, whether or not it has already fired or been stopped. It
	// reports whether the timer was still pending. Hot reschedule paths
	// (heartbeat rearm on every data packet) use Reset instead of
	// Stop+AfterFunc so no new callback closure is allocated per packet.
	Reset(d time.Duration) bool
}

// Clock abstracts the passage of time. Implementations must be safe for the
// concurrency model they advertise: Real is safe for concurrent use; Sim is
// single-threaded by construction (callbacks run inside Run).
type Clock interface {
	// Now returns the current time.
	Now() time.Time
	// AfterFunc schedules fn to run once, d from now. A non-positive d
	// schedules fn to run as soon as possible, still asynchronously.
	AfterFunc(d time.Duration, fn func()) Timer
}

// Real is a Clock backed by the standard time package.
type Real struct{}

// Now implements Clock.
func (Real) Now() time.Time { return time.Now() }

// AfterFunc implements Clock.
func (Real) AfterFunc(d time.Duration, fn func()) Timer {
	if d < 0 {
		d = 0
	}
	return realTimer{time.AfterFunc(d, fn)}
}

type realTimer struct{ t *time.Timer }

func (r realTimer) Stop() bool { return r.t.Stop() }

func (r realTimer) Reset(d time.Duration) bool {
	if d < 0 {
		d = 0
	}
	return r.t.Reset(d)
}
