package vtime

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
	"time"
)

var t0 = time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)

func TestSimNowStartsAtConstruction(t *testing.T) {
	s := NewSim(t0)
	if !s.Now().Equal(t0) {
		t.Fatalf("Now() = %v, want %v", s.Now(), t0)
	}
}

func TestSimFiresInDeadlineOrder(t *testing.T) {
	s := NewSim(t0)
	var got []int
	s.AfterFunc(3*time.Second, func() { got = append(got, 3) })
	s.AfterFunc(1*time.Second, func() { got = append(got, 1) })
	s.AfterFunc(2*time.Second, func() { got = append(got, 2) })
	s.Run()
	want := []int{1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("fire order = %v, want %v", got, want)
		}
	}
	if !s.Now().Equal(t0.Add(3 * time.Second)) {
		t.Fatalf("Now() after Run = %v, want %v", s.Now(), t0.Add(3*time.Second))
	}
}

func TestSimTieBreaksByScheduleOrder(t *testing.T) {
	s := NewSim(t0)
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		s.AfterFunc(time.Second, func() { got = append(got, i) })
	}
	s.Run()
	for i := range got {
		if got[i] != i {
			t.Fatalf("tie-break order = %v, want ascending", got)
		}
	}
}

func TestSimCallbackSeesDeadlineAsNow(t *testing.T) {
	s := NewSim(t0)
	var at time.Time
	s.AfterFunc(5*time.Second, func() { at = s.Now() })
	s.Run()
	if !at.Equal(t0.Add(5 * time.Second)) {
		t.Fatalf("callback Now() = %v, want %v", at, t0.Add(5*time.Second))
	}
}

func TestSimNestedScheduling(t *testing.T) {
	s := NewSim(t0)
	var fired int
	var rec func()
	rec = func() {
		fired++
		if fired < 5 {
			s.AfterFunc(time.Second, rec)
		}
	}
	s.AfterFunc(time.Second, rec)
	s.Run()
	if fired != 5 {
		t.Fatalf("fired = %d, want 5", fired)
	}
	if !s.Now().Equal(t0.Add(5 * time.Second)) {
		t.Fatalf("Now() = %v, want %v", s.Now(), t0.Add(5*time.Second))
	}
}

func TestSimStopPreventsFire(t *testing.T) {
	s := NewSim(t0)
	fired := false
	tm := s.AfterFunc(time.Second, func() { fired = true })
	if !tm.Stop() {
		t.Fatal("first Stop() = false, want true")
	}
	if tm.Stop() {
		t.Fatal("second Stop() = true, want false")
	}
	s.Run()
	if fired {
		t.Fatal("stopped timer fired")
	}
	if s.Len() != 0 {
		t.Fatalf("Len() = %d, want 0", s.Len())
	}
}

func TestSimStopAfterFireReturnsFalse(t *testing.T) {
	s := NewSim(t0)
	tm := s.AfterFunc(time.Second, func() {})
	s.Run()
	if tm.Stop() {
		t.Fatal("Stop() after fire = true, want false")
	}
}

func TestSimRunUntilPartialAndClockAdvance(t *testing.T) {
	s := NewSim(t0)
	var got []int
	s.AfterFunc(1*time.Second, func() { got = append(got, 1) })
	s.AfterFunc(10*time.Second, func() { got = append(got, 10) })
	s.RunUntil(t0.Add(5 * time.Second))
	if len(got) != 1 || got[0] != 1 {
		t.Fatalf("got %v, want [1]", got)
	}
	if !s.Now().Equal(t0.Add(5 * time.Second)) {
		t.Fatalf("Now() = %v, want %v", s.Now(), t0.Add(5*time.Second))
	}
	if s.Len() != 1 {
		t.Fatalf("Len() = %d, want 1", s.Len())
	}
	s.RunFor(5 * time.Second)
	if len(got) != 2 || got[1] != 10 {
		t.Fatalf("got %v, want [1 10]", got)
	}
}

func TestSimRunUntilInclusiveBoundary(t *testing.T) {
	s := NewSim(t0)
	fired := false
	s.AfterFunc(time.Second, func() { fired = true })
	s.RunUntil(t0.Add(time.Second))
	if !fired {
		t.Fatal("event at exactly the RunUntil boundary did not fire")
	}
}

func TestSimNegativeDelayClampsToNow(t *testing.T) {
	s := NewSim(t0)
	var at time.Time
	s.AfterFunc(-time.Hour, func() { at = s.Now() })
	s.Run()
	if !at.Equal(t0) {
		t.Fatalf("fired at %v, want %v", at, t0)
	}
}

func TestSimLenAndExecuted(t *testing.T) {
	s := NewSim(t0)
	for i := 0; i < 4; i++ {
		s.AfterFunc(time.Duration(i+1)*time.Second, func() {})
	}
	if s.Len() != 4 {
		t.Fatalf("Len() = %d, want 4", s.Len())
	}
	s.Step()
	if s.Len() != 3 || s.Executed() != 1 {
		t.Fatalf("Len=%d Executed=%d, want 3,1", s.Len(), s.Executed())
	}
	s.Run()
	if s.Len() != 0 || s.Executed() != 4 {
		t.Fatalf("Len=%d Executed=%d, want 0,4", s.Len(), s.Executed())
	}
}

func TestSimStepReturnsFalseWhenEmpty(t *testing.T) {
	s := NewSim(t0)
	if s.Step() {
		t.Fatal("Step() on empty sim = true")
	}
}

// Property: for any set of random delays, events fire in nondecreasing
// deadline order and the final clock equals the max deadline.
func TestSimOrderingProperty(t *testing.T) {
	f := func(delaysMS []uint16) bool {
		if len(delaysMS) == 0 {
			return true
		}
		s := NewSim(t0)
		var fireTimes []time.Time
		for _, d := range delaysMS {
			s.AfterFunc(time.Duration(d)*time.Millisecond, func() {
				fireTimes = append(fireTimes, s.Now())
			})
		}
		s.Run()
		if len(fireTimes) != len(delaysMS) {
			return false
		}
		if !sort.SliceIsSorted(fireTimes, func(i, j int) bool {
			return fireTimes[i].Before(fireTimes[j])
		}) {
			return false
		}
		maxD := time.Duration(0)
		for _, d := range delaysMS {
			if dd := time.Duration(d) * time.Millisecond; dd > maxD {
				maxD = dd
			}
		}
		return s.Now().Equal(t0.Add(maxD))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: stopping a random subset prevents exactly that subset from
// firing and Len reflects the stops.
func TestSimStopSubsetProperty(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		s := NewSim(t0)
		count := int(n%50) + 1
		fired := make([]bool, count)
		timers := make([]Timer, count)
		for i := 0; i < count; i++ {
			i := i
			timers[i] = s.AfterFunc(time.Duration(rng.Intn(1000))*time.Millisecond,
				func() { fired[i] = true })
		}
		stopped := make([]bool, count)
		for i := 0; i < count; i++ {
			if rng.Intn(2) == 0 {
				stopped[i] = timers[i].Stop()
			}
		}
		s.Run()
		for i := 0; i < count; i++ {
			if fired[i] == stopped[i] {
				return false // stopped XOR fired must hold
			}
		}
		return s.Len() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestRealClockAfterFunc(t *testing.T) {
	c := Real{}
	ch := make(chan struct{})
	c.AfterFunc(time.Millisecond, func() { close(ch) })
	select {
	case <-ch:
	case <-time.After(5 * time.Second):
		t.Fatal("real timer did not fire")
	}
	if d := time.Since(c.Now()); d > time.Minute || d < -time.Minute {
		t.Fatalf("Real.Now() far from time.Now(): %v", d)
	}
}

func TestRealClockStop(t *testing.T) {
	c := Real{}
	tm := c.AfterFunc(time.Hour, func() { t.Error("stopped real timer fired") })
	if !tm.Stop() {
		t.Fatal("Stop() = false on pending real timer")
	}
}

func TestSimReentrantRunPanics(t *testing.T) {
	s := NewSim(t0)
	s.AfterFunc(time.Second, func() {
		defer func() {
			if recover() == nil {
				t.Error("re-entrant Run did not panic")
			}
		}()
		s.Run()
	})
	s.Run()
}

func TestSimTimerReset(t *testing.T) {
	start := time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)
	t.Run("pending reschedules", func(t *testing.T) {
		s := NewSim(start)
		var fired []time.Time
		tm := s.AfterFunc(time.Second, func() { fired = append(fired, s.Now()) })
		if !tm.Reset(3 * time.Second) {
			t.Fatal("Reset on pending timer reported not-pending")
		}
		s.Run()
		if len(fired) != 1 || !fired[0].Equal(start.Add(3*time.Second)) {
			t.Fatalf("fired = %v, want one firing at +3s", fired)
		}
	})
	t.Run("stopped re-arms", func(t *testing.T) {
		s := NewSim(start)
		n := 0
		tm := s.AfterFunc(time.Second, func() { n++ })
		tm.Stop()
		if tm.Reset(2 * time.Second) {
			t.Fatal("Reset on stopped timer reported pending")
		}
		if s.Len() != 1 {
			t.Fatalf("Len = %d, want 1", s.Len())
		}
		s.Run()
		if n != 1 {
			t.Fatalf("fired %d times, want 1", n)
		}
	})
	t.Run("fired re-arms from callback", func(t *testing.T) {
		// The hot heartbeat pattern: the callback Resets its own timer.
		s := NewSim(start)
		n := 0
		var tm Timer
		tm = s.AfterFunc(time.Second, func() {
			n++
			if n < 3 {
				tm.Reset(time.Second)
			}
		})
		s.Run()
		if n != 3 {
			t.Fatalf("fired %d times, want 3", n)
		}
		if !s.Now().Equal(start.Add(3 * time.Second)) {
			t.Fatalf("Now = %v, want +3s", s.Now())
		}
	})
	t.Run("reset then stop", func(t *testing.T) {
		s := NewSim(start)
		n := 0
		tm := s.AfterFunc(time.Second, func() { n++ })
		tm.Reset(2 * time.Second)
		if !tm.Stop() {
			t.Fatal("Stop after Reset reported not-pending")
		}
		s.Run()
		if n != 0 {
			t.Fatalf("stopped timer fired %d times", n)
		}
		if s.Len() != 0 {
			t.Fatalf("Len = %d, want 0", s.Len())
		}
	})
	t.Run("ordering against equal deadlines", func(t *testing.T) {
		// A Reset timer schedules after already-pending events at the same
		// instant (fresh scheduling sequence).
		s := NewSim(start)
		var order []string
		s.AfterFunc(time.Second, func() { order = append(order, "a") })
		tm := s.AfterFunc(500*time.Millisecond, func() { order = append(order, "b") })
		tm.Reset(time.Second)
		s.Run()
		if len(order) != 2 || order[0] != "a" || order[1] != "b" {
			t.Fatalf("order = %v, want [a b]", order)
		}
	})
}

func TestRealTimerReset(t *testing.T) {
	done := make(chan struct{}, 1)
	tm := Real{}.AfterFunc(time.Hour, func() { done <- struct{}{} })
	if !tm.Reset(time.Millisecond) {
		t.Fatal("Reset on pending real timer reported not-pending")
	}
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("reset real timer never fired")
	}
	// Re-arm after firing.
	if tm.Reset(time.Millisecond) {
		t.Fatal("Reset on fired real timer reported pending")
	}
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("re-armed real timer never fired")
	}
}
