package vtime

import "math/bits"

// wheelSched is a hierarchical timer wheel. Time is bucketed into ticks of
// 2^tickShift ns (~65.5µs). Level 0 has one slot per tick over a 256-tick
// window; levels 1-3 each have 64 slots covering successively wider,
// cursor-aligned windows (≈1.07s, ≈68.7s, ≈73.3min). Events beyond the
// level-3 horizon wait in an overflow min-heap and migrate into the wheel
// when the cursor reaches their window.
//
// Entries are value records pointing at their event; Stop and Reset are
// O(1) because invalidation is lazy — a stopped flag or a generation bump
// makes the stale entry a no-op when its slot is eventually drained. Slot
// slices are retained after draining, so the steady state allocates only
// when a slot grows past its high-water mark.
//
// Ordering contract (identical to the heap scheduler): events fire in
// strict (atNS, seq) order. Entries at or before the cursor tick sit in a
// small "near" heap ordered by exactly that key; all wheel entries are
// strictly after the cursor tick, so the near heap's minimum is always the
// global minimum.
const (
	tickShift = 16 // 65.536µs per tick

	l0Bits = 8 // 256 one-tick slots
	lvBits = 6 // 64 slots per higher level

	l1Shift = l0Bits            // tick >> 0 grouped by >>8 within the L1 window
	l2Shift = l0Bits + lvBits   // 14
	l3Shift = l0Bits + 2*lvBits // 20
	ovShift = l0Bits + 3*lvBits // 26: beyond the L3 window → overflow

	l0Mask = 1<<l0Bits - 1
	lvMask = 1<<lvBits - 1
)

// entry is one scheduled occurrence of an event. atNS and seq are copied
// at insert time so ordering is stable even if the event is later re-armed
// (the gen check then discards this occurrence).
type entry struct {
	ev   *event
	atNS int64
	seq  uint64
	gen  uint32
}

func (e entry) live() bool { return e.ev.gen == e.gen && !e.ev.stopped }

type wheelSched struct {
	// curTick is the next unexamined tick: every live entry with
	// atTick < curTick is in near; every wheel/overflow entry has
	// atTick >= curTick.
	curTick int64

	l0 [1 << l0Bits][]entry
	l1 [1 << lvBits][]entry
	l2 [1 << lvBits][]entry
	l3 [1 << lvBits][]entry

	l0bits [4]uint64
	l1bits uint64
	l2bits uint64
	l3bits uint64

	near     entryHeap
	overflow entryHeap
}

func newWheelSched() *wheelSched { return &wheelSched{} }

func (w *wheelSched) schedule(ev *event) {
	w.insert(entry{ev: ev, atNS: ev.atNS, seq: ev.seq, gen: ev.gen})
}

func (w *wheelSched) reschedule(ev *event) { w.schedule(ev) }

func (w *wheelSched) insert(e entry) {
	t := e.atNS >> tickShift
	cur := w.curTick
	switch {
	case t < cur:
		w.near.push(e)
	case t>>l1Shift == cur>>l1Shift:
		s := t & l0Mask
		w.l0[s] = append(w.l0[s], e)
		w.l0bits[s>>6] |= 1 << (s & 63)
	case t>>l2Shift == cur>>l2Shift:
		s := (t >> l1Shift) & lvMask
		w.l1[s] = append(w.l1[s], e)
		w.l1bits |= 1 << s
	case t>>l3Shift == cur>>l3Shift:
		s := (t >> l2Shift) & lvMask
		w.l2[s] = append(w.l2[s], e)
		w.l2bits |= 1 << s
	case t>>ovShift == cur>>ovShift:
		s := (t >> l3Shift) & lvMask
		w.l3[s] = append(w.l3[s], e)
		w.l3bits |= 1 << s
	default:
		w.overflow.push(e)
	}
}

func (w *wheelSched) pop() *event {
	for {
		if len(w.near.es) > 0 {
			e := w.near.popMin()
			if e.live() {
				return e.ev
			}
			continue
		}
		if !w.advance() {
			return nil
		}
	}
}

func (w *wheelSched) peek() *event {
	for {
		if len(w.near.es) > 0 {
			e := w.near.es[0]
			if e.live() {
				return e.ev
			}
			w.near.popMin()
			continue
		}
		if !w.advance() {
			return nil
		}
	}
}

// advance moves curTick forward to just past the next non-empty level-0
// slot, draining that slot's live entries into the near heap, cascading
// higher levels as their windows are entered. Returns false when no
// entries remain anywhere.
func (w *wheelSched) advance() bool {
	for {
		// Whenever the cursor sits on a level-boundary (reached by the
		// climb below, by a boundary-crossing curTick++, or by overflow
		// migration), the slot covering the newly entered window must
		// cascade down before level 0 is scanned, highest level first.
		// The overflow heap is the topmost level: entering a new 2^26-tick
		// window (which can happen organically via curTick++ off the last
		// tick of the previous window, not only via migrateOverflow) must
		// pull that window's far timers into the wheel first, or they
		// would be stranded behind later-deadline entries inserted by
		// callbacks into the fresh window.
		if w.curTick&(1<<ovShift-1) == 0 {
			w.migrateWindow(w.curTick >> ovShift)
		}
		if w.curTick&(1<<l3Shift-1) == 0 {
			if s := w.curTick >> l3Shift & lvMask; w.l3bits&(1<<s) != 0 {
				w.cascade(&w.l3[s], &w.l3bits, s)
			}
		}
		if w.curTick&(1<<l2Shift-1) == 0 {
			if s := w.curTick >> l2Shift & lvMask; w.l2bits&(1<<s) != 0 {
				w.cascade(&w.l2[s], &w.l2bits, s)
			}
		}
		if w.curTick&(1<<l1Shift-1) == 0 {
			if s := w.curTick >> l1Shift & lvMask; w.l1bits&(1<<s) != 0 {
				w.cascade(&w.l1[s], &w.l1bits, s)
			}
		}
		// Next set L0 bit at or after the cursor's slot within the
		// current 256-tick window.
		if s, ok := next256(&w.l0bits, int(w.curTick&l0Mask)); ok {
			w.curTick = w.curTick&^l0Mask | int64(s)
			w.drainL0(s)
			w.curTick++ // tick examined; same-tick inserts now go to near
			if len(w.near.es) > 0 {
				return true
			}
			continue // slot held only stale entries
		}
		// L0 exhausted for this window: jump to the next non-empty L1
		// slot's base (the loop top cascades it).
		if i := int(w.curTick>>l1Shift)&lvMask + 1; i < 1<<lvBits {
			if s, ok := next64(w.l1bits, i); ok {
				w.curTick = w.curTick&^(1<<l2Shift-1) | int64(s)<<l1Shift
				continue
			}
		}
		// L1 window exhausted: jump to the next non-empty L2 slot's base.
		if i := int(w.curTick>>l2Shift)&lvMask + 1; i < 1<<lvBits {
			if s, ok := next64(w.l2bits, i); ok {
				w.curTick = w.curTick&^(1<<l3Shift-1) | int64(s)<<l2Shift
				continue
			}
		}
		// L2 window exhausted: jump to the next non-empty L3 slot's base.
		if i := int(w.curTick>>l3Shift)&lvMask + 1; i < 1<<lvBits {
			if s, ok := next64(w.l3bits, i); ok {
				w.curTick = w.curTick&^(1<<ovShift-1) | int64(s)<<l3Shift
				continue
			}
		}
		// Whole wheel exhausted: migrate the overflow window holding the
		// earliest far timer, if any.
		if !w.migrateOverflow() {
			return false
		}
	}
}

// drainL0 moves slot s's live entries into the near heap and clears it.
func (w *wheelSched) drainL0(s int) {
	slot := w.l0[s]
	for _, e := range slot {
		if e.live() {
			w.near.push(e)
		}
	}
	w.l0[s] = slot[:0]
	w.l0bits[s>>6] &^= 1 << (s & 63)
}

// cascade redistributes a higher-level slot after the cursor entered its
// window. Entries re-insert at a lower level (or near) by alignment.
func (w *wheelSched) cascade(slot *[]entry, bitsWord *uint64, s int64) {
	es := *slot
	// Entries re-insert strictly below this level, never back into this
	// slot, so the backing array can be truncated in place and reused.
	*slot = es[:0]
	*bitsWord &^= 1 << s
	for _, e := range es {
		if e.live() {
			w.insert(e)
		}
	}
}

// migrateOverflow jumps the cursor to the overflow minimum's level-3
// window and moves every overflow entry in that window into the wheel.
func (w *wheelSched) migrateOverflow() bool {
	if len(w.overflow.es) == 0 {
		return false
	}
	minTick := w.overflow.es[0].atNS >> tickShift
	w.curTick = minTick &^ (1<<ovShift - 1)
	w.migrateWindow(minTick >> ovShift)
	return true
}

// migrateWindow moves every overflow entry whose tick lies in the given
// 2^26-tick window into the wheel. Overflow entries are always at or after
// the cursor, so the window's entries form a prefix of the min-heap.
func (w *wheelSched) migrateWindow(win int64) {
	for len(w.overflow.es) > 0 && w.overflow.es[0].atNS>>tickShift>>ovShift == win {
		e := w.overflow.popMin()
		if e.live() {
			w.insert(e)
		}
	}
}

// next256 returns the lowest set bit index >= from in a 256-bit set.
func next256(b *[4]uint64, from int) (int, bool) {
	w := from >> 6
	if x := b[w] &^ (1<<(from&63) - 1); x != 0 {
		return w<<6 + bits.TrailingZeros64(x), true
	}
	for w++; w < 4; w++ {
		if b[w] != 0 {
			return w<<6 + bits.TrailingZeros64(b[w]), true
		}
	}
	return 0, false
}

// next64 returns the lowest set bit index >= from in a 64-bit set.
func next64(b uint64, from int) (int, bool) {
	if x := b &^ (1<<from - 1); x != 0 {
		return bits.TrailingZeros64(x), true
	}
	return 0, false
}

// entryHeap is a binary min-heap of entries ordered by (atNS, seq),
// implemented directly (no container/heap interface boxing).
type entryHeap struct {
	es []entry
}

func (h *entryHeap) push(e entry) {
	h.es = append(h.es, e)
	i := len(h.es) - 1
	for i > 0 {
		p := (i - 1) / 2
		if !entryLess(h.es[i], h.es[p]) {
			break
		}
		h.es[i], h.es[p] = h.es[p], h.es[i]
		i = p
	}
}

func (h *entryHeap) popMin() entry {
	es := h.es
	min := es[0]
	n := len(es) - 1
	es[0] = es[n]
	es[n] = entry{}
	h.es = es[:n]
	// sift down
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		sm := i
		if l < n && entryLess(es[l], es[sm]) {
			sm = l
		}
		if r < n && entryLess(es[r], es[sm]) {
			sm = r
		}
		if sm == i {
			break
		}
		es[i], es[sm] = es[sm], es[i]
		i = sm
	}
	return min
}

func entryLess(a, b entry) bool {
	if a.atNS != b.atNS {
		return a.atNS < b.atNS
	}
	return a.seq < b.seq
}
