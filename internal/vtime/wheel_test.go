package vtime

import (
	"fmt"
	"math/rand"
	"testing"
	"time"
)

// epoch matches the netsim simulation start so test timelines look like
// real runs; any fixed instant works.
var epoch = time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)

// firing is one observed callback execution.
type firing struct {
	id int
	at time.Time
}

// simDriver drives one Sim through a scripted workload, recording the
// firing order. Timers are retained by script index so Stop/Reset ops hit
// the same logical timer on both implementations.
type simDriver struct {
	sim    *Sim
	timers []Timer
	order  []firing
}

func newDriver(s *Sim) *simDriver { return &simDriver{sim: s} }

func (d *simDriver) schedule(id int, delay time.Duration, nested func(*simDriver, int)) {
	d.timers = append(d.timers, nil)
	idx := len(d.timers) - 1
	d.timers[idx] = d.sim.AfterFunc(delay, func() {
		d.order = append(d.order, firing{id: id, at: d.sim.Now()})
		if nested != nil {
			nested(d, id)
		}
	})
}

// op is one scripted action in the randomized workload.
type op struct {
	kind  int // 0 schedule, 1 stop, 2 reset, 3 runFor
	delay time.Duration
	tgt   int // timer index for stop/reset
}

// genScript builds a deterministic random workload from seed. Delays are
// drawn across every wheel horizon: same-tick, level 0-3, and overflow.
func genScript(seed int64, n int) []op {
	rng := rand.New(rand.NewSource(seed))
	horizons := []time.Duration{
		0,
		30 * time.Microsecond,  // sub-tick
		3 * time.Millisecond,   // level 0
		300 * time.Millisecond, // level 1
		20 * time.Second,       // level 2
		10 * time.Minute,       // level 3
		2 * time.Hour,          // overflow
		100 * time.Hour,        // deep overflow (multiple windows)
	}
	ops := make([]op, 0, n)
	for i := 0; i < n; i++ {
		switch k := rng.Intn(10); {
		case k < 5:
			h := horizons[rng.Intn(len(horizons))]
			d := time.Duration(0)
			if h > 0 {
				d = time.Duration(rng.Int63n(int64(h)))
			}
			ops = append(ops, op{kind: 0, delay: d})
		case k < 6:
			ops = append(ops, op{kind: 1, tgt: rng.Int()})
		case k < 8:
			h := horizons[rng.Intn(len(horizons))]
			d := time.Duration(0)
			if h > 0 {
				d = time.Duration(rng.Int63n(int64(h)))
			}
			ops = append(ops, op{kind: 2, tgt: rng.Int(), delay: d})
		default:
			ops = append(ops, op{kind: 3, delay: time.Duration(rng.Int63n(int64(time.Minute)))})
		}
	}
	return ops
}

// runScript replays a script against a driver. Nested callbacks schedule
// and reset further timers, exercising insert-during-drain paths.
func runScript(t *testing.T, d *simDriver, ops []op, seed int64) {
	t.Helper()
	nestRng := rand.New(rand.NewSource(seed * 7919))
	var nested func(dd *simDriver, parent int)
	nested = func(dd *simDriver, parent int) {
		// Deterministic per-firing decisions: keyed off the shared rng,
		// whose draw order matches because the firing order must match.
		switch nestRng.Intn(6) {
		case 0:
			dd.schedule(100000+len(dd.timers), 0, nil)
		case 1:
			dd.schedule(200000+len(dd.timers), 777*time.Microsecond, nil)
		case 2:
			if len(dd.timers) > 0 {
				dd.timers[nestRng.Intn(len(dd.timers))].Reset(time.Duration(nestRng.Int63n(int64(5 * time.Second))))
			}
		case 3:
			if len(dd.timers) > 0 {
				dd.timers[nestRng.Intn(len(dd.timers))].Stop()
			}
		}
	}
	id := 0
	for _, o := range ops {
		switch o.kind {
		case 0:
			d.schedule(id, o.delay, nested)
			id++
		case 1:
			if len(d.timers) > 0 {
				d.timers[o.tgt%len(d.timers)].Stop()
			}
		case 2:
			if len(d.timers) > 0 {
				d.timers[o.tgt%len(d.timers)].Reset(o.delay)
			}
		case 3:
			d.sim.RunFor(o.delay)
		}
	}
	d.sim.Run()
}

// TestWheelMatchesHeapModel is the property test: identical randomized
// schedule/Stop/Reset workloads on the timer wheel and on the reference
// heap scheduler must produce identical firing sequences (ids and
// instants), identical executed counts, and identical end states.
func TestWheelMatchesHeapModel(t *testing.T) {
	for seed := int64(1); seed <= 20; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			ops := genScript(seed, 400)
			wheel := newDriver(newWheelSim(epoch))
			heap := newDriver(newHeapSim(epoch))
			runScript(t, wheel, ops, seed)
			runScript(t, heap, ops, seed)
			if len(wheel.order) != len(heap.order) {
				t.Fatalf("firing count diverged: wheel %d heap %d", len(wheel.order), len(heap.order))
			}
			for i := range wheel.order {
				if wheel.order[i] != heap.order[i] {
					t.Fatalf("firing %d diverged: wheel %+v heap %+v", i, wheel.order[i], heap.order[i])
				}
			}
			if w, h := wheel.sim.Executed(), heap.sim.Executed(); w != h {
				t.Fatalf("executed diverged: wheel %d heap %d", w, h)
			}
			if w, h := wheel.sim.Len(), heap.sim.Len(); w != h {
				t.Fatalf("pending diverged: wheel %d heap %d", w, h)
			}
			if w, h := wheel.sim.Now(), heap.sim.Now(); !w.Equal(h) {
				t.Fatalf("clock diverged: wheel %v heap %v", w, h)
			}
		})
	}
}

// TestWheelSameInstantFIFO checks the FIFO tie-break across every insert
// path: events landing on one instant via direct schedule, via Reset, and
// via cascade from a higher level must fire in schedule-sequence order.
func TestWheelSameInstantFIFO(t *testing.T) {
	s := newWheelSim(epoch)
	target := 90 * time.Second // level-2 horizon at schedule time
	var got []int
	rec := func(id int) func() { return func() { got = append(got, id) } }

	s.AfterFunc(target, rec(0)) // lands in L2, cascades twice
	s.AfterFunc(target, rec(1))
	tm := s.AfterFunc(time.Hour, rec(2))
	s.RunFor(89 * time.Second)
	// Reset past the pending cascade: same instant, later seq.
	tm.Reset(time.Second)
	s.AfterFunc(time.Second, rec(3))
	s.Run()
	want := []int{0, 1, 2, 3}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("same-instant order = %v, want %v", got, want)
	}
}

// TestWheelResetAcrossCascade re-arms timers back and forth across level
// boundaries — the Reset-past-cascade cases: a far timer pulled near must
// fire at the near deadline exactly once; a near timer pushed far must not
// fire early even though its stale entry is still sitting in a near slot.
func TestWheelResetAcrossCascade(t *testing.T) {
	s := newWheelSim(epoch)
	fired := map[string]time.Time{}
	far := s.AfterFunc(45*time.Minute, func() { fired["far"] = s.Now() })
	near := s.AfterFunc(2*time.Millisecond, func() { fired["near"] = s.Now() })

	far.Reset(5 * time.Millisecond) // L3 → L0
	near.Reset(30 * time.Minute)    // L0 → L3
	s.RunFor(time.Second)
	if want := epoch.Add(5 * time.Millisecond); !fired["far"].Equal(want) {
		t.Fatalf("far fired at %v, want %v", fired["far"], want)
	}
	if _, ok := fired["near"]; ok {
		t.Fatalf("near fired early at %v", fired["near"])
	}
	s.RunFor(30 * time.Minute)
	if want := epoch.Add(30 * time.Minute); !fired["near"].Equal(want) {
		t.Fatalf("near fired at %v, want %v", fired["near"], want)
	}
	if got := s.Executed(); got != 2 {
		t.Fatalf("executed = %d, want 2 (no duplicate firings from stale entries)", got)
	}
}

// TestWheelOverflowMigration parks timers several level-3 windows out and
// checks they migrate back into the wheel in order, interleaved correctly
// with near timers scheduled after the cursor jumps.
func TestWheelOverflowMigration(t *testing.T) {
	s := newWheelSim(epoch)
	var got []int
	s.AfterFunc(300*time.Hour, func() { got = append(got, 3) })
	s.AfterFunc(2*time.Hour, func() {
		got = append(got, 1)
		s.AfterFunc(time.Millisecond, func() { got = append(got, 2) })
	})
	s.AfterFunc(time.Minute, func() { got = append(got, 0) })
	s.Run()
	if fmt.Sprint(got) != fmt.Sprint([]int{0, 1, 2, 3}) {
		t.Fatalf("overflow firing order = %v", got)
	}
	if !s.Now().Equal(epoch.Add(300 * time.Hour)) {
		t.Fatalf("clock = %v", s.Now())
	}
}

// TestWheelOverflowBoundaryCrossing pins the organic window-crossing case:
// the cursor enters a new 2^26-tick overflow window via curTick++ off the
// last tick of the previous window (not via migrateOverflow), while an
// overflow timer A is pending early in the new window and the firing
// callback schedules a later-deadline event D directly into the wheel.
// A must still fire before D; a buggy wheel strands A in the overflow heap
// and fires D first. The randomized property test cannot reliably hit this
// one-tick-in-2^26 alignment, so it is pinned here and cross-checked
// against the reference heap scheduler.
func TestWheelOverflowBoundaryCrossing(t *testing.T) {
	const (
		tick   = time.Duration(1) << tickShift // 65.536µs
		window = tick << (ovShift)             // 2^26 ticks ≈ 73.3min
	)
	run := func(s *Sim) []firing {
		var got []firing
		rec := func(id int) func() {
			return func() { got = append(got, firing{id: id, at: s.Now()}) }
		}
		// L: last tick of window 0; its callback schedules D at tick
		// 2^26+101, which lands in L0 of the freshly entered window.
		s.AfterFunc(window-tick, func() {
			got = append(got, firing{id: 0, at: s.Now()})
			s.AfterFunc(101*tick, rec(3))
		})
		// A: early in window 1 — in the overflow heap at schedule time,
		// with an earlier deadline than D.
		s.AfterFunc(window+5*tick, rec(1))
		// Same-window overflow timer after A, and one a window further
		// out: both must stay correctly ordered behind A.
		s.AfterFunc(window+50*tick, rec(2))
		s.AfterFunc(2*window+tick, rec(4))
		s.Run()
		return got
	}
	wheel := run(newWheelSim(epoch))
	heap := run(newHeapSim(epoch))
	if fmt.Sprint(wheel) != fmt.Sprint(heap) {
		t.Fatalf("wheel diverged from heap:\nwheel %v\nheap  %v", wheel, heap)
	}
	for i, want := range []int{0, 1, 2, 3, 4} {
		if wheel[i].id != want {
			t.Fatalf("firing order = %v, want ids [0 1 2 3 4]", wheel)
		}
	}
}

// TestUseHeapScheduler verifies the test-only knob actually switches the
// scheduler for new Sims and restores cleanly.
func TestUseHeapScheduler(t *testing.T) {
	UseHeapScheduler(true)
	defer UseHeapScheduler(false)
	if !HeapSchedulerForced() {
		t.Fatal("knob did not latch")
	}
	s := NewSim(epoch)
	if _, ok := s.sched.(*heapSched); !ok {
		t.Fatalf("NewSim under knob built %T, want *heapSched", s.sched)
	}
	UseHeapScheduler(false)
	s = NewSim(epoch)
	if _, ok := s.sched.(*wheelSched); !ok {
		t.Fatalf("NewSim default built %T, want *wheelSched", s.sched)
	}
}
