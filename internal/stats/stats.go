// Package stats provides the small measurement toolkit used by the
// experiment harness: counters, streaming mean/stddev (Welford), and
// sample-based histograms with percentiles. Values are owned by a single
// goroutine (the simulator loop or one benchmark); none of the types are
// concurrency-safe.
package stats

import (
	"fmt"
	"math"
	"sort"
	"time"
)

// Welford accumulates a running mean and variance.
type Welford struct {
	n    int
	mean float64
	m2   float64
}

// Add folds in one sample.
func (w *Welford) Add(x float64) {
	w.n++
	d := x - w.mean
	w.mean += d / float64(w.n)
	w.m2 += d * (x - w.mean)
}

// N returns the sample count.
func (w *Welford) N() int { return w.n }

// Mean returns the sample mean (0 with no samples).
func (w *Welford) Mean() float64 { return w.mean }

// Var returns the population variance.
func (w *Welford) Var() float64 {
	if w.n == 0 {
		return 0
	}
	return w.m2 / float64(w.n)
}

// StdDev returns the population standard deviation.
func (w *Welford) StdDev() float64 { return math.Sqrt(w.Var()) }

// Sample collects raw observations for percentile queries.
type Sample struct {
	xs     []float64
	sorted bool
}

// Add appends one observation.
func (s *Sample) Add(x float64) {
	s.xs = append(s.xs, x)
	s.sorted = false
}

// AddDuration appends a duration observation in seconds.
func (s *Sample) AddDuration(d time.Duration) { s.Add(d.Seconds()) }

// N returns the number of observations.
func (s *Sample) N() int { return len(s.xs) }

// Mean returns the sample mean.
func (s *Sample) Mean() float64 {
	if len(s.xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range s.xs {
		sum += x
	}
	return sum / float64(len(s.xs))
}

// StdDev returns the population standard deviation.
func (s *Sample) StdDev() float64 {
	n := len(s.xs)
	if n == 0 {
		return 0
	}
	m := s.Mean()
	sum := 0.0
	for _, x := range s.xs {
		d := x - m
		sum += d * d
	}
	return math.Sqrt(sum / float64(n))
}

// Min returns the smallest observation (0 with no samples).
func (s *Sample) Min() float64 {
	s.sort()
	if len(s.xs) == 0 {
		return 0
	}
	return s.xs[0]
}

// Max returns the largest observation (0 with no samples).
func (s *Sample) Max() float64 {
	s.sort()
	if len(s.xs) == 0 {
		return 0
	}
	return s.xs[len(s.xs)-1]
}

// Percentile returns the p-th percentile (0 ≤ p ≤ 100) using
// nearest-rank on the sorted samples.
func (s *Sample) Percentile(p float64) float64 {
	s.sort()
	n := len(s.xs)
	if n == 0 {
		return 0
	}
	if p <= 0 {
		return s.xs[0]
	}
	if p >= 100 {
		return s.xs[n-1]
	}
	rank := int(math.Ceil(p / 100 * float64(n)))
	if rank < 1 {
		rank = 1
	}
	return s.xs[rank-1]
}

// MeanDuration returns the mean as a time.Duration (samples in seconds).
func (s *Sample) MeanDuration() time.Duration {
	return time.Duration(s.Mean() * float64(time.Second))
}

// PercentileDuration returns a percentile as a time.Duration.
func (s *Sample) PercentileDuration(p float64) time.Duration {
	return time.Duration(s.Percentile(p) * float64(time.Second))
}

func (s *Sample) sort() {
	if !s.sorted {
		sort.Float64s(s.xs)
		s.sorted = true
	}
}

// String summarizes the sample.
func (s *Sample) String() string {
	return fmt.Sprintf("n=%d mean=%.4g p50=%.4g p99=%.4g max=%.4g",
		s.N(), s.Mean(), s.Percentile(50), s.Percentile(99), s.Max())
}

// CounterSet is a named counter bag, used for per-packet-type traffic
// accounting in experiments.
type CounterSet struct {
	names  []string
	counts map[string]uint64
}

// NewCounterSet returns an empty counter bag.
func NewCounterSet() *CounterSet {
	return &CounterSet{counts: make(map[string]uint64)}
}

// Inc adds delta to the named counter, creating it on first use.
func (c *CounterSet) Inc(name string, delta uint64) {
	if _, ok := c.counts[name]; !ok {
		c.names = append(c.names, name)
	}
	c.counts[name] += delta
}

// Get returns the named counter's value (0 when absent).
func (c *CounterSet) Get(name string) uint64 { return c.counts[name] }

// Names returns counter names in first-use order.
func (c *CounterSet) Names() []string { return append([]string(nil), c.names...) }

// Reset zeroes all counters but keeps names.
func (c *CounterSet) Reset() {
	for k := range c.counts {
		c.counts[k] = 0
	}
}
