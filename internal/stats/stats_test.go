package stats

import (
	"math"
	"sort"
	"testing"
	"testing/quick"
	"time"
)

func TestWelfordAgainstDirect(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	var w Welford
	for _, x := range xs {
		w.Add(x)
	}
	if w.N() != len(xs) {
		t.Fatalf("N = %d", w.N())
	}
	if math.Abs(w.Mean()-5) > 1e-12 {
		t.Fatalf("Mean = %v, want 5", w.Mean())
	}
	if math.Abs(w.StdDev()-2) > 1e-12 {
		t.Fatalf("StdDev = %v, want 2", w.StdDev())
	}
}

func TestWelfordEmpty(t *testing.T) {
	var w Welford
	if w.Mean() != 0 || w.Var() != 0 || w.StdDev() != 0 {
		t.Fatal("empty Welford not zero")
	}
}

func TestSamplePercentiles(t *testing.T) {
	var s Sample
	for i := 1; i <= 100; i++ {
		s.Add(float64(i))
	}
	cases := []struct {
		p    float64
		want float64
	}{
		{0, 1}, {1, 1}, {50, 50}, {99, 99}, {100, 100},
	}
	for _, c := range cases {
		if got := s.Percentile(c.p); got != c.want {
			t.Errorf("Percentile(%v) = %v, want %v", c.p, got, c.want)
		}
	}
	if s.Min() != 1 || s.Max() != 100 {
		t.Errorf("Min/Max = %v/%v", s.Min(), s.Max())
	}
}

func TestSampleAddAfterSortStaysCorrect(t *testing.T) {
	var s Sample
	s.Add(5)
	_ = s.Percentile(50) // forces sort
	s.Add(1)
	if s.Min() != 1 {
		t.Fatal("Add after sort broke ordering")
	}
}

func TestSampleDurations(t *testing.T) {
	var s Sample
	s.AddDuration(100 * time.Millisecond)
	s.AddDuration(300 * time.Millisecond)
	if got := s.MeanDuration(); got != 200*time.Millisecond {
		t.Fatalf("MeanDuration = %v", got)
	}
	if got := s.PercentileDuration(100); got != 300*time.Millisecond {
		t.Fatalf("PercentileDuration(100) = %v", got)
	}
}

func TestSampleEmpty(t *testing.T) {
	var s Sample
	if s.Mean() != 0 || s.StdDev() != 0 || s.Percentile(50) != 0 {
		t.Fatal("empty sample stats not zero")
	}
}

func TestCounterSet(t *testing.T) {
	c := NewCounterSet()
	c.Inc("nack", 1)
	c.Inc("data", 5)
	c.Inc("nack", 2)
	if c.Get("nack") != 3 || c.Get("data") != 5 || c.Get("missing") != 0 {
		t.Fatal("counts wrong")
	}
	names := c.Names()
	if len(names) != 2 || names[0] != "nack" || names[1] != "data" {
		t.Fatalf("Names = %v", names)
	}
	c.Reset()
	if c.Get("nack") != 0 {
		t.Fatal("Reset did not zero")
	}
	if len(c.Names()) != 2 {
		t.Fatal("Reset dropped names")
	}
}

// Property: Welford matches the two-pass computation.
func TestWelfordProperty(t *testing.T) {
	f := func(raw []int16) bool {
		if len(raw) == 0 {
			return true
		}
		var w Welford
		sum := 0.0
		for _, r := range raw {
			w.Add(float64(r))
			sum += float64(r)
		}
		mean := sum / float64(len(raw))
		vsum := 0.0
		for _, r := range raw {
			d := float64(r) - mean
			vsum += d * d
		}
		wantVar := vsum / float64(len(raw))
		return math.Abs(w.Mean()-mean) < 1e-6 && math.Abs(w.Var()-wantVar) < 1e-3
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: percentiles are monotone in p and bounded by Min/Max.
func TestPercentileMonotoneProperty(t *testing.T) {
	f := func(raw []int16) bool {
		if len(raw) == 0 {
			return true
		}
		var s Sample
		for _, r := range raw {
			s.Add(float64(r))
		}
		ps := []float64{0, 10, 25, 50, 75, 90, 99, 100}
		prev := math.Inf(-1)
		for _, p := range ps {
			v := s.Percentile(p)
			if v < prev || v < s.Min() || v > s.Max() {
				return false
			}
			prev = v
		}
		// Percentile values must be actual observations.
		xs := append([]int16(nil), raw...)
		sort.Slice(xs, func(i, j int) bool { return xs[i] < xs[j] })
		return s.Percentile(50) == float64(xs[(len(xs)-1)/2]) ||
			s.Percentile(50) == float64(xs[len(xs)/2])
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
