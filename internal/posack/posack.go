// Package posack implements a conventional sender-reliable positive-
// acknowledgement multicast baseline (§1, §5): the source knows its
// receivers, every receiver unicasts an ACK for every data packet, and the
// source retransmits to receivers whose ACKs are missing after a timeout.
//
// It exists to demonstrate the two pathologies LBRM avoids: ACK implosion
// at the source (one ACK per receiver per packet) and the receiver-list
// coupling that prevents dynamic membership.
package posack

import (
	"time"

	"lbrm/internal/transport"
	"lbrm/internal/wire"
)

// SourceConfig configures the positive-ack source.
type SourceConfig struct {
	Group  wire.GroupID
	Source wire.SourceID
	// Receivers is the explicit receiver list (the coupling LBRM removes).
	Receivers []transport.Addr
	// RetransmitTimeout is how long to wait for ACKs before unicasting
	// retransmissions to the laggards.
	RetransmitTimeout time.Duration
	// MaxRetries bounds retransmissions per packet per receiver.
	MaxRetries int
}

func (c SourceConfig) withDefaults() SourceConfig {
	if c.RetransmitTimeout == 0 {
		c.RetransmitTimeout = 200 * time.Millisecond
	}
	if c.MaxRetries == 0 {
		c.MaxRetries = 5
	}
	return c
}

// SourceStats counts the source's activity — AcksReceived is the implosion
// metric.
type SourceStats struct {
	DataSent       uint64
	AcksReceived   uint64
	Retransmitted  uint64
	PacketsGivenUp uint64
	Malformed      uint64
}

// Source is the positive-ack multicast source.
type Source struct {
	cfg     SourceConfig
	env     transport.Env
	seq     uint64
	pending map[uint64]*outstanding
	stats   SourceStats
}

type outstanding struct {
	payload []byte
	missing map[transport.Addr]bool
	retries int
}

// NewSource returns a positive-ack source.
func NewSource(cfg SourceConfig) *Source {
	return &Source{cfg: cfg.withDefaults(), pending: make(map[uint64]*outstanding)}
}

// Stats returns a snapshot of the source's counters.
func (s *Source) Stats() SourceStats { return s.stats }

// Outstanding returns the number of packets not yet fully acknowledged.
func (s *Source) Outstanding() int { return len(s.pending) }

// Start implements transport.Handler.
func (s *Source) Start(env transport.Env) { s.env = env }

// Send multicasts one payload and tracks per-receiver acknowledgement.
func (s *Source) Send(payload []byte) (uint64, error) {
	s.seq++
	seq := s.seq
	p := wire.Packet{
		Type: wire.TypeData, Source: s.cfg.Source, Group: s.cfg.Group,
		Seq: seq, Payload: payload,
	}
	buf, err := p.Marshal()
	if err != nil {
		return 0, err
	}
	if err := s.env.Multicast(s.cfg.Group, transport.TTLGlobal, buf); err != nil {
		return 0, err
	}
	s.stats.DataSent++
	o := &outstanding{
		payload: append([]byte(nil), payload...),
		missing: make(map[transport.Addr]bool, len(s.cfg.Receivers)),
	}
	for _, r := range s.cfg.Receivers {
		o.missing[r] = true
	}
	s.pending[seq] = o
	s.env.AfterFunc(s.cfg.RetransmitTimeout, func() { s.deadline(seq) })
	return seq, nil
}

// Recv implements transport.Handler.
func (s *Source) Recv(from transport.Addr, data []byte) {
	var p wire.Packet
	if err := p.Unmarshal(data); err != nil {
		s.stats.Malformed++
		return
	}
	if p.Type != wire.TypeAck || p.Source != s.cfg.Source || p.Group != s.cfg.Group {
		return
	}
	s.stats.AcksReceived++
	o := s.pending[p.Seq]
	if o == nil {
		return
	}
	delete(o.missing, from)
	if len(o.missing) == 0 {
		delete(s.pending, p.Seq)
	}
}

// deadline unicasts retransmissions to every receiver still missing seq.
func (s *Source) deadline(seq uint64) {
	o := s.pending[seq]
	if o == nil {
		return
	}
	if o.retries >= s.cfg.MaxRetries {
		delete(s.pending, seq)
		s.stats.PacketsGivenUp++
		return
	}
	o.retries++
	r := wire.Packet{
		Type: wire.TypeRetrans, Flags: wire.FlagRetransmission,
		Source: s.cfg.Source, Group: s.cfg.Group, Seq: seq, Payload: o.payload,
	}
	buf, err := r.Marshal()
	if err != nil {
		return
	}
	for rcv := range o.missing {
		_ = s.env.Send(rcv, buf)
		s.stats.Retransmitted++
	}
	s.env.AfterFunc(s.cfg.RetransmitTimeout, func() { s.deadline(seq) })
}

// ReceiverConfig configures a positive-ack receiver.
type ReceiverConfig struct {
	Group  wire.GroupID
	Source wire.SourceID
	// SourceAddr is where ACKs go.
	SourceAddr transport.Addr
	// OnData observes deliveries.
	OnData func(seq uint64, payload []byte)
}

// ReceiverStats counts the receiver's activity.
type ReceiverStats struct {
	Delivered  uint64
	Duplicates uint64
	AcksSent   uint64
	Malformed  uint64
}

// Receiver is a positive-ack receiver: it ACKs every packet it gets.
type Receiver struct {
	cfg   ReceiverConfig
	env   transport.Env
	seen  map[uint64]bool
	stats ReceiverStats
}

// NewReceiver returns a positive-ack receiver.
func NewReceiver(cfg ReceiverConfig) *Receiver {
	return &Receiver{cfg: cfg, seen: make(map[uint64]bool)}
}

// Stats returns a snapshot of the receiver's counters.
func (r *Receiver) Stats() ReceiverStats { return r.stats }

// Start implements transport.Handler.
func (r *Receiver) Start(env transport.Env) {
	r.env = env
	if err := env.Join(r.cfg.Group); err != nil {
		panic("posack: join failed: " + err.Error())
	}
}

// Recv implements transport.Handler.
func (r *Receiver) Recv(from transport.Addr, data []byte) {
	var p wire.Packet
	if err := p.Unmarshal(data); err != nil {
		r.stats.Malformed++
		return
	}
	if p.Source != r.cfg.Source || p.Group != r.cfg.Group {
		return
	}
	if p.Type != wire.TypeData && p.Type != wire.TypeRetrans {
		return
	}
	ack := wire.Packet{
		Type: wire.TypeAck, Source: r.cfg.Source, Group: r.cfg.Group, Seq: p.Seq,
	}
	if buf, err := ack.Marshal(); err == nil {
		_ = r.env.Send(r.cfg.SourceAddr, buf)
		r.stats.AcksSent++
	}
	if r.seen[p.Seq] {
		r.stats.Duplicates++
		return
	}
	r.seen[p.Seq] = true
	r.stats.Delivered++
	if r.cfg.OnData != nil {
		r.cfg.OnData(p.Seq, p.Payload)
	}
}
