package posack

import (
	"fmt"
	"testing"
	"time"

	"lbrm/internal/netsim"
	"lbrm/internal/transport"
	"lbrm/internal/wire"
)

const g = wire.GroupID(6)

type bed struct {
	net       *netsim.Network
	source    *Source
	receivers []*Receiver
	nodes     []*netsim.Node
	sites     []*netsim.Site
}

func buildBed(t *testing.T, seed int64, sites, perSite int) *bed {
	t.Helper()
	b := &bed{net: netsim.New(seed)}
	srcSite := b.net.NewSite(netsim.SiteParams{Name: "src"})
	// Receivers first so the source can be configured with their list —
	// the explicit coupling this baseline exists to demonstrate.
	var rcvAddrs []transport.Addr
	for i := 0; i < sites; i++ {
		site := b.net.NewSite(netsim.SiteParams{Name: fmt.Sprintf("s%d", i)})
		b.sites = append(b.sites, site)
		for j := 0; j < perSite; j++ {
			node := site.NewHost("", nil)
			b.nodes = append(b.nodes, node)
			rcvAddrs = append(rcvAddrs, node.Addr())
		}
	}
	b.source = NewSource(SourceConfig{Group: g, Source: 1, Receivers: rcvAddrs,
		RetransmitTimeout: 150 * time.Millisecond})
	srcNode := srcSite.NewHost("source", b.source)
	// Now attach receiver handlers (they need the source address).
	idx := 0
	for range b.sites {
		for j := 0; j < perSite; j++ {
			r := NewReceiver(ReceiverConfig{Group: g, Source: 1, SourceAddr: srcNode.Addr()})
			b.receivers = append(b.receivers, r)
			b.attach(b.nodes[idx], r)
			idx++
		}
	}
	b.net.Start()
	return b
}

// attach wires a handler to a pre-created node.
func (b *bed) attach(node *netsim.Node, h transport.Handler) {
	node.SetHandler(h)
}

func TestPosAckImplosion(t *testing.T) {
	const sites, perSite = 5, 10
	b := buildBed(t, 1, sites, perSite)
	const packets = 4
	for i := 0; i < packets; i++ {
		if _, err := b.source.Send([]byte("x")); err != nil {
			t.Fatal(err)
		}
		b.net.RunFor(300 * time.Millisecond)
	}
	b.net.RunFor(time.Second)
	// The implosion metric: one ACK per receiver per packet arrives at the
	// source.
	want := uint64(sites * perSite * packets)
	if got := b.source.Stats().AcksReceived; got != want {
		t.Fatalf("acks at source = %d, want %d", got, want)
	}
	if b.source.Outstanding() != 0 {
		t.Fatalf("outstanding = %d", b.source.Outstanding())
	}
}

func TestPosAckRetransmitsToLaggard(t *testing.T) {
	b := buildBed(t, 2, 2, 2)
	b.source.Send([]byte("one"))
	b.net.RunFor(500 * time.Millisecond)
	b.nodes[0].DownLink().SetLoss(&netsim.FirstN{N: 1})
	b.source.Send([]byte("two"))
	b.net.RunFor(2 * time.Second)
	if got := b.receivers[0].Stats().Delivered; got != 2 {
		t.Fatalf("victim delivered = %d, want 2", got)
	}
	if b.source.Stats().Retransmitted == 0 {
		t.Fatal("no retransmissions despite loss")
	}
	if b.source.Outstanding() != 0 {
		t.Fatalf("outstanding = %d after recovery", b.source.Outstanding())
	}
}

func TestPosAckGivesUpOnDeadReceiver(t *testing.T) {
	b := buildBed(t, 3, 1, 2)
	b.nodes[0].DownLink().SetLoss(&netsim.Gate{Down: true})
	b.source.Send([]byte("one"))
	b.net.RunFor(5 * time.Second)
	st := b.source.Stats()
	if st.PacketsGivenUp != 1 {
		t.Fatalf("stats = %+v, want 1 given-up packet", st)
	}
	if b.source.Outstanding() != 0 {
		t.Fatal("outstanding not cleared after give-up")
	}
	// Retries were bounded.
	if st.Retransmitted > 10 {
		t.Fatalf("retransmitted %d times, retries unbounded?", st.Retransmitted)
	}
}
