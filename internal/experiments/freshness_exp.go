package experiments

import (
	"fmt"
	"time"

	"lbrm"
	"lbrm/internal/stats"
)

func init() {
	register("freshness", "§1's freshness requirement: update latency distribution under loss, by recovery configuration", Freshness)
}

// Freshness measures what the paper is ultimately about: how stale a
// receiver's view gets. Every update's delivery latency (send →
// application callback, including any recovery) is sampled across 10
// sites × 5 receivers with 10% tail-circuit loss, under three
// configurations:
//
//   - no recovery: plain multicast + heartbeats, receivers never NACK —
//     lost updates simply never arrive (the pre-LBRM baseline);
//   - LBRM: the distributed logging hierarchy repairs losses;
//   - LBRM + statistical ack: widespread losses are additionally repaired
//     by immediate source re-multicast.
//
// The paper's DIS requirement is a 250 ms freshness bound (MaxIT); with
// h_min = 250 ms, detection alone costs up to h_min, so recovered updates
// land within h_min + recovery RTT.
func Freshness() *Result {
	const sites = 10
	const perSite = 5
	const packets = 120
	r := NewResult("freshness", "Update latency across 50 receivers, 10% tail loss, hmin=250ms",
		"configuration", "p50", "p99", "max", "delivered")

	runLat := func(recovery, statack bool) (*stats.Sample, int, int) {
		sentAt := map[uint64]time.Time{}
		lat := &stats.Sample{}
		var clock interface{ Now() time.Time }
		scfg := lbrm.SenderConfig{Heartbeat: lbrm.DefaultHeartbeat}
		if statack {
			scfg.StatAck = lbrm.StatAckConfig{
				Enabled: true, K: 5,
				RTT:       lbrm.RTTConfig{Initial: 120 * time.Millisecond},
				GroupSize: lbrm.GroupSizeConfig{Initial: sites},
			}
		}
		rcfg := lbrm.ReceiverConfig{NackDelay: 10 * time.Millisecond}
		if !recovery {
			rcfg.NackDelay = time.Hour
		}
		tb, err := lbrm.NewTestbed(lbrm.TestbedConfig{
			Seed: 81, Sites: sites, ReceiversPerSite: perSite,
			Sender:   scfg,
			Receiver: rcfg,
			ConfigureReceiver: func(site, idx int, cfg *lbrm.ReceiverConfig) {
				cfg.OnData = func(e lbrm.Event) {
					if t0, ok := sentAt[e.Seq]; ok {
						lat.AddDuration(clock.Now().Sub(t0))
					}
				}
			},
		})
		if err != nil {
			panic(err)
		}
		clock = tb.Net.Clock()
		for _, s := range tb.Sites {
			s.Site.TailDown().SetLoss(lbrm.Bernoulli{P: 0.10})
		}
		tb.Run(2 * time.Second) // contact + (optional) epoch
		for i := 1; i <= packets; i++ {
			seq, err := tb.Send([]byte("update"))
			if err != nil {
				panic(err)
			}
			sentAt[seq] = tb.Net.Clock().Now()
			tb.Run(250 * time.Millisecond)
		}
		tb.Run(15 * time.Second)
		delivered := 0
		for seq := range sentAt {
			delivered += tb.DeliveredCount(seq)
		}
		return lat, delivered, packets * tb.TotalReceivers()
	}

	row := func(name string, recovery, statack bool, key string) {
		lat, delivered, possible := runLat(recovery, statack)
		r.AddRow(name,
			lat.PercentileDuration(50).Round(time.Millisecond).String(),
			lat.PercentileDuration(99).Round(time.Millisecond).String(),
			lat.PercentileDuration(100).Round(time.Millisecond).String(),
			fmt.Sprintf("%d/%d (%.1f%%)", delivered, possible, 100*float64(delivered)/float64(possible)))
		r.Set(key+"P99ms", lat.Percentile(99)*1000)
		r.Set(key+"DeliveredPct", 100*float64(delivered)/float64(possible))
	}
	row("no recovery (plain multicast)", false, false, "none")
	row("LBRM (logging hierarchy)", true, false, "lbrm")
	row("LBRM + statistical ack", true, true, "statack")
	r.Note("p99 under LBRM ≈ h_min (detection) + recovery RTT: the paper's 250 ms freshness bound is met for recovered packets; without recovery ~10%% of updates never arrive at each receiver")
	return r
}
