package experiments

import (
	"fmt"
	"time"

	"lbrm"
)

func init() {
	register("flow", "§5 extension: statistical-ack feedback as sender flow control", FlowControl)
}

// FlowControl exercises the paper's §5 future-work idea: "we are looking
// into use statistical acknowledgement information to slow down the
// sender during periods of high loss." The sender's missing-ACK EWMA
// drives an advisory pacing delay; this experiment pushes a stream
// through a clean period, a congested period (30% loss on the source's
// own tail circuit), and a recovery period, reporting the advised pacing
// in each.
func FlowControl() *Result {
	r := NewResult("flow", "Sender pacing advice from statistical-ack feedback (§5)",
		"phase", "loss estimate", "advised pacing")
	tb, err := lbrm.NewTestbed(lbrm.TestbedConfig{
		Seed: 51, Sites: 20, ReceiversPerSite: 1,
		Sender: lbrm.SenderConfig{
			Heartbeat: lbrm.HeartbeatParams{HMin: 200 * time.Millisecond, HMax: 8 * time.Second, Backoff: 2},
			StatAck: lbrm.StatAckConfig{
				Enabled: true, K: 20, EpochInterval: 5 * time.Minute,
				RTT:          lbrm.RTTConfig{Initial: 120 * time.Millisecond},
				GroupSize:    lbrm.GroupSizeConfig{Initial: 20},
				FlowControl:  true,
				FlowMaxDelay: 2 * time.Second,
			},
		},
		Receiver:  lbrm.ReceiverConfig{NackDelay: 30 * time.Second},
		Secondary: lbrm.SecondaryConfig{NackDelay: 30 * time.Second},
	})
	if err != nil {
		panic(err)
	}
	tb.Run(2 * time.Second) // epoch up

	phase := func(name string, packets int) {
		for i := 0; i < packets; i++ {
			tb.Send([]byte("u"))
			tb.Run(500 * time.Millisecond)
		}
		r.AddRow(name, fmt.Sprintf("%.2f", tb.Sender.LossEstimate()),
			tb.Sender.SendDelay().Round(time.Millisecond).String())
	}

	phase("clean (10 pkts)", 10)
	r.Set("cleanDelayMS", float64(tb.Sender.SendDelay())/float64(time.Millisecond))

	tb.SourceSite.TailUp().SetLoss(lbrm.Bernoulli{P: 0.3})
	phase("congested tail, 30% loss (20 pkts)", 20)
	r.Set("congestedDelayMS", float64(tb.Sender.SendDelay())/float64(time.Millisecond))
	r.Set("congestedLoss", tb.Sender.LossEstimate())

	tb.SourceSite.TailUp().SetLoss(nil)
	phase("recovered (30 pkts)", 30)
	r.Set("recoveredDelayMS", float64(tb.Sender.SendDelay())/float64(time.Millisecond))

	r.Note("advice is zero below a 5%% loss estimate and scales to FlowMaxDelay at 50%%; the sender never blocks — the application applies the pacing")
	return r
}
