package experiments

import (
	"fmt"
	"math/rand"
	"time"

	"lbrm/internal/dis"
	"lbrm/internal/heartbeat"
)

func init() {
	register("fig4", "Figure 4: fixed vs variable heartbeat overhead rate vs data interval", Fig4)
	register("fig5", "Figure 5: overhead(fixed)/overhead(variable) vs data interval", Fig5)
	register("table1", "Table 1: overhead ratio at dt=120s vs backoff", Table1)
	register("burst", "§2.1.1: loss-detection delay vs burst length (analytic + simulated)", BurstDetection)
	register("dis", "§2.1.2/§1: DIS STOW-97 scenario packet rates", DISScenario)
}

// fig45Grid is the dt sweep used by Figures 4 and 5 (log-spaced, seconds).
var fig45Grid = []float64{
	0.1, 0.25, 0.5, 1, 2, 4, 8, 15, 30, 60, 120, 240, 480, 1000,
}

// Fig4 reproduces Figure 4: heartbeat packets/second for the fixed and
// variable schemes as a function of the interval between data packets
// (h_min = 0.25 s, h_max = 32 s, backoff = 2).
func Fig4() *Result {
	p := heartbeat.DefaultParams
	r := NewResult("fig4", "Fixed and Variable Heartbeat Overhead Rates (hmin=0.25 hmax=32 backoff=2)",
		"dt (s)", "fixed (pkt/s)", "variable (pkt/s)")
	for _, dt := range fig45Grid {
		d := time.Duration(dt * float64(time.Second))
		f := heartbeat.RateFixed(p, d)
		v := heartbeat.RateVariable(p, d)
		r.AddRow(fmt.Sprintf("%g", dt), fmt.Sprintf("%.4f", f), fmt.Sprintf("%.4f", v))
	}
	r.Set("fixed@1000s", heartbeat.RateFixed(p, 1000*time.Second))
	r.Set("variable@1000s", heartbeat.RateVariable(p, 1000*time.Second))
	r.Set("fixed@120s", heartbeat.RateFixed(p, 120*time.Second))
	r.Set("variable@120s", heartbeat.RateVariable(p, 120*time.Second))
	r.Note("paper's asymptotes: fixed → 1/hmin = 4 pkt/s, variable → 1/hmax = 0.031 pkt/s")
	r.Note("dt ≤ hmin emits no heartbeats under either scheme (data preempts)")
	return r
}

// Fig5 reproduces Figure 5: the ratio of the two curves, with the paper's
// marked DIS point at dt = 120 s (≈53.4×).
func Fig5() *Result {
	p := heartbeat.DefaultParams
	r := NewResult("fig5", "Overhead(Fixed)/Overhead(Variable) (hmin=0.25 hmax=32 backoff=2)",
		"dt (s)", "ratio")
	for _, dt := range fig45Grid {
		d := time.Duration(dt * float64(time.Second))
		ratio := heartbeat.OverheadRatio(p, d)
		cell := "n/a (no heartbeats)"
		if ratio == ratio { // not NaN
			cell = fmt.Sprintf("%.1f", ratio)
		}
		r.AddRow(fmt.Sprintf("%g", dt), cell)
	}
	at120 := heartbeat.OverheadRatio(p, 120*time.Second)
	r.Set("ratio@120s", at120)
	r.Note("paper's marked point: dt=120s → 53.4× (Fig 5 text) / 53.3 (Table 1); measured %.1f×", at120)
	return r
}

// table1Backoffs are the paper's Table 1 rows with its reported ratios.
var table1Backoffs = []struct {
	backoff float64
	paper   float64
}{
	{1.5, 34.4}, {2.0, 53.3}, {2.5, 65.8}, {3.0, 74.8}, {3.5, 81.7}, {4.0, 87.3},
}

// Table1 reproduces Table 1: the fixed/variable overhead ratio at
// dt = 120 s as the backoff parameter varies. Two models are reported: the
// exact deterministic count (periodic data every 120 s) and the expected
// count under exponential inter-data times with mean 120 s; the paper's
// numbers fall between them (its exact model is unstated).
func Table1() *Result {
	r := NewResult("table1", "Overhead(Fixed)/Overhead(Variable) at dt=120s vs backoff",
		"backoff", "deterministic", "exponential-mean", "paper")
	dt := 120 * time.Second
	for _, row := range table1Backoffs {
		p := heartbeat.Params{HMin: 250 * time.Millisecond, HMax: 32 * time.Second, Backoff: row.backoff}
		det := heartbeat.OverheadRatio(p, dt)
		exp := heartbeat.ExpectedCountFixed(p, dt) / heartbeat.ExpectedCountVariable(p, dt)
		r.AddRow(fmt.Sprintf("%.1f", row.backoff),
			fmt.Sprintf("%.1f", det), fmt.Sprintf("%.1f", exp),
			fmt.Sprintf("%.1f", row.paper))
		r.Set(fmt.Sprintf("det@%.1f", row.backoff), det)
		r.Set(fmt.Sprintf("exp@%.1f", row.backoff), exp)
		r.Set(fmt.Sprintf("paper@%.1f", row.backoff), row.paper)
	}
	r.Note("ratio grows monotonically with backoff with diminishing returns, matching the paper's shape")
	return r
}

// BurstDetection reproduces §2.1.1's analysis: for the burst congestion
// model (data packet sent at burst start, nothing received during the
// burst), the loss-detection delay is h_min for isolated losses and
// bounded by backoff×t_burst (+h_min, capped by t_burst+h_max) for longer
// bursts. Reported analytically from the heartbeat timeline; the
// end-to-end simulated counterpart is exercised in the integration tests
// and the E11 bench.
func BurstDetection() *Result {
	p := heartbeat.DefaultParams
	r := NewResult("burst", "Loss-detection delay vs burst length (hmin=0.25 hmax=32 backoff=2)",
		"t_burst (s)", "detect (s)", "bound (s)", "detect/t_burst")
	bursts := []float64{0.05, 0.1, 0.2, 0.25, 0.5, 1, 2, 5, 10, 30, 60, 120}
	worst := 0.0
	for _, tb := range bursts {
		d := time.Duration(tb * float64(time.Second))
		det := heartbeat.DetectionDelay(p, d)
		bound := heartbeat.DetectionBound(p, d)
		ratio := det.Seconds() / tb
		if det > bound {
			ratio = -1 // flag violation (asserted in tests)
		}
		if tb > p.HMin.Seconds() && ratio > worst {
			worst = ratio
		}
		r.AddRow(fmt.Sprintf("%g", tb), fmt.Sprintf("%.3f", det.Seconds()),
			fmt.Sprintf("%.3f", bound.Seconds()), fmt.Sprintf("%.2f", ratio))
		r.Set(fmt.Sprintf("detect@%gs", tb), det.Seconds())
		r.Set(fmt.Sprintf("bound@%gs", tb), bound.Seconds())
	}
	r.Set("worstRatio", worst)
	r.Note("paper: isolated losses detected at h_min; bursts within ≈2×t_burst (backoff 2), capped near h_max")
	return r
}

// DISScenario reproduces the §2.1.2/§1 DIS arithmetic: 100k dynamic
// entities at 1 pkt/s, 100k terrain entities changing every 2 minutes with
// a 1/4-second freshness requirement. A Monte-Carlo generator cross-checks
// the closed forms on a 1/10000-scale population.
func DISScenario() *Result {
	s := dis.STOW97()
	r := NewResult("dis", "STOW-97 packet rates: fixed vs variable heartbeats",
		"component", "pkt/s")
	data := s.DataRate()
	fixed := s.HeartbeatRateFixed()
	variable := s.HeartbeatRateVariable()
	r.AddRow("dynamic+terrain data", fmt.Sprintf("%.0f", data))
	r.AddRow("terrain heartbeats (fixed, 4/s each)", fmt.Sprintf("%.0f", fixed))
	r.AddRow("terrain heartbeats (variable)", fmt.Sprintf("%.0f", variable))
	r.AddRow("total (fixed scheme)", fmt.Sprintf("%.0f", s.TotalRateFixed()))
	r.AddRow("total (variable scheme)", fmt.Sprintf("%.0f", s.TotalRateVariable()))
	r.Set("dataRate", data)
	r.Set("fixedHeartbeats", fixed)
	r.Set("variableHeartbeats", variable)
	r.Set("heartbeatFractionFixed", fixed/s.TotalRateFixed())
	r.Set("reduction", fixed/variable)
	r.Note("paper: ~500,000 pkt/s total with heartbeats ≈4/5 of it; variable heartbeat cuts heartbeat load ~50×")

	// Monte-Carlo cross-check: simulate a 1/10000 population for 30 min of
	// virtual time and compare observed update rate to the closed form.
	gen, updates := runScaledDIS(10_000, 30*time.Minute)
	perSec := float64(updates) / (30 * 60)
	expect := data / 10_000
	r.Set("simUpdateRate", perSec)
	r.Set("simExpectedRate", expect)
	r.Note("scaled simulation (1/10000, 30 virtual min): %.2f updates/s vs closed-form %.2f",
		perSec, expect)
	_ = gen
	return r
}

func runScaledDIS(scaleDiv int, dur time.Duration) (*dis.Generator, uint64) {
	clk := newSimClock()
	rng := rand.New(rand.NewSource(42))
	g := dis.NewGenerator(dis.STOW97(), scaleDiv, clk, rng, func(*dis.Entity, []byte) {})
	g.Start()
	clk.RunFor(dur)
	g.Stop()
	return g, g.Updates()
}
