package experiments

import (
	"fmt"
	"time"

	"lbrm"
	"lbrm/internal/netsim"
	"lbrm/internal/posack"
	"lbrm/internal/srm"
	"lbrm/internal/stats"
	"lbrm/internal/transport"
	"lbrm/internal/wire"
)

func init() {
	register("srm", "§6: LBRM vs wb-style (SRM) recovery — latency and crying-baby traffic", VsSRM)
	register("posack", "§1/§5: positive-acknowledgement baseline — ACK implosion at the source", PosAckImplosion)
}

// VsSRM reproduces the §6 comparison on one topology: 10 sites × 5
// receivers, LAN RTT ~4 ms, WAN RTT ~80 ms. One receiver behind a bad last
// hop loses every k-th packet (the crying baby). LBRM recovers each loss
// from the site's secondary logger in about a LAN RTT with zero group-wide
// packets; wb-style recovery multicasts a request and a repair to all 50
// receivers and takes a few source-RTTs.
func VsSRM() *Result {
	const sites = 10
	const perSite = 5
	const packets = 30
	const lossEvery = 5 // victim loses every 5th packet

	r := NewResult("srm", "LBRM vs wb-style recovery: lossy receiver behind one bad link (§6)",
		"protocol", "mean recovery", "p95 recovery", "group-wide extra pkts/loss", "losses recovered")

	// dropDataEvery drops every lossEvery-th DATA packet after the warm-up
	// (heartbeats and repairs flow freely).
	dropDataEvery := func() lbrm.LossModel {
		idx := map[int]bool{}
		for i := lossEvery; i <= packets; i += lossEvery {
			idx[i+1] = true // +1 skips the warm packet
		}
		return &lbrm.DropMatching{
			Match: func(data []byte) bool {
				var p wire.Packet
				return p.Unmarshal(data) == nil && p.Type == wire.TypeData
			},
			Indices: idx,
		}
	}

	// --- LBRM run ---
	lbrmRec := &stats.Sample{}
	var groupWide float64
	{
		tb, err := lbrm.NewTestbed(lbrm.TestbedConfig{
			Seed: 61, Sites: sites, ReceiversPerSite: perSite,
			Sender:   lbrm.SenderConfig{Heartbeat: expHB},
			Receiver: lbrm.ReceiverConfig{NackDelay: 2 * time.Millisecond},
		})
		if err != nil {
			panic(err)
		}
		victim := tb.Sites[0].ReceiverNodes[0]
		tb.Send([]byte("warm"))
		tb.Run(300 * time.Millisecond)
		victim.DownLink().SetLoss(dropDataEvery())

		// Crying-baby cost: recovery packets crossing site10 (an
		// uninvolved site) tail-down.
		extra := 0
		tb.Net.SetTap(func(ev lbrm.TapEvent) {
			var p wire.Packet
			if p.Unmarshal(ev.Data) != nil {
				return
			}
			if ev.Link.Name() == "site10/tail-down" &&
				(p.Type == wire.TypeNack || p.Type == wire.TypeRetrans) {
				extra++
			}
		})
		for i := 0; i < packets; i++ {
			tb.Send([]byte(fmt.Sprintf("u%d", i)))
			tb.Run(100 * time.Millisecond)
		}
		tb.Run(3 * time.Second)
		key := lbrm.StreamKey{Source: tb.Source, Group: tb.Group}
		for _, d := range tb.Sites[0].Receivers[0].RecoveryTimes(key) {
			lbrmRec.AddDuration(d)
		}
		groupWide = float64(extra) / float64(max(1, lbrmRec.N()))
		r.AddRow("LBRM (site secondary)", ms(lbrmRec.MeanDuration()),
			ms(lbrmRec.PercentileDuration(95)),
			fmt.Sprintf("%.1f", groupWide),
			fmt.Sprintf("%d/%d", lbrmRec.N(), packets/lossEvery))
		r.Set("lbrmMeanMS", lbrmRec.Mean()*1000)
		r.Set("lbrmGroupWide", groupWide)
		r.Set("lbrmRecovered", float64(lbrmRec.N()))
	}

	// --- SRM run (same topology, same loss pattern) ---
	srmRec := &stats.Sample{}
	{
		net := netsim.New(62)
		srcSite := net.NewSite(netsim.SiteParams{Name: "src"})
		source := srm.New(srm.Config{Group: 9, Source: 1, IsSource: true,
			SessionInterval: 200 * time.Millisecond})
		srcNode := srcSite.NewHost("source", source)
		var members []*srm.Member
		var nodes []*netsim.Node
		var tenthSite *netsim.Site
		for i := 0; i < sites; i++ {
			site := net.NewSite(netsim.SiteParams{Name: fmt.Sprintf("site%d", i+1)})
			if i == sites-1 {
				tenthSite = site
			}
			for j := 0; j < perSite; j++ {
				m := srm.New(srm.Config{Group: 9, Source: 1})
				node := site.NewHost(fmt.Sprintf("site%d/rcv%d", i+1, j), m)
				members = append(members, m)
				nodes = append(nodes, node)
			}
		}
		_ = tenthSite
		net.Start()
		// Inject true distances (SRM learns them from session timestamps).
		for i, m := range members {
			m.SetDistance(net.PathDelay(srcNode.ID(), nodes[i].ID()))
		}
		victim := nodes[0]
		idx := map[int]bool{}
		for i := lossEvery; i <= packets; i += lossEvery {
			idx[i+1] = true
		}
		source.Send([]byte("warm"))
		net.RunFor(300 * time.Millisecond)
		victim.DownLink().SetLoss(&netsim.DropMatching{
			Match: func(data []byte) bool {
				var p wire.Packet
				return p.Unmarshal(data) == nil && p.Type == wire.TypeData
			},
			Indices: idx,
		})
		extra := 0
		net.SetTap(func(ev netsim.TapEvent) {
			var p wire.Packet
			if p.Unmarshal(ev.Data) != nil {
				return
			}
			if ev.Link.Name() == "site10/tail-down" &&
				(p.Type == wire.TypeNack || p.Type == wire.TypeRetrans) {
				extra++
			}
		})
		for i := 0; i < packets; i++ {
			source.Send([]byte(fmt.Sprintf("u%d", i)))
			net.RunFor(100 * time.Millisecond)
		}
		net.RunFor(5 * time.Second)
		for _, d := range members[0].RecoveryTimes {
			srmRec.AddDuration(d)
		}
		gw := float64(extra) / float64(max(1, srmRec.N()))
		r.AddRow("wb-style (SRM)", ms(srmRec.MeanDuration()),
			ms(srmRec.PercentileDuration(95)),
			fmt.Sprintf("%.1f", gw),
			fmt.Sprintf("%d/%d", srmRec.N(), packets/lossEvery))
		r.Set("srmMeanMS", srmRec.Mean()*1000)
		r.Set("srmGroupWide", gw)
		r.Set("srmRecovered", float64(srmRec.N()))
	}
	r.Set("latencyRatio", r.Get("srmMeanMS")/r.Get("lbrmMeanMS"))
	r.Note("paper §6: wb recovers in ≈3×RTT-to-source and multicasts ≥1 request + ≥1 repair group-wide per loss (crying baby); LBRM recovers in ≈1 RTT to the nearest logger with zero group-wide traffic for local losses")
	return r
}

// PosAckImplosion contrasts LBRM's constant per-packet source load
// (k statistical ACKs) against a conventional positive-ack protocol where
// every receiver ACKs every packet (§1's implosion argument).
func PosAckImplosion() *Result {
	r := NewResult("posack", "Per-packet control traffic at the source: positive-ack vs LBRM statistical ack",
		"receivers", "pos-ack ACKs/pkt", "LBRM ACKs/pkt (k=20)")
	for _, n := range []int{100, 500, 1000} {
		sites := n / 10
		net := netsim.New(int64(63 + n))
		srcSite := net.NewSite(netsim.SiteParams{Name: "src"})
		var rcvAddrs []transport.Addr
		var rcvNodes []*netsim.Node
		for i := 0; i < sites; i++ {
			site := net.NewSite(netsim.SiteParams{Name: fmt.Sprintf("s%d", i)})
			for j := 0; j < 10; j++ {
				node := site.NewHost("", nil)
				rcvNodes = append(rcvNodes, node)
				rcvAddrs = append(rcvAddrs, node.Addr())
			}
		}
		src := posack.NewSource(posack.SourceConfig{Group: 8, Source: 1, Receivers: rcvAddrs})
		srcNode := srcSite.NewHost("source", src)
		for _, node := range rcvNodes {
			rc := posack.NewReceiver(posack.ReceiverConfig{Group: 8, Source: 1, SourceAddr: srcNode.Addr()})
			node.SetHandler(rc)
		}
		net.Start()
		const pkts = 3
		for i := 0; i < pkts; i++ {
			src.Send([]byte("x"))
			net.RunFor(500 * time.Millisecond)
		}
		net.RunUntilIdle()
		acksPerPkt := float64(src.Stats().AcksReceived) / pkts
		r.AddRow(fmt.Sprintf("%d", n), fmt.Sprintf("%.0f", acksPerPkt), "20")
		r.Set(fmt.Sprintf("posack@%d", n), acksPerPkt)
	}
	r.Set("lbrmAcksPerPacket", 20)
	r.Note("LBRM's k is constant (5–20) regardless of group size; positive-ack load grows linearly and the source must know every receiver")
	return r
}
