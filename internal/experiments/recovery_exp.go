package experiments

import (
	"fmt"
	"sort"
	"time"

	"lbrm/internal/chaos"
)

func init() {
	register("e20", "recovery-time distributions under fault schedules (chaos harness, 20 seeds per class)", RecoveryDistributions)
}

// RecoveryDistributions drives the deterministic chaos harness across a
// seed matrix for three fault-schedule classes — process crashes (always
// including a primary crash), site partitions, and crashes combined with
// flaky-link windows (loss + duplication + reordering bursts) — and
// reports the distribution of end-to-end recovery times: how long after
// the traffic phase the deployment takes to converge (every receiver at
// the sender's last sequence number, retention drained), plus the
// crash→promote failover latency where a primary crash is scheduled.
//
// The paper argues recovery cost is what the logging hierarchy bounds;
// this measures that bound holding under compound failures rather than
// single-loss events. Every run must satisfy all harness invariants —
// violations are counted and must be zero.
func RecoveryDistributions() *Result {
	r := NewResult("e20", "Recovery time distributions across 20 seeds per fault-schedule class",
		"schedule", "seeds", "violations", "failovers",
		"conv p50", "conv p90", "conv max", "failover p50", "failover max")

	// A short traffic phase puts the last fault heals near the end of
	// traffic, so recovery tails are actually observable instead of being
	// absorbed during the send loop.
	base := chaos.Config{
		Duration:  6 * time.Second,
		SendEvery: 150 * time.Millisecond,
	}
	classes := []struct {
		name string
		cfg  chaos.Config
	}{
		{"crash", func() chaos.Config {
			c := base
			c.CrashPrimary = true
			c.Faults = 4
			c.DisablePartitions = true
			c.DisableLinkChaos = true
			return c
		}()},
		{"partition", func() chaos.Config {
			c := base
			c.Faults = 3
			c.DisableCrashes = true
			c.DisableLinkChaos = true
			return c
		}()},
		{"crash+burst", func() chaos.Config {
			c := base
			c.CrashPrimary = true
			c.Faults = 6
			c.DisablePartitions = true
			return c
		}()},
	}

	const seeds = 20
	for _, cl := range classes {
		var conv, fo []time.Duration
		var violations, failovers int
		for seed := int64(1); seed <= seeds; seed++ {
			cfg := cl.cfg
			cfg.Seed = seed
			res, err := chaos.Run(cfg)
			if err != nil {
				r.Note("%s seed %d: %v", cl.name, seed, err)
				violations++
				continue
			}
			violations += len(res.Violations)
			failovers += int(res.Failovers)
			if res.ConvergeTook > 0 {
				conv = append(conv, res.ConvergeTook)
			}
			if res.FailoverLatency > 0 {
				fo = append(fo, res.FailoverLatency)
			}
			for _, v := range res.Violations {
				r.Note("%s seed %d: %s", cl.name, seed, v)
			}
		}
		r.AddRow(cl.name, fmt.Sprint(seeds), fmt.Sprint(violations), fmt.Sprint(failovers),
			fmtDur(quantile(conv, 0.5)), fmtDur(quantile(conv, 0.9)), fmtDur(quantile(conv, 1)),
			fmtDur(quantile(fo, 0.5)), fmtDur(quantile(fo, 1)))
		r.Set(cl.name+".violations", float64(violations))
		r.Set(cl.name+".failovers", float64(failovers))
		r.Set(cl.name+".conv_p50_ms", float64(quantile(conv, 0.5))/float64(time.Millisecond))
		r.Set(cl.name+".conv_max_ms", float64(quantile(conv, 1))/float64(time.Millisecond))
		r.Set(cl.name+".fo_p50_ms", float64(quantile(fo, 0.5))/float64(time.Millisecond))
		r.Set(cl.name+".fo_max_ms", float64(quantile(fo, 1))/float64(time.Millisecond))
	}
	r.Note("conv = heal→convergence (100ms poll resolution); failover = primary crash→Promote on the wire")
	r.Note("every run checked against all chaos invariants; violations must be 0")
	return r
}

func quantile(ds []time.Duration, q float64) time.Duration {
	if len(ds) == 0 {
		return 0
	}
	s := append([]time.Duration(nil), ds...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	i := int(q*float64(len(s))) - 1
	if i < 0 {
		i = 0
	}
	if i >= len(s) {
		i = len(s) - 1
	}
	return s[i]
}

func fmtDur(d time.Duration) string {
	if d == 0 {
		return "-"
	}
	return d.Round(time.Millisecond).String()
}
