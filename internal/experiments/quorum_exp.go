package experiments

import (
	"fmt"
	"sort"
	"time"

	"lbrm"
	"lbrm/internal/wire"
)

func init() {
	register("e24", "quorum replication cost: ack latency and sync traffic vs single-primary at 1/3/5 replicas", QuorumCost)
}

// QuorumCost measures what ring-acked quorum replication charges for its
// durability guarantee, against the single-primary baseline the paper
// describes (§2.2.3 leaves replication policy open): per-packet source-ack
// latency (send → sender release, virtual time) and replication traffic
// (sync-class packets on the source-site LAN per data packet), at 1, 3 and
// 5 replicas.
//
// Single-primary mode acknowledges on the primary's own write and
// replicates asynchronously via periodic LogSync repair, so its ack
// latency is flat in replica count — and so is its loss window: every
// packet acked but not yet synced dies with the primary. Quorum mode
// withholds the ack until the token completes the replica ring, buying
// zero-loss failover for one ring circulation of latency (≈ 2·(R+1) LAN
// hops) while its per-node message cost stays O(1) in replica count: the
// primary still sends exactly one sync-class packet per data packet — the
// token — rather than fanning out R direct copies.
func QuorumCost() *Result {
	r := NewResult("e24", "Quorum replication cost vs single-primary (ack latency, sync traffic)",
		"mode", "replicas", "quorum", "ack mean", "ack p99",
		"primary sync/pkt", "ring sync/pkt")

	const (
		packets = 60
		warm    = time.Second
		step    = 100 * time.Microsecond
	)
	for _, replicas := range []int{1, 3, 5} {
		for _, mode := range []string{"single", "quorum"} {
			quorum := 0
			if mode == "quorum" {
				quorum = 2
				if quorum > replicas {
					quorum = replicas
				}
			}
			tb, err := lbrm.NewTestbed(lbrm.TestbedConfig{
				Seed: 42, Sites: 1, ReceiversPerSite: 1, Replicas: replicas,
				Primary: lbrm.PrimaryConfig{Quorum: quorum},
			})
			if err != nil {
				r.Note("%s@%d: %v", mode, replicas, err)
				continue
			}
			// Count sync-class egress (ring tokens, LogSync repair,
			// LogSyncAcks) on the source-site logger up-links: the primary's
			// alone, and the whole logger tier's.
			primaryUp := tb.PrimaryNode.UpLink()
			loggerUp := map[*lbrm.Link]bool{primaryUp: true}
			for _, n := range tb.ReplicaNodes {
				loggerUp[n.UpLink()] = true
			}
			var primarySync, ringSync uint64
			tb.Net.SetTap(func(ev lbrm.TapEvent) {
				if len(ev.Data) <= 3 || !loggerUp[ev.Link] {
					return
				}
				if wire.ClassOf(wire.Type(ev.Data[3])) != wire.ClassSync {
					return
				}
				ringSync++
				if ev.Link == primaryUp {
					primarySync++
				}
			})
			tb.Run(warm)
			primarySync, ringSync = 0, 0
			var lats []time.Duration
			clk := tb.Net.Clock()
			for i := 0; i < packets; i++ {
				if _, err := tb.Send([]byte("e24-payload")); err != nil {
					r.Note("%s@%d send: %v", mode, replicas, err)
					break
				}
				sent := clk.Now()
				for tb.Sender.Retained() != 0 {
					tb.Run(step)
				}
				lats = append(lats, clk.Now().Sub(sent))
			}
			sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
			var sum time.Duration
			for _, l := range lats {
				sum += l
			}
			mean := sum / time.Duration(len(lats))
			p99 := lats[len(lats)*99/100]
			perPri := float64(primarySync) / float64(packets)
			perRing := float64(ringSync) / float64(packets)
			r.AddRow(mode, fmt.Sprint(replicas), fmt.Sprint(quorum),
				fmt.Sprint(mean), fmt.Sprint(p99),
				fmt.Sprintf("%.2f", perPri), fmt.Sprintf("%.2f", perRing))
			r.Set(fmt.Sprintf("ack_mean_ms_%s@%d", mode, replicas), float64(mean)/1e6)
			r.Set(fmt.Sprintf("ack_p99_ms_%s@%d", mode, replicas), float64(p99)/1e6)
			r.Set(fmt.Sprintf("primary_sync_per_pkt_%s@%d", mode, replicas), perPri)
			r.Set(fmt.Sprintf("ring_sync_per_pkt_%s@%d", mode, replicas), perRing)
		}
	}
	r.Note("ack latency is send → sender release (virtual time, %v resolution); LAN hop delay %v one-way", step, time.Millisecond)
	r.Note("quorum mode mints the ack on ring-token return: latency grows one LAN round-trip per replica, while the primary's sync egress stays ≈ 1 packet per data packet at every ring size (direct fan-out would cost one per replica)")
	r.Note("single-primary acks on the local write: flat latency, but every acked-yet-unsynced packet is lost if the primary dies — the window E24's quorum mode closes (chaos invariant 11)")
	return r
}
