package experiments

import (
	"fmt"
	"strings"
	"time"

	"lbrm"
	"lbrm/internal/logger"
	"lbrm/internal/netsim"
	"lbrm/internal/transport"
	"lbrm/internal/wire"
)

func init() {
	register("hierarchy", "§7 extension: multi-level logger hierarchy — NACKs at the primary vs hierarchy depth", Hierarchy)
}

// Hierarchy exercises the paper's §7 future-work idea ("a multi-level
// hierarchy of logging servers may be used to further reduce NACK
// bandwidth in large groups") using the recursion the design already
// permits: a site secondary's "primary" may itself be another secondary.
//
// Topology: R regions × S sites × N receivers. With two levels, a
// widespread loss sends one NACK per site (R×S) to the primary; with
// three levels, site loggers ask their region logger, and only one NACK
// per region (R) reaches the primary.
func Hierarchy() *Result {
	const regions = 4
	const sitesPerRegion = 5
	const perSite = 5
	r := NewResult("hierarchy", "NACKs reaching the primary vs logger hierarchy depth (widespread loss)",
		"hierarchy", "NACKs at primary", "recovered")

	run := func(threeLevel bool) (nacksAtPrimary int, recovered, total int) {
		net := netsim.New(91)
		hb := lbrm.HeartbeatParams{HMin: 50 * time.Millisecond, HMax: 400 * time.Millisecond, Backoff: 2}

		srcSite := net.NewSite(netsim.SiteParams{Name: "source-site"})
		primary := logger.NewPrimary(logger.PrimaryConfig{Group: 1})
		primaryNode := srcSite.NewHost("primary", primary)
		sender, err := lbrm.NewSender(lbrm.SenderConfig{
			Source: 1, Group: 1, Heartbeat: hb, Primary: primaryNode.Addr(),
		})
		if err != nil {
			panic(err)
		}
		srcSite.NewHost("sender", sender)

		delivered := map[uint64]int{}
		totalReceivers := 0
		for reg := 0; reg < regions; reg++ {
			region := net.NewRegion(fmt.Sprintf("region%d", reg+1), 5*time.Millisecond)
			// The region logger lives in a hub site inside the region.
			hub := net.NewSite(netsim.SiteParams{
				Name: fmt.Sprintf("region%d/hub", reg+1), Parent: region,
			})
			var upstream transport.Addr = primaryNode.Addr()
			if threeLevel {
				regionLogger := logger.NewSecondary(logger.SecondaryConfig{
					Group: 1, Primary: primaryNode.Addr(),
					NackDelay: 10 * time.Millisecond,
					// Region-tier repairs must reach the whole region.
					RemcastTTL: transport.TTLRegion,
				})
				regionNode := hub.NewHost(fmt.Sprintf("region%d/logger", reg+1), regionLogger)
				upstream = regionNode.Addr()
			}
			for s := 0; s < sitesPerRegion; s++ {
				site := net.NewSite(netsim.SiteParams{
					Name:   fmt.Sprintf("region%d/site%d", reg+1, s+1),
					Parent: region,
				})
				siteLogger := logger.NewSecondary(logger.SecondaryConfig{
					Group: 1, Primary: upstream,
					NackDelay: 10 * time.Millisecond,
				})
				siteLoggerNode := site.NewHost("", siteLogger)
				for n := 0; n < perSite; n++ {
					totalReceivers++
					rcv := lbrm.NewReceiver(lbrm.ReceiverConfig{
						Group: 1, Heartbeat: hb,
						Secondary: siteLoggerNode.Addr(),
						Primary:   primaryNode.Addr(),
						NackDelay: 10 * time.Millisecond,
						OnData:    func(e lbrm.Event) { delivered[e.Seq]++ },
					})
					site.NewHost("", rcv)
				}
			}
		}
		net.Start()

		// Count NACKs arriving at the primary host.
		nacks := 0
		net.SetTap(func(ev netsim.TapEvent) {
			if !strings.Contains(ev.Link.Name(), "primary/down") || ev.Dropped {
				return
			}
			var p wire.Packet
			if p.Unmarshal(ev.Data) == nil && p.Type == wire.TypeNack {
				nacks++
			}
		})

		sender.Send([]byte("warm"))
		net.RunFor(500 * time.Millisecond)
		srcSite.TailUp().SetLoss(&netsim.FirstN{N: 1})
		sender.Send([]byte("lost-everywhere"))
		net.RunFor(5 * time.Second)
		return nacks, delivered[2], totalReceivers
	}

	n2, rec2, tot := run(false)
	n3, rec3, _ := run(true)
	r.AddRow("2-level (site loggers → primary)", fmt.Sprintf("%d", n2), fmt.Sprintf("%d/%d", rec2, tot))
	r.AddRow("3-level (site → region → primary)", fmt.Sprintf("%d", n3), fmt.Sprintf("%d/%d", rec3, tot))
	r.Set("twoLevelNacks", float64(n2))
	r.Set("threeLevelNacks", float64(n3))
	r.Set("twoLevelRecovered", float64(rec2))
	r.Set("threeLevelRecovered", float64(rec3))
	r.Set("receivers", float64(tot))
	r.Note("%d regions × %d sites × %d receivers; the recursive logging architecture reduces primary NACK load from one per site to one per region", regions, sitesPerRegion, perSite)
	return r
}
