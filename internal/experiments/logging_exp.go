package experiments

import (
	"fmt"
	"strings"
	"time"

	"lbrm"
	"lbrm/internal/wire"
)

func init() {
	register("nack", "Figure 7/§2.2.2: NACKs under centralized vs distributed logging (50 sites × 20 receivers)", NackReduction)
	register("recovery", "§2.2.2: recovery latency, local secondary vs remote primary", RecoveryLatency)
	register("aggregation", "ablation: secondary NACK aggregation window on/off", AggregationAblation)
	register("inline", "ablation (§7 extension): data-carrying heartbeats avoid retransmission requests", InlineHeartbeatAblation)
}

// expHB is the heartbeat schedule used in simulator experiments: fast
// enough that a virtual run converges in seconds.
var expHB = lbrm.HeartbeatParams{
	HMin: 50 * time.Millisecond, HMax: 400 * time.Millisecond, Backoff: 2,
}

// countTypeOnLinks installs a tap counting packets of the given type whose
// link name contains match, returning a live counter pointer.
func countTypeOnLinks(net *lbrm.Network, match string, t wire.Type) *int {
	n := new(int)
	prev := (lbrm.TapEvent{})
	_ = prev
	net.SetTap(func(ev lbrm.TapEvent) {
		if !strings.Contains(ev.Link.Name(), match) {
			return
		}
		var p wire.Packet
		if p.Unmarshal(ev.Data) == nil && p.Type == t {
			*n++
		}
	})
	return n
}

// NackReduction reproduces the paper's Figure 7 comparison at the §2.2.2
// scale: 1000 receivers over 50 sites, 20 per site. A packet is dropped on
// the source's tail circuit so every site misses it at once. Under
// centralized logging every receiver's NACK crosses the WAN to the
// primary; under distributed logging one NACK per site does.
func NackReduction() *Result {
	r := NewResult("nack", "Retransmission requests reaching the primary: centralized vs distributed (Figure 7)",
		"configuration", "NACKs at primary", "NACKs per site", "recovered")
	run := func(noSecondaries bool) (nacksAtPrimary int, recovered int, total int) {
		tb, err := lbrm.NewTestbed(lbrm.TestbedConfig{
			Seed: 77, Sites: 50, ReceiversPerSite: 20, NoSecondaries: noSecondaries,
			Sender:    lbrm.SenderConfig{Heartbeat: expHB},
			Receiver:  lbrm.ReceiverConfig{NackDelay: 10 * time.Millisecond},
			Secondary: lbrm.SecondaryConfig{NackDelay: 10 * time.Millisecond},
		})
		if err != nil {
			panic(err)
		}
		tb.Send([]byte("warm"))
		tb.Run(500 * time.Millisecond)
		// Count NACKs arriving on the primary host's downlink.
		nacks := countTypeOnLinks(tb.Net, "primary/down", wire.TypeNack)
		tb.SourceSite.TailUp().SetLoss(&lbrm.FirstN{N: 1})
		tb.Send([]byte("lost-everywhere"))
		tb.Run(5 * time.Second)
		return *nacks, tb.DeliveredCount(2), tb.TotalReceivers()
	}
	cN, cRec, cTot := run(true)
	dN, dRec, _ := run(false)
	r.AddRow("centralized (no secondaries)", fmt.Sprintf("%d", cN), fmt.Sprintf("%.1f", float64(cN)/50), fmt.Sprintf("%d/%d", cRec, cTot))
	r.AddRow("distributed (per-site secondary)", fmt.Sprintf("%d", dN), fmt.Sprintf("%.1f", float64(dN)/50), fmt.Sprintf("%d/%d", dRec, cTot))
	r.Set("centralizedNacks", float64(cN))
	r.Set("distributedNacks", float64(dN))
	r.Set("reduction", float64(cN)/float64(dN))
	r.Set("centralizedRecovered", float64(cRec))
	r.Set("distributedRecovered", float64(dRec))
	r.Note("paper: distributed logging cuts NACKs across each tail circuit from 20 (one per receiver) to 1 (the site's logger) — a 20× reduction at the primary")
	return r
}

// RecoveryLatency reproduces §2.2.2's latency argument with the paper's
// own distances: a secondary logger a LAN away (~4 ms RTT) versus a
// primary 80 ms RTT across the WAN — an order of magnitude.
func RecoveryLatency() *Result {
	r := NewResult("recovery", "Lost-packet recovery latency by serving logger (§2.2.2)",
		"serving logger", "detect→repair")
	measure := func(noSecondaries bool) time.Duration {
		tb, err := lbrm.NewTestbed(lbrm.TestbedConfig{
			Seed: 78, Sites: 1, ReceiversPerSite: 1, NoSecondaries: noSecondaries,
			Sender:   lbrm.SenderConfig{Heartbeat: expHB},
			Receiver: lbrm.ReceiverConfig{NackDelay: time.Millisecond},
		})
		if err != nil {
			panic(err)
		}
		tb.Send([]byte("warm"))
		tb.Run(300 * time.Millisecond)
		tb.Sites[0].ReceiverNodes[0].DownLink().SetLoss(&lbrm.FirstN{N: 1})
		tb.Send([]byte("lost"))
		var nackAt, repairAt time.Time
		tb.Net.SetTap(func(ev lbrm.TapEvent) {
			var p wire.Packet
			if p.Unmarshal(ev.Data) != nil {
				return
			}
			if p.Type == wire.TypeNack && nackAt.IsZero() && strings.Contains(ev.Link.Name(), "rcv0/up") {
				nackAt = ev.Time
			}
			if p.Type == wire.TypeRetrans && repairAt.IsZero() && !ev.Dropped &&
				strings.Contains(ev.Link.Name(), "rcv0/down") {
				repairAt = ev.Time
			}
		})
		tb.Send([]byte("reveals"))
		tb.Run(3 * time.Second)
		if nackAt.IsZero() || repairAt.IsZero() {
			panic("experiment tap missed the recovery exchange")
		}
		return repairAt.Sub(nackAt)
	}
	local := measure(false)
	remote := measure(true)
	r.AddRow("site secondary (LAN, ~4 ms RTT)", ms(local))
	r.AddRow("primary across WAN (~80 ms RTT)", ms(remote))
	r.Set("localMS", float64(local)/float64(time.Millisecond))
	r.Set("remoteMS", float64(remote)/float64(time.Millisecond))
	r.Set("speedup", float64(remote)/float64(local))
	r.Note("paper's ping survey: 3–4 ms to a nearby logger vs ~80 ms to one 1500 miles away → ~order-of-magnitude latency cut")
	return r
}

// AggregationAblation quantifies the secondary logger's NACK aggregation
// window: with a whole site (20 receivers) missing a packet, the window
// collapses the site's requests into one upstream NACK; with the window
// effectively removed, duplicate upstream NACKs can escape before the
// first fetch completes.
func AggregationAblation() *Result {
	r := NewResult("aggregation", "Secondary NACK aggregation window ablation (20 receivers lose the same packet)",
		"aggregation window", "receiver NACKs at secondary", "NACKs to primary")
	run := func(window time.Duration) (fromClients, toPrimary uint64) {
		tb, err := lbrm.NewTestbed(lbrm.TestbedConfig{
			Seed: 79, Sites: 1, ReceiversPerSite: 20,
			Sender:    lbrm.SenderConfig{Heartbeat: expHB},
			Receiver:  lbrm.ReceiverConfig{NackDelay: 10 * time.Millisecond},
			Secondary: lbrm.SecondaryConfig{NackDelay: window},
		})
		if err != nil {
			panic(err)
		}
		tb.Send([]byte("warm"))
		tb.Run(300 * time.Millisecond)
		tb.Sites[0].Site.TailDown().SetLoss(&lbrm.FirstN{N: 1})
		tb.Send([]byte("lost"))
		tb.Run(4 * time.Second)
		st := tb.Sites[0].Secondary.Stats()
		return st.NacksFromClients, st.NacksToPrimary
	}
	// A 1 ns window is "no aggregation" (fires before any receiver NACKs
	// arrive); 20 ms is the default.
	fc0, tp0 := run(time.Nanosecond)
	fc1, tp1 := run(20 * time.Millisecond)
	r.AddRow("none (1 ns)", fmt.Sprintf("%d", fc0), fmt.Sprintf("%d", tp0))
	r.AddRow("20 ms (default)", fmt.Sprintf("%d", fc1), fmt.Sprintf("%d", tp1))
	r.Set("noneToPrimary", float64(tp0))
	r.Set("defaultToPrimary", float64(tp1))
	r.Note("either way the tail circuit carries far fewer NACKs than the 20 per-receiver requests")
	return r
}

// InlineHeartbeatAblation exercises the paper's §7 extension: for small
// packets, heartbeats can carry the previous payload, repairing isolated
// losses with zero retransmission requests.
func InlineHeartbeatAblation() *Result {
	r := NewResult("inline", "Data-carrying heartbeats (§7 extension) vs NACK recovery for an isolated loss",
		"mode", "NACKs sent", "recovered via")
	run := func(inlineMax int) (nacks uint64, inline bool) {
		tb, err := lbrm.NewTestbed(lbrm.TestbedConfig{
			Seed: 80, Sites: 1, ReceiversPerSite: 1,
			Sender:   lbrm.SenderConfig{Heartbeat: expHB, InlineHeartbeatMax: inlineMax},
			Receiver: lbrm.ReceiverConfig{NackDelay: 30 * time.Millisecond},
		})
		if err != nil {
			panic(err)
		}
		tb.Send([]byte("warm"))
		tb.Run(300 * time.Millisecond)
		tb.Sites[0].Site.TailDown().SetLoss(&lbrm.FirstN{N: 1})
		tb.Send([]byte("tiny"))
		tb.Run(3 * time.Second)
		rs := tb.Sites[0].Receivers[0].Stats()
		return rs.NacksSent, rs.RecoveredInline > 0
	}
	n0, _ := run(0)
	n1, inl := run(64)
	via := "retransmission request"
	if inl {
		via = "inline heartbeat"
	}
	r.AddRow("plain heartbeats", fmt.Sprintf("%d", n0), "retransmission request")
	r.AddRow("inline ≤64B", fmt.Sprintf("%d", n1), via)
	r.Set("plainNacks", float64(n0))
	r.Set("inlineNacks", float64(n1))
	r.Note("paper §7: \"for small packets it might be cost-effective to retransmit the original packet instead of an empty heartbeat; this would reduce retransmission requests\"")
	return r
}
