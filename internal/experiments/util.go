package experiments

import (
	"fmt"
	"time"

	"lbrm/internal/vtime"
)

// simEpoch is the fixed virtual start time used across experiments.
var simEpoch = time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)

// newSimClock returns a fresh deterministic clock.
func newSimClock() *vtime.Sim { return vtime.NewSim(simEpoch) }

// ms renders a duration in milliseconds with two decimals.
func ms(d time.Duration) string {
	return fmt.Sprintf("%.2f ms", float64(d)/float64(time.Millisecond))
}
