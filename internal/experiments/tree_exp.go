package experiments

import (
	"fmt"
	"strings"
	"time"

	"lbrm"
	"lbrm/internal/logger"
	"lbrm/internal/netsim"
	"lbrm/internal/obs"
	"lbrm/internal/transport"
	"lbrm/internal/wire"
)

func init() {
	register("e25", "logger-tree scaling: primary callback load vs site count 100→10k, tree vs flat, with per-tier recovery latency from the flight recorder", TreeScaling)
}

// treeScalePoints are the site counts the scaling sweep visits. The
// acceptance claim spans two orders of magnitude: primary callback load
// under the tree must stay flat (within 2×) from the first point to the
// last, while the flat design grows linearly with sites.
var treeScalePoints = []int{100, 1000, 10000}

// treeScaleRegions is the regional-tier width for the tree runs. It is
// deliberately constant across the sweep: the whole point of the tier is
// that the primary's fan-in is the number of regionals, not the number of
// sites, so growing sites 100× only deepens each regional's own fan-in.
const treeScaleRegions = 10

// TreeScaling measures what the N-level logger tree buys at scale: the
// primary's callback load (NACKs arriving on its downlink, repairs it
// serves) after one widespread loss, as the site count sweeps 100 → 10k,
// with and without the regional tier. The flat design sends one NACK per
// site to the primary — load linear in sites; the tree aggregates each
// region's misses into a single upward fetch — load pinned at the
// (constant) regional count. A companion treed testbed run stitches the
// flight recorder into per-tier recovery-latency tables: how long a repair
// takes when the site secondary answers (tier 0), when the miss escalates
// to the regional (tier 1), and when it walks all the way to the primary
// (tier 2).
//
// The scaling sweep builds the logger tree without receivers: a site
// secondary is itself a receiver of the stream (§2.2.1 — it logs the
// multicast and recovers its own losses upward), so the upward NACK
// cascade after a widespread loss is identical with or without clients
// behind it, at a tenth of the simulation cost.
func TreeScaling() *Result {
	r := NewResult("e25", "Primary callback load vs site count: logger tree vs flat design",
		"design", "sites", "NACKs at primary", "serves by primary", "sites recovered")

	for _, sites := range treeScalePoints {
		for _, treed := range []bool{false, true} {
			nacks, serves, recovered := runTreeScale(sites, treed)
			design := "flat"
			if treed {
				design = "tree"
			}
			r.AddRow(design, fmt.Sprint(sites), fmt.Sprint(nacks), fmt.Sprint(serves),
				fmt.Sprintf("%d/%d", recovered, sites))
			r.Set(fmt.Sprintf("primary_nacks_%s@%d", design, sites), float64(nacks))
			r.Set(fmt.Sprintf("primary_serves_%s@%d", design, sites), float64(serves))
			r.Set(fmt.Sprintf("recovered_%s@%d", design, sites), float64(recovered))
		}
	}
	r.Note("%d regions in every tree run: primary fan-in is the regional count, independent of sites", treeScaleRegions)
	r.Note("flat design: every site secondary NACKs the primary directly — callback load is one per site")

	treeLatencyTable(r)
	return r
}

// runTreeScale builds one scaling-sweep topology — sites site secondaries
// spread round-robin under treeScaleRegions region routers, a primary and
// sender at the source site — drops one data packet on the source tail so
// every site misses it, and counts the primary's callback load during
// recovery. With treed set, each region hosts a tier-1 regional logger at
// its POP and site secondaries escalate through it; otherwise every site
// fetches straight from the primary.
func runTreeScale(sites int, treed bool) (nacksAtPrimary, servesByPrimary, sitesRecovered int) {
	net := netsim.New(2500 + int64(sites))
	hb := lbrm.HeartbeatParams{HMin: 50 * time.Millisecond, HMax: 400 * time.Millisecond, Backoff: 2}

	srcSite := net.NewSite(netsim.SiteParams{Name: "source-site"})
	primary := logger.NewPrimary(logger.PrimaryConfig{Group: 1})
	primaryNode := srcSite.NewHost("primary", primary)
	sender, err := lbrm.NewSender(lbrm.SenderConfig{
		Source: 1, Group: 1, Heartbeat: hb, Primary: primaryNode.Addr(),
	})
	if err != nil {
		panic(err)
	}
	srcSite.NewHost("sender", sender)

	regions := make([]*netsim.Router, treeScaleRegions)
	regionLogger := make([]transport.Addr, treeScaleRegions)
	for reg := range regions {
		regions[reg] = net.NewRegion(fmt.Sprintf("region%d", reg+1), 5*time.Millisecond)
		if treed {
			rl := logger.NewSecondary(logger.SecondaryConfig{
				Group: 1, Primary: primaryNode.Addr(), Tier: 1,
				NackDelay:  10 * time.Millisecond,
				RemcastTTL: transport.TTLRegion,
			})
			regionLogger[reg] = net.NewRegionHost(regions[reg], fmt.Sprintf("region%d/logger", reg+1), rl).Addr()
		}
	}

	siteLoggers := make([]*logger.Secondary, 0, sites)
	for i := 0; i < sites; i++ {
		reg := i % treeScaleRegions
		site := net.NewSite(netsim.SiteParams{
			Name:   fmt.Sprintf("region%d/site%d", reg+1, i+1),
			Parent: regions[reg],
		})
		cfg := logger.SecondaryConfig{
			Group: 1, Primary: primaryNode.Addr(),
			NackDelay: 10 * time.Millisecond,
		}
		if treed {
			cfg.Parents = []transport.Addr{regionLogger[reg]}
		}
		sec := logger.NewSecondary(cfg)
		siteLoggers = append(siteLoggers, sec)
		site.NewHost("", sec)
	}
	net.Start()

	// The primary's callback load: NACKs arriving on its host downlink,
	// repairs leaving on its host uplink.
	net.SetTap(func(ev netsim.TapEvent) {
		if ev.Dropped || !strings.Contains(ev.Link.Name(), "primary/") {
			return
		}
		var p wire.Packet
		if p.Unmarshal(ev.Data) != nil {
			return
		}
		switch {
		case p.Type == wire.TypeNack && ev.Link.Name() == "primary/down":
			nacksAtPrimary++
		case p.Type == wire.TypeRetrans && ev.Link.Name() == "primary/up":
			servesByPrimary++
		}
	})

	sender.Send([]byte("warm"))
	net.RunFor(500 * time.Millisecond)
	nacksAtPrimary, servesByPrimary = 0, 0
	srcSite.TailUp().SetLoss(&netsim.FirstN{N: 1})
	sender.Send([]byte("lost-everywhere"))
	net.RunFor(4 * time.Second)

	for _, sec := range siteLoggers {
		if sec.Stats().FetchesSatisfied >= 1 {
			sitesRecovered++
		}
	}
	return nacksAtPrimary, servesByPrimary, sitesRecovered
}

// treeLatencyTable drives one loss through each tier of a small treed
// testbed — site serve, regional escalation, primary callback — then
// stitches the victims' flight rings and folds the chains into the
// per-tier recovery-latency histograms (flight.recovery.tier<k>.deliver_ms,
// DESIGN.md §10), appending one table row per tier.
func treeLatencyTable(r *Result) {
	tb, err := lbrm.NewTestbed(lbrm.TestbedConfig{
		Seed: 25, Regions: 2, Sites: 6, ReceiversPerSite: 2,
		Sender: lbrm.SenderConfig{
			Heartbeat: lbrm.HeartbeatParams{HMin: 50 * time.Millisecond, HMax: 400 * time.Millisecond, Backoff: 2},
		},
		Receiver: lbrm.ReceiverConfig{
			NackDelay: 10 * time.Millisecond, RequestTimeout: 100 * time.Millisecond,
			SecondaryRetries: 2,
		},
		Secondary: lbrm.SecondaryConfig{NackDelay: 10 * time.Millisecond},
	})
	if err != nil {
		r.Note("latency table: %v", err)
		return
	}
	tb.Send([]byte("warm"))
	tb.Run(300 * time.Millisecond)

	gate := func(n *lbrm.SimNode) func() {
		g := &lbrm.Gate{Down: true}
		rmUp := n.UpLink().PushLoss(g)
		rmDown := n.DownLink().PushLoss(g)
		return func() { rmUp(); rmDown() }
	}
	victims := make([]int, 0, 3)

	// Tier 0: receiver at site 0 loses a packet; its site secondary serves.
	tb.Sites[0].ReceiverNodes[0].DownLink().SetLoss(&lbrm.FirstN{N: 1})
	tb.Send([]byte("tier0-loss"))
	tb.Run(2 * time.Second)
	victims = append(victims, 0)

	// Tier 1: site 1's secondary is dead; the receiver escalates to its
	// regional (Loggers[1]).
	heal := gate(tb.Sites[1].SecondaryNode)
	tb.Sites[1].ReceiverNodes[0].DownLink().SetLoss(&lbrm.FirstN{N: 1})
	tb.Send([]byte("tier1-loss"))
	tb.Run(3 * time.Second)
	heal()
	victims = append(victims, 1)

	// Tier 2: site 2's secondary AND its regional are dead; the receiver
	// walks the whole chain to the primary callback.
	healSec := gate(tb.Sites[2].SecondaryNode)
	healReg := gate(tb.Regions[tb.Sites[2].Region].LoggerNode)
	tb.Sites[2].ReceiverNodes[0].DownLink().SetLoss(&lbrm.FirstN{N: 1})
	tb.Send([]byte("tier2-loss"))
	tb.Run(4 * time.Second)
	healSec()
	healReg()
	victims = append(victims, 2)

	// Stitch each victim's chains against every server-side ring and fold
	// them into one registry.
	var servers [][]obs.Event
	servers = append(servers, tb.SenderCfg.Obs.FlightRing().Snapshot())
	servers = append(servers, tb.PrimaryCfg.Obs.FlightRing().Snapshot())
	for _, reg := range tb.Regions {
		servers = append(servers, reg.LoggerCfg.Obs.FlightRing().Snapshot())
	}
	for _, s := range tb.Sites {
		servers = append(servers, s.SecondaryCfg.Obs.FlightRing().Snapshot())
	}
	flightReg := obs.NewRegistry()
	for _, site := range victims {
		chains := obs.StitchFlights(
			tb.Sites[site].ReceiverCfgs[0].Obs.FlightRing().Snapshot(), servers...)
		obs.FoldFlightChains(flightReg, chains)
	}
	snap := flightReg.Snapshot()
	for tier := 0; tier <= 2; tier++ {
		h, ok := snap.Histograms[fmt.Sprintf("flight.recovery.tier%d.deliver_ms", tier)]
		if !ok || h.Total() == 0 {
			r.AddRow(fmt.Sprintf("tier %d latency", tier), "-", "no chains", "-", "-")
			continue
		}
		mean := float64(h.Sum) / float64(h.Total())
		r.AddRow(fmt.Sprintf("tier %d latency", tier), "-",
			fmt.Sprintf("%d chains", h.Total()), fmt.Sprintf("mean %.0f ms", mean), "-")
		r.Set(fmt.Sprintf("tier%d_chains", tier), float64(h.Total()))
		r.Set(fmt.Sprintf("tier%d_mean_ms", tier), mean)
	}
	r.Note("per-tier latency from flight-recorder chains (detect→deliver): tier 0 = site serve, 1 = regional escalation, 2 = primary callback")
}
