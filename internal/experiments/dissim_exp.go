package experiments

import (
	"fmt"
	"strings"
	"time"

	"lbrm"
	"lbrm/internal/heartbeat"
	"lbrm/internal/netsim"
	"lbrm/internal/wire"
)

func init() {
	register("dissim", "E12 cross-check: a live terrain-entity population on the wire vs the closed forms", DISSim)
}

// DISSim validates the Figure 4/§2.1.2 arithmetic against the actual
// protocol at population scale: a scaled-down DIS terrain population (25
// entities, each an independent LBRM sender updating every 120 s) runs in
// the simulator for 16 virtual minutes under both heartbeat schemes, and
// the packets crossing the source site's tail circuit are counted.
func DISSim() *Result {
	const entities = 25
	const dt = 120 * time.Second
	const duration = 16 * time.Minute

	r := NewResult("dissim", "25 terrain entities on the wire, 16 virtual minutes, dt=120s",
		"scheme", "data pkts", "heartbeats", "hb/s per entity", "analytic hb/s")

	run := func(hb lbrm.HeartbeatParams) (data, hbs uint64) {
		net := netsim.New(7)
		srcSite := net.NewSite(netsim.SiteParams{Name: "source-site"})
		rcvSite := net.NewSite(netsim.SiteParams{Name: "rcv-site"})
		// One listener keeps the multicast tree alive across the WAN.
		rcvSite.NewHost("listener", lbrm.NewReceiver(lbrm.ReceiverConfig{
			Group: 1, Heartbeat: hb, NackDelay: time.Hour,
		}))
		var senders []*lbrm.Sender
		for i := 0; i < entities; i++ {
			s, err := lbrm.NewSender(lbrm.SenderConfig{
				Source: lbrm.SourceID(i + 1), Group: 1, Heartbeat: hb,
			})
			if err != nil {
				panic(err)
			}
			senders = append(senders, s)
			srcSite.NewHost(fmt.Sprintf("entity%d", i), s)
		}
		net.SetTap(func(ev netsim.TapEvent) {
			if !strings.Contains(ev.Link.Name(), "source-site/tail-up") {
				return
			}
			var p wire.Packet
			if p.Unmarshal(ev.Data) != nil {
				return
			}
			switch p.Type {
			case wire.TypeData:
				data++
			case wire.TypeHeartbeat:
				hbs++
			}
		})
		net.Start()
		// De-phase the entities across the update interval, then update
		// every dt.
		for i, s := range senders {
			s := s
			var tick func()
			tick = func() {
				s.Send([]byte("terrain state"))
				net.Clock().AfterFunc(dt, tick)
			}
			net.Clock().AfterFunc(time.Duration(i)*dt/entities, tick)
		}
		net.RunFor(duration)
		return data, hbs
	}

	variable := lbrm.HeartbeatParams{HMin: 250 * time.Millisecond, HMax: 32 * time.Second, Backoff: 2}
	fixed := lbrm.HeartbeatParams{HMin: 250 * time.Millisecond, HMax: 250 * time.Millisecond, Backoff: 1}

	vData, vHB := run(variable)
	fData, fHB := run(fixed)
	secs := duration.Seconds()
	perEntity := func(h uint64) float64 { return float64(h) / secs / entities }
	r.AddRow("variable (0.25s→32s ×2)", fmt.Sprintf("%d", vData), fmt.Sprintf("%d", vHB),
		fmt.Sprintf("%.4f", perEntity(vHB)),
		fmt.Sprintf("%.4f", heartbeat.RateVariable(heartbeat.Params(variable), dt)))
	r.AddRow("fixed (0.25s)", fmt.Sprintf("%d", fData), fmt.Sprintf("%d", fHB),
		fmt.Sprintf("%.4f", perEntity(fHB)),
		fmt.Sprintf("%.4f", heartbeat.RateFixed(heartbeat.Params(fixed), dt)))
	r.Set("variableHB", float64(vHB))
	r.Set("fixedHB", float64(fHB))
	r.Set("ratio", float64(fHB)/float64(vHB))
	r.Set("variablePerEntity", perEntity(vHB))
	r.Set("analyticVariable", heartbeat.RateVariable(heartbeat.Params(variable), dt))
	r.Set("fixedPerEntity", perEntity(fHB))
	r.Set("analyticFixed", heartbeat.RateFixed(heartbeat.Params(fixed), dt))
	r.Note("measured on the wire (source tail circuit) with %d live senders; the ratio reproduces Figure 5's ≈53×", entities)
	return r
}
