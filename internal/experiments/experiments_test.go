package experiments

import (
	"fmt"
	"math"
	"strings"
	"testing"
)

// TestRegistryComplete pins the experiment inventory to DESIGN.md's index.
func TestRegistryComplete(t *testing.T) {
	want := []string{
		"fig4", "fig5", "table1", "table2", "table3", "throughput",
		"nack", "recovery", "statack", "srm", "burst", "dis",
		"estimate", "posack", "aggregation", "inline",
		"hierarchy", "channel", "flow", "dissim", "reorder", "freshness",
		"e20", "e24", "e25",
	}
	for _, id := range want {
		if _, ok := ByID(id); !ok {
			t.Errorf("experiment %q not registered", id)
		}
	}
	if len(All()) < len(want) {
		t.Errorf("registry has %d experiments, want ≥ %d", len(All()), len(want))
	}
}

func TestResultFormatting(t *testing.T) {
	r := NewResult("x", "title", "a", "bb")
	r.AddRow("1", "2")
	r.Note("hello %d", 7)
	r.Set("v", 3)
	s := r.String()
	for _, want := range []string{"x: title", "a", "bb", "hello 7"} {
		if !strings.Contains(s, want) {
			t.Errorf("formatted result missing %q:\n%s", want, s)
		}
	}
	if r.Get("v") != 3 || r.Get("missing") != 0 {
		t.Error("Get wrong")
	}
}

// --- E1/E2/E3: heartbeat figures ---

func TestFig4Shape(t *testing.T) {
	r := Fig4()
	// Asymptotes: fixed → 4/s, variable → 1/32 ≈ 0.031/s.
	if v := r.Get("fixed@1000s"); math.Abs(v-4) > 0.05 {
		t.Errorf("fixed asymptote = %v, want ≈4", v)
	}
	if v := r.Get("variable@1000s"); math.Abs(v-1.0/32) > 0.01 {
		t.Errorf("variable asymptote = %v, want ≈1/32", v)
	}
	if len(r.Rows) != len(fig45Grid) {
		t.Errorf("rows = %d", len(r.Rows))
	}
}

func TestFig5MarkedPoint(t *testing.T) {
	r := Fig5()
	// Paper: 53.4 (figure text) / 53.3 (Table 1). Accept 52–55.
	if v := r.Get("ratio@120s"); v < 52 || v > 55 {
		t.Errorf("ratio@120s = %v, want ≈53.4", v)
	}
}

func TestTable1MatchesPaperShape(t *testing.T) {
	r := Table1()
	prev := 0.0
	for _, row := range table1Backoffs {
		det := r.Get("det@" + trim1(row.backoff))
		if det < prev {
			t.Errorf("ratio not monotone at backoff %v", row.backoff)
		}
		prev = det
		// Within ±35% of the paper's value — the paper's exact counting
		// model is unstated; the shape (monotone, 30–90 range) is the
		// claim.
		if det < row.paper*0.6 || det > row.paper*1.4 {
			t.Errorf("backoff %v: det ratio %.1f vs paper %.1f outside band",
				row.backoff, det, row.paper)
		}
	}
	// The paper's backoff=2 entry should be matched closely by the
	// deterministic model.
	if v := r.Get("det@2.0"); math.Abs(v-53.3) > 1.5 {
		t.Errorf("det@2.0 = %v, want ≈53.3", v)
	}
}

func trim1(v float64) string {
	s := []byte{byte('0' + int(v)), '.', byte('0' + int(v*10)%10)}
	return string(s)
}

// --- E4: Table 2 ---

func TestTable2SimulationMatchesAnalytic(t *testing.T) {
	r := Table2()
	for probes := 1; probes <= 5; probes++ {
		ana := r.Get("analytic@" + string(rune('0'+probes)))
		sim := r.Get("simulated@" + string(rune('0'+probes)))
		if ana <= 0 || sim <= 0 {
			t.Fatalf("probes %d: missing values", probes)
		}
		if math.Abs(sim-ana)/ana > 0.15 {
			t.Errorf("probes %d: simulated σ %.1f vs analytic %.1f", probes, sim, ana)
		}
	}
}

// --- E7: NACK reduction ---

func TestNackReductionShape(t *testing.T) {
	r := NackReduction()
	c, d := r.Get("centralizedNacks"), r.Get("distributedNacks")
	if d == 0 || c == 0 {
		t.Fatalf("counts: centralized %v distributed %v", c, d)
	}
	// Paper: 20 receivers/site → 20× fewer NACKs with secondaries.
	if red := r.Get("reduction"); red < 10 {
		t.Errorf("reduction = %.1f×, want ≥10× (paper: 20×)", red)
	}
	if r.Get("centralizedRecovered") != 1000 || r.Get("distributedRecovered") != 1000 {
		t.Errorf("not everyone recovered: %+v", r.Values)
	}
}

// --- E8: recovery latency ---

func TestRecoveryLatencyShape(t *testing.T) {
	r := RecoveryLatency()
	local, remote := r.Get("localMS"), r.Get("remoteMS")
	if local <= 0 || remote <= 0 {
		t.Fatal("missing latency values")
	}
	if local >= 10 {
		t.Errorf("local recovery %.1f ms, want LAN scale (<10ms)", local)
	}
	if remote < 70 {
		t.Errorf("remote recovery %.1f ms, want ≈80ms", remote)
	}
	if sp := r.Get("speedup"); sp < 5 {
		t.Errorf("speedup %.1f×, paper claims ~order of magnitude", sp)
	}
}

// --- E9: statistical ack ---

func TestStatAckShape(t *testing.T) {
	r := StatAck()
	if r.Get("wideRemulticasts") != 1 {
		t.Errorf("widespread loss re-multicasts = %v, want 1", r.Get("wideRemulticasts"))
	}
	if r.Get("wideReceiverNacks") != 0 {
		t.Errorf("receiver NACKs during statistical repair = %v, want 0", r.Get("wideReceiverNacks"))
	}
	if r.Get("wideDelivered") != r.Get("wideReceivers") {
		t.Errorf("widespread repair incomplete: %v/%v", r.Get("wideDelivered"), r.Get("wideReceivers"))
	}
	if r.Get("isolatedRemulticasts") != 0 {
		t.Errorf("isolated loss triggered %v multicasts, want 0", r.Get("isolatedRemulticasts"))
	}
	if r.Get("isolatedDelivered") != r.Get("isolatedReceivers") {
		t.Errorf("isolated repair incomplete: %v/%v", r.Get("isolatedDelivered"), r.Get("isolatedReceivers"))
	}
	// k=20 requested; with pAck=k/N the binomial count should land near 20.
	if a := r.Get("ackers"); a < 8 || a > 40 {
		t.Errorf("ackers = %v, want ≈20", a)
	}
}

func TestGroupEstimationConverges(t *testing.T) {
	r := GroupEstimation()
	est := r.Get("finalEstimate")
	if est < 120 || est > 280 {
		t.Errorf("final estimate %v, want ≈200", est)
	}
}

// --- E10: vs SRM ---

func TestVsSRMShape(t *testing.T) {
	r := VsSRM()
	if r.Get("lbrmRecovered") == 0 || r.Get("srmRecovered") == 0 {
		t.Fatalf("recoveries missing: %+v", r.Values)
	}
	// LBRM local recovery is LAN-scale; SRM pays multiple source RTTs.
	if v := r.Get("lbrmMeanMS"); v > 20 {
		t.Errorf("LBRM mean recovery %.1f ms, want LAN scale", v)
	}
	if v := r.Get("srmMeanMS"); v < 80 {
		t.Errorf("SRM mean recovery %.1f ms, want ≥ 2 source RTTs", v)
	}
	if ratio := r.Get("latencyRatio"); ratio < 5 {
		t.Errorf("SRM/LBRM latency ratio %.1f, want ≫1", ratio)
	}
	// Crying baby: LBRM leaks nothing to uninvolved sites; SRM multicasts
	// requests+repairs to everyone.
	if v := r.Get("lbrmGroupWide"); v != 0 {
		t.Errorf("LBRM group-wide packets per loss = %v, want 0", v)
	}
	if v := r.Get("srmGroupWide"); v < 1.5 {
		t.Errorf("SRM group-wide packets per loss = %v, want ≥2 (request+repair)", v)
	}
}

// --- posack baseline ---

func TestPosAckImplosionShape(t *testing.T) {
	r := PosAckImplosion()
	if v := r.Get("posack@1000"); v < 900 {
		t.Errorf("acks at source for 1000 receivers = %v, want ≈1000", v)
	}
	if v := r.Get("posack@100"); v < 90 {
		t.Errorf("acks at source for 100 receivers = %v, want ≈100", v)
	}
}

// --- E11: burst detection ---

func TestBurstDetectionBounds(t *testing.T) {
	r := BurstDetection()
	if v := r.Get("detect@0.1s"); v != 0.25 {
		t.Errorf("isolated loss detect = %v, want hmin=0.25", v)
	}
	if w := r.Get("worstRatio"); w <= 0 || w > 2.5 {
		t.Errorf("worst detect/t_burst = %v, want ≤ ~2 (+hmin slack)", w)
	}
}

// --- E12: DIS ---

func TestDISScenarioShape(t *testing.T) {
	r := DISScenario()
	if v := r.Get("fixedHeartbeats"); v < 380_000 || v > 410_000 {
		t.Errorf("fixed heartbeats = %v, want ≈400k", v)
	}
	if v := r.Get("heartbeatFractionFixed"); v < 0.75 || v > 0.85 {
		t.Errorf("heartbeat fraction = %v, want ≈0.8", v)
	}
	if v := r.Get("reduction"); v < 45 || v > 60 {
		t.Errorf("reduction = %v, want ≈53", v)
	}
	// Monte-Carlo generator agrees with the closed form within 20%.
	sim, exp := r.Get("simUpdateRate"), r.Get("simExpectedRate")
	if exp == 0 || math.Abs(sim-exp)/exp > 0.2 {
		t.Errorf("sim rate %v vs expected %v", sim, exp)
	}
}

// --- ablations ---

func TestAggregationAblation(t *testing.T) {
	r := AggregationAblation()
	if v := r.Get("defaultToPrimary"); v != 1 {
		t.Errorf("aggregated NACKs to primary = %v, want 1", v)
	}
	if r.Get("noneToPrimary") < 1 {
		t.Error("no upstream NACK at all without aggregation")
	}
}

func TestInlineHeartbeatAblation(t *testing.T) {
	r := InlineHeartbeatAblation()
	if v := r.Get("plainNacks"); v < 1 {
		t.Errorf("plain heartbeats: NACKs = %v, want ≥1", v)
	}
	if v := r.Get("inlineNacks"); v != 0 {
		t.Errorf("inline heartbeats: NACKs = %v, want 0", v)
	}
}

// --- Table 3 / throughput (real time; keep light in tests) ---

func TestTable3Runs(t *testing.T) {
	if testing.Short() {
		t.Skip("real-time measurement")
	}
	r := Table3()
	if v := r.Get("processingUS"); v <= 0 || v > 1000 {
		t.Errorf("processing time = %v µs, implausible", v)
	}
	if v := r.Get("totalUS"); v > 0 && v < r.Get("processingUS") {
		t.Errorf("total %v µs < processing %v µs", v, r.Get("processingUS"))
	}
}

func TestThroughputRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("real-time measurement")
	}
	r := LoggerThroughput()
	if v := r.Get("inprocessPerSec"); v < 10000 {
		t.Errorf("in-process service rate = %v/s, implausibly low", v)
	}
}

// --- hierarchy (§7 multi-level loggers) ---

func TestHierarchyReducesPrimaryNacks(t *testing.T) {
	r := Hierarchy()
	two, three := r.Get("twoLevelNacks"), r.Get("threeLevelNacks")
	if two != 20 {
		t.Errorf("2-level NACKs at primary = %v, want 20 (one per site)", two)
	}
	if three != 4 {
		t.Errorf("3-level NACKs at primary = %v, want 4 (one per region)", three)
	}
	if r.Get("twoLevelRecovered") != r.Get("receivers") ||
		r.Get("threeLevelRecovered") != r.Get("receivers") {
		t.Errorf("incomplete recovery: %+v", r.Values)
	}
}

// --- retransmission channel (§7) ---

func TestRetransChannelHealsWithoutNacks(t *testing.T) {
	r := RetransChannel()
	if r.Get("recoveredOff") != 1 || r.Get("recoveredOn") != 1 {
		t.Fatalf("incomplete recovery: %+v", r.Values)
	}
	if r.Get("nacksOff") == 0 {
		t.Error("baseline sent no NACKs?")
	}
	if v := r.Get("nacksOn"); v != 0 {
		t.Errorf("channel mode sent %v NACKs, want 0", v)
	}
	if v := r.Get("heardByHealthy"); v != 0 {
		t.Errorf("healthy site heard %v channel replays, want 0", v)
	}
	if v := r.Get("replays"); v < 3 {
		t.Errorf("channel replays = %v, want ≥3", v)
	}
}

// --- flow control (§5) ---

func TestFlowControlPacing(t *testing.T) {
	r := FlowControl()
	if v := r.Get("cleanDelayMS"); v != 0 {
		t.Errorf("clean-phase pacing = %vms, want 0", v)
	}
	if v := r.Get("congestedDelayMS"); v <= 0 {
		t.Errorf("congested-phase pacing = %vms, want > 0", v)
	}
	if v := r.Get("congestedLoss"); v < 0.1 {
		t.Errorf("congested loss estimate = %v, want ≥ 0.1", v)
	}
	if v := r.Get("recoveredDelayMS"); v != 0 {
		t.Errorf("recovered-phase pacing = %vms, want 0", v)
	}
}

// --- dissim: live population cross-check ---

func TestDISSimMatchesAnalytics(t *testing.T) {
	r := DISSim()
	// Per-entity wire rates within 10% of the closed forms.
	for _, pair := range [][2]string{
		{"variablePerEntity", "analyticVariable"},
		{"fixedPerEntity", "analyticFixed"},
	} {
		got, want := r.Get(pair[0]), r.Get(pair[1])
		if want == 0 || math.Abs(got-want)/want > 0.1 {
			t.Errorf("%s = %v vs analytic %v", pair[0], got, want)
		}
	}
	if ratio := r.Get("ratio"); ratio < 45 || ratio > 60 {
		t.Errorf("fixed/variable on the wire = %.1f, want ≈53", ratio)
	}
}

// --- reorder ablation ---

func TestReorderAblation(t *testing.T) {
	r := ReorderAblation()
	eager := r.Get("nacks@1ms")
	patient := r.Get("nacks@40ms")
	if patient != 0 {
		t.Errorf("patient receiver sent %v spurious NACKs, want 0", patient)
	}
	if eager <= patient {
		t.Errorf("eager %v vs patient %v: expected jitter to punish a tiny NackDelay", eager, patient)
	}
	// Everything is delivered regardless (the NACKs are spurious, not
	// harmful to correctness).
	for _, nd := range []string{"1ms", "5ms", "40ms"} {
		if r.Get("delivered@"+nd) != 80 {
			t.Errorf("NackDelay %s: delivered = %v, want 80", nd, r.Get("delivered@"+nd))
		}
	}
}

// --- freshness capstone ---

func TestFreshnessShape(t *testing.T) {
	r := Freshness()
	// Without recovery ~10% of updates are lost forever.
	if v := r.Get("noneDeliveredPct"); v < 85 || v > 95 {
		t.Errorf("no-recovery delivery = %.1f%%, want ≈90%%", v)
	}
	// LBRM delivers everything.
	if v := r.Get("lbrmDeliveredPct"); v != 100 {
		t.Errorf("LBRM delivery = %.1f%%, want 100%%", v)
	}
	if v := r.Get("statackDeliveredPct"); v != 100 {
		t.Errorf("statack delivery = %.1f%%, want 100%%", v)
	}
	// Recovered updates land within ~h_min + recovery round trips.
	if v := r.Get("lbrmP99ms"); v <= 40 || v > 1500 {
		t.Errorf("LBRM p99 = %.0fms, want bounded recovery latency", v)
	}
}

func TestResultCSV(t *testing.T) {
	r := NewResult("x", "t", "a", "b,with comma")
	r.AddRow("1", `quote " inside`)
	got := r.CSV()
	want := "a,\"b,with comma\"\n1,\"quote \"\" inside\"\n"
	if got != want {
		t.Fatalf("CSV = %q, want %q", got, want)
	}
}

func TestE20RecoveryDistributions(t *testing.T) {
	r := RecoveryDistributions()
	for _, cl := range []string{"crash", "partition", "crash+burst"} {
		if v := r.Get(cl + ".violations"); v != 0 {
			t.Errorf("%s: %v invariant violations, want 0\n%s", cl, v, r)
		}
	}
	// Primary-crash classes must actually exercise failover.
	if r.Get("crash.failovers") == 0 || r.Get("crash+burst.failovers") == 0 {
		t.Errorf("crash classes produced no failovers:\n%s", r)
	}
	// Failover latency stays within the configured detection+election
	// bound (2.5×FailoverTimeout + FailoverWait + send interval + slack).
	for _, cl := range []string{"crash", "crash+burst"} {
		if v := r.Get(cl + ".fo_max_ms"); v <= 0 || v > 1500 {
			t.Errorf("%s: failover max = %.0fms, want (0, 1500]", cl, v)
		}
	}
}

func TestE25TreeScalingShape(t *testing.T) {
	r := TreeScaling()
	first := treeScalePoints[0]
	last := treeScalePoints[len(treeScalePoints)-1]
	// The headline claim: primary callback load under the tree stays flat
	// (within 2×) across the whole sweep, pinned at the regional fan-in.
	treeFirst := r.Get(fmt.Sprintf("primary_nacks_tree@%d", first))
	treeLast := r.Get(fmt.Sprintf("primary_nacks_tree@%d", last))
	if treeFirst <= 0 || treeLast <= 0 {
		t.Fatalf("missing tree NACK counts:\n%s", r)
	}
	if treeLast > 2*treeFirst {
		t.Errorf("tree primary NACKs grew %v → %v from %d to %d sites, want within 2×",
			treeFirst, treeLast, first, last)
	}
	if treeLast > 2*treeScaleRegions {
		t.Errorf("tree primary NACKs @%d sites = %v, want ≈ regional fan-in %d",
			last, treeLast, treeScaleRegions)
	}
	// The flat design's load is linear in sites: one NACK per site.
	for _, sites := range treeScalePoints {
		flat := r.Get(fmt.Sprintf("primary_nacks_flat@%d", sites))
		if flat < 0.8*float64(sites) {
			t.Errorf("flat primary NACKs @%d sites = %v, want ≈%d (one per site)", sites, flat, sites)
		}
		// Both designs must actually repair every site.
		for _, design := range []string{"flat", "tree"} {
			if rec := r.Get(fmt.Sprintf("recovered_%s@%d", design, sites)); rec != float64(sites) {
				t.Errorf("%s @%d sites: %v sites recovered, want all", design, sites, rec)
			}
		}
	}
	// The flight-recorder latency table covers every tier, and deeper
	// escalations cost more.
	var prev float64 = -1
	for tier := 0; tier <= 2; tier++ {
		if n := r.Get(fmt.Sprintf("tier%d_chains", tier)); n < 1 {
			t.Fatalf("tier %d: no flight chains stitched\n%s", tier, r)
		}
		mean := r.Get(fmt.Sprintf("tier%d_mean_ms", tier))
		if mean <= prev {
			t.Errorf("tier %d mean %v ms not above tier %d's %v ms", tier, mean, tier-1, prev)
		}
		prev = mean
	}
}

func TestE24QuorumCostShape(t *testing.T) {
	r := QuorumCost()
	if len(r.Rows) != 6 {
		t.Fatalf("rows = %d, want 6 (single/quorum × 1/3/5 replicas)\n%s", len(r.Rows), r)
	}
	// Single-primary ack latency is flat in replica count (local write).
	base := r.Get("ack_mean_ms_single@1")
	if base <= 0 {
		t.Fatalf("missing single-primary baseline:\n%s", r)
	}
	for _, n := range []string{"3", "5"} {
		if v := r.Get("ack_mean_ms_single@" + n); math.Abs(v-base) > 1 {
			t.Errorf("single-primary ack mean @%s replicas = %.2fms, want flat ≈%.2fms", n, v, base)
		}
	}
	// Quorum latency grows with the ring (one LAN RTT per replica) but
	// stays interactive: within ~2·(R+1)+slack hops of 1ms each.
	for _, n := range []int{1, 3, 5} {
		v := r.Get(fmt.Sprintf("ack_mean_ms_quorum@%d", n))
		if v <= base {
			t.Errorf("quorum ack mean @%d = %.2fms, want > single-primary %.2fms", n, v, base)
		}
		if bound := float64(2*(n+1)+4) * 1.0; v > bound {
			t.Errorf("quorum ack mean @%d = %.2fms, want ≤ %.0fms (ring circulation bound)", n, v, bound)
		}
	}
	// The headline claim: the primary's sync egress is O(1) in replica
	// count under quorum (ring token), but O(R) single-primary (LogSync
	// fan-out to every replica).
	q3, q5 := r.Get("primary_sync_per_pkt_quorum@3"), r.Get("primary_sync_per_pkt_quorum@5")
	if q3 > 2 || q5 > 2 {
		t.Errorf("quorum primary sync/pkt = %.2f @3, %.2f @5 — want ≤ 2 (O(1) ring)", q3, q5)
	}
	if q5-q3 > 1 {
		t.Errorf("quorum primary sync/pkt grew %.2f → %.2f from 3 to 5 replicas, want ≈flat", q3, q5)
	}
	s3, s5 := r.Get("primary_sync_per_pkt_single@3"), r.Get("primary_sync_per_pkt_single@5")
	if s3 < 2.5 || s5 < 4.5 {
		t.Errorf("single-primary sync/pkt = %.2f @3, %.2f @5 — want ≈R (direct fan-out)", s3, s5)
	}
}
