package experiments

import (
	"fmt"
	"time"

	"lbrm"
)

func init() {
	register("reorder", "ablation: receiver NackDelay (reorder allowance) vs spurious NACKs under jitter", ReorderAblation)
}

// ReorderAblation quantifies the receiver's NackDelay ("a short
// retransmission request timer... allows out-of-order packets to arrive",
// Appendix A): under 15 ms of tail-circuit jitter and NO loss, packets
// arrive reordered; a too-eager receiver NACKs for gaps that heal by
// themselves, a patient one stays silent.
func ReorderAblation() *Result {
	r := NewResult("reorder", "Spurious NACKs vs NackDelay under 15 ms jitter, zero loss",
		"NackDelay", "spurious NACKs", "delivered")
	for _, nd := range []time.Duration{time.Millisecond, 5 * time.Millisecond, 40 * time.Millisecond} {
		tb, err := lbrm.NewTestbed(lbrm.TestbedConfig{
			Seed: 71, Sites: 2, ReceiversPerSite: 3,
			Sender:   lbrm.SenderConfig{Heartbeat: expHB},
			Receiver: lbrm.ReceiverConfig{NackDelay: nd},
		})
		if err != nil {
			panic(err)
		}
		// Jitter on every tail circuit: back-to-back packets reorder.
		for _, s := range tb.Sites {
			s.Site.TailDown().SetJitter(15 * time.Millisecond)
		}
		tb.Run(300 * time.Millisecond)
		const n = 40
		for i := 0; i < n; i++ {
			// Bursts of 2 packets 1 ms apart: prime reordering candidates.
			tb.Send([]byte("a"))
			tb.Run(time.Millisecond)
			tb.Send([]byte("b"))
			tb.Run(150 * time.Millisecond)
		}
		tb.Run(3 * time.Second)
		var nacks uint64
		delivered := 0
		for _, s := range tb.Sites {
			for _, rc := range s.Receivers {
				nacks += rc.Stats().NacksSent
			}
		}
		for seq := uint64(1); seq <= 2*n; seq++ {
			if tb.EveryoneHas(seq) {
				delivered++
			}
		}
		r.AddRow(nd.String(), fmt.Sprintf("%d", nacks), fmt.Sprintf("%d/%d", delivered, 2*n))
		r.Set(fmt.Sprintf("nacks@%s", nd), float64(nacks))
		r.Set(fmt.Sprintf("delivered@%s", nd), float64(delivered))
	}
	r.Note("all packets always arrive (no loss): every NACK here is spurious, triggered by jitter reordering")
	return r
}
