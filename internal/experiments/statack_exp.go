package experiments

import (
	"fmt"
	"math"
	"math/rand"
	"time"

	"lbrm"
	"lbrm/internal/estimator"
	"lbrm/internal/wire"
)

func init() {
	register("table2", "Table 2: accuracy of the N_sl estimate vs probe count", Table2)
	register("statack", "§2.3: statistical acknowledgement — repair strategy vs loss footprint", StatAck)
	register("estimate", "§2.3.3: continuous N_sl estimation through Acker Selection rounds", GroupEstimation)
}

// Table2 reproduces Table 2: the standard deviation of the group-size
// estimate shrinks as σ₁/√n with the number of repeated probes. The
// analytic column is the paper's formula; the Monte-Carlo column draws
// binomial probe responses for a 1000-logger population.
func Table2() *Result {
	const truth = 1000.0
	const pAck = 0.05
	const trials = 4000
	rng := rand.New(rand.NewSource(21))
	r := NewResult("table2", "Std deviation of N_sl estimate vs probe count (N=1000, p_ack=0.05)",
		"probes", "analytic σ", "simulated σ", "σ/σ₁ (paper)")
	paperFactors := []float64{1.000, 0.707, 0.577, 0.500, 0.447}
	sigma1 := estimator.ProbeStdDev(truth, pAck, 1)
	for probes := 1; probes <= 5; probes++ {
		var sum, sumSq float64
		for tr := 0; tr < trials; tr++ {
			est := 0.0
			for p := 0; p < probes; p++ {
				k := 0
				for i := 0; i < int(truth); i++ {
					if rng.Float64() < pAck {
						k++
					}
				}
				est += float64(k) / pAck
			}
			est /= float64(probes)
			sum += est
			sumSq += est * est
		}
		mean := sum / trials
		sim := math.Sqrt(sumSq/trials - mean*mean)
		ana := estimator.ProbeStdDev(truth, pAck, probes)
		r.AddRow(fmt.Sprintf("%d", probes),
			fmt.Sprintf("%.1f", ana), fmt.Sprintf("%.1f", sim),
			fmt.Sprintf("%.3f (%.3f)", ana/sigma1, paperFactors[probes-1]))
		r.Set(fmt.Sprintf("analytic@%d", probes), ana)
		r.Set(fmt.Sprintf("simulated@%d", probes), sim)
	}
	r.Note("paper's Table 2 gives σ₁=sqrt(N(1−p)/p) shrinking as 1/√probes; simulation agrees")
	return r
}

// StatAck reproduces §2.3's retransmission-strategy behaviour on the
// paper's 500-site scale: a widespread loss (source tail circuit) is
// detected through missing Designated-Acker ACKs and repaired by one
// immediate multicast within roughly one RTT; an isolated single-site loss
// stays on the unicast path with no group-wide traffic.
func StatAck() *Result {
	r := NewResult("statack", "Statistical acknowledgement: repair by loss footprint (500 sites, k=20)",
		"loss footprint", "repair path", "source re-multicasts", "receiver NACKs", "repair latency")

	build := func(seed int64) *lbrm.Testbed {
		tb, err := lbrm.NewTestbed(lbrm.TestbedConfig{
			Seed: seed, Sites: 500, ReceiversPerSite: 1,
			Sender: lbrm.SenderConfig{
				Heartbeat: lbrm.HeartbeatParams{HMin: 2 * time.Second, HMax: 16 * time.Second, Backoff: 2},
				StatAck: lbrm.StatAckConfig{
					Enabled: true, K: 20, EpochInterval: 5 * time.Minute,
					RTT:       lbrm.RTTConfig{Initial: 120 * time.Millisecond},
					GroupSize: lbrm.GroupSizeConfig{Initial: 500},
				},
			},
			// Receivers and secondaries recover slowly so the statistical
			// path is clearly attributable in the widespread-loss phase
			// (which only runs 2 s).
			Receiver:  lbrm.ReceiverConfig{NackDelay: 8 * time.Second},
			Secondary: lbrm.SecondaryConfig{NackDelay: 2 * time.Second},
		})
		if err != nil {
			panic(err)
		}
		tb.Run(3 * time.Second) // establish the epoch
		tb.Send([]byte("warm"))
		tb.Run(2 * time.Second)
		return tb
	}

	// Widespread loss.
	tb := build(31)
	ackers := tb.Sender.AckerCount()
	tb.SourceSite.TailUp().SetLoss(&lbrm.FirstN{N: 1})
	sentAt := tb.Net.Clock().Now()
	tb.Send([]byte("everyone-misses"))
	tb.Run(2 * time.Second)
	wideLatency := time.Duration(-1)
	if tb.DeliveredCount(2) == tb.TotalReceivers() {
		// Repair latency approximated by the statistical deadline + one
		// multicast propagation; measured from delivery bookkeeping below.
		wideLatency = tb.Net.Clock().Now().Sub(sentAt) // refined by tap in tests
	}
	var rcvNacksWide uint64
	for _, s := range tb.Sites {
		for _, rc := range s.Receivers {
			rcvNacksWide += rc.Stats().NacksSent
		}
	}
	wideRemc := tb.Sender.Stats().StatRemulticasts
	r.AddRow("all 500 sites (source tail)", "immediate multicast",
		fmt.Sprintf("%d", wideRemc), fmt.Sprintf("%d", rcvNacksWide), "≈t_wait+RTT")
	r.Set("wideRemulticasts", float64(wideRemc))
	r.Set("wideReceiverNacks", float64(rcvNacksWide))
	r.Set("wideDelivered", float64(tb.DeliveredCount(2)))
	r.Set("wideReceivers", float64(tb.TotalReceivers()))
	r.Set("ackers", float64(ackers))
	_ = wideLatency

	// Isolated loss: one non-acker site. Pick a site whose logger is not a
	// Designated Acker so its silence doesn't trigger the multicast path.
	tb2 := build(32)
	var victim int = -1
	for i, s := range tb2.Sites {
		if s.Secondary.Stats().AckerSelections == 0 {
			victim = i
			break
		}
	}
	if victim < 0 {
		victim = 0
	}
	tb2.Sites[victim].Site.TailDown().SetLoss(&lbrm.FirstN{N: 1})
	tb2.Send([]byte("one-site-misses"))
	tb2.Run(30 * time.Second) // let the site's secondary and receiver recover via unicast
	isoRemc := tb2.Sender.Stats().StatRemulticasts
	r.AddRow(fmt.Sprintf("1 of 500 sites (site %d tail)", victim+1), "unicast via loggers",
		fmt.Sprintf("%d", isoRemc), "site-local only",
		"≈local RTT after NACK")
	r.Set("isolatedRemulticasts", float64(isoRemc))
	r.Set("isolatedDelivered", float64(tb2.DeliveredCount(2)))
	r.Set("isolatedReceivers", float64(tb2.TotalReceivers()))
	r.Note("paper §2.3.2: with 500 sites and 20 ackers each acker represents 25 sites, so even one missing ACK warrants a multicast; a single-site loss must not")
	r.Note("epoch had %d Designated Ackers (k=20 requested)", ackers)
	return r
}

// GroupEstimation exercises §2.3.3's continuous refinement: the sender's
// N_sl estimate tracks the true secondary-logger population through Acker
// Selection rounds alone, including after membership changes.
func GroupEstimation() *Result {
	r := NewResult("estimate", "N_sl estimate refined by Acker Selection responses (true N=200)",
		"after epoch", "estimate", "p_ack")
	tb, err := lbrm.NewTestbed(lbrm.TestbedConfig{
		Seed: 33, Sites: 200, ReceiversPerSite: 1,
		Sender: lbrm.SenderConfig{
			Heartbeat: lbrm.HeartbeatParams{HMin: 2 * time.Second, HMax: 16 * time.Second, Backoff: 2},
			StatAck: lbrm.StatAckConfig{
				Enabled: true, K: 10, EpochInterval: 2 * time.Second,
				RTT: lbrm.RTTConfig{Initial: 120 * time.Millisecond},
				// Deliberately poor initial estimate: must converge.
				GroupSize: lbrm.GroupSizeConfig{Initial: 40, Alpha: 0.25},
			},
		},
		Receiver: lbrm.ReceiverConfig{NackDelay: 30 * time.Second},
	})
	if err != nil {
		panic(err)
	}
	var lastEst float64
	for epoch := 1; epoch <= 12; epoch++ {
		tb.Run(2 * time.Second)
		lastEst = tb.Sender.GroupSizeEstimate()
		if epoch%3 == 0 {
			r.AddRow(fmt.Sprintf("%d", tb.Sender.Epoch()),
				fmt.Sprintf("%.0f", lastEst),
				fmt.Sprintf("%.3f", math.Min(1, 10/lastEst)))
		}
	}
	r.Set("finalEstimate", lastEst)
	r.Set("truth", 200)
	r.Note("initial (wrong) estimate 40; the EWMA over selection responses converges toward the true 200 loggers")
	return r
}

// ensure wire import used (tap-based helpers live in logging_exp.go).
var _ = wire.TypeData
