// Package experiments reproduces every data-bearing table and figure of
// the LBRM paper, plus its quantitative in-text claims. Each experiment is
// a Runner producing a Result: a formatted table of the same rows/series
// the paper reports, a set of named values for programmatic assertions
// (tests and benchmarks), and notes recording paper-vs-measured context.
//
// The experiment index lives in DESIGN.md; paper-vs-measured numbers are
// recorded in EXPERIMENTS.md.
package experiments

import (
	"fmt"
	"sort"
	"strings"
)

// Result is one experiment's output.
type Result struct {
	// ID is the experiment key ("fig4", "table1", ...).
	ID string
	// Title describes the paper artifact reproduced.
	Title string
	// Headers and Rows form the report table.
	Headers []string
	Rows    [][]string
	// Notes carry methodology and paper-comparison remarks.
	Notes []string
	// Values holds named scalars for assertions.
	Values map[string]float64
}

// NewResult returns an empty result.
func NewResult(id, title string, headers ...string) *Result {
	return &Result{ID: id, Title: title, Headers: headers, Values: make(map[string]float64)}
}

// AddRow appends one table row.
func (r *Result) AddRow(cells ...string) { r.Rows = append(r.Rows, cells) }

// Note appends a formatted note.
func (r *Result) Note(format string, args ...any) {
	r.Notes = append(r.Notes, fmt.Sprintf(format, args...))
}

// Set records a named scalar.
func (r *Result) Set(key string, v float64) { r.Values[key] = v }

// Get returns a named scalar (NaN-free zero default).
func (r *Result) Get(key string) float64 { return r.Values[key] }

// CSV renders the result as RFC-4180-ish comma-separated rows (header
// first), for plotting pipelines.
func (r *Result) CSV() string {
	var b strings.Builder
	esc := func(c string) string {
		if strings.ContainsAny(c, ",\"\n") {
			return "\"" + strings.ReplaceAll(c, "\"", "\"\"") + "\""
		}
		return c
	}
	row := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteByte(',')
			}
			b.WriteString(esc(c))
		}
		b.WriteByte('\n')
	}
	row(r.Headers)
	for _, cells := range r.Rows {
		row(cells)
	}
	return b.String()
}

// String renders the result as an aligned text table.
func (r *Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", r.ID, r.Title)
	widths := make([]int, len(r.Headers))
	for i, h := range r.Headers {
		widths[i] = len(h)
	}
	for _, row := range r.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	line(r.Headers)
	sep := make([]string, len(r.Headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range r.Rows {
		line(row)
	}
	for _, n := range r.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// Runner names one experiment.
type Runner struct {
	ID    string
	Title string
	Run   func() *Result
}

var registry []Runner

func register(id, title string, run func() *Result) {
	registry = append(registry, Runner{ID: id, Title: title, Run: run})
}

// All returns every registered experiment, ordered by ID registration.
func All() []Runner { return append([]Runner(nil), registry...) }

// ByID finds an experiment.
func ByID(id string) (Runner, bool) {
	for _, r := range registry {
		if r.ID == id {
			return r, true
		}
	}
	return Runner{}, false
}

// IDs lists registered experiment IDs.
func IDs() []string {
	ids := make([]string, len(registry))
	for i, r := range registry {
		ids[i] = r.ID
	}
	sort.Strings(ids)
	return ids
}
