package experiments

import (
	"fmt"
	"math/rand"
	"net"
	"sort"
	"time"

	"lbrm/internal/logger"
	"lbrm/internal/transport"
	"lbrm/internal/transport/udp"
	"lbrm/internal/vtime"
	"lbrm/internal/wire"
)

func init() {
	register("table3", "Table 3: secondary logging server response time (128-byte packet)", Table3)
	register("throughput", "§3: maximum logging-server request service rate", LoggerThroughput)
}

// discardEnv is a minimal env for pure in-process timing: sends are
// dropped, time is virtual and never advances (so no timer can fire
// mid-measurement).
type discardEnv struct {
	clk *vtime.Sim
	rng *rand.Rand
}

func newDiscardEnv() *discardEnv {
	return &discardEnv{clk: newSimClock(), rng: rand.New(rand.NewSource(1))}
}

func (e *discardEnv) Now() time.Time                                   { return e.clk.Now() }
func (e *discardEnv) AfterFunc(d time.Duration, fn func()) vtime.Timer { return e.clk.AfterFunc(d, fn) }
func (e *discardEnv) Send(transport.Addr, []byte) error                { return nil }
func (e *discardEnv) Multicast(wire.GroupID, int, []byte) error        { return nil }
func (e *discardEnv) Join(wire.GroupID) error                          { return nil }
func (e *discardEnv) Leave(wire.GroupID) error                         { return nil }
func (e *discardEnv) LocalAddr() transport.Addr                        { return discardAddr{} }
func (e *discardEnv) ParseAddr(s string) (transport.Addr, error)       { return discardAddr{}, nil }
func (e *discardEnv) Rand() *rand.Rand                                 { return e.rng }

type discardAddr struct{}

func (discardAddr) Network() string { return "discard" }
func (discardAddr) String() string  { return "discard" }

const perfGroup = wire.GroupID(50)

// loadedSecondary returns a secondary logger holding `packets` 128-byte
// payloads, running on the given env.
func loadedSecondary(env transport.Env, packets int) *logger.Secondary {
	sec := logger.NewSecondary(logger.SecondaryConfig{
		Group: perfGroup,
		// High threshold: serve unicast (the measured path).
		RemcastThreshold: 1 << 30,
	})
	sec.Start(env)
	payload := make([]byte, 128)
	for seq := 1; seq <= packets; seq++ {
		p := wire.Packet{Type: wire.TypeData, Source: 1, Group: perfGroup,
			Seq: uint64(seq), Payload: payload}
		buf, err := p.Marshal()
		if err != nil {
			panic(err)
		}
		sec.Recv(discardAddr{}, buf)
	}
	return sec
}

// processingTime measures the in-process cost of serving one
// retransmission request (decode NACK, log lookup, encode RETRANS) —
// Table 3's "server request processing" row.
func processingTime(iters int) time.Duration {
	env := newDiscardEnv()
	sec := loadedSecondary(env, 1024)
	nack := wire.Packet{Type: wire.TypeNack, Source: 1, Group: perfGroup,
		Ranges: []wire.SeqRange{{From: 1, To: 1}}}
	req, err := nack.Marshal()
	if err != nil {
		panic(err)
	}
	// Vary the requested seq so the remcast window map doesn't grow
	// unboundedly for one key.
	start := time.Now()
	for i := 0; i < iters; i++ {
		seq := uint64(i%1024) + 1
		for b := 0; b < 8; b++ {
			req[wire.HeaderLen+2+b] = byte(seq >> (56 - 8*b))
			req[wire.HeaderLen+2+8+b] = byte(seq >> (56 - 8*b))
		}
		sec.Recv(discardAddr{}, req)
	}
	return time.Since(start) / time.Duration(iters)
}

// Table3 reproduces the paper's Table 3 on today's substrate: the response
// time to request and retrieve a 128-byte packet from a logging server
// over the local network (loopback UDP here; 10 Mbit Ethernet + AIX in the
// paper). The same breakdown is reported: server processing vs
// network/OS overhead vs total.
func Table3() *Result {
	r := NewResult("table3", "Secondary logging server response time, 128-byte packet",
		"operation", "measured (µs)", "paper 1995 (µs)")
	proc := processingTime(20000)

	total, err := loopbackRoundTrip(1500)
	if err != nil {
		r.Note("loopback UDP unavailable (%v); only in-process processing measured", err)
		total = proc // degenerate: no network path
	}
	netOS := total - proc
	if netOS < 0 {
		netOS = 0
	}
	us := func(d time.Duration) string { return fmt.Sprintf("%.1f", float64(d)/float64(time.Microsecond)) }
	r.AddRow("server request processing", us(proc), "102")
	r.AddRow("network + OS (transmission, interrupts, context switch)", us(netOS), "390 + 1090")
	r.AddRow("total (request → response)", us(total), "1582")
	r.Set("processingUS", float64(proc)/float64(time.Microsecond))
	r.Set("totalUS", float64(total)/float64(time.Microsecond))
	r.Note("paper hardware: IBM RS/6000-370 (70 SPECint), AIX 3.2.5, 10 Mbit Ethernet; absolute numbers differ, the breakdown's shape (network/OS dominates processing) is the claim")
	return r
}

// loopbackRoundTrip measures the median NACK→RETRANS round trip against a
// UDP-bound secondary logger on 127.0.0.1.
func loopbackRoundTrip(iters int) (time.Duration, error) {
	sec := logger.NewSecondary(logger.SecondaryConfig{
		Group:            perfGroup,
		RemcastThreshold: 1 << 30,
	})
	node, err := udp.Start(udp.Config{
		Listen: "127.0.0.1:0",
		Groups: map[wire.GroupID]string{perfGroup: "239.81.77.2:17791"},
	}, sec)
	if err != nil {
		return 0, err
	}
	defer node.Close()

	// Load the log via a unicast data injection (the logger treats DATA
	// arriving unicast like multicast data).
	client, err := net.ListenUDP("udp4", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		return 0, err
	}
	defer client.Close()
	serverAddr, err := net.ResolveUDPAddr("udp4", node.Addr().String())
	if err != nil {
		return 0, err
	}
	payload := make([]byte, 128)
	data := wire.Packet{Type: wire.TypeData, Source: 1, Group: perfGroup, Seq: 1, Payload: payload}
	dbuf, _ := data.Marshal()
	if _, err := client.WriteToUDP(dbuf, serverAddr); err != nil {
		return 0, err
	}
	nack := wire.Packet{Type: wire.TypeNack, Source: 1, Group: perfGroup,
		Ranges: []wire.SeqRange{{From: 1, To: 1}}}
	nbuf, _ := nack.Marshal()
	resp := make([]byte, 2048)
	client.SetReadDeadline(time.Now().Add(2 * time.Second))

	samples := make([]time.Duration, 0, iters)
	for i := 0; i < iters; i++ {
		t0 := time.Now()
		if _, err := client.WriteToUDP(nbuf, serverAddr); err != nil {
			return 0, err
		}
		client.SetReadDeadline(time.Now().Add(time.Second))
		if _, _, err := client.ReadFromUDP(resp); err != nil {
			return 0, fmt.Errorf("no retransmission received: %w", err)
		}
		samples = append(samples, time.Since(t0))
	}
	sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
	return samples[len(samples)/2], nil
}

// LoggerThroughput reproduces §3's saturation measurement: the maximum
// rate at which a logging server can receive, process and answer
// retransmission requests (the paper measured ≈1587 req/s on 1995
// hardware; one request per 630 µs).
func LoggerThroughput() *Result {
	r := NewResult("throughput", "Maximum logging-server request service rate",
		"path", "requests/s", "per-request (µs)")

	// In-process ceiling (no sockets).
	proc := processingTime(20000)
	inproc := float64(time.Second) / float64(proc)
	r.AddRow("in-process (decode+lookup+encode)", fmt.Sprintf("%.0f", inproc),
		fmt.Sprintf("%.1f", float64(proc)/float64(time.Microsecond)))
	r.Set("inprocessPerSec", inproc)

	// Loopback UDP: blast a batch of requests and count responses.
	rate, perReq, err := loopbackThroughput(8000)
	if err != nil {
		r.Note("loopback UDP unavailable: %v", err)
	} else {
		r.AddRow("loopback UDP (request+response)", fmt.Sprintf("%.0f", rate),
			fmt.Sprintf("%.1f", float64(perReq)/float64(time.Microsecond)))
		r.Set("udpPerSec", rate)
	}
	r.Note("paper: 1587 requests/s (630 µs each) on the RS/6000; the shape claim is that a logger serving hundreds of clients is not unduly loaded")
	return r
}

func loopbackThroughput(requests int) (float64, time.Duration, error) {
	sec := logger.NewSecondary(logger.SecondaryConfig{
		Group:            perfGroup,
		RemcastThreshold: 1 << 30,
	})
	node, err := udp.Start(udp.Config{
		Listen: "127.0.0.1:0",
		Groups: map[wire.GroupID]string{perfGroup: "239.81.77.3:17792"},
	}, sec)
	if err != nil {
		return 0, 0, err
	}
	defer node.Close()
	client, err := net.ListenUDP("udp4", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		return 0, 0, err
	}
	defer client.Close()
	client.SetReadBuffer(4 << 20)
	serverAddr, _ := net.ResolveUDPAddr("udp4", node.Addr().String())
	payload := make([]byte, 128)
	data := wire.Packet{Type: wire.TypeData, Source: 1, Group: perfGroup, Seq: 1, Payload: payload}
	dbuf, _ := data.Marshal()
	client.WriteToUDP(dbuf, serverAddr)
	time.Sleep(20 * time.Millisecond)

	nack := wire.Packet{Type: wire.TypeNack, Source: 1, Group: perfGroup,
		Ranges: []wire.SeqRange{{From: 1, To: 1}}}
	nbuf, _ := nack.Marshal()

	// Window the requests to keep socket buffers from overflowing: send in
	// bursts, read replies between bursts.
	resp := make([]byte, 2048)
	received := 0
	start := time.Now()
	const burst = 64
	for sent := 0; sent < requests; {
		for b := 0; b < burst && sent < requests; b++ {
			if _, err := client.WriteToUDP(nbuf, serverAddr); err != nil {
				return 0, 0, err
			}
			sent++
		}
		for received < sent {
			client.SetReadDeadline(time.Now().Add(200 * time.Millisecond))
			if _, _, err := client.ReadFromUDP(resp); err != nil {
				break // lost some in a burst; move on
			}
			received++
		}
	}
	elapsed := time.Since(start)
	if received == 0 {
		return 0, 0, fmt.Errorf("no responses")
	}
	rate := float64(received) / elapsed.Seconds()
	return rate, elapsed / time.Duration(received), nil
}
