package experiments

import (
	"fmt"
	"time"

	"lbrm"
	"lbrm/internal/wire"
)

func init() {
	register("channel", "§7 extension: retransmission channel vs NACK recovery", RetransChannel)
}

// RetransChannel exercises the paper's first §7 future-work idea: "a
// separate multicast channel could be used for retransmissions. The
// sender would retransmit every packet on the retransmission channel n
// times, using an exponential backoff scheme... A client would recover a
// lost transmission by subscribing to the retransmission channel, rather
// than requesting the packet."
//
// Measured: for a site-wide loss, how many NACKs each scheme generates
// and who carries the replay traffic (only subscribed — i.e. recovering —
// sites receive channel replays).
func RetransChannel() *Result {
	const retransChan = lbrm.GroupID(2)
	r := NewResult("channel", "Retransmission channel (§7) vs NACK recovery, one site loses a packet",
		"mode", "NACKs sent", "channel replays", "replays heard by healthy site", "recovered")

	run := func(enabled bool) (nacks, replays uint64, heardElsewhere int, recovered bool) {
		scfg := lbrm.SenderConfig{Heartbeat: expHB}
		rcfg := lbrm.ReceiverConfig{NackDelay: 10 * time.Millisecond}
		if enabled {
			scfg.RetransChannel = retransChan
			scfg.RetransRepeats = 3
			rcfg.RetransChannel = retransChan
		}
		tb, err := lbrm.NewTestbed(lbrm.TestbedConfig{
			Seed: 95, Sites: 3, ReceiversPerSite: 4,
			Sender: scfg, Receiver: rcfg,
			// Keep the secondary quiet so the channel (or the receivers'
			// own NACKs) does the repairing.
			Secondary: lbrm.SecondaryConfig{NackDelay: 30 * time.Second},
		})
		if err != nil {
			panic(err)
		}
		tb.Send([]byte("warm"))
		tb.Run(500 * time.Millisecond)

		// Count channel replays crossing a healthy site's tail circuit.
		heard := 0
		tb.Net.SetTap(func(ev lbrm.TapEvent) {
			if ev.Link.Name() != "site3/tail-down" || ev.Dropped {
				return
			}
			var p wire.Packet
			if p.Unmarshal(ev.Data) == nil && p.Type == wire.TypeRetrans {
				heard++
			}
		})

		tb.Sites[0].Site.TailDown().SetLoss(&lbrm.FirstN{N: 1})
		tb.Send([]byte("lost-at-site1"))
		tb.Run(5 * time.Second)

		var rn uint64
		for _, s := range tb.Sites {
			for _, rc := range s.Receivers {
				rn += rc.Stats().NacksSent
			}
		}
		return rn, tb.Sender.Stats().ChannelReplays, heard, tb.EveryoneHas(2)
	}

	nacksOff, _, _, recOff := run(false)
	nacksOn, replaysOn, heardOn, recOn := run(true)
	r.AddRow("NACK recovery (baseline)", fmt.Sprintf("%d", nacksOff), "-", "-", fmt.Sprintf("%v", recOff))
	r.AddRow("retransmission channel (n=3)", fmt.Sprintf("%d", nacksOn),
		fmt.Sprintf("%d", replaysOn), fmt.Sprintf("%d", heardOn), fmt.Sprintf("%v", recOn))
	r.Set("nacksOff", float64(nacksOff))
	r.Set("nacksOn", float64(nacksOn))
	r.Set("replays", float64(replaysOn))
	r.Set("heardByHealthy", float64(heardOn))
	boolTo := func(b bool) float64 {
		if b {
			return 1
		}
		return 0
	}
	r.Set("recoveredOff", boolTo(recOff))
	r.Set("recoveredOn", boolTo(recOn))
	r.Note("channel replays are multicast but only subscribed (recovering) sites' tail circuits carry them; healthy sites never join the channel")
	r.Note("paper §7 caveat: \"fast multicast group subscription would be required\" — the simulator's join is instantaneous")
	return r
}
