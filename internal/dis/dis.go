// Package dis models the Distributed Interactive Simulation workload that
// motivates LBRM (§1, §2.1.2): large populations of terrain entities
// (rocks, trees, bridges — near-static but freshness-critical) and dynamic
// entities (tanks, planes — ~1 PDU/s with dead reckoning), loosely based on
// the STOW-97 planning numbers the paper cites.
//
// The package provides both closed-form scenario arithmetic (packets per
// second under fixed vs variable heartbeats, E12) and an event generator
// for driving scaled-down populations through the simulator.
package dis

import (
	"fmt"
	"math/rand"
	"time"

	"lbrm/internal/heartbeat"
	"lbrm/internal/vtime"
	"lbrm/internal/wire"
)

// EntityClass distinguishes workload populations.
type EntityClass int

const (
	// ClassTerrain is an aggregate terrain entity: state changes rarely
	// (minutes), but freshness must be ≤ MaxIT (250 ms).
	ClassTerrain EntityClass = iota
	// ClassDynamic is a vehicle/aircraft entity: dead-reckoned appearance
	// PDUs at ~1/s.
	ClassDynamic
)

// String names the class.
func (c EntityClass) String() string {
	switch c {
	case ClassTerrain:
		return "terrain"
	case ClassDynamic:
		return "dynamic"
	}
	return fmt.Sprintf("EntityClass(%d)", int(c))
}

// Population describes one entity class in a scenario.
type Population struct {
	Class EntityClass
	// Count is the number of entities.
	Count int
	// MeanInterval is the mean time between state updates per entity.
	MeanInterval time.Duration
	// Exponential draws update intervals from an exponential distribution
	// with the given mean (deterministic spacing otherwise).
	Exponential bool
	// PayloadBytes is the application payload per update PDU.
	PayloadBytes int
}

// Scenario is a DIS exercise workload.
type Scenario struct {
	Name        string
	Populations []Population
	// Heartbeat is the terrain entities' heartbeat parameterization.
	Heartbeat heartbeat.Params
}

// STOW97 is the paper's scenario (§2.1.2): 100,000 dynamic entities at one
// update/second and 100,000 aggregate terrain entities changing every two
// minutes, with the 1/4-second terrain freshness requirement.
func STOW97() Scenario {
	return Scenario{
		Name: "STOW-97",
		Populations: []Population{
			{Class: ClassDynamic, Count: 100_000, MeanInterval: time.Second, PayloadBytes: 144},
			{Class: ClassTerrain, Count: 100_000, MeanInterval: 2 * time.Minute, PayloadBytes: 128},
		},
		Heartbeat: heartbeat.DefaultParams,
	}
}

// DataRate returns the scenario's aggregate data packets per second
// (state updates only, no heartbeats).
func (s Scenario) DataRate() float64 {
	rate := 0.0
	for _, p := range s.Populations {
		rate += float64(p.Count) / p.MeanInterval.Seconds()
	}
	return rate
}

// HeartbeatRateFixed returns the aggregate heartbeat packets per second if
// every terrain entity ran the fixed scheme at HMin (the paper's 400,000
// packets/second figure).
func (s Scenario) HeartbeatRateFixed() float64 {
	rate := 0.0
	for _, p := range s.Populations {
		if p.Class != ClassTerrain {
			continue
		}
		rate += float64(p.Count) * heartbeat.RateFixed(s.Heartbeat, p.MeanInterval)
	}
	return rate
}

// HeartbeatRateVariable returns the aggregate heartbeat packets per second
// under the variable scheme.
func (s Scenario) HeartbeatRateVariable() float64 {
	rate := 0.0
	for _, p := range s.Populations {
		if p.Class != ClassTerrain {
			continue
		}
		rate += float64(p.Count) * heartbeat.RateVariable(s.Heartbeat, p.MeanInterval)
	}
	return rate
}

// TotalRateFixed returns data + fixed heartbeats packets/second.
func (s Scenario) TotalRateFixed() float64 {
	return s.DataRate() + s.HeartbeatRateFixed()
}

// TotalRateVariable returns data + variable heartbeats packets/second.
func (s Scenario) TotalRateVariable() float64 {
	return s.DataRate() + s.HeartbeatRateVariable()
}

// Entity is one generated entity instance.
type Entity struct {
	ID    wire.SourceID
	Class EntityClass
	pop   Population
}

// Generator drives a (usually scaled-down) scenario population against a
// clock, invoking Emit for every entity state update.
type Generator struct {
	// Emit receives each update (required).
	Emit func(e *Entity, payload []byte)
	// Clock schedules updates.
	Clock vtime.Clock
	// Rng drives exponential intervals and payload fill.
	Rng *rand.Rand

	entities []*Entity
	payload  []byte
	updates  uint64
	stopped  bool
}

// NewGenerator builds entities for the scenario scaled by 1/scaleDiv
// (scaleDiv 1 = full population — fine for arithmetic, enormous for
// simulation).
func NewGenerator(s Scenario, scaleDiv int, clock vtime.Clock, rng *rand.Rand, emit func(*Entity, []byte)) *Generator {
	if scaleDiv < 1 {
		scaleDiv = 1
	}
	g := &Generator{Emit: emit, Clock: clock, Rng: rng}
	var id wire.SourceID = 1
	for _, p := range s.Populations {
		n := p.Count / scaleDiv
		if n == 0 && p.Count > 0 {
			n = 1
		}
		for i := 0; i < n; i++ {
			g.entities = append(g.entities, &Entity{ID: id, Class: p.Class, pop: p})
			id++
		}
	}
	return g
}

// Entities returns the generated population.
func (g *Generator) Entities() []*Entity { return g.entities }

// Updates returns the number of updates emitted so far.
func (g *Generator) Updates() uint64 { return g.updates }

// Start schedules every entity's first update, de-phased uniformly over
// its interval so the population doesn't beat in lockstep.
func (g *Generator) Start() {
	for _, e := range g.entities {
		first := time.Duration(g.Rng.Float64() * float64(e.pop.MeanInterval))
		g.scheduleNext(e, first)
	}
}

// Stop halts further updates (already-scheduled timers fire but emit
// nothing).
func (g *Generator) Stop() { g.stopped = true }

func (g *Generator) scheduleNext(e *Entity, d time.Duration) {
	g.Clock.AfterFunc(d, func() {
		if g.stopped {
			return
		}
		g.updates++
		g.Emit(e, g.payloadFor(e))
		g.scheduleNext(e, g.interval(e))
	})
}

func (g *Generator) interval(e *Entity) time.Duration {
	if e.pop.Exponential {
		return time.Duration(g.Rng.ExpFloat64() * float64(e.pop.MeanInterval))
	}
	return e.pop.MeanInterval
}

func (g *Generator) payloadFor(e *Entity) []byte {
	n := e.pop.PayloadBytes
	if n <= 0 {
		n = 64
	}
	if cap(g.payload) < n {
		g.payload = make([]byte, n)
	}
	p := g.payload[:n]
	g.Rng.Read(p)
	return p
}
