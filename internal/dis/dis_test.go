package dis

import (
	"math"
	"math/rand"
	"testing"
	"time"

	"lbrm/internal/vtime"
	"lbrm/internal/wire"
)

func TestSTOW97PaperNumbers(t *testing.T) {
	s := STOW97()
	// §1: dynamic entities generate one packet per second on average →
	// 100,000 pps; terrain updates are negligible by comparison.
	if got := s.DataRate(); got < 100_000 || got > 101_000 {
		t.Fatalf("DataRate = %.0f, want ≈100,833", got)
	}
	// §2.1.2: fixed heartbeats at 4/s for 100,000 terrain entities →
	// ~400,000 pps.
	fixed := s.HeartbeatRateFixed()
	if math.Abs(fixed-399_167) > 2000 {
		t.Fatalf("HeartbeatRateFixed = %.0f, want ≈400,000", fixed)
	}
	// Terrain heartbeats ≈ 4/5 of the total fixed-scheme load (§2.1.2).
	frac := fixed / s.TotalRateFixed()
	if frac < 0.75 || frac > 0.85 {
		t.Fatalf("terrain heartbeat fraction = %.2f, want ≈0.8", frac)
	}
	// The variable scheme cuts heartbeat bandwidth ~50x.
	ratio := fixed / s.HeartbeatRateVariable()
	if ratio < 45 || ratio > 60 {
		t.Fatalf("fixed/variable heartbeat ratio = %.1f, want ≈53", ratio)
	}
}

func TestGeneratorScalesPopulation(t *testing.T) {
	clk := vtime.NewSim(time.Unix(0, 0).UTC())
	rng := rand.New(rand.NewSource(1))
	g := NewGenerator(STOW97(), 10_000, clk, rng, func(*Entity, []byte) {})
	// 100k/10k = 10 of each class.
	if len(g.Entities()) != 20 {
		t.Fatalf("entities = %d, want 20", len(g.Entities()))
	}
	classes := map[EntityClass]int{}
	for _, e := range g.Entities() {
		classes[e.Class]++
	}
	if classes[ClassTerrain] != 10 || classes[ClassDynamic] != 10 {
		t.Fatalf("class split = %v", classes)
	}
}

func TestGeneratorTinyScaleKeepsOnePerClass(t *testing.T) {
	clk := vtime.NewSim(time.Unix(0, 0).UTC())
	g := NewGenerator(STOW97(), 1_000_000, clk, rand.New(rand.NewSource(1)), func(*Entity, []byte) {})
	if len(g.Entities()) != 2 {
		t.Fatalf("entities = %d, want 2 (one per class)", len(g.Entities()))
	}
}

func TestGeneratorUpdateRate(t *testing.T) {
	clk := vtime.NewSim(time.Unix(0, 0).UTC())
	rng := rand.New(rand.NewSource(2))
	var byClass [2]int
	g := NewGenerator(STOW97(), 10_000, clk, rng, func(e *Entity, p []byte) {
		byClass[e.Class]++
		if len(p) == 0 {
			t.Error("empty payload")
		}
	})
	g.Start()
	clk.RunFor(60 * time.Second)
	g.Stop()
	// 10 dynamic at 1/s over 60s ≈ 600; 10 terrain at 1/120s ≈ 5.
	if byClass[ClassDynamic] < 550 || byClass[ClassDynamic] > 650 {
		t.Fatalf("dynamic updates = %d, want ≈600", byClass[ClassDynamic])
	}
	if byClass[ClassTerrain] < 2 || byClass[ClassTerrain] > 12 {
		t.Fatalf("terrain updates = %d, want ≈5", byClass[ClassTerrain])
	}
	if g.Updates() != uint64(byClass[0]+byClass[1]) {
		t.Fatalf("Updates() = %d, want %d", g.Updates(), byClass[0]+byClass[1])
	}
}

func TestGeneratorExponentialIntervals(t *testing.T) {
	clk := vtime.NewSim(time.Unix(0, 0).UTC())
	rng := rand.New(rand.NewSource(3))
	s := Scenario{
		Name: "exp",
		Populations: []Population{{
			Class: ClassDynamic, Count: 1, MeanInterval: time.Second,
			Exponential: true, PayloadBytes: 8,
		}},
	}
	var times []time.Time
	g := NewGenerator(s, 1, clk, rng, func(*Entity, []byte) {
		times = append(times, clk.Now())
	})
	g.Start()
	clk.RunFor(2000 * time.Second)
	g.Stop()
	if len(times) < 1500 || len(times) > 2500 {
		t.Fatalf("updates = %d, want ≈2000", len(times))
	}
	// Coefficient of variation of an exponential is 1; deterministic would
	// be ~0.
	var gaps []float64
	for i := 1; i < len(times); i++ {
		gaps = append(gaps, times[i].Sub(times[i-1]).Seconds())
	}
	mean, varsum := 0.0, 0.0
	for _, x := range gaps {
		mean += x
	}
	mean /= float64(len(gaps))
	for _, x := range gaps {
		varsum += (x - mean) * (x - mean)
	}
	cv := math.Sqrt(varsum/float64(len(gaps))) / mean
	if cv < 0.7 || cv > 1.3 {
		t.Fatalf("interval CV = %.2f, want ≈1 (exponential)", cv)
	}
}

func TestEntityIDsUnique(t *testing.T) {
	clk := vtime.NewSim(time.Unix(0, 0).UTC())
	g := NewGenerator(STOW97(), 1000, clk, rand.New(rand.NewSource(1)), func(*Entity, []byte) {})
	seen := map[wire.SourceID]bool{}
	for _, e := range g.Entities() {
		if seen[e.ID] {
			t.Fatalf("duplicate entity ID %d", e.ID)
		}
		seen[e.ID] = true
	}
}

func TestClassString(t *testing.T) {
	if ClassTerrain.String() != "terrain" || ClassDynamic.String() != "dynamic" {
		t.Fatal("class names wrong")
	}
	if EntityClass(9).String() == "" {
		t.Fatal("unknown class empty")
	}
}
