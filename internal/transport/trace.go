package transport

import (
	"time"

	"lbrm/internal/wire"
)

// Direction classifies a traced transmission.
type Direction int

const (
	// DirIn is a received datagram.
	DirIn Direction = iota
	// DirOut is a unicast transmission.
	DirOut
	// DirMcastOut is a multicast transmission.
	DirMcastOut
)

// String names the direction.
func (d Direction) String() string {
	switch d {
	case DirIn:
		return "recv"
	case DirOut:
		return "send"
	case DirMcastOut:
		return "mcast"
	}
	return "?"
}

// TraceEvent describes one datagram crossing a traced node's boundary.
// Data is only valid during the callback.
type TraceEvent struct {
	At    time.Time
	Dir   Direction
	Peer  Addr         // sender (DirIn) or destination (DirOut); nil for multicast
	Group wire.GroupID // multicast group (DirMcastOut only)
	TTL   int          // multicast TTL (DirMcastOut only)
	Data  []byte
}

// Trace wraps a handler so that every datagram it receives or transmits is
// reported to fn, without the handler knowing. It composes with any
// binding (simulator or UDP) because it interposes on the Env.
func Trace(h Handler, fn func(TraceEvent)) Handler {
	return &traceHandler{inner: h, fn: fn}
}

type traceHandler struct {
	inner Handler
	fn    func(TraceEvent)
	env   Env
}

func (t *traceHandler) Start(env Env) {
	t.env = env
	t.inner.Start(&traceEnv{Env: env, fn: t.fn})
}

func (t *traceHandler) Recv(from Addr, data []byte) {
	t.fn(TraceEvent{At: t.env.Now(), Dir: DirIn, Peer: from, Data: data})
	t.inner.Recv(from, data)
}

type traceEnv struct {
	Env
	fn func(TraceEvent)
}

func (e *traceEnv) Send(to Addr, data []byte) error {
	e.fn(TraceEvent{At: e.Now(), Dir: DirOut, Peer: to, Data: data})
	return e.Env.Send(to, data)
}

func (e *traceEnv) Multicast(g wire.GroupID, ttl int, data []byte) error {
	e.fn(TraceEvent{At: e.Now(), Dir: DirMcastOut, Group: g, TTL: ttl, Data: data})
	return e.Env.Multicast(g, ttl, data)
}

// The embedded Env provides the remaining methods.
var _ Env = (*traceEnv)(nil)
