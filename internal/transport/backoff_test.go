package transport

import (
	"math/rand"
	"testing"
	"time"
)

func TestBackoffGrowsAndCaps(t *testing.T) {
	b := Backoff{Base: 100 * time.Millisecond, Cap: 800 * time.Millisecond, Jitter: -1}
	want := []time.Duration{
		100 * time.Millisecond, 200 * time.Millisecond, 400 * time.Millisecond,
		800 * time.Millisecond, 800 * time.Millisecond, 800 * time.Millisecond,
	}
	for i, w := range want {
		if got := b.Interval(i, nil); got != w {
			t.Fatalf("attempt %d: got %v, want %v", i, got, w)
		}
	}
}

func TestBackoffDefaultCap(t *testing.T) {
	b := Backoff{Base: 50 * time.Millisecond, Jitter: -1}
	if got, want := b.Interval(10, nil), 16*50*time.Millisecond; got != want {
		t.Fatalf("default cap: got %v, want %v", got, want)
	}
}

func TestBackoffOverflowSaturates(t *testing.T) {
	b := Backoff{Base: time.Hour, Cap: 1<<62 - 1, Jitter: -1}
	if got := b.Interval(100, nil); got <= 0 {
		t.Fatalf("overflowed to %v", got)
	}
}

func TestBackoffJitterBounds(t *testing.T) {
	b := Backoff{Base: 100 * time.Millisecond, Cap: time.Hour}
	rng := rand.New(rand.NewSource(1))
	for attempt := 0; attempt < 5; attempt++ {
		nominal := b.Interval(attempt, nil)
		for i := 0; i < 200; i++ {
			d := b.Interval(attempt, rng)
			lo := time.Duration(float64(nominal) * 0.75)
			hi := time.Duration(float64(nominal) * 1.25)
			if d < lo || d > hi {
				t.Fatalf("attempt %d: interval %v outside [%v, %v]", attempt, d, lo, hi)
			}
		}
	}
}

// TestBackoffSuccessiveIntervalsGrow checks the satellite requirement
// directly: realized (jittered) retry intervals still grow attempt over
// attempt, because doubling dominates the ±25% jitter band.
func TestBackoffSuccessiveIntervalsGrow(t *testing.T) {
	b := Backoff{Base: 250 * time.Millisecond, Cap: time.Minute}
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 100; trial++ {
		prev := b.Interval(0, rng)
		for attempt := 1; attempt < 6; attempt++ {
			d := b.Interval(attempt, rng)
			if d <= prev {
				t.Fatalf("trial %d attempt %d: interval %v did not grow past %v", trial, attempt, d, prev)
			}
			prev = d
		}
	}
}

// TestBackoffDesynchronizesNodes checks that two nodes with distinct seeds
// do not share retry instants: over a simulated episode the cumulative fire
// times diverge.
func TestBackoffDesynchronizesNodes(t *testing.T) {
	b := Backoff{Base: 250 * time.Millisecond, Cap: 8 * time.Second}
	a := rand.New(rand.NewSource(1))
	c := rand.New(rand.NewSource(2))
	same := 0
	var ta, tc time.Duration
	for attempt := 0; attempt < 8; attempt++ {
		ia, ic := b.Interval(attempt, a), b.Interval(attempt, c)
		ta += ia
		tc += ic
		if ta == tc {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("nodes fired at identical cumulative instants %d times", same)
	}
}
