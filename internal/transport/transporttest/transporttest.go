// Package transporttest provides a fake transport.Env for unit-testing
// protocol handlers in isolation: sent packets are captured instead of
// delivered, and time is a vtime.Sim the test advances by hand.
package transporttest

import (
	"fmt"
	"math/rand"
	"strings"
	"time"

	"lbrm/internal/transport"
	"lbrm/internal/vtime"
	"lbrm/internal/wire"
)

// Addr is a fake transport address.
type Addr string

// Network implements transport.Addr.
func (Addr) Network() string { return "fake" }

// String implements transport.Addr.
func (a Addr) String() string { return "fake:" + string(a) }

// ParseAddr inverts Addr.String.
func ParseAddr(s string) (Addr, error) {
	rest, ok := strings.CutPrefix(s, "fake:")
	if !ok {
		return "", fmt.Errorf("transporttest: bad address %q", s)
	}
	return Addr(rest), nil
}

// Sent is a captured unicast transmission.
type Sent struct {
	To   transport.Addr
	Data []byte
}

// Multicast is a captured multicast transmission.
type Multicast struct {
	Group wire.GroupID
	TTL   int
	Data  []byte
}

// Env is the fake environment.
//
// Capture storage is double-buffered: TakeSents/TakeMcasts swap the live
// slice with the previously returned one, and Send/Multicast reuse the
// retired entries' Data buffers. Benchmarks that drain captures every
// iteration therefore settle into a zero-allocation steady state. The
// corollary: a slice returned by Take* (and the Data it holds) is valid
// only until the *second* following Take* call — copy what must outlive
// that.
type Env struct {
	Clock  *vtime.Sim
	addr   Addr
	rng    *rand.Rand
	Sents  []Sent
	Mcasts []Multicast
	Joined map[wire.GroupID]bool

	prevSents  []Sent
	prevMcasts []Multicast
}

// NewEnv returns a fake env named name with its own simulated clock.
func NewEnv(name string) *Env {
	return &Env{
		Clock:  vtime.NewSim(time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)),
		addr:   Addr(name),
		rng:    rand.New(rand.NewSource(1)),
		Joined: make(map[wire.GroupID]bool),
	}
}

// Now implements transport.Env.
func (e *Env) Now() time.Time { return e.Clock.Now() }

// AfterFunc implements transport.Env.
func (e *Env) AfterFunc(d time.Duration, fn func()) vtime.Timer {
	return e.Clock.AfterFunc(d, fn)
}

// Send implements transport.Env, capturing the datagram. Within the
// slice's capacity the retired entry's Data buffer is reused.
func (e *Env) Send(to transport.Addr, data []byte) error {
	n := len(e.Sents)
	if n < cap(e.Sents) {
		e.Sents = e.Sents[:n+1]
		e.Sents[n].To = to
		e.Sents[n].Data = append(e.Sents[n].Data[:0], data...)
		return nil
	}
	e.Sents = append(e.Sents, Sent{To: to, Data: append([]byte(nil), data...)})
	return nil
}

// Multicast implements transport.Env, capturing the datagram. Within the
// slice's capacity the retired entry's Data buffer is reused.
func (e *Env) Multicast(g wire.GroupID, ttl int, data []byte) error {
	n := len(e.Mcasts)
	if n < cap(e.Mcasts) {
		e.Mcasts = e.Mcasts[:n+1]
		e.Mcasts[n].Group = g
		e.Mcasts[n].TTL = ttl
		e.Mcasts[n].Data = append(e.Mcasts[n].Data[:0], data...)
		return nil
	}
	e.Mcasts = append(e.Mcasts, Multicast{Group: g, TTL: ttl, Data: append([]byte(nil), data...)})
	return nil
}

// Join implements transport.Env.
func (e *Env) Join(g wire.GroupID) error {
	e.Joined[g] = true
	return nil
}

// Leave implements transport.Env.
func (e *Env) Leave(g wire.GroupID) error {
	delete(e.Joined, g)
	return nil
}

// LocalAddr implements transport.Env.
func (e *Env) LocalAddr() transport.Addr { return e.addr }

// ParseAddr implements transport.Env.
func (e *Env) ParseAddr(s string) (transport.Addr, error) { return ParseAddr(s) }

// Rand implements transport.Env.
func (e *Env) Rand() *rand.Rand { return e.rng }

// Advance runs the clock forward by d.
func (e *Env) Advance(d time.Duration) { e.Clock.RunFor(d) }

// TakeSents drains and returns captured unicasts. The result is valid
// until the second-next TakeSents (double-buffered storage; see Env).
func (e *Env) TakeSents() []Sent {
	s := e.Sents
	e.Sents, e.prevSents = e.prevSents[:0], s
	return s
}

// TakeMcasts drains and returns captured multicasts. The result is valid
// until the second-next TakeMcasts (double-buffered storage; see Env).
func (e *Env) TakeMcasts() []Multicast {
	m := e.Mcasts
	e.Mcasts, e.prevMcasts = e.prevMcasts[:0], m
	return m
}

// SentPackets decodes all captured unicasts (panicking on malformed ones,
// which indicates a handler bug).
func (e *Env) SentPackets() []wire.Packet {
	out := make([]wire.Packet, len(e.Sents))
	for i, s := range e.Sents {
		if err := out[i].Unmarshal(s.Data); err != nil {
			panic(fmt.Sprintf("transporttest: handler sent malformed packet: %v", err))
		}
	}
	return out
}

// McastPackets decodes all captured multicasts.
func (e *Env) McastPackets() []wire.Packet {
	out := make([]wire.Packet, len(e.Mcasts))
	for i, m := range e.Mcasts {
		if err := out[i].Unmarshal(m.Data); err != nil {
			panic(fmt.Sprintf("transporttest: handler multicast malformed packet: %v", err))
		}
	}
	return out
}
