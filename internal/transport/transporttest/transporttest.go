// Package transporttest provides a fake transport.Env for unit-testing
// protocol handlers in isolation: sent packets are captured instead of
// delivered, and time is a vtime.Sim the test advances by hand.
package transporttest

import (
	"fmt"
	"math/rand"
	"strings"
	"time"

	"lbrm/internal/transport"
	"lbrm/internal/vtime"
	"lbrm/internal/wire"
)

// Addr is a fake transport address.
type Addr string

// Network implements transport.Addr.
func (Addr) Network() string { return "fake" }

// String implements transport.Addr.
func (a Addr) String() string { return "fake:" + string(a) }

// ParseAddr inverts Addr.String.
func ParseAddr(s string) (Addr, error) {
	rest, ok := strings.CutPrefix(s, "fake:")
	if !ok {
		return "", fmt.Errorf("transporttest: bad address %q", s)
	}
	return Addr(rest), nil
}

// Sent is a captured unicast transmission.
type Sent struct {
	To   transport.Addr
	Data []byte
}

// Multicast is a captured multicast transmission.
type Multicast struct {
	Group wire.GroupID
	TTL   int
	Data  []byte
}

// Env is the fake environment.
type Env struct {
	Clock  *vtime.Sim
	addr   Addr
	rng    *rand.Rand
	Sents  []Sent
	Mcasts []Multicast
	Joined map[wire.GroupID]bool
}

// NewEnv returns a fake env named name with its own simulated clock.
func NewEnv(name string) *Env {
	return &Env{
		Clock:  vtime.NewSim(time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)),
		addr:   Addr(name),
		rng:    rand.New(rand.NewSource(1)),
		Joined: make(map[wire.GroupID]bool),
	}
}

// Now implements transport.Env.
func (e *Env) Now() time.Time { return e.Clock.Now() }

// AfterFunc implements transport.Env.
func (e *Env) AfterFunc(d time.Duration, fn func()) vtime.Timer {
	return e.Clock.AfterFunc(d, fn)
}

// Send implements transport.Env, capturing the datagram.
func (e *Env) Send(to transport.Addr, data []byte) error {
	e.Sents = append(e.Sents, Sent{To: to, Data: append([]byte(nil), data...)})
	return nil
}

// Multicast implements transport.Env, capturing the datagram.
func (e *Env) Multicast(g wire.GroupID, ttl int, data []byte) error {
	e.Mcasts = append(e.Mcasts, Multicast{Group: g, TTL: ttl, Data: append([]byte(nil), data...)})
	return nil
}

// Join implements transport.Env.
func (e *Env) Join(g wire.GroupID) error {
	e.Joined[g] = true
	return nil
}

// Leave implements transport.Env.
func (e *Env) Leave(g wire.GroupID) error {
	delete(e.Joined, g)
	return nil
}

// LocalAddr implements transport.Env.
func (e *Env) LocalAddr() transport.Addr { return e.addr }

// ParseAddr implements transport.Env.
func (e *Env) ParseAddr(s string) (transport.Addr, error) { return ParseAddr(s) }

// Rand implements transport.Env.
func (e *Env) Rand() *rand.Rand { return e.rng }

// Advance runs the clock forward by d.
func (e *Env) Advance(d time.Duration) { e.Clock.RunFor(d) }

// TakeSents drains and returns captured unicasts.
func (e *Env) TakeSents() []Sent {
	s := e.Sents
	e.Sents = nil
	return s
}

// TakeMcasts drains and returns captured multicasts.
func (e *Env) TakeMcasts() []Multicast {
	m := e.Mcasts
	e.Mcasts = nil
	return m
}

// SentPackets decodes all captured unicasts (panicking on malformed ones,
// which indicates a handler bug).
func (e *Env) SentPackets() []wire.Packet {
	out := make([]wire.Packet, len(e.Sents))
	for i, s := range e.Sents {
		if err := out[i].Unmarshal(s.Data); err != nil {
			panic(fmt.Sprintf("transporttest: handler sent malformed packet: %v", err))
		}
	}
	return out
}

// McastPackets decodes all captured multicasts.
func (e *Env) McastPackets() []wire.Packet {
	out := make([]wire.Packet, len(e.Mcasts))
	for i, m := range e.Mcasts {
		if err := out[i].Unmarshal(m.Data); err != nil {
			panic(fmt.Sprintf("transporttest: handler multicast malformed packet: %v", err))
		}
	}
	return out
}
