package transport

import (
	"math/rand"
	"time"
)

// Backoff computes jittered exponential retry intervals. LBRM's recovery
// machinery re-fires NACKs and sync probes on timers; with a fixed period,
// every node that lost the same packets (correlated loss is the norm on a
// shared tail circuit, §2.2.2) retries at the same instant forever — a
// healed partition is greeted by a synchronized retry storm. Backoff breaks
// both pathologies: the interval doubles per attempt (bounded pressure on a
// struggling peer) and each interval is jittered ±25% from the node's own
// random source (desynchronization across nodes).
//
// The zero value of Jitter means the default ±25%; Cap defaults to 16×Base.
type Backoff struct {
	// Base is the interval before the first retry (attempt 0).
	Base time.Duration
	// Cap bounds the un-jittered interval (default 16×Base).
	Cap time.Duration
	// Jitter is the relative jitter half-width (default 0.25 = ±25%).
	Jitter float64
}

// Interval returns the delay before retry number attempt (0-based): Base
// doubled per attempt, saturating at Cap, jittered uniformly in
// [1-Jitter, 1+Jitter) using rng. A nil rng yields the un-jittered value
// (deterministic, for tests).
func (b Backoff) Interval(attempt int, rng *rand.Rand) time.Duration {
	base := b.Base
	if base <= 0 {
		return 0
	}
	cap := b.Cap
	if cap <= 0 {
		cap = 16 * base
	}
	d := base
	for i := 0; i < attempt; i++ {
		d *= 2
		if d >= cap || d <= 0 { // d <= 0 catches overflow
			d = cap
			break
		}
	}
	if d > cap {
		d = cap
	}
	j := b.Jitter
	if j == 0 {
		j = 0.25
	}
	if rng == nil || j < 0 {
		return d
	}
	// factor ∈ [1-j, 1+j)
	factor := 1 - j + 2*j*rng.Float64()
	return time.Duration(float64(d) * factor)
}
