package transport

import (
	"math/rand"
	"testing"
	"time"
)

// TestBackoffEnvelopeProperty is the satellite property test over random
// parameterizations: for any Base/Cap/Jitter and attempt number, the
// nominal interval is exactly min(Base·2^attempt, cap) and every jittered
// draw stays inside the [1-j, 1+j) envelope around it. The receiver's
// per-tier escalation bound (TestReceiverEscalationTimeBounded in
// internal/core) builds directly on this envelope.
func TestBackoffEnvelopeProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 500; trial++ {
		base := time.Duration(1+rng.Intn(1000)) * time.Millisecond
		capD := base * time.Duration(1+rng.Intn(32))
		j := []float64{0, 0.1, 0.25, 0.5}[rng.Intn(4)]
		attempt := rng.Intn(12)
		b := Backoff{Base: base, Cap: capD, Jitter: j}

		want := base
		for i := 0; i < attempt && want < capD; i++ {
			want *= 2
		}
		if want > capD {
			want = capD
		}
		nominal := b.Interval(attempt, nil)
		if nominal != want {
			t.Fatalf("trial %d: nominal Interval(%d) = %v, want min(%v·2^%d, %v) = %v",
				trial, attempt, nominal, base, attempt, capD, want)
		}

		eff := j
		if eff == 0 {
			eff = 0.25 // zero value means the default ±25%
		}
		lo := time.Duration(float64(nominal) * (1 - eff))
		hi := time.Duration(float64(nominal) * (1 + eff))
		for i := 0; i < 50; i++ {
			d := b.Interval(attempt, rng)
			if d < lo || d > hi {
				t.Fatalf("trial %d: jittered interval %v outside envelope [%v, %v] (nominal %v, jitter ±%v)",
					trial, d, lo, hi, nominal, eff)
			}
		}
	}
}
