//go:build !linux || !(amd64 || arm64)

package udp

// Portable fallback: no sendmmsg/recvmmsg here, so Node.batched is always
// false and the single-packet paths in udp.go carry all traffic. The stubs
// below exist only to satisfy references from the common code; none is
// reachable when batchSupported reports false.

import (
	"net"
	"net/netip"
)

// batchSupported reports that the mmsg datapath is unavailable.
func batchSupported() bool { return false }

// egress is never instantiated on this platform.
type egress struct {
	n int
}

func (n *Node) startBatch() error { return nil }

func (n *Node) flushOnExit() {}

func (n *Node) flushLocked() {}

func (n *Node) egEnqueue(dst netip.AddrPort, ttl int, data []byte) error {
	panic("udp: egEnqueue without batch support")
}

func (n *Node) readLoopBatch(conn *net.UDPConn) {
	panic("udp: readLoopBatch without batch support")
}
