// Package udp binds LBRM protocol handlers to real UDP multicast using
// only the standard library. Each Node owns one unicast socket (for
// NACKs, ACKs, retransmissions and other point-to-point traffic) plus one
// receive socket per joined multicast group. All handler callbacks —
// packet deliveries and timers — are serialized under a per-node mutex,
// giving the handler the same single-threaded world the simulator provides.
//
// On Linux (amd64/arm64) the datapath is batched: egress coalesces
// datagrams produced inside one handler critical section into a ring and
// ships them with a single sendmmsg(2); ingress drains the socket with
// recvmmsg(2) into a pooled buffer batch and dispatches the whole batch
// under one mutex acquisition. Everywhere else (and under ForceFallback)
// an auto-detected portable single-packet path is used, itself
// allocation-free via the netip fast paths. See DESIGN.md §11 for the
// sharding + batching contract.
//
// Multicast TTL scoping uses the transport scope constants directly as IP
// TTL values (site ≈ 15, global ≈ 127), matching the paper's use of the
// TTL field to confine secondary-logger re-multicasts to a site.
package udp

import (
	"errors"
	"fmt"
	"math/rand"
	"net"
	"net/netip"
	"os"
	"sync"
	"syscall"
	"time"

	"lbrm/internal/obs"
	"lbrm/internal/transport"
	"lbrm/internal/vtime"
	"lbrm/internal/wire"
)

// Addr is a UDP transport address.
type Addr struct{ HostPort string }

// Network implements transport.Addr.
func (Addr) Network() string { return "udp" }

// String implements transport.Addr.
func (a Addr) String() string { return a.HostPort }

// ParseAddr validates and normalizes a "host:port" string.
func ParseAddr(s string) (Addr, error) {
	ua, err := net.ResolveUDPAddr("udp", s)
	if err != nil {
		return Addr{}, fmt.Errorf("udp: bad address %q: %w", s, err)
	}
	return Addr{HostPort: ua.String()}, nil
}

// Batch sizing for the mmsg rings.
const (
	// DefaultBatch is the egress/ingress ring size used when Config.Batch
	// is zero and batched I/O is available.
	DefaultBatch = 32
	// MaxBatch caps the ring size (sendmmsg accepts up to 1021 messages,
	// but past a few dozen the syscall amortization is already total).
	MaxBatch = 256
)

// Config configures a UDP-bound protocol node.
type Config struct {
	// Listen is the unicast bind address (default "0.0.0.0:0").
	Listen string
	// Groups maps LBRM group IDs to multicast "ip:port" endpoints.
	Groups map[wire.GroupID]string
	// Interface optionally names the network interface for multicast.
	Interface string
	// ReadBuffer sizes the receive buffer per datagram (default 9000).
	ReadBuffer int
	// Seed seeds the node's random source (0 = time-based).
	Seed int64
	// Batch is the maximum number of datagrams coalesced per
	// sendmmsg/recvmmsg call (default DefaultBatch, capped at MaxBatch).
	// 1 disables batching. Ignored where batched I/O is unsupported.
	Batch int
	// FlushInterval bounds how long a coalesced egress datagram may wait
	// before hitting the wire. 0 (the default) flushes at the end of
	// every handler critical section, adding no latency; a positive
	// interval trades bounded latency for larger batches, with the flush
	// deadline driven by a vtime timer.
	FlushInterval time.Duration
	// ForceFallback forces the portable single-packet socket path even
	// where batched I/O is available (fallback-seam tests, latency
	// comparisons). The LBRM_FORCE_FALLBACK environment variable (any
	// non-empty value) forces it process-wide, so CI can run the whole
	// suite through the portable path on a platform whose native path
	// is batched.
	ForceFallback bool
	// MetricsPrefix prefixes this node's metric names (default "udp").
	// Sharded deployments give each shard its own prefix.
	MetricsPrefix string
	// Obs receives transport-level rx/tx metrics (nil = uninstrumented).
	Obs *obs.Sink
}

// Node runs one transport.Handler over real UDP.
type Node struct {
	mu      sync.Mutex
	cfg     Config
	handler transport.Handler
	ucast   *net.UDPConn
	iface   *net.Interface
	groups  map[wire.GroupID]*net.UDPConn
	rng     *rand.Rand
	closed  bool
	wg      sync.WaitGroup
	lastTTL int

	// batched selects the mmsg datapath; eg/ucastRaw are its state
	// (see batch_linux.go; stubs elsewhere keep batched false).
	batched  bool
	eg       *egress
	ucastRaw syscall.RawConn

	// Datapath caches (all guarded by mu; see DESIGN.md "Datapath
	// allocation contract"). Peer membership is small and stable in a
	// simulation exercise, so these grow to the peer set and stay there.
	peerAddrs  map[string]netip.AddrPort         // unicast destinations, by HostPort
	groupAddrs map[wire.GroupID]*net.UDPAddr     // resolved once at Start (joins)
	groupPorts map[wire.GroupID]netip.AddrPort   // resolved once at Start (sends)
	fromCache  map[netip.AddrPort]transport.Addr // interned datagram sources
	bufPool    sync.Pool                         // *[]byte receive buffers

	// mx caches the preregistered transport metric handles (nil-safe).
	mx nodeMetrics
}

// nodeMetrics counts datagrams through the socket layer, below the
// protocol components' per-class accounting.
type nodeMetrics struct {
	rxPkts  *obs.Counter
	rxBytes *obs.Counter
	txPkts  *obs.Counter
	txBytes *obs.Counter
	// Batched-datapath instrumentation: datagrams per syscall on each
	// side, deadline-driven flushes, and transmit errors (which the
	// batched path reports asynchronously).
	txBatch         *obs.Histogram
	rxBatch         *obs.Histogram
	txFlushDeadline *obs.Counter
	txErrors        *obs.Counter
	// txGSOSegs counts datagrams that left folded inside a UDP_SEGMENT
	// super-message (zero on kernels without UDP GSO and on the
	// fallback path).
	txGSOSegs *obs.Counter
}

// batchBounds buckets the datagrams-per-syscall histograms.
var batchBounds = []uint64{1, 2, 4, 8, 16, 32, 64, 128}

func newNodeMetrics(sink *obs.Sink, prefix string) nodeMetrics {
	return nodeMetrics{
		rxPkts:          sink.Counter(prefix + ".rx_pkts"),
		rxBytes:         sink.Counter(prefix + ".rx_bytes"),
		txPkts:          sink.Counter(prefix + ".tx_pkts"),
		txBytes:         sink.Counter(prefix + ".tx_bytes"),
		txBatch:         sink.Histogram(prefix+".tx_batch", batchBounds),
		rxBatch:         sink.Histogram(prefix+".rx_batch", batchBounds),
		txFlushDeadline: sink.Counter(prefix + ".tx_flush_deadline"),
		txErrors:        sink.Counter(prefix + ".tx_errors"),
		txGSOSegs:       sink.Counter(prefix + ".tx_gso_segs"),
	}
}

// Start binds sockets and runs the handler. Close releases everything.
func Start(cfg Config, h transport.Handler) (*Node, error) {
	if cfg.Listen == "" {
		cfg.Listen = "0.0.0.0:0"
	}
	if cfg.ReadBuffer == 0 {
		cfg.ReadBuffer = 9000
	}
	if cfg.Batch == 0 {
		cfg.Batch = DefaultBatch
	}
	if cfg.Batch < 1 {
		cfg.Batch = 1
	}
	if cfg.Batch > MaxBatch {
		cfg.Batch = MaxBatch
	}
	if cfg.MetricsPrefix == "" {
		cfg.MetricsPrefix = "udp"
	}
	la, err := net.ResolveUDPAddr("udp4", cfg.Listen)
	if err != nil {
		return nil, fmt.Errorf("udp: resolve listen %q: %w", cfg.Listen, err)
	}
	uc, err := net.ListenUDP("udp4", la)
	if err != nil {
		return nil, fmt.Errorf("udp: listen: %w", err)
	}
	n := &Node{
		cfg:     cfg,
		handler: h,
		ucast:   uc,
		groups:  make(map[wire.GroupID]*net.UDPConn),
		lastTTL: -1,
		batched: batchSupported() && !cfg.ForceFallback &&
			os.Getenv("LBRM_FORCE_FALLBACK") == "" && cfg.Batch > 1,
		peerAddrs:  make(map[string]netip.AddrPort),
		groupAddrs: make(map[wire.GroupID]*net.UDPAddr, len(cfg.Groups)),
		groupPorts: make(map[wire.GroupID]netip.AddrPort, len(cfg.Groups)),
		fromCache:  make(map[netip.AddrPort]transport.Addr),
		mx:         newNodeMetrics(cfg.Obs, cfg.MetricsPrefix),
	}
	n.bufPool.New = func() any {
		b := make([]byte, cfg.ReadBuffer)
		return &b
	}
	for g, spec := range cfg.Groups {
		ga, err := net.ResolveUDPAddr("udp4", spec)
		if err != nil {
			uc.Close()
			return nil, fmt.Errorf("udp: resolve group %d %q: %w", g, spec, err)
		}
		n.groupAddrs[g] = ga
		ap := ga.AddrPort()
		n.groupPorts[g] = netip.AddrPortFrom(ap.Addr().Unmap(), ap.Port())
	}
	seed := cfg.Seed
	if seed == 0 {
		seed = time.Now().UnixNano()
	}
	n.rng = rand.New(rand.NewSource(seed))
	if cfg.Interface != "" {
		ifc, err := net.InterfaceByName(cfg.Interface)
		if err != nil {
			uc.Close()
			return nil, fmt.Errorf("udp: interface %q: %w", cfg.Interface, err)
		}
		n.iface = ifc
	}
	if n.batched {
		if err := n.startBatch(); err != nil {
			uc.Close()
			return nil, fmt.Errorf("udp: batch setup: %w", err)
		}
	}
	// The handler must observe Start before any Recv: run it (and any
	// group joins it performs) under the node mutex, and only then launch
	// the unicast read loop. Group read loops spawned by Join during
	// Start block on the mutex until Start returns, so they cannot
	// deliver early either.
	n.mu.Lock()
	h.Start((*env)(n))
	n.flushOnExit()
	n.mu.Unlock()
	n.readLoop(uc)
	return n, nil
}

// Addr returns the node's unicast address.
func (n *Node) Addr() transport.Addr {
	return Addr{HostPort: n.ucast.LocalAddr().String()}
}

// Batched reports whether the node is using the sendmmsg/recvmmsg
// datapath (false on unsupported platforms and under ForceFallback).
func (n *Node) Batched() bool { return n.batched }

// Do runs fn serialized with the handler's packet deliveries and timers.
// External callers (e.g. an application thread invoking Sender.Send) must
// use it: protocol handlers are single-threaded by contract.
func (n *Node) Do(fn func()) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if !n.closed {
		fn()
		n.flushOnExit()
	}
}

// Close stops the node. In-flight callbacks finish first; coalesced
// egress still waiting on a flush deadline is shipped, not dropped.
func (n *Node) Close() error {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return nil
	}
	n.flushLocked()
	n.closed = true
	conns := []*net.UDPConn{n.ucast}
	for _, c := range n.groups {
		conns = append(conns, c)
	}
	n.mu.Unlock()
	var err error
	for _, c := range conns {
		if e := c.Close(); e != nil && err == nil {
			err = e
		}
	}
	n.wg.Wait()
	return err
}

// readLoop pumps datagrams from one socket into the handler, batched
// where supported.
func (n *Node) readLoop(conn *net.UDPConn) {
	if n.batched {
		n.readLoopBatch(conn)
		return
	}
	n.readLoopSingle(conn)
}

// readLoopSingle is the portable one-datagram-per-syscall loop. The
// receive buffer comes from the node pool (returned when the socket
// closes, so Join/Leave churn reuses buffers), and source addresses are
// interned: the string form is computed once per peer, not once per
// datagram.
func (n *Node) readLoopSingle(conn *net.UDPConn) {
	n.wg.Add(1)
	go func() {
		defer n.wg.Done()
		bp := n.bufPool.Get().(*[]byte)
		defer n.bufPool.Put(bp)
		buf := *bp
		for {
			sz, from, err := conn.ReadFromUDPAddrPort(buf)
			if err != nil {
				return // socket closed
			}
			n.mx.rxPkts.Inc()
			n.mx.rxBytes.Add(uint64(sz))
			n.mu.Lock()
			if !n.closed {
				n.handler.Recv(n.internFrom(from), buf[:sz])
				n.flushOnExit()
			}
			n.mu.Unlock()
		}
	}()
}

// internFrom returns the cached Addr for a datagram source (mu held).
// Addresses are unmapped first so a 4-in-6 form of the same peer does not
// produce a distinct string from its IPv4 form. The cache stores the
// boxed interface value: handing the struct to handler.Recv directly
// would heap-allocate the interface conversion on every datagram.
func (n *Node) internFrom(from netip.AddrPort) transport.Addr {
	from = netip.AddrPortFrom(from.Addr().Unmap(), from.Port())
	if a, ok := n.fromCache[from]; ok {
		return a
	}
	var a transport.Addr = Addr{HostPort: from.String()}
	n.fromCache[from] = a
	return a
}

// resolveAddrPort parses a destination, preferring the allocation-free
// netip parser (every Addr this package produces round-trips through it)
// and falling back to the resolver for hostnames.
func resolveAddrPort(s string) (netip.AddrPort, error) {
	if ap, err := netip.ParseAddrPort(s); err == nil {
		return netip.AddrPortFrom(ap.Addr().Unmap(), ap.Port()), nil
	}
	ua, err := net.ResolveUDPAddr("udp4", s)
	if err != nil {
		return netip.AddrPort{}, err
	}
	ap := ua.AddrPort()
	return netip.AddrPortFrom(ap.Addr().Unmap(), ap.Port()), nil
}

// writeNow transmits one datagram immediately on the unicast socket (the
// portable single-packet path; also the batched path's escape hatch for
// jumbo and non-IPv4 destinations). WriteToUDPAddrPort takes the netip
// fast path in the runtime, so this performs no per-packet allocation.
func (n *Node) writeNow(dst netip.AddrPort, ttl int, data []byte) error {
	if ttl > 0 {
		if err := n.setMulticastTTL(ttl); err != nil {
			return err
		}
	}
	_, err := n.ucast.WriteToUDPAddrPort(data, dst)
	return err
}

// env adapts Node to transport.Env (always called under n.mu).
type env Node

func (e *env) node() *Node { return (*Node)(e) }

func (e *env) Now() time.Time { return time.Now() }

// guardedTimer wraps a real timer so the callback runs under the node
// mutex and is suppressed after Close. The wrapper and its guard closure
// are allocated once per timer; Reset re-arms the underlying timer without
// re-wrapping, so hot reschedule paths (heartbeat rearm, staleness touch)
// do not allocate per packet.
type guardedTimer struct {
	n  *Node
	fn func()
	t  vtime.Timer
}

func (g *guardedTimer) run() {
	g.n.mu.Lock()
	defer g.n.mu.Unlock()
	if !g.n.closed {
		g.fn()
		g.n.flushOnExit()
	}
}

func (g *guardedTimer) Stop() bool { return g.t.Stop() }

func (g *guardedTimer) Reset(d time.Duration) bool {
	if d < 0 {
		d = 0
	}
	return g.t.Reset(d)
}

func (e *env) AfterFunc(d time.Duration, fn func()) vtime.Timer {
	if d < 0 {
		d = 0
	}
	g := &guardedTimer{n: e.node(), fn: fn}
	g.t = vtime.Real{}.AfterFunc(d, g.run)
	return g
}

func (e *env) Send(to transport.Addr, data []byte) error {
	ua, ok := to.(Addr)
	if !ok {
		return fmt.Errorf("udp: foreign address %v (%s)", to, to.Network())
	}
	n := e.node()
	dst, ok := n.peerAddrs[ua.HostPort]
	if !ok {
		var err error
		dst, err = resolveAddrPort(ua.HostPort)
		if err != nil {
			return fmt.Errorf("udp: resolve %q: %w", ua.HostPort, err)
		}
		n.peerAddrs[ua.HostPort] = dst
	}
	n.mx.txPkts.Inc()
	n.mx.txBytes.Add(uint64(len(data)))
	if n.batched {
		return n.egEnqueue(dst, 0, data)
	}
	return n.writeNow(dst, 0, data)
}

func (e *env) Multicast(g wire.GroupID, ttl int, data []byte) error {
	n := e.node()
	dst, ok := n.groupPorts[g]
	if !ok {
		return fmt.Errorf("udp: group %d not configured", g)
	}
	n.mx.txPkts.Inc()
	n.mx.txBytes.Add(uint64(len(data)))
	if n.batched {
		return n.egEnqueue(dst, clampTTL(ttl), data)
	}
	return n.writeNow(dst, clampTTL(ttl), data)
}

// clampTTL normalizes a multicast scope to a valid IP TTL.
func clampTTL(ttl int) int {
	if ttl <= 0 {
		return 1
	}
	if ttl > 255 {
		return 255
	}
	return ttl
}

// rawControl runs f over the unicast socket's descriptor, caching the
// RawConn (SyscallConn allocates a fresh wrapper per call).
func (n *Node) rawControl(f func(fd uintptr)) error {
	if n.ucastRaw == nil {
		raw, err := n.ucast.SyscallConn()
		if err != nil {
			return err
		}
		n.ucastRaw = raw
	}
	return n.ucastRaw.Control(f)
}

// setMulticastTTL sets IP_MULTICAST_TTL on the unicast (sending) socket,
// caching the last value to avoid redundant syscalls.
func (n *Node) setMulticastTTL(ttl int) error {
	ttl = clampTTL(ttl)
	if ttl == n.lastTTL {
		return nil
	}
	var serr error
	if err := n.rawControl(func(fd uintptr) {
		serr = syscall.SetsockoptInt(int(fd), syscall.IPPROTO_IP, syscall.IP_MULTICAST_TTL, ttl)
		if serr == nil {
			// Loop multicast back to the local host so co-located
			// receivers/loggers hear it.
			serr = syscall.SetsockoptInt(int(fd), syscall.IPPROTO_IP, syscall.IP_MULTICAST_LOOP, 1)
		}
	}); err != nil {
		return err
	}
	if serr != nil {
		return fmt.Errorf("udp: set multicast ttl: %w", serr)
	}
	n.lastTTL = ttl
	return nil
}

func (e *env) Join(g wire.GroupID) error {
	n := e.node()
	if _, ok := n.groups[g]; ok {
		return nil
	}
	ga, ok := n.groupAddrs[g]
	if !ok {
		return fmt.Errorf("udp: group %d not configured", g)
	}
	conn, err := net.ListenMulticastUDP("udp4", n.iface, ga)
	if err != nil {
		return fmt.Errorf("udp: join %v: %w", ga, err)
	}
	n.groups[g] = conn
	n.readLoop(conn)
	return nil
}

func (e *env) Leave(g wire.GroupID) error {
	n := e.node()
	conn, ok := n.groups[g]
	if !ok {
		return nil
	}
	delete(n.groups, g)
	return conn.Close()
}

func (e *env) LocalAddr() transport.Addr { return e.node().Addr() }

func (e *env) ParseAddr(s string) (transport.Addr, error) { return ParseAddr(s) }

func (e *env) Rand() *rand.Rand { return e.node().rng }

// ErrClosed is returned by operations on a closed node.
var ErrClosed = errors.New("udp: node closed")
