// Package udp binds LBRM protocol handlers to real UDP multicast using
// only the standard library. Each Node owns one unicast socket (for
// NACKs, ACKs, retransmissions and other point-to-point traffic) plus one
// receive socket per joined multicast group. All handler callbacks —
// packet deliveries and timers — are serialized under a per-node mutex,
// giving the handler the same single-threaded world the simulator provides.
//
// Multicast TTL scoping uses the transport scope constants directly as IP
// TTL values (site ≈ 15, global ≈ 127), matching the paper's use of the
// TTL field to confine secondary-logger re-multicasts to a site.
package udp

import (
	"errors"
	"fmt"
	"math/rand"
	"net"
	"net/netip"
	"sync"
	"syscall"
	"time"

	"lbrm/internal/obs"
	"lbrm/internal/transport"
	"lbrm/internal/vtime"
	"lbrm/internal/wire"
)

// Addr is a UDP transport address.
type Addr struct{ HostPort string }

// Network implements transport.Addr.
func (Addr) Network() string { return "udp" }

// String implements transport.Addr.
func (a Addr) String() string { return a.HostPort }

// ParseAddr validates and normalizes a "host:port" string.
func ParseAddr(s string) (Addr, error) {
	ua, err := net.ResolveUDPAddr("udp", s)
	if err != nil {
		return Addr{}, fmt.Errorf("udp: bad address %q: %w", s, err)
	}
	return Addr{HostPort: ua.String()}, nil
}

// Config configures a UDP-bound protocol node.
type Config struct {
	// Listen is the unicast bind address (default "0.0.0.0:0").
	Listen string
	// Groups maps LBRM group IDs to multicast "ip:port" endpoints.
	Groups map[wire.GroupID]string
	// Interface optionally names the network interface for multicast.
	Interface string
	// ReadBuffer sizes the receive buffer per datagram (default 9000).
	ReadBuffer int
	// Seed seeds the node's random source (0 = time-based).
	Seed int64
	// Obs receives transport-level rx/tx metrics (nil = uninstrumented).
	Obs *obs.Sink
}

// Node runs one transport.Handler over real UDP.
type Node struct {
	mu      sync.Mutex
	cfg     Config
	handler transport.Handler
	ucast   *net.UDPConn
	iface   *net.Interface
	groups  map[wire.GroupID]*net.UDPConn
	rng     *rand.Rand
	closed  bool
	wg      sync.WaitGroup
	lastTTL int

	// Datapath caches (all guarded by mu; see DESIGN.md "Datapath
	// allocation contract"). Peer membership is small and stable in a
	// simulation exercise, so these grow to the peer set and stay there.
	peerAddrs  map[string]*net.UDPAddr       // unicast destinations, by HostPort
	groupAddrs map[wire.GroupID]*net.UDPAddr // resolved once at Start
	fromCache  map[netip.AddrPort]Addr       // interned datagram sources
	bufPool    sync.Pool                     // *[]byte receive buffers

	// mx caches the preregistered transport metric handles (nil-safe).
	mx nodeMetrics
}

// nodeMetrics counts datagrams through the socket layer, below the
// protocol components' per-class accounting.
type nodeMetrics struct {
	rxPkts  *obs.Counter
	rxBytes *obs.Counter
	txPkts  *obs.Counter
	txBytes *obs.Counter
}

func newNodeMetrics(sink *obs.Sink) nodeMetrics {
	return nodeMetrics{
		rxPkts:  sink.Counter("udp.rx_pkts"),
		rxBytes: sink.Counter("udp.rx_bytes"),
		txPkts:  sink.Counter("udp.tx_pkts"),
		txBytes: sink.Counter("udp.tx_bytes"),
	}
}

// Start binds sockets and runs the handler. Close releases everything.
func Start(cfg Config, h transport.Handler) (*Node, error) {
	if cfg.Listen == "" {
		cfg.Listen = "0.0.0.0:0"
	}
	if cfg.ReadBuffer == 0 {
		cfg.ReadBuffer = 9000
	}
	la, err := net.ResolveUDPAddr("udp4", cfg.Listen)
	if err != nil {
		return nil, fmt.Errorf("udp: resolve listen %q: %w", cfg.Listen, err)
	}
	uc, err := net.ListenUDP("udp4", la)
	if err != nil {
		return nil, fmt.Errorf("udp: listen: %w", err)
	}
	n := &Node{
		cfg:        cfg,
		handler:    h,
		ucast:      uc,
		groups:     make(map[wire.GroupID]*net.UDPConn),
		lastTTL:    -1,
		peerAddrs:  make(map[string]*net.UDPAddr),
		groupAddrs: make(map[wire.GroupID]*net.UDPAddr, len(cfg.Groups)),
		fromCache:  make(map[netip.AddrPort]Addr),
		mx:         newNodeMetrics(cfg.Obs),
	}
	n.bufPool.New = func() any {
		b := make([]byte, cfg.ReadBuffer)
		return &b
	}
	for g, spec := range cfg.Groups {
		ga, err := net.ResolveUDPAddr("udp4", spec)
		if err != nil {
			uc.Close()
			return nil, fmt.Errorf("udp: resolve group %d %q: %w", g, spec, err)
		}
		n.groupAddrs[g] = ga
	}
	seed := cfg.Seed
	if seed == 0 {
		seed = time.Now().UnixNano()
	}
	n.rng = rand.New(rand.NewSource(seed))
	if cfg.Interface != "" {
		ifc, err := net.InterfaceByName(cfg.Interface)
		if err != nil {
			uc.Close()
			return nil, fmt.Errorf("udp: interface %q: %w", cfg.Interface, err)
		}
		n.iface = ifc
	}
	// The handler must observe Start before any Recv: run it (and any
	// group joins it performs) under the node mutex, and only then launch
	// the unicast read loop. Group read loops spawned by Join during
	// Start block on the mutex until Start returns, so they cannot
	// deliver early either.
	n.mu.Lock()
	h.Start((*env)(n))
	n.mu.Unlock()
	n.readLoop(uc)
	return n, nil
}

// Addr returns the node's unicast address.
func (n *Node) Addr() transport.Addr {
	return Addr{HostPort: n.ucast.LocalAddr().String()}
}

// Do runs fn serialized with the handler's packet deliveries and timers.
// External callers (e.g. an application thread invoking Sender.Send) must
// use it: protocol handlers are single-threaded by contract.
func (n *Node) Do(fn func()) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if !n.closed {
		fn()
	}
}

// Close stops the node. In-flight callbacks finish first.
func (n *Node) Close() error {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return nil
	}
	n.closed = true
	conns := []*net.UDPConn{n.ucast}
	for _, c := range n.groups {
		conns = append(conns, c)
	}
	n.mu.Unlock()
	var err error
	for _, c := range conns {
		if e := c.Close(); e != nil && err == nil {
			err = e
		}
	}
	n.wg.Wait()
	return err
}

// readLoop pumps datagrams from one socket into the handler. The receive
// buffer comes from the node pool (returned when the socket closes, so
// Join/Leave churn reuses buffers), and source addresses are interned: the
// string form is computed once per peer, not once per datagram.
func (n *Node) readLoop(conn *net.UDPConn) {
	n.wg.Add(1)
	go func() {
		defer n.wg.Done()
		bp := n.bufPool.Get().(*[]byte)
		defer n.bufPool.Put(bp)
		buf := *bp
		for {
			sz, from, err := conn.ReadFromUDPAddrPort(buf)
			if err != nil {
				return // socket closed
			}
			n.mx.rxPkts.Inc()
			n.mx.rxBytes.Add(uint64(sz))
			n.mu.Lock()
			if !n.closed {
				n.handler.Recv(n.internFrom(from), buf[:sz])
			}
			n.mu.Unlock()
		}
	}()
}

// internFrom returns the cached Addr for a datagram source (mu held).
// Addresses are unmapped first so a 4-in-6 form of the same peer does not
// produce a distinct string from its IPv4 form.
func (n *Node) internFrom(from netip.AddrPort) Addr {
	from = netip.AddrPortFrom(from.Addr().Unmap(), from.Port())
	if a, ok := n.fromCache[from]; ok {
		return a
	}
	a := Addr{HostPort: from.String()}
	n.fromCache[from] = a
	return a
}

// env adapts Node to transport.Env (always called under n.mu).
type env Node

func (e *env) node() *Node { return (*Node)(e) }

func (e *env) Now() time.Time { return time.Now() }

// guardedTimer wraps a real timer so the callback runs under the node
// mutex and is suppressed after Close. The wrapper and its guard closure
// are allocated once per timer; Reset re-arms the underlying timer without
// re-wrapping, so hot reschedule paths (heartbeat rearm, staleness touch)
// do not allocate per packet.
type guardedTimer struct {
	n  *Node
	fn func()
	t  vtime.Timer
}

func (g *guardedTimer) run() {
	g.n.mu.Lock()
	defer g.n.mu.Unlock()
	if !g.n.closed {
		g.fn()
	}
}

func (g *guardedTimer) Stop() bool { return g.t.Stop() }

func (g *guardedTimer) Reset(d time.Duration) bool {
	if d < 0 {
		d = 0
	}
	return g.t.Reset(d)
}

func (e *env) AfterFunc(d time.Duration, fn func()) vtime.Timer {
	if d < 0 {
		d = 0
	}
	g := &guardedTimer{n: e.node(), fn: fn}
	g.t = vtime.Real{}.AfterFunc(d, g.run)
	return g
}

func (e *env) Send(to transport.Addr, data []byte) error {
	ua, ok := to.(Addr)
	if !ok {
		return fmt.Errorf("udp: foreign address %v (%s)", to, to.Network())
	}
	n := e.node()
	dst, ok := n.peerAddrs[ua.HostPort]
	if !ok {
		var err error
		dst, err = net.ResolveUDPAddr("udp4", ua.HostPort)
		if err != nil {
			return fmt.Errorf("udp: resolve %q: %w", ua.HostPort, err)
		}
		n.peerAddrs[ua.HostPort] = dst
	}
	n.mx.txPkts.Inc()
	n.mx.txBytes.Add(uint64(len(data)))
	_, err := n.ucast.WriteToUDP(data, dst)
	return err
}

func (e *env) Multicast(g wire.GroupID, ttl int, data []byte) error {
	n := e.node()
	dst, ok := n.groupAddrs[g]
	if !ok {
		return fmt.Errorf("udp: group %d not configured", g)
	}
	if err := n.setMulticastTTL(ttl); err != nil {
		return err
	}
	n.mx.txPkts.Inc()
	n.mx.txBytes.Add(uint64(len(data)))
	_, err := n.ucast.WriteToUDP(data, dst)
	return err
}

// setMulticastTTL sets IP_MULTICAST_TTL on the unicast (sending) socket,
// caching the last value to avoid redundant syscalls.
func (n *Node) setMulticastTTL(ttl int) error {
	if ttl <= 0 {
		ttl = 1
	}
	if ttl > 255 {
		ttl = 255
	}
	if ttl == n.lastTTL {
		return nil
	}
	raw, err := n.ucast.SyscallConn()
	if err != nil {
		return err
	}
	var serr error
	if err := raw.Control(func(fd uintptr) {
		serr = syscall.SetsockoptInt(int(fd), syscall.IPPROTO_IP, syscall.IP_MULTICAST_TTL, ttl)
		if serr == nil {
			// Loop multicast back to the local host so co-located
			// receivers/loggers hear it.
			serr = syscall.SetsockoptInt(int(fd), syscall.IPPROTO_IP, syscall.IP_MULTICAST_LOOP, 1)
		}
	}); err != nil {
		return err
	}
	if serr != nil {
		return fmt.Errorf("udp: set multicast ttl: %w", serr)
	}
	n.lastTTL = ttl
	return nil
}

func (e *env) Join(g wire.GroupID) error {
	n := e.node()
	if _, ok := n.groups[g]; ok {
		return nil
	}
	ga, ok := n.groupAddrs[g]
	if !ok {
		return fmt.Errorf("udp: group %d not configured", g)
	}
	conn, err := net.ListenMulticastUDP("udp4", n.iface, ga)
	if err != nil {
		return fmt.Errorf("udp: join %v: %w", ga, err)
	}
	n.groups[g] = conn
	n.readLoop(conn)
	return nil
}

func (e *env) Leave(g wire.GroupID) error {
	n := e.node()
	conn, ok := n.groups[g]
	if !ok {
		return nil
	}
	delete(n.groups, g)
	return conn.Close()
}

func (e *env) LocalAddr() transport.Addr { return e.node().Addr() }

func (e *env) ParseAddr(s string) (transport.Addr, error) { return ParseAddr(s) }

func (e *env) Rand() *rand.Rand { return e.node().rng }

// ErrClosed is returned by operations on a closed node.
var ErrClosed = errors.New("udp: node closed")
