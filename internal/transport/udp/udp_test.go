package udp

import (
	"sync"
	"testing"
	"time"

	"lbrm/internal/transport"
	"lbrm/internal/wire"
)

// collector is a thread-observable test handler.
type collector struct {
	mu   sync.Mutex
	env  transport.Env
	got  [][]byte
	from []transport.Addr
	join []wire.GroupID
}

func (c *collector) Start(env transport.Env) {
	c.env = env
	for _, g := range c.join {
		if err := env.Join(g); err != nil {
			panic(err)
		}
	}
}

func (c *collector) Recv(from transport.Addr, data []byte) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.got = append(c.got, append([]byte(nil), data...))
	c.from = append(c.from, from)
}

func (c *collector) count() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.got)
}

func waitFor(t *testing.T, cond func() bool) bool {
	t.Helper()
	deadline := time.Now().Add(3 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return true
		}
		time.Sleep(5 * time.Millisecond)
	}
	return false
}

func TestUnicastRoundTrip(t *testing.T) {
	a := &collector{}
	b := &collector{}
	na, err := Start(Config{Listen: "127.0.0.1:0"}, a)
	if err != nil {
		t.Fatal(err)
	}
	defer na.Close()
	nb, err := Start(Config{Listen: "127.0.0.1:0"}, b)
	if err != nil {
		t.Fatal(err)
	}
	defer nb.Close()

	a.mu.Lock()
	env := a.env
	a.mu.Unlock()
	if err := env.Send(nb.Addr(), []byte("hello")); err != nil {
		t.Fatal(err)
	}
	if !waitFor(t, func() bool { return b.count() == 1 }) {
		t.Fatal("unicast not delivered")
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if string(b.got[0]) != "hello" {
		t.Fatalf("payload = %q", b.got[0])
	}
	// The from address is A's unicast socket: replying to it must work.
	if b.from[0].String() != na.Addr().String() {
		t.Fatalf("from = %v, want %v", b.from[0], na.Addr())
	}
}

func TestMulticastLoopback(t *testing.T) {
	const g = wire.GroupID(1)
	groups := map[wire.GroupID]string{g: "239.81.77.1:17771"}
	r1 := &collector{join: []wire.GroupID{g}}
	r2 := &collector{join: []wire.GroupID{g}}
	sender := &collector{}

	n1, err := Start(Config{Groups: groups, Interface: "lo"}, r1)
	if err != nil {
		t.Skipf("multicast unavailable in this environment: %v", err)
	}
	defer n1.Close()
	n2, err := Start(Config{Groups: groups, Interface: "lo"}, r2)
	if err != nil {
		t.Skipf("multicast unavailable: %v", err)
	}
	defer n2.Close()
	ns, err := Start(Config{Groups: groups, Interface: "lo"}, sender)
	if err != nil {
		t.Skipf("multicast unavailable: %v", err)
	}
	defer ns.Close()

	sender.mu.Lock()
	env := sender.env
	sender.mu.Unlock()
	// Re-send until delivery: first packets can race the group join.
	ok := waitFor(t, func() bool {
		if err := env.Multicast(g, transport.TTLGlobal, []byte("mc")); err != nil {
			t.Logf("multicast send: %v", err)
			return false
		}
		return r1.count() >= 1 && r2.count() >= 1
	})
	if !ok {
		t.Skip("loopback multicast not deliverable in this environment")
	}
}

func TestParseAddrRoundTrip(t *testing.T) {
	a, err := ParseAddr("127.0.0.1:9000")
	if err != nil {
		t.Fatal(err)
	}
	if a.String() != "127.0.0.1:9000" {
		t.Fatalf("String = %q", a.String())
	}
	if _, err := ParseAddr("not an address"); err == nil {
		t.Fatal("accepted garbage")
	}
}

func TestTimersSerializedWithRecv(t *testing.T) {
	c := &collector{}
	n, err := Start(Config{Listen: "127.0.0.1:0"}, c)
	if err != nil {
		t.Fatal(err)
	}
	defer n.Close()
	c.mu.Lock()
	env := c.env
	c.mu.Unlock()

	fired := make(chan struct{})
	n.mu.Lock()
	env.AfterFunc(10*time.Millisecond, func() { close(fired) })
	n.mu.Unlock()
	select {
	case <-fired:
	case <-time.After(3 * time.Second):
		t.Fatal("timer never fired")
	}
}

func TestTimerAfterCloseDoesNotFire(t *testing.T) {
	c := &collector{}
	n, err := Start(Config{Listen: "127.0.0.1:0"}, c)
	if err != nil {
		t.Fatal(err)
	}
	c.mu.Lock()
	env := c.env
	c.mu.Unlock()
	var fired bool
	n.mu.Lock()
	env.AfterFunc(50*time.Millisecond, func() { fired = true })
	n.mu.Unlock()
	n.Close()
	time.Sleep(100 * time.Millisecond)
	if fired {
		t.Fatal("timer fired after Close")
	}
}

func TestSendToForeignAddrFails(t *testing.T) {
	c := &collector{}
	n, err := Start(Config{Listen: "127.0.0.1:0"}, c)
	if err != nil {
		t.Fatal(err)
	}
	defer n.Close()
	c.mu.Lock()
	env := c.env
	c.mu.Unlock()
	if err := env.Send(fakeAddr{}, []byte("x")); err == nil {
		t.Fatal("send to foreign address succeeded")
	}
	if err := env.Multicast(99, transport.TTLGlobal, []byte("x")); err == nil {
		t.Fatal("multicast to unconfigured group succeeded")
	}
}

type fakeAddr struct{}

func (fakeAddr) Network() string { return "fake" }
func (fakeAddr) String() string  { return "fake" }

func TestDoSerializesWithCallbacks(t *testing.T) {
	c := &collector{}
	n, err := Start(Config{Listen: "127.0.0.1:0"}, c)
	if err != nil {
		t.Fatal(err)
	}
	defer n.Close()
	ran := false
	n.Do(func() { ran = true })
	if !ran {
		t.Fatal("Do did not run")
	}
	n.Close()
	n.Do(func() { t.Fatal("Do ran after Close") })
}

func TestDoubleJoinAndLeave(t *testing.T) {
	groups := map[wire.GroupID]string{3: "239.81.77.9:17799"}
	c := &collector{}
	n, err := Start(Config{Listen: "127.0.0.1:0", Groups: groups, Interface: "lo"}, c)
	if err != nil {
		t.Skipf("multicast unavailable: %v", err)
	}
	defer n.Close()
	c.mu.Lock()
	env := c.env
	c.mu.Unlock()
	n.Do(func() {
		if err := env.Join(3); err != nil {
			t.Errorf("join: %v", err)
		}
		if err := env.Join(3); err != nil {
			t.Errorf("double join: %v", err)
		}
		if err := env.Leave(3); err != nil {
			t.Errorf("leave: %v", err)
		}
		if err := env.Leave(3); err != nil {
			t.Errorf("double leave: %v", err)
		}
	})
}

func TestStartRejectsBadConfig(t *testing.T) {
	if _, err := Start(Config{Listen: "not-an-address"}, &collector{}); err == nil {
		t.Fatal("bad listen accepted")
	}
	if _, err := Start(Config{Listen: "127.0.0.1:0", Interface: "definitely-no-such-iface"}, &collector{}); err == nil {
		t.Fatal("bad interface accepted")
	}
}
