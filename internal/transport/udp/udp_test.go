package udp

import (
	"net"
	"sync"
	"testing"
	"time"

	"lbrm/internal/transport"
	"lbrm/internal/wire"
)

// collector is a thread-observable test handler.
type collector struct {
	mu   sync.Mutex
	env  transport.Env
	got  [][]byte
	from []transport.Addr
	join []wire.GroupID
}

func (c *collector) Start(env transport.Env) {
	c.env = env
	for _, g := range c.join {
		if err := env.Join(g); err != nil {
			panic(err)
		}
	}
}

func (c *collector) Recv(from transport.Addr, data []byte) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.got = append(c.got, append([]byte(nil), data...))
	c.from = append(c.from, from)
}

func (c *collector) count() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.got)
}

func waitFor(t *testing.T, cond func() bool) bool {
	t.Helper()
	deadline := time.Now().Add(3 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return true
		}
		time.Sleep(5 * time.Millisecond)
	}
	return false
}

func TestUnicastRoundTrip(t *testing.T) {
	a := &collector{}
	b := &collector{}
	na, err := Start(Config{Listen: "127.0.0.1:0"}, a)
	if err != nil {
		t.Fatal(err)
	}
	defer na.Close()
	nb, err := Start(Config{Listen: "127.0.0.1:0"}, b)
	if err != nil {
		t.Fatal(err)
	}
	defer nb.Close()

	a.mu.Lock()
	env := a.env
	a.mu.Unlock()
	var sendErr error
	na.Do(func() { sendErr = env.Send(nb.Addr(), []byte("hello")) })
	if sendErr != nil {
		t.Fatal(sendErr)
	}
	if !waitFor(t, func() bool { return b.count() == 1 }) {
		t.Fatal("unicast not delivered")
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if string(b.got[0]) != "hello" {
		t.Fatalf("payload = %q", b.got[0])
	}
	// The from address is A's unicast socket: replying to it must work.
	if b.from[0].String() != na.Addr().String() {
		t.Fatalf("from = %v, want %v", b.from[0], na.Addr())
	}
}

func TestMulticastLoopback(t *testing.T) {
	const g = wire.GroupID(1)
	groups := map[wire.GroupID]string{g: "239.81.77.1:17771"}
	r1 := &collector{join: []wire.GroupID{g}}
	r2 := &collector{join: []wire.GroupID{g}}
	sender := &collector{}

	n1, err := Start(Config{Groups: groups, Interface: "lo"}, r1)
	if err != nil {
		t.Skipf("multicast unavailable in this environment: %v", err)
	}
	defer n1.Close()
	n2, err := Start(Config{Groups: groups, Interface: "lo"}, r2)
	if err != nil {
		t.Skipf("multicast unavailable: %v", err)
	}
	defer n2.Close()
	ns, err := Start(Config{Groups: groups, Interface: "lo"}, sender)
	if err != nil {
		t.Skipf("multicast unavailable: %v", err)
	}
	defer ns.Close()

	sender.mu.Lock()
	env := sender.env
	sender.mu.Unlock()
	// Re-send until delivery: first packets can race the group join.
	ok := waitFor(t, func() bool {
		var err error
		ns.Do(func() { err = env.Multicast(g, transport.TTLGlobal, []byte("mc")) })
		if err != nil {
			t.Logf("multicast send: %v", err)
			return false
		}
		return r1.count() >= 1 && r2.count() >= 1
	})
	if !ok {
		t.Skip("loopback multicast not deliverable in this environment")
	}
}

func TestParseAddrRoundTrip(t *testing.T) {
	a, err := ParseAddr("127.0.0.1:9000")
	if err != nil {
		t.Fatal(err)
	}
	if a.String() != "127.0.0.1:9000" {
		t.Fatalf("String = %q", a.String())
	}
	if _, err := ParseAddr("not an address"); err == nil {
		t.Fatal("accepted garbage")
	}
}

func TestTimersSerializedWithRecv(t *testing.T) {
	c := &collector{}
	n, err := Start(Config{Listen: "127.0.0.1:0"}, c)
	if err != nil {
		t.Fatal(err)
	}
	defer n.Close()
	c.mu.Lock()
	env := c.env
	c.mu.Unlock()

	fired := make(chan struct{})
	n.mu.Lock()
	env.AfterFunc(10*time.Millisecond, func() { close(fired) })
	n.mu.Unlock()
	select {
	case <-fired:
	case <-time.After(3 * time.Second):
		t.Fatal("timer never fired")
	}
}

func TestTimerAfterCloseDoesNotFire(t *testing.T) {
	c := &collector{}
	n, err := Start(Config{Listen: "127.0.0.1:0"}, c)
	if err != nil {
		t.Fatal(err)
	}
	c.mu.Lock()
	env := c.env
	c.mu.Unlock()
	var fired bool
	n.mu.Lock()
	env.AfterFunc(50*time.Millisecond, func() { fired = true })
	n.mu.Unlock()
	n.Close()
	time.Sleep(100 * time.Millisecond)
	if fired {
		t.Fatal("timer fired after Close")
	}
}

func TestSendToForeignAddrFails(t *testing.T) {
	c := &collector{}
	n, err := Start(Config{Listen: "127.0.0.1:0"}, c)
	if err != nil {
		t.Fatal(err)
	}
	defer n.Close()
	c.mu.Lock()
	env := c.env
	c.mu.Unlock()
	if err := env.Send(fakeAddr{}, []byte("x")); err == nil {
		t.Fatal("send to foreign address succeeded")
	}
	if err := env.Multicast(99, transport.TTLGlobal, []byte("x")); err == nil {
		t.Fatal("multicast to unconfigured group succeeded")
	}
}

type fakeAddr struct{}

func (fakeAddr) Network() string { return "fake" }
func (fakeAddr) String() string  { return "fake" }

func TestDoSerializesWithCallbacks(t *testing.T) {
	c := &collector{}
	n, err := Start(Config{Listen: "127.0.0.1:0"}, c)
	if err != nil {
		t.Fatal(err)
	}
	defer n.Close()
	ran := false
	n.Do(func() { ran = true })
	if !ran {
		t.Fatal("Do did not run")
	}
	n.Close()
	n.Do(func() { t.Fatal("Do ran after Close") })
}

func TestDoubleJoinAndLeave(t *testing.T) {
	groups := map[wire.GroupID]string{3: "239.81.77.9:17799"}
	c := &collector{}
	n, err := Start(Config{Listen: "127.0.0.1:0", Groups: groups, Interface: "lo"}, c)
	if err != nil {
		t.Skipf("multicast unavailable: %v", err)
	}
	defer n.Close()
	c.mu.Lock()
	env := c.env
	c.mu.Unlock()
	n.Do(func() {
		if err := env.Join(3); err != nil {
			t.Errorf("join: %v", err)
		}
		if err := env.Join(3); err != nil {
			t.Errorf("double join: %v", err)
		}
		if err := env.Leave(3); err != nil {
			t.Errorf("leave: %v", err)
		}
		if err := env.Leave(3); err != nil {
			t.Errorf("double leave: %v", err)
		}
	})
}

func TestStartRejectsBadConfig(t *testing.T) {
	if _, err := Start(Config{Listen: "not-an-address"}, &collector{}); err == nil {
		t.Fatal("bad listen accepted")
	}
	if _, err := Start(Config{Listen: "127.0.0.1:0", Interface: "definitely-no-such-iface"}, &collector{}); err == nil {
		t.Fatal("bad interface accepted")
	}
}

// startGate records whether handler.Start had completed when each Recv
// fired. Used to pin down Start/readLoop ordering.
type startGate struct {
	mu        sync.Mutex
	started   bool
	recvEarly bool
	recvs     int
}

func (h *startGate) Start(env transport.Env) {
	// Linger so a pre-primed sender's datagrams pile up on the socket
	// while Start is still running.
	time.Sleep(50 * time.Millisecond)
	h.mu.Lock()
	h.started = true
	h.mu.Unlock()
}

func (h *startGate) Recv(from transport.Addr, data []byte) {
	h.mu.Lock()
	if !h.started {
		h.recvEarly = true
	}
	h.recvs++
	h.mu.Unlock()
}

func TestStartCompletesBeforeFirstRecv(t *testing.T) {
	// Reserve a port, release it, then re-bind it via Start while a
	// sender is already hammering it. Regression test: the read loop
	// used to launch before handler.Start, so a datagram could race the
	// mutex and reach Recv on a handler that had not started.
	probe, err := net.ListenUDP("udp4", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		t.Fatal(err)
	}
	target := probe.LocalAddr().String()
	probe.Close()

	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		c, err := net.Dial("udp4", target)
		if err != nil {
			return
		}
		defer c.Close()
		for {
			select {
			case <-stop:
				return
			default:
			}
			c.Write([]byte("prime"))
			time.Sleep(time.Millisecond)
		}
	}()
	defer func() { close(stop); wg.Wait() }()

	h := &startGate{}
	n, err := Start(Config{Listen: target}, h)
	if err != nil {
		t.Fatal(err)
	}
	defer n.Close()
	if !waitFor(t, func() bool {
		h.mu.Lock()
		defer h.mu.Unlock()
		return h.recvs > 0
	}) {
		t.Fatal("no datagrams delivered after Start")
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.recvEarly {
		t.Fatal("handler.Recv fired before handler.Start completed")
	}
}

func TestSourceAddrInterned(t *testing.T) {
	recv := &collector{}
	nr, err := Start(Config{Listen: "127.0.0.1:0"}, recv)
	if err != nil {
		t.Fatal(err)
	}
	defer nr.Close()
	send := &collector{}
	ns, err := Start(Config{Listen: "127.0.0.1:0"}, send)
	if err != nil {
		t.Fatal(err)
	}
	defer ns.Close()

	for i := 0; i < 3; i++ {
		ns.Do(func() {
			if err := send.env.Send(nr.Addr(), []byte{byte(i)}); err != nil {
				t.Errorf("send: %v", err)
			}
		})
	}
	if !waitFor(t, func() bool { return recv.count() == 3 }) {
		t.Fatalf("got %d datagrams, want 3", recv.count())
	}
	recv.mu.Lock()
	defer recv.mu.Unlock()
	for _, f := range recv.from {
		if f != recv.from[0] {
			t.Fatalf("source addr not stable: %v vs %v", f, recv.from[0])
		}
	}
	nr.mu.Lock()
	cached := len(nr.fromCache)
	nr.mu.Unlock()
	if cached != 1 {
		t.Fatalf("fromCache has %d entries, want 1", cached)
	}
	// The sender resolved the receiver's address once, then reused it.
	ns.mu.Lock()
	resolved := len(ns.peerAddrs)
	ns.mu.Unlock()
	if resolved != 1 {
		t.Fatalf("peerAddrs has %d entries, want 1", resolved)
	}
}
