//go:build linux && amd64

package udp

// The stdlib syscall table on linux/amd64 predates sendmmsg(2) (kernel
// 3.0); the numbers are ABI-frozen, so declaring them here is safe.
const (
	sysSENDMMSG = 307
	sysRECVMMSG = 299
)
