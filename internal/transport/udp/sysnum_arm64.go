//go:build linux && arm64

package udp

// linux/arm64 syscall numbers for the mmsg pair (ABI-frozen).
const (
	sysSENDMMSG = 269
	sysRECVMMSG = 243
)
