package udp

import (
	"bytes"
	"fmt"
	"net"
	"os"
	"sync"
	"testing"
	"time"

	"lbrm/internal/obs"
	"lbrm/internal/transport"
)

// rawReceiver is a plain UDP socket for observing exact wire output
// (bytes and order) without any Node machinery on the receive side.
type rawReceiver struct {
	conn *net.UDPConn
}

func newRawReceiver(t *testing.T) *rawReceiver {
	t.Helper()
	conn, err := net.ListenUDP("udp4", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { conn.Close() })
	return &rawReceiver{conn: conn}
}

func (r *rawReceiver) addr() transport.Addr {
	return Addr{HostPort: r.conn.LocalAddr().String()}
}

// read collects n datagrams (payload copies, arrival order).
func (r *rawReceiver) read(t *testing.T, n int) [][]byte {
	t.Helper()
	r.conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	out := make([][]byte, 0, n)
	buf := make([]byte, 65536)
	for len(out) < n {
		sz, _, err := r.conn.ReadFromUDPAddrPort(buf)
		if err != nil {
			t.Fatalf("read after %d/%d datagrams: %v", len(out), n, err)
		}
		out = append(out, append([]byte(nil), buf[:sz]...))
	}
	return out
}

// sendAll pushes every payload through one node inside a single Do
// critical section (the coalescing case the batched path optimizes).
func sendAll(t *testing.T, n *Node, h *collector, dst transport.Addr, payloads [][]byte) {
	t.Helper()
	n.Do(func() {
		for _, p := range payloads {
			if err := h.env.Send(dst, p); err != nil {
				t.Errorf("send: %v", err)
			}
		}
	})
}

// TestBatchedVsFallbackWireIdentical sends the same datagram sequence
// through the batched path and the forced portable fallback and asserts
// byte-identical wire output in identical order. Exercises ring wrap
// (more payloads than Batch) and the jumbo escape hatch (payload larger
// than an egress slot).
func TestBatchedVsFallbackWireIdentical(t *testing.T) {
	mk := func(sizes ...int) [][]byte {
		out := make([][]byte, len(sizes))
		for i, sz := range sizes {
			p := make([]byte, sz)
			for j := range p {
				p[j] = byte(i + j)
			}
			out[i] = p
		}
		return out
	}
	cases := []struct {
		name     string
		cfg      Config
		payloads [][]byte
	}{
		{"default-batch", Config{}, mk(64, 256, 1, 900, 32, 128)},
		{"ring-wrap", Config{Batch: 4}, mk(10, 20, 30, 40, 50, 60, 70, 80, 90, 100)},
		{"jumbo-escape", Config{Batch: 8, ReadBuffer: 1024}, mk(100, 200, 2000, 300, 4000, 64)},
		{"deadline-mode", Config{FlushInterval: time.Millisecond}, mk(64, 64, 64, 64)},
		// A long equal-size run to one destination is the GSO fold case:
		// one UDP_SEGMENT super-message must split back into the exact
		// datagrams the fallback path sends one by one. The short 100
		// rides as a tail segment; the 300 breaks the fold (segments
		// may only shrink); the trailing run folds again.
		{"gso-fold", Config{Batch: 64}, mk(
			200, 200, 200, 200, 200, 200, 200, 200, 200, 200,
			200, 200, 200, 200, 200, 200, 200, 200, 200, 100,
			300, 300, 300, 64, 64, 64, 64, 64, 64, 64)},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var wire [2][][]byte
			for mode := 0; mode < 2; mode++ {
				rr := newRawReceiver(t)
				cfg := tc.cfg
				cfg.Listen = "127.0.0.1:0"
				cfg.ForceFallback = mode == 1
				h := &collector{}
				n, err := Start(cfg, h)
				if err != nil {
					t.Fatal(err)
				}
				defer n.Close()
				wantBatched := batchSupported() && os.Getenv("LBRM_FORCE_FALLBACK") == ""
				if mode == 0 && n.Batched() != wantBatched {
					t.Fatalf("Batched() = %v, want %v", n.Batched(), wantBatched)
				}
				if mode == 1 && n.Batched() {
					t.Fatal("ForceFallback node reports batched")
				}
				sendAll(t, n, h, rr.addr(), tc.payloads)
				wire[mode] = rr.read(t, len(tc.payloads))
			}
			for i := range wire[0] {
				if !bytes.Equal(wire[0][i], wire[1][i]) {
					t.Fatalf("datagram %d differs: batched %d bytes, fallback %d bytes",
						i, len(wire[0][i]), len(wire[1][i]))
				}
			}
		})
	}
}

// TestGSOFoldCounted floods one destination with equal-size datagrams and
// checks the tx_gso_segs counter: on a UDP-GSO kernel the fold must
// engage (and deliver every datagram intact); on an older kernel the
// latch must quietly disable it with delivery unharmed.
func TestGSOFoldCounted(t *testing.T) {
	if !batchSupported() {
		t.Skip("batched path unavailable")
	}
	sink := obs.NewSink()
	rr := newRawReceiver(t)
	h := &collector{}
	n, err := Start(Config{Listen: "127.0.0.1:0", Obs: sink, MetricsPrefix: "t"}, h)
	if err != nil {
		t.Fatal(err)
	}
	defer n.Close()
	payloads := make([][]byte, 32)
	for i := range payloads {
		p := make([]byte, 256)
		for j := range p {
			p[j] = byte(i ^ j)
		}
		payloads[i] = p
	}
	sendAll(t, n, h, rr.addr(), payloads)
	got := rr.read(t, len(payloads))
	for i, p := range payloads {
		if !bytes.Equal(got[i], p) {
			t.Fatalf("datagram %d corrupted by fold", i)
		}
	}
	if segs := sink.Counter("t.tx_gso_segs").Value(); segs == 0 {
		t.Log("kernel lacks UDP_SEGMENT; fold latched off (delivery verified)")
	} else if segs != uint64(len(payloads)) {
		t.Fatalf("tx_gso_segs = %d, want %d", segs, len(payloads))
	}
}

// TestBatchSizeOne disables batching via Batch: 1 and still delivers.
func TestBatchSizeOne(t *testing.T) {
	rr := newRawReceiver(t)
	h := &collector{}
	n, err := Start(Config{Listen: "127.0.0.1:0", Batch: 1}, h)
	if err != nil {
		t.Fatal(err)
	}
	defer n.Close()
	if n.Batched() {
		t.Fatal("Batch=1 node reports batched")
	}
	sendAll(t, n, h, rr.addr(), [][]byte{[]byte("one"), []byte("two")})
	got := rr.read(t, 2)
	if string(got[0]) != "one" || string(got[1]) != "two" {
		t.Fatalf("got %q, %q", got[0], got[1])
	}
}

// TestFlushDeadlineFires verifies deadline mode: a datagram enqueued in a
// critical section that doesn't fill the ring still leaves within the
// flush interval, and the deadline flush is counted.
func TestFlushDeadlineFires(t *testing.T) {
	if !batchSupported() || os.Getenv("LBRM_FORCE_FALLBACK") != "" {
		t.Skip("batched path unavailable")
	}
	sink := obs.NewSink()
	rr := newRawReceiver(t)
	h := &collector{}
	n, err := Start(Config{Listen: "127.0.0.1:0", FlushInterval: 5 * time.Millisecond, Obs: sink}, h)
	if err != nil {
		t.Fatal(err)
	}
	defer n.Close()
	sendAll(t, n, h, rr.addr(), [][]byte{[]byte("deadline")})
	got := rr.read(t, 1)
	if string(got[0]) != "deadline" {
		t.Fatalf("got %q", got[0])
	}
	if v := sink.Counter("udp.tx_flush_deadline").Value(); v != 1 {
		t.Fatalf("tx_flush_deadline = %d, want 1", v)
	}
}

// TestTimerSendFlushes covers the third legal entry point into the
// egress ring: a send from an AfterFunc timer callback (no Do, no Recv
// dispatch) must still hit the wire, because the guarded timer ends its
// critical section with the same flush-on-exit as the other two.
func TestTimerSendFlushes(t *testing.T) {
	rr := newRawReceiver(t)
	h := &collector{}
	n, err := Start(Config{Listen: "127.0.0.1:0"}, h)
	if err != nil {
		t.Fatal(err)
	}
	defer n.Close()
	h.mu.Lock()
	env := h.env
	h.mu.Unlock()
	dst := rr.addr()
	n.Do(func() {
		env.AfterFunc(time.Millisecond, func() {
			if err := env.Send(dst, []byte("from-timer")); err != nil {
				t.Errorf("send: %v", err)
			}
		})
	})
	got := rr.read(t, 1)
	if string(got[0]) != "from-timer" {
		t.Fatalf("got %q", got[0])
	}
}

// TestConcurrentEgressRace hammers one node's egress from many goroutines
// through Do while the receiver counts deliveries; run under -race this
// pins the mutex discipline of the shared ring.
func TestConcurrentEgressRace(t *testing.T) {
	recv := &collector{}
	nr, err := Start(Config{Listen: "127.0.0.1:0"}, recv)
	if err != nil {
		t.Fatal(err)
	}
	defer nr.Close()
	send := &collector{}
	ns, err := Start(Config{Listen: "127.0.0.1:0", Batch: 8}, send)
	if err != nil {
		t.Fatal(err)
	}
	defer ns.Close()

	const workers, per = 8, 100
	dst := nr.Addr()
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			payload := []byte(fmt.Sprintf("worker-%d", w))
			for i := 0; i < per; i++ {
				ns.Do(func() {
					if err := send.env.Send(dst, payload); err != nil {
						t.Errorf("send: %v", err)
					}
				})
				if i%10 == 9 {
					// Pace the flood: the point is racing the shared
					// ring, not overflowing the loopback socket buffer.
					time.Sleep(time.Millisecond)
				}
			}
		}(w)
	}
	wg.Wait()
	if !waitFor(t, func() bool { return recv.count() == workers*per }) {
		t.Fatalf("delivered %d datagrams, want %d", recv.count(), workers*per)
	}
}
