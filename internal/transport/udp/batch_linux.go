//go:build linux && (amd64 || arm64)

package udp

// Batched socket I/O: sendmmsg(2)/recvmmsg(2) through raw syscalls on the
// net package's own descriptors (via syscall.RawConn, so the runtime
// netpoller still parks the goroutines). The raw-syscall route keeps the
// module dependency-free — the stdlib syscall package lacks the mmsghdr
// type, so it is declared here; its layout (a Msghdr plus a 32-bit
// received-length, padded to 8 bytes) is identical on linux/amd64 and
// linux/arm64, the two GOARCHes this file builds for. Everything —
// buffers, iovecs, headers, sockaddrs, the RawConn callbacks — is
// allocated once at Start, so the steady-state batch path performs zero
// allocations per datagram.

import (
	"encoding/binary"
	"net"
	"net/netip"
	"syscall"
	"time"
	"unsafe"

	"lbrm/internal/vtime"
)

// batchSupported reports that the mmsg datapath is available.
func batchSupported() bool { return true }

// mmsghdr mirrors struct mmsghdr from <sys/socket.h>.
type mmsghdr struct {
	hdr  syscall.Msghdr
	mlen uint32 // bytes received/sent for this message (msg_len)
	_    [4]byte
}

// egress is the coalescing transmit ring: datagrams enqueued inside one
// handler critical section accumulate here and leave in one sendmmsg.
// All state is preallocated at Start and guarded by the node mutex.
type egress struct {
	cap int
	n   int
	// Per-slot datagram state. bufs hold copies of the payloads (the
	// handler's buffer is only valid during its call); names hold the
	// destination sockaddrs; ttls is 0 for unicast, the clamped IP TTL
	// for multicast (TTL changes split a flush into runs).
	bufs  [][]byte
	lens  []int
	ttls  []int
	names []syscall.RawSockaddrInet4
	iovs  []syscall.Iovec
	// Send-side arrays, indexed by packed message rather than ring slot:
	// sendRun folds runs of equal-size datagrams to one destination into
	// a single UDP_SEGMENT super-message (one mmsghdr whose iovec array
	// spans the run's ring slots), so hdrs[m] may carry many slots. segs
	// and slotOf record the fold (datagram count and first ring slot);
	// cmsgs hold the per-message UDP_SEGMENT control buffers.
	hdrs   []mmsghdr
	segs   []int
	slotOf []int
	cmsgs  [][]byte
	// gsoOK starts true and latches false the first time the kernel
	// rejects UDP_SEGMENT (pre-4.18, or a socket type that lacks it);
	// from then on every datagram ships as its own mmsghdr.
	gsoOK bool
	// Pre-bound RawConn write callback and its in/out state: creating a
	// closure per flush would allocate, so one closure reads its
	// arguments from these fields for the node's lifetime.
	writeFn func(fd uintptr) bool
	wOff    int
	wCnt    int
	wRes    int
	wErrno  syscall.Errno
	// flushTimer bounds how long an enqueued datagram can wait in
	// deadline mode (Config.FlushInterval > 0): armed on the first
	// datagram of every batch, cancelled when the batch flushes first.
	// In immediate mode it never arms — every legal entry point into the
	// ring (Do, read dispatch, a guardedTimer callback) ends its
	// critical section with flushOnExit, which is also why the ring
	// needs no lock of its own (see the Env contract in
	// internal/transport).
	flushTimer    *guardedTimer
	flushAfter    time.Duration
	deadlineArmed bool
}

// UDP generic segmentation offload (kernel ≥4.18): a UDP_SEGMENT cmsg on
// a send tells the kernel to split the payload into gso-size datagrams
// after one pass through the expensive per-send stack (route, skb, socket
// charge) — the dominant cost of small-datagram floods. The stdlib
// syscall package predates the option, so the constants live here.
const (
	solUDP     = 17  // SOL_UDP
	udpSegment = 103 // UDP_SEGMENT
	// maxGSOSegs caps datagrams per super-message (UDP_MAX_SEGMENTS).
	maxGSOSegs = 64
	// maxGSOBytes keeps a super-message under the 64 KiB IP datagram
	// ceiling with room for headers.
	maxGSOBytes = 65000
)

// gsoUnsupported classifies a send errno as "this kernel or socket has no
// UDP_SEGMENT" rather than a transient transmit failure.
func gsoUnsupported(e syscall.Errno) bool {
	return e == syscall.EINVAL || e == syscall.ENOPROTOOPT || e == syscall.EOPNOTSUPP
}

// startBatch allocates the egress ring and caches the unicast RawConn.
func (n *Node) startBatch() error {
	raw, err := n.ucast.SyscallConn()
	if err != nil {
		return err
	}
	n.ucastRaw = raw
	eg := &egress{
		cap:    n.cfg.Batch,
		bufs:   make([][]byte, n.cfg.Batch),
		lens:   make([]int, n.cfg.Batch),
		ttls:   make([]int, n.cfg.Batch),
		names:  make([]syscall.RawSockaddrInet4, n.cfg.Batch),
		iovs:   make([]syscall.Iovec, n.cfg.Batch),
		hdrs:   make([]mmsghdr, n.cfg.Batch),
		segs:   make([]int, n.cfg.Batch),
		slotOf: make([]int, n.cfg.Batch),
		cmsgs:  make([][]byte, n.cfg.Batch),
		gsoOK:  true,
	}
	for i := range eg.bufs {
		eg.bufs[i] = make([]byte, n.cfg.ReadBuffer)
	}
	for i := range eg.cmsgs {
		// Level, type and length never change; only the gso size is
		// written at fold time.
		cb := make([]byte, syscall.CmsgSpace(2))
		ch := (*syscall.Cmsghdr)(unsafe.Pointer(&cb[0]))
		ch.Level = solUDP
		ch.Type = udpSegment
		ch.SetLen(syscall.CmsgLen(2))
		eg.cmsgs[i] = cb
	}
	eg.writeFn = func(fd uintptr) bool {
		r1, _, errno := syscall.Syscall6(sysSENDMMSG, fd,
			uintptr(unsafe.Pointer(&eg.hdrs[eg.wOff])), uintptr(eg.wCnt), 0, 0, 0)
		if errno == syscall.EAGAIN {
			return false // park on the netpoller until writable
		}
		if errno != 0 {
			eg.wRes, eg.wErrno = 0, errno
		} else {
			eg.wRes, eg.wErrno = int(r1), 0
		}
		return true
	}
	n.eg = eg
	eg.flushAfter = n.cfg.FlushInterval
	g := &guardedTimer{n: n, fn: n.deadlineFlush}
	g.t = vtime.Real{}.AfterFunc(time.Hour, g.run)
	g.t.Stop() // armed lazily by the first enqueue
	eg.flushTimer = g
	return nil
}

// deadlineFlush runs under the node mutex when the FlushInterval deadline
// expires with datagrams still coalescing.
func (n *Node) deadlineFlush() {
	if n.eg.deadlineArmed {
		n.eg.deadlineArmed = false
		n.mx.txFlushDeadline.Inc()
		n.flushLocked()
	}
}

// egEnqueue copies one datagram into the egress ring (mu held), flushing
// when the ring fills. With FlushInterval 0 the caller's critical-section
// exit flushes instead (flushOnExit); otherwise the deadline timer is
// armed on the first datagram of a batch.
func (n *Node) egEnqueue(dst netip.AddrPort, ttl int, data []byte) error {
	eg := n.eg
	a := dst.Addr()
	if len(data) > len(eg.bufs[0]) || !a.Is4() {
		// Oversized or non-IPv4 destination: flush what's queued so
		// ordering holds, then take the single-packet escape hatch.
		n.flushLocked()
		return n.writeNow(dst, ttl, data)
	}
	i := eg.n
	copy(eg.bufs[i], data)
	eg.lens[i] = len(data)
	eg.ttls[i] = ttl
	sa := &eg.names[i]
	sa.Family = syscall.AF_INET
	sa.Addr = a.As4()
	// sin_port is big-endian in memory regardless of host order.
	binary.BigEndian.PutUint16((*[2]byte)(unsafe.Pointer(&sa.Port))[:], dst.Port())
	eg.n = i + 1
	if eg.n == eg.cap {
		n.flushLocked()
	} else if eg.flushAfter > 0 && !eg.deadlineArmed {
		eg.deadlineArmed = true
		eg.flushTimer.Reset(eg.flushAfter)
	}
	return nil
}

// flushOnExit ships the coalesced batch at the end of a handler critical
// section (mu held). In deadline mode the timer owns the flush instead,
// trading bounded latency (≤ FlushInterval) for larger batches.
func (n *Node) flushOnExit() {
	if n.eg != nil && n.eg.n > 0 && n.cfg.FlushInterval == 0 {
		n.flushLocked()
	}
}

// flushLocked transmits everything in the egress ring (mu held). Entries
// are shipped in enqueue order; a multicast entry whose TTL differs from
// the socket's current IP_MULTICAST_TTL ends the current sendmmsg run so
// the setsockopt lands between runs (unicast entries are TTL-agnostic and
// never split a run).
func (n *Node) flushLocked() {
	eg := n.eg
	if eg == nil || eg.n == 0 {
		return
	}
	if eg.deadlineArmed {
		eg.deadlineArmed = false
		eg.flushTimer.Stop()
	}
	total := eg.n
	eg.n = 0
	start := 0
	for i := 0; i < total; i++ {
		if eg.ttls[i] > 0 && eg.ttls[i] != n.lastTTL {
			n.sendRun(start, i)
			start = i
			if err := n.setMulticastTTL(eg.ttls[i]); err != nil {
				n.mx.txErrors.Inc()
			}
		}
	}
	n.sendRun(start, total)
}

// sendRun transmits ring slots [start, end) with as few sendmmsg calls as
// the socket allows. Consecutive slots carrying equal-size datagrams to
// one destination — the shape of every flood, burst retransmission and
// heartbeat fan-out — are folded into a single UDP_SEGMENT super-message:
// the kernel walks its per-send path once and splits at the segment
// boundary, which is exactly the per-datagram framing the receiver would
// have seen unfolded. A shorter datagram may ride as the final segment;
// anything else (size growth, new destination, 64-segment or 64 KiB cap)
// starts a new message.
func (n *Node) sendRun(start, end int) {
	eg := n.eg
	if start >= end {
		return
	}
	m := 0 // packed message count
	for i := start; i < end; {
		sz := eg.lens[i]
		eg.iovs[i].Base = &eg.bufs[i][0]
		eg.iovs[i].Len = uint64(sz)
		j := i + 1
		if eg.gsoOK && sz > 0 {
			total := sz
			for j < end && j-i < maxGSOSegs && eg.names[j] == eg.names[i] {
				l := eg.lens[j]
				if l == 0 || l > sz || total+l > maxGSOBytes {
					break
				}
				eg.iovs[j].Base = &eg.bufs[j][0]
				eg.iovs[j].Len = uint64(l)
				total += l
				j++
				if l < sz {
					break // a short segment must be the last
				}
			}
		}
		h := &eg.hdrs[m]
		h.hdr.Name = (*byte)(unsafe.Pointer(&eg.names[i]))
		h.hdr.Namelen = syscall.SizeofSockaddrInet4
		h.hdr.Iov = &eg.iovs[i] // slots are contiguous, so iovs[i:j] are too
		h.hdr.Iovlen = uint64(j - i)
		if j-i > 1 {
			cb := eg.cmsgs[m]
			*(*uint16)(unsafe.Pointer(&cb[syscall.CmsgLen(0)])) = uint16(sz)
			h.hdr.Control = &cb[0]
			h.hdr.SetControllen(len(cb))
		} else {
			h.hdr.Control = nil
			h.hdr.Controllen = 0
		}
		eg.segs[m] = j - i
		eg.slotOf[m] = i
		m++
		i = j
	}
	off := 0
	for off < m {
		eg.wOff, eg.wCnt = off, m-off
		if err := n.ucastRaw.Write(eg.writeFn); err != nil {
			return // socket closed
		}
		if eg.wErrno != 0 || eg.wRes <= 0 {
			if eg.segs[off] > 1 && gsoUnsupported(eg.wErrno) {
				// First UDP_SEGMENT rejection: latch GSO off and resend
				// everything not yet shipped, one mmsghdr per datagram.
				eg.gsoOK = false
				n.sendRun(eg.slotOf[off], end)
				return
			}
			// Drop the head message so one bad destination cannot
			// wedge the ring; the loss is counted. UDP sends are
			// fire-and-forget on the fallback path too.
			n.mx.txErrors.Inc()
			off++
			continue
		}
		sent, gso := 0, 0
		for k := off; k < off+eg.wRes; k++ {
			sent += eg.segs[k]
			if eg.segs[k] > 1 {
				gso += eg.segs[k]
			}
		}
		n.mx.txBatch.Observe(uint64(sent))
		if gso > 0 {
			n.mx.txGSOSegs.Add(uint64(gso))
		}
		off += eg.wRes
	}
}

// ingress is one read loop's recvmmsg state: a pooled batch of receive
// buffers and headers, preallocated so the steady-state receive path
// performs no allocations.
type ingress struct {
	cap    int
	bufs   [][]byte
	names  []syscall.RawSockaddrInet4
	iovs   []syscall.Iovec
	hdrs   []mmsghdr
	readFn func(fd uintptr) bool
	res    int
	errno  syscall.Errno
}

func newIngress(batch, bufSize int) *ingress {
	in := &ingress{
		cap:   batch,
		bufs:  make([][]byte, batch),
		names: make([]syscall.RawSockaddrInet4, batch),
		iovs:  make([]syscall.Iovec, batch),
		hdrs:  make([]mmsghdr, batch),
	}
	for i := range in.bufs {
		in.bufs[i] = make([]byte, bufSize)
		in.iovs[i].Base = &in.bufs[i][0]
		in.iovs[i].Len = uint64(bufSize)
		h := &in.hdrs[i]
		h.hdr.Name = (*byte)(unsafe.Pointer(&in.names[i]))
		h.hdr.Namelen = syscall.SizeofSockaddrInet4
		h.hdr.Iov = &in.iovs[i]
		h.hdr.Iovlen = 1
	}
	in.readFn = func(fd uintptr) bool {
		r1, _, errno := syscall.Syscall6(sysRECVMMSG, fd,
			uintptr(unsafe.Pointer(&in.hdrs[0])), uintptr(in.cap), 0, 0, 0)
		if errno == syscall.EAGAIN {
			return false // park on the netpoller until readable
		}
		if errno != 0 {
			in.res, in.errno = 0, errno
		} else {
			in.res, in.errno = int(r1), 0
		}
		return true
	}
	return in
}

// recv fills the batch from the socket, returning the message count.
func (in *ingress) recv(raw syscall.RawConn) (int, error) {
	// msg_namelen is value-result: restore before every call.
	for i := 0; i < in.cap; i++ {
		in.hdrs[i].hdr.Namelen = syscall.SizeofSockaddrInet4
	}
	if err := raw.Read(in.readFn); err != nil {
		return 0, err // socket closed
	}
	if in.errno != 0 {
		if in.errno == syscall.EINTR {
			return 0, nil
		}
		return 0, in.errno
	}
	return in.res, nil
}

// from decodes message i's source address.
func (in *ingress) from(i int) netip.AddrPort {
	sa := &in.names[i]
	port := binary.BigEndian.Uint16((*[2]byte)(unsafe.Pointer(&sa.Port))[:])
	return netip.AddrPortFrom(netip.AddrFrom4(sa.Addr), port)
}

// readLoopBatch drains one socket with recvmmsg and dispatches each batch
// to the handler under a single mutex acquisition, flushing any egress
// the handler produced before releasing it — so a burst of NACKs answered
// by a burst of retransmissions costs two syscalls, not 2×burst.
func (n *Node) readLoopBatch(conn *net.UDPConn) {
	n.wg.Add(1)
	go func() {
		defer n.wg.Done()
		raw, err := conn.SyscallConn()
		if err != nil {
			return
		}
		in := newIngress(n.cfg.Batch, n.cfg.ReadBuffer)
		for {
			k, err := in.recv(raw)
			if err != nil {
				return
			}
			if k == 0 {
				continue
			}
			n.mx.rxBatch.Observe(uint64(k))
			var bytes uint64
			n.mu.Lock()
			if n.closed {
				n.mu.Unlock()
				return
			}
			for i := 0; i < k; i++ {
				sz := int(in.hdrs[i].mlen)
				bytes += uint64(sz)
				n.handler.Recv(n.internFrom(in.from(i)), in.bufs[i][:sz])
			}
			n.flushOnExit()
			n.mu.Unlock()
			n.mx.rxPkts.Add(uint64(k))
			n.mx.rxBytes.Add(bytes)
		}
	}()
}
