package transport_test

import (
	"testing"
	"time"

	"lbrm/internal/transport"
	"lbrm/internal/transport/transporttest"
	"lbrm/internal/wire"
)

// echoHandler sends back whatever it receives and multicasts on start.
type echoHandler struct{ env transport.Env }

func (h *echoHandler) Start(env transport.Env) {
	h.env = env
	env.Multicast(5, transport.TTLSite, []byte("hello"))
}

func (h *echoHandler) Recv(from transport.Addr, data []byte) {
	h.env.Send(from, data)
}

func TestTraceObservesAllDirections(t *testing.T) {
	var events []transport.TraceEvent
	inner := &echoHandler{}
	h := transport.Trace(inner, func(ev transport.TraceEvent) {
		ev.Data = append([]byte(nil), ev.Data...)
		events = append(events, ev)
	})
	env := transporttest.NewEnv("traced")
	h.Start(env)
	peer := transporttest.Addr("peer")
	h.Recv(peer, []byte("ping"))

	if len(events) != 3 {
		t.Fatalf("events = %d, want 3 (mcast, recv, send)", len(events))
	}
	if events[0].Dir != transport.DirMcastOut || events[0].Group != 5 ||
		events[0].TTL != transport.TTLSite || string(events[0].Data) != "hello" {
		t.Fatalf("mcast event = %+v", events[0])
	}
	if events[1].Dir != transport.DirIn || events[1].Peer != peer || string(events[1].Data) != "ping" {
		t.Fatalf("recv event = %+v", events[1])
	}
	if events[2].Dir != transport.DirOut || events[2].Peer != peer || string(events[2].Data) != "ping" {
		t.Fatalf("send event = %+v", events[2])
	}
	// The traffic still flowed to the real env.
	if len(env.Mcasts) != 1 || len(env.Sents) != 1 {
		t.Fatalf("env traffic = %d mcast %d sent", len(env.Mcasts), len(env.Sents))
	}
	_ = time.Now
}

func TestDirectionString(t *testing.T) {
	if transport.DirIn.String() != "recv" || transport.DirOut.String() != "send" ||
		transport.DirMcastOut.String() != "mcast" {
		t.Fatal("direction names wrong")
	}
	if transport.Direction(9).String() != "?" {
		t.Fatal("unknown direction")
	}
}

// TestTraceComposesWithRealProtocol: a traced LBRM receiver still works
// and its trace shows the NACK it sent.
func TestTraceWrapsWithoutBehaviourChange(t *testing.T) {
	// Handler that joins and sends one NACK-looking packet on a timer.
	inner := transport.NewHandlerFunc(func(env transport.Env, from transport.Addr, data []byte) {})
	var count int
	h := transport.Trace(inner, func(transport.TraceEvent) { count++ })
	env := transporttest.NewEnv("x")
	h.Start(env)
	p := wire.Packet{Type: wire.TypeData, Source: 1, Group: 1, Seq: 1}
	buf, _ := p.Marshal()
	h.Recv(transporttest.Addr("src"), buf)
	if count != 1 {
		t.Fatalf("trace count = %d", count)
	}
}
