// Package transport defines the environment interface that LBRM protocol
// state machines run against. Two implementations exist: the deterministic
// network simulator (internal/netsim) and real UDP multicast
// (internal/transport/udp). Protocol code written against Env is oblivious
// to which one it is running on.
//
// Concurrency contract: an implementation must deliver Recv calls and timer
// callbacks for one Handler serially (never two at once). The simulator
// achieves this by being single-threaded; the UDP binding holds a per-node
// mutex. Handlers therefore need no internal locking.
//
// The same serialization governs Env: its methods may be called only from
// inside a handler callback (Start, Recv), a timer scheduled through
// AfterFunc, or the binding's explicit serialization hook (udp.Node.Do).
// Calling a captured Env from an unsynchronized goroutine races the
// binding's internal transmit state.
package transport

import (
	"math/rand"
	"time"

	"lbrm/internal/vtime"
	"lbrm/internal/wire"
)

// Addr identifies a protocol endpoint. Implementations must be comparable
// with == (protocol code uses addresses as map keys).
type Addr interface {
	// Network names the transport ("sim" or "udp").
	Network() string
	// String renders the address; it must round-trip through the
	// implementation's address parser (used in discovery replies and
	// primary redirects).
	String() string
}

// TTL scopes for multicast transmission. The simulator maps these to link
// TTL thresholds; the UDP binding sets the IP multicast TTL.
const (
	// TTLLAN confines a packet to the local network segment.
	TTLLAN = 1
	// TTLSite confines a packet to the sender's site (does not cross the
	// tail circuit), the scope a secondary logger uses for local
	// re-multicast (§2.2.1).
	TTLSite = 15
	// TTLRegion confines a packet to a region of sites (multi-level
	// hierarchy, paper §7 future work).
	TTLRegion = 63
	// TTLGlobal reaches the whole group.
	TTLGlobal = 127
)

// Env is the world as seen by one protocol node: a clock, timers, unicast
// and scoped multicast transmission, and group membership.
type Env interface {
	// Now returns the current (real or simulated) time.
	Now() time.Time
	// AfterFunc schedules fn to run once after d, serialized with Recv.
	AfterFunc(d time.Duration, fn func()) vtime.Timer
	// Send transmits a datagram to a unicast address.
	Send(to Addr, data []byte) error
	// Multicast transmits a datagram to a group with the given TTL scope.
	Multicast(g wire.GroupID, ttl int, data []byte) error
	// Join subscribes this node to a multicast group.
	Join(g wire.GroupID) error
	// Leave unsubscribes this node from a multicast group.
	Leave(g wire.GroupID) error
	// LocalAddr returns this node's unicast address.
	LocalAddr() Addr
	// ParseAddr parses an address string previously produced by an Addr of
	// this transport (used for discovery replies / primary redirects).
	ParseAddr(s string) (Addr, error)
	// Rand returns the node's random source. In the simulator it is seeded
	// deterministically.
	Rand() *rand.Rand
}

// Handler is a protocol node: a reactive state machine driven by packet
// arrivals and timers.
type Handler interface {
	// Start is called exactly once, before any Recv, with the node's
	// environment. The handler may send, join groups and set timers.
	Start(env Env)
	// Recv delivers one datagram. The buffer is only valid for the
	// duration of the call.
	Recv(from Addr, data []byte)
}

// HandlerFunc adapts a receive function (with no startup work) to Handler.
type HandlerFunc func(env Env, from Addr, data []byte)

type funcHandler struct {
	fn  HandlerFunc
	env Env
}

// NewHandlerFunc wraps fn as a Handler.
func NewHandlerFunc(fn HandlerFunc) Handler { return &funcHandler{fn: fn} }

func (h *funcHandler) Start(env Env)               { h.env = env }
func (h *funcHandler) Recv(from Addr, data []byte) { h.fn(h.env, from, data) }
