// Package shard partitions the UDP datapath across per-group shards.
//
// LBRM traffic is naturally keyed by multicast group: every data packet,
// heartbeat, NACK and retransmission names the group it belongs to in the
// fixed header, and protocol state (sequence trackers, retention rings,
// recovery episodes) never crosses groups. A Fleet exploits that by giving
// each shard its own udp.Node — its own unicast socket, its own egress and
// ingress rings, its own handler instance, and its own mutex — so shards
// share no locks and scale datapath throughput with cores. Group-to-shard
// assignment is a stable modulus (Assign); ingress needs no cross-shard
// dispatch because each shard joins only its own groups, while unicast
// replies land on the socket that sent the corresponding request.
//
// For the cases where several groups do share one socket (a logger serving
// a whole site, a monitor tapping many groups), Mux routes each datagram to
// a per-group handler using wire.PeekGroup without copying or fully
// decoding the packet.
package shard

import (
	"fmt"
	"net/netip"
	"slices"

	"lbrm/internal/transport"
	"lbrm/internal/transport/udp"
	"lbrm/internal/wire"
)

// Assign maps a group to a shard index in [0, shards). The mapping is a
// plain modulus: stable across restarts, independent of join order, and
// uniform when group IDs are dense (the common case — groups are small
// integers chosen by the exercise manager).
func Assign(g wire.GroupID, shards int) int {
	if shards <= 1 {
		return 0
	}
	return int(uint32(g) % uint32(shards))
}

// ValidateCounts rejects nonsensical datapath sizing up front: a fleet
// needs at least one group and one shard, and a negative batch ring has
// no meaning (0 selects the default ring, 1 disables batching). The
// commands call this on their -groups/-shards/-batch flags right after
// flag parsing, so a typo fails with a message naming the flag instead
// of a zero-shard panic or a silently empty fleet.
func ValidateCounts(groups, shards, batch int) error {
	if groups < 1 {
		return fmt.Errorf("shard: -groups must be at least 1, got %d", groups)
	}
	if shards < 1 {
		return fmt.Errorf("shard: -shards must be at least 1, got %d", shards)
	}
	if batch < 0 {
		return fmt.Errorf("shard: -batch must not be negative, got %d (0 = default ring, 1 = unbatched)", batch)
	}
	return nil
}

// GroupSpecs derives n multicast endpoints from a base "ip:port" spec:
// group i (1-based) gets port base+i-1 on the base address. This is the
// canonical layout for sharded deployments — one group per simulated
// exercise channel, consecutive ports, one -mcast flag.
func GroupSpecs(base string, n int) (map[wire.GroupID]string, error) {
	if n < 1 {
		return nil, fmt.Errorf("shard: need at least 1 group, got %d", n)
	}
	ap, err := netip.ParseAddrPort(base)
	if err != nil {
		return nil, fmt.Errorf("shard: bad base spec %q: %w", base, err)
	}
	if int(ap.Port())+n-1 > 65535 {
		return nil, fmt.Errorf("shard: %d groups from port %d exceed the port space", n, ap.Port())
	}
	out := make(map[wire.GroupID]string, n)
	for i := 0; i < n; i++ {
		out[wire.GroupID(i+1)] = netip.AddrPortFrom(ap.Addr(), ap.Port()+uint16(i)).String()
	}
	return out, nil
}

// Config configures a Fleet.
type Config struct {
	// Shards is the number of datapath shards (default 1).
	Shards int
	// Groups maps every group the fleet serves to its multicast endpoint;
	// each shard receives the subset Assign sends its way.
	Groups map[wire.GroupID]string
	// Node is the per-shard udp.Config template. Groups is overwritten
	// with the shard's subset. A Listen spec with an explicit nonzero
	// port becomes a consecutive-port range when Shards > 1 — shard s
	// binds port+s, mirroring the GroupSpecs layout — so a fixed
	// endpoint (a logger peers point at) stays predictable; empty or
	// ":0" forms let every shard pick its own port. MetricsPrefix gains
	// a ".shardN" suffix when Shards > 1.
	Node udp.Config
}

// shardListen derives shard s's unicast bind spec from the template:
// explicit ports become consecutive per-shard ports, wildcard forms pass
// through untouched.
func shardListen(base string, s, shards int) (string, error) {
	if shards <= 1 || s == 0 || base == "" {
		return base, nil
	}
	ap, err := netip.ParseAddrPort(base)
	if err != nil || ap.Port() == 0 {
		// Not an explicit addr:port (hostnames, ":0" forms): every
		// shard can bind it as-is.
		return base, nil
	}
	if int(ap.Port())+shards-1 > 65535 {
		return "", fmt.Errorf("shard: %d shards from port %d exceed the port space", shards, ap.Port())
	}
	return netip.AddrPortFrom(ap.Addr(), ap.Port()+uint16(s)).String(), nil
}

// HandlerFactory builds the protocol handler for one shard. It receives
// the shard index and the shard's group subset (sorted ascending) and
// returns the handler that shard's node will run. Handlers of different
// shards run concurrently — they must not share mutable state.
type HandlerFactory func(shard int, groups []wire.GroupID) transport.Handler

// Fleet is a set of per-shard UDP nodes covering one group space.
type Fleet struct {
	shards int
	nodes  []*udp.Node
}

// Start partitions cfg.Groups across cfg.Shards shards and starts one
// udp.Node per shard. On error, already-started shards are closed.
func Start(cfg Config, mk HandlerFactory) (*Fleet, error) {
	if cfg.Shards <= 0 {
		cfg.Shards = 1
	}
	if mk == nil {
		return nil, fmt.Errorf("shard: nil handler factory")
	}
	// Partition the group space; sort for deterministic factory input.
	subsets := make([][]wire.GroupID, cfg.Shards)
	for g := range cfg.Groups {
		s := Assign(g, cfg.Shards)
		subsets[s] = append(subsets[s], g)
	}
	for _, gs := range subsets {
		slices.Sort(gs)
	}
	f := &Fleet{shards: cfg.Shards, nodes: make([]*udp.Node, 0, cfg.Shards)}
	for s := 0; s < cfg.Shards; s++ {
		ncfg := cfg.Node
		ncfg.Groups = make(map[wire.GroupID]string, len(subsets[s]))
		for _, g := range subsets[s] {
			ncfg.Groups[g] = cfg.Groups[g]
		}
		if cfg.Shards > 1 {
			prefix := ncfg.MetricsPrefix
			if prefix == "" {
				prefix = "udp"
			}
			ncfg.MetricsPrefix = fmt.Sprintf("%s.shard%d", prefix, s)
		}
		listen, err := shardListen(cfg.Node.Listen, s, cfg.Shards)
		if err != nil {
			f.Close()
			return nil, err
		}
		ncfg.Listen = listen
		node, err := udp.Start(ncfg, mk(s, subsets[s]))
		if err != nil {
			f.Close()
			return nil, fmt.Errorf("shard %d: %w", s, err)
		}
		f.nodes = append(f.nodes, node)
	}
	return f, nil
}

// Shards returns the shard count.
func (f *Fleet) Shards() int { return f.shards }

// Node returns the node of shard s.
func (f *Fleet) Node(s int) *udp.Node { return f.nodes[s] }

// NodeFor returns the node owning group g.
func (f *Fleet) NodeFor(g wire.GroupID) *udp.Node {
	return f.nodes[Assign(g, f.shards)]
}

// Do runs fn serialized with group g's shard handler (see udp.Node.Do).
func (f *Fleet) Do(g wire.GroupID, fn func()) { f.NodeFor(g).Do(fn) }

// Close stops every shard, returning the first error.
func (f *Fleet) Close() error {
	var err error
	for _, n := range f.nodes {
		if e := n.Close(); e != nil && err == nil {
			err = e
		}
	}
	return err
}

// Mux routes datagrams arriving on one shared socket to per-group
// handlers, peeking the group ID from the fixed header without a full
// decode or a copy. Datagrams that fail the peek (non-LBRM) or name an
// unregistered group go to the fallback handler, if any; otherwise they
// are dropped, mirroring what a group-specific handler would do with a
// packet it cannot parse.
type Mux struct {
	handlers map[wire.GroupID]transport.Handler
	fallback transport.Handler
}

// NewMux builds a group router. fallback may be nil.
func NewMux(handlers map[wire.GroupID]transport.Handler, fallback transport.Handler) *Mux {
	m := &Mux{handlers: make(map[wire.GroupID]transport.Handler, len(handlers)), fallback: fallback}
	for g, h := range handlers {
		m.handlers[g] = h
	}
	return m
}

// Start implements transport.Handler: every registered handler (and the
// fallback) observes the same environment. They share the owning node's
// serialization, so the single-threaded handler contract holds across the
// whole mux.
func (m *Mux) Start(env transport.Env) {
	seen := make(map[transport.Handler]bool, len(m.handlers)+1)
	for _, g := range m.groupsSorted() {
		h := m.handlers[g]
		if !seen[h] {
			seen[h] = true
			h.Start(env)
		}
	}
	if m.fallback != nil && !seen[m.fallback] {
		m.fallback.Start(env)
	}
}

// groupsSorted keeps Start deterministic (a handler registered under
// several groups starts once, in ascending group order).
func (m *Mux) groupsSorted() []wire.GroupID {
	gs := make([]wire.GroupID, 0, len(m.handlers))
	for g := range m.handlers {
		gs = append(gs, g)
	}
	slices.Sort(gs)
	return gs
}

// Recv implements transport.Handler.
func (m *Mux) Recv(from transport.Addr, data []byte) {
	if g, ok := wire.PeekGroup(data); ok {
		if h, ok := m.handlers[g]; ok {
			h.Recv(from, data)
			return
		}
	}
	if m.fallback != nil {
		m.fallback.Recv(from, data)
	}
}
