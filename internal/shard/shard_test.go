package shard

import (
	"fmt"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"lbrm/internal/transport"
	"lbrm/internal/transport/udp"
	"lbrm/internal/wire"
)

func TestAssign(t *testing.T) {
	if got := Assign(7, 1); got != 0 {
		t.Fatalf("Assign(7,1) = %d, want 0", got)
	}
	if got := Assign(7, 0); got != 0 {
		t.Fatalf("Assign(7,0) = %d, want 0", got)
	}
	// Dense group IDs spread uniformly and stably.
	counts := make([]int, 4)
	for g := wire.GroupID(1); g <= 16; g++ {
		s := Assign(g, 4)
		if s != Assign(g, 4) {
			t.Fatalf("Assign unstable for group %d", g)
		}
		counts[s]++
	}
	for s, c := range counts {
		if c != 4 {
			t.Fatalf("shard %d got %d of 16 dense groups, want 4", s, c)
		}
	}
}

func TestGroupSpecs(t *testing.T) {
	specs, err := GroupSpecs("239.9.9.9:7000", 3)
	if err != nil {
		t.Fatal(err)
	}
	want := map[wire.GroupID]string{
		1: "239.9.9.9:7000",
		2: "239.9.9.9:7001",
		3: "239.9.9.9:7002",
	}
	if len(specs) != len(want) {
		t.Fatalf("got %d specs, want %d", len(specs), len(want))
	}
	for g, spec := range want {
		if specs[g] != spec {
			t.Errorf("group %d: got %q, want %q", g, specs[g], spec)
		}
	}
	if _, err := GroupSpecs("not-an-addr", 2); err == nil {
		t.Error("bad base spec accepted")
	}
	if _, err := GroupSpecs("239.9.9.9:65534", 4); err == nil {
		t.Error("port-space overflow accepted")
	}
	if _, err := GroupSpecs("239.9.9.9:7000", 0); err == nil {
		t.Error("zero groups accepted")
	}
}

func TestValidateCounts(t *testing.T) {
	cases := []struct {
		name                  string
		groups, shards, batch int
		wantErr               bool
		wantFlag              string
	}{
		{"defaults", 1, 1, 0, false, ""},
		{"sharded", 8, 4, 32, false, ""},
		{"unbatched", 2, 2, 1, false, ""},
		{"zero groups", 0, 1, 0, true, "-groups"},
		{"negative groups", -3, 1, 0, true, "-groups"},
		{"zero shards", 4, 0, 0, true, "-shards"},
		{"negative shards", 4, -1, 0, true, "-shards"},
		{"negative batch", 4, 2, -8, true, "-batch"},
	}
	for _, tc := range cases {
		err := ValidateCounts(tc.groups, tc.shards, tc.batch)
		if tc.wantErr {
			if err == nil {
				t.Errorf("%s: ValidateCounts(%d, %d, %d) accepted", tc.name, tc.groups, tc.shards, tc.batch)
			} else if !strings.Contains(err.Error(), tc.wantFlag) {
				t.Errorf("%s: error %q does not name %s", tc.name, err, tc.wantFlag)
			}
		} else if err != nil {
			t.Errorf("%s: ValidateCounts(%d, %d, %d) = %v, want nil", tc.name, tc.groups, tc.shards, tc.batch, err)
		}
	}
}

func TestShardListen(t *testing.T) {
	cases := []struct {
		base      string
		s, shards int
		want      string
	}{
		{"127.0.0.1:7001", 0, 3, "127.0.0.1:7001"},
		{"127.0.0.1:7001", 2, 3, "127.0.0.1:7003"},
		{"127.0.0.1:0", 1, 2, "127.0.0.1:0"},
		{":0", 1, 2, ":0"},
		{"", 1, 2, ""},
		{"localhost:7001", 1, 2, "localhost:7001"},
		{"127.0.0.1:7001", 1, 1, "127.0.0.1:7001"},
	}
	for _, tc := range cases {
		got, err := shardListen(tc.base, tc.s, tc.shards)
		if err != nil {
			t.Errorf("shardListen(%q, %d, %d): %v", tc.base, tc.s, tc.shards, err)
			continue
		}
		if got != tc.want {
			t.Errorf("shardListen(%q, %d, %d) = %q, want %q", tc.base, tc.s, tc.shards, got, tc.want)
		}
	}
	if _, err := shardListen("127.0.0.1:65534", 3, 4); err == nil {
		t.Error("port-space overflow accepted")
	}
}

// TestFleetExplicitListenPorts starts a two-shard fleet on an explicit
// port and checks the consecutive-port derivation end to end.
func TestFleetExplicitListenPorts(t *testing.T) {
	base, err := net.ListenUDP("udp4", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		t.Fatal(err)
	}
	port := base.LocalAddr().(*net.UDPAddr).Port
	base.Close()
	if port+1 > 65535 {
		t.Skip("no room for a second consecutive port")
	}
	f, err := Start(Config{
		Shards: 2,
		Groups: map[wire.GroupID]string{1: "239.77.7.7:17000", 2: "239.77.7.7:17001"},
		Node:   udp.Config{Listen: fmt.Sprintf("127.0.0.1:%d", port)},
	}, func(s int, gs []wire.GroupID) transport.Handler { return &recHandler{} })
	if err != nil {
		t.Skipf("consecutive port %d or %d taken: %v", port, port+1, err)
	}
	defer f.Close()
	for s := 0; s < 2; s++ {
		want := fmt.Sprintf("127.0.0.1:%d", port+s)
		if got := f.Node(s).Addr().String(); got != want {
			t.Errorf("shard %d bound %s, want %s", s, got, want)
		}
	}
}

// recHandler records which handler each datagram reached.
type recHandler struct {
	mu  sync.Mutex
	got [][]byte
}

func (h *recHandler) Start(transport.Env) {}
func (h *recHandler) Recv(_ transport.Addr, data []byte) {
	h.mu.Lock()
	h.got = append(h.got, append([]byte(nil), data...))
	h.mu.Unlock()
}
func (h *recHandler) count() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return len(h.got)
}

// fakeAddr satisfies transport.Addr for direct Mux.Recv calls.
type fakeAddr struct{}

func (fakeAddr) Network() string { return "test" }
func (fakeAddr) String() string  { return "test" }

func packetFor(t *testing.T, g wire.GroupID, payload string) []byte {
	t.Helper()
	p := wire.Packet{Type: wire.TypeData, Group: g, Seq: 1, Payload: []byte(payload)}
	buf, err := p.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	return buf
}

func TestMuxRoutes(t *testing.T) {
	h1, h2, fb := &recHandler{}, &recHandler{}, &recHandler{}
	m := NewMux(map[wire.GroupID]transport.Handler{1: h1, 2: h2}, fb)
	from := fakeAddr{}
	m.Recv(from, packetFor(t, 1, "to-one"))
	m.Recv(from, packetFor(t, 2, "to-two"))
	m.Recv(from, packetFor(t, 2, "to-two-again"))
	m.Recv(from, packetFor(t, 9, "unknown-group"))
	m.Recv(from, []byte("not lbrm at all"))
	if h1.count() != 1 || h2.count() != 2 || fb.count() != 2 {
		t.Fatalf("routing: h1=%d h2=%d fallback=%d, want 1/2/2",
			h1.count(), h2.count(), fb.count())
	}
	// No fallback: unroutable datagrams are dropped, not delivered.
	m2 := NewMux(map[wire.GroupID]transport.Handler{1: h1}, nil)
	m2.Recv(from, []byte("garbage"))
	m2.Recv(from, packetFor(t, 3, "orphan"))
	if h1.count() != 1 {
		t.Fatalf("mux without fallback leaked to h1: %d", h1.count())
	}
}

func TestMuxSharedHandlerStartsOnce(t *testing.T) {
	starts := 0
	counting := &startCounter{n: &starts}
	m := NewMux(map[wire.GroupID]transport.Handler{1: counting, 2: counting, 3: counting}, counting)
	m.Start(nil)
	if starts != 1 {
		t.Fatalf("shared handler started %d times, want 1", starts)
	}
}

type startCounter struct{ n *int }

func (s *startCounter) Start(transport.Env)         { *s.n++ }
func (s *startCounter) Recv(transport.Addr, []byte) {}

// sendEnv captures the env so tests can transmit from a shard handler.
type sendEnv struct {
	mu  sync.Mutex
	env transport.Env
}

func (h *sendEnv) Start(env transport.Env) {
	h.mu.Lock()
	h.env = env
	h.mu.Unlock()
}
func (h *sendEnv) Recv(transport.Addr, []byte) {}

// TestFleetConcurrentEgressOneSocket starts a multi-shard fleet and
// hammers every shard's egress concurrently into a single receiving
// socket. Under -race this pins the no-shared-state property of the
// fleet: each shard owns its own ring and mutex, so concurrent shard
// egress must be data-race free without any fleet-level locking.
func TestFleetConcurrentEgressOneSocket(t *testing.T) {
	rconn, err := net.ListenUDP("udp4", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		t.Fatal(err)
	}
	defer rconn.Close()
	dst := udp.Addr{HostPort: rconn.LocalAddr().String()}

	const shards = 4
	groups, err := GroupSpecs("239.77.0.1:17000", shards)
	if err != nil {
		t.Fatal(err)
	}
	handlers := make([]*sendEnv, shards)
	fleet, err := Start(Config{
		Shards: shards,
		Groups: groups,
		Node:   udp.Config{Listen: "127.0.0.1:0", Batch: 8},
	}, func(s int, gs []wire.GroupID) transport.Handler {
		for _, g := range gs {
			if Assign(g, shards) != s {
				t.Errorf("group %d handed to shard %d, want %d", g, s, Assign(g, shards))
			}
		}
		handlers[s] = &sendEnv{}
		return handlers[s]
	})
	if err != nil {
		t.Fatal(err)
	}
	defer fleet.Close()
	if fleet.Shards() != shards {
		t.Fatalf("Shards() = %d, want %d", fleet.Shards(), shards)
	}
	for g := range groups {
		if fleet.NodeFor(g) != fleet.Node(Assign(g, shards)) {
			t.Fatalf("NodeFor(%d) mismatch", g)
		}
	}

	const per = 50
	var wg sync.WaitGroup
	for s := 0; s < shards; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			payload := []byte(fmt.Sprintf("shard-%d", s))
			for i := 0; i < per; i++ {
				fleet.Node(s).Do(func() {
					if err := handlers[s].env.Send(dst, payload); err != nil {
						t.Errorf("shard %d send: %v", s, err)
					}
				})
				if i%10 == 9 {
					// Pace the flood: the point is concurrent shard
					// egress, not loopback buffer overflow.
					time.Sleep(time.Millisecond)
				}
			}
		}(s)
	}
	wg.Wait()

	rconn.SetReadDeadline(time.Now().Add(5 * time.Second))
	buf := make([]byte, 2048)
	perShard := make(map[string]int)
	for n := 0; n < shards*per; n++ {
		sz, _, err := rconn.ReadFromUDPAddrPort(buf)
		if err != nil {
			t.Fatalf("read after %d/%d datagrams: %v", n, shards*per, err)
		}
		perShard[string(buf[:sz])]++
	}
	for s := 0; s < shards; s++ {
		key := fmt.Sprintf("shard-%d", s)
		if perShard[key] != per {
			t.Errorf("shard %d: delivered %d, want %d", s, perShard[key], per)
		}
	}
}
