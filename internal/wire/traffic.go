package wire

// TrafficClass buckets packet types for recovery-bandwidth accounting —
// the classes of the paper's bandwidth claims (§2.1 heartbeats, §2.2.2
// NACK budget) plus data, retransmission, log-replication sync and a
// catch-all control class. The chaos harness's tail-circuit accounting and
// the per-component transmit metrics (internal/obs) index by this enum, so
// the metrics-vs-tap reconciliation compares like with like.
type TrafficClass uint8

const (
	// ClassData is original data traffic (TypeData).
	ClassData TrafficClass = iota
	// ClassHeartbeat is the variable-heartbeat stream (TypeHeartbeat).
	ClassHeartbeat
	// ClassNack is negative-acknowledgement traffic (TypeNack).
	ClassNack
	// ClassRetrans is retransmitted data (TypeRetrans).
	ClassRetrans
	// ClassSync is primary→replica log replication (TypeLogSync and its
	// acknowledgement, plus the quorum-mode ring token and ring
	// installation traffic).
	ClassSync
	// ClassControl is everything else: acks, acker selection, probes,
	// discovery, redirects, promotion and log-state traffic.
	ClassControl
	// NumTrafficClasses sizes dense per-class arrays.
	NumTrafficClasses
)

var trafficClassNames = [NumTrafficClasses]string{
	ClassData:      "data",
	ClassHeartbeat: "heartbeat",
	ClassNack:      "nack",
	ClassRetrans:   "retrans",
	ClassSync:      "sync",
	ClassControl:   "control",
}

// String returns the stable lowercase class name.
func (c TrafficClass) String() string {
	if c < NumTrafficClasses {
		return trafficClassNames[c]
	}
	return "unknown"
}

// TrafficClassNames returns the class names indexed by TrafficClass.
func TrafficClassNames() []string {
	names := make([]string, NumTrafficClasses)
	copy(names, trafficClassNames[:])
	return names
}

// ClassOf buckets a packet type.
func ClassOf(t Type) TrafficClass {
	switch t {
	case TypeData:
		return ClassData
	case TypeHeartbeat:
		return ClassHeartbeat
	case TypeNack:
		return ClassNack
	case TypeRetrans:
		return ClassRetrans
	case TypeLogSync, TypeLogSyncAck, TypeQuorumAck, TypeRingConfig:
		return ClassSync
	default:
		return ClassControl
	}
}
