package wire

import (
	"bytes"
	"testing"
)

// FuzzUnmarshal feeds arbitrary datagrams to the decoder: it must never
// panic, and anything it accepts must re-encode to the identical bytes
// (the wire format is canonical).
func FuzzUnmarshal(f *testing.F) {
	for _, p := range samplePacketsForFuzz() {
		if buf, err := p.Marshal(); err == nil {
			f.Add(buf)
		}
	}
	f.Add([]byte{})
	f.Add([]byte{0x4C, 0x42, 1, 1})
	f.Fuzz(func(t *testing.T, data []byte) {
		var p Packet
		if err := p.Unmarshal(data); err != nil {
			return
		}
		out, err := p.Marshal()
		if err != nil {
			t.Fatalf("accepted packet failed to re-encode: %+v: %v", p, err)
		}
		if !bytes.Equal(out, data) {
			t.Fatalf("non-canonical decode:\n in  %x\n out %x", data, out)
		}
	})
}

func samplePacketsForFuzz() []Packet {
	return []Packet{
		{Type: TypeData, Source: 7, Group: 3, Seq: 42, Payload: []byte("seed")},
		{Type: TypeHeartbeat, Source: 7, Group: 3, Seq: 42, HeartbeatIdx: 5, PrimaryEpoch: 3},
		{Type: TypeNack, Source: 7, Group: 3, Ranges: []SeqRange{{From: 1, To: 3}}},
		{Type: TypeAckerSelect, Source: 7, Group: 3, Epoch: 3, PAck: 0.04, K: 20},
		{Type: TypeDiscoveryReply, Source: 7, Group: 3, Addr: "host:1"},
		{Type: TypeSourceAck, Source: 7, Group: 3, Seq: 42, Epoch: 2, ReplicaSeq: 40},
		{Type: TypeLogSync, Source: 7, Group: 3, Seq: 50, Epoch: 2, Flags: FlagLogAdvance},
		{Type: TypeLogSyncAck, Source: 7, Group: 3, Seq: 50, Epoch: 2},
		{Type: TypePromote, Source: 7, Group: 3, Seq: 40, Epoch: 2},
		{Type: TypePrimaryRedirect, Source: 7, Group: 3, Epoch: 2, Addr: "replica2:9001"},
	}
}
