package wire

import (
	"bytes"
	"testing"
)

// FuzzUnmarshal feeds arbitrary datagrams to the decoder: it must never
// panic, and anything it accepts must re-encode to the identical bytes
// (the wire format is canonical).
func FuzzUnmarshal(f *testing.F) {
	for _, p := range samplePacketsForFuzz() {
		if buf, err := p.Marshal(); err == nil {
			f.Add(buf)
		}
	}
	f.Add([]byte{})
	f.Add([]byte{0x4C, 0x42, 1, 1})
	f.Fuzz(func(t *testing.T, data []byte) {
		var p Packet
		if err := p.Unmarshal(data); err != nil {
			return
		}
		out, err := p.Marshal()
		if err != nil {
			t.Fatalf("accepted packet failed to re-encode: %+v: %v", p, err)
		}
		if !bytes.Equal(out, data) {
			t.Fatalf("non-canonical decode:\n in  %x\n out %x", data, out)
		}
	})
}

func samplePacketsForFuzz() []Packet {
	return []Packet{
		{Type: TypeData, Source: 7, Group: 3, Seq: 42, Payload: []byte("seed")},
		{Type: TypeHeartbeat, Source: 7, Group: 3, Seq: 42, HeartbeatIdx: 5, PrimaryEpoch: 3},
		{Type: TypeNack, Source: 7, Group: 3, Ranges: []SeqRange{{From: 1, To: 3}}},
		{Type: TypeAckerSelect, Source: 7, Group: 3, Epoch: 3, PAck: 0.04, K: 20},
		{Type: TypeDiscoveryReply, Source: 7, Group: 3, Addr: "host:1"},
		{Type: TypeSourceAck, Source: 7, Group: 3, Seq: 42, Epoch: 2, ReplicaSeq: 40},
		{Type: TypeLogSync, Source: 7, Group: 3, Seq: 50, Epoch: 2, Flags: FlagLogAdvance},
		{Type: TypeLogSyncAck, Source: 7, Group: 3, Seq: 50, Epoch: 2},
		{Type: TypePromote, Source: 7, Group: 3, Seq: 40, Epoch: 2},
		{Type: TypePrimaryRedirect, Source: 7, Group: 3, Epoch: 2, Addr: "replica2:9001"},
		{Type: TypeQuorumAck, Source: 7, Group: 3, Seq: 42, Epoch: 2,
			RingVer: 1, RingPos: 1, Watermarks: []uint64{41}, Payload: []byte("q")},
		{Type: TypeRingConfig, Source: 7, Group: 3, Epoch: 2,
			RingVer: 1, RingPos: 2, RingSize: 2, Addr: "primary:9000"},
	}
}

// FuzzQuorumAck drives the quorum-ack ring-token codec specifically: the
// decoder must never panic, anything accepted must re-encode canonically,
// and a decoded token must obey the invariants the ring protocol relies on
// (bounded watermark slots, and the epoch field surviving the round trip so
// fence-on-stale-epoch at the primary/replica sees what was sent).
func FuzzQuorumAck(f *testing.F) {
	for _, p := range samplePacketsForFuzz() {
		if p.Type != TypeQuorumAck && p.Type != TypeRingConfig {
			continue
		}
		if buf, err := p.Marshal(); err == nil {
			f.Add(buf[HeaderLen:], uint8(p.Type), uint32(p.Epoch))
		}
	}
	f.Add([]byte{0, 0, 0, 1, 0, 2}, uint8(TypeQuorumAck), uint32(7))
	f.Add([]byte{0, 0, 0, 1, 1, 2, 4, 'a', 'b', 'c', 'd'}, uint8(TypeRingConfig), uint32(0))
	f.Fuzz(func(t *testing.T, ext []byte, ty uint8, epoch uint32) {
		hdr := Packet{Type: TypePromote, Source: 7, Group: 3, Seq: 9, Epoch: epoch}
		buf, err := hdr.Marshal()
		if err != nil {
			t.Fatalf("header-only marshal: %v", err)
		}
		// Splice the fuzzed extension under the fixed header and fix up the
		// type and length fields, exercising the extension parser directly.
		if ty%2 == 0 {
			buf[offType] = uint8(TypeRingConfig)
		} else {
			buf[offType] = uint8(TypeQuorumAck)
		}
		buf = append(buf[:HeaderLen], ext...)
		if len(buf)-HeaderLen > 0xFFFF {
			return
		}
		buf[offExtLen] = byte((len(buf) - HeaderLen) >> 8)
		buf[offExtLen+1] = byte(len(buf) - HeaderLen)
		var p Packet
		if err := p.Unmarshal(buf); err != nil {
			return
		}
		if len(p.Watermarks) > MaxQuorumSlots {
			t.Fatalf("decoder accepted %d watermark slots (max %d)", len(p.Watermarks), MaxQuorumSlots)
		}
		if p.Type == TypeRingConfig && (p.RingPos == 0 || p.RingPos > p.RingSize) {
			t.Fatalf("decoder accepted out-of-range ring position %d/%d", p.RingPos, p.RingSize)
		}
		if p.Epoch != epoch {
			t.Fatalf("epoch %d did not survive decode: got %d", epoch, p.Epoch)
		}
		out, err := p.Marshal()
		if err != nil {
			t.Fatalf("accepted packet failed to re-encode: %+v: %v", p, err)
		}
		if !bytes.Equal(out, buf) {
			t.Fatalf("non-canonical decode:\n in  %x\n out %x", buf, out)
		}
	})
}
