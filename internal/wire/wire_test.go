package wire

import (
	"bytes"
	"math"
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

// samplePackets returns one representative valid packet per type.
func samplePackets() []Packet {
	return []Packet{
		{Type: TypeData, Source: 7, Group: 3, Seq: 42, Epoch: 2, Payload: []byte("bridge destroyed")},
		{Type: TypeData, Source: 7, Group: 3, Seq: 43, Payload: nil},
		{Type: TypeHeartbeat, Source: 7, Group: 3, Seq: 42, HeartbeatIdx: 5, PrimaryEpoch: 2},
		{Type: TypeHeartbeat, Source: 7, Group: 3, Seq: 42, HeartbeatIdx: 1, PrimaryEpoch: 1,
			Flags: FlagInlineData, Payload: []byte("repeat")},
		{Type: TypeNack, Source: 7, Group: 3,
			Ranges: []SeqRange{{From: 10, To: 12}, {From: 20, To: 20}}},
		{Type: TypeRetrans, Source: 7, Group: 3, Seq: 11,
			Flags: FlagRetransmission | FlagFromLogger, Payload: []byte("x")},
		{Type: TypeAck, Source: 7, Group: 3, Seq: 42, Epoch: 2},
		{Type: TypeAckerSelect, Source: 7, Group: 3, Epoch: 3, PAck: 0.04, K: 20},
		{Type: TypeAckerResponse, Source: 7, Group: 3, Epoch: 3},
		{Type: TypeSizeProbe, Source: 7, Group: 3, ProbeID: 9, PAck: 0.125},
		{Type: TypeSizeProbeResponse, Source: 7, Group: 3, ProbeID: 9},
		{Type: TypeDiscoveryQuery, Source: 7, Group: 3},
		{Type: TypeDiscoveryReply, Source: 7, Group: 3, Addr: "site4-logger:9001"},
		{Type: TypeLogSync, Source: 7, Group: 3, Seq: 42, Epoch: 2, Payload: []byte("sync")},
		{Type: TypeLogSync, Source: 7, Group: 3, Seq: 50, Epoch: 2, Flags: FlagLogAdvance},
		{Type: TypeLogSyncAck, Source: 7, Group: 3, Seq: 42, Epoch: 2},
		{Type: TypeSourceAck, Source: 7, Group: 3, Seq: 42, Epoch: 2, ReplicaSeq: 40},
		{Type: TypePrimaryQuery, Source: 7, Group: 3},
		{Type: TypePrimaryRedirect, Source: 7, Group: 3, Epoch: 2, Addr: "replica2:9001"},
		{Type: TypeLogStateQuery, Source: 7, Group: 3},
		{Type: TypeLogStateReply, Source: 7, Group: 3, Seq: 37, Epoch: 2},
		{Type: TypePromote, Source: 7, Group: 3, Epoch: 2},
		{Type: TypeQuorumAck, Source: 7, Group: 3, Seq: 42, Epoch: 2,
			RingVer: 3, RingPos: 0, Payload: []byte("replicated")},
		{Type: TypeQuorumAck, Source: 7, Group: 3, Seq: 42, Epoch: 2,
			RingVer: 3, RingPos: 2, Watermarks: []uint64{42, 40}},
		{Type: TypeQuorumAck, Source: 7, Group: 3, Seq: 0, Epoch: 2, RingVer: 4},
		{Type: TypeRingConfig, Source: 7, Group: 3, Epoch: 2,
			RingVer: 3, RingPos: 1, RingSize: 2, Addr: "replica2:9001"},
		{Type: TypeReparent, Source: 7, Group: 3, Epoch: 2, TreeEpoch: 4,
			Flags: 1 << flagTierShift, Addr: "region1-logger:9001"},
	}
}

func TestRoundTripAllTypes(t *testing.T) {
	covered := map[Type]bool{}
	for _, want := range samplePackets() {
		covered[want.Type] = true
		buf, err := want.Marshal()
		if err != nil {
			t.Fatalf("%v: Marshal: %v", want.Type, err)
		}
		var got Packet
		if err := got.Unmarshal(buf); err != nil {
			t.Fatalf("%v: Unmarshal: %v", want.Type, err)
		}
		// Normalize nil vs empty payload for comparison.
		if len(want.Payload) == 0 {
			want.Payload = nil
		}
		if len(got.Payload) == 0 {
			got.Payload = nil
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("%v: round trip mismatch:\n got %+v\nwant %+v", want.Type, got, want)
		}
	}
	for ty := TypeData; ty < typeMax; ty++ {
		if !covered[ty] {
			t.Errorf("no round-trip sample for %v", ty)
		}
	}
}

func TestMarshalLengthField(t *testing.T) {
	p := Packet{Type: TypeData, Payload: bytes.Repeat([]byte{0xAB}, 100)}
	buf, err := p.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	if len(buf) != HeaderLen+100 {
		t.Fatalf("encoded length = %d, want %d", len(buf), HeaderLen+100)
	}
}

func TestUnmarshalRejectsMalformed(t *testing.T) {
	valid, err := (&Packet{Type: TypeData, Payload: []byte("hello")}).Marshal()
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name string
		mut  func([]byte) []byte
	}{
		{"empty", func(b []byte) []byte { return nil }},
		{"short", func(b []byte) []byte { return b[:HeaderLen-1] }},
		{"bad magic", func(b []byte) []byte { b[0] = 0xFF; return b }},
		{"bad version", func(b []byte) []byte { b[offVersion] = 99; return b }},
		{"bad type zero", func(b []byte) []byte { b[offType] = 0; return b }},
		{"bad type high", func(b []byte) []byte { b[offType] = 200; return b }},
		{"truncated payload", func(b []byte) []byte { return b[:len(b)-1] }},
		{"trailing garbage", func(b []byte) []byte { return append(b, 0) }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			buf := tc.mut(append([]byte(nil), valid...))
			var p Packet
			if err := p.Unmarshal(buf); err == nil {
				t.Fatalf("Unmarshal accepted %s", tc.name)
			}
			if p.Type != TypeInvalid {
				t.Fatalf("failed Unmarshal left partial state: %+v", p)
			}
		})
	}
}

func TestUnmarshalRejectsBadExtensions(t *testing.T) {
	mk := func(p Packet) []byte {
		b, err := p.Marshal()
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	fixLen := func(b []byte) []byte {
		b[offExtLen] = byte((len(b) - HeaderLen) >> 8)
		b[offExtLen+1] = byte(len(b) - HeaderLen)
		return b
	}
	cases := []struct {
		name string
		buf  []byte
	}{
		{"nack zero count", func() []byte {
			b := mk(Packet{Type: TypeNack, Ranges: []SeqRange{{From: 1, To: 1}}})
			b[HeaderLen] = 0
			b[HeaderLen+1] = 0
			return b
		}()},
		{"nack inverted range", func() []byte {
			b := mk(Packet{Type: TypeNack, Ranges: []SeqRange{{From: 1, To: 1}}})
			b[HeaderLen+2+7] = 9 // From = 9 > To = 1
			return b
		}()},
		{"nack count mismatch", func() []byte {
			b := mk(Packet{Type: TypeNack, Ranges: []SeqRange{{From: 1, To: 1}}})
			b[HeaderLen+1] = 2
			return b
		}()},
		{"acksel pack > 1", func() []byte {
			b := mk(Packet{Type: TypeAckerSelect, PAck: 0.5, K: 5})
			for i := 0; i < 8; i++ {
				b[HeaderLen+i] = 0xFF // NaN bits
			}
			return b
		}()},
		{"heartbeat short", fixLen(mk(Packet{Type: TypeHeartbeat, HeartbeatIdx: 1})[:HeaderLen+2])},
		{"heartbeat trailing without flag", func() []byte {
			b := mk(Packet{Type: TypeHeartbeat, HeartbeatIdx: 1})
			return fixLen(append(b, 'x'))
		}()},
		{"ack with extension", func() []byte {
			b := mk(Packet{Type: TypeAck, Seq: 1})
			return fixLen(append(b, 'x'))
		}()},
		{"redirect addr len mismatch", func() []byte {
			b := mk(Packet{Type: TypePrimaryRedirect, Addr: "ab"})
			b[HeaderLen] = 5
			return b
		}()},
		{"reparent addr len mismatch", func() []byte {
			b := mk(Packet{Type: TypeReparent, TreeEpoch: 1, Addr: "ab"})
			b[HeaderLen+4] = 5
			return b
		}()},
		{"reparent short", fixLen(mk(Packet{Type: TypeReparent, TreeEpoch: 1, Addr: "ab"})[:HeaderLen+3])},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var p Packet
			if err := p.Unmarshal(tc.buf); err == nil {
				t.Fatalf("accepted malformed %s: %+v", tc.name, p)
			}
		})
	}
}

func TestMarshalRejectsInvalid(t *testing.T) {
	cases := []struct {
		name string
		p    Packet
	}{
		{"invalid type", Packet{Type: TypeInvalid}},
		{"unknown type", Packet{Type: typeMax}},
		{"oversize payload", Packet{Type: TypeData, Payload: make([]byte, MaxPayloadLen+1)}},
		{"nack empty", Packet{Type: TypeNack}},
		{"nack inverted", Packet{Type: TypeNack, Ranges: []SeqRange{{From: 5, To: 2}}}},
		{"nack too many", Packet{Type: TypeNack, Ranges: make([]SeqRange, MaxNackRanges+1)}},
		{"pack negative", Packet{Type: TypeAckerSelect, PAck: -0.1}},
		{"pack over one", Packet{Type: TypeSizeProbe, PAck: 1.5}},
		{"pack NaN", Packet{Type: TypeSizeProbe, PAck: math.NaN()}},
		{"empty addr", Packet{Type: TypeDiscoveryReply}},
		{"long addr", Packet{Type: TypeDiscoveryReply, Addr: strings.Repeat("a", MaxAddrLen+1)}},
		{"heartbeat payload no flag", Packet{Type: TypeHeartbeat, Payload: []byte("x")}},
		{"reparent empty addr", Packet{Type: TypeReparent, TreeEpoch: 1}},
		{"reparent long addr", Packet{Type: TypeReparent, TreeEpoch: 1, Addr: strings.Repeat("a", MaxAddrLen+1)}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := tc.p.Marshal(); err == nil {
				t.Fatalf("Marshal accepted %s", tc.name)
			}
		})
	}
}

func TestSeqRange(t *testing.T) {
	r := SeqRange{From: 5, To: 9}
	if r.Count() != 5 {
		t.Errorf("Count() = %d, want 5", r.Count())
	}
	if !r.Contains(5) || !r.Contains(9) || r.Contains(4) || r.Contains(10) {
		t.Error("Contains boundaries wrong")
	}
	if (SeqRange{From: 3, To: 2}).Count() != 0 {
		t.Error("inverted range Count != 0")
	}
}

func TestTypeString(t *testing.T) {
	if TypeData.String() != "DATA" || TypeHeartbeat.String() != "HEARTBEAT" {
		t.Error("unexpected type names")
	}
	if s := Type(250).String(); !strings.Contains(s, "250") {
		t.Errorf("unknown type String() = %q", s)
	}
}

func TestPacketStringMentionsKeyFields(t *testing.T) {
	for _, p := range samplePackets() {
		p := p
		s := p.String()
		if !strings.Contains(s, p.Type.String()) {
			t.Errorf("String() %q missing type %v", s, p.Type)
		}
	}
}

// Property: Marshal→Unmarshal is the identity on valid random packets.
func TestRoundTripProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := randomPacket(rng)
		buf, err := p.Marshal()
		if err != nil {
			return false
		}
		var got Packet
		if err := got.Unmarshal(buf); err != nil {
			return false
		}
		if len(p.Payload) == 0 {
			p.Payload = nil
		}
		if len(got.Payload) == 0 {
			got.Payload = nil
		}
		if len(p.Watermarks) == 0 {
			p.Watermarks = nil
		}
		if len(got.Watermarks) == 0 {
			got.Watermarks = nil
		}
		return reflect.DeepEqual(got, p)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// Property: Unmarshal never panics and never succeeds on random garbage
// with a wrong magic.
func TestUnmarshalGarbageProperty(t *testing.T) {
	f := func(data []byte) bool {
		var p Packet
		err := p.Unmarshal(data)
		if err != nil {
			return true
		}
		// If it decoded, re-encoding must reproduce the input exactly.
		out, merr := p.Marshal()
		return merr == nil && bytes.Equal(out, data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func randomPacket(rng *rand.Rand) Packet {
	types := []Type{
		TypeData, TypeHeartbeat, TypeNack, TypeRetrans, TypeAck,
		TypeAckerSelect, TypeAckerResponse, TypeSizeProbe,
		TypeSizeProbeResponse, TypeDiscoveryQuery, TypeDiscoveryReply,
		TypeLogSync, TypeLogSyncAck, TypeSourceAck, TypePrimaryQuery,
		TypePrimaryRedirect, TypeLogStateQuery, TypeLogStateReply,
		TypePromote, TypeQuorumAck, TypeRingConfig, TypeReparent,
	}
	p := Packet{
		Type:   types[rng.Intn(len(types))],
		Source: SourceID(rng.Uint64()),
		Seq:    rng.Uint64(),
		Epoch:  rng.Uint32(),
		Group:  GroupID(rng.Uint32()),
	}
	payload := func(maxLen int) []byte {
		b := make([]byte, rng.Intn(maxLen))
		rng.Read(b)
		return b
	}
	switch p.Type {
	case TypeData, TypeRetrans, TypeLogSync:
		p.Payload = payload(512)
		if rng.Intn(2) == 0 {
			p.Flags |= FlagRetransmission
		}
	case TypeHeartbeat:
		p.HeartbeatIdx = rng.Uint32()
		p.PrimaryEpoch = rng.Uint32()
		if rng.Intn(2) == 0 {
			p.Flags |= FlagInlineData
			p.Payload = payload(128)
		}
	case TypeNack:
		n := rng.Intn(8) + 1
		p.Ranges = make([]SeqRange, n)
		for i := range p.Ranges {
			from := rng.Uint64() / 2
			p.Ranges[i] = SeqRange{From: from, To: from + uint64(rng.Intn(100))}
		}
	case TypeAckerSelect:
		p.PAck = rng.Float64()
		p.K = uint16(rng.Intn(100))
	case TypeSizeProbe:
		p.ProbeID = rng.Uint32()
		p.PAck = rng.Float64()
	case TypeSizeProbeResponse:
		p.ProbeID = rng.Uint32()
	case TypeSourceAck:
		p.ReplicaSeq = rng.Uint64()
	case TypeDiscoveryReply, TypePrimaryRedirect:
		n := rng.Intn(MaxAddrLen) + 1
		b := make([]byte, n)
		for i := range b {
			b[i] = byte('a' + rng.Intn(26))
		}
		p.Addr = string(b)
	case TypeQuorumAck:
		p.RingVer = rng.Uint32()
		p.RingPos = uint8(rng.Intn(MaxQuorumSlots + 1))
		p.Watermarks = make([]uint64, rng.Intn(MaxQuorumSlots+1))
		for i := range p.Watermarks {
			p.Watermarks[i] = rng.Uint64()
		}
		if rng.Intn(2) == 0 {
			p.Payload = payload(256)
		}
	case TypeRingConfig:
		p.RingVer = rng.Uint32()
		p.RingSize = uint8(rng.Intn(MaxQuorumSlots) + 1)
		p.RingPos = uint8(rng.Intn(int(p.RingSize)) + 1)
		n := rng.Intn(64) + 1
		b := make([]byte, n)
		for i := range b {
			b[i] = byte('a' + rng.Intn(26))
		}
		p.Addr = string(b)
	case TypeReparent:
		p.TreeEpoch = rng.Uint32()
		p.SetTier(rng.Intn(MaxTier + 1))
		n := rng.Intn(64) + 1
		b := make([]byte, n)
		for i := range b {
			b[i] = byte('a' + rng.Intn(26))
		}
		p.Addr = string(b)
	}
	return p
}

// TestTierFlagBits pins the tier stamp's packing: it survives a round
// trip, never clobbers the low flag bits, and clamps out-of-range values.
func TestTierFlagBits(t *testing.T) {
	p := Packet{Type: TypeNack, Source: 1, Group: 1, Flags: FlagRetransmission,
		Ranges: []SeqRange{{From: 3, To: 5}}}
	for tier := 0; tier <= MaxTier; tier++ {
		p.SetTier(tier)
		if got := p.Tier(); got != tier {
			t.Fatalf("Tier() = %d after SetTier(%d)", got, tier)
		}
		if p.Flags&FlagRetransmission == 0 {
			t.Fatalf("SetTier(%d) clobbered low flag bits", tier)
		}
		buf, err := p.Marshal()
		if err != nil {
			t.Fatal(err)
		}
		var got Packet
		if err := got.Unmarshal(buf); err != nil {
			t.Fatal(err)
		}
		if got.Tier() != tier {
			t.Fatalf("tier %d did not survive the round trip: %d", tier, got.Tier())
		}
	}
	p.SetTier(MaxTier + 3)
	if p.Tier() != MaxTier {
		t.Fatalf("SetTier over max: Tier() = %d, want %d", p.Tier(), MaxTier)
	}
	p.SetTier(-1)
	if p.Tier() != 0 {
		t.Fatalf("SetTier(-1): Tier() = %d, want 0", p.Tier())
	}
}

func BenchmarkMarshalData(b *testing.B) {
	p := Packet{Type: TypeData, Source: 1, Group: 1, Seq: 1, Payload: make([]byte, 128)}
	buf := make([]byte, 0, 256)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		var err error
		buf, err = p.AppendMarshal(buf[:0])
		if err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkUnmarshalData(b *testing.B) {
	p := Packet{Type: TypeData, Source: 1, Group: 1, Seq: 1, Payload: make([]byte, 128)}
	buf, err := p.Marshal()
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	var q Packet
	for i := 0; i < b.N; i++ {
		if err := q.Unmarshal(buf); err != nil {
			b.Fatal(err)
		}
	}
}
