package wire

import "testing"

func TestClassifyRecovery(t *testing.T) {
	tests := []struct {
		name string
		typ  Type
		fl   Flags
		want RecoveryPath
	}{
		{"original data", TypeData, 0, PathNone},
		{"plain heartbeat", TypeHeartbeat, 0, PathNone},
		{"nack", TypeNack, 0, PathNone},
		{"ack", TypeAck, FlagFromLogger, PathNone},
		{"from-logger data without retransmission flag", TypeData, FlagFromLogger, PathNone},

		{"source re-multicast (missing statistical ACK)", TypeData, FlagRetransmission, PathSourceMulticast},
		{"retrans from source", TypeRetrans, FlagRetransmission, PathSourceMulticast},
		{"inline-data heartbeat", TypeHeartbeat, FlagInlineData, PathSourceMulticast},
		{"inline-data heartbeat with extra flags", TypeHeartbeat, FlagInlineData | FlagLogAdvance, PathSourceMulticast},

		{"secondary local hit", TypeRetrans, FlagRetransmission | FlagFromLogger, PathLocal},
		{"secondary remulticast", TypeData, FlagRetransmission | FlagFromLogger, PathLocal},

		{"primary serve", TypeRetrans, FlagRetransmission | FlagFromLogger | FlagViaPrimary, PathPrimaryCallback},
		{"secondary relay of a primary fetch", TypeRetrans, FlagRetransmission | FlagFromLogger | FlagViaPrimary, PathPrimaryCallback},
		{"via-primary wins over from-logger", TypeData, FlagRetransmission | FlagViaPrimary, PathPrimaryCallback},

		// FlagViaPrimary on a non-repair must not classify: the repair
		// gate comes first.
		{"via-primary without repair flags", TypeData, FlagViaPrimary, PathNone},
		{"inline heartbeat via primary", TypeHeartbeat, FlagInlineData | FlagViaPrimary, PathPrimaryCallback},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			if got := ClassifyRecovery(tc.typ, tc.fl); got != tc.want {
				t.Fatalf("ClassifyRecovery(%v, %v) = %v, want %v", tc.typ, tc.fl, got, tc.want)
			}
		})
	}
}

// TestClassifyRecoveryMatchesRetransSemantics pins the compatibility
// contract: a packet classifies as a repair exactly when the receiver's
// pre-classifier logic would have set Event.Retransmitted.
func TestClassifyRecoveryMatchesRetransSemantics(t *testing.T) {
	for _, typ := range []Type{TypeData, TypeRetrans, TypeHeartbeat} {
		for fl := Flags(0); fl < 1<<5; fl++ {
			legacy := fl&FlagRetransmission != 0 || (typ == TypeHeartbeat && fl&FlagInlineData != 0)
			got := ClassifyRecovery(typ, fl) != PathNone
			if got != legacy {
				t.Fatalf("type %v flags %v: repair=%v, legacy retrans=%v", typ, fl, got, legacy)
			}
		}
	}
}

func TestRecoveryPathNames(t *testing.T) {
	want := map[RecoveryPath]struct{ str, metric string }{
		PathNone:            {"none", ""},
		PathLocal:           {"local", "local.rtt"},
		PathPrimaryCallback: {"primary_callback", "primary_callback.rtt"},
		PathSourceMulticast: {"multicast_retrans", "multicast_retrans.delay"},
	}
	for p := PathNone; p < NumRecoveryPaths; p++ {
		if p.String() != want[p].str || p.MetricName() != want[p].metric {
			t.Errorf("path %d: String=%q MetricName=%q, want %q/%q",
				p, p.String(), p.MetricName(), want[p].str, want[p].metric)
		}
	}
	if NumRecoveryPaths.String() != "unknown" || NumRecoveryPaths.MetricName() != "" {
		t.Error("out-of-range path must render as unknown")
	}
}
