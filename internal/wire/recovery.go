package wire

// RecoveryPath classifies which of the paper's recovery paths a repair
// packet travelled (§2.2 hierarchical recovery, §2.3.2 statistical-ack
// re-multicast). The classification is carried entirely by wire flags, so
// a receiver can attribute its recovery latency to the right path without
// any out-of-band state:
//
//   - PathLocal: served from a logging server's own log (FlagFromLogger
//     without FlagViaPrimary) — the §2.2 "one RTT to the nearest logger"
//     case, a site secondary's local hit.
//   - PathPrimaryCallback: the repair crossed the primary (FlagViaPrimary)
//     — either the primary served the requester directly, or a secondary
//     relayed a packet it had to fetch from the primary first.
//   - PathSourceMulticast: the repair came from the source itself — a
//     missing-statistical-ack re-multicast, a NACK-demand re-multicast, a
//     retransmission-channel replay, or an inline-data heartbeat.
type RecoveryPath uint8

const (
	// PathNone: the packet is not a repair (an original transmission).
	PathNone RecoveryPath = iota
	// PathLocal: repair served from a logger's local log.
	PathLocal
	// PathPrimaryCallback: repair that crossed the primary callback.
	PathPrimaryCallback
	// PathSourceMulticast: repair retransmitted by the source.
	PathSourceMulticast
	// NumRecoveryPaths sizes per-path arrays.
	NumRecoveryPaths
)

var recoveryPathNames = [NumRecoveryPaths]string{
	PathNone:            "none",
	PathLocal:           "local",
	PathPrimaryCallback: "primary_callback",
	PathSourceMulticast: "multicast_retrans",
}

// String returns the stable lowercase name of the path.
func (p RecoveryPath) String() string {
	if p < NumRecoveryPaths {
		return recoveryPathNames[p]
	}
	return "unknown"
}

// MetricName returns the path's latency-metric suffix from the issue's
// observability contract: "local.rtt", "primary_callback.rtt",
// "multicast_retrans.delay" (empty for PathNone). Components prepend their
// role, e.g. "recv.recovery.local.rtt_ms".
func (p RecoveryPath) MetricName() string {
	switch p {
	case PathLocal:
		return "local.rtt"
	case PathPrimaryCallback:
		return "primary_callback.rtt"
	case PathSourceMulticast:
		return "multicast_retrans.delay"
	}
	return ""
}

// ClassifyRecovery classifies a received packet. Anything that repeats an
// earlier transmission — TypeRetrans, a FlagRetransmission data packet, or
// an inline-data heartbeat — is a repair; everything else is PathNone.
func ClassifyRecovery(t Type, fl Flags) RecoveryPath {
	repair := fl&FlagRetransmission != 0 ||
		(t == TypeHeartbeat && fl&FlagInlineData != 0)
	if !repair {
		return PathNone
	}
	switch {
	case fl&FlagViaPrimary != 0:
		return PathPrimaryCallback
	case fl&FlagFromLogger != 0:
		return PathLocal
	default:
		return PathSourceMulticast
	}
}
