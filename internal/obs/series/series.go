// Package series is the in-process time-series layer of the
// observability stack (DESIGN.md §15): a fixed-capacity ring of periodic
// registry samples with delta/rate/quantile queries over time windows.
//
// One Sampler watches one obs.Registry. The write side is built for the
// datapath's zero-allocation contract: after the tracked metric set
// stabilizes, Sample is lock-free and allocation-free — it loads a cached
// track list (rebuilt only when Registry.Gen changes, i.e. when a new
// metric is registered) and stores each metric's current value into
// per-track atomic value rings under a per-slot seqlock, the same
// publication protocol as the trace ring. Queries run concurrently with
// the writer, allocate freely, and discard slots torn by a wrapping
// writer via the seq stamp.
//
// The clock is the caller's: daemons drive a wall-clock goroutine
// (StartWall), the simulator and chaos harness call Sample with virtual
// time, and fleet scrapers ingest remote snapshots with SampleSnapshot.
// Sample and SampleSnapshot share the single-writer contract: at most one
// goroutine may write a given Sampler.
package series

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"lbrm/internal/obs"
)

type kind uint8

const (
	kindCounter kind = iota
	kindGauge
	kindHist
)

// track is one metric's value history: a parallel ring to the sampler's
// slot ring. Counter and gauge tracks use vals (gauge values are stored
// as int64 bits); histogram tracks record every bucket plus the running
// sum so windowed quantiles come from bucket deltas.
type track struct {
	name string
	kind kind

	counter *obs.Counter
	gauge   *obs.Gauge
	hist    *obs.Histogram

	bounds  []uint64
	vals    []atomic.Uint64
	buckets [][]atomic.Uint64 // bucket-major: buckets[b][slot]
	sums    []atomic.Uint64

	// born is the sample seq at registration: slots at or before it
	// predate the track and hold zeroes, so queries must not pair them.
	born uint64
}

type trackSet struct {
	list   []*track
	byName map[string]*track
}

var emptySet = &trackSet{byName: map[string]*track{}}

// Sampler owns the slot ring and the track list for one registry.
type Sampler struct {
	reg  *obs.Registry // nil in ingest mode (SampleSnapshot-only)
	cap  int
	mask uint64

	seqs []atomic.Uint64 // 0 = open/torn, else the slot's sample seq
	ats  []atomic.Int64
	head atomic.Uint64 // total samples ever taken

	tracks atomic.Pointer[trackSet]
	gen    atomic.Uint64 // registry generation the track list reflects

	mu   sync.Mutex // serializes rescans and the wall driver
	stop chan struct{}
	done chan struct{}
}

// NewSampler returns a sampler over reg retaining the most recent `size`
// samples (rounded up to a power of two, minimum 8). reg may be nil only
// if the sampler is fed exclusively through SampleSnapshot.
func NewSampler(reg *obs.Registry, size int) *Sampler {
	n := 8
	for n < size {
		n <<= 1
	}
	s := &Sampler{
		reg:  reg,
		cap:  n,
		mask: uint64(n - 1),
		seqs: make([]atomic.Uint64, n),
		ats:  make([]atomic.Int64, n),
	}
	s.tracks.Store(emptySet)
	return s
}

// Cap returns the retained sample capacity.
func (s *Sampler) Cap() int {
	if s == nil {
		return 0
	}
	return s.cap
}

// Len returns the total number of samples ever taken. Nil-safe.
func (s *Sampler) Len() uint64 {
	if s == nil {
		return 0
	}
	return s.head.Load()
}

// Sample takes one sample of the registry at nowNs. Single-writer.
// Steady state (no new metrics since the last call) is lock-free and
// allocation-free; a registration since the last call triggers a cold
// mutex-guarded rescan that preserves existing track history. Nil-safe.
func (s *Sampler) Sample(nowNs int64) {
	if s == nil {
		return
	}
	ts := s.tracks.Load()
	if g := s.reg.Gen(); g != s.gen.Load() {
		ts = s.rescan(g)
	}
	seq := s.head.Load() + 1
	i := (seq - 1) & s.mask
	s.seqs[i].Store(0) // open the seqlock: readers reject the slot
	s.ats[i].Store(nowNs)
	for _, t := range ts.list {
		switch t.kind {
		case kindCounter:
			t.vals[i].Store(t.counter.Value())
		case kindGauge:
			t.vals[i].Store(uint64(t.gauge.Value()))
		case kindHist:
			for b := range t.buckets {
				t.buckets[b][i].Store(t.hist.BucketCount(b))
			}
			t.sums[i].Store(t.hist.Sum())
		}
	}
	s.seqs[i].Store(seq) // publish
	s.head.Store(seq)
}

// rescan rebuilds the track list against the current registry contents,
// reusing existing tracks (and their history) by name.
func (s *Sampler) rescan(gen uint64) *trackSet {
	s.mu.Lock()
	defer s.mu.Unlock()
	old := s.tracks.Load()
	ns := &trackSet{byName: make(map[string]*track, len(old.byName)+8)}
	born := s.head.Load()
	s.reg.Visit(
		func(name string, c *obs.Counter) {
			if t := old.byName[name]; t != nil && t.kind == kindCounter {
				ns.add(t)
				return
			}
			ns.add(&track{name: name, kind: kindCounter, counter: c,
				vals: make([]atomic.Uint64, s.cap), born: born})
		},
		func(name string, g *obs.Gauge) {
			if t := old.byName[name]; t != nil && t.kind == kindGauge {
				ns.add(t)
				return
			}
			ns.add(&track{name: name, kind: kindGauge, gauge: g,
				vals: make([]atomic.Uint64, s.cap), born: born})
		},
		func(name string, h *obs.Histogram) {
			if t := old.byName[name]; t != nil && t.kind == kindHist {
				ns.add(t)
				return
			}
			t := &track{name: name, kind: kindHist, hist: h,
				bounds: h.Bounds(), sums: make([]atomic.Uint64, s.cap), born: born}
			t.buckets = make([][]atomic.Uint64, len(h.Bounds())+1)
			for b := range t.buckets {
				t.buckets[b] = make([]atomic.Uint64, s.cap)
			}
			ns.add(t)
		},
	)
	sort.Slice(ns.list, func(i, j int) bool { return ns.list[i].name < ns.list[j].name })
	s.tracks.Store(ns)
	s.gen.Store(gen)
	return ns
}

func (ts *trackSet) add(t *track) {
	ts.list = append(ts.list, t)
	ts.byName[t.name] = t
}

// SampleSnapshot ingests one remote registry snapshot at nowNs — the
// fleet-scraper path (lbrm-top): same ring, same queries, but values come
// off the wire instead of local atomics. Allocates when the snapshot
// introduces new names; single-writer with Sample. Histograms whose
// bounds change between snapshots are skipped until the track cycles out.
func (s *Sampler) SampleSnapshot(nowNs int64, snap obs.Snapshot) {
	if s == nil {
		return
	}
	ts := s.ensureSnapshotTracks(snap)
	seq := s.head.Load() + 1
	i := (seq - 1) & s.mask
	s.seqs[i].Store(0)
	s.ats[i].Store(nowNs)
	for _, t := range ts.list {
		switch t.kind {
		case kindCounter:
			t.vals[i].Store(snap.Counters[t.name])
		case kindGauge:
			t.vals[i].Store(uint64(snap.Gauges[t.name]))
		case kindHist:
			h, ok := snap.Histograms[t.name]
			if !ok || len(h.Counts) != len(t.buckets) {
				continue
			}
			for b := range t.buckets {
				t.buckets[b][i].Store(h.Counts[b])
			}
			t.sums[i].Store(h.Sum)
		}
	}
	s.seqs[i].Store(seq)
	s.head.Store(seq)
}

// ensureSnapshotTracks extends the track list with any names the
// snapshot carries that are not yet tracked.
func (s *Sampler) ensureSnapshotTracks(snap obs.Snapshot) *trackSet {
	ts := s.tracks.Load()
	missing := 0
	for name := range snap.Counters {
		if ts.byName[name] == nil {
			missing++
		}
	}
	for name := range snap.Gauges {
		if ts.byName[name] == nil {
			missing++
		}
	}
	for name := range snap.Histograms {
		if ts.byName[name] == nil {
			missing++
		}
	}
	if missing == 0 {
		return ts
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	ns := &trackSet{byName: make(map[string]*track, len(ts.byName)+missing)}
	for _, t := range ts.list {
		ns.add(t)
	}
	born := s.head.Load()
	for name := range snap.Counters {
		if ns.byName[name] == nil {
			ns.add(&track{name: name, kind: kindCounter,
				vals: make([]atomic.Uint64, s.cap), born: born})
		}
	}
	for name := range snap.Gauges {
		if ns.byName[name] == nil {
			ns.add(&track{name: name, kind: kindGauge,
				vals: make([]atomic.Uint64, s.cap), born: born})
		}
	}
	for name, h := range snap.Histograms {
		if ns.byName[name] == nil {
			t := &track{name: name, kind: kindHist,
				bounds: append([]uint64(nil), h.Bounds...),
				sums:   make([]atomic.Uint64, s.cap), born: born}
			t.buckets = make([][]atomic.Uint64, len(h.Bounds)+1)
			for b := range t.buckets {
				t.buckets[b] = make([]atomic.Uint64, s.cap)
			}
			ns.add(t)
		}
	}
	sort.Slice(ns.list, func(i, j int) bool { return ns.list[i].name < ns.list[j].name })
	s.tracks.Store(ns)
	return ns
}

// StartWall starts a goroutine that samples immediately and then every
// `every` on the wall clock, so queries (and scrapers hitting the
// registry) see data from the moment the driver is up; pre (may be nil)
// runs before each sample — daemons pass a closure that folds runtime
// gauges into the registry. Returns false if a driver is already
// running. Stop with StopWall.
func (s *Sampler) StartWall(every time.Duration, pre func()) bool {
	if s == nil || every <= 0 {
		return false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.stop != nil {
		return false
	}
	stop := make(chan struct{})
	done := make(chan struct{})
	s.stop, s.done = stop, done
	go func() {
		defer close(done)
		sample := func(now time.Time) {
			if pre != nil {
				pre()
			}
			s.Sample(now.UnixNano())
		}
		sample(time.Now())
		tick := time.NewTicker(every)
		defer tick.Stop()
		for {
			select {
			case <-stop:
				return
			case now := <-tick.C:
				sample(now)
			}
		}
	}()
	return true
}

// StopWall stops the wall-clock driver and waits for any in-flight
// sample to finish, so the caller may take over as the single writer the
// moment it returns (no-op when none is running).
func (s *Sampler) StopWall() {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.stop == nil {
		return
	}
	close(s.stop)
	<-s.done
	s.stop, s.done = nil, nil
}

// Names returns the tracked metric names, sorted. Allocates.
func (s *Sampler) Names() []string {
	if s == nil {
		return nil
	}
	ts := s.tracks.Load()
	out := make([]string, len(ts.list))
	for i, t := range ts.list {
		out[i] = t.name
	}
	return out
}

// slotTime reads the publication-validated sample time of seq.
func (s *Sampler) slotTime(seq uint64) (int64, bool) {
	if seq == 0 {
		return 0, false
	}
	i := (seq - 1) & s.mask
	if s.seqs[i].Load() != seq {
		return 0, false
	}
	at := s.ats[i].Load()
	if s.seqs[i].Load() != seq {
		return 0, false
	}
	return at, true
}

// valAt reads track t's value at seq under the seqlock.
func (s *Sampler) valAt(t *track, seq uint64) (uint64, bool) {
	i := (seq - 1) & s.mask
	if s.seqs[i].Load() != seq {
		return 0, false
	}
	v := t.vals[i].Load()
	if s.seqs[i].Load() != seq {
		return 0, false
	}
	return v, true
}

// histAt reads track t's bucket vector and sum at seq under the seqlock.
func (s *Sampler) histAt(t *track, seq uint64) ([]uint64, uint64, bool) {
	i := (seq - 1) & s.mask
	if s.seqs[i].Load() != seq {
		return nil, 0, false
	}
	counts := make([]uint64, len(t.buckets))
	for b := range t.buckets {
		counts[b] = t.buckets[b][i].Load()
	}
	sum := t.sums[i].Load()
	if s.seqs[i].Load() != seq {
		return nil, 0, false
	}
	return counts, sum, true
}

// endpoints locates the newest published sample and the oldest published
// sample usable as a window baseline for t: in-window (sample time within
// windowNs of the newest; windowNs <= 0 means the whole retained ring),
// after the track was born, and still retained. Both slots are
// seq-validated; torn slots are skipped, mirroring the trace ring's
// reader discipline.
func (s *Sampler) endpoints(t *track, windowNs int64) (newest, oldest uint64, span int64, ok bool) {
	head := s.head.Load()
	floor := uint64(0)
	if head > uint64(s.cap) {
		floor = head - uint64(s.cap)
	}
	if t.born > floor {
		floor = t.born
	}
	// Newest published slot (the head can be torn by at most one
	// concurrently wrapping writer step).
	var newestAt int64
	for newest = head; newest > floor; newest-- {
		if at, okAt := s.slotTime(newest); okAt {
			newestAt = at
			break
		}
	}
	if newest <= floor {
		return 0, 0, 0, false
	}
	cut := int64(-1 << 62)
	if windowNs > 0 {
		cut = newestAt - windowNs
	}
	var oldestAt int64
	for seq := newest - 1; seq > floor; seq-- {
		at, okAt := s.slotTime(seq)
		if !okAt {
			continue
		}
		if at < cut {
			break
		}
		oldest, oldestAt = seq, at
	}
	if oldest == 0 {
		return 0, 0, 0, false
	}
	return newest, oldest, newestAt - oldestAt, true
}

// Last returns the newest sampled value of a counter (as int64) or
// gauge. ok is false for unknown names, histograms, or an empty ring.
func (s *Sampler) Last(name string) (int64, bool) {
	if s == nil {
		return 0, false
	}
	t := s.tracks.Load().byName[name]
	if t == nil || t.kind == kindHist {
		return 0, false
	}
	head := s.head.Load()
	floor := uint64(0)
	if head > uint64(s.cap) {
		floor = head - uint64(s.cap)
	}
	if t.born > floor {
		floor = t.born
	}
	for seq := head; seq > floor; seq-- {
		if v, okV := s.valAt(t, seq); okV {
			return int64(v), true
		}
	}
	return 0, false
}

// Delta returns the change of a counter (or a histogram's observation
// count) across the window: newest minus the oldest in-window baseline.
// ok requires two validated samples. Gauges also work — their delta can
// be negative.
func (s *Sampler) Delta(name string, window time.Duration) (int64, bool) {
	d, _, ok := s.deltaSpan(name, window)
	return d, ok
}

// Rate returns Delta divided by the actual sampled span, per second.
func (s *Sampler) Rate(name string, window time.Duration) (float64, bool) {
	d, span, ok := s.deltaSpan(name, window)
	if !ok || span <= 0 {
		return 0, false
	}
	return float64(d) / (float64(span) / float64(time.Second)), true
}

func (s *Sampler) deltaSpan(name string, window time.Duration) (int64, int64, bool) {
	if s == nil {
		return 0, 0, false
	}
	t := s.tracks.Load().byName[name]
	if t == nil {
		return 0, 0, false
	}
	newest, oldest, span, ok := s.endpoints(t, int64(window))
	if !ok {
		return 0, 0, false
	}
	if t.kind == kindHist {
		nc, _, ok1 := s.histAt(t, newest)
		oc, _, ok2 := s.histAt(t, oldest)
		if !ok1 || !ok2 {
			return 0, 0, false
		}
		var d int64
		for b := range nc {
			d += int64(nc[b] - oc[b])
		}
		return d, span, true
	}
	nv, ok1 := s.valAt(t, newest)
	ov, ok2 := s.valAt(t, oldest)
	if !ok1 || !ok2 {
		return 0, 0, false
	}
	if t.kind == kindGauge {
		return int64(nv) - int64(ov), span, true
	}
	return int64(nv - ov), span, true
}

// Quantile estimates the q-quantile (0 < q <= 1) of a histogram's
// samples observed inside the window, from bucket deltas: linear
// interpolation inside the winning bucket, with the overflow bucket
// reported as the highest finite bound (the series cannot see past it).
// ok is false without two validated samples or when no observations
// landed in the window.
func (s *Sampler) Quantile(name string, q float64, window time.Duration) (float64, bool) {
	if s == nil || q <= 0 || q > 1 {
		return 0, false
	}
	t := s.tracks.Load().byName[name]
	if t == nil || t.kind != kindHist {
		return 0, false
	}
	newest, oldest, _, ok := s.endpoints(t, int64(window))
	if !ok {
		return 0, false
	}
	nc, _, ok1 := s.histAt(t, newest)
	oc, _, ok2 := s.histAt(t, oldest)
	if !ok1 || !ok2 {
		return 0, false
	}
	deltas := make([]uint64, len(nc))
	var total uint64
	for b := range nc {
		deltas[b] = nc[b] - oc[b]
		total += deltas[b]
	}
	if total == 0 {
		return 0, false
	}
	rank := q * float64(total)
	var cum float64
	for b, d := range deltas {
		if d == 0 {
			continue
		}
		next := cum + float64(d)
		if rank <= next {
			if b >= len(t.bounds) { // overflow bucket
				if len(t.bounds) == 0 {
					return 0, false
				}
				return float64(t.bounds[len(t.bounds)-1]), true
			}
			lo := 0.0
			if b > 0 {
				lo = float64(t.bounds[b-1])
			}
			hi := float64(t.bounds[b])
			return lo + (hi-lo)*((rank-cum)/float64(d)), true
		}
		cum = next
	}
	if len(t.bounds) == 0 {
		return 0, false
	}
	return float64(t.bounds[len(t.bounds)-1]), true
}
