package series

import (
	"sync"
	"testing"
	"time"

	"lbrm/internal/obs"
)

// TestConcurrentSampleQuery hammers one sampler with a fast-wrapping
// writer while readers run every query concurrently (run under -race by
// `make test`). The correctness claims: no panic, no data race, and —
// the torn-window pairing property — a counter delta is never negative
// and never exceeds what the writer has actually counted, because both
// endpoint slots are seq-validated before pairing.
func TestConcurrentSampleQuery(t *testing.T) {
	reg := obs.NewRegistry()
	c := reg.Counter("c")
	g := reg.Gauge("g")
	h := reg.Histogram("h", []uint64{10, 100, 1000})
	s := NewSampler(reg, 16) // tiny ring: constant wrap-around

	const samples = 20000
	const incPerSample = 3
	done := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer close(done)
		for i := int64(0); i < samples; i++ {
			c.Add(incPerSample)
			g.Set(i)
			h.Observe(uint64(i % 2000))
			s.Sample(i * int64(time.Millisecond))
		}
	}()

	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-done:
					return
				default:
				}
				if d, ok := s.Delta("c", 0); ok {
					if d < 0 || d > samples*incPerSample {
						t.Errorf("torn counter delta: %d", d)
						return
					}
				}
				if rate, ok := s.Rate("c", 8*time.Millisecond); ok && rate < 0 {
					t.Errorf("negative counter rate: %v", rate)
					return
				}
				if q, ok := s.Quantile("h", 0.9, 0); ok && (q < 0 || q > 1000) {
					t.Errorf("quantile out of bounds: %v", q)
					return
				}
				if v, ok := s.Last("g"); ok && (v < 0 || v >= samples) {
					t.Errorf("gauge last out of range: %d", v)
					return
				}
				_, _ = s.Delta("h", 4*time.Millisecond)
				_ = s.Names()
			}
		}()
	}
	wg.Wait()
}

// TestConcurrentRegistrationDuringSampling: readers and a registering
// goroutine race the single writer; rescans must neither drop history
// nor tear queries.
func TestConcurrentRegistrationDuringSampling(t *testing.T) {
	reg := obs.NewRegistry()
	c := reg.Counter("base")
	s := NewSampler(reg, 32)

	done := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { // single writer
		defer wg.Done()
		defer close(done)
		for i := int64(0); i < 5000; i++ {
			c.Inc()
			s.Sample(i * int64(time.Millisecond))
		}
	}()
	wg.Add(1)
	go func() { // concurrent registrar: churns Registry.Gen
		defer wg.Done()
		names := []string{"m.a", "m.b", "m.c", "m.d", "m.e", "m.f", "m.g", "m.h"}
		i := 0
		for {
			select {
			case <-done:
				return
			default:
			}
			reg.Counter(names[i%len(names)]).Inc()
			reg.Gauge(names[(i+1)%len(names)] + ".g").Set(int64(i))
			i++
		}
	}()
	wg.Add(1)
	go func() { // reader
		defer wg.Done()
		for {
			select {
			case <-done:
				return
			default:
			}
			if d, ok := s.Delta("base", 0); ok && (d < 0 || d > 5000) {
				t.Errorf("base delta torn across rescan: %d", d)
				return
			}
		}
	}()
	wg.Wait()
	if d, ok := s.Delta("base", 0); !ok || d <= 0 {
		t.Fatalf("final delta = %d, %v", d, ok)
	}
}

// TestVtimeVsWallSamplers: the same workload sampled by a virtual-time
// driver (explicit Sample calls, the chaos path) and by the wall-clock
// goroutine must agree on window semantics — only the clock differs.
func TestVtimeVsWallSamplers(t *testing.T) {
	mk := func() (*obs.Registry, *obs.Counter) {
		reg := obs.NewRegistry()
		return reg, reg.Counter("c")
	}
	// Virtual time: exact 1s cadence.
	vreg, vc := mk()
	vs := NewSampler(vreg, 64)
	for i := int64(0); i < 6; i++ {
		vc.Add(4)
		vs.Sample(i * sec)
	}
	vd, vok := vs.Delta("c", 0)
	vr, rok := vs.Rate("c", 0)
	if !vok || !rok || vd != 20 || vr != 4 {
		t.Fatalf("vtime: delta=%d rate=%v (%v %v)", vd, vr, vok, rok)
	}

	// Wall clock: the driver stamps real time; values must match, the
	// rate must reflect the measured span rather than the nominal tick.
	wreg, wc := mk()
	ws := NewSampler(wreg, 64)
	wc.Add(4)
	if !ws.StartWall(time.Millisecond, func() { wc.Add(4) }) {
		t.Fatal("StartWall refused")
	}
	deadline := time.Now().Add(2 * time.Second)
	for ws.Len() < 6 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	ws.StopWall()
	if ws.Len() < 6 {
		t.Fatalf("wall sampler got %d samples", ws.Len())
	}
	wd, ok := ws.Delta("c", 0)
	if !ok || wd <= 0 || wd%4 != 0 {
		t.Fatalf("wall delta = %d, %v (want positive multiple of 4)", wd, ok)
	}
	if wr, ok := ws.Rate("c", 0); !ok || wr <= 0 {
		t.Fatalf("wall rate = %v, %v", wr, ok)
	}
}
