package series

import (
	"testing"
	"time"

	"lbrm/internal/obs"
)

const sec = int64(time.Second)

func TestCounterDeltaRate(t *testing.T) {
	reg := obs.NewRegistry()
	c := reg.Counter("recv.nacks_sent")
	s := NewSampler(reg, 64)

	for i := int64(0); i < 10; i++ {
		c.Add(5)
		s.Sample(i * sec)
	}
	// 10 samples at 0..9s; counter 5,10,...,50.
	if got := s.Len(); got != 10 {
		t.Fatalf("Len = %d", got)
	}
	d, ok := s.Delta("recv.nacks_sent", 4*time.Second)
	if !ok || d != 20 {
		t.Fatalf("Delta(4s) = %d, %v (want 20)", d, ok)
	}
	r, ok := s.Rate("recv.nacks_sent", 4*time.Second)
	if !ok || r != 5 {
		t.Fatalf("Rate(4s) = %v, %v (want 5/s)", r, ok)
	}
	// Whole-ring window.
	d, ok = s.Delta("recv.nacks_sent", 0)
	if !ok || d != 45 {
		t.Fatalf("Delta(all) = %d, %v (want 45)", d, ok)
	}
	v, ok := s.Last("recv.nacks_sent")
	if !ok || v != 50 {
		t.Fatalf("Last = %d, %v", v, ok)
	}
	if _, ok := s.Delta("unknown.metric", 0); ok {
		t.Fatal("Delta on unknown name must fail")
	}
}

func TestGaugeDeltaCanBeNegative(t *testing.T) {
	reg := obs.NewRegistry()
	g := reg.Gauge("primary.quorum.depth")
	s := NewSampler(reg, 16)
	g.Set(9)
	s.Sample(0)
	g.Set(-4)
	s.Sample(sec)
	d, ok := s.Delta("primary.quorum.depth", 0)
	if !ok || d != -13 {
		t.Fatalf("gauge delta = %d, %v (want -13)", d, ok)
	}
	v, ok := s.Last("primary.quorum.depth")
	if !ok || v != -4 {
		t.Fatalf("gauge last = %d, %v", v, ok)
	}
}

func TestHistogramQuantileOverWindow(t *testing.T) {
	reg := obs.NewRegistry()
	h := reg.Histogram("recv.recovery_ms", []uint64{10, 100, 1000})
	s := NewSampler(reg, 64)

	s.Sample(0) // empty baseline, pre-dating everything
	// Old regime that must fall outside the 9s window: slow recoveries.
	for i := 0; i < 100; i++ {
		h.Observe(900)
	}
	s.Sample(1 * sec)
	// New regime inside the window: 90 fast + 10 slow.
	for i := 0; i < 90; i++ {
		h.Observe(5)
	}
	for i := 0; i < 10; i++ {
		h.Observe(500)
	}
	s.Sample(10 * sec)

	// Window of 9s spans samples at 1s..10s: only the new regime.
	q50, ok := s.Quantile("recv.recovery_ms", 0.50, 9*time.Second)
	if !ok || q50 > 10 {
		t.Fatalf("p50 = %v, %v (want fast bucket)", q50, ok)
	}
	q99, ok := s.Quantile("recv.recovery_ms", 0.99, 9*time.Second)
	if !ok || q99 <= 100 || q99 > 1000 {
		t.Fatalf("p99 = %v, %v (want in 100..1000)", q99, ok)
	}
	// Histogram Delta counts observations in the window.
	d, ok := s.Delta("recv.recovery_ms", 9*time.Second)
	if !ok || d != 100 {
		t.Fatalf("hist delta = %d, %v (want 100)", d, ok)
	}
	// Whole ring includes the old regime: p50 shifts to the slow bucket.
	q50all, ok := s.Quantile("recv.recovery_ms", 0.50, 0)
	if !ok || q50all <= 100 {
		t.Fatalf("p50(all) = %v, %v (want slow)", q50all, ok)
	}
	// No observations in a tiny trailing window.
	if _, ok := s.Quantile("recv.recovery_ms", 0.5, time.Millisecond); ok {
		t.Fatal("quantile over an empty window must fail")
	}
}

func TestWrapAroundKeepsNewestWindow(t *testing.T) {
	reg := obs.NewRegistry()
	c := reg.Counter("c")
	s := NewSampler(reg, 8) // retains 8 samples
	for i := int64(0); i < 100; i++ {
		c.Add(2)
		s.Sample(i * sec)
	}
	// Retained window is samples 93..100 → counts 186..200.
	d, ok := s.Delta("c", 0)
	if !ok || d != 14 {
		t.Fatalf("wrapped delta = %d, %v (want 14)", d, ok)
	}
	r, ok := s.Rate("c", 0)
	if !ok || r != 2 {
		t.Fatalf("wrapped rate = %v, %v (want 2/s)", r, ok)
	}
}

// TestRescanPreservesHistory: a metric registered mid-flight starts its
// own history without disturbing existing tracks, and its pre-birth
// zero slots never pair into a query.
func TestRescanPreservesHistory(t *testing.T) {
	reg := obs.NewRegistry()
	a := reg.Counter("a")
	s := NewSampler(reg, 64)
	for i := int64(0); i < 5; i++ {
		a.Add(10)
		s.Sample(i * sec)
	}
	b := reg.Counter("b") // triggers rescan on the next Sample
	b.Add(7)
	s.Sample(5 * sec)
	b.Add(7)
	s.Sample(6 * sec)

	da, ok := s.Delta("a", 0)
	if !ok || da != 40 {
		t.Fatalf("a delta across rescan = %d, %v (want 40)", da, ok)
	}
	// b has two samples (7, 14): delta 7 — not 14, which would mean a
	// pre-birth zero slot was used as baseline.
	db, ok := s.Delta("b", 0)
	if !ok || db != 7 {
		t.Fatalf("b delta = %d, %v (want 7)", db, ok)
	}
}

// TestSnapshotIngest: the scraper path — feeding remote snapshots yields
// the same query semantics as local sampling.
func TestSnapshotIngest(t *testing.T) {
	remote := obs.NewRegistry()
	c := remote.Counter("sender.tx.data.pkts")
	h := remote.Histogram("recv.recovery_ms", []uint64{10, 100})

	s := NewSampler(nil, 16) // ingest mode
	c.Add(100)
	h.Observe(5)
	s.SampleSnapshot(0, remote.Snapshot())
	c.Add(300)
	h.Observe(50)
	h.Observe(50)
	s.SampleSnapshot(2*sec, remote.Snapshot())

	r, ok := s.Rate("sender.tx.data.pkts", 0)
	if !ok || r != 150 {
		t.Fatalf("ingest rate = %v, %v (want 150/s)", r, ok)
	}
	d, ok := s.Delta("recv.recovery_ms", 0)
	if !ok || d != 2 {
		t.Fatalf("ingest hist delta = %d, %v (want 2)", d, ok)
	}
	q, ok := s.Quantile("recv.recovery_ms", 0.9, 0)
	if !ok || q <= 10 || q > 100 {
		t.Fatalf("ingest p90 = %v, %v", q, ok)
	}
	names := s.Names()
	if len(names) != 2 {
		t.Fatalf("Names = %v", names)
	}
}

// TestWallClockDriver: StartWall samples on its own; StopWall halts it;
// a second concurrent driver is refused.
func TestWallClockDriver(t *testing.T) {
	reg := obs.NewRegistry()
	reg.Counter("c").Add(1)
	s := NewSampler(reg, 32)
	preCalls := 0
	if !s.StartWall(2*time.Millisecond, func() { preCalls++ }) {
		t.Fatal("StartWall refused")
	}
	if s.StartWall(time.Millisecond, nil) {
		t.Fatal("second driver must be refused")
	}
	deadline := time.Now().Add(2 * time.Second)
	for s.Len() < 3 && time.Now().Before(deadline) {
		time.Sleep(2 * time.Millisecond)
	}
	if s.Len() < 3 {
		t.Fatalf("wall driver took no samples (len=%d)", s.Len())
	}
	s.StopWall()
	// StopWall waits for the driver goroutine, so reading the hook
	// counter (and trusting Len to stay put) is race-free from here.
	if preCalls == 0 {
		t.Fatal("pre hook never ran")
	}
	n := s.Len()
	time.Sleep(10 * time.Millisecond)
	if s.Len() != n {
		t.Fatal("sampler kept running after StopWall")
	}
	s.StopWall() // idempotent
	// The driver can be restarted after a stop.
	if !s.StartWall(time.Millisecond, nil) {
		t.Fatal("restart refused")
	}
	s.StopWall()
}

func TestNilSafety(t *testing.T) {
	var s *Sampler
	s.Sample(0)
	s.SampleSnapshot(0, obs.Snapshot{})
	if s.Len() != 0 || s.Cap() != 0 || s.Names() != nil {
		t.Fatal("nil sampler accessors")
	}
	if _, ok := s.Delta("x", 0); ok {
		t.Fatal("nil Delta ok")
	}
	if _, ok := s.Rate("x", 0); ok {
		t.Fatal("nil Rate ok")
	}
	if _, ok := s.Quantile("x", 0.5, 0); ok {
		t.Fatal("nil Quantile ok")
	}
	if _, ok := s.Last("x"); ok {
		t.Fatal("nil Last ok")
	}
	if s.StartWall(time.Second, nil) {
		t.Fatal("nil StartWall ok")
	}
	s.StopWall()
}

func TestQuantileEdgeCases(t *testing.T) {
	reg := obs.NewRegistry()
	h := reg.Histogram("h", []uint64{10, 100})
	s := NewSampler(reg, 16)
	s.Sample(0)
	for i := 0; i < 4; i++ {
		h.Observe(5000) // all overflow
	}
	s.Sample(sec)
	q, ok := s.Quantile("h", 0.99, 0)
	if !ok || q != 100 {
		t.Fatalf("overflow quantile = %v, %v (want clamp to 100)", q, ok)
	}
	if _, ok := s.Quantile("h", 0, 0); ok {
		t.Fatal("q=0 must fail")
	}
	if _, ok := s.Quantile("h", 1.5, 0); ok {
		t.Fatal("q>1 must fail")
	}
	if _, ok := s.Quantile("missing", 0.5, 0); ok {
		t.Fatal("unknown name must fail")
	}
}
