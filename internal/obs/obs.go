// Package obs is the zero-allocation observability layer: a metrics
// registry of atomic counters, gauges and fixed-bucket histograms, plus a
// seqlock-style ring-buffer tracer for protocol transitions (failovers,
// epoch bumps, fence hits, promotions, skip/advance records, DA-set
// epochs).
//
// The design contract mirrors the datapath allocation contract (DESIGN.md):
//
//   - Registration is the cold path: components resolve every metric they
//     will ever touch once, at construction, and keep the returned
//     pointers. Registration takes a mutex; the hot path never does.
//   - The hot path is wait-free: Counter.Add, Gauge.Set, Histogram.Observe
//     and Ring.Emit are a handful of atomic operations — no allocation, no
//     locks, no map lookups.
//   - Everything is nil-safe: a nil *Sink hands out nil metrics, and every
//     method on a nil *Counter/*Gauge/*Histogram/*Ring is a no-op. An
//     uninstrumented component pays a single predictable branch per
//     operation and nothing else.
//
// Exposition (text and expvar-style JSON rendering of a registry snapshot)
// lives in expo.go; it allocates freely — observability readers are never
// on the datapath.
package obs

// Sink bundles the two halves of the observability layer — a metric
// Registry and a trace Ring — behind one nil-safe handle that protocol
// components accept in their configs. A nil *Sink is fully functional:
// every registration returns a nil metric whose operations no-op.
type Sink struct {
	reg  *Registry
	ring *Ring
}

// DefaultRingSize is the trace capacity NewSink allocates: enough to hold
// every protocol transition of a long chaos run (transitions are rare —
// the ring records failovers, not packets).
const DefaultRingSize = 512

// NewSink returns a live sink with a fresh registry and a trace ring of
// DefaultRingSize events.
func NewSink() *Sink {
	return &Sink{reg: NewRegistry(), ring: NewRing(DefaultRingSize)}
}

// Registry returns the underlying metric registry (nil for a nil sink).
func (s *Sink) Registry() *Registry {
	if s == nil {
		return nil
	}
	return s.reg
}

// Ring returns the underlying trace ring (nil for a nil sink).
func (s *Sink) Ring() *Ring {
	if s == nil {
		return nil
	}
	return s.ring
}

// Counter registers (or finds) a counter. Nil-safe cold path.
func (s *Sink) Counter(name string) *Counter { return s.Registry().Counter(name) }

// Gauge registers (or finds) a gauge. Nil-safe cold path.
func (s *Sink) Gauge(name string) *Gauge { return s.Registry().Gauge(name) }

// Histogram registers (or finds) a fixed-bucket histogram. Nil-safe cold
// path; see Registry.Histogram for bounds semantics.
func (s *Sink) Histogram(name string, bounds []uint64) *Histogram {
	return s.Registry().Histogram(name, bounds)
}

// Classes registers a per-class counter family under
// "<prefix>.<class>.pkts" / "<prefix>.<class>.bytes". Nil-safe cold path.
func (s *Sink) Classes(prefix string, classes []string) *ClassCounters {
	return s.Registry().Classes(prefix, classes)
}

// Emit appends one trace event. Nil-safe, wait-free hot path.
func (s *Sink) Emit(at int64, kind Kind, a, b, c uint64) {
	if s == nil {
		return
	}
	s.ring.Emit(at, kind, a, b, c)
}
