// Package obs is the zero-allocation observability layer: a metrics
// registry of atomic counters, gauges and fixed-bucket histograms, plus a
// seqlock-style ring-buffer tracer for protocol transitions (failovers,
// epoch bumps, fence hits, promotions, skip/advance records, DA-set
// epochs).
//
// The design contract mirrors the datapath allocation contract (DESIGN.md):
//
//   - Registration is the cold path: components resolve every metric they
//     will ever touch once, at construction, and keep the returned
//     pointers. Registration takes a mutex; the hot path never does.
//   - The hot path is wait-free: Counter.Add, Gauge.Set, Histogram.Observe
//     and Ring.Emit are a handful of atomic operations — no allocation, no
//     locks, no map lookups.
//   - Everything is nil-safe: a nil *Sink hands out nil metrics, and every
//     method on a nil *Counter/*Gauge/*Histogram/*Ring is a no-op. An
//     uninstrumented component pays a single predictable branch per
//     operation and nothing else.
//
// Exposition (text and expvar-style JSON rendering of a registry snapshot)
// lives in expo.go; it allocates freely — observability readers are never
// on the datapath.
package obs

import "fmt"

// Sink bundles the two halves of the observability layer — a metric
// Registry and a trace Ring — behind one nil-safe handle that protocol
// components accept in their configs. A nil *Sink is fully functional:
// every registration returns a nil metric whose operations no-op.
type Sink struct {
	reg    *Registry
	ring   *Ring
	flight *Ring
}

// DefaultRingSize is the trace capacity NewSink allocates: enough to hold
// every protocol transition of a long chaos run (transitions are rare —
// the ring records failovers, not packets).
const DefaultRingSize = 512

// DefaultFlightRingSize is the flight-recorder capacity NewSink allocates.
// Flight events are per-lost-packet (a handful per recovery), so the ring
// is sized for thousands of recoveries, not the raw packet rate.
const DefaultFlightRingSize = 4096

// Config sizes a sink's rings. The zero value of each field selects the
// default; explicit sizes must be powers of two ≥ 8 (the rings index with
// a bit mask, so a silent round-up would lie about the retained window).
type Config struct {
	// RingSize is the protocol-transition trace capacity, in events.
	RingSize int
	// FlightRingSize is the flight-recorder capacity, in events.
	FlightRingSize int
}

// ringSize validates one configured capacity.
func ringSize(name string, n, def int) (int, error) {
	if n == 0 {
		return def, nil
	}
	if n < 8 || n&(n-1) != 0 {
		return 0, fmt.Errorf("obs: %s %d: ring sizes must be powers of two ≥ 8", name, n)
	}
	return n, nil
}

// NewSink returns a live sink with a fresh registry and default-sized
// trace and flight rings.
func NewSink() *Sink {
	s, _ := NewSinkWith(Config{}) // zero config cannot fail
	return s
}

// NewSinkWith returns a live sink with the configured ring capacities.
func NewSinkWith(cfg Config) (*Sink, error) {
	rs, err := ringSize("RingSize", cfg.RingSize, DefaultRingSize)
	if err != nil {
		return nil, err
	}
	fs, err := ringSize("FlightRingSize", cfg.FlightRingSize, DefaultFlightRingSize)
	if err != nil {
		return nil, err
	}
	return &Sink{reg: NewRegistry(), ring: NewRing(rs), flight: NewRing(fs)}, nil
}

// Registry returns the underlying metric registry (nil for a nil sink).
func (s *Sink) Registry() *Registry {
	if s == nil {
		return nil
	}
	return s.reg
}

// Ring returns the underlying trace ring (nil for a nil sink).
func (s *Sink) Ring() *Ring {
	if s == nil {
		return nil
	}
	return s.ring
}

// FlightRing returns the flight-recorder ring (nil for a nil sink).
func (s *Sink) FlightRing() *Ring {
	if s == nil {
		return nil
	}
	return s.flight
}

// Counter registers (or finds) a counter. Nil-safe cold path.
func (s *Sink) Counter(name string) *Counter { return s.Registry().Counter(name) }

// Gauge registers (or finds) a gauge. Nil-safe cold path.
func (s *Sink) Gauge(name string) *Gauge { return s.Registry().Gauge(name) }

// Histogram registers (or finds) a fixed-bucket histogram. Nil-safe cold
// path; see Registry.Histogram for bounds semantics.
func (s *Sink) Histogram(name string, bounds []uint64) *Histogram {
	return s.Registry().Histogram(name, bounds)
}

// Classes registers a per-class counter family under
// "<prefix>.<class>.pkts" / "<prefix>.<class>.bytes". Nil-safe cold path.
func (s *Sink) Classes(prefix string, classes []string) *ClassCounters {
	return s.Registry().Classes(prefix, classes)
}

// Emit appends one trace event. Nil-safe, wait-free hot path.
func (s *Sink) Emit(at int64, kind Kind, a, b, c uint64) {
	if s == nil {
		return
	}
	s.ring.Emit(at, kind, a, b, c)
}

// EmitFlight appends one flight-recorder event (the per-sequence recovery
// trace, DESIGN.md §10). Nil-safe, wait-free, zero-allocation hot path.
func (s *Sink) EmitFlight(at int64, kind Kind, seq, b, c uint64) {
	if s == nil {
		return
	}
	s.flight.Emit(at, kind, seq, b, c)
}
