package obs

import (
	"net/http/httptest"
	"reflect"
	"strings"
	"sync"
	"testing"
)

// TestNilSafety: the whole layer must be inert on a nil sink — components
// are instrumented unconditionally and a nil *Sink is the "off" switch.
func TestNilSafety(t *testing.T) {
	var s *Sink
	c := s.Counter("x")
	c.Inc()
	c.Add(5)
	if c.Value() != 0 {
		t.Fatal("nil counter accumulated")
	}
	g := s.Gauge("x")
	g.Set(7)
	g.Add(-2)
	if g.Value() != 0 {
		t.Fatal("nil gauge accumulated")
	}
	h := s.Histogram("x", []uint64{1, 2})
	h.Observe(1)
	cc := s.Classes("x", []string{"a"})
	cc.Record(0, 10)
	if cc.Pkts(0) != 0 || cc.Bytes(0) != 0 {
		t.Fatal("nil class counters accumulated")
	}
	s.Emit(1, KindEpochBump, 1, 2, 3)
	if s.Ring().Len() != 0 || s.Ring().Snapshot() != nil {
		t.Fatal("nil ring not inert")
	}
	d := DumpOf(s)
	if len(d.Counters) != 0 || len(d.Trace) != 0 {
		t.Fatal("DumpOf(nil) not empty")
	}
}

// TestRegistryIdempotent: registration is find-or-create — the hot path
// holds pointers, so two registrations of one name must alias.
func TestRegistryIdempotent(t *testing.T) {
	s := NewSink()
	a, b := s.Counter("c"), s.Counter("c")
	if a != b {
		t.Fatal("same counter name returned distinct pointers")
	}
	a.Inc()
	if b.Value() != 1 {
		t.Fatal("aliased counter did not share state")
	}
	if s.Gauge("g") != s.Gauge("g") {
		t.Fatal("same gauge name returned distinct pointers")
	}
	h1 := s.Histogram("h", []uint64{1, 2, 3})
	h2 := s.Histogram("h", []uint64{9}) // later bounds ignored
	if h1 != h2 {
		t.Fatal("same histogram name returned distinct pointers")
	}
	h1.Observe(2)
	snap := s.Registry().Snapshot()
	if got := snap.Histograms["h"]; !reflect.DeepEqual(got.Bounds, []uint64{1, 2, 3}) {
		t.Fatalf("histogram bounds %v, want first registration's", got.Bounds)
	}
}

// TestHistogramBucketing pins the ≤-bound bucket discipline, the overflow
// bucket, and the cleaning of non-increasing registration bounds.
func TestHistogramBucketing(t *testing.T) {
	s := NewSink()
	h := s.Histogram("h", []uint64{10, 10, 5, 100}) // cleans to {10, 100}
	for _, v := range []uint64{0, 10, 11, 100, 101, 5000} {
		h.Observe(v)
	}
	snap := s.Registry().Snapshot().Histograms["h"]
	if !reflect.DeepEqual(snap.Bounds, []uint64{10, 100}) {
		t.Fatalf("bounds %v, want [10 100]", snap.Bounds)
	}
	// 0,10 ≤ 10; 11,100 ≤ 100; 101,5000 overflow.
	if !reflect.DeepEqual(snap.Counts, []uint64{2, 2, 2}) {
		t.Fatalf("counts %v, want [2 2 2]", snap.Counts)
	}
	if snap.Total() != 6 {
		t.Fatalf("Total() = %d, want 6", snap.Total())
	}
	if snap.Sum != 0+10+11+100+101+5000 {
		t.Fatalf("Sum = %d", snap.Sum)
	}
}

// TestClassCounters: dense per-class families, out-of-range classes ignored.
func TestClassCounters(t *testing.T) {
	s := NewSink()
	cc := s.Classes("tx", []string{"data", "nack"})
	cc.Record(0, 45)
	cc.Record(0, 45)
	cc.Record(1, 12)
	cc.Record(2, 99) // out of range: dropped
	cc.Record(-1, 99)
	if cc.Pkts(0) != 2 || cc.Bytes(0) != 90 || cc.Pkts(1) != 1 || cc.Bytes(1) != 12 {
		t.Fatalf("class counts wrong: %d/%d %d/%d", cc.Pkts(0), cc.Bytes(0), cc.Pkts(1), cc.Bytes(1))
	}
	snap := s.Registry().Snapshot()
	if snap.Counters["tx.data.pkts"] != 2 || snap.Counters["tx.nack.bytes"] != 12 {
		t.Fatalf("registry names wrong: %v", snap.Counters)
	}
}

// TestRingOrderAndWrap: the snapshot is oldest-first with contiguous global
// sequence numbers, and wrapping retains exactly the newest window.
func TestRingOrderAndWrap(t *testing.T) {
	r := NewRing(8)
	for i := 1; i <= 5; i++ {
		r.Emit(int64(i), KindEpochBump, uint64(i), 0, 0)
	}
	evs := r.Snapshot()
	if len(evs) != 5 {
		t.Fatalf("len %d, want 5", len(evs))
	}
	for i, ev := range evs {
		if ev.Seq != uint64(i+1) || ev.A != uint64(i+1) {
			t.Fatalf("event %d: seq=%d a=%d", i, ev.Seq, ev.A)
		}
	}
	for i := 6; i <= 20; i++ {
		r.Emit(int64(i), KindPromote, uint64(i), 0, 0)
	}
	evs = r.Snapshot()
	if len(evs) != 8 {
		t.Fatalf("wrapped len %d, want 8", len(evs))
	}
	if evs[0].Seq != 13 || evs[7].Seq != 20 {
		t.Fatalf("wrapped window [%d..%d], want [13..20]", evs[0].Seq, evs[7].Seq)
	}
	if r.Len() != 20 {
		t.Fatalf("Len() = %d, want 20", r.Len())
	}
}

// TestRingSizeRounding: capacity rounds up to a power of two, minimum 8.
func TestRingSizeRounding(t *testing.T) {
	for _, c := range []struct{ ask, want int }{{0, 8}, {3, 8}, {8, 8}, {9, 16}, {512, 512}} {
		if got := len(NewRing(c.ask).slots); got != c.want {
			t.Errorf("NewRing(%d) capacity %d, want %d", c.ask, got, c.want)
		}
	}
}

// TestConcurrentHotPath hammers counters, gauges, histograms and the ring
// from many goroutines while a reader snapshots continuously — the race
// detector enforces the wait-free claims, and every snapshot must be
// well-formed (strictly increasing seqs, no partially-written events).
func TestConcurrentHotPath(t *testing.T) {
	s := NewSink()
	c := s.Counter("c")
	g := s.Gauge("g")
	h := s.Histogram("h", []uint64{10, 100})
	const writers, perWriter = 8, 2000
	var writerWG, readerWG sync.WaitGroup
	stop := make(chan struct{})
	readerWG.Add(1)
	go func() { // concurrent reader
		defer readerWG.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			evs := s.Ring().Snapshot()
			for i := 1; i < len(evs); i++ {
				if evs[i].Seq <= evs[i-1].Seq {
					t.Error("snapshot seqs not strictly increasing")
					return
				}
			}
			for _, ev := range evs {
				// Writers always emit A == uint64(At); a torn slot that
				// leaked through the seqlock would break the pairing.
				if ev.A != uint64(ev.At) {
					t.Errorf("torn event leaked: at=%d a=%d", ev.At, ev.A)
					return
				}
			}
			_ = s.Registry().Snapshot()
		}
	}()
	for w := 0; w < writers; w++ {
		writerWG.Add(1)
		go func(w int) {
			defer writerWG.Done()
			for i := 0; i < perWriter; i++ {
				c.Inc()
				g.Set(int64(i))
				h.Observe(uint64(i % 200))
				at := int64(w*perWriter + i)
				s.Emit(at, KindEpochBump, uint64(at), 0, 0)
			}
		}(w)
	}
	writerWG.Wait()
	close(stop)
	readerWG.Wait()
	if c.Value() != writers*perWriter {
		t.Fatalf("counter %d, want %d", c.Value(), writers*perWriter)
	}
	if s.Ring().Len() != writers*perWriter {
		t.Fatalf("ring emitted %d, want %d", s.Ring().Len(), writers*perWriter)
	}
}

// TestMergeSemantics: counters and agreeing histograms sum, gauges
// max-merge, histogram bounds mismatches keep the first.
func TestMergeSemantics(t *testing.T) {
	a := Snapshot{
		Counters: map[string]uint64{"c": 2, "only-a": 1},
		Gauges:   map[string]int64{"g": 5},
		Histograms: map[string]HistogramSnapshot{
			"h": {Bounds: []uint64{10}, Counts: []uint64{1, 2}, Sum: 30},
			"m": {Bounds: []uint64{1}, Counts: []uint64{1, 0}, Sum: 1},
		},
	}
	b := Snapshot{
		Counters: map[string]uint64{"c": 3},
		Gauges:   map[string]int64{"g": 4, "only-b": -1},
		Histograms: map[string]HistogramSnapshot{
			"h": {Bounds: []uint64{10}, Counts: []uint64{4, 1}, Sum: 50},
			"m": {Bounds: []uint64{2}, Counts: []uint64{9, 9}, Sum: 99}, // bounds clash
		},
	}
	m := Merge(a, b)
	if m.Counters["c"] != 5 || m.Counters["only-a"] != 1 {
		t.Fatalf("counters %v", m.Counters)
	}
	if m.Gauges["g"] != 5 || m.Gauges["only-b"] != -1 {
		t.Fatalf("gauges %v", m.Gauges)
	}
	if h := m.Histograms["h"]; !reflect.DeepEqual(h.Counts, []uint64{5, 3}) || h.Sum != 80 {
		t.Fatalf("merged histogram %+v", h)
	}
	if mm := m.Histograms["m"]; !reflect.DeepEqual(mm.Bounds, []uint64{1}) || mm.Sum != 1 {
		t.Fatalf("bounds clash should keep first: %+v", mm)
	}
}

// TestWriteTextFormat pins the line discipline, ordering, and the quoting
// of names that would break it.
func TestWriteTextFormat(t *testing.T) {
	s := NewSink()
	s.Counter("b.count").Add(2)
	s.Counter("a count").Inc() // space: must be quoted
	s.Gauge("g").Set(-4)
	s.Histogram("h", []uint64{10}).Observe(7)
	s.Emit(99, KindPromote, 1, 2, 3)
	var sb strings.Builder
	if err := DumpOf(s).WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	want := "counter \"a count\" 1\n" +
		"counter b.count 2\n" +
		"gauge g -4\n" +
		"hist h total=1 sum=7 le10=1 inf=0\n" +
		"trace 1 at=99 promote a=1 b=2 c=3\n"
	if sb.String() != want {
		t.Fatalf("text dump:\n%s\nwant:\n%s", sb.String(), want)
	}
}

// TestHandlerFormats: the HTTP exposition serves text by default and JSON
// on request.
func TestHandlerFormats(t *testing.T) {
	s := NewSink()
	s.Counter("c").Inc()
	h := Handler(s)

	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("default Content-Type %q", ct)
	}
	if !strings.Contains(rec.Body.String(), "counter c 1") {
		t.Fatalf("text body: %q", rec.Body.String())
	}

	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics?format=json", nil))
	if ct := rec.Header().Get("Content-Type"); ct != JSONContentType {
		t.Fatalf("json Content-Type %q", ct)
	}
	if !strings.Contains(rec.Body.String(), `"counters"`) {
		t.Fatalf("json body: %q", rec.Body.String())
	}
}

// TestKindNames: every defined kind has a stable name; out-of-range kinds
// render as unknown rather than panicking the text encoder.
func TestKindNames(t *testing.T) {
	for k := KindNone; k < kindMax; k++ {
		if k.String() == "" || k.String() == "unknown" {
			t.Errorf("kind %d has no name", k)
		}
	}
	if Kind(255).String() != "unknown" {
		t.Fatal("out-of-range kind should render unknown")
	}
}
