package obs

import (
	"net/http"
	"runtime"
)

// RuntimeSnapshot captures the Go runtime's health gauges — goroutines,
// heap, GC — as a Dump so both exposition formats apply. Everything is a
// gauge: the values are instantaneous runtime state, not protocol counts.
func RuntimeSnapshot() Dump {
	var m runtime.MemStats
	runtime.ReadMemStats(&m)
	lastPause := uint64(0)
	if m.NumGC > 0 {
		lastPause = m.PauseNs[(m.NumGC+255)%256]
	}
	return Dump{
		Gauges: map[string]int64{
			"runtime.goroutines":         int64(runtime.NumGoroutine()),
			"runtime.heap_alloc_bytes":   int64(m.HeapAlloc),
			"runtime.heap_sys_bytes":     int64(m.HeapSys),
			"runtime.heap_objects":       int64(m.HeapObjects),
			"runtime.next_gc_bytes":      int64(m.NextGC),
			"runtime.gc_runs":            int64(m.NumGC),
			"runtime.gc_pause_total_ns":  int64(m.PauseTotalNs),
			"runtime.gc_pause_last_ns":   int64(lastPause),
			"runtime.alloc_total_bytes":  int64(m.TotalAlloc),
			"runtime.mallocs_minus_free": int64(m.Mallocs - m.Frees),
		},
	}
}

// SampleRuntime stores the runtime health gauges into reg so they join
// the registry's series history: the daemon sampler calls it once per
// tick, giving lbrm-top GC-pause and goroutine-count series without
// pprof scraping. Nil-safe.
func SampleRuntime(reg *Registry) {
	if reg == nil {
		return
	}
	d := RuntimeSnapshot()
	for name, v := range d.Gauges {
		reg.Gauge(name).Set(v)
	}
}

// RuntimeHandler serves RuntimeSnapshot over HTTP with the same content
// negotiation and method discipline as Handler: GET only, text by
// default, JSON with ?format=json or an Accept: application/json header.
func RuntimeHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		serveDump(w, r, RuntimeSnapshot)
	})
}
