package obs

import (
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing uint64. All methods are nil-safe
// and wait-free.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() {
	if c != nil {
		c.v.Add(1)
	}
}

// Add adds n.
func (c *Counter) Add(n uint64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Value returns the current count (0 for a nil counter).
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an instantaneous signed value. All methods are nil-safe and
// wait-free.
type Gauge struct {
	v atomic.Int64
}

// Set stores v.
func (g *Gauge) Set(v int64) {
	if g != nil {
		g.v.Store(v)
	}
}

// Add adds d (negative to subtract).
func (g *Gauge) Add(d int64) {
	if g != nil {
		g.v.Add(d)
	}
}

// Value returns the current value (0 for a nil gauge).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Histogram is a fixed-bucket histogram over uint64 samples (typically
// nanoseconds). Bucket i counts samples ≤ Bounds[i]; one overflow bucket
// counts the rest. Bounds are fixed at registration — Observe is a short
// linear scan plus one atomic add, with no allocation.
type Histogram struct {
	bounds []uint64
	counts []atomic.Uint64 // len(bounds)+1, last is overflow
	sum    atomic.Uint64
}

// Observe folds in one sample.
func (h *Histogram) Observe(v uint64) {
	if h == nil {
		return
	}
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.sum.Add(v)
}

// HistogramSnapshot is a consistent-enough copy of a histogram: each field
// is read atomically (the struct as a whole is not fenced — fine for
// telemetry, and exact once writers are quiet).
type HistogramSnapshot struct {
	// Bounds are the inclusive upper bucket bounds; Counts has one extra
	// trailing overflow bucket.
	Bounds []uint64 `json:"bounds"`
	Counts []uint64 `json:"counts"`
	Sum    uint64   `json:"sum"`
}

// Total returns the number of observed samples.
func (s HistogramSnapshot) Total() uint64 {
	var t uint64
	for _, c := range s.Counts {
		t += c
	}
	return t
}

func (h *Histogram) snapshot() HistogramSnapshot {
	s := HistogramSnapshot{
		Bounds: append([]uint64(nil), h.bounds...),
		Counts: make([]uint64, len(h.counts)),
		Sum:    h.sum.Load(),
	}
	for i := range h.counts {
		s.Counts[i] = h.counts[i].Load()
	}
	return s
}

// ClassCounters is a counter family indexed by a small dense class enum
// (e.g. wire traffic classes): one packet counter and one byte counter per
// class. Record is the per-send hot path: two atomic adds.
type ClassCounters struct {
	pkts  []*Counter
	bytes []*Counter
}

// Record adds one packet of size bytes to class i. Out-of-range classes
// and nil receivers are ignored.
func (c *ClassCounters) Record(i int, size int) {
	if c == nil || i < 0 || i >= len(c.pkts) {
		return
	}
	c.pkts[i].Inc()
	c.bytes[i].Add(uint64(size))
}

// Pkts returns the packet count for class i (0 when out of range or nil).
func (c *ClassCounters) Pkts(i int) uint64 {
	if c == nil || i < 0 || i >= len(c.pkts) {
		return 0
	}
	return c.pkts[i].Value()
}

// Bytes returns the byte count for class i (0 when out of range or nil).
func (c *ClassCounters) Bytes(i int) uint64 {
	if c == nil || i < 0 || i >= len(c.bytes) {
		return 0
	}
	return c.bytes[i].Value()
}

// Registry holds preregistered metrics by name. Registration is idempotent
// (the first registration of a name wins, later ones return the same
// metric) and mutex-guarded; reads of registered metrics never lock.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
	// gen counts registrations of NEW metrics. Readers that cache a view
	// of the registry (the series sampler's track list) compare it to
	// decide whether a rescan is due, keeping their steady state free of
	// both locks and allocations.
	gen atomic.Uint64
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
	}
}

// Counter registers (or finds) the named counter. Returns nil on a nil
// registry.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c := r.counters[name]
	if c == nil {
		c = &Counter{}
		r.counters[name] = c
		r.gen.Add(1)
	}
	return c
}

// Gauge registers (or finds) the named gauge. Returns nil on a nil
// registry.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g := r.gauges[name]
	if g == nil {
		g = &Gauge{}
		r.gauges[name] = g
		r.gen.Add(1)
	}
	return g
}

// Histogram registers (or finds) the named histogram. Bounds must be
// strictly increasing; they are fixed by the first registration (later
// calls return the existing histogram regardless of bounds). Returns nil
// on a nil registry.
func (r *Registry) Histogram(name string, bounds []uint64) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h := r.hists[name]
	if h == nil {
		clean := make([]uint64, 0, len(bounds))
		for _, b := range bounds {
			if len(clean) == 0 || b > clean[len(clean)-1] {
				clean = append(clean, b)
			}
		}
		h = &Histogram{bounds: clean, counts: make([]atomic.Uint64, len(clean)+1)}
		r.hists[name] = h
		r.gen.Add(1)
	}
	return h
}

// Gen returns the registration generation: it changes exactly when a new
// metric is registered, never on value updates. Nil-safe (0).
func (r *Registry) Gen() uint64 {
	if r == nil {
		return 0
	}
	return r.gen.Load()
}

// Visit calls the corresponding callback for every registered metric, in
// no particular order, under the registry mutex. It is a cold-path
// enumeration for cache builders (the series sampler, exposition); the
// callbacks must not register metrics. Nil callbacks and a nil registry
// are fine.
func (r *Registry) Visit(counter func(name string, c *Counter), gauge func(name string, g *Gauge), hist func(name string, h *Histogram)) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if counter != nil {
		for name, c := range r.counters {
			counter(name, c)
		}
	}
	if gauge != nil {
		for name, g := range r.gauges {
			gauge(name, g)
		}
	}
	if hist != nil {
		for name, h := range r.hists {
			hist(name, h)
		}
	}
}

// Bounds returns the histogram's registered bucket bounds (shared slice —
// callers must not mutate). Nil-safe.
func (h *Histogram) Bounds() []uint64 {
	if h == nil {
		return nil
	}
	return h.bounds
}

// BucketCount returns the current count of bucket i (i == len(Bounds())
// is the overflow bucket). Out-of-range or nil returns 0. Wait-free.
func (h *Histogram) BucketCount(i int) uint64 {
	if h == nil || i < 0 || i >= len(h.counts) {
		return 0
	}
	return h.counts[i].Load()
}

// Sum returns the histogram's running sample sum. Nil-safe, wait-free.
func (h *Histogram) Sum() uint64 {
	if h == nil {
		return 0
	}
	return h.sum.Load()
}

// Classes registers a per-class counter family: for each class name c the
// counters "<prefix>.<c>.pkts" and "<prefix>.<c>.bytes". Returns nil on a
// nil registry.
func (r *Registry) Classes(prefix string, classes []string) *ClassCounters {
	if r == nil {
		return nil
	}
	cc := &ClassCounters{
		pkts:  make([]*Counter, len(classes)),
		bytes: make([]*Counter, len(classes)),
	}
	for i, c := range classes {
		cc.pkts[i] = r.Counter(prefix + "." + c + ".pkts")
		cc.bytes[i] = r.Counter(prefix + "." + c + ".bytes")
	}
	return cc
}

// Snapshot is a point-in-time copy of a registry's metrics, the input to
// exposition and merging. Maps are never nil.
type Snapshot struct {
	Counters   map[string]uint64            `json:"counters"`
	Gauges     map[string]int64             `json:"gauges"`
	Histograms map[string]HistogramSnapshot `json:"histograms"`
}

// Snapshot copies every metric's current value. Works on a nil registry
// (empty snapshot).
func (r *Registry) Snapshot() Snapshot {
	s := Snapshot{
		Counters:   make(map[string]uint64),
		Gauges:     make(map[string]int64),
		Histograms: make(map[string]HistogramSnapshot),
	}
	if r == nil {
		return s
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for name, c := range r.counters {
		s.Counters[name] = c.Value()
	}
	for name, g := range r.gauges {
		s.Gauges[name] = g.Value()
	}
	for name, h := range r.hists {
		s.Histograms[name] = h.snapshot()
	}
	return s
}

// Merge sums counters and histogram buckets (when bounds agree; on a
// bounds mismatch the first wins) and keeps each gauge's maximum —
// the aggregation used by the lbrm-sim fleet report.
func Merge(snaps ...Snapshot) Snapshot {
	out := Snapshot{
		Counters:   make(map[string]uint64),
		Gauges:     make(map[string]int64),
		Histograms: make(map[string]HistogramSnapshot),
	}
	for _, s := range snaps {
		for name, v := range s.Counters {
			out.Counters[name] += v
		}
		for name, v := range s.Gauges {
			if cur, ok := out.Gauges[name]; !ok || v > cur {
				out.Gauges[name] = v
			}
		}
		for name, h := range s.Histograms {
			cur, ok := out.Histograms[name]
			if !ok {
				out.Histograms[name] = HistogramSnapshot{
					Bounds: append([]uint64(nil), h.Bounds...),
					Counts: append([]uint64(nil), h.Counts...),
					Sum:    h.Sum,
				}
				continue
			}
			if !equalBounds(cur.Bounds, h.Bounds) {
				continue
			}
			for i := range cur.Counts {
				cur.Counts[i] += h.Counts[i]
			}
			cur.Sum += h.Sum
			out.Histograms[name] = cur
		}
	}
	return out
}

func equalBounds(a, b []uint64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// sortedKeys returns map keys in lexical order (exposition is the cold
// path; sorting keeps dumps diffable).
func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
