package obs

import (
	"bufio"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"
)

// Prometheus text exposition (format version 0.0.4) over the same
// Snapshot the golden format reads. Internal metric names are dotted
// ("recv.nacks_sent"); Prometheus names admit [a-zA-Z_:][a-zA-Z0-9_:]*,
// so every invalid byte maps to '_', counters gain the conventional
// "_total" suffix, and the original name is preserved verbatim in the
// HELP line so a scraper can recover it. Histograms become the
// cumulative _bucket/_sum/_count triplet with a trailing +Inf bucket.

// PromContentType is the Content-Type of the Prometheus text format.
const PromContentType = "text/plain; version=0.0.4; charset=utf-8"

// uniqName claims name in seen, appending _dup<N> suffixes until the
// result is unused (renamed results are claimed too, so chains of
// colliding inputs stay unique).
func uniqName(seen map[string]int, name string) string {
	for {
		n := seen[name]
		seen[name]++
		if n == 0 {
			return name
		}
		name = fmt.Sprintf("%s_dup%d", name, n)
	}
}

// promName maps an internal metric name onto the Prometheus grammar.
// Deterministic and total: any input yields a valid name.
func promName(name string) string {
	var b strings.Builder
	b.Grow(len(name) + 5)
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
			b.WriteByte(c)
		case c >= '0' && c <= '9':
			if i == 0 {
				b.WriteByte('_')
			}
			b.WriteByte(c)
		default:
			b.WriteByte('_')
		}
	}
	if b.Len() == 0 {
		return "_"
	}
	return b.String()
}

// promEscape escapes a HELP text or label value: backslash, newline, and
// (for label values) double quote.
func promEscape(s string, label bool) string {
	var b strings.Builder
	b.Grow(len(s))
	for i := 0; i < len(s); i++ {
		switch c := s[i]; c {
		case '\\':
			b.WriteString(`\\`)
		case '\n':
			b.WriteString(`\n`)
		case '"':
			if label {
				b.WriteString(`\"`)
			} else {
				b.WriteByte(c)
			}
		default:
			b.WriteByte(c)
		}
	}
	return b.String()
}

// promLabels renders a sorted, escaped label set ("" when empty).
// Distinct keys can collide after sanitization; duplicates get a _dup<N>
// suffix in sorted-key order so the block stays grammatical.
func promLabels(labels map[string]string) string {
	return renderLabels(labels, "", "")
}

// mergeLabels renders base labels plus one reserved leading pair (the
// histogram "le" label). The reserved key always keeps its bare name —
// user labels sanitizing onto it are the ones renamed.
func mergeLabels(labels map[string]string, k, v string) string {
	return renderLabels(labels, k, v)
}

func renderLabels(labels map[string]string, extraK, extraV string) string {
	if len(labels) == 0 && extraK == "" {
		return ""
	}
	seen := make(map[string]int, len(labels)+1)
	var b strings.Builder
	b.WriteByte('{')
	if extraK != "" {
		seen[extraK] = 1
		b.WriteString(extraK)
		b.WriteString(`="`)
		b.WriteString(promEscape(extraV, true))
		b.WriteByte('"')
	}
	for _, k := range sortedKeys(labels) {
		pk := uniqName(seen, promName(k))
		if b.Len() > 1 {
			b.WriteByte(',')
		}
		b.WriteString(pk)
		b.WriteString(`="`)
		b.WriteString(promEscape(labels[k], true))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

// WriteProm writes the snapshot in the Prometheus text format. labels
// (may be nil) are attached to every sample — the fleet scraper uses
// them to carry the scrape target. Distinct internal names can collide
// after sanitization; collisions are disambiguated with a _dup<N> suffix
// in first-sorted-wins order so output stays deterministic and parseable.
func WriteProm(w io.Writer, s Snapshot, labels map[string]string) error {
	bw := bufio.NewWriter(w)
	lbl := promLabels(labels)
	seen := make(map[string]int)
	uniq := func(name string) string { return uniqName(seen, name) }

	for _, name := range sortedKeys(s.Counters) {
		pn := uniq(promName(name) + "_total")
		fmt.Fprintf(bw, "# HELP %s lbrm counter %s\n", pn, promEscape(name, false))
		fmt.Fprintf(bw, "# TYPE %s counter\n", pn)
		fmt.Fprintf(bw, "%s%s %d\n", pn, lbl, s.Counters[name])
	}
	for _, name := range sortedKeys(s.Gauges) {
		pn := uniq(promName(name))
		fmt.Fprintf(bw, "# HELP %s lbrm gauge %s\n", pn, promEscape(name, false))
		fmt.Fprintf(bw, "# TYPE %s gauge\n", pn)
		fmt.Fprintf(bw, "%s%s %d\n", pn, lbl, s.Gauges[name])
	}
	for _, name := range sortedKeys(s.Histograms) {
		h := s.Histograms[name]
		pn := uniq(promName(name))
		fmt.Fprintf(bw, "# HELP %s lbrm histogram %s\n", pn, promEscape(name, false))
		fmt.Fprintf(bw, "# TYPE %s histogram\n", pn)
		var cum uint64
		for i, c := range h.Counts {
			cum += c
			le := "+Inf"
			if i < len(h.Bounds) {
				le = strconv.FormatUint(h.Bounds[i], 10)
			}
			fmt.Fprintf(bw, "%s_bucket%s %d\n", pn, mergeLabels(labels, "le", le), cum)
		}
		fmt.Fprintf(bw, "%s_sum%s %d\n", pn, lbl, h.Sum)
		fmt.Fprintf(bw, "%s_count%s %d\n", pn, lbl, cum)
	}
	return bw.Flush()
}

// PromHandler serves the sink's registry in the Prometheus text format.
// GET only (405 otherwise), explicit versioned Content-Type.
func PromHandler(s *Sink) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet && r.Method != http.MethodHead {
			w.Header().Set("Allow", "GET, HEAD")
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		w.Header().Set("Content-Type", PromContentType)
		if r.Method == http.MethodHead {
			return
		}
		_ = WriteProm(w, s.Registry().Snapshot(), nil)
	})
}

// PromFamily is one parsed metric family: the exposition-side view a
// scraper reconstructs from the text format.
type PromFamily struct {
	// Name is the Prometheus metric name (counters keep their _total).
	Name string
	// Type is "counter", "gauge", or "histogram".
	Type string
	// Samples maps the rendered label set (normalized, sorted) to the
	// sample value. Histogram families key bucket samples by their full
	// suffixed name + labels.
	Samples map[string]float64
}

// ParseProm is a line-discipline parser for the subset of the Prometheus
// text format WriteProm emits (and any format-0.0.4 document made of
// HELP/TYPE/sample lines). It enforces the grammar strictly — the CI
// scrape smoke and FuzzPromExposition both use it as the validity
// oracle. Returns the families in order of first appearance.
func ParseProm(r io.Reader) ([]PromFamily, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	fams := make([]PromFamily, 0, 16)
	idx := make(map[string]int)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			rest := strings.TrimPrefix(line, "# TYPE ")
			parts := strings.SplitN(rest, " ", 2)
			if len(parts) != 2 {
				return nil, fmt.Errorf("line %d: malformed TYPE", lineNo)
			}
			name, typ := parts[0], parts[1]
			if !validPromName(name) {
				return nil, fmt.Errorf("line %d: invalid metric name %q", lineNo, name)
			}
			switch typ {
			case "counter", "gauge", "histogram", "summary", "untyped":
			default:
				return nil, fmt.Errorf("line %d: unknown type %q", lineNo, typ)
			}
			if _, dup := idx[name]; dup {
				return nil, fmt.Errorf("line %d: duplicate TYPE for %q", lineNo, name)
			}
			idx[name] = len(fams)
			fams = append(fams, PromFamily{Name: name, Type: typ, Samples: make(map[string]float64)})
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue // HELP or free comment
		}
		name, labels, value, err := parsePromSample(line)
		if err != nil {
			return nil, fmt.Errorf("line %d: %v", lineNo, err)
		}
		fam := familyFor(fams, idx, name)
		if fam == nil {
			return nil, fmt.Errorf("line %d: sample %q without TYPE", lineNo, name)
		}
		key := name + labels
		if _, dup := fam.Samples[key]; dup {
			return nil, fmt.Errorf("line %d: duplicate sample %q", lineNo, key)
		}
		fam.Samples[key] = value
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	for i := range fams {
		if err := checkPromFamily(&fams[i]); err != nil {
			return nil, err
		}
	}
	return fams, nil
}

// familyFor resolves a sample name to its family, accounting for the
// histogram suffixes that share the base family's TYPE line.
func familyFor(fams []PromFamily, idx map[string]int, name string) *PromFamily {
	if i, ok := idx[name]; ok {
		return &fams[i]
	}
	for _, suf := range []string{"_bucket", "_sum", "_count"} {
		base := strings.TrimSuffix(name, suf)
		if base == name {
			continue
		}
		if i, ok := idx[base]; ok && fams[i].Type == "histogram" {
			return &fams[i]
		}
	}
	return nil
}

// parsePromSample splits "name{labels} value" into parts, validating the
// name and the label syntax.
func parsePromSample(line string) (name, labels string, value float64, err error) {
	rest := line
	end := strings.IndexAny(rest, "{ ")
	if end < 0 {
		return "", "", 0, fmt.Errorf("malformed sample %q", line)
	}
	name = rest[:end]
	if !validPromName(name) {
		return "", "", 0, fmt.Errorf("invalid sample name %q", name)
	}
	rest = rest[end:]
	if strings.HasPrefix(rest, "{") {
		close, err2 := labelBlockEnd(rest)
		if err2 != nil {
			return "", "", 0, err2
		}
		labels = rest[:close+1]
		rest = rest[close+1:]
	}
	rest = strings.TrimPrefix(rest, " ")
	// value [timestamp]
	fields := strings.Split(rest, " ")
	if len(fields) < 1 || len(fields) > 2 || fields[0] == "" {
		return "", "", 0, fmt.Errorf("malformed value in %q", line)
	}
	value, err = strconv.ParseFloat(fields[0], 64)
	if err != nil {
		return "", "", 0, fmt.Errorf("bad value %q: %v", fields[0], err)
	}
	if len(fields) == 2 {
		if _, err := strconv.ParseInt(fields[1], 10, 64); err != nil {
			return "", "", 0, fmt.Errorf("bad timestamp %q", fields[1])
		}
	}
	return name, labels, value, nil
}

// labelBlockEnd finds the closing brace of a label block, honoring quoted
// values with backslash escapes, and validates each pair's shape.
func labelBlockEnd(s string) (int, error) {
	i := 1
	for {
		if i >= len(s) {
			return 0, fmt.Errorf("unterminated label block")
		}
		if s[i] == '}' {
			return i, nil
		}
		// label name
		start := i
		for i < len(s) && s[i] != '=' && s[i] != '}' {
			i++
		}
		if i >= len(s) || s[i] != '=' || !validPromName(s[start:i]) {
			return 0, fmt.Errorf("malformed label name in %q", s)
		}
		i++ // '='
		if i >= len(s) || s[i] != '"' {
			return 0, fmt.Errorf("unquoted label value in %q", s)
		}
		i++ // opening quote
		for i < len(s) && s[i] != '"' {
			if s[i] == '\\' {
				i++
				if i >= len(s) {
					return 0, fmt.Errorf("dangling escape in %q", s)
				}
				switch s[i] {
				case '\\', '"', 'n':
				default:
					return 0, fmt.Errorf("bad escape \\%c in %q", s[i], s)
				}
			}
			i++
		}
		if i >= len(s) {
			return 0, fmt.Errorf("unterminated label value in %q", s)
		}
		i++ // closing quote
		if i < len(s) && s[i] == ',' {
			i++
		}
	}
}

func validPromName(s string) bool {
	if s == "" {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
		case c >= '0' && c <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// checkPromFamily enforces per-type shape: counters non-negative,
// histogram buckets cumulative with a +Inf bucket matching _count.
func checkPromFamily(f *PromFamily) error {
	switch f.Type {
	case "counter":
		for k, v := range f.Samples {
			if v < 0 {
				return fmt.Errorf("counter %s negative (%v)", k, v)
			}
		}
	case "histogram":
		type hist struct {
			buckets []struct {
				le  float64
				cum float64
			}
			count    float64
			hasCount bool
			hasInf   bool
		}
		groups := make(map[string]*hist)
		group := func(labels string) *hist {
			h := groups[labels]
			if h == nil {
				h = &hist{}
				groups[labels] = h
			}
			return h
		}
		for k, v := range f.Samples {
			name, labels := k, ""
			if i := strings.IndexByte(k, '{'); i >= 0 {
				name, labels = k[:i], k[i:]
			}
			switch {
			case strings.HasSuffix(name, "_bucket"):
				le, rest, err := extractLE(labels)
				if err != nil {
					return fmt.Errorf("histogram %s: %v", f.Name, err)
				}
				h := group(rest)
				h.buckets = append(h.buckets, struct{ le, cum float64 }{le, v})
				if le > 1e308 { // +Inf
					h.hasInf = true
				}
			case strings.HasSuffix(name, "_count"):
				h := group(labels)
				h.count, h.hasCount = v, true
			}
		}
		for labels, h := range groups {
			sort.Slice(h.buckets, func(i, j int) bool { return h.buckets[i].le < h.buckets[j].le })
			prev := -1.0
			for _, b := range h.buckets {
				if b.cum < prev {
					return fmt.Errorf("histogram %s%s: non-cumulative buckets", f.Name, labels)
				}
				prev = b.cum
			}
			if len(h.buckets) > 0 && !h.hasInf {
				return fmt.Errorf("histogram %s%s: missing +Inf bucket", f.Name, labels)
			}
			if h.hasCount && len(h.buckets) > 0 && h.buckets[len(h.buckets)-1].cum != h.count {
				return fmt.Errorf("histogram %s%s: +Inf bucket %v != count %v",
					f.Name, labels, h.buckets[len(h.buckets)-1].cum, h.count)
			}
		}
	}
	return nil
}

// extractLE pulls the le label out of a rendered label block, returning
// its float value and the block with le removed (the bucket group key).
func extractLE(labels string) (float64, string, error) {
	if !strings.HasPrefix(labels, "{") || !strings.HasSuffix(labels, "}") {
		return 0, "", fmt.Errorf("bucket sample without le label")
	}
	body := labels[1 : len(labels)-1]
	parts := splitLabelPairs(body)
	le := ""
	rest := make([]string, 0, len(parts))
	for _, p := range parts {
		if strings.HasPrefix(p, "le=") {
			le = strings.Trim(strings.TrimPrefix(p, "le="), `"`)
			continue
		}
		rest = append(rest, p)
	}
	if le == "" {
		return 0, "", fmt.Errorf("bucket sample without le label")
	}
	v, err := strconv.ParseFloat(le, 64)
	if err != nil {
		return 0, "", fmt.Errorf("bad le %q", le)
	}
	if len(rest) == 0 {
		return v, "", nil
	}
	return v, "{" + strings.Join(rest, ",") + "}", nil
}

// splitLabelPairs splits a label-block body on commas outside quotes.
func splitLabelPairs(body string) []string {
	var parts []string
	start, inq := 0, false
	for i := 0; i < len(body); i++ {
		switch body[i] {
		case '\\':
			if inq {
				i++
			}
		case '"':
			inq = !inq
		case ',':
			if !inq {
				parts = append(parts, body[start:i])
				start = i + 1
			}
		}
	}
	if start < len(body) {
		parts = append(parts, body[start:])
	}
	return parts
}
