package obs

import (
	"bytes"
	"encoding/json"
	"reflect"
	"testing"
	"unicode/utf8"
)

// FuzzExposition drives the metrics/trace exposition encoder with
// adversarial metric names and values: both encoders must never panic, the
// text format must keep its one-metric-per-line discipline, and the JSON
// form must round-trip to an identical Dump (the cross-check and any
// external scraper depend on lossless encoding).
func FuzzExposition(f *testing.F) {
	f.Add("sender.tx.data.pkts", uint64(45), int64(-3), uint64(7), uint64(500), int64(99), uint8(KindEpochBump), uint64(1), uint64(2), uint64(3))
	f.Add("", uint64(0), int64(0), uint64(0), uint64(0), int64(0), uint8(0), uint64(0), uint64(0), uint64(0))
	f.Add("name with spaces\nand\tcontrol", uint64(1<<63), int64(-1<<62), uint64(10), uint64(11), int64(-5), uint8(200), uint64(1<<64-1), uint64(0), uint64(42))
	f.Add("unicode-Ωμε\x7f\x00", uint64(3), int64(5), uint64(100), uint64(101), int64(7), uint8(KindDASet), uint64(9), uint64(8), uint64(7))
	f.Fuzz(func(t *testing.T, name string, cv uint64, gv int64, h1, h2 uint64, at int64, kindRaw uint8, a, b, c uint64) {
		s := NewSink()
		s.Counter(name).Add(cv)
		s.Counter("fixed.counter").Inc()
		s.Gauge(name + ".g").Set(gv)
		hist := s.Histogram(name+".h", []uint64{10, 100, 1000})
		hist.Observe(h1)
		hist.Observe(h2)
		s.Emit(at, Kind(kindRaw), a, b, c)
		s.EmitFlight(at, Kind(kindRaw), a, b, c)

		d := DumpOf(s)

		// Text: must not panic and must hold the line discipline — every
		// line has one of the five record heads, regardless of the name.
		var text bytes.Buffer
		if err := d.WriteText(&text); err != nil {
			t.Fatalf("WriteText: %v", err)
		}
		for _, line := range bytes.Split(bytes.TrimSuffix(text.Bytes(), []byte("\n")), []byte("\n")) {
			switch {
			case bytes.HasPrefix(line, []byte("counter ")),
				bytes.HasPrefix(line, []byte("gauge ")),
				bytes.HasPrefix(line, []byte("hist ")),
				bytes.HasPrefix(line, []byte("trace ")),
				bytes.HasPrefix(line, []byte("flight ")):
			default:
				t.Fatalf("text line lost its record head: %q", line)
			}
		}

		// JSON: encode, decode, compare — lossless round-trip.
		var js bytes.Buffer
		if err := d.WriteJSON(&js); err != nil {
			t.Fatalf("WriteJSON: %v", err)
		}
		var back Dump
		if err := json.Unmarshal(js.Bytes(), &back); err != nil {
			t.Fatalf("round-trip unmarshal: %v\n%s", err, js.Bytes())
		}
		// JSON map keys cannot carry invalid UTF-8 (the encoder substitutes
		// U+FFFD); real metric names are code constants and always valid, so
		// losslessness is asserted exactly there.
		if utf8.ValidString(name) {
			want := normalize(d)
			if !reflect.DeepEqual(back, want) {
				t.Fatalf("round-trip mismatch:\n got %+v\nwant %+v", back, want)
			}
		}
	})
}
