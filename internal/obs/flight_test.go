package obs

import (
	"bufio"
	"bytes"
	"encoding/json"
	"sync"
	"testing"
	"time"

	"lbrm/internal/wire"
)

// ev builds one flight event; the ring's own Seq stamp is irrelevant to
// stitching, so it stays zero.
func ev(at int64, kind Kind, seq, b, c uint64) Event {
	return Event{At: at, Kind: kind, A: seq, B: b, C: c}
}

func TestSinkConfigValidation(t *testing.T) {
	for _, bad := range []Config{
		{RingSize: 3},
		{RingSize: 12},
		{FlightRingSize: 7},
		{FlightRingSize: 1000},
		{RingSize: 256, FlightRingSize: 6},
		{RingSize: -8},
	} {
		if s, err := NewSinkWith(bad); err == nil {
			t.Errorf("NewSinkWith(%+v) = %v, want power-of-two error", bad, s)
		}
	}
	for _, good := range []Config{
		{}, // defaults
		{RingSize: 8},
		{RingSize: 1024, FlightRingSize: 8},
		{FlightRingSize: 65536},
	} {
		s, err := NewSinkWith(good)
		if err != nil {
			t.Fatalf("NewSinkWith(%+v): %v", good, err)
		}
		if s.Ring() == nil || s.FlightRing() == nil || s.Registry() == nil {
			t.Fatalf("NewSinkWith(%+v) returned incomplete sink", good)
		}
	}
	// The default constructor must match the zero config.
	if s := NewSink(); s.FlightRing() == nil {
		t.Fatal("NewSink has no flight ring")
	}
}

// TestStitchRecoveryBranches stitches each recovery branch from
// hand-written rings and asserts chain shape, completeness and hop math.
func TestStitchRecoveryBranches(t *testing.T) {
	msn := int64(time.Millisecond) // one ms in ns

	tests := []struct {
		name     string
		receiver []Event
		servers  [][]Event
		seq      uint64
		terminal Kind
		path     wire.RecoveryPath
		complete bool
		detected bool
		hbReveal bool
		counts   [4]int // detect, nack, serve, terminal
	}{
		{
			name: "local hit",
			receiver: []Event{
				ev(10*msn, KindGapDetect, 7, 0, 0),
				ev(20*msn, KindNackSend, 7, 0, 0),
				ev(24*msn, KindDeliver, 7, uint64(wire.PathLocal), uint64(14*msn)),
			},
			servers: [][]Event{{
				ev(22*msn, KindServe, 7, uint64(wire.PathLocal), 0),
			}},
			seq: 7, terminal: KindDeliver, path: wire.PathLocal,
			complete: true, detected: true,
			counts: [4]int{1, 1, 1, 1},
		},
		{
			name: "primary callback",
			receiver: []Event{
				ev(10*msn, KindGapDetect, 8, 1, 0),
				ev(20*msn, KindNackSend, 8, 0, 0),
				ev(120*msn, KindNackSend, 8, 0, 1),
				ev(160*msn, KindDeliver, 8, uint64(wire.PathPrimaryCallback), uint64(150*msn)),
			},
			servers: [][]Event{
				{ev(130*msn, KindNackSend, 8, NackTierFetch+1, 0)},               // secondary → primary fetch
				{ev(140*msn, KindServe, 8, uint64(wire.PathPrimaryCallback), 0)}, // primary serve
				{ev(155*msn, KindServe, 8, uint64(wire.PathPrimaryCallback), 1)}, // secondary relay
			},
			seq: 8, terminal: KindDeliver, path: wire.PathPrimaryCallback,
			complete: true, detected: true, hbReveal: true,
			counts: [4]int{1, 3, 2, 1},
		},
		{
			name: "multicast retrans after missing statistical ACK",
			receiver: []Event{
				ev(10*msn, KindGapDetect, 9, 0, 0),
				ev(20*msn, KindNackSend, 9, 0, 0),
				ev(300*msn, KindDeliver, 9, uint64(wire.PathSourceMulticast), uint64(290*msn)),
			},
			servers: [][]Event{{
				ev(250*msn, KindStatMiss, 9, 3, 20),
				ev(250*msn, KindServe, 9, uint64(wire.PathSourceMulticast), 1),
			}},
			seq: 9, terminal: KindDeliver, path: wire.PathSourceMulticast,
			complete: true, detected: true,
			counts: [4]int{1, 1, 1, 1},
		},
		{
			name: "inline-heartbeat repair needs no serve evidence",
			receiver: []Event{
				ev(10*msn, KindGapDetect, 10, 1, 0),
				ev(20*msn, KindNackSend, 10, 2, 0),
				ev(90*msn, KindDeliver, 10, uint64(wire.PathSourceMulticast), uint64(80*msn)),
			},
			seq: 10, terminal: KindDeliver, path: wire.PathSourceMulticast,
			complete: true, detected: true, hbReveal: true,
			counts: [4]int{1, 1, 0, 1},
		},
		{
			name: "skip-ahead abandon",
			receiver: []Event{
				ev(10*msn, KindGapDetect, 11, 0, 0),
				ev(20*msn, KindNackSend, 11, 0, 0),
				ev(500*msn, KindAbandon, 11, 1, 0),
			},
			seq: 11, terminal: KindAbandon, path: wire.PathNone,
			complete: true, detected: true,
			counts: [4]int{1, 1, 0, 1},
		},
		{
			name: "proactive repair: terminal alone is the story",
			receiver: []Event{
				ev(30*msn, KindDeliver, 12, uint64(wire.PathLocal), 0),
			},
			seq: 12, terminal: KindDeliver, path: wire.PathLocal,
			complete: true, detected: false,
			counts: [4]int{0, 0, 0, 1},
		},
		{
			// §2.2.2 NACK suppression: a sibling's NACK triggered the
			// serve, ours never fired — the serve evidence completes the
			// story.
			name: "detected local delivery, NACK suppressed by sibling, serve evidence completes",
			receiver: []Event{
				ev(10*msn, KindGapDetect, 13, 0, 0),
				ev(40*msn, KindDeliver, 13, uint64(wire.PathLocal), uint64(30*msn)),
			},
			servers: [][]Event{{ev(35*msn, KindServe, 13, uint64(wire.PathLocal), 0)}},
			seq:     13, terminal: KindDeliver, path: wire.PathLocal,
			complete: true, detected: true,
			counts: [4]int{1, 0, 1, 1},
		},
		{
			name: "detected local delivery with no serve evidence is incomplete",
			receiver: []Event{
				ev(10*msn, KindGapDetect, 17, 0, 0),
				ev(20*msn, KindNackSend, 17, 0, 0),
				ev(40*msn, KindDeliver, 17, uint64(wire.PathLocal), uint64(30*msn)),
			},
			seq: 17, terminal: KindDeliver, path: wire.PathLocal,
			complete: false, detected: true,
			counts: [4]int{1, 1, 0, 1},
		},
		{
			name: "double terminal is incomplete",
			receiver: []Event{
				ev(10*msn, KindGapDetect, 14, 0, 0),
				ev(20*msn, KindNackSend, 14, 0, 0),
				ev(40*msn, KindDeliver, 14, uint64(wire.PathLocal), uint64(30*msn)),
				ev(50*msn, KindAbandon, 14, 0, 0),
			},
			servers: [][]Event{{ev(30*msn, KindServe, 14, uint64(wire.PathLocal), 0)}},
			seq:     14, terminal: KindDeliver, path: wire.PathLocal,
			complete: false, detected: true,
			counts: [4]int{1, 1, 1, 2},
		},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			chains := StitchFlights(tc.receiver, tc.servers...)
			c := chains[tc.seq]
			if c == nil {
				t.Fatalf("no chain for seq %d", tc.seq)
			}
			if c.Terminal != tc.terminal || c.Path != tc.path {
				t.Fatalf("terminal=%v path=%v, want %v/%v", c.Terminal, c.Path, tc.terminal, tc.path)
			}
			if got := [4]int{c.DetectCount, c.NackCount, c.ServeCount, c.TerminalCount}; got != tc.counts {
				t.Fatalf("counts detect/nack/serve/terminal = %v, want %v", got, tc.counts)
			}
			if c.Complete() != tc.complete {
				t.Fatalf("Complete() = %v, want %v", c.Complete(), tc.complete)
			}
			if c.Detected() != tc.detected {
				t.Fatalf("Detected() = %v, want %v", c.Detected(), tc.detected)
			}
			if c.HeartbeatRevealed != tc.hbReveal {
				t.Fatalf("HeartbeatRevealed = %v, want %v", c.HeartbeatRevealed, tc.hbReveal)
			}
			if !c.CausallyOrdered() {
				t.Fatalf("chain not causally ordered: %+v", c)
			}
			// Exactly-one-terminal is what a well-formed branch guarantees.
			if tc.complete && c.TerminalCount != 1 {
				t.Fatalf("complete chain has %d terminals", c.TerminalCount)
			}
		})
	}
}

func TestStitchServerEventsWithoutReceiverChainDropped(t *testing.T) {
	chains := StitchFlights(nil, []Event{
		ev(5, KindServe, 42, uint64(wire.PathLocal), 1),
		ev(6, KindNackSend, 42, NackTierFetch+1, 0),
	})
	if len(chains) != 0 {
		t.Fatalf("server-only events created %d chains, want 0", len(chains))
	}
}

func TestStitchHopLatencies(t *testing.T) {
	msn := int64(time.Millisecond)
	chains := StitchFlights([]Event{
		ev(10*msn, KindGapDetect, 1, 0, 0),
		ev(25*msn, KindNackSend, 1, 0, 0),
		ev(40*msn, KindDeliver, 1, uint64(wire.PathLocal), uint64(30*msn)),
	}, []Event{
		// Two serves: a stale one on the wrong path after the delivery, and
		// the real one. resolveServe must pick the matching-path serve at or
		// before the terminal.
		ev(45*msn, KindServe, 1, uint64(wire.PathPrimaryCallback), 0),
		ev(30*msn, KindServe, 1, uint64(wire.PathLocal), 0),
	})
	c := chains[1]
	if c == nil {
		t.Fatal("no chain")
	}
	if c.ServeAt != 30*msn {
		t.Fatalf("ServeAt = %d, want %d", c.ServeAt, 30*msn)
	}
	check := func(name string, f func() (time.Duration, bool), want time.Duration) {
		t.Helper()
		d, ok := f()
		if !ok || d != want {
			t.Fatalf("%s = %v/%v, want %v/true", name, d, ok, want)
		}
	}
	check("DetectToNack", c.DetectToNack, 15*time.Millisecond)
	check("NackToServe", c.NackToServe, 5*time.Millisecond)
	check("ServeToDeliver", c.ServeToDeliver, 10*time.Millisecond)
	check("DetectToDeliver", c.DetectToDeliver, 30*time.Millisecond)
	// Events must be causally sorted even with the out-of-order input.
	for i := 1; i < len(c.Events); i++ {
		if c.Events[i].At < c.Events[i-1].At {
			t.Fatalf("events not sorted by At: %+v", c.Events)
		}
	}
}

func TestCausallyOrderedViolation(t *testing.T) {
	msn := int64(time.Millisecond)
	// An abandon whose only serve evidence postdates the terminal: the
	// resolver keeps it (evidence someone tried), causality check trips.
	chains := StitchFlights([]Event{
		ev(10*msn, KindGapDetect, 2, 0, 0),
		ev(20*msn, KindNackSend, 2, 0, 0),
		ev(30*msn, KindAbandon, 2, 0, 0),
	}, []Event{
		ev(40*msn, KindServe, 2, uint64(wire.PathLocal), 0),
	})
	if c := chains[2]; c.CausallyOrdered() {
		t.Fatalf("serve after abandon should break causal order: %+v", c)
	}
}

func TestFoldFlightChains(t *testing.T) {
	msn := int64(time.Millisecond)
	chains := StitchFlights([]Event{
		// Local recovery, 24ms end to end.
		ev(10*msn, KindGapDetect, 1, 0, 0),
		ev(20*msn, KindNackSend, 1, 0, 0),
		ev(34*msn, KindDeliver, 1, uint64(wire.PathLocal), uint64(24*msn)),
		// Abandon.
		ev(10*msn, KindGapDetect, 2, 0, 0),
		ev(500*msn, KindAbandon, 2, 0, 0),
		// Proactive.
		ev(15*msn, KindDeliver, 3, uint64(wire.PathSourceMulticast), 0),
	}, []Event{
		ev(28*msn, KindServe, 1, uint64(wire.PathLocal), 0),
	})
	reg := NewRegistry()
	FoldFlightChains(reg, chains)
	snap := reg.Snapshot()
	wantCounters := map[string]uint64{
		"flight.chains":           3,
		"flight.chains.complete":  3,
		"flight.chains.abandoned": 1,
		"flight.chains.proactive": 1,
		"flight.chains.local":     1,
	}
	for name, want := range wantCounters {
		if got := snap.Counters[name]; got != want {
			t.Errorf("%s = %d, want %d", name, got, want)
		}
	}
	h, ok := snap.Histograms["flight.recovery.local.rtt_ms"]
	if !ok || h.Total() != 1 || h.Sum != 24 {
		t.Fatalf("local rtt histogram = %+v, want one 24ms observation", h)
	}
	for _, name := range []string{
		"flight.recovery.detect_to_nack_ms",
		"flight.recovery.nack_to_serve_ms",
		"flight.recovery.serve_to_deliver_ms",
	} {
		if h := snap.Histograms[name]; h.Total() != 1 {
			t.Errorf("%s count = %d, want 1", name, h.Total())
		}
	}
	// Only chain 1 carried NACK evidence; it was served at tier 0.
	if h := snap.Histograms["flight.recovery.serve_tier"]; h.Total() != 1 || h.Sum != 0 {
		t.Errorf("serve_tier histogram = %+v, want one tier-0 observation", h)
	}
	if h := snap.Histograms["flight.recovery.tier0.deliver_ms"]; h.Total() != 1 || h.Sum != 24 {
		t.Errorf("tier0.deliver_ms histogram = %+v, want one 24ms observation", h)
	}
}

// TestServeTierEscalation checks the tier contract: receiver NACK phases
// and logger fetch stamps (NackTierFetch + target tier) fold into the
// chain's max escalation tier and the per-tier deliver breakdown.
func TestServeTierEscalation(t *testing.T) {
	msn := int64(time.Millisecond)
	chains := StitchFlights([]Event{
		// Escalated through tier 0 and tier 1 before the regional's fetch
		// to the primary (tier 2) produced the repair.
		ev(10*msn, KindGapDetect, 5, 0, 0),
		ev(20*msn, KindNackSend, 5, 0, 0),
		ev(120*msn, KindNackSend, 5, 1, 1),
		ev(300*msn, KindDeliver, 5, uint64(wire.PathPrimaryCallback), uint64(290*msn)),
	}, []Event{
		ev(140*msn, KindNackSend, 5, NackTierFetch+2, 0), // regional → primary fetch
		ev(200*msn, KindServe, 5, uint64(wire.PathPrimaryCallback), 0),
	})
	c := chains[5]
	if c == nil {
		t.Fatal("no chain")
	}
	if c.ServeTier != 2 {
		t.Fatalf("ServeTier = %d, want 2", c.ServeTier)
	}
	reg := NewRegistry()
	FoldFlightChains(reg, chains)
	snap := reg.Snapshot()
	if h := snap.Histograms["flight.recovery.serve_tier"]; h.Total() != 1 || h.Sum != 2 {
		t.Fatalf("serve_tier histogram = %+v, want one tier-2 observation", h)
	}
	if h := snap.Histograms["flight.recovery.tier2.deliver_ms"]; h.Total() != 1 || h.Sum != 290 {
		t.Fatalf("tier2.deliver_ms histogram = %+v, want one 290ms observation", h)
	}
	// Tier 0 registers eagerly (flight-log schema stability) but records
	// nothing without a tier-0 delivery; deeper tiers stay lazy.
	if h, ok := snap.Histograms["flight.recovery.tier0.deliver_ms"]; !ok || h.Total() != 0 {
		t.Fatalf("tier0.deliver_ms = %+v (present %v), want registered and empty", h, ok)
	}
	if _, ok := snap.Histograms["flight.recovery.tier1.deliver_ms"]; ok {
		t.Fatal("tier1.deliver_ms registered with no tier-1 delivery")
	}
}

func TestWriteFlightLog(t *testing.T) {
	s := NewSink()
	s.Counter("x.pkts").Add(3)
	samples := []FlightSample{
		{At: 1_000_000, Metrics: s.Registry().Snapshot()},
		{At: 2_000_000, Metrics: s.Registry().Snapshot()},
	}
	var buf bytes.Buffer
	if err := WriteFlightLog(&buf, samples); err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(&buf)
	var ats []int64
	for sc.Scan() {
		var got FlightSample
		if err := json.Unmarshal(sc.Bytes(), &got); err != nil {
			t.Fatalf("line %d: %v", len(ats)+1, err)
		}
		if got.Metrics.Counters["x.pkts"] != 3 {
			t.Fatalf("line %d: counters did not round-trip: %+v", len(ats)+1, got.Metrics)
		}
		ats = append(ats, got.At)
	}
	if len(ats) != 2 || ats[0] != 1_000_000 || ats[1] != 2_000_000 {
		t.Fatalf("round-tripped sample times %v, want [1000000 2000000]", ats)
	}
}

// TestConcurrentFlightEmit tortures the flight ring under -race: eight
// writers emitting flight records while a reader snapshots. The seqlock
// contract is the same as the trace ring's: snapshot seqs strictly
// increase and no torn slot leaks (writers pair A with At).
func TestConcurrentFlightEmit(t *testing.T) {
	s, err := NewSinkWith(Config{FlightRingSize: 256})
	if err != nil {
		t.Fatal(err)
	}
	const writers, perWriter = 8, 2000
	var writerWG, readerWG sync.WaitGroup
	stop := make(chan struct{})
	readerWG.Add(1)
	go func() {
		defer readerWG.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			evs := s.FlightRing().Snapshot()
			for i := 1; i < len(evs); i++ {
				if evs[i].Seq <= evs[i-1].Seq {
					t.Error("flight snapshot seqs not strictly increasing")
					return
				}
			}
			for _, ev := range evs {
				if ev.A != uint64(ev.At) {
					t.Errorf("torn flight event leaked: at=%d a=%d", ev.At, ev.A)
					return
				}
			}
		}
	}()
	for w := 0; w < writers; w++ {
		writerWG.Add(1)
		go func(w int) {
			defer writerWG.Done()
			for i := 0; i < perWriter; i++ {
				at := int64(w*perWriter + i)
				s.EmitFlight(at, KindDeliver, uint64(at), uint64(wire.PathLocal), 0)
			}
		}(w)
	}
	writerWG.Wait()
	close(stop)
	readerWG.Wait()
	if got := s.FlightRing().Len(); got != writers*perWriter {
		t.Fatalf("flight ring recorded %d emissions, want %d", got, writers*perWriter)
	}
}
