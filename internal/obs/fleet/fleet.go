// Package fleet assembles the observability control plane (DESIGN.md
// §15) from its parts: per-daemon wiring (sink + series sampler + health
// engine behind one HTTP mux) and the fleet scraper behind lbrm-top
// (poll every daemon's exposition endpoint, ingest snapshots into local
// series, evaluate fleet-wide health, serve a JSON control-plane API).
package fleet

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"
	"sync"
	"time"

	"lbrm/internal/obs"
	"lbrm/internal/obs/health"
	"lbrm/internal/obs/series"
)

// SeriesCap is the per-sampler retained sample count: at the default 2s
// daemon cadence this holds ~8.5 minutes of history, comfortably above
// any rule window.
const SeriesCap = 256

// Node is one daemon's control-plane wiring: the series sampler over its
// sink and a single-entity health engine, both driven by one wall-clock
// loop, exposed on one mux.
type Node struct {
	sink    *obs.Sink
	sampler *series.Sampler
	engine  *health.Engine
	every   time.Duration
}

// NewNode wires a daemon sink. sampleEvery is the wall sampling/eval
// cadence (0 = 2s). The health engine reports into the same sink, so
// health.* gauges and alert trace events ride the normal exposition.
func NewNode(sink *obs.Sink, sampleEvery time.Duration) *Node {
	if sampleEvery <= 0 {
		sampleEvery = 2 * time.Second
	}
	cfg := health.Defaults()
	cfg.EvalEvery = sampleEvery
	eng := health.NewEngine(cfg, sink)
	smp := series.NewSampler(sink.Registry(), SeriesCap)
	// One entity: a daemon only sees itself, so the relative crying-baby
	// rule stays silent locally (it needs fleet context — lbrm-top has
	// it); the absolute rules (SLO, storm, ring stall) still apply.
	eng.AddEntity("self", true, smp)
	return &Node{sink: sink, sampler: smp, engine: eng, every: sampleEvery}
}

// Sampler returns the node's series sampler.
func (n *Node) Sampler() *series.Sampler { return n.sampler }

// Engine returns the node's health engine.
func (n *Node) Engine() *health.Engine { return n.engine }

// Start launches the wall-clock loop: fold runtime gauges into the
// registry, sample the series, evaluate health. Stop with Stop.
func (n *Node) Start() {
	reg := n.sink.Registry()
	n.sampler.StartWall(n.every, func() { obs.SampleRuntime(reg) })
	// Health evaluation rides its own ticker so an Eval slow path can
	// never delay the sampler's zero-alloc cadence.
	go func() {
		tick := time.NewTicker(n.every)
		defer tick.Stop()
		for now := range tick.C {
			if n.sampler.Len() == 0 { // stopped sampler: exit with it
				return
			}
			n.engine.Eval(now.UnixNano())
		}
	}()
}

// Stop halts the wall-clock sampler (the eval loop drains on its own).
func (n *Node) Stop() { n.sampler.StopWall() }

// Mux returns the daemon exposition mux: the golden format at /metrics,
// Prometheus text at /metrics/prom, runtime gauges at /metrics/runtime,
// health state at /metrics/health, and series summaries at
// /metrics/series. Callers add pprof themselves.
func (n *Node) Mux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.Handle("/metrics", obs.Handler(n.sink))
	mux.Handle("/metrics/prom", obs.PromHandler(n.sink))
	mux.Handle("/metrics/runtime", obs.RuntimeHandler())
	mux.Handle("/metrics/health", HealthHandler(n.engine))
	mux.Handle("/metrics/series", SeriesHandler(n.sampler))
	return mux
}

// healthDoc is the /metrics/health JSON document.
type healthDoc struct {
	// DetectionBoundNs is the engine's documented worst-case detection
	// latency (see health.Config.DetectionBound).
	DetectionBoundNs int64          `json:"detection_bound_ns"`
	Entities         []string       `json:"entities"`
	Active           []health.Alert `json:"active"`
	History          []health.Alert `json:"history"`
}

// HealthHandler serves the engine's alert state as JSON (GET only).
func HealthHandler(e *health.Engine) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet && r.Method != http.MethodHead {
			w.Header().Set("Allow", "GET, HEAD")
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		w.Header().Set("Content-Type", obs.JSONContentType)
		if r.Method == http.MethodHead {
			return
		}
		doc := healthDoc{
			DetectionBoundNs: int64(e.Config().DetectionBound()),
			Entities:         e.Entities(),
			Active:           e.Active(),
			History:          e.History(),
		}
		if doc.Active == nil {
			doc.Active = []health.Alert{}
		}
		if doc.History == nil {
			doc.History = []health.Alert{}
		}
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(doc)
	})
}

// seriesEntry is one metric's windowed summary in /metrics/series.
type seriesEntry struct {
	Name string `json:"name"`
	// Last is the newest sampled value (counters and gauges).
	Last *int64 `json:"last,omitempty"`
	// Rate1m is the per-second rate over the trailing minute.
	Rate1m *float64 `json:"rate_1m,omitempty"`
	// P50/P99 are windowed histogram quantiles over the trailing minute.
	P50 *float64 `json:"p50_1m,omitempty"`
	P99 *float64 `json:"p99_1m,omitempty"`
}

// SeriesHandler serves a windowed per-metric summary as JSON (GET only):
// the quick "what is trending" view lbrm-top and humans share.
func SeriesHandler(s *series.Sampler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet && r.Method != http.MethodHead {
			w.Header().Set("Allow", "GET, HEAD")
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		w.Header().Set("Content-Type", obs.JSONContentType)
		if r.Method == http.MethodHead {
			return
		}
		const window = time.Minute
		entries := make([]seriesEntry, 0, 64)
		for _, name := range s.Names() {
			e := seriesEntry{Name: name}
			if v, ok := s.Last(name); ok {
				e.Last = &v
			}
			if rate, ok := s.Rate(name, window); ok {
				e.Rate1m = &rate
			}
			if q, ok := s.Quantile(name, 0.50, window); ok {
				e.P50 = &q
			}
			if q, ok := s.Quantile(name, 0.99, window); ok {
				e.P99 = &q
			}
			entries = append(entries, e)
		}
		doc := struct {
			Samples  uint64        `json:"samples"`
			Capacity int           `json:"capacity"`
			Series   []seriesEntry `json:"series"`
		}{s.Len(), s.Cap(), entries}
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(doc)
	})
}

// Scraper polls a fixed target list and folds each daemon's snapshots
// into per-target series, with one fleet-wide health engine over them —
// the crying-baby rule gets the cross-site context no single daemon has.
type Scraper struct {
	mu       sync.Mutex
	targets  []string
	client   *http.Client
	samplers map[string]*series.Sampler
	engine   *health.Engine
	status   map[string]*TargetStatus
}

// TargetStatus is one target's scrape bookkeeping.
type TargetStatus struct {
	Target   string `json:"target"`
	Up       bool   `json:"up"`
	Error    string `json:"error,omitempty"`
	Scrapes  uint64 `json:"scrapes"`
	Failures uint64 `json:"failures"`
	// LastOkNs is the engine-clock time of the last successful scrape.
	LastOkNs int64 `json:"last_ok_ns"`
}

// NewScraper returns a scraper over targets ("host:port" or full URL
// bases). cfg tunes the fleet health engine; health output lands in out
// (nil = silent).
func NewScraper(targets []string, cfg health.Config, out *obs.Sink) *Scraper {
	s := &Scraper{
		targets:  append([]string(nil), targets...),
		client:   &http.Client{Timeout: 5 * time.Second},
		samplers: make(map[string]*series.Sampler),
		engine:   health.NewEngine(cfg, out),
		status:   make(map[string]*TargetStatus),
	}
	for _, t := range s.targets {
		s.samplers[t] = series.NewSampler(nil, SeriesCap)
		s.status[t] = &TargetStatus{Target: t}
		// Every target runs all rules; rules whose metrics a target does
		// not expose read no data and stay silent.
		s.engine.AddEntity(t, true, s.samplers[t])
	}
	return s
}

// Engine returns the fleet health engine.
func (s *Scraper) Engine() *health.Engine { return s.engine }

// baseURL normalizes a target into an http base.
func baseURL(target string) string {
	if strings.HasPrefix(target, "http://") || strings.HasPrefix(target, "https://") {
		return strings.TrimSuffix(target, "/")
	}
	return "http://" + target
}

// dumpDoc mirrors the obs.Dump JSON wire format's metric sections.
type dumpDoc struct {
	Counters   map[string]uint64                `json:"counters"`
	Gauges     map[string]int64                 `json:"gauges"`
	Histograms map[string]obs.HistogramSnapshot `json:"histograms"`
}

// ScrapeOnce polls every target once at nowNs, ingests snapshots, and
// runs one health evaluation. Targets are scraped sequentially — the
// fleet sizes lbrm-top watches don't need fan-out, and it keeps the
// sample clock single-writer.
func (s *Scraper) ScrapeOnce(nowNs int64) []health.Alert {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, target := range s.targets {
		st := s.status[target]
		st.Scrapes++
		doc, err := s.fetchDump(target)
		if err != nil {
			st.Up, st.Error = false, err.Error()
			st.Failures++
			continue
		}
		st.Up, st.Error = true, ""
		st.LastOkNs = nowNs
		s.samplers[target].SampleSnapshot(nowNs, obs.Snapshot{
			Counters:   doc.Counters,
			Gauges:     doc.Gauges,
			Histograms: doc.Histograms,
		})
	}
	return s.engine.Eval(nowNs)
}

func (s *Scraper) fetchDump(target string) (*dumpDoc, error) {
	resp, err := s.client.Get(baseURL(target) + "/metrics?format=json")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("status %d", resp.StatusCode)
	}
	var doc dumpDoc
	if err := json.NewDecoder(io.LimitReader(resp.Body, 32<<20)).Decode(&doc); err != nil {
		return nil, fmt.Errorf("decode: %w", err)
	}
	return &doc, nil
}

// ValidatePromOne scrapes a target's Prometheus endpoint and runs the
// line-discipline parser over it, checking the Content-Type carries the
// 0.0.4 version. Returns the family count.
func (s *Scraper) ValidatePromOne(target string) (int, error) {
	resp, err := s.client.Get(baseURL(target) + "/metrics/prom")
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return 0, fmt.Errorf("status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != obs.PromContentType {
		return 0, fmt.Errorf("content-type %q, want %q", ct, obs.PromContentType)
	}
	fams, err := obs.ParseProm(io.LimitReader(resp.Body, 32<<20))
	if err != nil {
		return 0, err
	}
	return len(fams), nil
}

// TargetReport is one row of the fleet table / control-plane API.
type TargetReport struct {
	TargetStatus
	// NackRate is the windowed NACK demand in NACKs/s.
	NackRate float64 `json:"nack_rate"`
	// RecoveryP99MS is the windowed recovery p99 (0 when no recoveries).
	RecoveryP99MS float64 `json:"recovery_p99_ms"`
	// Goroutines / HeapAllocBytes / GCPauseLastNs mirror the runtime
	// series (0 when the target doesn't expose them).
	Goroutines    int64 `json:"goroutines"`
	HeapAlloc     int64 `json:"heap_alloc_bytes"`
	GCPauseLastNs int64 `json:"gc_pause_last_ns"`
	// Alerts are this target's active alerts.
	Alerts []health.Alert `json:"alerts"`
}

// Report is the full control-plane document served at /fleet.
type Report struct {
	AtNs             int64          `json:"at_ns"`
	DetectionBoundNs int64          `json:"detection_bound_ns"`
	Targets          []TargetReport `json:"targets"`
	Active           []health.Alert `json:"active"`
	History          []health.Alert `json:"history"`
}

// Report assembles the current fleet view.
func (s *Scraper) Report(nowNs int64) Report {
	s.mu.Lock()
	defer s.mu.Unlock()
	cfg := s.engine.Config()
	active := s.engine.Active()
	rep := Report{
		AtNs:             nowNs,
		DetectionBoundNs: int64(cfg.DetectionBound()),
		Active:           active,
		History:          s.engine.History(),
	}
	if rep.Active == nil {
		rep.Active = []health.Alert{}
	}
	if rep.History == nil {
		rep.History = []health.Alert{}
	}
	for _, target := range s.targets {
		smp := s.samplers[target]
		tr := TargetReport{TargetStatus: *s.status[target], Alerts: []health.Alert{}}
		for _, name := range cfg.NackCounters {
			if r, ok := smp.Rate(name, cfg.Window); ok {
				tr.NackRate += r
			}
		}
		for _, name := range cfg.RecoveryHists {
			if q, ok := smp.Quantile(name, 0.99, cfg.Window); ok && q > tr.RecoveryP99MS {
				tr.RecoveryP99MS = q
			}
		}
		tr.Goroutines, _ = smp.Last("runtime.goroutines")
		tr.HeapAlloc, _ = smp.Last("runtime.heap_alloc_bytes")
		tr.GCPauseLastNs, _ = smp.Last("runtime.gc_pause_last_ns")
		for _, a := range active {
			if a.Entity == target || a.Entity == "fleet" {
				tr.Alerts = append(tr.Alerts, a)
			}
		}
		rep.Targets = append(rep.Targets, tr)
	}
	return rep
}

// FleetHandler serves the control-plane Report as JSON at every request
// (GET only) — mounted at /fleet on the lbrm-top mux next to the
// standard obs.Handler endpoints.
func (s *Scraper) FleetHandler(now func() int64) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet && r.Method != http.MethodHead {
			w.Header().Set("Allow", "GET, HEAD")
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		w.Header().Set("Content-Type", obs.JSONContentType)
		if r.Method == http.MethodHead {
			return
		}
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(s.Report(now()))
	})
}

// ReportJSON renders a Report as indented JSON (the -json CLI view and
// the /fleet endpoint share one shape).
func ReportJSON(rep Report) string {
	b, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return "{}"
	}
	return string(b)
}

// WriteTable renders the fleet health table: one row per target plus an
// alert tail, the lbrm-top terminal view.
func WriteTable(w io.Writer, rep Report) {
	fmt.Fprintf(w, "%-28s %-5s %9s %12s %6s %10s %s\n",
		"TARGET", "UP", "NACK/s", "REC-P99(ms)", "GORO", "HEAP(MB)", "ALERTS")
	for _, tr := range rep.Targets {
		up := "up"
		if !tr.Up {
			up = "DOWN"
		}
		names := make([]string, 0, len(tr.Alerts))
		for _, a := range tr.Alerts {
			names = append(names, a.RuleName)
		}
		sort.Strings(names)
		alerts := strings.Join(names, ",")
		if alerts == "" {
			alerts = "-"
		}
		fmt.Fprintf(w, "%-28s %-5s %9.2f %12.1f %6d %10.1f %s\n",
			tr.Target, up, tr.NackRate, tr.RecoveryP99MS,
			tr.Goroutines, float64(tr.HeapAlloc)/(1<<20), alerts)
	}
	if len(rep.Active) > 0 {
		fmt.Fprintf(w, "\nactive alerts (detection bound %v):\n", time.Duration(rep.DetectionBoundNs))
		for _, a := range rep.Active {
			fmt.Fprintf(w, "  %-12s %-28s value=%.2f threshold=%.2f since=%s\n",
				a.RuleName, a.Entity, a.Value, a.Threshold,
				time.Unix(0, a.RaisedAt).Format(time.TimeOnly))
		}
	}
}
