package fleet

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"lbrm/internal/obs"
	"lbrm/internal/obs/health"
)

func TestNodeMuxEndpoints(t *testing.T) {
	sink := obs.NewSink()
	sink.Counter("recv.nacks_sent").Inc()
	node := NewNode(sink, time.Second)
	node.Sampler().Sample(0) // one manual sample so series queries have data
	mux := node.Mux()

	cases := []struct{ path, wantType string }{
		{"/metrics", obs.TextContentType},
		{"/metrics?format=json", obs.JSONContentType},
		{"/metrics/prom", obs.PromContentType},
		{"/metrics/runtime", obs.TextContentType},
		{"/metrics/health", obs.JSONContentType},
		{"/metrics/series", obs.JSONContentType},
	}
	for _, c := range cases {
		rec := httptest.NewRecorder()
		mux.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, c.path, nil))
		if rec.Code != http.StatusOK {
			t.Fatalf("GET %s = %d", c.path, rec.Code)
		}
		if got := rec.Header().Get("Content-Type"); got != c.wantType {
			t.Fatalf("GET %s Content-Type = %q, want %q", c.path, got, c.wantType)
		}
		rec = httptest.NewRecorder()
		mux.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, c.path, nil))
		if rec.Code != http.StatusMethodNotAllowed {
			t.Fatalf("POST %s = %d, want 405", c.path, rec.Code)
		}
	}

	// /metrics/health carries the engine contract fields.
	rec := httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/metrics/health", nil))
	var hd struct {
		DetectionBoundNs int64          `json:"detection_bound_ns"`
		Entities         []string       `json:"entities"`
		Active           []health.Alert `json:"active"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &hd); err != nil {
		t.Fatalf("health JSON: %v", err)
	}
	if hd.DetectionBoundNs != int64(node.Engine().Config().DetectionBound()) {
		t.Fatalf("detection bound = %d", hd.DetectionBoundNs)
	}
	if len(hd.Entities) != 1 || hd.Entities[0] != "self" {
		t.Fatalf("entities = %v", hd.Entities)
	}
	if hd.Active == nil || len(hd.Active) != 0 {
		t.Fatalf("fresh node has active alerts: %v", hd.Active)
	}

	// /metrics/series lists the sampled metric.
	rec = httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/metrics/series", nil))
	if !strings.Contains(rec.Body.String(), `"recv.nacks_sent"`) {
		t.Fatalf("series missing sampled metric:\n%s", rec.Body.String())
	}
}

func TestNodeWallLoop(t *testing.T) {
	sink := obs.NewSink()
	sink.Counter("recv.nacks_sent").Inc()
	node := NewNode(sink, 10*time.Millisecond)
	node.Start()
	defer node.Stop()
	deadline := time.Now().Add(2 * time.Second)
	for node.Sampler().Len() < 3 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if node.Sampler().Len() < 3 {
		t.Fatalf("wall sampler produced %d samples", node.Sampler().Len())
	}
	// Runtime gauges get folded into the registry by the pre-hook.
	if _, ok := node.Sampler().Last("runtime.goroutines"); !ok {
		t.Fatal("runtime.goroutines not sampled")
	}
}

// fleetSim is a 3-daemon synthetic fleet behind httptest servers; site 2
// is the crying baby.
type fleetSim struct {
	sinks   []*obs.Sink
	servers []*httptest.Server
	targets []string
}

func newFleetSim(t *testing.T) *fleetSim {
	t.Helper()
	f := &fleetSim{}
	for i := 0; i < 3; i++ {
		sink := obs.NewSink()
		sink.Counter("recv.nacks_sent") // pre-register so the first scrape sees the track
		mux := http.NewServeMux()
		mux.Handle("/metrics", obs.Handler(sink))
		mux.Handle("/metrics/prom", obs.PromHandler(sink))
		srv := httptest.NewServer(mux)
		t.Cleanup(srv.Close)
		f.sinks = append(f.sinks, sink)
		f.servers = append(f.servers, srv)
		f.targets = append(f.targets, srv.URL)
	}
	return f
}

func TestScraperDetectsCryingBaby(t *testing.T) {
	f := newFleetSim(t)
	cfg := health.Defaults()
	cfg.EvalEvery = time.Second
	sc := NewScraper(f.targets, cfg, obs.NewSink())

	bound := cfg.DetectionBound()
	var raised []health.Alert
	now := int64(0)
	var detectedAt int64 = -1
	for tick := 0; tick < 15; tick++ {
		// Per simulated second: healthy sites NACK once, the baby 30×.
		for i, sink := range f.sinks {
			n := 1
			if i == 2 {
				n = 30
			}
			sink.Counter("recv.nacks_sent").Add(uint64(n))
		}
		now += int64(time.Second)
		raised = sc.ScrapeOnce(now)
		for _, a := range raised {
			if a.Rule == health.RuleCryingBaby && detectedAt < 0 {
				detectedAt = now
				if a.Entity != f.targets[2] {
					t.Fatalf("crying baby attributed to %s, want %s", a.Entity, f.targets[2])
				}
			}
		}
		if detectedAt >= 0 {
			break
		}
	}
	if detectedAt < 0 {
		t.Fatalf("crying baby never detected; active=%v", sc.Engine().Active())
	}
	if detectedAt > int64(bound) {
		t.Fatalf("detected at %v, beyond documented bound %v", time.Duration(detectedAt), bound)
	}

	rep := sc.Report(now)
	if len(rep.Targets) != 3 {
		t.Fatalf("report targets = %d", len(rep.Targets))
	}
	for i, tr := range rep.Targets {
		if !tr.Up {
			t.Fatalf("target %d down: %s", i, tr.Error)
		}
	}
	if rep.Targets[2].NackRate <= rep.Targets[0].NackRate {
		t.Fatalf("baby rate %v not above healthy rate %v",
			rep.Targets[2].NackRate, rep.Targets[0].NackRate)
	}
	if len(rep.Targets[2].Alerts) == 0 {
		t.Fatal("baby row has no alerts")
	}

	var buf strings.Builder
	WriteTable(&buf, rep)
	out := buf.String()
	if !strings.Contains(out, "crying-baby") {
		t.Fatalf("table missing alert:\n%s", out)
	}

	// The control-plane API serves the same document.
	rec := httptest.NewRecorder()
	sc.FleetHandler(func() int64 { return now }).ServeHTTP(rec,
		httptest.NewRequest(http.MethodGet, "/fleet", nil))
	var apiRep Report
	if err := json.Unmarshal(rec.Body.Bytes(), &apiRep); err != nil {
		t.Fatalf("/fleet JSON: %v", err)
	}
	if len(apiRep.Active) == 0 || apiRep.Active[0].RuleName != "crying-baby" {
		t.Fatalf("/fleet active = %+v", apiRep.Active)
	}
	if apiRep.DetectionBoundNs != int64(bound) {
		t.Fatalf("/fleet bound = %d", apiRep.DetectionBoundNs)
	}
}

func TestScraperStrictPromValidation(t *testing.T) {
	f := newFleetSim(t)
	sc := NewScraper(f.targets, health.Defaults(), nil)
	for _, target := range f.targets {
		n, err := sc.ValidatePromOne(target)
		if err != nil {
			t.Fatalf("ValidatePromOne(%s): %v", target, err)
		}
		if n == 0 {
			t.Fatalf("ValidatePromOne(%s): zero families", target)
		}
	}
}

func TestScraperDownTarget(t *testing.T) {
	f := newFleetSim(t)
	targets := append(append([]string(nil), f.targets...), "127.0.0.1:1") // nothing listens on port 1
	sc := NewScraper(targets, health.Defaults(), nil)
	sc.ScrapeOnce(int64(time.Second))
	rep := sc.Report(int64(time.Second))
	if len(rep.Targets) != 4 {
		t.Fatalf("targets = %d", len(rep.Targets))
	}
	down := rep.Targets[3]
	if down.Up || down.Failures != 1 || down.Error == "" {
		t.Fatalf("down target status = %+v", down)
	}
	for _, tr := range rep.Targets[:3] {
		if !tr.Up {
			t.Fatalf("live target marked down: %+v", tr)
		}
	}
}
