package obs

import (
	"bytes"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func TestPromNameSanitization(t *testing.T) {
	cases := []struct{ in, want string }{
		{"recv.nacks_sent", "recv_nacks_sent"},
		{"sender.tx.data.pkts", "sender_tx_data_pkts"},
		{"9starts", "_9starts"},
		{"", "_"},
		{"ok:colon", "ok:colon"},
		{"sp ace\nnl", "sp_ace_nl"},
		{"Ω", "__"},
	}
	for _, c := range cases {
		if got := promName(c.in); got != c.want {
			t.Errorf("promName(%q) = %q, want %q", c.in, got, c.want)
		}
		if !validPromName(promName(c.in)) {
			t.Errorf("promName(%q) not valid", c.in)
		}
	}
}

func TestWritePromRoundTrip(t *testing.T) {
	s := NewSink()
	s.Counter("recv.nacks_sent").Add(7)
	s.Counter("recv.nacks_to_primary").Add(2)
	s.Gauge("primary.quorum.depth").Set(-3)
	h := s.Histogram("recv.recovery_ms", []uint64{1, 5, 10})
	h.Observe(3)
	h.Observe(7)
	h.Observe(400)

	var buf bytes.Buffer
	if err := WriteProm(&buf, s.Registry().Snapshot(), map[string]string{"target": `a"b\c` + "\nd"}); err != nil {
		t.Fatalf("WriteProm: %v", err)
	}
	out := buf.String()
	fams, err := ParseProm(strings.NewReader(out))
	if err != nil {
		t.Fatalf("ParseProm: %v\n%s", err, out)
	}
	byName := map[string]PromFamily{}
	for _, f := range fams {
		byName[f.Name] = f
	}

	lbl := `{target="a\"b\\c\nd"}`
	c := byName["recv_nacks_sent_total"]
	if c.Type != "counter" || c.Samples["recv_nacks_sent_total"+lbl] != 7 {
		t.Fatalf("counter family wrong: %+v", c)
	}
	g := byName["primary_quorum_depth"]
	if g.Type != "gauge" || g.Samples["primary_quorum_depth"+lbl] != -3 {
		t.Fatalf("gauge family wrong: %+v", g)
	}
	hf := byName["recv_recovery_ms"]
	if hf.Type != "histogram" {
		t.Fatalf("histogram family wrong: %+v", hf)
	}
	// Cumulative buckets: ≤1:0, ≤5:1, ≤10:2, +Inf:3; the le label leads.
	wantBuckets := map[string]float64{
		`recv_recovery_ms_bucket{le="1",target="a\"b\\c\nd"}`:    0,
		`recv_recovery_ms_bucket{le="5",target="a\"b\\c\nd"}`:    1,
		`recv_recovery_ms_bucket{le="10",target="a\"b\\c\nd"}`:   2,
		`recv_recovery_ms_bucket{le="+Inf",target="a\"b\\c\nd"}`: 3,
		"recv_recovery_ms_sum" + lbl:                             410,
		"recv_recovery_ms_count" + lbl:                           3,
	}
	for k, want := range wantBuckets {
		if got, ok := hf.Samples[k]; !ok || got != want {
			t.Errorf("histogram sample %s = %v (present=%v), want %v\n%s", k, got, ok, want, out)
		}
	}
}

func TestWritePromCollisionDedup(t *testing.T) {
	s := NewSink()
	s.Counter("x.y").Inc()
	s.Counter("x:y").Inc() // distinct internal names — ':' survives, '.' does not
	s.Counter("x_y").Inc() // sanitizes equal to "x.y"
	var buf bytes.Buffer
	if err := WriteProm(&buf, s.Registry().Snapshot(), nil); err != nil {
		t.Fatalf("WriteProm: %v", err)
	}
	out := buf.String()
	if _, err := ParseProm(strings.NewReader(out)); err != nil {
		t.Fatalf("ParseProm: %v\n%s", err, out)
	}
	// Sorted internal order: "x.y" < "x:y" < "x_y"; x.y and x_y collide.
	for _, want := range []string{"x_y_total ", "x_y_total_dup1 ", "x:y_total "} {
		if !strings.Contains(out, "\n"+want) {
			t.Errorf("missing %q in output:\n%s", want, out)
		}
	}
}

func TestParsePromRejectsMalformed(t *testing.T) {
	bad := []string{
		"metric_without_type 3\n",
		"# TYPE m counter\nm{unterminated=\"v 3\n",
		"# TYPE m counter\nm notanumber\n",
		"# TYPE m counter\nm 3\nm 4\n",                                                   // duplicate sample
		"# TYPE m counter\n# TYPE m gauge\nm 1\n",                                        // duplicate TYPE
		"# TYPE m counter\nm -1\n",                                                       // negative counter
		"# TYPE m histogram\nm_bucket{le=\"1\"} 1\nm_bucket{le=\"+Inf\"} 2\nm_count 3\n", // Inf != count
		"# TYPE m histogram\nm_bucket{le=\"5\"} 2\n",                                     // no +Inf
		"# TYPE 0bad counter\n0bad 1\n",
	}
	for _, doc := range bad {
		if _, err := ParseProm(strings.NewReader(doc)); err == nil {
			t.Errorf("ParseProm accepted malformed doc:\n%s", doc)
		}
	}
	ok := "# HELP m fine\n# TYPE m gauge\nm{a=\"x\",b=\"y\"} -2 1700000000000\n"
	if _, err := ParseProm(strings.NewReader(ok)); err != nil {
		t.Errorf("ParseProm rejected valid doc: %v", err)
	}
}

// TestExpositionHTTP is the satellite table test: every exposition
// endpoint sets an explicit versioned Content-Type and refuses non-GET.
func TestExpositionHTTP(t *testing.T) {
	s := NewSink()
	s.Counter("recv.nacks_sent").Inc()
	cases := []struct {
		name     string
		h        http.Handler
		query    string
		wantType string
	}{
		{"golden-text", Handler(s), "", TextContentType},
		{"golden-json", Handler(s), "?format=json", JSONContentType},
		{"prom", PromHandler(s), "", PromContentType},
		{"runtime-text", RuntimeHandler(), "", TextContentType},
		{"runtime-json", RuntimeHandler(), "?format=json", JSONContentType},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			rec := httptest.NewRecorder()
			c.h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/"+c.query, nil))
			if rec.Code != http.StatusOK {
				t.Fatalf("GET status = %d", rec.Code)
			}
			if got := rec.Header().Get("Content-Type"); got != c.wantType {
				t.Fatalf("Content-Type = %q, want %q", got, c.wantType)
			}
			if rec.Body.Len() == 0 {
				t.Fatalf("empty body")
			}
			for _, method := range []string{http.MethodPost, http.MethodPut, http.MethodDelete} {
				rec := httptest.NewRecorder()
				c.h.ServeHTTP(rec, httptest.NewRequest(method, "/"+c.query, nil))
				if rec.Code != http.StatusMethodNotAllowed {
					t.Fatalf("%s status = %d, want 405", method, rec.Code)
				}
				if allow := rec.Header().Get("Allow"); !strings.Contains(allow, "GET") {
					t.Fatalf("%s Allow header = %q", method, allow)
				}
			}
			rec = httptest.NewRecorder()
			c.h.ServeHTTP(rec, httptest.NewRequest(http.MethodHead, "/"+c.query, nil))
			if rec.Code != http.StatusOK || rec.Body.Len() != 0 {
				t.Fatalf("HEAD status=%d bodyLen=%d, want 200 with empty body", rec.Code, rec.Body.Len())
			}
		})
	}
}

func TestRegistryGenAndVisit(t *testing.T) {
	r := NewRegistry()
	if r.Gen() != 0 {
		t.Fatalf("fresh registry gen = %d", r.Gen())
	}
	r.Counter("c").Inc()
	r.Gauge("g").Set(1)
	r.Histogram("h", []uint64{10}).Observe(5)
	if r.Gen() != 3 {
		t.Fatalf("gen after 3 registrations = %d", r.Gen())
	}
	r.Counter("c").Inc() // re-registration: no gen bump
	g := r.Gen()
	if g != 3 {
		t.Fatalf("gen bumped on idempotent registration: %d", g)
	}
	var names []string
	r.Visit(
		func(n string, c *Counter) { names = append(names, "c:"+n) },
		func(n string, g *Gauge) { names = append(names, "g:"+n) },
		func(n string, h *Histogram) {
			names = append(names, "h:"+n)
			if len(h.Bounds()) != 1 || h.Bounds()[0] != 10 {
				t.Errorf("Bounds = %v", h.Bounds())
			}
			if h.BucketCount(0) != 1 || h.BucketCount(1) != 0 || h.BucketCount(2) != 0 {
				t.Errorf("bucket counts: %d %d %d", h.BucketCount(0), h.BucketCount(1), h.BucketCount(2))
			}
			if h.Sum() != 5 {
				t.Errorf("Sum = %d", h.Sum())
			}
		})
	if len(names) != 3 {
		t.Fatalf("Visit saw %v", names)
	}
	var nilReg *Registry
	if nilReg.Gen() != 0 {
		t.Fatal("nil registry Gen")
	}
	nilReg.Visit(nil, nil, nil) // must not panic
}
