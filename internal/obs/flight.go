package obs

import (
	"encoding/json"
	"io"
	"sort"
	"strconv"
	"time"

	"lbrm/internal/wire"
)

// This file is the flight-recorder read side (DESIGN.md §10): it stitches
// the per-sequence recovery events that components emitted into their
// flight rings (Sink.EmitFlight) into causal chains, folds per-path
// latency breakdowns into a registry, and renders the periodic fleet
// timeline as a JSONL flight log. Like the rest of the exposition layer
// it allocates freely — stitching never runs on the datapath.

// NackTierFetch is the offset a logger adds to the target's global tier in
// the B argument of its upward-fetch KindNackSend events, so stitchers can
// tell a logger fetch (B ≥ NackTierFetch, tier = B−NackTierFetch) from a
// receiver NACK (B < NackTierFetch, B = escalation phase) without a
// separate event kind. Receiver phases stay far below it in any plausible
// chain depth.
const NackTierFetch = 64

// FlightChain is the reconstructed recovery lifecycle of one lost packet:
// detect → nack* → serve → deliver (or abandon). Absent hops are zero.
type FlightChain struct {
	// Seq is the data sequence number the chain describes.
	Seq uint64
	// Path is the recovery path of the delivering repair (PathNone when
	// the chain ended in abandon or has no terminal yet).
	Path wire.RecoveryPath
	// Terminal is KindDeliver or KindAbandon (KindNone when the chain is
	// still open).
	Terminal Kind
	// AbandonReason is the abandon terminal's B argument (0 escalation
	// exhausted, 1 recovery-window skip); meaningful only for abandons.
	AbandonReason uint64
	// DetectAt/NackAt/ServeAt/TerminalAt are hop timestamps in ns:
	// first detection, first NACK covering the seq, the serve that
	// plausibly produced the delivered repair (latest matching-path serve
	// at or before the terminal), and the terminal itself.
	DetectAt, NackAt, ServeAt, TerminalAt int64
	// DeliverLatency is the deliver terminal's own detect→deliver
	// measurement (its C argument, ns); 0 when the repair arrived before
	// the loss was detected.
	DeliverLatency time.Duration
	// HeartbeatRevealed records whether the first detection came from a
	// heartbeat (idle gap) rather than a higher data seq.
	HeartbeatRevealed bool
	// DetectCount/NackCount/ServeCount/TerminalCount tally the chain's
	// events: detections, NACK sends (receiver and logger upward
	// fetches), repairs served, and terminals (exactly 1 in a well-formed
	// chain).
	DetectCount, NackCount, ServeCount, TerminalCount int
	// ServeTier is the highest logger tier the recovery escalated to: the
	// maximum tier stamped on any of the chain's NACK events (receiver
	// NACKs carry the escalation phase, logger fetches NackTierFetch +
	// target tier). 0 means the site secondary answered without
	// escalation (or no NACK evidence was captured).
	ServeTier int
	// QuorumAt is when a quorum-mode primary saw the seq become
	// quorum-durable (ring token return covering it), in ns; 0 when the
	// run had no quorum replication or the event fell out of the ring. It
	// annotates the chain with replication latency but is not part of the
	// causal detect→nack→serve→terminal order.
	QuorumAt int64
	// QuorumRTT is that token's ring round-trip time (the KindQuorum C
	// argument); 0 when unknown.
	QuorumRTT time.Duration
	// Events is the chain's full event list, causally ordered.
	Events []Event
}

// causalRank breaks At ties so a same-tick chain still sorts in causal
// order: detection precedes the NACK it triggers, which precedes the serve
// it triggers, which precedes the delivery.
func causalRank(k Kind) int {
	switch k {
	case KindGapDetect:
		return 0
	case KindNackSend, KindStatMiss:
		return 1
	case KindServe:
		return 2
	case KindDeliver, KindAbandon:
		return 3
	}
	return 4
}

// flightKind reports whether k belongs to the flight-recorder schema.
func flightKind(k Kind) bool { return causalRank(k) < 4 }

// StitchFlights merges flight-ring snapshots into per-sequence chains. The
// first argument is the observing receiver's ring (detections, NACKs and
// terminals are read from it); the rest are server-side rings (secondary,
// primary, sender) contributing serve and stat-miss evidence. Events of
// non-flight kinds are ignored.
func StitchFlights(receiver []Event, servers ...[]Event) map[uint64]*FlightChain {
	chains := make(map[uint64]*FlightChain)
	chain := func(seq uint64) *FlightChain {
		c := chains[seq]
		if c == nil {
			c = &FlightChain{Seq: seq}
			chains[seq] = c
		}
		return c
	}
	for _, ev := range receiver {
		if !flightKind(ev.Kind) {
			continue
		}
		c := chain(ev.A)
		c.Events = append(c.Events, ev)
		switch ev.Kind {
		case KindGapDetect:
			c.DetectCount++
			if c.DetectAt == 0 || ev.At < c.DetectAt {
				c.DetectAt = ev.At
				c.HeartbeatRevealed = ev.B == 1
			}
		case KindNackSend:
			c.NackCount++
			if c.NackAt == 0 || ev.At < c.NackAt {
				c.NackAt = ev.At
			}
			c.noteTier(ev.B)
		case KindDeliver, KindAbandon:
			c.TerminalCount++
			if c.Terminal == KindNone || ev.At < c.TerminalAt {
				c.Terminal = ev.Kind
				c.TerminalAt = ev.At
				if ev.Kind == KindDeliver {
					c.Path = wire.RecoveryPath(ev.B)
					c.DeliverLatency = time.Duration(ev.C)
				} else {
					c.Path = wire.PathNone
					c.AbandonReason = ev.B
				}
			}
		}
	}
	for _, ring := range servers {
		for _, ev := range ring {
			if ev.Kind == KindQuorum {
				// Replication-hop annotation: record when the seq became
				// quorum-durable, without entering the causal event list
				// (the hop happens independently of the recovery path).
				if c := chains[ev.A]; c != nil && (c.QuorumAt == 0 || ev.At < c.QuorumAt) {
					c.QuorumAt = ev.At
					c.QuorumRTT = time.Duration(ev.C)
				}
				continue
			}
			if !flightKind(ev.Kind) {
				continue
			}
			c := chains[ev.A]
			if c == nil {
				continue // nobody we observe lost this seq
			}
			c.Events = append(c.Events, ev)
			switch ev.Kind {
			case KindServe:
				c.ServeCount++
			case KindNackSend:
				c.NackCount++
				c.noteTier(ev.B)
			}
		}
	}
	for _, c := range chains {
		sort.SliceStable(c.Events, func(i, j int) bool {
			if c.Events[i].At != c.Events[j].At {
				return c.Events[i].At < c.Events[j].At
			}
			return causalRank(c.Events[i].Kind) < causalRank(c.Events[j].Kind)
		})
		c.resolveServe()
	}
	return chains
}

// noteTier folds one NACK event's B argument into ServeTier: a logger
// fetch carries NackTierFetch + the target's tier, a receiver NACK carries
// the escalation phase directly.
func (c *FlightChain) noteTier(b uint64) {
	t := int(b)
	if t >= NackTierFetch {
		t -= NackTierFetch
	}
	if t > c.ServeTier {
		c.ServeTier = t
	}
}

// resolveServe picks the serve that plausibly produced the delivered
// repair: the latest serve on the terminal's path at or before the
// terminal (network delay means the serve strictly precedes the arrival).
// For abandons or still-open chains it takes the latest serve seen at all
// — evidence someone tried.
func (c *FlightChain) resolveServe() {
	c.ServeAt = 0
	for _, ev := range c.Events {
		if ev.Kind != KindServe {
			continue
		}
		if c.Terminal == KindDeliver {
			if wire.RecoveryPath(ev.B) != c.Path || ev.At > c.TerminalAt {
				continue
			}
		}
		if ev.At > c.ServeAt {
			c.ServeAt = ev.At
		}
	}
}

// Detected reports whether the loss was noticed before the repair arrived
// (a chain with no detection is a proactive repair: a site re-multicast
// answering a neighbour's NACK, or an inline heartbeat winning the race).
func (c *FlightChain) Detected() bool { return c.DetectAt != 0 }

// Complete reports whether the chain tells the whole story of the
// recovery: exactly one terminal; a detected abandon needs its detection;
// a detected delivery over a logger path (local or primary callback) needs
// the serve that produced the repair. The NACK hop is NOT required on a
// delivery: §2.2.2's aggregation means a receiver is often repaired by a
// serve a site sibling's NACK triggered, its own NACK suppressed — the
// serve evidence carries the story. The source path needs neither (an
// inline-data heartbeat or statistical re-multicast is sender-initiated
// and, for the heartbeat, emits no serve event by design).
func (c *FlightChain) Complete() bool {
	if c.TerminalCount != 1 {
		return false
	}
	if c.Terminal == KindAbandon {
		return c.Detected()
	}
	if !c.Detected() {
		return true // proactive repair: the terminal alone is the story
	}
	if c.Path == wire.PathLocal || c.Path == wire.PathPrimaryCallback {
		return c.ServeAt != 0
	}
	return true
}

// CausallyOrdered reports whether the present hop timestamps respect the
// recovery causality detect ≤ nack ≤ serve ≤ terminal.
func (c *FlightChain) CausallyOrdered() bool {
	last := int64(0)
	for _, at := range [...]int64{c.DetectAt, c.NackAt, c.ServeAt, c.TerminalAt} {
		if at == 0 {
			continue
		}
		if at < last {
			return false
		}
		last = at
	}
	return true
}

// hop returns the duration between two present timestamps.
func hop(from, to int64) (time.Duration, bool) {
	if from == 0 || to == 0 || to < from {
		return 0, false
	}
	return time.Duration(to - from), true
}

// DetectToNack is the loss-detection → first-NACK component.
func (c *FlightChain) DetectToNack() (time.Duration, bool) { return hop(c.DetectAt, c.NackAt) }

// NackToServe is the first-NACK → serving-repair component.
func (c *FlightChain) NackToServe() (time.Duration, bool) { return hop(c.NackAt, c.ServeAt) }

// ServeToDeliver is the serving-repair → delivery component.
func (c *FlightChain) ServeToDeliver() (time.Duration, bool) {
	if c.Terminal != KindDeliver {
		return 0, false
	}
	return hop(c.ServeAt, c.TerminalAt)
}

// DetectToDeliver is the end-to-end recovery latency of a detected
// delivery.
func (c *FlightChain) DetectToDeliver() (time.Duration, bool) {
	if c.Terminal != KindDeliver || !c.Detected() {
		return 0, false
	}
	return hop(c.DetectAt, c.TerminalAt)
}

// QuorumToServe is the quorum-durability → serving-repair component: how
// long after the seq was replicated the repair that recovered it was sent.
// Only meaningful on quorum-mode runs where the token return was captured.
func (c *FlightChain) QuorumToServe() (time.Duration, bool) {
	return hop(c.QuorumAt, c.ServeAt)
}

// flightBoundsMS buckets recovery-path latencies (same scale as the
// receiver's recovery histogram).
var flightBoundsMS = []uint64{1, 5, 10, 25, 50, 100, 250, 500, 1000, 2500}

// serveTierBounds buckets the escalation-depth histogram one tier per
// bucket up to the wire tier ceiling.
var serveTierBounds = []uint64{0, 1, 2, 3, 4, 5, 6, 7}

// ms converts a duration to whole milliseconds for histogram observation.
func ms(d time.Duration) uint64 { return uint64(d / time.Millisecond) }

// FoldFlightChains aggregates stitched chains into reg under the
// "flight." namespace: per-path end-to-end latency histograms
// (flight.recovery.local.rtt_ms, flight.recovery.primary_callback.rtt_ms,
// flight.recovery.multicast_retrans.delay_ms), per-hop component
// histograms, the escalation-depth histogram flight.recovery.serve_tier
// with lazy per-tier flight.recovery.tier<k>.deliver_ms breakdowns, and
// chain-outcome counters. Nil-safe on reg.
func FoldFlightChains(reg *Registry, chains map[uint64]*FlightChain) {
	total := reg.Counter("flight.chains")
	complete := reg.Counter("flight.chains.complete")
	abandoned := reg.Counter("flight.chains.abandoned")
	proactive := reg.Counter("flight.chains.proactive")
	detectToNack := reg.Histogram("flight.recovery.detect_to_nack_ms", flightBoundsMS)
	nackToServe := reg.Histogram("flight.recovery.nack_to_serve_ms", flightBoundsMS)
	serveToDeliver := reg.Histogram("flight.recovery.serve_to_deliver_ms", flightBoundsMS)
	serveTier := reg.Histogram("flight.recovery.serve_tier", serveTierBounds)
	// Deeper tiers register lazily on first delivery, but tier 0 — the
	// unescalated site recovery every run exercises — registers eagerly so
	// the flight-log schema is stable even when no tier-0 chain delivered.
	reg.Histogram("flight.recovery.tier0.deliver_ms", flightBoundsMS)
	var quorumToServe *Histogram // registered lazily: absent on non-quorum runs
	for _, c := range chains {
		total.Inc()
		if c.Complete() {
			complete.Inc()
		}
		if c.NackCount > 0 {
			serveTier.Observe(uint64(c.ServeTier))
		}
		switch {
		case c.Terminal == KindAbandon:
			abandoned.Inc()
		case c.Terminal == KindDeliver && !c.Detected():
			proactive.Inc()
		case c.Terminal == KindDeliver:
			reg.Counter("flight.chains." + c.Path.String()).Inc()
			reg.Histogram("flight.recovery."+c.Path.MetricName()+"_ms", flightBoundsMS).
				Observe(ms(c.DeliverLatency))
			if c.NackCount > 0 {
				reg.Histogram("flight.recovery.tier"+strconv.Itoa(c.ServeTier)+".deliver_ms", flightBoundsMS).
					Observe(ms(c.DeliverLatency))
			}
		}
		if d, ok := c.DetectToNack(); ok {
			detectToNack.Observe(ms(d))
		}
		if d, ok := c.NackToServe(); ok {
			nackToServe.Observe(ms(d))
		}
		if d, ok := c.ServeToDeliver(); ok {
			serveToDeliver.Observe(ms(d))
		}
		if d, ok := c.QuorumToServe(); ok {
			if quorumToServe == nil {
				quorumToServe = reg.Histogram("flight.recovery.quorum_to_serve_ms", flightBoundsMS)
			}
			quorumToServe.Observe(ms(d))
		}
	}
}

// FlightSample is one fleet-timeline sample: the merged metrics registry
// of every node at one instant. A sequence of samples is the JSONL flight
// log (`lbrm-sim -flight-log`, `make flight`).
type FlightSample struct {
	// At is the sample time in nanoseconds on the fleet's clock.
	At int64 `json:"at_ns"`
	// Metrics is the merged fleet snapshot at that instant.
	Metrics Snapshot `json:"metrics"`
}

// WriteFlightLog renders samples as JSONL: one compact JSON object per
// line, in sample order.
func WriteFlightLog(w io.Writer, samples []FlightSample) error {
	enc := json.NewEncoder(w)
	for i := range samples {
		if err := enc.Encode(&samples[i]); err != nil {
			return err
		}
	}
	return nil
}
