package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
)

// Dump is the full exposition payload: a registry snapshot plus the
// retained trace window. It is the JSON wire format (expvar-style: one
// flat document, stable field names).
type Dump struct {
	Counters   map[string]uint64            `json:"counters"`
	Gauges     map[string]int64             `json:"gauges"`
	Histograms map[string]HistogramSnapshot `json:"histograms"`
	Trace      []Event                      `json:"trace"`
	Flight     []Event                      `json:"flight"`
}

// DumpOf captures a sink's current state. Nil-safe (empty dump).
func DumpOf(s *Sink) Dump {
	snap := s.Registry().Snapshot()
	return Dump{
		Counters:   snap.Counters,
		Gauges:     snap.Gauges,
		Histograms: snap.Histograms,
		Trace:      s.Ring().Snapshot(),
		Flight:     s.FlightRing().Snapshot(),
	}
}

// WriteJSON writes the dump as one indented JSON document.
func (d Dump) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(normalize(d))
}

// normalize replaces nil maps/slices so the JSON form always carries all
// four sections (decoders and the fuzz round-trip rely on that).
func normalize(d Dump) Dump {
	if d.Counters == nil {
		d.Counters = map[string]uint64{}
	}
	if d.Gauges == nil {
		d.Gauges = map[string]int64{}
	}
	if d.Histograms == nil {
		d.Histograms = map[string]HistogramSnapshot{}
	}
	if d.Trace == nil {
		d.Trace = []Event{}
	}
	if d.Flight == nil {
		d.Flight = []Event{}
	}
	return d
}

// WriteText writes the dump in a line-oriented human format: one metric
// per line, sorted by name; metric names are rendered with %q when they
// contain bytes that would break the line discipline.
func (d Dump) WriteText(w io.Writer) error {
	d = normalize(d)
	for _, name := range sortedKeys(d.Counters) {
		if _, err := fmt.Fprintf(w, "counter %s %d\n", textName(name), d.Counters[name]); err != nil {
			return err
		}
	}
	for _, name := range sortedKeys(d.Gauges) {
		if _, err := fmt.Fprintf(w, "gauge %s %d\n", textName(name), d.Gauges[name]); err != nil {
			return err
		}
	}
	for _, name := range sortedKeys(d.Histograms) {
		h := d.Histograms[name]
		if _, err := fmt.Fprintf(w, "hist %s total=%d sum=%d", textName(name), h.Total(), h.Sum); err != nil {
			return err
		}
		for i, c := range h.Counts {
			var err error
			if i < len(h.Bounds) {
				_, err = fmt.Fprintf(w, " le%d=%d", h.Bounds[i], c)
			} else {
				_, err = fmt.Fprintf(w, " inf=%d", c)
			}
			if err != nil {
				return err
			}
		}
		if _, err := io.WriteString(w, "\n"); err != nil {
			return err
		}
	}
	for _, ev := range d.Trace {
		if _, err := fmt.Fprintf(w, "trace %d at=%d %s a=%d b=%d c=%d\n",
			ev.Seq, ev.At, ev.Kind, ev.A, ev.B, ev.C); err != nil {
			return err
		}
	}
	for _, ev := range d.Flight {
		if _, err := fmt.Fprintf(w, "flight %d at=%d %s a=%d b=%d c=%d\n",
			ev.Seq, ev.At, ev.Kind, ev.A, ev.B, ev.C); err != nil {
			return err
		}
	}
	return nil
}

// textName renders a metric name for the text format, quoting any name
// that would break the one-metric-per-line discipline.
func textName(name string) string {
	for i := 0; i < len(name); i++ {
		if b := name[i]; b <= ' ' || b == 0x7f {
			return fmt.Sprintf("%q", name)
		}
	}
	if name == "" {
		return `""`
	}
	return name
}

// Exposition content types. The golden text format carries an explicit
// version so scrapers can detect line-discipline changes; JSON is plain
// application/json.
const (
	// TextContentType labels the golden one-metric-per-line format.
	TextContentType = "text/plain; version=lbrm.1; charset=utf-8"
	// JSONContentType labels the Dump JSON document.
	JSONContentType = "application/json; charset=utf-8"
)

// serveDump is the shared exposition entry point: GET only (405 with an
// Allow header otherwise), explicit Content-Type on every response, text
// by default, JSON with ?format=json or an Accept: application/json
// header. The dump callback runs only for allowed methods.
func serveDump(w http.ResponseWriter, r *http.Request, dump func() Dump) {
	if r.Method != http.MethodGet && r.Method != http.MethodHead {
		w.Header().Set("Allow", "GET, HEAD")
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	d := dump()
	if r.URL.Query().Get("format") == "json" || r.Header.Get("Accept") == "application/json" {
		w.Header().Set("Content-Type", JSONContentType)
		if r.Method == http.MethodHead {
			return
		}
		_ = d.WriteJSON(w)
		return
	}
	w.Header().Set("Content-Type", TextContentType)
	if r.Method == http.MethodHead {
		return
	}
	_ = d.WriteText(w)
}

// Handler serves the sink over HTTP: text by default, JSON with
// ?format=json or an Accept: application/json header. Safe to serve while
// the instrumented components run — every read is atomic.
func Handler(s *Sink) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		serveDump(w, r, func() Dump { return DumpOf(s) })
	})
}
