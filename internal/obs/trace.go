package obs

import "sync/atomic"

// Kind labels one protocol transition in the trace ring.
type Kind uint32

// Trace event kinds. The A/B/C argument meanings are part of the
// observability contract (DESIGN.md §9).
const (
	// KindNone marks an empty slot.
	KindNone Kind = iota
	// KindFailoverStart: the sender began a failover round.
	// A = current epoch, B = round number.
	KindFailoverStart
	// KindFailoverDone: the sender promoted a replica.
	// A = new epoch, B = promoted log floor (best replica seq).
	KindFailoverDone
	// KindEpochBump: a component observed a higher primary epoch.
	// A = old epoch, B = new epoch.
	KindEpochBump
	// KindFenceHit: an authority-bearing message was fenced as stale.
	// A = local epoch, B = the message's (lower) epoch, C = packet type.
	KindFenceHit
	// KindPromote: a logging server assumed primary authority.
	// A = epoch, B = log floor at promotion.
	KindPromote
	// KindDemote: an acting primary stepped down to replica.
	// A = its epoch, B = the newer epoch that demoted it.
	KindDemote
	// KindSkipAhead: a receiver or logger skipped unrecoverable history.
	// A = old next-expected seq, B = new next-expected seq.
	KindSkipAhead
	// KindAdvance: a primary recorded a skip/advance watermark.
	// A = advance-through seq.
	KindAdvance
	// KindDASet: the sender multicast an Acker Selection Packet.
	// A = selection seq, B = advertised pAck in ppm, C = estimated N_sl.
	KindDASet

	// Flight-recorder kinds: the causal recovery trace of one lost packet
	// (DESIGN.md §10). A always carries the data sequence number; these go
	// to the sink's flight ring, not the transition ring above.

	// KindGapDetect: a receiver or secondary noticed the seq missing.
	// A = seq, B = 1 when a heartbeat revealed the loss (idle gap), 0 when
	// a higher data seq did.
	KindGapDetect
	// KindNackSend: the seq was covered by an outgoing NACK.
	// A = seq, B = the addressee's position in the escalation chain: for a
	// receiver NACK, the escalation phase (0..len(chain)-1 = logger tiers,
	// len = primary, len+1 = source query); for a logger's upward fetch,
	// NackTierFetch + the target's global tier. C = retry count before this
	// send.
	KindNackSend
	// KindServe: a repair carrying the seq was sent.
	// A = seq, B = recovery path (wire.RecoveryPath), C = 1 for multicast,
	// 0 for unicast.
	KindServe
	// KindStatMiss: the sender's t_wait deadline found missing statistical
	// ACKs for the seq. A = seq, B = missing ACKs, C = expected ACKs.
	KindStatMiss
	// KindDeliver: terminal — a repair for the seq reached the application.
	// A = seq, B = recovery path (wire.RecoveryPath), C = detect→deliver
	// latency in nanoseconds (0 when the repair arrived before the loss was
	// detected: proactive site remulticast or inline heartbeat).
	KindDeliver
	// KindAbandon: terminal — recovery of the seq was given up.
	// A = seq, B = 0 when escalation was exhausted, 1 on a recovery-window
	// skip-ahead.
	KindAbandon
	// KindQuorum: a quorum-mode primary saw a ring token return for the
	// seq, i.e. the replication hop of the recovery chain completed.
	// A = seq, B = the post-return quorum watermark, C = ring RTT in
	// nanoseconds (0 when the launch time was no longer buffered). Goes to
	// the flight ring so stitched chains expose replication latency.
	KindQuorum
	// KindRingRepair: a quorum-mode primary changed ring state.
	// A = 0 stall→direct fallback, 1 repair probe launched, 2 ring
	// restored; B = ring version, C = ring size. Transition ring.
	KindRingRepair
	// KindRehome: a logger-tree child exhausted its retries against its
	// current parent and re-homed to a sibling or the next tier up.
	// A = the new parent's tier, B = the abandoned parent's tier, C = the
	// candidate slot adopted. Transition ring.
	KindRehome
	// KindReparent: a child followed (or fenced) a TypeReparent
	// announcement. A = the announcer's tier, B = the announced tree
	// epoch, C = 1 when adopted, 0 when fenced as stale. Transition ring.
	KindReparent
	// KindAlertRaise: the health engine raised an alert (DESIGN.md §15).
	// A = rule id (health.Rule), B = the entity index the alert fired on,
	// C = observed value scaled per rule (rate in milli-units, latency in
	// nanoseconds). Transition ring.
	KindAlertRaise
	// KindAlertClear: a previously raised alert dropped back under its
	// threshold. A = rule id, B = entity index, C = the alert's lifetime
	// in nanoseconds. Transition ring.
	KindAlertClear
	kindMax // sentinel, keep last
)

var kindNames = [...]string{
	KindNone:          "none",
	KindFailoverStart: "failover-start",
	KindFailoverDone:  "failover-done",
	KindEpochBump:     "epoch-bump",
	KindFenceHit:      "fence-hit",
	KindPromote:       "promote",
	KindDemote:        "demote",
	KindSkipAhead:     "skip-ahead",
	KindAdvance:       "advance",
	KindDASet:         "da-set",
	KindGapDetect:     "gap-detect",
	KindNackSend:      "nack-send",
	KindServe:         "serve",
	KindStatMiss:      "stat-miss",
	KindDeliver:       "deliver",
	KindAbandon:       "abandon",
	KindQuorum:        "quorum",
	KindRingRepair:    "ring-repair",
	KindRehome:        "rehome",
	KindReparent:      "reparent",
	KindAlertRaise:    "alert-raise",
	KindAlertClear:    "alert-clear",
}

// String returns the stable lowercase name of the kind.
func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return "unknown"
}

// Event is one decoded trace entry.
type Event struct {
	// Seq is the global 1-based emission sequence number.
	Seq uint64 `json:"seq"`
	// At is the emission time in nanoseconds (virtual or wall clock,
	// whichever the component runs on).
	At int64 `json:"at"`
	// Kind is the transition type.
	Kind Kind `json:"kind"`
	// A, B, C are kind-specific arguments.
	A uint64 `json:"a"`
	B uint64 `json:"b"`
	C uint64 `json:"c"`
}

// slot is one ring entry. Every field is accessed atomically so concurrent
// Emit/Snapshot are race-detector clean; the seq stamp is the seqlock:
// cleared to 0 before the payload is written, set to the event's sequence
// after, so a reader accepts a slot only when the stamp brackets a
// consistent payload.
type slot struct {
	seq  atomic.Uint64
	at   atomic.Int64
	kind atomic.Uint32
	a    atomic.Uint64
	b    atomic.Uint64
	c    atomic.Uint64
}

// Ring is a fixed-capacity, allocation-free trace buffer. Writers never
// block and never allocate; the newest events overwrite the oldest. A
// reader that races a wrapping writer detects the torn slot by its seq
// stamp and skips it.
type Ring struct {
	mask  uint64
	slots []slot
	head  atomic.Uint64 // total events ever emitted
}

// NewRing returns a ring holding the most recent `size` events (rounded up
// to a power of two, minimum 8).
func NewRing(size int) *Ring {
	n := 8
	for n < size {
		n <<= 1
	}
	return &Ring{mask: uint64(n - 1), slots: make([]slot, n)}
}

// Emit appends one event. Nil-safe, wait-free, zero-allocation.
func (r *Ring) Emit(at int64, kind Kind, a, b, c uint64) {
	if r == nil {
		return
	}
	seq := r.head.Add(1)
	s := &r.slots[(seq-1)&r.mask]
	s.seq.Store(0) // open the seqlock: readers reject the slot
	s.at.Store(at)
	s.kind.Store(uint32(kind))
	s.a.Store(a)
	s.b.Store(b)
	s.c.Store(c)
	s.seq.Store(seq) // publish
}

// Len returns the total number of events ever emitted (not the retained
// window). Nil-safe.
func (r *Ring) Len() uint64 {
	if r == nil {
		return 0
	}
	return r.head.Load()
}

// Snapshot decodes the retained window, oldest first. Slots torn by a
// concurrent wrapping writer are skipped. Nil-safe (returns nil).
func (r *Ring) Snapshot() []Event {
	if r == nil {
		return nil
	}
	head := r.head.Load()
	n := uint64(len(r.slots))
	first := uint64(1)
	if head > n {
		first = head - n + 1
	}
	out := make([]Event, 0, head-first+1)
	for seq := first; seq <= head; seq++ {
		s := &r.slots[(seq-1)&r.mask]
		if s.seq.Load() != seq {
			continue // not yet published, or already overwritten
		}
		ev := Event{
			Seq:  seq,
			At:   s.at.Load(),
			Kind: Kind(s.kind.Load()),
			A:    s.a.Load(),
			B:    s.b.Load(),
			C:    s.c.Load(),
		}
		if s.seq.Load() != seq {
			continue // torn by a wrapping writer mid-read
		}
		out = append(out, ev)
	}
	return out
}
