// Package health is the SLO engine of the observability control plane
// (DESIGN.md §15): it evaluates rules over series.Sampler windows and
// turns sustained degradation into alerts — health.* gauges, alert trace
// events, and a queryable active/history list.
//
// The rules encode the paper's operational failure modes:
//
//   - Crying baby (§6): one site whose NACK rate is both absolutely high
//     and a multiple of the fleet median, sustained across evaluations.
//     Sustain uses estimator.Hotlist — the same decayed-activity device
//     the paper's Designated-Acker selection uses to ignore faulty
//     ackers — so one noisy window does not page anyone.
//   - Recovery-latency SLO: the windowed p99 of the recovery-latency
//     histograms against a budget derived from the paper's one-RTT
//     recovery claim.
//   - NACK storm: the fleet-wide NACK rate, the implosion the paper's
//     suppression exists to prevent.
//   - Ring stall: quorum replication losing its ring (stall deltas on
//     the primary), the burn-rate precursor to unacked-durability debt.
//
// The engine is clock-agnostic: Eval takes explicit nanoseconds, so
// chaos drives it on virtual time and daemons on the wall clock. The
// documented detection-latency bound is Window + Sustain×(eval cadence):
// a fault visible in the rate signal is flagged within one full window
// plus the sustain run (chaos invariant 12 enforces it).
package health

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"lbrm/internal/estimator"
	"lbrm/internal/obs"
	"lbrm/internal/obs/series"
)

// Rule identifies one detector. The numeric values ride in trace events
// (KindAlertRaise A-arg) and are part of the observability contract.
type Rule uint32

const (
	// RuleCryingBaby: per-entity NACK rate high and a multiple of the
	// fleet median, sustained.
	RuleCryingBaby Rule = 1 + iota
	// RuleRecoverySLO: windowed recovery p99 over budget.
	RuleRecoverySLO
	// RuleNackStorm: fleet-wide NACK rate over threshold.
	RuleNackStorm
	// RuleRingStall: quorum ring stalls observed in the window.
	RuleRingStall
)

var ruleNames = map[Rule]string{
	RuleCryingBaby:  "crying-baby",
	RuleRecoverySLO: "recovery-slo",
	RuleNackStorm:   "nack-storm",
	RuleRingStall:   "ring-stall",
}

// String returns the stable rule name.
func (r Rule) String() string {
	if n, ok := ruleNames[r]; ok {
		return n
	}
	return fmt.Sprintf("rule-%d", uint32(r))
}

// gaugeName maps a rule to its active-count gauge in the output sink.
func (r Rule) gaugeName() string { return "health." + r.String() + ".active" }

// Config tunes the detectors. The zero value is unusable; use Defaults.
type Config struct {
	// Window is the series window every rule evaluates over.
	Window time.Duration
	// Sustain is how many (cadence-spaced) exceeding evaluations the
	// crying-baby rule needs before raising; enforced through a decayed
	// Hotlist score so isolated spikes wash out.
	Sustain int
	// EvalEvery is the expected evaluation cadence. It does not schedule
	// anything — the caller drives Eval — but it calibrates the sustain
	// decay and the documented detection bound.
	EvalEvery time.Duration

	// CryingBabyMinRate is the absolute NACKs/s floor below which a site
	// is never a crying baby (keeps tiny fleets from alerting on noise).
	CryingBabyMinRate float64
	// CryingBabyFactor is the multiple of the fleet median NACK rate a
	// site must exceed (the "one receiver drags the group" signature).
	CryingBabyFactor float64

	// RecoveryP99BudgetMS bounds the windowed recovery p99; the paper's
	// claim is one RTT, so the budget is a small multiple of the
	// simulated RTT.
	RecoveryP99BudgetMS float64
	// RecoveryMinObserved is the minimum in-window recovery count before
	// the SLO rule speaks (a single slow repair is not an SLO breach).
	RecoveryMinObserved int64

	// NackStormRate is the fleet-wide NACKs/s storm threshold.
	NackStormRate float64

	// NackCounters are the per-entity demand signals summed into the
	// NACK rate.
	NackCounters []string
	// RecoveryHists are the latency histograms the SLO rule reads.
	RecoveryHists []string
	// StallCounters are the ring-stall deltas the ring rule reads.
	StallCounters []string
}

// Defaults returns the tuning used by the chaos harness and the daemons.
func Defaults() Config {
	return Config{
		Window:              5 * time.Second,
		Sustain:             3,
		EvalEvery:           time.Second,
		CryingBabyMinRate:   2,
		CryingBabyFactor:    4,
		RecoveryP99BudgetMS: 250,
		RecoveryMinObserved: 5,
		NackStormRate:       60,
		NackCounters:        []string{"recv.nacks_sent", "secondary.nacks_from_clients"},
		RecoveryHists:       []string{"recv.recovery_ms"},
		StallCounters:       []string{"primary.quorum.ring_stalls"},
	}
}

// DetectionBound is the documented worst-case latency from a fault
// becoming visible in the series to the alert raising: one full window
// for the rate to reflect it, plus the sustain run.
func (c Config) DetectionBound() time.Duration {
	sustain := c.Sustain
	if sustain < 1 {
		sustain = 1
	}
	return c.Window + time.Duration(sustain)*c.EvalEvery
}

// Alert is one detector firing on one entity.
type Alert struct {
	Rule     Rule   `json:"rule"`
	RuleName string `json:"rule_name"`
	Entity   string `json:"entity"`
	// RaisedAt/ClearedAt are engine-clock nanoseconds; ClearedAt is 0
	// while the alert is active.
	RaisedAt  int64 `json:"raised_at"`
	ClearedAt int64 `json:"cleared_at"`
	// Value is the observed signal at raise time (rate in units/s,
	// latency in ms); Threshold is what it exceeded.
	Value     float64 `json:"value"`
	Threshold float64 `json:"threshold"`
}

type alertKey struct {
	rule   Rule
	entity string
}

// Engine evaluates the rule set over a fixed entity list. Not itself
// goroutine-safe for concurrent Evals (the caller owns the cadence), but
// accessors may race Eval.
type Engine struct {
	cfg Config
	out *obs.Sink

	mu       sync.Mutex
	entities []entity
	byName   map[string]int
	hot      *estimator.Hotlist[string]
	active   map[alertKey]*Alert
	history  []Alert
	evals    uint64
}

type entity struct {
	name     string
	samplers []*series.Sampler
	servers  bool
}

// NewEngine returns an engine reporting into out (nil for a silent
// engine — queries still work).
func NewEngine(cfg Config, out *obs.Sink) *Engine {
	if cfg.Window <= 0 {
		cfg.Window = Defaults().Window
	}
	if cfg.EvalEvery <= 0 {
		cfg.EvalEvery = Defaults().EvalEvery
	}
	if cfg.Sustain < 1 {
		cfg.Sustain = 1
	}
	// Half-life equal to the sustain run keeps the decayed score just
	// under the threshold for any burst shorter than Sustain evals:
	// Sustain consecutive records are needed to cross Sustain-0.5.
	hl := time.Duration(cfg.Sustain) * cfg.EvalEvery
	return &Engine{
		cfg:    cfg,
		out:    out,
		byName: make(map[string]int),
		hot:    estimator.NewHotlist[string](hl, float64(cfg.Sustain)-0.5),
		active: make(map[alertKey]*Alert),
	}
}

// Config returns the engine's effective (defaulted) tuning.
func (e *Engine) Config() Config { return e.cfg }

// AddEntity registers a named entity — typically one site — whose signal
// is the sum over its samplers. Server entities (the primary/replica
// side) additionally run the ring-stall rule.
func (e *Engine) AddEntity(name string, servers bool, samplers ...*series.Sampler) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if i, dup := e.byName[name]; dup {
		e.entities[i].samplers = append(e.entities[i].samplers, samplers...)
		return
	}
	e.byName[name] = len(e.entities)
	e.entities = append(e.entities, entity{name: name, samplers: samplers, servers: servers})
}

// Entities returns the registered entity names in registration order.
func (e *Engine) Entities() []string {
	e.mu.Lock()
	defer e.mu.Unlock()
	out := make([]string, len(e.entities))
	for i, ent := range e.entities {
		out[i] = ent.name
	}
	return out
}

// nackRate sums the entity's NACK demand counters, NaN-free: samplers
// without the metric contribute zero.
func (e *Engine) nackRate(ent *entity) float64 {
	var rate float64
	for _, s := range ent.samplers {
		for _, name := range e.cfg.NackCounters {
			if r, ok := s.Rate(name, e.cfg.Window); ok {
				rate += r
			}
		}
	}
	return rate
}

// Eval runs every rule once at nowNs and returns the currently active
// alerts (shared copies; do not mutate). The caller drives the cadence —
// vtime ticks in chaos, the wall sampler hook in daemons.
func (e *Engine) Eval(nowNs int64) []Alert {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.evals++
	now := time.Unix(0, nowNs)

	// Per-entity NACK rates and the fleet aggregate.
	rates := make([]float64, len(e.entities))
	var fleet float64
	for i := range e.entities {
		rates[i] = e.nackRate(&e.entities[i])
		fleet += rates[i]
	}
	med := median(rates)

	for i := range e.entities {
		ent := &e.entities[i]

		// Crying baby: absolute floor AND a multiple of the fleet
		// median, sustained via the decayed hotlist score.
		threshold := e.cfg.CryingBabyMinRate
		if m := med * e.cfg.CryingBabyFactor; m > threshold {
			threshold = m
		}
		exceeding := len(e.entities) > 1 && rates[i] > threshold
		if exceeding {
			e.hot.Record(ent.name, now)
		}
		sustained := exceeding && e.hot.Faulty(ent.name, now)
		e.setAlert(nowNs, RuleCryingBaby, uint64(i), ent.name, sustained, rates[i], threshold)

		// Recovery SLO: worst windowed p99 across the entity's samplers,
		// gated on a minimum observation count.
		var worst float64
		var observed int64
		for _, s := range ent.samplers {
			for _, name := range e.cfg.RecoveryHists {
				if d, ok := s.Delta(name, e.cfg.Window); ok {
					observed += d
				}
				if q, ok := s.Quantile(name, 0.99, e.cfg.Window); ok && q > worst {
					worst = q
				}
			}
		}
		breach := observed >= e.cfg.RecoveryMinObserved && worst > e.cfg.RecoveryP99BudgetMS
		e.setAlert(nowNs, RuleRecoverySLO, uint64(i), ent.name, breach, worst, e.cfg.RecoveryP99BudgetMS)

		// Ring stall: any stall delta in the window on a server entity.
		if ent.servers {
			var stalls int64
			for _, s := range ent.samplers {
				for _, name := range e.cfg.StallCounters {
					if d, ok := s.Delta(name, e.cfg.Window); ok {
						stalls += d
					}
				}
			}
			e.setAlert(nowNs, RuleRingStall, uint64(i), ent.name, stalls > 0, float64(stalls), 0)
		}
	}

	// NACK storm: fleet-wide, reported on the synthetic "fleet" entity.
	e.setAlert(nowNs, RuleNackStorm, uint64(len(e.entities)), "fleet",
		fleet > e.cfg.NackStormRate && e.cfg.NackStormRate > 0, fleet, e.cfg.NackStormRate)

	e.publishLocked()
	return e.activeLocked()
}

// setAlert reconciles one (rule, entity) pair against its current state,
// raising or clearing with trace events.
func (e *Engine) setAlert(nowNs int64, rule Rule, entityIdx uint64, entity string, firing bool, value, threshold float64) {
	key := alertKey{rule, entity}
	cur := e.active[key]
	switch {
	case firing && cur == nil:
		a := &Alert{
			Rule: rule, RuleName: rule.String(), Entity: entity,
			RaisedAt: nowNs, Value: value, Threshold: threshold,
		}
		e.active[key] = a
		e.out.Counter("health.alerts.raised").Inc()
		e.out.Emit(nowNs, obs.KindAlertRaise, uint64(rule), entityIdx, scaled(value))
	case !firing && cur != nil:
		cur.ClearedAt = nowNs
		e.history = append(e.history, *cur)
		delete(e.active, key)
		e.out.Counter("health.alerts.cleared").Inc()
		e.out.Emit(nowNs, obs.KindAlertClear, uint64(rule), entityIdx, uint64(nowNs-cur.RaisedAt))
	case firing:
		cur.Value = value // keep the live magnitude fresh
	}
}

// scaled renders a float signal into a trace arg (milli-units).
func scaled(v float64) uint64 {
	if v <= 0 {
		return 0
	}
	return uint64(v * 1000)
}

// publishLocked refreshes the health.* gauges in the output sink.
func (e *Engine) publishLocked() {
	e.out.Counter("health.evals").Inc()
	perRule := make(map[Rule]int64, 4)
	for key := range e.active {
		perRule[key.rule]++
	}
	for _, r := range []Rule{RuleCryingBaby, RuleRecoverySLO, RuleNackStorm, RuleRingStall} {
		e.out.Gauge(r.gaugeName()).Set(perRule[r])
	}
	e.out.Gauge("health.alerts.active").Set(int64(len(e.active)))
}

// Active returns the currently firing alerts, sorted by rule then
// entity. Safe to call concurrently with Eval.
func (e *Engine) Active() []Alert {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.activeLocked()
}

func (e *Engine) activeLocked() []Alert {
	out := make([]Alert, 0, len(e.active))
	for _, a := range e.active {
		out = append(out, *a)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Rule != out[j].Rule {
			return out[i].Rule < out[j].Rule
		}
		return out[i].Entity < out[j].Entity
	})
	return out
}

// History returns every alert that has been raised and cleared, in clear
// order, plus nothing about still-active ones (see Active).
func (e *Engine) History() []Alert {
	e.mu.Lock()
	defer e.mu.Unlock()
	return append([]Alert(nil), e.history...)
}

// Evals returns how many times Eval has run.
func (e *Engine) Evals() uint64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.evals
}

// median returns the middle value (lower-middle for even sizes) of xs
// without mutating it; 0 for an empty slice.
func median(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	cp := append([]float64(nil), xs...)
	sort.Float64s(cp)
	return cp[(len(cp)-1)/2]
}
