package health

import (
	"testing"
	"time"

	"lbrm/internal/obs"
	"lbrm/internal/obs/series"
)

const sec = int64(time.Second)

// fleet is a synthetic 4-site fleet driven on virtual time: each site
// has a registry, a sampler, and helpers to generate NACK/recovery load.
type fleet struct {
	regs     []*obs.Registry
	samplers []*series.Sampler
	eng      *Engine
	out      *obs.Sink
	now      int64
}

func newFleet(t *testing.T, sites int, cfg Config) *fleet {
	t.Helper()
	f := &fleet{out: obs.NewSink()}
	f.eng = NewEngine(cfg, f.out)
	for i := 0; i < sites; i++ {
		reg := obs.NewRegistry()
		reg.Counter("recv.nacks_sent")
		reg.Histogram("recv.recovery_ms", []uint64{1, 5, 10, 25, 50, 100, 250, 500, 1000})
		s := series.NewSampler(reg, 64)
		f.regs = append(f.regs, reg)
		f.samplers = append(f.samplers, s)
		f.eng.AddEntity(site(i), false, s)
	}
	return f
}

func site(i int) string { return string(rune('a'+i)) + "-site" }

// tick advances one second of virtual time: sites record their load,
// samplers sample, the engine evaluates.
func (f *fleet) tick(load func(site int, reg *obs.Registry)) []Alert {
	f.now += sec
	for i, reg := range f.regs {
		if load != nil {
			load(i, reg)
		}
		f.samplers[i].Sample(f.now)
	}
	return f.eng.Eval(f.now)
}

func rulesOf(alerts []Alert) map[Rule][]string {
	m := map[Rule][]string{}
	for _, a := range alerts {
		m[a.Rule] = append(m[a.Rule], a.Entity)
	}
	return m
}

func TestCryingBabyDetectedWithinBound(t *testing.T) {
	cfg := Defaults()
	f := newFleet(t, 4, cfg)

	// Healthy warmup: everyone NACKs a little.
	for i := 0; i < 8; i++ {
		f.tick(func(site int, reg *obs.Registry) {
			reg.Counter("recv.nacks_sent").Inc()
		})
	}
	if a := f.eng.Active(); len(a) != 0 {
		t.Fatalf("alerts on healthy fleet: %+v", a)
	}

	// Site 2 becomes the crying baby: 30 NACKs/s vs 1/s elsewhere.
	faultAt := f.now
	var raised *Alert
	bound := cfg.DetectionBound()
	for i := 0; i < 20 && raised == nil; i++ {
		alerts := f.tick(func(site int, reg *obs.Registry) {
			n := uint64(1)
			if site == 2 {
				n = 30
			}
			reg.Counter("recv.nacks_sent").Add(n)
		})
		for j := range alerts {
			if alerts[j].Rule == RuleCryingBaby {
				raised = &alerts[j]
			}
		}
	}
	if raised == nil {
		t.Fatal("crying baby never detected")
	}
	if raised.Entity != site(2) {
		t.Fatalf("wrong entity flagged: %q", raised.Entity)
	}
	latency := time.Duration(raised.RaisedAt - faultAt)
	if latency > bound {
		t.Fatalf("detection latency %v exceeds documented bound %v", latency, bound)
	}
	if g := f.out.Gauge(RuleCryingBaby.gaugeName()).Value(); g != 1 {
		t.Fatalf("crying-baby active gauge = %d", g)
	}

	// Recovery: the baby quiets down; the alert must clear and land in
	// history with a lifetime.
	for i := 0; i < 20; i++ {
		f.tick(func(site int, reg *obs.Registry) {
			reg.Counter("recv.nacks_sent").Inc()
		})
	}
	if a := f.eng.Active(); len(a) != 0 {
		t.Fatalf("alert did not clear: %+v", a)
	}
	hist := f.eng.History()
	found := false
	for _, a := range hist {
		if a.Rule == RuleCryingBaby && a.Entity == site(2) && a.ClearedAt > a.RaisedAt {
			found = true
		}
	}
	if !found {
		t.Fatalf("cleared alert missing from history: %+v", hist)
	}
	// Trace events: one raise, one clear for the episode.
	var raises, clears int
	for _, ev := range f.out.Ring().Snapshot() {
		switch ev.Kind {
		case obs.KindAlertRaise:
			raises++
		case obs.KindAlertClear:
			clears++
		}
	}
	if raises == 0 || clears == 0 {
		t.Fatalf("trace events: %d raises, %d clears", raises, clears)
	}
}

func TestSustainSuppressesOneSpike(t *testing.T) {
	cfg := Defaults()
	f := newFleet(t, 4, cfg)
	for i := 0; i < 8; i++ {
		f.tick(func(site int, reg *obs.Registry) {
			reg.Counter("recv.nacks_sent").Inc()
		})
	}
	// A single 1s burst on site 0, then quiet: the sustain requirement
	// (Defaults: 3 evals) must keep the rule silent. The burst stays in
	// the 5s rate window for several evals, but the decayed score only
	// accrues while the rate exceeds — one eval of excess is not enough.
	alerts := f.tick(func(site int, reg *obs.Registry) {
		if site == 0 {
			reg.Counter("recv.nacks_sent").Add(100)
		}
	})
	if rs := rulesOf(alerts)[RuleCryingBaby]; len(rs) != 0 {
		t.Fatalf("single spike raised crying-baby immediately: %v", rs)
	}
	// Window math: a 100-NACK burst over a 5s window is 20/s — above
	// threshold for the next few evals too, so the sustain hotlist WILL
	// accumulate. That is by design: a spike big enough to dominate a
	// whole window for Sustain evals is a real problem. To assert pure
	// spike suppression, use a burst that leaves the window before the
	// sustain run completes: not expressible at this cadence — instead
	// assert the raise, if any, is not before Sustain evals.
	raisedAfter := 0
	for i := 0; i < 3; i++ {
		raisedAfter++
		alerts = f.tick(nil)
		if len(rulesOf(alerts)[RuleCryingBaby]) > 0 {
			break
		}
	}
	if len(rulesOf(alerts)[RuleCryingBaby]) > 0 && raisedAfter < cfg.Sustain-1 {
		t.Fatalf("crying-baby raised after %d evals, sustain=%d", raisedAfter+1, cfg.Sustain)
	}
}

func TestRecoverySLOBreach(t *testing.T) {
	cfg := Defaults()
	cfg.RecoveryP99BudgetMS = 100
	f := newFleet(t, 2, cfg)
	for i := 0; i < 3; i++ {
		f.tick(nil)
	}
	// Site 1's recoveries blow the budget; site 0 stays fast.
	var got []Alert
	for i := 0; i < 8; i++ {
		got = f.tick(func(site int, reg *obs.Registry) {
			h := reg.Histogram("recv.recovery_ms", nil)
			for k := 0; k < 10; k++ {
				if site == 1 {
					h.Observe(800)
				} else {
					h.Observe(3)
				}
			}
		})
		if len(rulesOf(got)[RuleRecoverySLO]) > 0 {
			break
		}
	}
	rs := rulesOf(got)[RuleRecoverySLO]
	if len(rs) != 1 || rs[0] != site(1) {
		t.Fatalf("SLO alerts = %v, want exactly [%s]", rs, site(1))
	}
}

func TestNackStormIsFleetWide(t *testing.T) {
	cfg := Defaults()
	cfg.NackStormRate = 20
	f := newFleet(t, 4, cfg)
	for i := 0; i < 3; i++ {
		f.tick(nil)
	}
	var got []Alert
	for i := 0; i < 8; i++ {
		// Every site NACKs hard: no single crying baby (uniform), but
		// the fleet aggregate storms.
		got = f.tick(func(site int, reg *obs.Registry) {
			reg.Counter("recv.nacks_sent").Add(10)
		})
		if len(rulesOf(got)[RuleNackStorm]) > 0 {
			break
		}
	}
	m := rulesOf(got)
	if len(m[RuleNackStorm]) != 1 || m[RuleNackStorm][0] != "fleet" {
		t.Fatalf("storm alerts = %v", m[RuleNackStorm])
	}
	if len(m[RuleCryingBaby]) != 0 {
		t.Fatalf("uniform storm misattributed to a crying baby: %v", m[RuleCryingBaby])
	}
}

func TestRingStallOnServerEntity(t *testing.T) {
	cfg := Defaults()
	f := newFleet(t, 2, cfg)
	// A server entity watching the primary's quorum counters.
	srvReg := obs.NewRegistry()
	srvReg.Counter("primary.quorum.ring_stalls")
	srv := series.NewSampler(srvReg, 64)
	f.eng.AddEntity("servers", true, srv)

	step := func(stalls uint64) []Alert {
		f.now += sec
		srvReg.Counter("primary.quorum.ring_stalls").Add(stalls)
		for i := range f.samplers {
			f.samplers[i].Sample(f.now)
		}
		srv.Sample(f.now)
		return f.eng.Eval(f.now)
	}
	for i := 0; i < 3; i++ {
		if got := rulesOf(step(0))[RuleRingStall]; len(got) != 0 {
			t.Fatalf("stall alert without stalls: %v", got)
		}
	}
	got := rulesOf(step(2))[RuleRingStall]
	if len(got) != 1 || got[0] != "servers" {
		t.Fatalf("stall alerts = %v", got)
	}
	// Stalls stop: once the delta window drains, the alert clears.
	cleared := false
	for i := 0; i < 10; i++ {
		if len(rulesOf(step(0))[RuleRingStall]) == 0 {
			cleared = true
			break
		}
	}
	if !cleared {
		t.Fatal("stall alert never cleared")
	}
}

func TestCleanFleetZeroAlerts(t *testing.T) {
	f := newFleet(t, 4, Defaults())
	for i := 0; i < 30; i++ {
		alerts := f.tick(func(site int, reg *obs.Registry) {
			// Healthy background: sparse NACKs, fast recoveries.
			if i%3 == site%3 {
				reg.Counter("recv.nacks_sent").Inc()
			}
			reg.Histogram("recv.recovery_ms", nil).Observe(uint64(2 + site))
		})
		if len(alerts) != 0 {
			t.Fatalf("tick %d: false positives: %+v", i, alerts)
		}
	}
	if f.out.Counter("health.alerts.raised").Value() != 0 {
		t.Fatal("raised counter nonzero on clean fleet")
	}
	if f.out.Counter("health.evals").Value() != 30 {
		t.Fatalf("evals counter = %d", f.out.Counter("health.evals").Value())
	}
}

func TestEngineDefaultsAndBound(t *testing.T) {
	e := NewEngine(Config{}, nil) // zero config gets defaulted, nil sink is silent
	e.AddEntity("x", false, series.NewSampler(obs.NewRegistry(), 8))
	e.AddEntity("x", false, series.NewSampler(obs.NewRegistry(), 8)) // merges
	if got := e.Entities(); len(got) != 1 || got[0] != "x" {
		t.Fatalf("Entities = %v", got)
	}
	if e.Eval(0) == nil {
		// a non-nil empty slice is fine; just must not panic with nil out
		t.Log("nil active slice")
	}
	cfg := Defaults()
	want := cfg.Window + time.Duration(cfg.Sustain)*cfg.EvalEvery
	if cfg.DetectionBound() != want {
		t.Fatalf("DetectionBound = %v, want %v", cfg.DetectionBound(), want)
	}
	if RuleCryingBaby.String() != "crying-baby" || Rule(99).String() != "rule-99" {
		t.Fatal("rule names")
	}
}
