package obs

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzPromExposition drives the Prometheus encoder with adversarial
// metric names, label values and samples: WriteProm must never panic,
// and its output must always satisfy ParseProm — the same line-discipline
// oracle the CI scrape smoke runs against live daemons. Parsing is the
// proof that escaping and name sanitization are total: any name the
// registry can hold yields a grammatical 0.0.4 document.
func FuzzPromExposition(f *testing.F) {
	f.Add("sender.tx.data.pkts", "site-a", uint64(45), int64(-3), uint64(7), uint64(500))
	f.Add("", "", uint64(0), int64(0), uint64(0), uint64(0))
	f.Add("9starts.with.digit", "quote\"back\\slash\nnewline", uint64(1<<63), int64(-1<<62), uint64(10), uint64(11))
	f.Add("unicode-Ωμε\x7f\x00{le=\"5\"}", "Ω", uint64(3), int64(5), uint64(100), uint64(1<<64-1))
	f.Add("a_total", "t", uint64(1), int64(2), uint64(3), uint64(4)) // collides with counter "a"'s _total
	f.Fuzz(func(t *testing.T, name, labelVal string, cv uint64, gv int64, h1, h2 uint64) {
		s := NewSink()
		s.Counter(name).Add(cv)
		s.Counter("a").Inc()
		s.Gauge(name).Set(gv) // same name as the counter: sanitized collision fodder
		s.Gauge("fixed.gauge").Set(gv)
		hist := s.Histogram(name+".h", []uint64{10, 100, 1000})
		hist.Observe(h1)
		hist.Observe(h2)

		for _, labels := range []map[string]string{nil, {"target": labelVal, name: labelVal}} {
			var buf bytes.Buffer
			if err := WriteProm(&buf, s.Registry().Snapshot(), labels); err != nil {
				t.Fatalf("WriteProm: %v", err)
			}
			fams, err := ParseProm(&buf)
			if err != nil {
				t.Fatalf("output failed its own parser: %v", err)
			}
			for _, fam := range fams {
				if !validPromName(fam.Name) {
					t.Fatalf("invalid family name %q", fam.Name)
				}
				if fam.Type == "counter" && !strings.HasSuffix(fam.Name, "_total") {
					t.Fatalf("counter %q missing _total suffix", fam.Name)
				}
			}
		}
	})
}
