package seqtrack

import (
	"math/rand"
	"testing"
	"testing/quick"

	"lbrm/internal/wire"
)

func TestZeroValueUsable(t *testing.T) {
	var tr Tracker
	if tr.Contacted() || tr.Contiguous() != 0 || tr.Highest() != 0 {
		t.Fatal("zero value not pristine")
	}
	if !tr.Mark(1) {
		t.Fatal("Mark(1) on zero value failed")
	}
	if tr.Contiguous() != 1 {
		t.Fatalf("Contiguous = %d", tr.Contiguous())
	}
}

func TestMarkRejectsZeroAndDuplicates(t *testing.T) {
	var tr Tracker
	if tr.Mark(0) {
		t.Fatal("Mark(0) accepted")
	}
	if !tr.Mark(3) || tr.Mark(3) {
		t.Fatal("duplicate handling wrong")
	}
}

func TestContiguityAdvancesThroughSparse(t *testing.T) {
	var tr Tracker
	for _, q := range []uint64{2, 4, 5} {
		tr.Mark(q)
	}
	if tr.Contiguous() != 0 || tr.Pending() != 3 {
		t.Fatalf("contig=%d pending=%d", tr.Contiguous(), tr.Pending())
	}
	tr.Mark(1)
	if tr.Contiguous() != 2 {
		t.Fatalf("contig = %d, want 2", tr.Contiguous())
	}
	tr.Mark(3)
	if tr.Contiguous() != 5 || tr.Pending() != 0 {
		t.Fatalf("contig=%d pending=%d, want 5,0", tr.Contiguous(), tr.Pending())
	}
}

func TestSetBaseOnlyOnFirstContact(t *testing.T) {
	var tr Tracker
	if !tr.SetBase(10) {
		t.Fatal("first SetBase rejected")
	}
	if tr.SetBase(20) {
		t.Fatal("second SetBase applied")
	}
	if tr.Base() != 10 || tr.Contiguous() != 10 {
		t.Fatalf("base=%d contig=%d", tr.Base(), tr.Contiguous())
	}
	// Below-base marks are rejected (already "seen" as skipped history).
	if tr.Mark(5) {
		t.Fatal("Mark below base accepted")
	}
	if !tr.Mark(11) || tr.Contiguous() != 11 {
		t.Fatal("post-base mark broken")
	}
	// Mark-then-SetBase: contact came from the mark.
	var tr2 Tracker
	tr2.Mark(3)
	if tr2.SetBase(7) {
		t.Fatal("SetBase applied after Mark contact")
	}
}

func TestMissingRangesAndCaps(t *testing.T) {
	var tr Tracker
	for _, q := range []uint64{1, 4, 5, 9} {
		tr.Mark(q)
	}
	got := tr.Missing(0, 0)
	want := []wire.SeqRange{{From: 2, To: 3}, {From: 6, To: 8}}
	if len(got) != 2 || got[0] != want[0] || got[1] != want[1] {
		t.Fatalf("Missing = %v, want %v", got, want)
	}
	if got := tr.Missing(12, 0); got[len(got)-1] != (wire.SeqRange{From: 10, To: 12}) {
		t.Fatalf("Missing(12) tail = %v", got)
	}
	if got := tr.Missing(0, 1); len(got) != 1 {
		t.Fatalf("cap ignored: %v", got)
	}
}

// Property: marking any permutation of (base, base+n] yields full
// contiguity, no pending state, and no missing ranges.
func TestPermutationProperty(t *testing.T) {
	f := func(seed int64, baseRaw uint16, nRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		base := uint64(baseRaw)
		n := int(nRaw%80) + 1
		var tr Tracker
		if base > 0 {
			tr.SetBase(base)
		}
		perm := rng.Perm(n)
		for _, i := range perm {
			if !tr.Mark(base + uint64(i) + 1) {
				return false
			}
		}
		return tr.Contiguous() == base+uint64(n) &&
			tr.Pending() == 0 &&
			len(tr.Missing(0, 0)) == 0 &&
			tr.Highest() == base+uint64(n)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: Missing exactly complements Seen over (Base, Highest].
func TestComplementProperty(t *testing.T) {
	f := func(raw []uint16, baseRaw uint8) bool {
		var tr Tracker
		base := uint64(baseRaw % 20)
		if base > 0 {
			tr.SetBase(base)
		}
		for _, q := range raw {
			tr.Mark(base + uint64(q%150) + 1)
		}
		missing := map[uint64]bool{}
		for _, r := range tr.Missing(0, 0) {
			for q := r.From; q <= r.To; q++ {
				missing[q] = true
			}
		}
		for q := base + 1; q <= tr.Highest(); q++ {
			if tr.Seen(q) == missing[q] {
				return false
			}
		}
		// Nothing below or at base is ever missing.
		for q := range missing {
			if q <= base {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: invariants hold under arbitrary interleavings: contig ≤
// highest, Seen(contig) true (when above base), ranges sorted and
// non-overlapping.
func TestInvariantProperty(t *testing.T) {
	f := func(ops []uint16) bool {
		var tr Tracker
		for _, op := range ops {
			seq := uint64(op%300) + 1
			if op%7 == 0 {
				tr.SetBase(seq)
			} else {
				tr.Mark(seq)
			}
			if tr.Contiguous() > tr.Highest() || tr.Base() > tr.Contiguous() {
				return false
			}
			prev := uint64(0)
			for _, r := range tr.Missing(0, 0) {
				if r.From <= prev || r.To < r.From {
					return false
				}
				prev = r.To
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestMissingIsCheapForHugeGaps(t *testing.T) {
	var tr Tracker
	tr.Mark(1)
	tr.Mark(1 << 60) // forged/hostile head
	// Must return instantly (O(pending)) with the capped range set.
	got := tr.Missing(0, 3)
	if len(got) != 1 || got[0].From != 2 || got[0].To != (1<<60)-1 {
		t.Fatalf("Missing = %v", got)
	}
}

func TestAdvanceSkipsHistory(t *testing.T) {
	var tr Tracker
	tr.Mark(1)
	tr.Mark(5)
	tr.Mark(100)
	tr.Advance(50)
	if tr.Contiguous() != 50 {
		t.Fatalf("Contiguous = %d, want 50", tr.Contiguous())
	}
	if !tr.Seen(30) || !tr.Seen(5) {
		t.Fatal("skipped seqs not Seen")
	}
	if tr.Pending() != 1 {
		t.Fatalf("Pending = %d, want 1 (seq 100)", tr.Pending())
	}
	// Advance through retained sparse marks compacts.
	tr.Advance(99)
	if tr.Contiguous() != 100 || tr.Pending() != 0 {
		t.Fatalf("contig=%d pending=%d, want 100,0", tr.Contiguous(), tr.Pending())
	}
	// No-op backwards.
	tr.Advance(10)
	if tr.Contiguous() != 100 {
		t.Fatal("backward Advance mutated state")
	}
}
