// Package seqtrack implements the sequence-number bookkeeping shared by
// every LBRM endpoint that watches a stream: the contiguity watermark, the
// sparse set of out-of-order arrivals, the late-join base (history a
// mid-stream joiner deliberately skips), and gap (missing-range)
// computation. The log store, the receiver, and the SRM baseline all track
// streams through this one type.
//
// Semantics: sequence numbers start at 1; 0 is never valid. The first
// Mark or SetBase establishes "contact"; SetBase after contact is a no-op,
// so a late joiner adopts the stream position exactly once.
package seqtrack

import (
	"slices"

	"lbrm/internal/wire"
)

// Tracker tracks one stream. The zero value is ready to use.
type Tracker struct {
	contacted bool
	base      uint64
	contig    uint64
	highest   uint64
	seen      map[uint64]bool
	// keyScratch is reused by AppendMissing so steady-state gap
	// computation (NACK build, heartbeat check) does not allocate.
	keyScratch []uint64
}

// Contacted reports whether the stream has been seen at all (any Mark or
// SetBase).
func (t *Tracker) Contacted() bool { return t.contacted }

// Base returns the late-join watermark: history ≤ Base is neither tracked
// nor reported missing.
func (t *Tracker) Base() uint64 { return t.base }

// Contiguous returns the highest c such that every sequence number in
// (Base, c] has been marked (Base when nothing has).
func (t *Tracker) Contiguous() uint64 { return t.contig }

// Highest returns the largest sequence number marked or implied (via
// SetBase).
func (t *Tracker) Highest() uint64 { return t.highest }

// SetBase declares history up to and including seq as deliberately
// skipped. It applies only on first contact and reports whether it did.
func (t *Tracker) SetBase(seq uint64) bool {
	if t.contacted {
		return false
	}
	t.contacted = true
	t.base = seq
	t.contig = seq
	t.highest = seq
	return true
}

// Mark records seq as seen. It returns false for 0, for duplicates, and
// for sequence numbers at or below the base watermark.
func (t *Tracker) Mark(seq uint64) bool {
	if seq == 0 || t.Seen(seq) {
		return false
	}
	t.contacted = true
	if seq > t.highest {
		t.highest = seq
	}
	if seq == t.contig+1 {
		t.contig++
		for t.seen[t.contig+1] {
			t.contig++
			delete(t.seen, t.contig)
		}
		return true
	}
	if t.seen == nil {
		t.seen = make(map[uint64]bool)
	}
	t.seen[seq] = true
	return true
}

// Seen reports whether seq has been marked (or skipped by the base).
func (t *Tracker) Seen(seq uint64) bool {
	return seq <= t.contig || t.seen[seq]
}

// Missing returns up to maxRanges ranges of unmarked sequence numbers in
// (Contiguous, hi]. hi of 0 means Highest(); maxRanges ≤ 0 means
// wire.MaxNackRanges. Cost is O(pending·log pending), independent of the
// width of the gaps — a forged sequence number cannot make this expensive.
func (t *Tracker) Missing(hi uint64, maxRanges int) []wire.SeqRange {
	return t.AppendMissing(nil, hi, maxRanges)
}

// AppendMissing appends the missing ranges to dst and returns the extended
// slice (see Missing for the range semantics). Callers on hot paths pass a
// reused dst (typically dst[:0]) to make gap computation allocation-free;
// the sort scratch is retained on the Tracker for the same reason.
func (t *Tracker) AppendMissing(dst []wire.SeqRange, hi uint64, maxRanges int) []wire.SeqRange {
	if hi == 0 {
		hi = t.highest
	}
	if maxRanges <= 0 {
		maxRanges = wire.MaxNackRanges
	}
	if hi <= t.contig {
		return dst
	}
	keys := t.keyScratch[:0]
	for q := range t.seen {
		if q > t.contig && q <= hi {
			keys = append(keys, q)
		}
	}
	t.keyScratch = keys
	slices.Sort(keys) // generic sort: no closure, no boxing, no alloc
	base := len(dst)
	next := t.contig + 1
	for _, k := range keys {
		if k > next {
			dst = append(dst, wire.SeqRange{From: next, To: k - 1})
			if len(dst)-base == maxRanges {
				return dst
			}
		}
		next = k + 1
	}
	if next <= hi {
		dst = append(dst, wire.SeqRange{From: next, To: hi})
	}
	return dst
}

// Advance force-skips history: every sequence number up to and including
// seq counts as seen (without having been delivered). Endpoints use it to
// bound how far behind they are willing to chase — receiver-reliable
// semantics prefer adopting the stream's current position over unbounded
// recovery, and it defuses forged sequence numbers.
func (t *Tracker) Advance(seq uint64) {
	if seq <= t.contig {
		return
	}
	t.contacted = true
	t.contig = seq
	if seq > t.highest {
		t.highest = seq
	}
	for q := range t.seen {
		if q <= seq {
			delete(t.seen, q)
		}
	}
	for t.seen[t.contig+1] {
		t.contig++
		delete(t.seen, t.contig)
	}
	if t.contig > t.highest {
		t.highest = t.contig
	}
}

// Pending returns the number of out-of-order sequence numbers held above
// the contiguity watermark (a memory gauge).
func (t *Tracker) Pending() int { return len(t.seen) }
