package estimator

import (
	"fmt"
	"math"
	"math/rand"
	"testing"
	"time"
)

// TestRTTConvergenceTable pins the Jacobson-style t_wait EWMA's convergence
// analytically: with a constant sample S inside the cap and no Min/Max
// clamping, the error after n observations is exactly (1−α)ⁿ·(t₀−S), and
// the estimate lands within tolerance of S in the predicted number of
// steps.
func TestRTTConvergenceTable(t *testing.T) {
	cases := []struct {
		name    string
		alpha   float64
		initial time.Duration
		sample  time.Duration
		steps   int
	}{
		{"paper-alpha-down", 1.0 / 8, 500 * time.Millisecond, 80 * time.Millisecond, 64},
		{"paper-alpha-up", 1.0 / 8, 100 * time.Millisecond, 180 * time.Millisecond, 64},
		{"fast-gain", 1.0 / 2, 400 * time.Millisecond, 50 * time.Millisecond, 16},
		{"slow-gain", 1.0 / 32, 300 * time.Millisecond, 250 * time.Millisecond, 256},
		{"alpha-one-jumps", 1, 500 * time.Millisecond, 90 * time.Millisecond, 1},
	}
	for _, c := range cases {
		c := c
		t.Run(c.name, func(t *testing.T) {
			r, err := NewRTT(RTTConfig{
				Alpha: c.alpha, Initial: c.initial,
				Min: time.Millisecond, Max: 30 * time.Second,
			})
			if err != nil {
				t.Fatal(err)
			}
			err0 := float64(c.initial - c.sample)
			for n := 1; n <= c.steps; n++ {
				// Samples above Cap (2×t_wait) would be clamped; every row
				// keeps the sample inside the cap so the recurrence is exact.
				if cap := r.Cap(); c.sample > cap {
					t.Fatalf("step %d: sample %v above cap %v, table row invalid", n, c.sample, cap)
				}
				r.Observe(c.sample)
				want := float64(c.sample) + math.Pow(1-c.alpha, float64(n))*err0
				if got := float64(r.TWait()); math.Abs(got-want) > 1e3 { // 1µs slack for Duration rounding
					t.Fatalf("step %d: t_wait %v, analytic %v", n, r.TWait(), time.Duration(want))
				}
			}
			final := r.TWait() - c.sample
			if final < 0 {
				final = -final
			}
			// After the tabulated steps the residual is (1−α)^steps of the
			// initial error — at most 0.1% for every row.
			if float64(final) > math.Abs(err0)*1e-3+1e3 {
				t.Fatalf("after %d steps residual %v (initial error %v)",
					c.steps, final, time.Duration(err0))
			}
		})
	}
}

// TestBolotProbeErrorBoundsTable runs the probing bootstrap against seeded
// binomial populations and requires the final estimate to land within
// 4·ProbeStdDev of the true size — the Table 2 error model, applied to the
// estimator that claims it.
func TestBolotProbeErrorBoundsTable(t *testing.T) {
	cases := []struct {
		n       int
		plan    ProbePlan
		maxStep int // escalation can't run away: rounds are bounded
	}{
		{100, ProbePlan{}, 12},
		{1000, ProbePlan{}, 12},
		{10000, ProbePlan{}, 12},
		{1000, ProbePlan{StartPAck: 1.0 / 64, Growth: 2, MinResponses: 20, Repeats: 5}, 16},
		{50, ProbePlan{StartPAck: 1.0 / 4, Growth: 4, MinResponses: 10, Repeats: 3}, 8},
	}
	for ci, c := range cases {
		c := c
		t.Run(fmt.Sprintf("n=%d/case=%d", c.n, ci), func(t *testing.T) {
			rng := rand.New(rand.NewSource(int64(0xB010 + ci)))
			p := NewProber(c.plan)
			var finalPAck float64
			rounds := 0
			for {
				pAck, ok := p.NextProbe()
				if !ok {
					break
				}
				finalPAck = pAck
				responses := 0
				for i := 0; i < c.n; i++ {
					if rng.Float64() < pAck {
						responses++
					}
				}
				p.ObserveRound(responses)
				if rounds++; rounds > c.maxStep {
					t.Fatalf("prober still running after %d rounds", rounds)
				}
			}
			if !p.Done() {
				t.Fatal("prober stopped yielding probes but is not Done")
			}
			repeats := c.plan.normalize().Repeats
			sigma := ProbeStdDev(float64(c.n), finalPAck, repeats)
			if math.IsNaN(sigma) {
				t.Fatalf("ProbeStdDev NaN for n=%d pAck=%v repeats=%d", c.n, finalPAck, repeats)
			}
			if err := math.Abs(p.Estimate() - float64(c.n)); err > 4*sigma+1 {
				t.Fatalf("estimate %.1f vs truth %d: |err| %.1f exceeds 4σ %.1f (pAck %v)",
					p.Estimate(), c.n, err, 4*sigma, finalPAck)
			}
		})
	}
}

// TestHotlistPruneTable covers the eviction edge cases: the strict floor
// comparison, active-vs-stale coexistence, the no-decay degenerate case,
// and reinsertion after eviction.
func TestHotlistPruneTable(t *testing.T) {
	t0 := time.Unix(1000, 0)
	halfLife := time.Second
	cases := []struct {
		name    string
		setup   func(h *Hotlist[int]) (pruneAt time.Time, floor float64)
		evicted int
		left    int
	}{
		{"empty", func(h *Hotlist[int]) (time.Time, float64) {
			return t0, 0.5
		}, 0, 0},
		{"non-positive-floor-keeps-all", func(h *Hotlist[int]) (time.Time, float64) {
			h.Record(1, t0)
			return t0.Add(100 * halfLife), 0
		}, 0, 1},
		{"exactly-at-floor-kept", func(h *Hotlist[int]) (time.Time, float64) {
			h.Record(1, t0) // score 1; after one half-life exactly 0.5
			return t0.Add(halfLife), 0.5
		}, 0, 1},
		{"below-floor-evicted", func(h *Hotlist[int]) (time.Time, float64) {
			h.Record(1, t0) // after two half-lives 0.25 < 0.3
			return t0.Add(2 * halfLife), 0.3
		}, 1, 0},
		{"stale-evicted-active-kept", func(h *Hotlist[int]) (time.Time, float64) {
			h.Record(1, t0)
			at := t0.Add(10 * halfLife)
			h.Record(2, at)
			return at, 0.5
		}, 1, 1},
		{"zero-halflife-never-decays", func(h *Hotlist[int]) (time.Time, float64) {
			h.HalfLife = 0
			h.Record(1, t0)
			return t0.Add(time.Hour), 0.5
		}, 0, 1},
		{"zero-halflife-floor-above-score", func(h *Hotlist[int]) (time.Time, float64) {
			h.HalfLife = 0
			h.Record(1, t0)
			return t0.Add(time.Hour), 1.5
		}, 1, 0},
	}
	for _, c := range cases {
		c := c
		t.Run(c.name, func(t *testing.T) {
			h := NewHotlist[int](halfLife, 3)
			at, floor := c.setup(h)
			if got := h.Prune(at, floor); got != c.evicted {
				t.Fatalf("Prune evicted %d, want %d", got, c.evicted)
			}
			if h.Len() != c.left {
				t.Fatalf("Len() = %d after prune, want %d", h.Len(), c.left)
			}
		})
	}
}

// TestHotlistPruneReinsert: an evicted ID is not blacklisted — a fresh
// Record starts it over at score 1.
func TestHotlistPruneReinsert(t *testing.T) {
	t0 := time.Unix(1000, 0)
	h := NewHotlist[string](time.Second, 3)
	h.Record("a", t0)
	at := t0.Add(10 * time.Second)
	if n := h.Prune(at, 0.5); n != 1 {
		t.Fatalf("Prune evicted %d, want 1", n)
	}
	h.Record("a", at)
	if got := h.Score("a", at); got != 1 {
		t.Fatalf("Score after reinsert = %v, want 1", got)
	}
}
