package estimator

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
	"time"
)

func TestGroupSizeConfigValidate(t *testing.T) {
	if err := DefaultGroupSizeConfig.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []GroupSizeConfig{
		{K: 0, Alpha: 0.1},
		{K: -1, Alpha: 0.1},
		{K: 5, Alpha: 0},
		{K: 5, Alpha: 1.5},
	}
	for _, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("Validate(%+v) accepted", c)
		}
	}
}

func TestGroupSizePAckBeforeEstimate(t *testing.T) {
	g, err := NewGroupSize(GroupSizeConfig{K: 20, Alpha: 0.125})
	if err != nil {
		t.Fatal(err)
	}
	if g.Known() {
		t.Fatal("Known() true before any observation")
	}
	if p := g.PAck(); p != 1 {
		t.Fatalf("PAck() = %v before estimate, want 1", p)
	}
}

func TestGroupSizeFirstObservationReplaces(t *testing.T) {
	g, _ := NewGroupSize(GroupSizeConfig{K: 20, Alpha: 0.125})
	g.Observe(10, 0.02) // 10/0.02 = 500
	if got := g.Estimate(); got != 500 {
		t.Fatalf("Estimate() = %v, want 500", got)
	}
	if p := g.PAck(); math.Abs(p-0.04) > 1e-9 {
		t.Fatalf("PAck() = %v, want 0.04", p)
	}
}

func TestGroupSizeEWMAFormula(t *testing.T) {
	g, _ := NewGroupSize(GroupSizeConfig{K: 20, Alpha: 0.125, Initial: 400})
	g.Observe(24, 0.05) // sample = 480; N' = 0.875*400 + 0.125*480 = 410
	if got := g.Estimate(); math.Abs(got-410) > 1e-9 {
		t.Fatalf("Estimate() = %v, want 410", got)
	}
}

func TestGroupSizeIgnoresInvalidObservations(t *testing.T) {
	g, _ := NewGroupSize(GroupSizeConfig{K: 20, Alpha: 0.125, Initial: 100})
	g.Observe(-1, 0.5)
	g.Observe(5, 0)
	g.Observe(5, 1.5)
	if g.Estimate() != 100 || g.Observations() != 0 {
		t.Fatalf("invalid observations mutated state: %v/%d", g.Estimate(), g.Observations())
	}
}

func TestGroupSizeConvergesToTruth(t *testing.T) {
	// Simulate loggers joining/acking: true population 500; binomial
	// responses at the advertised PAck each round.
	rng := rand.New(rand.NewSource(5))
	g, _ := NewGroupSize(GroupSizeConfig{K: 20, Alpha: 0.125, Initial: 50})
	const truth = 500
	for round := 0; round < 400; round++ {
		p := g.PAck()
		k := 0
		for i := 0; i < truth; i++ {
			if rng.Float64() < p {
				k++
			}
		}
		g.Observe(k, p)
	}
	if est := g.Estimate(); est < 400 || est > 600 {
		t.Fatalf("estimate %v after convergence, want ≈500", est)
	}
}

func TestGroupSizeTracksMembershipChange(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	g, _ := NewGroupSize(GroupSizeConfig{K: 20, Alpha: 0.125, Initial: 500})
	// Population drops to 100; estimator must follow.
	const truth = 100
	for round := 0; round < 200; round++ {
		p := g.PAck()
		k := 0
		for i := 0; i < truth; i++ {
			if rng.Float64() < p {
				k++
			}
		}
		g.Observe(k, p)
	}
	if est := g.Estimate(); est < 70 || est > 140 {
		t.Fatalf("estimate %v after shrink, want ≈100", est)
	}
}

func TestProbeStdDevTable2(t *testing.T) {
	// Table 2: σ_n = σ₁/√n.
	const n, p = 1000.0, 0.05
	s1 := ProbeStdDev(n, p, 1)
	want := []struct {
		probes int
		factor float64
	}{
		{1, 1.0}, {2, 0.707}, {3, 0.577}, {4, 0.5}, {5, 0.447},
	}
	for _, w := range want {
		got := ProbeStdDev(n, p, w.probes)
		if math.Abs(got/s1-w.factor) > 0.001 {
			t.Errorf("probes=%d: σ/σ₁ = %.3f, want %.3f", w.probes, got/s1, w.factor)
		}
	}
	if !math.IsNaN(ProbeStdDev(n, p, 0)) || !math.IsNaN(ProbeStdDev(n, 0, 1)) {
		t.Error("invalid args should yield NaN")
	}
}

func TestProbeStdDevMatchesMonteCarlo(t *testing.T) {
	// The analytic σ₁ = sqrt(N(1-p)/p) must match simulated probing.
	rng := rand.New(rand.NewSource(7))
	const truth = 1000
	const p = 0.02
	const trials = 3000
	var sum, sumSq float64
	for i := 0; i < trials; i++ {
		k := 0
		for j := 0; j < truth; j++ {
			if rng.Float64() < p {
				k++
			}
		}
		est := float64(k) / p
		sum += est
		sumSq += est * est
	}
	mean := sum / trials
	std := math.Sqrt(sumSq/trials - mean*mean)
	want := ProbeStdDev(truth, p, 1)
	if math.Abs(std-want)/want > 0.1 {
		t.Fatalf("Monte-Carlo σ = %.1f, analytic %.1f", std, want)
	}
	if math.Abs(mean-truth)/truth > 0.02 {
		t.Fatalf("Monte-Carlo mean %.1f, want ≈%d", mean, truth)
	}
}

func TestProberEscalatesThenRepeats(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	const truth = 800
	pr := NewProber(ProbePlan{StartPAck: 1.0 / 1024, Growth: 4, MinResponses: 10, Repeats: 4})
	for {
		p, ok := pr.NextProbe()
		if !ok {
			break
		}
		k := 0
		for i := 0; i < truth; i++ {
			if rng.Float64() < p {
				k++
			}
		}
		pr.ObserveRound(k)
	}
	if !pr.Done() {
		t.Fatal("prober not done")
	}
	if est := pr.Estimate(); est < 600 || est > 1000 {
		t.Fatalf("probe estimate %v, want ≈800", est)
	}
	// pAck escalation must have happened: 1/1024 would yield <1 response.
	if pr.Rounds() < 4 {
		t.Fatalf("rounds = %d, want escalation + repeats", pr.Rounds())
	}
}

func TestProberTinyGroupReachesPAckOne(t *testing.T) {
	// With 3 loggers, escalation must saturate at pAck = 1 and still finish.
	pr := NewProber(ProbePlan{StartPAck: 0.25, Growth: 2, MinResponses: 10, Repeats: 2})
	steps := 0
	for {
		p, ok := pr.NextProbe()
		if !ok {
			break
		}
		k := int(3 * p) // deterministic approximation
		pr.ObserveRound(k)
		if steps++; steps > 50 {
			t.Fatal("prober did not terminate")
		}
	}
	if est := pr.Estimate(); est < 0 || est > 6 {
		t.Fatalf("tiny group estimate %v, want ≈3", est)
	}
}

func TestRTTDefaultsAndClamps(t *testing.T) {
	r, err := NewRTT(RTTConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if r.TWait() != DefaultRTTConfig.Initial {
		t.Fatalf("initial TWait = %v", r.TWait())
	}
	if r.Cap() != 2*r.TWait() {
		t.Fatalf("Cap = %v, want 2×TWait", r.Cap())
	}
	// Converge down toward a 40ms RTT.
	for i := 0; i < 100; i++ {
		r.Observe(40 * time.Millisecond)
	}
	if got := r.TWait(); got < 35*time.Millisecond || got > 60*time.Millisecond {
		t.Fatalf("TWait after convergence = %v, want ≈40ms", got)
	}
}

func TestRTTObserveFormula(t *testing.T) {
	r, _ := NewRTT(RTTConfig{Alpha: 0.125, Initial: 800 * time.Millisecond})
	r.Observe(400 * time.Millisecond)
	// 0.125*400 + 0.875*800 = 750ms.
	if got := r.TWait(); got != 750*time.Millisecond {
		t.Fatalf("TWait = %v, want 750ms", got)
	}
}

func TestRTTSampleCappedAtTwice(t *testing.T) {
	r, _ := NewRTT(RTTConfig{Alpha: 0.5, Initial: 100 * time.Millisecond})
	r.Observe(10 * time.Second) // clamped to 200ms
	// 0.5*200 + 0.5*100 = 150ms.
	if got := r.TWait(); got != 150*time.Millisecond {
		t.Fatalf("TWait = %v, want 150ms (sample capped at 2×t_wait)", got)
	}
}

func TestRTTNegativeSampleIgnored(t *testing.T) {
	r, _ := NewRTT(RTTConfig{})
	before := r.TWait()
	r.Observe(-time.Second)
	if r.TWait() != before {
		t.Fatal("negative sample mutated estimate")
	}
}

func TestRTTConfigValidation(t *testing.T) {
	bad := []RTTConfig{
		{Alpha: 2, Initial: time.Second, Min: time.Millisecond, Max: time.Minute},
		{Alpha: 0.1, Initial: time.Hour, Min: time.Millisecond, Max: time.Minute},
		{Alpha: 0.1, Initial: time.Second, Min: time.Minute, Max: time.Millisecond},
	}
	for i, c := range bad {
		if _, err := NewRTT(c); err == nil {
			t.Errorf("case %d: NewRTT(%+v) accepted", i, c)
		}
	}
}

func TestHotlistFlagsChronicResponder(t *testing.T) {
	now := time.Unix(0, 0)
	h := NewHotlist[int](time.Minute, 3)
	// A faulty logger responds to every epoch; an honest one rarely.
	for i := 0; i < 10; i++ {
		h.Record(1, now.Add(time.Duration(i)*10*time.Second))
	}
	h.Record(2, now.Add(50*time.Second))
	at := now.Add(100 * time.Second)
	if !h.Faulty(1, at) {
		t.Errorf("chronic responder not flagged: score %.2f", h.Score(1, at))
	}
	if h.Faulty(2, at) {
		t.Errorf("honest responder flagged: score %.2f", h.Score(2, at))
	}
}

func TestHotlistScores(t *testing.T) {
	now := time.Unix(0, 0)
	h := NewHotlist[string](time.Minute, 3)
	h.Record("a", now)
	h.Record("a", now)
	h.Record("b", now)
	at := now.Add(time.Minute)
	scores := h.Scores(at)
	if len(scores) != 2 {
		t.Fatalf("Scores returned %d entries", len(scores))
	}
	if math.Abs(scores["a"]-1.0) > 1e-9 || math.Abs(scores["b"]-0.5) > 1e-9 {
		t.Fatalf("scores = %v, want a=1.0 b=0.5", scores)
	}
	// The copy is detached: mutating it must not touch the hotlist.
	scores["a"] = 100
	if s := h.Score("a", at); math.Abs(s-1.0) > 1e-9 {
		t.Fatalf("hotlist mutated through Scores copy: %v", s)
	}
}

func TestHotlistDecay(t *testing.T) {
	now := time.Unix(0, 0)
	h := NewHotlist[string](time.Minute, 3)
	h.Record("a", now)
	if s := h.Score("a", now.Add(time.Minute)); math.Abs(s-0.5) > 1e-9 {
		t.Fatalf("score after one half-life = %v, want 0.5", s)
	}
	if s := h.Score("a", now.Add(3*time.Minute)); math.Abs(s-0.125) > 1e-9 {
		t.Fatalf("score after three half-lives = %v, want 0.125", s)
	}
	if h.Score("missing", now) != 0 {
		t.Fatal("unknown id should score 0")
	}
}

// Property: the EWMA estimate always stays within the convex hull of the
// initial estimate and all observed samples.
func TestGroupSizeConvexHullProperty(t *testing.T) {
	f := func(obs []uint16, initRaw uint16) bool {
		init := float64(initRaw%1000) + 1
		g, err := NewGroupSize(GroupSizeConfig{K: 10, Alpha: 0.25, Initial: init})
		if err != nil {
			return false
		}
		lo, hi := init, init
		for _, o := range obs {
			p := g.PAck()
			k := int(o % 500)
			g.Observe(k, p)
			sample := float64(k) / p
			if sample < lo {
				lo = sample
			}
			if sample > hi {
				hi = sample
			}
			if e := g.Estimate(); e < lo-1e-6 || e > hi+1e-6 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: RTT estimate stays within [Min, Max] for arbitrary samples.
func TestRTTBoundsProperty(t *testing.T) {
	f := func(samplesMS []int32) bool {
		r, err := NewRTT(RTTConfig{})
		if err != nil {
			return false
		}
		for _, s := range samplesMS {
			r.Observe(time.Duration(s) * time.Millisecond)
			if r.TWait() < DefaultRTTConfig.Min || r.TWait() > DefaultRTTConfig.Max {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
