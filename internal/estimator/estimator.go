// Package estimator implements the adaptive components of LBRM's
// statistical acknowledgement machinery (§2.3):
//
//   - GroupSize: the secondary-logger population estimate N_sl, bootstrapped
//     with Bolot/Turletti/Wakeman-style probabilistic probing (§2.3.3,
//     Table 2) and refined continuously with an EWMA over per-packet ACK
//     counts.
//   - RTT: the exponentially-converging t_wait estimator
//     (t'_wait = α·rtt_new + (1−α)·t_wait), after Jacobson's TCP estimator.
//   - Hotlist: a decayed activity count per logger used to ignore faulty
//     ackers that respond to every Acker Selection Packet.
package estimator

import (
	"fmt"
	"math"
	"time"
)

// GroupSizeConfig tunes the N_sl estimator.
type GroupSizeConfig struct {
	// K is the desired number of positive acknowledgements per data packet
	// (paper: between 5 and 20 is appropriate).
	K int
	// Alpha is the EWMA gain applied to each new observation (paper
	// suggests 1/8).
	Alpha float64
	// Initial seeds the estimate before any observation; ≤ 0 means
	// "unknown" (PAck is 1 until an estimate exists, so small groups are
	// fully counted).
	Initial float64
}

// DefaultGroupSizeConfig matches the paper's suggestions.
var DefaultGroupSizeConfig = GroupSizeConfig{K: 20, Alpha: 1.0 / 8}

// Validate reports whether the configuration is usable.
func (c GroupSizeConfig) Validate() error {
	if c.K <= 0 {
		return fmt.Errorf("estimator: K %d must be positive", c.K)
	}
	if c.Alpha <= 0 || c.Alpha > 1 {
		return fmt.Errorf("estimator: alpha %v outside (0,1]", c.Alpha)
	}
	return nil
}

// GroupSize maintains the running N_sl estimate.
type GroupSize struct {
	cfg GroupSizeConfig
	nsl float64
	// observations counts Observe calls, for diagnostics.
	observations int
}

// NewGroupSize returns an estimator; cfg zero-fields take defaults.
func NewGroupSize(cfg GroupSizeConfig) (*GroupSize, error) {
	if cfg.K == 0 {
		cfg.K = DefaultGroupSizeConfig.K
	}
	if cfg.Alpha == 0 {
		cfg.Alpha = DefaultGroupSizeConfig.Alpha
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &GroupSize{cfg: cfg, nsl: cfg.Initial}, nil
}

// Estimate returns the current N_sl estimate (0 when unknown).
func (g *GroupSize) Estimate() float64 { return g.nsl }

// Known reports whether any estimate exists yet.
func (g *GroupSize) Known() bool { return g.nsl > 0 }

// Observations returns the number of Observe calls so far.
func (g *GroupSize) Observations() int { return g.observations }

// PAck returns the acknowledgement probability to advertise in the next
// Acker Selection Packet: k/N_sl, clamped to (0,1]. Before any estimate it
// returns 1 (every logger acks — correct and implosion-free for the small
// groups a stream starts with).
func (g *GroupSize) PAck() float64 {
	if g.nsl <= float64(g.cfg.K) {
		return 1
	}
	return float64(g.cfg.K) / g.nsl
}

// K returns the configured target acknowledgement count.
func (g *GroupSize) K() int { return g.cfg.K }

// Seed force-sets the estimate (used after the probing phase).
func (g *GroupSize) Seed(n float64) {
	if n < 0 {
		n = 0
	}
	g.nsl = n
}

// Observe folds in one response count k' observed at probability pAck:
// N'_sl = (1−α)·N_sl + α·k'/p_ack. The first observation replaces the
// estimate outright.
func (g *GroupSize) Observe(kPrime int, pAck float64) {
	if pAck <= 0 || pAck > 1 || kPrime < 0 {
		return
	}
	g.observations++
	sample := float64(kPrime) / pAck
	if g.nsl <= 0 {
		g.nsl = sample
		return
	}
	g.nsl = (1-g.cfg.Alpha)*g.nsl + g.cfg.Alpha*sample
}

// ProbeStdDev returns the analytic standard deviation of the N_sl estimate
// from `probes` independent probes at probability pAck against a true
// population n (Table 2): σ₁/√probes with σ₁ = sqrt(n(1−p)/p).
func ProbeStdDev(n float64, pAck float64, probes int) float64 {
	if probes <= 0 || pAck <= 0 || pAck > 1 || n <= 0 {
		return math.NaN()
	}
	sigma1 := math.Sqrt(n * (1 - pAck) / pAck)
	return sigma1 / math.Sqrt(float64(probes))
}

// ProbePlan is the Bolot-style bootstrap: a schedule of probe rounds with
// geometrically increasing pAck, stopping once a round collects at least
// MinResponses, then repeating the final probability Repeats times to
// tighten the estimate (the paper's "modest extension").
type ProbePlan struct {
	// StartPAck is the first round's probability (default 1/1024).
	StartPAck float64
	// Growth multiplies pAck between rounds (default 4).
	Growth float64
	// MinResponses ends the escalation once a round yields this many
	// responses (default 10).
	MinResponses int
	// Repeats re-runs the final probability to average the estimate
	// (default 3; Table 2 quantifies the gain).
	Repeats int
}

// DefaultProbePlan matches the defaults above.
var DefaultProbePlan = ProbePlan{StartPAck: 1.0 / 1024, Growth: 4, MinResponses: 10, Repeats: 3}

// normalize fills zero fields with defaults.
func (p ProbePlan) normalize() ProbePlan {
	if p.StartPAck <= 0 {
		p.StartPAck = DefaultProbePlan.StartPAck
	}
	if p.Growth <= 1 {
		p.Growth = DefaultProbePlan.Growth
	}
	if p.MinResponses <= 0 {
		p.MinResponses = DefaultProbePlan.MinResponses
	}
	if p.Repeats <= 0 {
		p.Repeats = DefaultProbePlan.Repeats
	}
	return p
}

// Prober executes a ProbePlan. The owner drives it: NextProbe yields the
// probability to advertise, ObserveRound feeds back the response count,
// and Done/Estimate report completion. The actual transmission and
// response counting belong to the sender (internal/core).
type Prober struct {
	plan    ProbePlan
	pAck    float64
	rounds  int
	repeats int
	sum     float64
	samples int
	done    bool
}

// NewProber starts a probing session.
func NewProber(plan ProbePlan) *Prober {
	plan = plan.normalize()
	return &Prober{plan: plan, pAck: plan.StartPAck}
}

// NextProbe returns the probability for the next probe round, or false if
// probing is complete.
func (p *Prober) NextProbe() (float64, bool) {
	if p.done {
		return 0, false
	}
	return p.pAck, true
}

// ObserveRound records the number of responses to the round announced by
// the last NextProbe.
func (p *Prober) ObserveRound(responses int) {
	if p.done {
		return
	}
	p.rounds++
	if p.samples > 0 || responses >= p.plan.MinResponses || p.pAck >= 1 {
		// Estimation phase: accumulate samples at the final probability.
		p.sum += float64(responses) / p.pAck
		p.samples++
		if p.samples >= p.plan.Repeats {
			p.done = true
		}
		return
	}
	// Escalation phase: too few responses, raise pAck.
	p.pAck *= p.plan.Growth
	if p.pAck > 1 {
		p.pAck = 1
	}
}

// Done reports whether the plan has finished.
func (p *Prober) Done() bool { return p.done }

// Rounds returns the number of probe rounds executed.
func (p *Prober) Rounds() int { return p.rounds }

// Estimate returns the averaged population estimate (valid when Done).
func (p *Prober) Estimate() float64 {
	if p.samples == 0 {
		return 0
	}
	return p.sum / float64(p.samples)
}

// RTTConfig tunes the t_wait estimator.
type RTTConfig struct {
	// Alpha is the EWMA gain (paper formula; 1/8 by convention).
	Alpha float64
	// Initial is the starting t_wait before any measurement.
	Initial time.Duration
	// Min and Max clamp the estimate.
	Min, Max time.Duration
}

// DefaultRTTConfig is a reasonable WAN default.
var DefaultRTTConfig = RTTConfig{
	Alpha:   1.0 / 8,
	Initial: 500 * time.Millisecond,
	Min:     10 * time.Millisecond,
	Max:     30 * time.Second,
}

// RTT is the exponentially-converging t_wait estimator of §2.3.2. rtt_new
// is the time at which the last ACK for a data packet arrives, capped by
// the sender at 2×t_wait.
type RTT struct {
	cfg   RTTConfig
	twait time.Duration
}

// NewRTT returns an estimator; zero cfg fields take defaults.
func NewRTT(cfg RTTConfig) (*RTT, error) {
	if cfg.Alpha == 0 {
		cfg.Alpha = DefaultRTTConfig.Alpha
	}
	if cfg.Initial == 0 {
		cfg.Initial = DefaultRTTConfig.Initial
	}
	if cfg.Min == 0 {
		cfg.Min = DefaultRTTConfig.Min
	}
	if cfg.Max == 0 {
		cfg.Max = DefaultRTTConfig.Max
	}
	if cfg.Alpha <= 0 || cfg.Alpha > 1 {
		return nil, fmt.Errorf("estimator: RTT alpha %v outside (0,1]", cfg.Alpha)
	}
	if cfg.Min <= 0 || cfg.Max < cfg.Min || cfg.Initial < cfg.Min || cfg.Initial > cfg.Max {
		return nil, fmt.Errorf("estimator: RTT bounds Min=%v Initial=%v Max=%v inconsistent",
			cfg.Min, cfg.Initial, cfg.Max)
	}
	return &RTT{cfg: cfg, twait: cfg.Initial}, nil
}

// TWait returns the current t_wait.
func (r *RTT) TWait() time.Duration { return r.twait }

// Cap returns the sampling cap 2×t_wait: ACKs later than this count as
// lost rather than slow.
func (r *RTT) Cap() time.Duration { return 2 * r.twait }

// Observe folds in a new last-ACK arrival time. Samples beyond Cap are
// clamped to it (the source "asserts that an ACK was lost").
func (r *RTT) Observe(sample time.Duration) {
	if sample < 0 {
		return
	}
	if c := r.Cap(); sample > c {
		sample = c
	}
	t := time.Duration(r.cfg.Alpha*float64(sample) + (1-r.cfg.Alpha)*float64(r.twait))
	if t < r.cfg.Min {
		t = r.cfg.Min
	}
	if t > r.cfg.Max {
		t = r.cfg.Max
	}
	r.twait = t
}

// Hotlist tracks recently-active Designated Ackers with exponentially
// decayed counts; a logger whose decayed activity exceeds Threshold is
// considered faulty ("responds to every Acker Selection Packet") and its
// ACKs are ignored (§2.3.3).
type Hotlist[ID comparable] struct {
	// HalfLife is the decay half-life.
	HalfLife time.Duration
	// Threshold is the decayed activity above which an ID is faulty.
	Threshold float64

	entries map[ID]*hotEntry
}

type hotEntry struct {
	score float64
	last  time.Time
}

// NewHotlist returns a hotlist with the given half-life and threshold.
func NewHotlist[ID comparable](halfLife time.Duration, threshold float64) *Hotlist[ID] {
	return &Hotlist[ID]{
		HalfLife:  halfLife,
		Threshold: threshold,
		entries:   make(map[ID]*hotEntry),
	}
}

// Record notes one acker activation (a response to an Acker Selection
// Packet) at time now.
func (h *Hotlist[ID]) Record(id ID, now time.Time) {
	e := h.entries[id]
	if e == nil {
		e = &hotEntry{last: now}
		h.entries[id] = e
	}
	e.score = h.decayed(e, now) + 1
	e.last = now
}

// Score returns the decayed activity for id at time now.
func (h *Hotlist[ID]) Score(id ID, now time.Time) float64 {
	e := h.entries[id]
	if e == nil {
		return 0
	}
	return h.decayed(e, now)
}

// Faulty reports whether id's decayed activity exceeds the threshold.
func (h *Hotlist[ID]) Faulty(id ID, now time.Time) bool {
	return h.Score(id, now) > h.Threshold
}

// Len returns the number of tracked IDs.
func (h *Hotlist[ID]) Len() int { return len(h.entries) }

// Scores returns every tracked ID's decayed activity at now — the
// health engine's view of which entities are sustaining over their
// thresholds. The map is a fresh copy.
func (h *Hotlist[ID]) Scores(now time.Time) map[ID]float64 {
	out := make(map[ID]float64, len(h.entries))
	for id, e := range h.entries {
		out[id] = h.decayed(e, now)
	}
	return out
}

// Prune evicts every ID whose decayed activity has fallen below floor,
// bounding the map at the set of recently-active ackers. With a
// non-positive floor nothing is evicted (scores never decay below zero but
// never reach it either). It returns the number of evicted entries.
func (h *Hotlist[ID]) Prune(now time.Time, floor float64) int {
	if floor <= 0 {
		return 0
	}
	evicted := 0
	for id, e := range h.entries {
		if h.decayed(e, now) < floor {
			delete(h.entries, id)
			evicted++
		}
	}
	return evicted
}

func (h *Hotlist[ID]) decayed(e *hotEntry, now time.Time) float64 {
	if h.HalfLife <= 0 {
		return e.score
	}
	dt := now.Sub(e.last)
	if dt <= 0 {
		return e.score
	}
	return e.score * math.Exp2(-float64(dt)/float64(h.HalfLife))
}
