package core
