package core

import (
	"slices"
	"time"

	"lbrm/internal/heartbeat"
	"lbrm/internal/obs"
	"lbrm/internal/seqtrack"
	"lbrm/internal/transport"
	"lbrm/internal/vtime"
	"lbrm/internal/wire"
)

// Event is one delivered application packet.
type Event struct {
	Stream  StreamKey
	Seq     uint64
	Payload []byte
	// Retransmitted marks packets recovered rather than received on the
	// first transmission.
	Retransmitted bool
}

// StreamKey identifies one source's stream within a group.
type StreamKey struct {
	Source wire.SourceID
	Group  wire.GroupID
}

// ReceiverConfig configures an LBRM receiver.
type ReceiverConfig struct {
	// Group is the multicast group to subscribe to.
	Group wire.GroupID
	// Heartbeat mirrors the senders' heartbeat parameters so the receiver
	// can compute when the next packet is due (freshness tracking).
	Heartbeat heartbeat.Params
	// Secondary is the local logging server to request retransmissions
	// from. Nil with Discover set finds one by scoped multicast (§2.2.1);
	// nil without Discover goes straight to Primary.
	Secondary transport.Addr
	// Loggers is the upward recovery chain of logger tiers for an N-level
	// logger tree: Loggers[0] is the site secondary (tier 0), Loggers[1]
	// the regional logger (tier 1), and so on; Primary remains the final
	// pre-query escalation target one tier above the last entry. A miss
	// escalates tier by tier, spending SecondaryRetries jittered-backoff
	// requests at each, instead of jumping straight to the primary. Empty
	// keeps the flat design: Secondary (or a discovered logger), then
	// Primary. When set, it overrides Secondary as the first recovery
	// target.
	Loggers []transport.Addr
	// Primary is the primary logging server (escalation target).
	Primary transport.Addr
	// Discover enables expanding-ring logger discovery.
	Discover bool
	// DiscoveryTimeout bounds each discovery ring before widening.
	DiscoveryTimeout time.Duration
	// NackDelay is the reorder allowance before a retransmission request
	// ("a short retransmission request timer", Appendix A).
	NackDelay time.Duration
	// RequestTimeout is the per-request retry interval.
	RequestTimeout time.Duration
	// SecondaryRetries is how many requests go to the secondary before
	// escalating to the primary ("if the secondary logging service fails,
	// a receiver requests retransmissions directly from the primary").
	SecondaryRetries int
	// PrimaryRetries is how many requests go to the primary before asking
	// the source who the primary is (failover, §2.2.3).
	PrimaryRetries int
	// StaleFactor and StaleSlack control freshness: a stream is stale when
	// nothing arrives for StaleFactor × the expected inter-packet interval
	// plus StaleSlack.
	StaleFactor float64
	StaleSlack  time.Duration
	// Ordered buffers out-of-order packets and delivers in sequence
	// (message ordering is an application-level concern in LBRM; this is a
	// convenience for applications that want it).
	Ordered bool
	// RetransChannel (§7 extension): on loss, subscribe to the sender's
	// retransmission channel and wait RetransWait for a replay before
	// falling back to NACK recovery. 0 disables.
	RetransChannel wire.GroupID
	// RetransWait bounds the subscription before NACK fallback (default
	// 3×Heartbeat.HMin, covering the first two replays).
	RetransWait time.Duration
	// OrderedBufferMax caps the out-of-order buffer in Ordered mode
	// (default 1024 packets per stream). On overflow the oldest gap is
	// force-abandoned so delivery can proceed — bounded memory beats
	// unbounded waiting for a packet that may never come.
	OrderedBufferMax int
	// RecoveryWindow caps how many sequence numbers behind the stream head
	// the receiver will chase (default 4096). Falling further behind — or
	// receiving a forged sequence number — skips the stream ahead,
	// reporting the skipped span through OnLost. Freshness over
	// completeness, and a bound on per-packet work and state.
	RecoveryWindow uint64

	// TrackRecoveryTimes retains the detection→delivery latency of every
	// recovered sequence number for the RecoveryTimes accessor (testbeds
	// and experiments). Off by default: the record grows with recovery
	// count, so production datapaths leave it disabled and read the
	// recovery-latency histogram from Obs instead.
	TrackRecoveryTimes bool

	// OnData is called for every delivered packet (required to observe
	// data). The payload is only valid during the call.
	OnData func(Event)
	// OnStale is called once when a stream goes stale; the duration is the
	// observed silence.
	OnStale func(StreamKey, time.Duration)
	// OnFresh is called when a stale stream resumes.
	OnFresh func(StreamKey)
	// OnLost is called when recovery of a range is abandoned.
	OnLost func(StreamKey, wire.SeqRange)

	// Obs receives metrics and trace events (nil = uninstrumented; the
	// delivery path stays zero-allocation either way, see DESIGN.md §9).
	Obs *obs.Sink
}

func (c ReceiverConfig) withDefaults() ReceiverConfig {
	if c.Heartbeat == (heartbeat.Params{}) {
		c.Heartbeat = heartbeat.DefaultParams
	}
	if c.DiscoveryTimeout == 0 {
		c.DiscoveryTimeout = 200 * time.Millisecond
	}
	if c.NackDelay == 0 {
		c.NackDelay = 10 * time.Millisecond
	}
	if c.RequestTimeout == 0 {
		c.RequestTimeout = 250 * time.Millisecond
	}
	if c.SecondaryRetries == 0 {
		c.SecondaryRetries = 3
	}
	if c.PrimaryRetries == 0 {
		c.PrimaryRetries = 3
	}
	if c.StaleFactor == 0 {
		c.StaleFactor = 2
	}
	if c.StaleSlack == 0 {
		c.StaleSlack = 100 * time.Millisecond
	}
	if c.RetransChannel != 0 && c.RetransWait == 0 {
		c.RetransWait = 3 * c.Heartbeat.HMin
	}
	if c.Ordered && c.OrderedBufferMax == 0 {
		c.OrderedBufferMax = 1024
	}
	if c.RecoveryWindow == 0 {
		c.RecoveryWindow = 4096
	}
	return c
}

// ReceiverStats counts a receiver's protocol activity.
type ReceiverStats struct {
	DataDelivered      uint64
	Duplicates         uint64
	HeartbeatsSeen     uint64
	GapsDetected       uint64
	NacksSent uint64
	// NacksToSecondary counts NACKs to the tier-0 (on-site) logger;
	// NacksToPrimary counts everything sent beyond the site boundary —
	// higher chain tiers, the primary, and post-query retries.
	NacksToSecondary uint64
	NacksToPrimary   uint64
	Recovered          uint64
	RecoveredInline    uint64
	Escalations        uint64
	PrimaryQueries     uint64
	RangesAbandoned    uint64
	StaleEpisodes      uint64
	DiscoveryQueries   uint64
	DiscoveredLogger   uint64
	Malformed          uint64
	OrderedBuffered    uint64
	OrderedOutOfWindow uint64
	ChannelJoins       uint64 // retransmission-channel subscriptions (§7)
	ChannelRecoveries  uint64 // losses healed by channel replays
	SkippedAhead       uint64 // recovery-window skips (fell too far behind)
	StaleRedirects     uint64 // redirects fenced by the primary epoch
	ReparentsFollowed  uint64 // logger-tree announcements adopted
	StaleReparents     uint64 // logger-tree announcements fenced as stale
}

// Recovery escalation phases. A stream's phase is its position in the
// recovery chain: phases [0, numTiers) address the logger tiers
// (cfg.Loggers, or the single flat secondary), numTiers the primary, and
// numTiers+1 the post-query primary retry. With the default flat chain
// these reduce to the paper's 0 secondary / 1 primary / 2 queried.
const phaseSecondary = 0

// Receiver is an LBRM receiver endpoint.
type Receiver struct {
	cfg       ReceiverConfig
	env       transport.Env
	secondary transport.Addr
	// chain is the logger-tier recovery chain (cfg.Loggers); empty means
	// the flat single-secondary design. tierEpochs fences TypeReparent
	// announcements per announcer tier, priEpochHigh by primary epoch.
	chain        []transport.Addr
	tierEpochs   [wire.MaxTier + 1]uint32
	priEpochHigh uint32
	streams      map[StreamKey]*rcvStream
	stats        ReceiverStats

	discovering  bool
	discoveryTTL int

	// §7 retransmission-channel subscription state (receiver-wide).
	channelJoined bool
	channelTimer  vtime.Timer

	// last is a one-entry stream cache: simulation traffic is dominated by
	// long runs of packets from the same stream, so most lookups skip the
	// map. Invalidated implicitly (the cached pointer stays valid until the
	// stream is deleted, which this receiver never does).
	last *rcvStream
	// scratch is the reusable wire-encoding buffer (bindings copy).
	scratch []byte
	// missScratch/trackScratch back missing()'s working slices between
	// calls (the result is dead once the NACK is marshalled or the gap
	// check decides), so steady-state recovery computes gaps without
	// allocating.
	missScratch  []wire.SeqRange
	trackScratch []wire.SeqRange

	stopped bool
	// mx caches the preregistered metric handles (all nil-safe).
	mx receiverMetrics
}

// receiverMetrics holds the receiver's preregistered observability handles.
type receiverMetrics struct {
	sink             *obs.Sink
	tx               *obs.ClassCounters
	delivered        *obs.Counter
	duplicates       *obs.Counter
	heartbeats       *obs.Counter
	gaps             *obs.Counter
	recovered        *obs.Counter
	recoveredInline  *obs.Counter
	nacks            *obs.Counter
	nacksToSecondary *obs.Counter
	nacksToPrimary   *obs.Counter
	escalations      *obs.Counter
	primaryQueries   *obs.Counter
	abandoned        *obs.Counter
	staleEpisodes    *obs.Counter
	discoveries      *obs.Counter
	skippedAhead     *obs.Counter
	staleRedirects   *obs.Counter
	reparents        *obs.Counter
	staleReparents   *obs.Counter
	primaryEpoch     *obs.Gauge
	recoveryMS       *obs.Histogram
	// pathRTT breaks recoveryMS down by recovery path (indexed by
	// wire.RecoveryPath; PathNone stays nil).
	pathRTT [wire.NumRecoveryPaths]*obs.Histogram
}

// recoveryBoundsMS buckets loss-detection→delivery latency: the paper's
// Figure 6 recovery-delay axis as a histogram.
var recoveryBoundsMS = []uint64{1, 5, 10, 25, 50, 100, 250, 500, 1000, 2500}

func newReceiverMetrics(sink *obs.Sink) receiverMetrics {
	mx := receiverMetrics{
		sink:             sink,
		tx:               sink.Classes("recv.tx", wire.TrafficClassNames()),
		delivered:        sink.Counter("recv.delivered"),
		duplicates:       sink.Counter("recv.duplicates"),
		heartbeats:       sink.Counter("recv.heartbeats_seen"),
		gaps:             sink.Counter("recv.gaps_detected"),
		recovered:        sink.Counter("recv.recovered"),
		recoveredInline:  sink.Counter("recv.recovered_inline"),
		nacks:            sink.Counter("recv.nacks_sent"),
		nacksToSecondary: sink.Counter("recv.nacks_to_secondary"),
		nacksToPrimary:   sink.Counter("recv.nacks_to_primary"),
		escalations:      sink.Counter("recv.escalations"),
		primaryQueries:   sink.Counter("recv.primary_queries"),
		abandoned:        sink.Counter("recv.ranges_abandoned"),
		staleEpisodes:    sink.Counter("recv.stale_episodes"),
		discoveries:      sink.Counter("recv.discovery_queries"),
		skippedAhead:     sink.Counter("recv.skipped_ahead"),
		staleRedirects:   sink.Counter("recv.fence.stale_redirects"),
		reparents:        sink.Counter("recv.reparents"),
		staleReparents:   sink.Counter("recv.fence.stale_reparents"),
		primaryEpoch:     sink.Gauge("recv.primary_epoch"),
		recoveryMS:       sink.Histogram("recv.recovery_ms", recoveryBoundsMS),
	}
	for p := wire.PathLocal; p < wire.NumRecoveryPaths; p++ {
		mx.pathRTT[p] = sink.Histogram("recv.recovery."+p.MetricName()+"_ms", recoveryBoundsMS)
	}
	return mx
}

// now returns the environment clock in nanoseconds (0 before Start).
func (r *Receiver) now() int64 {
	if r.env == nil {
		return 0
	}
	return r.env.Now().UnixNano()
}

type rcvStream struct {
	key    StreamKey
	source transport.Addr
	// sequence tracking (no payload retention).
	track  seqtrack.Tracker
	hbHigh uint64
	// ordered-mode buffer.
	buffer map[uint64][]byte
	// recovery.
	primary transport.Addr
	// primaryEpoch is the highest primary epoch observed for this stream
	// (heartbeats and redirects carry it). Redirects naming a lower epoch
	// are from a fenced, stale primary and are ignored.
	primaryEpoch uint32
	// nackTimer/retryTimer are persistent: created once per stream on the
	// first recovery episode and re-armed with Reset afterwards, with the
	// armed flags carrying the "is a fire pending" state (a timer handle
	// outliving its episode must not be mistaken for an active one). This
	// keeps per-episode recovery free of timer and closure allocations.
	nackTimer  vtime.Timer
	nackArmed  bool
	retryTimer vtime.Timer
	retryArmed bool

	phase       int
	retries     int
	gaveUpBelow uint64
	// freshness.
	lastArrival time.Time
	staleTimer  vtime.Timer
	stale       bool
	// latency accounting for experiments: seq → time the loss was first
	// detectable (gap observed).
	gapSince map[uint64]time.Time
	// recoveryTimes records detection→delivery per recovered seq.
	recoveryTimes map[uint64]time.Duration
}

// NewReceiver returns a receiver for cfg.
func NewReceiver(cfg ReceiverConfig) *Receiver {
	r := &Receiver{
		cfg:       cfg.withDefaults(),
		secondary: cfg.Secondary,
		chain:     cfg.Loggers,
		streams:   make(map[StreamKey]*rcvStream),
		mx:        newReceiverMetrics(cfg.Obs),
	}
	if len(r.chain) > 0 {
		r.secondary = r.chain[0]
	}
	return r
}

// numTiers is the number of logger tiers below the primary in the
// recovery chain (1 in the flat design: the single secondary).
func (r *Receiver) numTiers() int {
	if len(r.chain) > 0 {
		return len(r.chain)
	}
	return 1
}

// phasePrimary/phaseQueried are the chain positions of the primary and of
// the post-query primary retry (1 and 2 in the flat design).
func (r *Receiver) phasePrimary() int { return r.numTiers() }
func (r *Receiver) phaseQueried() int { return r.numTiers() + 1 }

// Stats returns a snapshot of the receiver's counters.
func (r *Receiver) Stats() ReceiverStats { return r.stats }

// Stop halts the receiver: recovery, freshness and discovery timers cease
// and incoming packets are ignored. Safe to call once.
func (r *Receiver) Stop() {
	r.stopped = true
	for _, st := range r.streams {
		if st.staleTimer != nil {
			st.staleTimer.Stop()
		}
		if st.nackTimer != nil {
			st.nackTimer.Stop()
		}
		if st.retryTimer != nil {
			st.retryTimer.Stop()
		}
	}
}

// after schedules fn guarded by the stopped flag.
func (r *Receiver) after(d time.Duration, fn func()) vtime.Timer {
	return r.env.AfterFunc(d, func() {
		if !r.stopped {
			fn()
		}
	})
}

// SecondaryAddr returns the logging server currently used for recovery
// (nil when none is known yet).
func (r *Receiver) SecondaryAddr() transport.Addr { return r.secondary }

// Contiguous returns the stream's in-order watermark (for tests).
func (r *Receiver) Contiguous(key StreamKey) uint64 {
	if st := r.streams[key]; st != nil {
		return st.track.Contiguous()
	}
	return 0
}

// PrimaryTarget returns the stream's current recovery primary and the
// highest primary epoch observed for it (for tests).
func (r *Receiver) PrimaryTarget(key StreamKey) (transport.Addr, uint32) {
	if st := r.streams[key]; st != nil {
		return st.primary, st.primaryEpoch
	}
	return nil, 0
}

// Stale reports whether the stream is currently considered stale.
func (r *Receiver) Stale(key StreamKey) bool {
	if st := r.streams[key]; st != nil {
		return st.stale
	}
	return false
}

// Start implements transport.Handler.
func (r *Receiver) Start(env transport.Env) {
	r.env = env
	if err := env.Join(r.cfg.Group); err != nil {
		panic("core: receiver failed to join group: " + err.Error())
	}
	if r.secondary == nil && r.cfg.Discover {
		r.discoverLogger(transport.TTLSite)
	}
}

// Recv implements transport.Handler.
func (r *Receiver) Recv(from transport.Addr, data []byte) {
	if r.stopped {
		return
	}
	var p wire.Packet
	if err := p.Unmarshal(data); err != nil {
		r.stats.Malformed++
		return
	}
	if p.Group != r.cfg.Group {
		return
	}
	switch p.Type {
	case wire.TypeData, wire.TypeRetrans:
		r.onData(from, &p)
	case wire.TypeHeartbeat:
		r.onHeartbeat(from, &p)
	case wire.TypeDiscoveryReply:
		r.onDiscoveryReply(&p)
	case wire.TypePrimaryRedirect:
		r.onRedirect(&p)
	case wire.TypeReparent:
		r.onReparent(&p)
	}
}

func (r *Receiver) stream(key StreamKey) *rcvStream {
	if st := r.last; st != nil && st.key == key {
		return st
	}
	st := r.streams[key]
	if st == nil {
		st = &rcvStream{
			key:      key,
			primary:  r.cfg.Primary,
			gapSince: make(map[uint64]time.Time),
		}
		if r.cfg.TrackRecoveryTimes {
			st.recoveryTimes = make(map[uint64]time.Duration)
		}
		if r.cfg.Ordered {
			st.buffer = make(map[uint64][]byte)
		}
		r.streams[key] = st
	}
	r.last = st
	return st
}

// --- sequence bookkeeping (shared tracker plus recovery filtering) ---

// missing returns the outstanding ranges: tracker gaps up to the highest
// seen (data or heartbeat-implied), minus anything already abandoned. The
// result is backed by the Receiver's scratch storage and is valid only
// until the next missing call.
func (r *Receiver) missing(st *rcvStream, cap int) []wire.SeqRange {
	hi := st.track.Highest()
	if st.hbHigh > hi {
		hi = st.hbHigh
	}
	r.trackScratch = st.track.AppendMissing(r.trackScratch[:0], hi, cap)
	out := r.missScratch[:0]
	for _, rg := range r.trackScratch {
		if rg.To <= st.gaveUpBelow {
			continue
		}
		if rg.From <= st.gaveUpBelow {
			rg.From = st.gaveUpBelow + 1
		}
		out = append(out, rg)
		if len(out) == cap {
			break
		}
	}
	r.missScratch = out
	return out
}

// --- data path ---

func (r *Receiver) onData(from transport.Addr, p *wire.Packet) {
	st := r.stream(StreamKey{Source: p.Source, Group: p.Group})
	if p.Type == wire.TypeData && p.Flags&wire.FlagFromLogger == 0 {
		st.source = from
	}
	r.touch(st, p)
	// Late join: deliver from here on; history is not fetched.
	if !st.track.Contacted() && p.Seq > 0 {
		st.track.SetBase(p.Seq - 1)
	}
	r.ingest(st, p.Seq, p.Payload, wire.ClassifyRecovery(p.Type, p.Flags))
}

// ingest marks a sequence number as received and delivers its payload.
// path is the repair's recovery path (PathNone for an original
// transmission).
func (r *Receiver) ingest(st *rcvStream, seq uint64, payload []byte, path wire.RecoveryPath) {
	if !st.track.Mark(seq) {
		r.stats.Duplicates++
		r.mx.duplicates.Inc()
		return
	}
	retrans := path != wire.PathNone
	if retrans {
		r.stats.Recovered++
		r.mx.recovered.Inc()
		if r.channelJoined {
			r.stats.ChannelRecoveries++
		}
		// lat stays 0 for a proactive repair that beat detection (site
		// remulticast for a neighbour's NACK, inline heartbeat racing the
		// gap check); the flight recorder distinguishes the two cases by it.
		var lat uint64
		if at, ok := st.gapSince[seq]; ok {
			d := r.env.Now().Sub(at)
			if st.recoveryTimes != nil {
				st.recoveryTimes[seq] = d
			}
			r.mx.recoveryMS.Observe(uint64(d / time.Millisecond))
			r.mx.pathRTT[path].Observe(uint64(d / time.Millisecond))
			lat = uint64(d)
			delete(st.gapSince, seq)
		}
		r.mx.sink.EmitFlight(r.now(), obs.KindDeliver, seq, uint64(path), lat)
	}
	if r.cfg.Ordered {
		r.deliverOrdered(st, seq, payload, retrans)
	} else {
		r.deliver(st, seq, payload, retrans)
	}
	r.checkGaps(st)
}

func (r *Receiver) deliver(st *rcvStream, seq uint64, payload []byte, retrans bool) {
	r.stats.DataDelivered++
	r.mx.delivered.Inc()
	if r.cfg.OnData != nil {
		r.cfg.OnData(Event{Stream: st.key, Seq: seq, Payload: payload, Retransmitted: retrans})
	}
}

// deliverOrdered buffers out-of-order arrivals and flushes in sequence.
func (r *Receiver) deliverOrdered(st *rcvStream, seq uint64, payload []byte, retrans bool) {
	st.buffer[seq] = append([]byte(nil), payload...)
	r.stats.OrderedBuffered++
	// Everything up to the contiguity watermark is in order; flush what
	// the buffer covers. Note Mark already advanced it through seq when
	// possible.
	flushUpTo := st.track.Contiguous()
	var ready []uint64
	for q := range st.buffer {
		if q <= flushUpTo {
			ready = append(ready, q)
		}
	}
	slices.Sort(ready)
	for _, q := range ready {
		r.deliver(st, q, st.buffer[q], retrans && q == seq)
		delete(st.buffer, q)
	}
	// Bounded memory: on overflow, force-abandon the oldest outstanding
	// gap so the stream can flush past it.
	if len(st.buffer) > r.cfg.OrderedBufferMax {
		if miss := r.missing(st, 1); len(miss) > 0 {
			r.abandon(st, miss[:1])
		}
	}
}

func (r *Receiver) onHeartbeat(from transport.Addr, p *wire.Packet) {
	st := r.stream(StreamKey{Source: p.Source, Group: p.Group})
	st.source = from
	r.stats.HeartbeatsSeen++
	r.mx.heartbeats.Inc()
	if p.PrimaryEpoch > st.primaryEpoch {
		r.mx.sink.Emit(r.now(), obs.KindEpochBump, uint64(st.primaryEpoch), uint64(p.PrimaryEpoch), 0)
		st.primaryEpoch = p.PrimaryEpoch
		r.mx.primaryEpoch.Set(int64(p.PrimaryEpoch))
	}
	if p.PrimaryEpoch > r.priEpochHigh {
		r.priEpochHigh = p.PrimaryEpoch
	}
	r.touch(st, p)
	// First contact via heartbeat: adopt the current position (no-op once
	// contacted).
	st.track.SetBase(p.Seq)
	if p.Seq > st.hbHigh {
		st.hbHigh = p.Seq
	}
	if p.Flags&wire.FlagInlineData != 0 && p.Seq > 0 && !st.track.Seen(p.Seq) {
		r.stats.RecoveredInline++
		r.mx.recoveredInline.Inc()
		r.ingest(st, p.Seq, p.Payload, wire.ClassifyRecovery(p.Type, p.Flags))
		return
	}
	r.checkGaps(st)
}

// --- loss recovery ---

// clampWindow enforces RecoveryWindow: when the stream head is more than
// a window ahead of the contiguity watermark, skip forward and report the
// abandoned span.
func (r *Receiver) clampWindow(st *rcvStream) {
	hi := st.track.Highest()
	if st.hbHigh > hi {
		hi = st.hbHigh
	}
	contig := st.track.Contiguous()
	if hi <= contig+r.cfg.RecoveryWindow {
		return
	}
	skipTo := hi - r.cfg.RecoveryWindow
	st.track.Advance(skipTo)
	if skipTo > st.gaveUpBelow {
		st.gaveUpBelow = skipTo
	}
	nowNS := r.now()
	for seq := range st.gapSince {
		if seq <= skipTo {
			r.mx.sink.EmitFlight(nowNS, obs.KindAbandon, seq, 1, 0)
			delete(st.gapSince, seq)
		}
	}
	if r.cfg.Ordered {
		for q := range st.buffer {
			if q <= skipTo {
				delete(st.buffer, q)
			}
		}
	}
	r.stats.SkippedAhead++
	r.mx.skippedAhead.Inc()
	r.mx.sink.Emit(r.now(), obs.KindSkipAhead, contig, skipTo, 0)
	if r.cfg.OnLost != nil {
		r.cfg.OnLost(st.key, wire.SeqRange{From: contig + 1, To: skipTo})
	}
}

func (r *Receiver) checkGaps(st *rcvStream) {
	r.clampWindow(st)
	miss := r.missing(st, wire.MaxNackRanges)
	if len(miss) == 0 {
		r.maybeLeaveChannel()
		return
	}
	now := r.env.Now()
	nowNS := now.UnixNano()
	for _, rg := range miss {
		for seq := rg.From; seq <= rg.To; seq++ {
			if _, ok := st.gapSince[seq]; !ok {
				st.gapSince[seq] = now
				r.stats.GapsDetected++
				r.mx.gaps.Inc()
				// The gap is heartbeat-revealed when nothing above it has
				// arrived as data (the heartbeat's seq pushed hbHigh past
				// the highest received packet).
				var hb uint64
				if seq > st.track.Highest() {
					hb = 1
				}
				r.mx.sink.EmitFlight(nowNS, obs.KindGapDetect, seq, hb, 0)
			}
		}
	}
	if st.nackArmed || st.retryArmed {
		return
	}
	// §7 extension: try the retransmission channel first; NACK recovery
	// starts only if the replays don't heal us within RetransWait.
	delay := r.cfg.NackDelay
	if r.cfg.RetransChannel != 0 {
		r.joinChannel()
		delay += r.cfg.RetransWait
	}
	r.armNack(st, delay)
}

// armNack schedules the start of a recovery episode. The underlying timer
// is created once per stream and re-armed thereafter (see rcvStream).
func (r *Receiver) armNack(st *rcvStream, d time.Duration) {
	st.nackArmed = true
	if st.nackTimer == nil {
		st.nackTimer = r.after(d, func() { r.nackFire(st) })
		return
	}
	st.nackTimer.Reset(d)
}

func (r *Receiver) nackFire(st *rcvStream) {
	if !st.nackArmed {
		return
	}
	st.nackArmed = false
	st.phase = phaseSecondary
	st.retries = 0
	r.requestRetransmission(st)
}

// armRetry schedules the next NACK retry; like armNack it reuses the
// stream's persistent timer. The fire path re-checks phase exhaustion, so
// one callback serves every escalation phase.
func (r *Receiver) armRetry(st *rcvStream, d time.Duration) {
	st.retryArmed = true
	if st.retryTimer == nil {
		st.retryTimer = r.after(d, func() { r.retryFire(st) })
		return
	}
	st.retryTimer.Reset(d)
}

func (r *Receiver) retryFire(st *rcvStream) {
	if !st.retryArmed {
		return
	}
	st.retryArmed = false
	if r.phaseExhausted(st) {
		r.escalate(st, nil)
		return
	}
	r.requestRetransmission(st)
}

// joinChannel subscribes to the sender's retransmission channel.
func (r *Receiver) joinChannel() {
	if r.channelJoined {
		return
	}
	if err := r.env.Join(r.cfg.RetransChannel); err != nil {
		return
	}
	r.channelJoined = true
	r.stats.ChannelJoins++
}

// maybeLeaveChannel unsubscribes once no stream is missing anything.
func (r *Receiver) maybeLeaveChannel() {
	if !r.channelJoined {
		return
	}
	for _, st := range r.streams {
		if len(r.missing(st, 1)) > 0 {
			return
		}
	}
	_ = r.env.Leave(r.cfg.RetransChannel)
	r.channelJoined = false
}

// RecoveryTimes returns, per recovered sequence number, the delay from
// loss detection to delivery (for experiments).
func (r *Receiver) RecoveryTimes(key StreamKey) map[uint64]time.Duration {
	st := r.streams[key]
	if st == nil {
		return nil
	}
	out := make(map[uint64]time.Duration, len(st.recoveryTimes))
	for k, v := range st.recoveryTimes {
		out[k] = v
	}
	return out
}

// GapAges returns, for experiments, how long each currently-missing
// sequence number has been outstanding.
func (r *Receiver) GapAges(key StreamKey) map[uint64]time.Duration {
	st := r.streams[key]
	if st == nil {
		return nil
	}
	out := make(map[uint64]time.Duration, len(st.gapSince))
	now := r.env.Now()
	for seq, t := range st.gapSince {
		out[seq] = now.Sub(t)
	}
	return out
}

// requestRetransmission sends one NACK for everything missing, to the
// current recovery target, escalating through the logging hierarchy.
func (r *Receiver) requestRetransmission(st *rcvStream) {
	miss := r.missing(st, wire.MaxNackRanges)
	if len(miss) == 0 {
		st.retries = 0
		st.phase = phaseSecondary
		return
	}
	target := r.target(st)
	if target == nil {
		r.escalate(st, miss)
		return
	}
	nack := wire.Packet{
		Type: wire.TypeNack, Source: st.key.Source, Group: st.key.Group,
		Ranges: miss,
	}
	// Stamp the addressee's global tier (the chain position; the primary's
	// tier also covers the post-query retry) so taps and parents can see
	// escalation never skips a live tier.
	if tier := min(st.phase, r.phasePrimary()); tier > 0 {
		nack.SetTier(tier)
	}
	buf, err := nack.AppendMarshal(r.scratch[:0])
	if err != nil {
		return
	}
	r.scratch = buf
	r.mx.tx.Record(int(wire.ClassNack), len(buf))
	_ = r.env.Send(target, buf)
	r.stats.NacksSent++
	r.mx.nacks.Inc()
	if r.mx.sink != nil {
		nowNS := r.now()
		for _, rg := range miss {
			for seq := rg.From; seq <= rg.To; seq++ {
				r.mx.sink.EmitFlight(nowNS, obs.KindNackSend, seq, uint64(st.phase), uint64(st.retries))
			}
		}
	}
	// NacksToSecondary counts tier-0 (on-site) requests; everything higher
	// crosses the site boundary and lands in NacksToPrimary, preserving the
	// §2.2.2 tail-circuit NACK-budget identity in multi-tier chains.
	if st.phase == 0 {
		r.stats.NacksToSecondary++
		r.mx.nacksToSecondary.Inc()
	} else {
		r.stats.NacksToPrimary++
		r.mx.nacksToPrimary.Inc()
	}
	st.retries++
	// Jittered exponential backoff: a site full of receivers that lost the
	// same packets must not re-fire NACKs in lockstep forever (retry storm
	// after a healed partition), and a struggling logger sees geometrically
	// decreasing pressure.
	retry := transport.Backoff{Base: r.cfg.RequestTimeout}.Interval(st.retries-1, r.env.Rand())
	r.armRetry(st, retry)
}

// target returns the recovery peer for the stream's current phase: the
// logger chain tier by tier, then the primary.
func (r *Receiver) target(st *rcvStream) transport.Addr {
	if st.phase < r.numTiers() {
		if len(r.chain) > 0 {
			return r.chain[st.phase]
		}
		return r.secondary // may be nil: escalate straight past tier 0
	}
	return st.primary
}

func (r *Receiver) phaseExhausted(st *rcvStream) bool {
	if st.phase < r.numTiers() {
		return st.retries >= r.cfg.SecondaryRetries
	}
	return st.retries >= r.cfg.PrimaryRetries
}

// escalate moves the recovery episode up the hierarchy: each logger tier
// in turn → primary → ask the source for the current primary → abandon.
func (r *Receiver) escalate(st *rcvStream, miss []wire.SeqRange) {
	switch {
	case st.phase < r.numTiers():
		st.phase++
		st.retries = 0
		r.stats.Escalations++
		r.mx.escalations.Inc()
		r.requestRetransmission(st)
	case st.phase == r.phasePrimary():
		st.phase = r.phaseQueried()
		st.retries = 0
		if st.source != nil {
			q := wire.Packet{
				Type: wire.TypePrimaryQuery, Source: st.key.Source, Group: st.key.Group,
			}
			if buf, err := q.AppendMarshal(r.scratch[:0]); err == nil {
				r.scratch = buf
				r.mx.tx.Record(int(wire.ClassControl), len(buf))
				_ = r.env.Send(st.source, buf)
				r.stats.PrimaryQueries++
				r.mx.primaryQueries.Inc()
			}
			// Give the redirect a round trip before retrying the primary.
			// The shared retryFire path applies: phase is phaseQueried with
			// zero retries, so exhaustion cannot trigger before the retry.
			r.armRetry(st, r.cfg.RequestTimeout)
			return
		}
		r.requestRetransmission(st)
	default:
		if miss == nil {
			miss = r.missing(st, wire.MaxNackRanges)
		}
		r.abandon(st, miss)
	}
}

// abandon gives up on the listed ranges: freshness over completeness. The
// abandoned sequence numbers are marked resolved so the in-order watermark
// advances past the hole.
func (r *Receiver) abandon(st *rcvStream, miss []wire.SeqRange) {
	nowNS := r.now()
	for _, rg := range miss {
		if rg.To > st.gaveUpBelow {
			st.gaveUpBelow = rg.To
		}
		for seq := rg.From; seq <= rg.To; seq++ {
			// The abandon terminal is emitted only for seqs whose loss was
			// detected (in gapSince): one terminal per detected chain.
			if _, ok := st.gapSince[seq]; ok {
				r.mx.sink.EmitFlight(nowNS, obs.KindAbandon, seq, 0, 0)
				delete(st.gapSince, seq)
			}
			st.track.Mark(seq)
		}
		r.stats.RangesAbandoned++
		r.mx.abandoned.Inc()
		if r.cfg.OnLost != nil {
			r.cfg.OnLost(st.key, rg)
		}
	}
	st.phase = phaseSecondary
	st.retries = 0
	if r.cfg.Ordered {
		// Flush buffered packets stranded behind the abandoned range, in
		// order.
		var ready []uint64
		for q := range st.buffer {
			if q <= st.track.Contiguous() {
				ready = append(ready, q)
			}
		}
		slices.Sort(ready)
		for _, q := range ready {
			r.deliver(st, q, st.buffer[q], false)
			delete(st.buffer, q)
		}
	}
	// More gaps may remain beyond the abandoned ones.
	r.checkGaps(st)
}

// --- freshness ---

// touch resets the stream's staleness deadline from the packet just
// received: the next packet is due within the heartbeat schedule's next
// interval.
func (r *Receiver) touch(st *rcvStream, p *wire.Packet) {
	now := r.env.Now()
	st.lastArrival = now
	if st.stale {
		st.stale = false
		if r.cfg.OnFresh != nil {
			r.cfg.OnFresh(st.key)
		}
	}
	interval := r.expectedNext(p)
	wait := time.Duration(float64(interval)*r.cfg.StaleFactor) + r.cfg.StaleSlack
	// One timer per stream, Reset per packet: this path runs for every
	// delivered data packet, so it must not allocate a fresh timer+closure.
	if st.staleTimer != nil {
		st.staleTimer.Reset(wait)
		return
	}
	st.staleTimer = r.after(wait, func() {
		st.stale = true
		r.stats.StaleEpisodes++
		r.mx.staleEpisodes.Inc()
		if r.cfg.OnStale != nil {
			r.cfg.OnStale(st.key, r.env.Now().Sub(st.lastArrival))
		}
	})
}

// expectedNext returns the maximum time until the sender's next
// transmission, per the variable heartbeat schedule: after a data packet
// the next heartbeat comes within HMin; after the i-th heartbeat, within
// HMin·backoff^i (capped at HMax).
func (r *Receiver) expectedNext(p *wire.Packet) time.Duration {
	hb := r.cfg.Heartbeat
	if p.Type != wire.TypeHeartbeat {
		return hb.HMin
	}
	iv := hb.HMin
	for i := uint32(0); i < p.HeartbeatIdx; i++ {
		iv = time.Duration(float64(iv) * hb.Backoff)
		if iv >= hb.HMax || iv <= 0 {
			return hb.HMax
		}
	}
	if iv > hb.HMax {
		iv = hb.HMax
	}
	return iv
}

// --- logger discovery (§2.2.1) ---

func (r *Receiver) discoverLogger(ttl int) {
	if r.secondary != nil {
		return
	}
	r.discovering = true
	r.discoveryTTL = ttl
	q := wire.Packet{Type: wire.TypeDiscoveryQuery, Group: r.cfg.Group}
	buf, err := q.AppendMarshal(r.scratch[:0])
	if err != nil {
		return
	}
	r.scratch = buf
	r.mx.tx.Record(int(wire.ClassControl), len(buf))
	_ = r.env.Multicast(r.cfg.Group, ttl, buf)
	r.stats.DiscoveryQueries++
	r.mx.discoveries.Inc()
	r.after(r.cfg.DiscoveryTimeout, func() {
		if r.secondary != nil || !r.discovering {
			return
		}
		switch ttl {
		case transport.TTLSite:
			r.discoverLogger(transport.TTLRegion)
		case transport.TTLRegion:
			r.discoverLogger(transport.TTLGlobal)
		default:
			// Nobody answered: recovery will use the primary directly.
			r.discovering = false
		}
	})
}

func (r *Receiver) onDiscoveryReply(p *wire.Packet) {
	if r.secondary != nil {
		return // first (nearest) reply wins
	}
	addr, err := r.env.ParseAddr(p.Addr)
	if err != nil {
		r.stats.Malformed++
		return
	}
	r.secondary = addr
	r.discovering = false
	r.stats.DiscoveredLogger++
}

func (r *Receiver) onRedirect(p *wire.Packet) {
	addr, err := r.env.ParseAddr(p.Addr)
	if err != nil {
		r.stats.Malformed++
		return
	}
	st := r.stream(StreamKey{Source: p.Source, Group: p.Group})
	// Epoch fence (§2.2.3): a redirect stamped with a lower primary epoch
	// than we have already observed comes from a fenced, stale primary
	// (e.g. one acking into a healed partition). It must not move our
	// recovery target.
	if p.Epoch < st.primaryEpoch {
		r.stats.StaleRedirects++
		r.mx.staleRedirects.Inc()
		r.mx.sink.Emit(r.now(), obs.KindFenceHit, uint64(st.primaryEpoch), uint64(p.Epoch), uint64(p.Type))
		return
	}
	if p.Epoch > st.primaryEpoch {
		r.mx.sink.Emit(r.now(), obs.KindEpochBump, uint64(st.primaryEpoch), uint64(p.Epoch), 0)
		st.primaryEpoch = p.Epoch
		r.mx.primaryEpoch.Set(int64(p.Epoch))
	}
	if p.Epoch > r.priEpochHigh {
		r.priEpochHigh = p.Epoch
	}
	// A redirect naming the primary we already tried carries no new
	// information: let the escalation run its course (otherwise a source
	// that keeps naming a dead primary pins us in a retry loop forever).
	same := st.primary == addr
	st.primary = addr
	if same {
		return
	}
	if st.phase >= r.phasePrimary() {
		// A genuinely new primary invalidates retries burned against the
		// old (dead) address: re-target the in-flight retry at the new
		// primary immediately instead of letting MaxRetries expire against
		// a host that will never answer.
		st.phase = r.phasePrimary()
		st.retries = 0
		if st.retryArmed {
			st.retryArmed = false
			st.retryTimer.Stop()
			r.requestRetransmission(st)
		}
	}
}

// onReparent adopts a recovered tier node back into the receiver's
// escalation chain (graceful degradation, DESIGN.md §13): a logger at
// tier t re-announcing itself replaces chain[t] so subsequent tier-t
// NACKs land at the live node. Two fences keep stale announcements out:
// the per-tier tree epoch rejects replays, and the stamped primary epoch
// (when present) rejects announcers partitioned behind a primary
// failover.
func (r *Receiver) onReparent(p *wire.Packet) {
	// chain[i] holds the logger at global tier i (chain[0] = site
	// secondary), so the announcer's tier is its chain slot directly.
	// Tier-0 loggers never announce, and the primary tier (== len(chain))
	// is owned by the redirect protocol, not reparenting.
	t := p.Tier()
	if t < 1 || t >= len(r.chain) {
		return
	}
	addr, err := r.env.ParseAddr(p.Addr)
	if err != nil {
		r.stats.Malformed++
		return
	}
	if (p.Epoch != 0 && p.Epoch < r.priEpochHigh) || p.TreeEpoch <= r.tierEpochs[t] {
		r.stats.StaleReparents++
		r.mx.staleReparents.Inc()
		r.mx.sink.Emit(r.now(), obs.KindReparent, uint64(t), uint64(p.TreeEpoch), 0)
		return
	}
	// A fresh tree epoch is an adoption even at an unchanged address: a
	// restarted logger re-announcing from the same host wants pending
	// retries back just as much as a replacement on a new one.
	r.tierEpochs[t] = p.TreeEpoch
	r.chain[t] = addr
	r.stats.ReparentsFollowed++
	r.mx.reparents.Inc()
	r.mx.sink.Emit(r.now(), obs.KindReparent, uint64(t), uint64(p.TreeEpoch), 1)
	// Any stream currently retrying the replaced tier re-fires at the live
	// node immediately instead of burning out its backoff there.
	for _, st := range r.streams {
		if st.phase == t && st.retryArmed {
			st.retries = 0
			st.retryArmed = false
			st.retryTimer.Stop()
			r.requestRetransmission(st)
		}
	}
}
