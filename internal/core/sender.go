// Package core implements the LBRM protocol endpoints: the multicast
// Sender (§2: sequence numbers, MaxIT/variable heartbeats, retention until
// the primary logger acknowledges, statistical acknowledgement §2.3,
// primary failover §2.2.3) and the Receiver (loss detection by sequence
// gap or idle timeout, hierarchical recovery through the logging service,
// freshness tracking).
//
// Both are transport.Handlers: reactive state machines that run unchanged
// over the deterministic simulator and real UDP multicast.
package core

import (
	"errors"
	"fmt"
	"sort"
	"time"

	"lbrm/internal/estimator"
	"lbrm/internal/heartbeat"
	"lbrm/internal/obs"
	"lbrm/internal/transport"
	"lbrm/internal/vtime"
	"lbrm/internal/wire"
)

// Durability selects when the sender may release a retained packet (§2.2.3).
type Durability int

const (
	// ReleaseOnPrimaryAck frees a packet once the primary logger has it
	// (the paper's base behaviour: "the sender's application may continue
	// processing").
	ReleaseOnPrimaryAck Durability = iota
	// ReleaseOnReplicaAck additionally waits for the replicated-logger
	// sequence number, guaranteeing the log survives a primary failure.
	ReleaseOnReplicaAck
)

// hotlistPruneFloor is the decayed-activity score below which a tracked
// acker is evicted from the faulty-acker hotlist at each selection round:
// well under one activation, far below any faulty threshold.
const hotlistPruneFloor = 0.05

// StatAckConfig tunes statistical acknowledgement (§2.3). The zero value
// disables it.
type StatAckConfig struct {
	// Enabled turns the mechanism on.
	Enabled bool
	// K is the desired positive acknowledgements per packet (5–20).
	K int
	// EpochInterval rotates Designated Ackers this often.
	EpochInterval time.Duration
	// EpochPackets rotates after this many data packets, whichever of the
	// two triggers first (0 disables the packet trigger).
	EpochPackets int
	// RTT configures the t_wait estimator.
	RTT estimator.RTTConfig
	// GroupSize configures the N_sl estimator.
	GroupSize estimator.GroupSizeConfig
	// Probe configures the bootstrap population probing; probing is
	// skipped when GroupSize.Initial is set.
	Probe estimator.ProbePlan
	// ProbeInterval spaces bootstrap probe rounds.
	ProbeInterval time.Duration
	// RemcastSiteThreshold: a missing ACK triggers an immediate multicast
	// retransmission when the missing ackers represent strictly more than
	// this many sites (N_sl/k sites per acker). With 25 sites per acker
	// one missing ACK warrants a multicast; with 1 site per acker it does
	// not (§2.3.2's 500-site vs 20-site examples).
	RemcastSiteThreshold float64
	// NackRemcastThreshold: distinct NACK requesters for one packet that
	// make the source re-multicast instead of relying on unicast repair.
	NackRemcastThreshold int
	// HotlistHalfLife and HotlistThreshold configure faulty-acker
	// detection; zero values take defaults.
	HotlistHalfLife  time.Duration
	HotlistThreshold float64
	// FlowControl enables the paper's §5 future-work idea: "use
	// statistical acknowledgement information to slow down the sender
	// during periods of high loss." The sender keeps an EWMA of the
	// missing-ACK fraction and advises a pacing delay through
	// Sender.SendDelay; the application applies it.
	FlowControl bool
	// FlowLowWater / FlowHighWater bracket the loss estimate: no delay
	// below the low water mark, maximum delay at or above the high water
	// mark (defaults 0.05 and 0.5).
	FlowLowWater, FlowHighWater float64
	// FlowMaxDelay is the pacing delay at the high water mark (default
	// 4×t_wait at the time of the query).
	FlowMaxDelay time.Duration
}

// SenderConfig configures an LBRM source.
type SenderConfig struct {
	// Source identifies this stream.
	Source wire.SourceID
	// Group is the multicast group data is published to.
	Group wire.GroupID
	// Heartbeat parametrizes the variable heartbeat (§2.1);
	// heartbeat.Fixed(h) yields the fixed-rate baseline.
	Heartbeat heartbeat.Params
	// Primary is the primary logging server. Nil runs the basic
	// receiver-reliable protocol with no logging service (the sender then
	// serves NACKs from its retention buffer only).
	Primary transport.Addr
	// Replicas lists the primary's replicas, for failover.
	Replicas []transport.Addr
	// Durability selects the retention release rule.
	Durability Durability
	// RetainLimit caps retained unreleased packets; Send fails beyond it.
	RetainLimit int
	// StatAck tunes statistical acknowledgement.
	StatAck StatAckConfig
	// InlineHeartbeatMax: payloads up to this size ride inside heartbeat
	// packets (0 disables; paper §7 extension).
	InlineHeartbeatMax int
	// RetransChannel enables the paper's §7 retransmission-channel
	// extension: every data packet is replayed on this separate multicast
	// group with exponentially backed-off spacing, so receivers can
	// recover losses by subscribing instead of sending NACKs. 0 disables.
	RetransChannel wire.GroupID
	// RetransRepeats is how many times each packet is replayed (default 3).
	RetransRepeats int
	// RetransStart is the delay to the first replay; the i-th replay
	// happens RetransStart·2^i after the original transmission (default
	// Heartbeat.HMin).
	RetransStart time.Duration
	// FailoverTimeout: with unacknowledged retained packets and no
	// SourceAck for this long, the sender starts primary failover
	// (0 disables failover).
	FailoverTimeout time.Duration
	// FailoverWait is how long to collect LogStateReplies before
	// promoting the best replica.
	FailoverWait time.Duration
	// Obs receives metrics and trace events (nil = uninstrumented; the
	// send path stays zero-allocation either way, see DESIGN.md §9).
	Obs *obs.Sink
}

func (c SenderConfig) withDefaults() SenderConfig {
	if c.Heartbeat == (heartbeat.Params{}) {
		c.Heartbeat = heartbeat.DefaultParams
	}
	if c.RetainLimit == 0 {
		c.RetainLimit = 4096
	}
	if c.StatAck.Enabled {
		if c.StatAck.K == 0 {
			c.StatAck.K = 20
		}
		if c.StatAck.EpochInterval == 0 {
			c.StatAck.EpochInterval = 30 * time.Second
		}
		if c.StatAck.ProbeInterval == 0 {
			c.StatAck.ProbeInterval = 500 * time.Millisecond
		}
		if c.StatAck.RemcastSiteThreshold == 0 {
			c.StatAck.RemcastSiteThreshold = 1
		}
		if c.StatAck.NackRemcastThreshold == 0 {
			c.StatAck.NackRemcastThreshold = 3
		}
		if c.StatAck.HotlistHalfLife == 0 {
			c.StatAck.HotlistHalfLife = 4 * c.StatAck.EpochInterval
		}
		if c.StatAck.HotlistThreshold == 0 {
			c.StatAck.HotlistThreshold = 3
		}
		if c.StatAck.GroupSize.K == 0 {
			c.StatAck.GroupSize.K = c.StatAck.K
		}
		if c.StatAck.FlowControl {
			if c.StatAck.FlowLowWater == 0 {
				c.StatAck.FlowLowWater = 0.05
			}
			if c.StatAck.FlowHighWater == 0 {
				c.StatAck.FlowHighWater = 0.5
			}
		}
	}
	if c.RetransChannel != 0 {
		if c.RetransRepeats == 0 {
			c.RetransRepeats = 3
		}
		if c.RetransStart == 0 {
			c.RetransStart = c.Heartbeat.HMin
		}
	}
	if c.FailoverWait == 0 {
		c.FailoverWait = time.Second
	}
	return c
}

// SenderStats counts a sender's protocol activity.
type SenderStats struct {
	DataSent          uint64
	HeartbeatsSent    uint64
	InlineHeartbeats  uint64
	AcksReceived      uint64
	AcksIgnoredFaulty uint64
	StatRemulticasts  uint64 // re-multicasts triggered by missing ACKs
	NackRemulticasts  uint64 // re-multicasts triggered by NACK volume
	RetransUnicast    uint64
	NacksReceived     uint64
	SourceAcks        uint64
	EpochsStarted     uint64
	AckerResponses    uint64
	ProbesSent        uint64
	ProbeResponses    uint64
	Failovers         uint64
	RedirectsServed   uint64
	StaleSourceAcks   uint64 // acks fenced for carrying an old primary epoch
	ChannelReplays    uint64 // retransmission-channel replays (§7)
	SendErrors        uint64
	Malformed         uint64
}

// ErrRetainLimit is returned by Send when the retention buffer is full
// (the logging service is not keeping up or is unreachable).
var ErrRetainLimit = errors.New("core: retention buffer full")

// ErrNotStarted is returned by Send before Start.
var ErrNotStarted = errors.New("core: sender not started")

// Sender is an LBRM multicast source.
type Sender struct {
	cfg SenderConfig
	env transport.Env

	seq      uint64
	lastData *wire.Packet // most recent data packet (for inline heartbeats)
	schedule *heartbeat.Schedule
	hbTimer  vtime.Timer

	// Retention until the logging service acknowledges.
	retained     map[uint64]*retainedPkt
	primaryAcked uint64 // cumulative primary logger seq
	replicaAcked uint64 // cumulative replicated logger seq
	released     uint64 // highest seq ever released from retention
	lastAckAt    time.Time
	// retainSince is when retention last became nonempty. The failover
	// liveness check measures ack-idleness from whichever of lastAckAt /
	// retainSince is later: at send intervals longer than FailoverTimeout
	// the previous ack is legitimately a full interval old the moment a
	// new packet enters retention, and the primary deserves a fresh
	// FailoverTimeout to acknowledge it.
	retainSince time.Time

	primary transport.Addr
	// primaryEpoch is the fencing token (§2.2.3): minted (incremented) at
	// every completed failover, stamped on every authority-bearing message,
	// and piggybacked on heartbeats so stale primaries self-demote.
	primaryEpoch uint32
	failover     *failoverState
	// foProbes counts consecutive failover probe rounds with no replica
	// reply, driving the re-probe backoff.
	foProbes int

	// Statistical acknowledgement.
	epoch        uint32
	ackers       map[transport.Addr]bool // current epoch's Designated Ackers
	nextAckers   map[transport.Addr]bool // collecting for the next epoch
	epochPackets int
	selecting    bool
	rtt          *estimator.RTT
	groupSize    *estimator.GroupSize
	prober       *estimator.Prober
	probeID      uint32
	probeCount   int
	hotlist      *estimator.Hotlist[transport.Addr]
	pending      map[uint64]*pendingAck
	// lossEWMA tracks the missing-ACK fraction for flow control (§5).
	lossEWMA float64

	// NACK-demand re-multicast bookkeeping.
	nackDemand map[uint64]*nackWindow

	stopped bool
	// scratch is the reusable wire-encoding buffer: both transport
	// bindings copy the datagram before returning, so reuse is safe.
	scratch []byte
	// dec recycles NACK range storage across decodes.
	dec   wire.Decoder
	stats SenderStats
	// mx caches the preregistered metric handles (all nil-safe).
	mx senderMetrics
}

// senderMetrics holds the sender's preregistered observability handles.
type senderMetrics struct {
	sink            *obs.Sink
	tx              *obs.ClassCounters
	dataSent        *obs.Counter
	heartbeats      *obs.Counter
	inlineHbs       *obs.Counter
	acks            *obs.Counter
	acksFaulty      *obs.Counter
	statRemcasts    *obs.Counter
	nackRemcasts    *obs.Counter
	retransUnicast  *obs.Counter
	nacksRx         *obs.Counter
	sourceAcks      *obs.Counter
	staleSourceAcks *obs.Counter
	epochs          *obs.Counter
	failovers       *obs.Counter
	channelReplays  *obs.Counter
	sendErrors      *obs.Counter
	primaryEpoch    *obs.Gauge
	statEpoch       *obs.Gauge
	twaitNS         *obs.Gauge
	nsl             *obs.Gauge
	packPPM         *obs.Gauge
	ackerCount      *obs.Gauge
	hbInterval      *obs.Histogram
	// statDelay measures send→re-multicast delay when a missing
	// statistical ACK triggers the §2.3.2 immediate retransmission.
	statDelay *obs.Histogram
}

// heartbeatBoundsMS buckets the variable-heartbeat interval (§2.1): the
// distribution should show mass near HMin right after data and near HMax
// during idle, which is the paper's bandwidth argument in histogram form.
var heartbeatBoundsMS = []uint64{10, 25, 50, 100, 250, 500, 1000, 2500, 5000}

func newSenderMetrics(sink *obs.Sink) senderMetrics {
	return senderMetrics{
		sink:            sink,
		tx:              sink.Classes("sender.tx", wire.TrafficClassNames()),
		dataSent:        sink.Counter("sender.data_sent"),
		heartbeats:      sink.Counter("sender.heartbeats"),
		inlineHbs:       sink.Counter("sender.inline_heartbeats"),
		acks:            sink.Counter("sender.acks"),
		acksFaulty:      sink.Counter("sender.acks_ignored_faulty"),
		statRemcasts:    sink.Counter("sender.stat_remulticasts"),
		nackRemcasts:    sink.Counter("sender.nack_remulticasts"),
		retransUnicast:  sink.Counter("sender.retrans_unicast"),
		nacksRx:         sink.Counter("sender.nacks_received"),
		sourceAcks:      sink.Counter("sender.source_acks"),
		staleSourceAcks: sink.Counter("sender.fence.stale_source_acks"),
		epochs:          sink.Counter("sender.epochs_started"),
		failovers:       sink.Counter("sender.failovers"),
		channelReplays:  sink.Counter("sender.channel_replays"),
		sendErrors:      sink.Counter("sender.send_errors"),
		primaryEpoch:    sink.Gauge("sender.primary_epoch"),
		statEpoch:       sink.Gauge("sender.stat_epoch"),
		twaitNS:         sink.Gauge("sender.twait_ns"),
		nsl:             sink.Gauge("sender.nsl"),
		packPPM:         sink.Gauge("sender.pack_ppm"),
		ackerCount:      sink.Gauge("sender.ackers"),
		hbInterval:      sink.Histogram("sender.heartbeat_interval_ms", heartbeatBoundsMS),
		statDelay:       sink.Histogram("sender.recovery.multicast_retrans.delay_ms", recoveryBoundsMS),
	}
}

// syncEstimates publishes the current estimator state as gauges.
func (s *Sender) syncEstimates() {
	if s.rtt != nil {
		s.mx.twaitNS.Set(int64(s.rtt.TWait()))
	}
	if s.groupSize != nil {
		s.mx.nsl.Set(int64(s.groupSize.Estimate() + 0.5))
		s.mx.packPPM.Set(int64(s.groupSize.PAck() * 1e6))
	}
	s.mx.ackerCount.Set(int64(len(s.ackers)))
}

// now returns the environment clock in nanoseconds (0 before Start).
func (s *Sender) now() int64 {
	if s.env == nil {
		return 0
	}
	return s.env.Now().UnixNano()
}

type retainedPkt struct {
	seq     uint64
	payload []byte
}

type pendingAck struct {
	seq    uint64
	sentAt time.Time
	epoch  uint32
	// payload is held until the t_wait deadline so a re-multicast is
	// possible even after the primary's ack released the retention copy.
	payload  []byte
	expected int
	acks     map[transport.Addr]bool
	timer    vtime.Timer
}

type nackWindow struct {
	requesters  map[transport.Addr]bool
	remulticast bool
}

// NewSender returns a sender for cfg.
func NewSender(cfg SenderConfig) (*Sender, error) {
	cfg = cfg.withDefaults()
	if err := cfg.Heartbeat.Validate(); err != nil {
		return nil, err
	}
	s := &Sender{
		cfg:        cfg,
		retained:   make(map[uint64]*retainedPkt),
		pending:    make(map[uint64]*pendingAck),
		nackDemand: make(map[uint64]*nackWindow),
		primary:    cfg.Primary,
		ackers:     make(map[transport.Addr]bool),
		mx:         newSenderMetrics(cfg.Obs),
	}
	if cfg.Primary != nil {
		// Epoch 1 is the configured primary's authority; every failover
		// mints the next one.
		s.primaryEpoch = 1
	}
	s.mx.primaryEpoch.Set(int64(s.primaryEpoch))
	var err error
	if s.schedule, err = heartbeat.NewSchedule(cfg.Heartbeat); err != nil {
		return nil, err
	}
	if cfg.StatAck.Enabled {
		if s.rtt, err = estimator.NewRTT(cfg.StatAck.RTT); err != nil {
			return nil, err
		}
		if s.groupSize, err = estimator.NewGroupSize(cfg.StatAck.GroupSize); err != nil {
			return nil, err
		}
		s.hotlist = estimator.NewHotlist[transport.Addr](
			cfg.StatAck.HotlistHalfLife, cfg.StatAck.HotlistThreshold)
	}
	return s, nil
}

// Stats returns a snapshot of the sender's counters.
func (s *Sender) Stats() SenderStats { return s.stats }

// Stop halts the sender: heartbeats, epoch rotation, replays and failover
// cease; Send returns ErrNotStarted afterwards. Safe to call once.
func (s *Sender) Stop() {
	s.stopped = true
	if s.hbTimer != nil {
		s.hbTimer.Stop()
	}
}

// after schedules fn guarded by the stopped flag, so a stopped sender's
// timer chains die out.
func (s *Sender) after(d time.Duration, fn func()) vtime.Timer {
	return s.env.AfterFunc(d, func() {
		if !s.stopped {
			fn()
		}
	})
}

// LastSeq returns the last data sequence number sent.
func (s *Sender) LastSeq() uint64 { return s.seq }

// Retained returns the number of unreleased packets.
func (s *Sender) Retained() int { return len(s.retained) }

// Epoch returns the current statistical-ack epoch (0 before the first).
func (s *Sender) Epoch() uint32 { return s.epoch }

// PrimaryEpoch returns the current primary-authority epoch: 0 with no
// logging service, 1 for the configured primary, +1 per completed failover.
func (s *Sender) PrimaryEpoch() uint32 { return s.primaryEpoch }

// AckerCount returns the number of Designated Ackers in the current epoch.
func (s *Sender) AckerCount() int { return len(s.ackers) }

// GroupSizeEstimate returns the current N_sl estimate (0 when unknown or
// statistical acking is off).
func (s *Sender) GroupSizeEstimate() float64 {
	if s.groupSize == nil {
		return 0
	}
	return s.groupSize.Estimate()
}

// TWait returns the current t_wait (0 when statistical acking is off).
func (s *Sender) TWait() time.Duration {
	if s.rtt == nil {
		return 0
	}
	return s.rtt.TWait()
}

// LossEstimate returns the EWMA of the missing-ACK fraction observed
// through statistical acknowledgement (0 when disabled or lossless).
func (s *Sender) LossEstimate() float64 { return s.lossEWMA }

// SendDelay advises how long the application should pace before its next
// Send, per the §5 flow-control extension: zero below the low water mark,
// scaling linearly to FlowMaxDelay at the high water mark. It is advisory;
// Send itself never blocks.
func (s *Sender) SendDelay() time.Duration {
	if !s.cfg.StatAck.FlowControl {
		return 0
	}
	lo, hi := s.cfg.StatAck.FlowLowWater, s.cfg.StatAck.FlowHighWater
	if s.lossEWMA <= lo {
		return 0
	}
	frac := (s.lossEWMA - lo) / (hi - lo)
	if frac > 1 {
		frac = 1
	}
	maxDelay := s.cfg.StatAck.FlowMaxDelay
	if maxDelay == 0 {
		maxDelay = 4 * s.rtt.TWait()
	}
	return time.Duration(frac * float64(maxDelay))
}

// observeLoss folds one packet's missing-ACK fraction into the flow
// control estimate.
func (s *Sender) observeLoss(sample float64) {
	const alpha = 1.0 / 8
	s.lossEWMA = alpha*sample + (1-alpha)*s.lossEWMA
}

// Start implements transport.Handler.
func (s *Sender) Start(env transport.Env) {
	s.env = env
	s.lastAckAt = env.Now()
	// MaxIT guarantee: heartbeats flow even before the first data packet.
	s.armHeartbeat(s.schedule.OnData())
	if s.cfg.StatAck.Enabled {
		if s.cfg.StatAck.GroupSize.Initial > 0 {
			s.startEpoch()
		} else {
			s.prober = estimator.NewProber(s.cfg.StatAck.Probe)
			s.probeRound()
		}
	}
	if s.cfg.FailoverTimeout > 0 && s.primary != nil {
		s.armFailoverCheck(0)
	}
}

// Send multicasts one application payload, assigning it the next sequence
// number. It returns the sequence number.
func (s *Sender) Send(payload []byte) (uint64, error) {
	if s.env == nil || s.stopped {
		return 0, ErrNotStarted
	}
	if len(payload) > wire.MaxPayloadLen {
		return 0, fmt.Errorf("core: payload %d exceeds max %d", len(payload), wire.MaxPayloadLen)
	}
	if len(s.retained) >= s.cfg.RetainLimit {
		s.stats.SendErrors++
		return 0, ErrRetainLimit
	}
	s.seq++
	seq := s.seq
	p := wire.Packet{
		Type: wire.TypeData, Source: s.cfg.Source, Group: s.cfg.Group,
		Seq: seq, Epoch: s.epoch, Payload: payload,
	}
	s.multicast(&p)
	s.stats.DataSent++
	s.mx.dataSent.Inc()
	s.lastData = &p
	if len(s.retained) == 0 {
		s.retainSince = s.env.Now()
	}
	s.retained[seq] = &retainedPkt{seq: seq, payload: append([]byte(nil), payload...)}
	s.epochPackets++
	if s.cfg.RetransChannel != 0 {
		s.scheduleChannelReplays(&p)
	}
	s.armHeartbeat(s.schedule.OnData())
	if s.cfg.StatAck.Enabled && s.epoch > 0 {
		s.trackAcks(&p)
		if s.cfg.StatAck.EpochPackets > 0 && s.epochPackets >= s.cfg.StatAck.EpochPackets && !s.selecting {
			s.beginSelection()
		}
	}
	return seq, nil
}

// Recv implements transport.Handler.
func (s *Sender) Recv(from transport.Addr, data []byte) {
	var p wire.Packet
	// The shared Decoder recycles NACK range storage across packets:
	// p.Ranges is dead once this call returns, so the alias is safe.
	if err := s.dec.Unmarshal(data, &p); err != nil {
		s.stats.Malformed++
		return
	}
	if p.Source != s.cfg.Source || p.Group != s.cfg.Group {
		return
	}
	switch p.Type {
	case wire.TypeSourceAck:
		s.onSourceAck(&p)
	case wire.TypeAck:
		s.onAck(from, &p)
	case wire.TypeAckerResponse:
		s.onAckerResponse(from, &p)
	case wire.TypeSizeProbeResponse:
		s.onProbeResponse(&p)
	case wire.TypeNack:
		s.onNack(from, &p)
	case wire.TypePrimaryQuery:
		s.onPrimaryQuery(from)
	case wire.TypeLogStateReply:
		s.onLogStateReply(from, &p)
	}
}

// --- heartbeats ---

// armHeartbeat (re)schedules the next heartbeat. The timer handle is
// allocated once and Reset thereafter: this runs after every data packet,
// so Stop+AfterFunc here would allocate a timer plus closure per send.
func (s *Sender) armHeartbeat(d time.Duration) {
	if s.hbTimer != nil {
		s.hbTimer.Reset(d)
		return
	}
	s.hbTimer = s.after(d, s.fireHeartbeat)
}

func (s *Sender) fireHeartbeat() {
	p := wire.Packet{
		Type: wire.TypeHeartbeat, Source: s.cfg.Source, Group: s.cfg.Group,
		Seq: s.seq, Epoch: s.epoch,
	}
	next := s.schedule.OnHeartbeat()
	p.HeartbeatIdx = s.schedule.Index()
	p.PrimaryEpoch = s.primaryEpoch
	if s.cfg.InlineHeartbeatMax > 0 && s.lastData != nil &&
		len(s.lastData.Payload) <= s.cfg.InlineHeartbeatMax {
		p.Flags |= wire.FlagInlineData
		p.Payload = s.lastData.Payload
		s.stats.InlineHeartbeats++
		s.mx.inlineHbs.Inc()
	}
	s.multicast(&p)
	s.stats.HeartbeatsSent++
	s.mx.heartbeats.Inc()
	s.mx.hbInterval.Observe(uint64(next / time.Millisecond))
	s.hbTimer.Reset(next)
}

// --- retention & primary ack ---

func (s *Sender) onSourceAck(p *wire.Packet) {
	if p.Epoch < s.primaryEpoch {
		// Fenced: a demoted-but-unaware primary is still acking. Its acks
		// must neither move watermarks nor refresh lastAckAt — a zombie
		// refreshing the idle clock would mask the very failure that minted
		// the newer epoch.
		s.stats.StaleSourceAcks++
		s.mx.staleSourceAcks.Inc()
		s.mx.sink.Emit(s.now(), obs.KindFenceHit, uint64(s.primaryEpoch), uint64(p.Epoch), uint64(p.Type))
		return
	}
	s.stats.SourceAcks++
	s.mx.sourceAcks.Inc()
	s.lastAckAt = s.env.Now()
	if p.Seq > s.primaryAcked {
		s.primaryAcked = p.Seq
	}
	if p.ReplicaSeq > s.replicaAcked {
		s.replicaAcked = p.ReplicaSeq
	}
	release := s.primaryAcked
	if s.cfg.Durability == ReleaseOnReplicaAck && s.replicaAcked < release {
		release = s.replicaAcked
	}
	if release > s.released {
		s.released = release
		// Release progress resets the failover backoff. A bare ack without
		// progress deliberately does not: a just-promoted cold replica acks
		// immediately (liveness) but may be backfilling for a while, and
		// each fruitless failover round must keep backing off or the sender
		// re-elects every FailoverTimeout while the log recovers.
		s.foProbes = 0
	}
	for seq := range s.retained {
		if seq <= release {
			delete(s.retained, seq)
		}
	}
}

// onNack serves retransmission requests from the retention buffer (the
// primary recovering its own losses, or receivers in the no-logger basic
// mode). Heavy distinct demand for one packet triggers a re-multicast.
func (s *Sender) onNack(from transport.Addr, p *wire.Packet) {
	s.stats.NacksReceived++
	s.mx.nacksRx.Inc()
	const budget = 1024
	n := 0
	for _, r := range p.Ranges {
		for seq := r.From; seq <= r.To && n < budget; seq++ {
			n++
			s.serveNack(from, seq)
		}
	}
}

func (s *Sender) serveNack(from transport.Addr, seq uint64) {
	rp := s.retained[seq]
	if rp == nil {
		return // released: the logging service has it
	}
	out := wire.Packet{
		Type: wire.TypeRetrans, Flags: wire.FlagRetransmission,
		Source: s.cfg.Source, Group: s.cfg.Group, Seq: seq, Payload: rp.payload,
	}
	if s.cfg.StatAck.Enabled {
		w := s.nackDemand[seq]
		if w == nil {
			w = &nackWindow{requesters: make(map[transport.Addr]bool)}
			s.nackDemand[seq] = w
			s.after(time.Second, func() { delete(s.nackDemand, seq) })
		}
		w.requesters[from] = true
		if w.remulticast {
			return
		}
		if len(w.requesters) >= s.cfg.StatAck.NackRemcastThreshold {
			w.remulticast = true
			s.multicast(&out)
			s.stats.NackRemulticasts++
			s.mx.nackRemcasts.Inc()
			s.mx.sink.EmitFlight(s.now(), obs.KindServe, seq, uint64(wire.PathSourceMulticast), 1)
			return
		}
	}
	s.send(from, &out)
	s.stats.RetransUnicast++
	s.mx.retransUnicast.Inc()
	s.mx.sink.EmitFlight(s.now(), obs.KindServe, seq, uint64(wire.PathSourceMulticast), 0)
}

// scheduleChannelReplays arms the §7 retransmission-channel replays for a
// just-sent data packet: the i-th replay goes out RetransStart·2^i after
// the original transmission, on the dedicated channel. The wire header
// keeps the data group so receivers file it under the right stream.
func (s *Sender) scheduleChannelReplays(p *wire.Packet) {
	replay := wire.Packet{
		Type: wire.TypeRetrans, Flags: wire.FlagRetransmission,
		Source: p.Source, Group: p.Group, Seq: p.Seq, Epoch: p.Epoch,
		Payload: p.Payload, // marshalled below, before this call returns
	}
	// The encoded buffer outlives this call (the replay timers hold it), so
	// it cannot use the shared scratch: marshal once into a fresh buffer
	// instead of copying the payload and then marshalling the copy.
	buf, err := replay.AppendMarshal(nil)
	if err != nil {
		s.stats.SendErrors++
		return
	}
	delay := s.cfg.RetransStart
	for i := 0; i < s.cfg.RetransRepeats; i++ {
		s.after(delay, func() {
			s.mx.tx.Record(int(wire.ClassRetrans), len(buf))
			if err := s.env.Multicast(s.cfg.RetransChannel, transport.TTLGlobal, buf); err != nil {
				s.stats.SendErrors++
				s.mx.sendErrors.Inc()
				return
			}
			s.stats.ChannelReplays++
			s.mx.channelReplays.Inc()
			s.mx.sink.EmitFlight(s.now(), obs.KindServe, replay.Seq, uint64(wire.PathSourceMulticast), 1)
		})
		delay *= 2
	}
}

// --- statistical acknowledgement ---

// probeRound runs one Bolot bootstrap round (§2.3.3).
func (s *Sender) probeRound() {
	pAck, ok := s.prober.NextProbe()
	if !ok {
		est := s.prober.Estimate()
		s.groupSize.Seed(est)
		s.startEpoch()
		return
	}
	s.probeID++
	s.probeCount = 0
	probe := wire.Packet{
		Type: wire.TypeSizeProbe, Source: s.cfg.Source, Group: s.cfg.Group,
		ProbeID: s.probeID, PAck: pAck,
	}
	s.multicast(&probe)
	s.stats.ProbesSent++
	s.after(s.cfg.StatAck.ProbeInterval, func() {
		s.prober.ObserveRound(s.probeCount)
		s.probeRound()
	})
}

func (s *Sender) onProbeResponse(p *wire.Packet) {
	if p.ProbeID == s.probeID {
		s.probeCount++
		s.stats.ProbeResponses++
	}
}

// startEpoch announces epoch+1 via an Acker Selection Packet and collects
// responses for a selection window before switching (§2.3.1, Figure 8).
func (s *Sender) startEpoch() {
	s.beginSelection()
}

func (s *Sender) beginSelection() {
	if s.selecting {
		return
	}
	s.selecting = true
	// One selection round per epoch is the natural cadence for bounding the
	// faulty-acker hotlist: entries that decayed to noise are evicted, so
	// the map tracks recently-active ackers, not every addr ever heard.
	s.hotlist.Prune(s.env.Now(), hotlistPruneFloor)
	next := s.epoch + 1
	pAck := s.groupSize.PAck()
	sel := wire.Packet{
		Type: wire.TypeAckerSelect, Source: s.cfg.Source, Group: s.cfg.Group,
		Epoch: next, PAck: pAck, K: uint16(s.cfg.StatAck.K),
	}
	s.nextAckers = make(map[transport.Addr]bool)
	s.multicast(&sel)
	s.mx.sink.Emit(s.now(), obs.KindDASet,
		uint64(next), uint64(pAck*1e6), uint64(s.groupSize.Estimate()+0.5))
	wait := 2 * s.rtt.TWait()
	s.after(wait, func() { s.finishSelection(next, pAck) })
}

func (s *Sender) finishSelection(next uint32, pAck float64) {
	if len(s.nextAckers) == 0 {
		// Nobody volunteered (loggers not up yet, or the selection packet
		// was lost): retry soon without burning the epoch number.
		s.nextAckers = nil
		s.selecting = false
		retry := 2 * s.rtt.TWait()
		if retry < 500*time.Millisecond {
			retry = 500 * time.Millisecond
		}
		s.after(retry, func() {
			if !s.selecting {
				s.beginSelection()
			}
		})
		return
	}
	// Responses to the selection double as a population probe.
	s.groupSize.Observe(len(s.nextAckers), pAck)
	s.epoch = next
	s.epochPackets = 0
	s.ackers = s.nextAckers
	s.nextAckers = nil
	s.selecting = false
	s.stats.EpochsStarted++
	s.mx.epochs.Inc()
	s.mx.statEpoch.Set(int64(s.epoch))
	s.syncEstimates()
	s.after(s.cfg.StatAck.EpochInterval, func() {
		if !s.selecting {
			s.beginSelection()
		}
	})
}

func (s *Sender) onAckerResponse(from transport.Addr, p *wire.Packet) {
	if s.nextAckers == nil || p.Epoch != s.epoch+1 {
		return
	}
	now := s.env.Now()
	s.hotlist.Record(from, now)
	if s.hotlist.Faulty(from, now) {
		s.stats.AcksIgnoredFaulty++
		s.mx.acksFaulty.Inc()
		return
	}
	s.nextAckers[from] = true
	s.stats.AckerResponses++
}

// trackAcks sets up the per-packet t_wait deadline for a just-sent data
// packet.
func (s *Sender) trackAcks(p *wire.Packet) {
	if len(s.ackers) == 0 {
		return
	}
	pa := &pendingAck{
		seq: p.Seq, sentAt: s.env.Now(), epoch: p.Epoch,
		payload:  append([]byte(nil), p.Payload...),
		expected: len(s.ackers),
		acks:     make(map[transport.Addr]bool),
	}
	s.pending[p.Seq] = pa
	pa.timer = s.after(s.rtt.TWait(), func() { s.ackDeadline(pa) })
}

func (s *Sender) onAck(from transport.Addr, p *wire.Packet) {
	pa := s.pending[p.Seq]
	if pa == nil {
		return
	}
	if !s.ackers[from] {
		s.stats.AcksIgnoredFaulty++
		s.mx.acksFaulty.Inc()
		return // not a Designated Acker for this epoch (or faulty)
	}
	if pa.acks[from] {
		return
	}
	pa.acks[from] = true
	s.stats.AcksReceived++
	s.mx.acks.Inc()
	if len(pa.acks) >= pa.expected {
		// All expected ACKs in: sample the RTT and retire the packet.
		s.rtt.Observe(s.env.Now().Sub(pa.sentAt))
		s.observeLoss(0)
		s.syncEstimates()
		pa.timer.Stop()
		delete(s.pending, pa.seq)
	}
}

// ackDeadline fires t_wait after a data packet: missing ACKs mean the
// packet plausibly missed whole sites, so re-multicast it immediately when
// the missing ackers represent enough sites (§2.3.2).
func (s *Sender) ackDeadline(pa *pendingAck) {
	delete(s.pending, pa.seq)
	missing := pa.expected - len(pa.acks)
	if missing <= 0 {
		return
	}
	// Cap the RTT sample: the last ACK "arrived" at 2×t_wait.
	s.rtt.Observe(s.rtt.Cap())
	s.observeLoss(float64(missing) / float64(pa.expected))
	s.syncEstimates()
	sitesPerAcker := 1.0
	if est := s.groupSize.Estimate(); est > 0 && pa.expected > 0 {
		sitesPerAcker = est / float64(pa.expected)
	}
	s.mx.sink.EmitFlight(s.now(), obs.KindStatMiss, pa.seq, uint64(missing), uint64(pa.expected))
	if float64(missing)*sitesPerAcker > s.cfg.StatAck.RemcastSiteThreshold {
		out := wire.Packet{
			Type: wire.TypeRetrans, Flags: wire.FlagRetransmission,
			Source: s.cfg.Source, Group: s.cfg.Group, Seq: pa.seq,
			Epoch: pa.epoch, Payload: pa.payload,
		}
		s.multicast(&out)
		s.stats.StatRemulticasts++
		s.mx.statRemcasts.Inc()
		s.mx.sink.EmitFlight(s.now(), obs.KindServe, pa.seq, uint64(wire.PathSourceMulticast), 1)
		s.mx.statDelay.Observe(uint64(s.env.Now().Sub(pa.sentAt) / time.Millisecond))
	}
}

// --- failover (§2.2.3) ---

// armFailoverCheck schedules the next liveness check, jittered ±25% so a
// fleet of senders that lost the same primary does not probe in lockstep.
// attempt > 0 applies exponential backoff (used for fruitless re-probes
// when no replica answers either — the whole logging service is likely
// partitioned away, so hammering it at a fixed period helps nobody).
func (s *Sender) armFailoverCheck(attempt int) {
	d := transport.Backoff{Base: s.cfg.FailoverTimeout}.Interval(attempt, s.env.Rand())
	s.after(d, s.failoverCheck)
}

func (s *Sender) failoverCheck() {
	if s.failover != nil {
		return
	}
	ackRef := s.lastAckAt
	if s.retainSince.After(ackRef) {
		ackRef = s.retainSince
	}
	idle := s.env.Now().Sub(ackRef)
	if len(s.retained) > 0 && idle >= s.cfg.FailoverTimeout && len(s.cfg.Replicas) > 0 {
		s.beginFailover()
	} else {
		s.armFailoverCheck(s.foProbes)
	}
}

type failoverState struct {
	best     transport.Addr
	bestSeq  uint64
	haveAny  bool
	finished bool
}

func (s *Sender) beginFailover() {
	fo := &failoverState{}
	s.failover = fo
	s.mx.sink.Emit(s.now(), obs.KindFailoverStart, uint64(s.primaryEpoch), uint64(s.foProbes), 0)
	q := wire.Packet{
		Type: wire.TypeLogStateQuery, Source: s.cfg.Source, Group: s.cfg.Group,
	}
	for _, r := range s.cfg.Replicas {
		s.send(r, &q)
	}
	s.after(s.cfg.FailoverWait, func() { s.completeFailover(fo) })
}

func (s *Sender) onLogStateReply(from transport.Addr, p *wire.Packet) {
	fo := s.failover
	if fo == nil || fo.finished {
		return
	}
	if !fo.haveAny || p.Seq > fo.bestSeq {
		fo.haveAny = true
		fo.best = from
		fo.bestSeq = p.Seq
	}
}

func (s *Sender) completeFailover(fo *failoverState) {
	fo.finished = true
	s.failover = nil
	if !fo.haveAny {
		// No replica answered; retry later, backing off per fruitless round.
		s.foProbes++
		s.armFailoverCheck(s.foProbes)
		return
	}
	// Count the election as a probe round too: until the new primary's
	// acks actually advance the release watermark, successive failovers
	// back off — re-electing at a fixed period while a cold replica
	// backfills only thrashes the roster.
	s.foProbes++
	s.stats.Failovers++
	s.mx.failovers.Inc()
	s.primary = fo.best
	// Mint the next primary epoch: the promotion and redirect below carry
	// it, and from here on acks from any older epoch are fenced.
	s.mx.sink.Emit(s.now(), obs.KindEpochBump, uint64(s.primaryEpoch), uint64(s.primaryEpoch+1), 0)
	s.primaryEpoch++
	s.mx.primaryEpoch.Set(int64(s.primaryEpoch))
	s.mx.sink.Emit(s.now(), obs.KindFailoverDone, uint64(s.primaryEpoch), fo.bestSeq, 0)
	// The winning replica just proved liveness by answering the probe:
	// restart the idle clock, or the next check would still see the dead
	// primary's whole silent window and immediately fail over again.
	s.lastAckAt = s.env.Now()
	// Seq carries the retention release watermark: the new primary must
	// hold everything at or below it (this sender cannot re-supply released
	// packets) and backfills any shortfall from its peer replicas.
	prom := wire.Packet{
		Type: wire.TypePromote, Source: s.cfg.Source, Group: s.cfg.Group,
		Seq: s.released, Epoch: s.primaryEpoch,
	}
	s.send(fo.best, &prom)
	// Bring the new primary up to date from the retention buffer, in
	// sequence order: in-order re-supply lets the new primary's log
	// advance contiguously (no gap bookkeeping while it catches up), and
	// keeps the wire trace a pure function of the run's seed.
	resupply := make([]uint64, 0, len(s.retained))
	for seq := range s.retained {
		if seq > fo.bestSeq {
			resupply = append(resupply, seq)
		}
	}
	sort.Slice(resupply, func(i, j int) bool { return resupply[i] < resupply[j] })
	for _, seq := range resupply {
		r := wire.Packet{
			Type: wire.TypeRetrans, Flags: wire.FlagRetransmission,
			Source: s.cfg.Source, Group: s.cfg.Group, Seq: seq, Payload: s.retained[seq].payload,
		}
		s.send(fo.best, &r)
	}
	// Tell the group where the log lives now.
	redir := wire.Packet{
		Type: wire.TypePrimaryRedirect, Source: s.cfg.Source, Group: s.cfg.Group,
		Addr: fo.best.String(), Epoch: s.primaryEpoch,
	}
	s.multicast(&redir)
	s.armFailoverCheck(s.foProbes)
}

func (s *Sender) onPrimaryQuery(from transport.Addr) {
	if s.primary == nil {
		return
	}
	redir := wire.Packet{
		Type: wire.TypePrimaryRedirect, Source: s.cfg.Source, Group: s.cfg.Group,
		Addr: s.primary.String(), Epoch: s.primaryEpoch,
	}
	s.send(from, &redir)
	s.stats.RedirectsServed++
}

// --- plumbing ---

func (s *Sender) multicast(p *wire.Packet) {
	buf, err := p.AppendMarshal(s.scratch[:0])
	if err != nil {
		s.stats.SendErrors++
		s.mx.sendErrors.Inc()
		return
	}
	s.scratch = buf
	s.mx.tx.Record(int(wire.ClassOf(p.Type)), len(buf))
	if err := s.env.Multicast(s.cfg.Group, transport.TTLGlobal, buf); err != nil {
		s.stats.SendErrors++
		s.mx.sendErrors.Inc()
	}
}

func (s *Sender) send(to transport.Addr, p *wire.Packet) {
	buf, err := p.AppendMarshal(s.scratch[:0])
	if err != nil {
		s.stats.SendErrors++
		s.mx.sendErrors.Inc()
		return
	}
	s.scratch = buf
	s.mx.tx.Record(int(wire.ClassOf(p.Type)), len(buf))
	if err := s.env.Send(to, buf); err != nil {
		s.stats.SendErrors++
		s.mx.sendErrors.Inc()
	}
}
