package core

import (
	"errors"
	"testing"
	"time"

	"lbrm/internal/estimator"
	"lbrm/internal/heartbeat"
	"lbrm/internal/transport"
	"lbrm/internal/transport/transporttest"
	"lbrm/internal/wire"
)

const (
	tGroup  = wire.GroupID(3)
	tSource = wire.SourceID(11)
)

var (
	tPrimary  = transporttest.Addr("primary")
	tReplica1 = transporttest.Addr("replica1")
	tReplica2 = transporttest.Addr("replica2")
	tLoggerA  = transporttest.Addr("loggerA")
	tLoggerB  = transporttest.Addr("loggerB")
	tLoggerC  = transporttest.Addr("loggerC")
)

func mustPkt(t *testing.T, p wire.Packet) []byte {
	t.Helper()
	b, err := p.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func newSender(t *testing.T, cfg SenderConfig) (*Sender, *transporttest.Env) {
	t.Helper()
	if cfg.Source == 0 {
		cfg.Source = tSource
	}
	if cfg.Group == 0 {
		cfg.Group = tGroup
	}
	if cfg.Primary == nil {
		cfg.Primary = tPrimary
	}
	s, err := NewSender(cfg)
	if err != nil {
		t.Fatal(err)
	}
	env := transporttest.NewEnv("sender")
	s.Start(env)
	return s, env
}

// hbParams is a fast schedule for tests: 10ms..80ms, backoff 2.
var hbParams = heartbeat.Params{HMin: 10 * time.Millisecond, HMax: 80 * time.Millisecond, Backoff: 2}

func TestSenderSendAssignsSequenceNumbers(t *testing.T) {
	s, env := newSender(t, SenderConfig{Heartbeat: hbParams})
	for i := 1; i <= 3; i++ {
		seq, err := s.Send([]byte{byte(i)})
		if err != nil {
			t.Fatal(err)
		}
		if seq != uint64(i) {
			t.Fatalf("seq = %d, want %d", seq, i)
		}
	}
	pkts := env.McastPackets()
	if len(pkts) != 3 {
		t.Fatalf("multicast %d packets, want 3", len(pkts))
	}
	for i, p := range pkts {
		if p.Type != wire.TypeData || p.Seq != uint64(i+1) || p.Source != tSource {
			t.Fatalf("packet %d = %+v", i, p)
		}
	}
	if env.Mcasts[0].TTL != transport.TTLGlobal {
		t.Fatalf("data TTL = %d, want global", env.Mcasts[0].TTL)
	}
}

func TestSenderHeartbeatScheduleAndReset(t *testing.T) {
	s, env := newSender(t, SenderConfig{Heartbeat: hbParams})
	s.Send([]byte("d1"))
	env.Mcasts = nil
	// Idle 75ms: heartbeats at +10, +30 (10+20), +70 (30+40) → 3.
	env.Advance(75 * time.Millisecond)
	hbs := env.McastPackets()
	if len(hbs) != 3 {
		t.Fatalf("heartbeats = %d, want 3", len(hbs))
	}
	for i, p := range hbs {
		if p.Type != wire.TypeHeartbeat || p.Seq != 1 || p.HeartbeatIdx != uint32(i+1) {
			t.Fatalf("heartbeat %d = %+v", i, p)
		}
	}
	// Data resets the schedule.
	env.Mcasts = nil
	s.Send([]byte("d2"))
	env.Advance(12 * time.Millisecond)
	pkts := env.McastPackets()
	if len(pkts) != 2 || pkts[1].Type != wire.TypeHeartbeat || pkts[1].HeartbeatIdx != 1 {
		t.Fatalf("after reset got %v", pkts)
	}
	if s.Stats().HeartbeatsSent != 4 {
		t.Fatalf("stats = %+v", s.Stats())
	}
}

func TestSenderHeartbeatsBeforeFirstData(t *testing.T) {
	_, env := newSender(t, SenderConfig{Heartbeat: hbParams})
	env.Advance(12 * time.Millisecond)
	pkts := env.McastPackets()
	if len(pkts) != 1 || pkts[0].Type != wire.TypeHeartbeat || pkts[0].Seq != 0 {
		t.Fatalf("pre-data heartbeat = %v", pkts)
	}
}

func TestSenderInlineHeartbeat(t *testing.T) {
	s, env := newSender(t, SenderConfig{Heartbeat: hbParams, InlineHeartbeatMax: 64})
	s.Send([]byte("small"))
	env.Mcasts = nil
	env.Advance(12 * time.Millisecond)
	pkts := env.McastPackets()
	if len(pkts) != 1 || pkts[0].Flags&wire.FlagInlineData == 0 || string(pkts[0].Payload) != "small" {
		t.Fatalf("inline heartbeat = %v", pkts)
	}
	if s.Stats().InlineHeartbeats != 1 {
		t.Fatalf("stats = %+v", s.Stats())
	}
}

func TestSenderRetentionReleasedByPrimaryAck(t *testing.T) {
	s, env := newSender(t, SenderConfig{Heartbeat: hbParams})
	for i := 0; i < 5; i++ {
		s.Send([]byte("x"))
	}
	if s.Retained() != 5 {
		t.Fatalf("Retained = %d, want 5", s.Retained())
	}
	ack := wire.Packet{Type: wire.TypeSourceAck, Source: tSource, Group: tGroup,
		Seq: 3, ReplicaSeq: 3, Epoch: 1}
	s.Recv(tPrimary, mustPkt(t, ack))
	if s.Retained() != 2 {
		t.Fatalf("Retained = %d after ack 3, want 2", s.Retained())
	}
	_ = env
}

func TestSenderReplicaDurabilityHoldsUntilReplicaAck(t *testing.T) {
	s, _ := newSender(t, SenderConfig{Heartbeat: hbParams, Durability: ReleaseOnReplicaAck})
	s.Send([]byte("x"))
	s.Send([]byte("y"))
	ack := wire.Packet{Type: wire.TypeSourceAck, Source: tSource, Group: tGroup,
		Seq: 2, ReplicaSeq: 1, Epoch: 1}
	s.Recv(tPrimary, mustPkt(t, ack))
	if s.Retained() != 1 {
		t.Fatalf("Retained = %d, want 1 (replica behind)", s.Retained())
	}
}

func TestSenderRetainLimit(t *testing.T) {
	s, _ := newSender(t, SenderConfig{Heartbeat: hbParams, RetainLimit: 2})
	s.Send([]byte("a"))
	s.Send([]byte("b"))
	if _, err := s.Send([]byte("c")); !errors.Is(err, ErrRetainLimit) {
		t.Fatalf("err = %v, want ErrRetainLimit", err)
	}
}

func TestSenderServesNackFromRetention(t *testing.T) {
	s, env := newSender(t, SenderConfig{Heartbeat: hbParams})
	s.Send([]byte("keep"))
	env.Sents = nil
	nack := wire.Packet{Type: wire.TypeNack, Source: tSource, Group: tGroup,
		Ranges: []wire.SeqRange{{From: 1, To: 1}}}
	s.Recv(tPrimary, mustPkt(t, nack))
	sents := env.SentPackets()
	if len(sents) != 1 || sents[0].Type != wire.TypeRetrans || string(sents[0].Payload) != "keep" {
		t.Fatalf("retrans = %v", sents)
	}
	// After release, the NACK cannot be served (the log has it).
	ack := wire.Packet{Type: wire.TypeSourceAck, Source: tSource, Group: tGroup, Seq: 1, ReplicaSeq: 1, Epoch: 1}
	s.Recv(tPrimary, mustPkt(t, ack))
	env.Sents = nil
	s.Recv(tPrimary, mustPkt(t, nack))
	if len(env.Sents) != 0 {
		t.Fatal("served NACK for released packet")
	}
}

// statCfg returns a statistical-ack config with known-size bootstrap (no
// probing) for deterministic tests.
func statCfg(k int, initial float64) StatAckConfig {
	return StatAckConfig{
		Enabled:       true,
		K:             k,
		EpochInterval: 10 * time.Second,
		RTT:           estimator.RTTConfig{Initial: 100 * time.Millisecond},
		GroupSize:     estimator.GroupSizeConfig{K: k, Initial: initial},
	}
}

func TestSenderEpochSelection(t *testing.T) {
	s, env := newSender(t, SenderConfig{Heartbeat: hbParams, StatAck: statCfg(20, 3)})
	// Start sent an ACKSEL for epoch 1 (pAck = 1 since N ≤ K).
	pkts := env.McastPackets()
	if len(pkts) != 1 || pkts[0].Type != wire.TypeAckerSelect || pkts[0].Epoch != 1 {
		t.Fatalf("want ACKSEL epoch 1, got %v", pkts)
	}
	if pkts[0].PAck != 1 {
		t.Fatalf("pAck = %v, want 1 for tiny group", pkts[0].PAck)
	}
	// Three loggers respond.
	for _, l := range []transporttest.Addr{tLoggerA, tLoggerB, tLoggerC} {
		resp := wire.Packet{Type: wire.TypeAckerResponse, Source: tSource, Group: tGroup, Epoch: 1}
		s.Recv(l, mustPkt(t, resp))
	}
	if s.Epoch() != 0 {
		t.Fatal("epoch switched before the selection window closed")
	}
	env.Advance(250 * time.Millisecond) // 2×t_wait = 200ms
	if s.Epoch() != 1 || s.AckerCount() != 3 {
		t.Fatalf("epoch = %d ackers = %d, want 1/3", s.Epoch(), s.AckerCount())
	}
}

// establishEpoch drives the sender to epoch 1 with the given ackers.
func establishEpoch(t *testing.T, s *Sender, env *transporttest.Env, ackers ...transport.Addr) {
	t.Helper()
	for _, l := range ackers {
		resp := wire.Packet{Type: wire.TypeAckerResponse, Source: tSource, Group: tGroup, Epoch: s.Epoch() + 1}
		s.Recv(l, mustPkt(t, resp))
	}
	env.Advance(250 * time.Millisecond)
	if s.AckerCount() != len(ackers) {
		t.Fatalf("ackers = %d, want %d", s.AckerCount(), len(ackers))
	}
	env.Mcasts = nil
	env.Sents = nil
}

func TestSenderAllAcksRetirePacket(t *testing.T) {
	s, env := newSender(t, SenderConfig{Heartbeat: hbParams, StatAck: statCfg(20, 3)})
	establishEpoch(t, s, env, tLoggerA, tLoggerB)
	seq, _ := s.Send([]byte("x"))
	for _, l := range []transporttest.Addr{tLoggerA, tLoggerB} {
		ack := wire.Packet{Type: wire.TypeAck, Source: tSource, Group: tGroup, Seq: seq, Epoch: 1}
		s.Recv(l, mustPkt(t, ack))
	}
	env.Mcasts = nil
	env.Advance(time.Second)
	for _, p := range env.McastPackets() {
		if p.Type == wire.TypeRetrans {
			t.Fatalf("re-multicast despite full acks: %+v", p)
		}
	}
	if s.Stats().AcksReceived != 2 {
		t.Fatalf("stats = %+v", s.Stats())
	}
}

func TestSenderMissingAcksTriggerRemulticast(t *testing.T) {
	// 500 "sites", 2 ackers → 250 sites per acker: one missing ack must
	// re-multicast (§2.3.2's first example).
	s, env := newSender(t, SenderConfig{Heartbeat: hbParams, StatAck: statCfg(2, 500)})
	establishEpoch(t, s, env, tLoggerA, tLoggerB)
	seq, _ := s.Send([]byte("wide"))
	ack := wire.Packet{Type: wire.TypeAck, Source: tSource, Group: tGroup, Seq: seq, Epoch: 1}
	s.Recv(tLoggerA, mustPkt(t, ack)) // only one of two
	env.Mcasts = nil
	env.Advance(150 * time.Millisecond) // past t_wait = 100ms
	var remcast int
	for _, p := range env.McastPackets() {
		if p.Type == wire.TypeRetrans && p.Seq == seq {
			remcast++
		}
	}
	if remcast != 1 {
		t.Fatalf("re-multicasts = %d, want 1", remcast)
	}
	if s.Stats().StatRemulticasts != 1 {
		t.Fatalf("stats = %+v", s.Stats())
	}
}

func TestSenderFewSitesPerAckerStaysUnicast(t *testing.T) {
	// 2 "sites", 2 ackers → 1 site per acker: a single missing ack does
	// not warrant a multicast (§2.3.2's 20-site example).
	s, env := newSender(t, SenderConfig{Heartbeat: hbParams, StatAck: statCfg(2, 2)})
	establishEpoch(t, s, env, tLoggerA, tLoggerB)
	seq, _ := s.Send([]byte("narrow"))
	ack := wire.Packet{Type: wire.TypeAck, Source: tSource, Group: tGroup, Seq: seq, Epoch: 1}
	s.Recv(tLoggerA, mustPkt(t, ack))
	env.Mcasts = nil
	env.Advance(150 * time.Millisecond)
	for _, p := range env.McastPackets() {
		if p.Type == wire.TypeRetrans {
			t.Fatalf("re-multicast for single-site loss: %+v", p)
		}
	}
}

func TestSenderIgnoresAcksFromNonAckers(t *testing.T) {
	s, env := newSender(t, SenderConfig{Heartbeat: hbParams, StatAck: statCfg(2, 500)})
	establishEpoch(t, s, env, tLoggerA, tLoggerB)
	seq, _ := s.Send([]byte("x"))
	stranger := transporttest.Addr("stranger")
	ack := wire.Packet{Type: wire.TypeAck, Source: tSource, Group: tGroup, Seq: seq, Epoch: 1}
	s.Recv(stranger, mustPkt(t, ack))
	s.Recv(tLoggerA, mustPkt(t, ack))
	s.Recv(tLoggerB, mustPkt(t, ack))
	if got := s.Stats(); got.AcksReceived != 2 || got.AcksIgnoredFaulty != 1 {
		t.Fatalf("stats = %+v", got)
	}
}

func TestSenderNackDemandRemulticast(t *testing.T) {
	cfg := statCfg(20, 3)
	cfg.NackRemcastThreshold = 3
	s, env := newSender(t, SenderConfig{Heartbeat: hbParams, StatAck: cfg})
	establishEpoch(t, s, env, tLoggerA)
	seq, _ := s.Send([]byte("demanded"))
	nack := wire.Packet{Type: wire.TypeNack, Source: tSource, Group: tGroup,
		Ranges: []wire.SeqRange{{From: seq, To: seq}}}
	env.Mcasts = nil
	env.Sents = nil
	for _, a := range []transporttest.Addr{tLoggerA, tLoggerB, tLoggerC} {
		s.Recv(a, mustPkt(t, nack))
	}
	if got := s.Stats(); got.RetransUnicast != 2 || got.NackRemulticasts != 1 {
		t.Fatalf("stats = %+v, want 2 unicast then 1 multicast", got)
	}
}

func TestSenderBootstrapProbing(t *testing.T) {
	cfg := StatAckConfig{
		Enabled:       true,
		K:             5,
		EpochInterval: 10 * time.Second,
		RTT:           estimator.RTTConfig{Initial: 100 * time.Millisecond},
		Probe:         estimator.ProbePlan{StartPAck: 0.25, Growth: 2, MinResponses: 2, Repeats: 2},
		ProbeInterval: 100 * time.Millisecond,
	}
	s, env := newSender(t, SenderConfig{Heartbeat: hbParams, StatAck: cfg})
	probes := 0
	deadline := 0
	for s.Epoch() == 0 && deadline < 100 {
		deadline++
		for _, p := range env.McastPackets() {
			if p.Type == wire.TypeSizeProbe {
				probes++
				// 10 loggers answer a probe with probability pAck;
				// deterministically respond with round(10×pAck) loggers.
				n := int(10*p.PAck + 0.5)
				for i := 0; i < n; i++ {
					resp := wire.Packet{Type: wire.TypeSizeProbeResponse,
						Source: tSource, Group: tGroup, ProbeID: p.ProbeID}
					s.Recv(transporttest.Addr(string(rune('a'+i))), mustPkt(t, resp))
				}
			}
			if p.Type == wire.TypeAckerSelect {
				// Selection has begun; volunteer one acker so the epoch
				// can establish.
				resp := wire.Packet{Type: wire.TypeAckerResponse,
					Source: tSource, Group: tGroup, Epoch: p.Epoch}
				s.Recv(tLoggerA, mustPkt(t, resp))
			}
		}
		env.Mcasts = nil
		env.Advance(100 * time.Millisecond)
	}
	if probes < 2 {
		t.Fatalf("probes = %d, want ≥ 2 (escalation + repeats)", probes)
	}
	if est := s.GroupSizeEstimate(); est < 5 || est > 16 {
		t.Fatalf("group size estimate = %v, want ≈10", est)
	}
	if s.Epoch() == 0 {
		t.Fatal("never reached epoch 1")
	}
}

func TestSenderEpochRotation(t *testing.T) {
	cfg := statCfg(20, 3)
	cfg.EpochInterval = time.Second
	s, env := newSender(t, SenderConfig{Heartbeat: hbParams, StatAck: cfg})
	establishEpoch(t, s, env, tLoggerA)
	// After EpochInterval a new ACKSEL goes out.
	env.Advance(1100 * time.Millisecond)
	var sel *wire.Packet
	for i, p := range env.McastPackets() {
		if p.Type == wire.TypeAckerSelect && p.Epoch == 2 {
			sel = &env.McastPackets()[i]
		}
	}
	if sel == nil {
		t.Fatal("no epoch-2 ACKSEL after rotation interval")
	}
	resp := wire.Packet{Type: wire.TypeAckerResponse, Source: tSource, Group: tGroup, Epoch: 2}
	s.Recv(tLoggerB, mustPkt(t, resp))
	env.Advance(250 * time.Millisecond)
	if s.Epoch() != 2 || s.AckerCount() != 1 {
		t.Fatalf("epoch = %d ackers = %d, want 2/1", s.Epoch(), s.AckerCount())
	}
}

func TestSenderEpochPacketTrigger(t *testing.T) {
	cfg := statCfg(20, 3)
	cfg.EpochPackets = 2
	s, env := newSender(t, SenderConfig{Heartbeat: hbParams, StatAck: cfg})
	establishEpoch(t, s, env, tLoggerA)
	s.Send([]byte("1"))
	s.Send([]byte("2"))
	found := false
	for _, p := range env.McastPackets() {
		if p.Type == wire.TypeAckerSelect && p.Epoch == 2 {
			found = true
		}
	}
	if !found {
		t.Fatal("no ACKSEL after EpochPackets data packets")
	}
}

func TestSenderHotlistExcludesChronicAcker(t *testing.T) {
	cfg := statCfg(20, 3)
	cfg.EpochInterval = time.Second
	cfg.HotlistHalfLife = time.Hour
	cfg.HotlistThreshold = 2.5
	s, env := newSender(t, SenderConfig{Heartbeat: hbParams, StatAck: cfg})
	// The same logger answers every selection round. After its decayed
	// activity crosses the threshold its responses are ignored, so the
	// epoch stalls (no other volunteers exist).
	for i := 0; i < 40 && s.Stats().AcksIgnoredFaulty < 2; i++ {
		for _, p := range env.McastPackets() {
			if p.Type == wire.TypeAckerSelect {
				resp := wire.Packet{Type: wire.TypeAckerResponse, Source: tSource,
					Group: tGroup, Epoch: p.Epoch}
				s.Recv(tLoggerA, mustPkt(t, resp))
			}
		}
		env.Mcasts = nil
		env.Advance(300 * time.Millisecond)
	}
	got := s.Stats()
	if got.AcksIgnoredFaulty < 2 {
		t.Fatalf("faulty responses ignored = %d, want ≥ 2", got.AcksIgnoredFaulty)
	}
	if s.Epoch() > 3 {
		t.Fatalf("epoch = %d: chronic acker kept being designated", s.Epoch())
	}
}

func TestSenderFailover(t *testing.T) {
	s, env := newSender(t, SenderConfig{
		Heartbeat:       hbParams,
		Replicas:        []transport.Addr{tReplica1, tReplica2},
		FailoverTimeout: time.Second,
		FailoverWait:    200 * time.Millisecond,
	})
	s.Send([]byte("a"))
	s.Send([]byte("b"))
	s.Send([]byte("c"))
	env.Sents = nil
	env.Mcasts = nil
	// No SourceAck ever arrives: failover kicks in after the timeout.
	env.Advance(1100 * time.Millisecond)
	queries := 0
	for _, p := range env.SentPackets() {
		if p.Type == wire.TypeLogStateQuery {
			queries++
		}
	}
	if queries != 2 {
		t.Fatalf("state queries = %d, want 2", queries)
	}
	// replica2 is more up to date.
	r1 := wire.Packet{Type: wire.TypeLogStateReply, Source: tSource, Group: tGroup, Seq: 1}
	r2 := wire.Packet{Type: wire.TypeLogStateReply, Source: tSource, Group: tGroup, Seq: 2}
	s.Recv(tReplica1, mustPkt(t, r1))
	s.Recv(tReplica2, mustPkt(t, r2))
	env.Sents = nil
	env.Advance(250 * time.Millisecond)
	var promoted transport.Addr
	var backfill []uint64
	for i, p := range env.SentPackets() {
		switch p.Type {
		case wire.TypePromote:
			promoted = env.Sents[i].To
		case wire.TypeRetrans:
			backfill = append(backfill, p.Seq)
			if env.Sents[i].To != tReplica2 {
				t.Fatalf("backfill to %v", env.Sents[i].To)
			}
		}
	}
	if promoted != tReplica2 {
		t.Fatalf("promoted %v, want replica2", promoted)
	}
	if len(backfill) != 1 || backfill[0] != 3 {
		t.Fatalf("backfill = %v, want [3] (replica2 already has 1-2)", backfill)
	}
	// The group heard a redirect.
	redirected := false
	for _, p := range env.McastPackets() {
		if p.Type == wire.TypePrimaryRedirect && p.Addr == tReplica2.String() {
			redirected = true
		}
	}
	if !redirected {
		t.Fatal("no redirect multicast after failover")
	}
	if s.Stats().Failovers != 1 {
		t.Fatalf("stats = %+v", s.Stats())
	}
	// PrimaryQuery now answers with the new primary.
	env.Sents = nil
	q := wire.Packet{Type: wire.TypePrimaryQuery, Source: tSource, Group: tGroup}
	s.Recv(tLoggerA, mustPkt(t, q))
	sents := env.SentPackets()
	if len(sents) != 1 || sents[0].Type != wire.TypePrimaryRedirect || sents[0].Addr != tReplica2.String() {
		t.Fatalf("redirect reply = %v", sents)
	}
}

func TestSenderNoFailoverWhileHealthy(t *testing.T) {
	s, env := newSender(t, SenderConfig{
		Heartbeat:       hbParams,
		Replicas:        []transport.Addr{tReplica1},
		FailoverTimeout: 500 * time.Millisecond,
	})
	for i := 0; i < 4; i++ {
		seq, _ := s.Send([]byte("x"))
		ack := wire.Packet{Type: wire.TypeSourceAck, Source: tSource, Group: tGroup,
			Seq: seq, ReplicaSeq: seq, Epoch: 1}
		env.Advance(300 * time.Millisecond)
		s.Recv(tPrimary, mustPkt(t, ack))
	}
	for _, p := range env.SentPackets() {
		if p.Type == wire.TypeLogStateQuery || p.Type == wire.TypePromote {
			t.Fatalf("failover action while healthy: %+v", p)
		}
	}
}

func TestSenderRejectsOversizePayloadAndUnstarted(t *testing.T) {
	s, err := NewSender(SenderConfig{Source: tSource, Group: tGroup, Heartbeat: hbParams})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Send([]byte("x")); !errors.Is(err, ErrNotStarted) {
		t.Fatalf("err = %v, want ErrNotStarted", err)
	}
	env := transporttest.NewEnv("sender")
	s.Start(env)
	if _, err := s.Send(make([]byte, wire.MaxPayloadLen+1)); err == nil {
		t.Fatal("oversize payload accepted")
	}
}

func TestSenderIgnoresForeignStreams(t *testing.T) {
	s, _ := newSender(t, SenderConfig{Heartbeat: hbParams})
	s.Send([]byte("x"))
	foreign := wire.Packet{Type: wire.TypeSourceAck, Source: 999, Group: tGroup, Seq: 1, ReplicaSeq: 1}
	s.Recv(tPrimary, mustPkt(t, foreign))
	if s.Retained() != 1 {
		t.Fatal("foreign-source ack released retention")
	}
	s.Recv(tPrimary, []byte("garbage"))
	if s.Stats().Malformed != 1 {
		t.Fatalf("stats = %+v", s.Stats())
	}
}

func TestSenderRetransChannelReplays(t *testing.T) {
	const channel = wire.GroupID(99)
	s, env := newSender(t, SenderConfig{
		Heartbeat:      hbParams,
		RetransChannel: channel,
		RetransRepeats: 3,
	})
	s.Send([]byte("replayed"))
	env.Mcasts = nil
	// Replays at HMin, 2·HMin, 4·HMin = 10, 20, 40ms.
	env.Advance(75 * time.Millisecond)
	var replays []transporttest.Multicast
	for _, m := range env.TakeMcasts() {
		if m.Group == channel {
			replays = append(replays, m)
		}
	}
	if len(replays) != 3 {
		t.Fatalf("channel replays = %d, want 3", len(replays))
	}
	for _, m := range replays {
		var p wire.Packet
		if err := p.Unmarshal(m.Data); err != nil {
			t.Fatal(err)
		}
		if p.Type != wire.TypeRetrans || p.Group != tGroup || p.Seq != 1 ||
			string(p.Payload) != "replayed" {
			t.Fatalf("replay = %+v", p)
		}
	}
	if s.Stats().ChannelReplays != 3 {
		t.Fatalf("stats = %+v", s.Stats())
	}
	// No further replays after the configured repeats.
	env.Advance(time.Second)
	for _, m := range env.TakeMcasts() {
		if m.Group == channel {
			t.Fatalf("extra replay after %d repeats", 3)
		}
	}
}

func TestSenderFlowControlAdvisesPacing(t *testing.T) {
	cfg := statCfg(2, 500)
	cfg.FlowControl = true
	cfg.FlowMaxDelay = time.Second
	s, env := newSender(t, SenderConfig{Heartbeat: hbParams, StatAck: cfg})
	establishEpoch(t, s, env, tLoggerA, tLoggerB)
	if s.SendDelay() != 0 || s.LossEstimate() != 0 {
		t.Fatal("pacing advised before any loss")
	}
	// Sustained loss: no ACKs at all for several packets.
	for i := 0; i < 8; i++ {
		s.Send([]byte("x"))
		env.Advance(150 * time.Millisecond) // past t_wait, 0 acks
	}
	if le := s.LossEstimate(); le < 0.3 {
		t.Fatalf("loss estimate %v after total loss, want high", le)
	}
	d1 := s.SendDelay()
	if d1 <= 0 {
		t.Fatalf("SendDelay = %v under heavy loss, want > 0", d1)
	}
	// Recovery: fully-acked packets drive the estimate back down.
	for i := 0; i < 30; i++ {
		seq, _ := s.Send([]byte("y"))
		for _, l := range []transporttest.Addr{tLoggerA, tLoggerB} {
			ack := wire.Packet{Type: wire.TypeAck, Source: tSource, Group: tGroup,
				Seq: seq, Epoch: 1}
			s.Recv(l, mustPkt(t, ack))
		}
		env.Advance(150 * time.Millisecond)
	}
	if d := s.SendDelay(); d != 0 {
		t.Fatalf("SendDelay = %v after clean period, want 0", d)
	}
}

func TestSenderFlowControlDisabledByDefault(t *testing.T) {
	s, env := newSender(t, SenderConfig{Heartbeat: hbParams, StatAck: statCfg(2, 500)})
	establishEpoch(t, s, env, tLoggerA)
	for i := 0; i < 5; i++ {
		s.Send([]byte("x"))
		env.Advance(150 * time.Millisecond)
	}
	if s.SendDelay() != 0 {
		t.Fatal("SendDelay non-zero with flow control disabled")
	}
}

func TestSenderStopSilences(t *testing.T) {
	s, env := newSender(t, SenderConfig{Heartbeat: hbParams})
	s.Send([]byte("x"))
	env.Mcasts = nil
	s.Stop()
	env.Advance(5 * time.Second)
	if len(env.Mcasts) != 0 {
		t.Fatalf("stopped sender transmitted %d packets", len(env.Mcasts))
	}
	if _, err := s.Send([]byte("y")); !errors.Is(err, ErrNotStarted) {
		t.Fatalf("Send after Stop = %v, want ErrNotStarted", err)
	}
}
