package core

import (
	"fmt"
	"testing"
	"time"

	"lbrm/internal/transport"
	"lbrm/internal/transport/transporttest"
	"lbrm/internal/wire"
)

var (
	tSecondary = transporttest.Addr("secondary")
	tSrcAddr   = transporttest.Addr("srcaddr")
)

type delivered struct {
	seq     uint64
	payload string
	retrans bool
}

type rcvHarness struct {
	r     *Receiver
	env   *transporttest.Env
	got   []delivered
	stale []StreamKey
	fresh []StreamKey
	lost  []wire.SeqRange
}

func newReceiver(t *testing.T, cfg ReceiverConfig) *rcvHarness {
	t.Helper()
	h := &rcvHarness{}
	if cfg.Group == 0 {
		cfg.Group = tGroup
	}
	if cfg.Heartbeat.HMin == 0 {
		cfg.Heartbeat = hbParams
	}
	if cfg.Secondary == nil && !cfg.Discover {
		cfg.Secondary = tSecondary
	}
	if cfg.Primary == nil {
		cfg.Primary = tPrimary
	}
	base := cfg.OnData
	cfg.OnData = func(e Event) {
		h.got = append(h.got, delivered{seq: e.Seq, payload: string(e.Payload), retrans: e.Retransmitted})
		if base != nil {
			base(e)
		}
	}
	cfg.OnStale = func(k StreamKey, d time.Duration) { h.stale = append(h.stale, k) }
	cfg.OnFresh = func(k StreamKey) { h.fresh = append(h.fresh, k) }
	cfg.OnLost = func(k StreamKey, rg wire.SeqRange) { h.lost = append(h.lost, rg) }
	h.r = NewReceiver(cfg)
	h.env = transporttest.NewEnv("receiver")
	h.r.Start(h.env)
	return h
}

func (h *rcvHarness) data(t *testing.T, seq uint64, payload string) {
	t.Helper()
	p := wire.Packet{Type: wire.TypeData, Source: tSource, Group: tGroup,
		Seq: seq, Payload: []byte(payload)}
	b, err := p.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	h.r.Recv(tSrcAddr, b)
}

func (h *rcvHarness) retrans(t *testing.T, from transport.Addr, seq uint64, payload string) {
	t.Helper()
	p := wire.Packet{Type: wire.TypeRetrans, Flags: wire.FlagRetransmission | wire.FlagFromLogger,
		Source: tSource, Group: tGroup, Seq: seq, Payload: []byte(payload)}
	b, err := p.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	h.r.Recv(from, b)
}

func (h *rcvHarness) heartbeat(t *testing.T, seq uint64, idx uint32) {
	t.Helper()
	p := wire.Packet{Type: wire.TypeHeartbeat, Source: tSource, Group: tGroup,
		Seq: seq, HeartbeatIdx: idx}
	b, err := p.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	h.r.Recv(tSrcAddr, b)
}

var streamKey = StreamKey{Source: tSource, Group: tGroup}

func TestReceiverDeliversAndSuppressesDuplicates(t *testing.T) {
	h := newReceiver(t, ReceiverConfig{})
	if !h.env.Joined[tGroup] {
		t.Fatal("receiver did not join group")
	}
	h.data(t, 1, "one")
	h.data(t, 2, "two")
	h.data(t, 2, "two")
	if len(h.got) != 2 || h.got[0].payload != "one" || h.got[1].payload != "two" {
		t.Fatalf("delivered %v", h.got)
	}
	if h.r.Stats().Duplicates != 1 {
		t.Fatalf("stats = %+v", h.r.Stats())
	}
	if h.r.Contiguous(streamKey) != 2 {
		t.Fatalf("Contiguous = %d", h.r.Contiguous(streamKey))
	}
}

func TestReceiverGapTriggersNackToSecondary(t *testing.T) {
	h := newReceiver(t, ReceiverConfig{NackDelay: 10 * time.Millisecond})
	h.data(t, 1, "one")
	h.data(t, 4, "four")
	if len(h.env.Sents) != 0 {
		t.Fatal("NACK before reorder delay")
	}
	h.env.Advance(15 * time.Millisecond)
	sents := h.env.SentPackets()
	if len(sents) != 1 || sents[0].Type != wire.TypeNack {
		t.Fatalf("want NACK, got %v", sents)
	}
	if h.env.Sents[0].To != tSecondary {
		t.Fatalf("NACK to %v, want secondary", h.env.Sents[0].To)
	}
	if rg := sents[0].Ranges[0]; rg.From != 2 || rg.To != 3 {
		t.Fatalf("ranges = %v, want [2,3]", sents[0].Ranges)
	}
	// Out-of-sequence delivery happened immediately (receiver-reliable:
	// freshest data is not delayed by recovery).
	if len(h.got) != 2 || h.got[1].payload != "four" {
		t.Fatalf("delivered %v", h.got)
	}
}

func TestReceiverReorderWithinDelaySuppressesNack(t *testing.T) {
	h := newReceiver(t, ReceiverConfig{NackDelay: 20 * time.Millisecond})
	h.data(t, 2, "two") // arrives before 1
	h.data(t, 1, "one") // reorder, not loss
	h.env.Advance(time.Second)
	if len(h.env.Sents) != 0 {
		t.Fatalf("NACK for simple reordering: %v", h.env.SentPackets())
	}
}

func TestReceiverRecoveryCancelsRetries(t *testing.T) {
	h := newReceiver(t, ReceiverConfig{NackDelay: 10 * time.Millisecond, RequestTimeout: 100 * time.Millisecond})
	h.data(t, 1, "one")
	h.data(t, 3, "three")
	h.env.Advance(15 * time.Millisecond)
	h.retrans(t, tSecondary, 2, "two")
	if len(h.got) != 3 || !h.got[2].retrans || h.got[2].payload != "two" {
		t.Fatalf("delivered %v", h.got)
	}
	h.env.Sents = nil
	h.env.Advance(5 * time.Second)
	if len(h.env.Sents) != 0 {
		t.Fatalf("retries after recovery: %v", h.env.SentPackets())
	}
	if h.r.Stats().Recovered != 1 {
		t.Fatalf("stats = %+v", h.r.Stats())
	}
}

func TestReceiverEscalatesToPrimaryThenSource(t *testing.T) {
	h := newReceiver(t, ReceiverConfig{
		NackDelay: 10 * time.Millisecond, RequestTimeout: 100 * time.Millisecond,
		SecondaryRetries: 2, PrimaryRetries: 2,
	})
	h.data(t, 1, "one")
	h.data(t, 3, "three")
	h.env.Advance(3 * time.Second)
	var toSecondary, toPrimary, queries int
	for i, p := range h.env.SentPackets() {
		switch p.Type {
		case wire.TypeNack:
			switch h.env.Sents[i].To {
			case tSecondary:
				toSecondary++
			case tPrimary:
				toPrimary++
			}
		case wire.TypePrimaryQuery:
			queries++
			if h.env.Sents[i].To != tSrcAddr {
				t.Fatalf("PrimaryQuery to %v, want source", h.env.Sents[i].To)
			}
		}
	}
	if toSecondary != 2 || toPrimary < 2 || queries != 1 {
		t.Fatalf("sec=%d pri=%d query=%d, want 2/≥2/1", toSecondary, toPrimary, queries)
	}
	// Eventually abandoned.
	if len(h.lost) == 0 || h.lost[0] != (wire.SeqRange{From: 2, To: 2}) {
		t.Fatalf("lost = %v", h.lost)
	}
	if h.r.Stats().RangesAbandoned == 0 {
		t.Fatalf("stats = %+v", h.r.Stats())
	}
	// Later packets still delivered; abandoned gap not re-requested.
	h.env.Sents = nil
	h.data(t, 4, "four")
	h.env.Advance(time.Second)
	for _, p := range h.env.SentPackets() {
		if p.Type == wire.TypeNack {
			for _, rg := range p.Ranges {
				if rg.Contains(2) {
					t.Fatal("re-requested abandoned seq")
				}
			}
		}
	}
}

func TestReceiverFollowsRedirectDuringRecovery(t *testing.T) {
	h := newReceiver(t, ReceiverConfig{
		NackDelay: 10 * time.Millisecond, RequestTimeout: 50 * time.Millisecond,
		SecondaryRetries: 1, PrimaryRetries: 2,
	})
	h.data(t, 1, "one")
	h.data(t, 3, "three")
	// Let it exhaust the secondary and go to primary, then answer the
	// primary query with a redirect.
	h.env.Advance(200 * time.Millisecond)
	newPrimary := transporttest.Addr("promoted")
	redir := wire.Packet{Type: wire.TypePrimaryRedirect, Source: tSource, Group: tGroup,
		Addr: newPrimary.String()}
	b, _ := redir.Marshal()
	h.r.Recv(tSrcAddr, b)
	h.env.Sents = nil
	h.env.Advance(300 * time.Millisecond)
	sentToNew := false
	for i, p := range h.env.SentPackets() {
		if p.Type == wire.TypeNack && h.env.Sents[i].To == newPrimary {
			sentToNew = true
		}
	}
	if !sentToNew {
		t.Fatal("no NACK to redirected primary")
	}
	// The promoted primary serves it.
	h.retrans(t, newPrimary, 2, "two")
	if h.r.Contiguous(streamKey) != 3 {
		t.Fatalf("Contiguous = %d after redirect recovery", h.r.Contiguous(streamKey))
	}
}

func TestReceiverHeartbeatRevealsLoss(t *testing.T) {
	h := newReceiver(t, ReceiverConfig{NackDelay: 10 * time.Millisecond})
	h.data(t, 1, "one")
	h.heartbeat(t, 2, 1)
	h.env.Advance(15 * time.Millisecond)
	sents := h.env.SentPackets()
	if len(sents) != 1 || sents[0].Type != wire.TypeNack {
		t.Fatalf("want NACK, got %v", sents)
	}
	if rg := sents[0].Ranges[0]; rg.From != 2 || rg.To != 2 {
		t.Fatalf("ranges = %v", sents[0].Ranges)
	}
	if h.r.Stats().HeartbeatsSeen != 1 || h.r.Stats().GapsDetected != 1 {
		t.Fatalf("stats = %+v", h.r.Stats())
	}
}

func TestReceiverInlineHeartbeatRecovers(t *testing.T) {
	h := newReceiver(t, ReceiverConfig{NackDelay: 10 * time.Millisecond})
	h.data(t, 1, "one")
	p := wire.Packet{Type: wire.TypeHeartbeat, Flags: wire.FlagInlineData,
		Source: tSource, Group: tGroup, Seq: 2, HeartbeatIdx: 1, Payload: []byte("two")}
	b, _ := p.Marshal()
	h.r.Recv(tSrcAddr, b)
	if len(h.got) != 2 || h.got[1].payload != "two" || !h.got[1].retrans {
		t.Fatalf("delivered %v", h.got)
	}
	h.env.Advance(time.Second)
	if len(h.env.Sents) != 0 {
		t.Fatal("NACKed a loss repaired by inline heartbeat")
	}
	if h.r.Stats().RecoveredInline != 1 {
		t.Fatalf("stats = %+v", h.r.Stats())
	}
}

func TestReceiverLateJoinViaData(t *testing.T) {
	h := newReceiver(t, ReceiverConfig{})
	h.data(t, 100, "current")
	h.env.Advance(time.Second)
	if len(h.env.Sents) != 0 {
		t.Fatalf("late joiner requested history: %v", h.env.SentPackets())
	}
	if len(h.got) != 1 || h.got[0].seq != 100 {
		t.Fatalf("delivered %v", h.got)
	}
	// The next gap is still caught.
	h.data(t, 102, "next")
	h.env.Advance(time.Second)
	sents := h.env.SentPackets()
	if len(sents) != 0 {
		if rg := sents[0].Ranges[0]; rg.From != 101 || rg.To != 101 {
			t.Fatalf("ranges = %v, want [101,101]", sents[0].Ranges)
		}
	} else {
		t.Fatal("no NACK for post-join gap")
	}
}

func TestReceiverLateJoinViaHeartbeat(t *testing.T) {
	h := newReceiver(t, ReceiverConfig{})
	h.heartbeat(t, 50, 3)
	h.env.Advance(time.Second)
	if len(h.env.Sents) != 0 {
		t.Fatal("heartbeat-first join requested history")
	}
	h.data(t, 51, "next")
	if len(h.got) != 1 || h.got[0].seq != 51 {
		t.Fatalf("delivered %v", h.got)
	}
}

func TestReceiverFreshnessLifecycle(t *testing.T) {
	h := newReceiver(t, ReceiverConfig{StaleFactor: 2, StaleSlack: 5 * time.Millisecond})
	h.data(t, 1, "one")
	// Expected next packet within HMin (10ms); stale after 2×10+5 = 25ms.
	h.env.Advance(20 * time.Millisecond)
	if h.r.Stale(streamKey) {
		t.Fatal("stale too early")
	}
	h.env.Advance(10 * time.Millisecond)
	if !h.r.Stale(streamKey) {
		t.Fatal("not stale after silence")
	}
	if len(h.stale) != 1 {
		t.Fatalf("OnStale calls = %d", len(h.stale))
	}
	// Traffic resumes → fresh again.
	h.heartbeat(t, 1, 1)
	if h.r.Stale(streamKey) {
		t.Fatal("still stale after heartbeat")
	}
	if len(h.fresh) != 1 {
		t.Fatalf("OnFresh calls = %d", len(h.fresh))
	}
}

func TestReceiverHeartbeatBackoffExtendsDeadline(t *testing.T) {
	h := newReceiver(t, ReceiverConfig{StaleFactor: 2, StaleSlack: 5 * time.Millisecond})
	h.data(t, 1, "one")
	// Follow the variable schedule: heartbeats at +10 (idx1), +30 (idx2),
	// +70 (idx3). After idx3, next interval is capped at HMax=80ms; the
	// receiver must tolerate 2×80+5 = 165ms of further silence.
	h.env.Advance(10 * time.Millisecond)
	h.heartbeat(t, 1, 1)
	h.env.Advance(20 * time.Millisecond)
	h.heartbeat(t, 1, 2)
	h.env.Advance(40 * time.Millisecond)
	h.heartbeat(t, 1, 3)
	h.env.Advance(160 * time.Millisecond)
	if h.r.Stale(streamKey) {
		t.Fatal("stale while heartbeat schedule still satisfied")
	}
	h.env.Advance(10 * time.Millisecond)
	if !h.r.Stale(streamKey) {
		t.Fatal("not stale after schedule exceeded")
	}
}

func TestReceiverOrderedDelivery(t *testing.T) {
	h := newReceiver(t, ReceiverConfig{Ordered: true, NackDelay: 10 * time.Millisecond})
	h.data(t, 1, "one")
	h.data(t, 3, "three") // buffered
	h.data(t, 4, "four")  // buffered
	if len(h.got) != 1 {
		t.Fatalf("ordered mode delivered out of order: %v", h.got)
	}
	h.env.Advance(15 * time.Millisecond)
	h.retrans(t, tSecondary, 2, "two")
	want := []string{"one", "two", "three", "four"}
	if len(h.got) != 4 {
		t.Fatalf("delivered %v", h.got)
	}
	for i, w := range want {
		if h.got[i].payload != w {
			t.Fatalf("order = %v, want %v", h.got, want)
		}
	}
}

func TestReceiverOrderedAbandonFlushes(t *testing.T) {
	h := newReceiver(t, ReceiverConfig{
		Ordered: true, NackDelay: 5 * time.Millisecond, RequestTimeout: 20 * time.Millisecond,
		SecondaryRetries: 1, PrimaryRetries: 1,
	})
	h.data(t, 1, "one")
	h.data(t, 3, "three")
	// Recovery of 2 fails everywhere; after abandonment, 3 must flush.
	h.env.Advance(2 * time.Second)
	if len(h.got) != 2 || h.got[1].payload != "three" {
		t.Fatalf("delivered %v, want stranded packet flushed", h.got)
	}
}

func TestReceiverDiscovery(t *testing.T) {
	h := newReceiver(t, ReceiverConfig{Discover: true, DiscoveryTimeout: 100 * time.Millisecond})
	if h.r.SecondaryAddr() != nil {
		t.Fatal("secondary known before discovery")
	}
	mc := h.env.McastPackets()
	if len(mc) != 1 || mc[0].Type != wire.TypeDiscoveryQuery {
		t.Fatalf("want discovery query, got %v", mc)
	}
	if h.env.Mcasts[0].TTL != transport.TTLSite {
		t.Fatalf("first ring TTL = %d, want site", h.env.Mcasts[0].TTL)
	}
	// No reply: the ring expands.
	h.env.Mcasts = nil
	h.env.Advance(110 * time.Millisecond)
	mc = h.env.McastPackets()
	if len(mc) != 1 || h.env.Mcasts[0].TTL != transport.TTLRegion {
		t.Fatalf("second ring = %v ttl=%d", mc, h.env.Mcasts[0].TTL)
	}
	// A logger answers.
	reply := wire.Packet{Type: wire.TypeDiscoveryReply, Group: tGroup,
		Addr: tSecondary.String()}
	b, _ := reply.Marshal()
	h.r.Recv(tSecondary, b)
	if h.r.SecondaryAddr() != tSecondary {
		t.Fatalf("secondary = %v", h.r.SecondaryAddr())
	}
	// No further rings.
	h.env.Mcasts = nil
	h.env.Advance(time.Second)
	if len(h.env.Mcasts) != 0 {
		t.Fatal("discovery continued after success")
	}
	// Recovery uses the discovered logger.
	h.data(t, 1, "one")
	h.data(t, 3, "three")
	h.env.Advance(50 * time.Millisecond)
	found := false
	for i, p := range h.env.SentPackets() {
		if p.Type == wire.TypeNack && h.env.Sents[i].To == tSecondary {
			found = true
		}
	}
	if !found {
		t.Fatal("recovery did not use discovered logger")
	}
}

func TestReceiverDiscoveryFallsBackToPrimary(t *testing.T) {
	h := newReceiver(t, ReceiverConfig{
		Discover: true, DiscoveryTimeout: 50 * time.Millisecond,
		NackDelay: 10 * time.Millisecond, RequestTimeout: 50 * time.Millisecond,
	})
	h.env.Advance(300 * time.Millisecond) // all rings exhausted, no reply
	h.data(t, 1, "one")
	h.data(t, 3, "three")
	h.env.Advance(100 * time.Millisecond)
	toPrimary := false
	for i, p := range h.env.SentPackets() {
		if p.Type == wire.TypeNack && h.env.Sents[i].To == tPrimary {
			toPrimary = true
		}
	}
	if !toPrimary {
		t.Fatal("no fallback to primary after failed discovery")
	}
}

func TestReceiverIgnoresForeignGroupAndGarbage(t *testing.T) {
	h := newReceiver(t, ReceiverConfig{})
	p := wire.Packet{Type: wire.TypeData, Source: tSource, Group: 99, Seq: 1, Payload: []byte("x")}
	b, _ := p.Marshal()
	h.r.Recv(tSrcAddr, b)
	h.r.Recv(tSrcAddr, []byte("junk"))
	if len(h.got) != 0 {
		t.Fatalf("delivered foreign traffic: %v", h.got)
	}
	if h.r.Stats().Malformed != 1 {
		t.Fatalf("stats = %+v", h.r.Stats())
	}
}

func TestReceiverManyStreams(t *testing.T) {
	h := newReceiver(t, ReceiverConfig{})
	for src := 1; src <= 10; src++ {
		for seq := 1; seq <= 5; seq++ {
			p := wire.Packet{Type: wire.TypeData, Source: wire.SourceID(src), Group: tGroup,
				Seq: uint64(seq), Payload: []byte(fmt.Sprintf("%d/%d", src, seq))}
			b, _ := p.Marshal()
			h.r.Recv(tSrcAddr, b)
		}
	}
	if len(h.got) != 50 {
		t.Fatalf("delivered %d, want 50", len(h.got))
	}
	for src := 1; src <= 10; src++ {
		k := StreamKey{Source: wire.SourceID(src), Group: tGroup}
		if h.r.Contiguous(k) != 5 {
			t.Fatalf("stream %d contig = %d", src, h.r.Contiguous(k))
		}
	}
}

func TestReceiverRetransChannelRecovery(t *testing.T) {
	const channel = wire.GroupID(99)
	h := newReceiver(t, ReceiverConfig{
		RetransChannel: channel,
		NackDelay:      10 * time.Millisecond,
	})
	h.data(t, 1, "one")
	h.data(t, 3, "three") // gap at 2 → subscribe to the channel
	if !h.env.Joined[channel] {
		t.Fatal("did not join retransmission channel on loss")
	}
	// A channel replay heals the gap before any NACK goes out.
	h.retrans(t, tSrcAddr, 2, "two")
	if h.env.Joined[channel] {
		t.Fatal("did not leave channel after healing")
	}
	h.env.Advance(5 * time.Second)
	if len(h.env.Sents) != 0 {
		t.Fatalf("NACKs sent despite channel recovery: %v", h.env.SentPackets())
	}
	st := h.r.Stats()
	if st.ChannelJoins != 1 || st.ChannelRecoveries != 1 {
		t.Fatalf("stats = %+v", st)
	}
	if len(h.got) != 3 || h.got[2].payload != "two" {
		t.Fatalf("delivered %v", h.got)
	}
}

func TestReceiverRetransChannelFallsBackToNack(t *testing.T) {
	const channel = wire.GroupID(99)
	h := newReceiver(t, ReceiverConfig{
		RetransChannel: channel,
		RetransWait:    50 * time.Millisecond,
		NackDelay:      10 * time.Millisecond,
	})
	h.data(t, 1, "one")
	h.data(t, 3, "three")
	// Nothing on the channel: after NackDelay+RetransWait the normal NACK
	// path starts.
	h.env.Advance(30 * time.Millisecond)
	if len(h.env.Sents) != 0 {
		t.Fatal("NACK sent before channel wait expired")
	}
	h.env.Advance(50 * time.Millisecond)
	sents := h.env.SentPackets()
	if len(sents) != 1 || sents[0].Type != wire.TypeNack {
		t.Fatalf("want NACK fallback, got %v", sents)
	}
	// Recovery via the secondary still heals and unsubscribes.
	h.retrans(t, tSecondary, 2, "two")
	if h.env.Joined[channel] {
		t.Fatal("still subscribed after recovery")
	}
}

func TestReceiverStopSilences(t *testing.T) {
	h := newReceiver(t, ReceiverConfig{NackDelay: 10 * time.Millisecond})
	h.data(t, 1, "one")
	h.data(t, 3, "three") // gap → recovery armed
	h.r.Stop()
	h.env.Advance(10 * time.Second)
	if len(h.env.Sents) != 0 {
		t.Fatalf("stopped receiver sent %d packets", len(h.env.Sents))
	}
	// Ignores traffic after Stop.
	h.data(t, 4, "four")
	if len(h.got) != 2 {
		t.Fatalf("stopped receiver delivered: %v", h.got)
	}
}

func TestReceiverOrderedBufferOverflowAbandonsOldestGap(t *testing.T) {
	h := newReceiver(t, ReceiverConfig{
		Ordered:          true,
		OrderedBufferMax: 4,
		NackDelay:        time.Hour, // recovery never fires: only overflow helps
	})
	h.data(t, 1, "one")
	// Hole at 2; buffer 3..7 (5 packets > max 4) → overflow abandons [2,2]
	// and flushes.
	for seq := uint64(3); seq <= 7; seq++ {
		h.data(t, seq, fmt.Sprintf("p%d", seq))
	}
	if len(h.lost) != 1 || !h.lost[0].Contains(2) {
		t.Fatalf("lost = %v, want seq 2 abandoned on overflow", h.lost)
	}
	want := []string{"one", "p3", "p4", "p5", "p6", "p7"}
	if len(h.got) != len(want) {
		t.Fatalf("delivered %v", h.got)
	}
	for i, w := range want {
		if h.got[i].payload != w {
			t.Fatalf("order = %v", h.got)
		}
	}
}

func TestReceiverRecoveryWindowSkipsForgedHead(t *testing.T) {
	h := newReceiver(t, ReceiverConfig{NackDelay: 10 * time.Millisecond, RecoveryWindow: 100})
	h.data(t, 1, "one")
	// A (forged or hopelessly-late) heartbeat claims seq 1<<50.
	h.heartbeat(t, 1<<50, 1)
	if h.r.Stats().SkippedAhead != 1 {
		t.Fatalf("stats = %+v, want a window skip", h.r.Stats())
	}
	if len(h.lost) != 1 || h.lost[0].From != 2 {
		t.Fatalf("OnLost = %v, want the skipped span reported", h.lost)
	}
	// Only the last 100 seqs are chased.
	h.env.Advance(50 * time.Millisecond)
	for _, p := range h.env.SentPackets() {
		if p.Type == wire.TypeNack {
			for _, rg := range p.Ranges {
				if rg.Count() > 100 || rg.From <= (1<<50)-100 {
					t.Fatalf("NACK chases outside the window: %v", rg)
				}
			}
		}
	}
	// The stream continues normally at the new head.
	h.data(t, 1<<50+1, "fresh")
	if h.got[len(h.got)-1].payload != "fresh" {
		t.Fatalf("delivery after skip: %v", h.got)
	}
}
