package core

import (
	"math/rand"
	"testing"
	"time"

	"lbrm/internal/transport"
	"lbrm/internal/wire"
)

// TestReceiverEscalationTimeBounded is the satellite property test for the
// chain's end-to-end latency: across random per-tier retry budgets and
// timeout bases, the time from loss detection to the source query — the
// full walk over every tier of a three-tier chain — never exceeds the
// analytic bound: NackDelay plus, per tier, the sum of that tier's
// jittered backoff intervals at their envelope maximum (+25%).
func TestReceiverEscalationTimeBounded(t *testing.T) {
	prng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 20; trial++ {
		base := time.Duration(20+prng.Intn(80)) * time.Millisecond
		nackDelay := time.Duration(1+prng.Intn(10)) * time.Millisecond
		secRetries := 1 + prng.Intn(3)
		priRetries := 1 + prng.Intn(3)
		h := newReceiver(t, ReceiverConfig{
			Loggers:          []transport.Addr{tSite, tRegional},
			NackDelay:        nackDelay,
			RequestTimeout:   base,
			SecondaryRetries: secRetries,
			PrimaryRetries:   priRetries,
		})
		h.data(t, 1, "one")
		h.data(t, 3, "three")

		// The bound: per tier, retries are spaced by the jittered backoff;
		// the next tier starts the instant the previous one exhausts. Site
		// and regional tiers spend SecondaryRetries intervals each, the
		// primary tier PrimaryRetries, all at the +25% envelope edge.
		bo := transport.Backoff{Base: base}
		bound := nackDelay
		for _, retries := range []int{secRetries, secRetries, priRetries} {
			for a := 0; a < retries; a++ {
				bound += time.Duration(float64(bo.Interval(a, nil)) * 1.25)
			}
		}

		step := time.Millisecond
		var elapsed, queryAt time.Duration
		queried := false
		for elapsed <= bound+step && !queried {
			h.env.Advance(step)
			elapsed += step
			for _, p := range h.env.SentPackets() {
				if p.Type == wire.TypePrimaryQuery {
					queried, queryAt = true, elapsed
				}
			}
		}
		if !queried {
			t.Fatalf("trial %d (base %v delay %v retries %d/%d): no source query within bound %v",
				trial, base, nackDelay, secRetries, priRetries, bound)
		}
		if queryAt > bound {
			t.Fatalf("trial %d: escalation took %v, bound %v", trial, queryAt, bound)
		}
	}
}
