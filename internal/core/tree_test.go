package core

import (
	"testing"
	"time"

	"lbrm/internal/transport"
	"lbrm/internal/transport/transporttest"
	"lbrm/internal/wire"
)

var (
	tSite     = transporttest.Addr("site")
	tRegional = transporttest.Addr("regional")
)

// treeReceiver builds a receiver with a two-tier logger chain: site
// secondary at tier 0, regional logger at tier 1, primary above both.
func treeReceiver(t *testing.T) *rcvHarness {
	t.Helper()
	return newReceiver(t, ReceiverConfig{
		Loggers:          []transport.Addr{tSite, tRegional},
		NackDelay:        10 * time.Millisecond,
		RequestTimeout:   50 * time.Millisecond,
		SecondaryRetries: 2,
		PrimaryRetries:   2,
	})
}

// TestReceiverEscalatesThroughChain: misses walk the chain tier by tier
// — site, regional, primary, source query — with each NACK stamped with
// its target's global tier and no tier skipped.
func TestReceiverEscalatesThroughChain(t *testing.T) {
	h := treeReceiver(t)
	h.data(t, 1, "one")
	h.data(t, 3, "three")
	h.env.Advance(5 * time.Second)
	var order []transport.Addr
	var tiers []int
	queries := 0
	for i, p := range h.env.SentPackets() {
		switch p.Type {
		case wire.TypeNack:
			order = append(order, h.env.Sents[i].To)
			tiers = append(tiers, p.Tier())
		case wire.TypePrimaryQuery:
			queries++
		}
	}
	wantOrder := []transport.Addr{tSite, tSite, tRegional, tRegional, tPrimary, tPrimary}
	wantTiers := []int{0, 0, 1, 1, 2, 2}
	if len(order) < len(wantOrder) {
		t.Fatalf("sent %d NACKs, want at least %d", len(order), len(wantOrder))
	}
	for i := range wantOrder {
		if order[i] != wantOrder[i] || tiers[i] != wantTiers[i] {
			t.Fatalf("NACK %d: to %v tier %d, want %v tier %d",
				i, order[i], tiers[i], wantOrder[i], wantTiers[i])
		}
	}
	// Post-query retries stay at the primary with the primary's tier.
	for i := len(wantOrder); i < len(order); i++ {
		if order[i] != tPrimary || tiers[i] != 2 {
			t.Fatalf("post-query NACK %d: to %v tier %d, want primary tier 2", i, order[i], tiers[i])
		}
	}
	if queries != 1 {
		t.Fatalf("primary queries = %d, want 1", queries)
	}
	got := h.r.Stats()
	// site → regional → primary: two tier escalations (the source query
	// is counted separately, as PrimaryQueries).
	if got.Escalations != 2 {
		t.Fatalf("stats = %+v, want 2 escalations", got)
	}
	if got.NacksToSecondary != 2 || got.NacksToPrimary < 4 {
		t.Fatalf("stats = %+v, want 2 on-site NACKs and ≥4 off-site NACKs", got)
	}
	if len(h.lost) == 0 {
		t.Fatal("chain exhaustion did not abandon the range")
	}
}

// TestReceiverChainRecoversMidTier: a retransmission from a mid-chain
// tier ends the episode without bothering the tiers above it.
func TestReceiverChainRecoversMidTier(t *testing.T) {
	h := treeReceiver(t)
	h.data(t, 1, "one")
	h.data(t, 3, "three")
	// Burn through the site logger's retries so the episode reaches the
	// regional tier, then serve from there.
	h.env.Advance(200 * time.Millisecond)
	h.retrans(t, tRegional, 2, "two")
	h.env.Sents = nil
	h.env.Advance(5 * time.Second)
	for i, p := range h.env.SentPackets() {
		if p.Type == wire.TypeNack && h.env.Sents[i].To == tPrimary {
			t.Fatal("NACK reached the primary after a regional repair")
		}
	}
	if h.r.Contiguous(streamKey) != 3 {
		t.Fatalf("Contiguous = %d, want 3", h.r.Contiguous(streamKey))
	}
}

// TestReceiverReparentRetargetsTier: a restarted regional logger's
// announcement replaces the chain slot and re-fires an in-flight retry
// at the new address; replays and stale primary epochs are fenced.
func TestReceiverReparentRetargetsTier(t *testing.T) {
	h := treeReceiver(t)
	reborn := transporttest.Addr("regional2")
	h.data(t, 1, "one")
	h.data(t, 3, "three")
	// Reach the regional tier (2 site retries ≈ 10ms + 50ms + 100ms).
	h.env.Advance(200 * time.Millisecond)
	h.env.Sents = nil

	ann := wire.Packet{Type: wire.TypeReparent, Group: tGroup,
		TreeEpoch: 2, Addr: reborn.String()}
	ann.SetTier(1)
	b, _ := ann.Marshal()
	h.r.Recv(reborn, b)
	got := h.r.Stats()
	if got.ReparentsFollowed != 1 {
		t.Fatalf("stats = %+v, want 1 reparent followed", got)
	}
	// The in-flight regional retry re-fired immediately at the new node.
	sents := h.env.SentPackets()
	if len(sents) == 0 || h.env.Sents[0].To != reborn {
		t.Fatalf("no NACK re-fired at reborn regional; sents = %v", sents)
	}
	if sents[0].Tier() != 1 {
		t.Fatalf("re-fired NACK tier = %d, want 1", sents[0].Tier())
	}

	// An exact replay is fenced by the per-tier tree epoch.
	h.r.Recv(reborn, b)
	if got := h.r.Stats(); got.StaleReparents != 1 {
		t.Fatalf("stats after replay = %+v, want 1 stale reparent", got)
	}

	// After observing primary epoch 5, an announcement stamped with an
	// older primary epoch is fenced even with a fresh tree epoch.
	hb := wire.Packet{Type: wire.TypeHeartbeat, Source: tSource, Group: tGroup,
		Seq: 3, HeartbeatIdx: 1, PrimaryEpoch: 5}
	hbuf, _ := hb.Marshal()
	h.r.Recv(tSrcAddr, hbuf)
	stale := wire.Packet{Type: wire.TypeReparent, Group: tGroup,
		TreeEpoch: 3, Epoch: 4, Addr: tRegional.String()}
	stale.SetTier(1)
	sb, _ := stale.Marshal()
	h.r.Recv(tRegional, sb)
	got = h.r.Stats()
	if got.StaleReparents != 2 || got.ReparentsFollowed != 1 {
		t.Fatalf("stats after stale epoch = %+v", got)
	}
}

// TestReceiverReparentIgnoresForeignTiers: announcements for tiers the
// chain does not cover (tier 0 never announces; the primary tier is the
// redirect protocol's) leave the chain alone.
func TestReceiverReparentIgnoresForeignTiers(t *testing.T) {
	h := treeReceiver(t)
	for _, tier := range []int{0, 2, 5} {
		ann := wire.Packet{Type: wire.TypeReparent, Group: tGroup,
			TreeEpoch: 9, Addr: transporttest.Addr("imposter").String()}
		ann.SetTier(tier)
		b, _ := ann.Marshal()
		h.r.Recv(transporttest.Addr("imposter"), b)
	}
	got := h.r.Stats()
	if got.ReparentsFollowed != 0 || got.StaleReparents != 0 {
		t.Fatalf("foreign-tier announcements moved the chain: %+v", got)
	}
}
