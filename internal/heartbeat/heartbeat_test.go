package heartbeat

import (
	"math"
	"testing"
	"testing/quick"
	"time"
)

func TestValidate(t *testing.T) {
	cases := []struct {
		name string
		p    Params
		ok   bool
	}{
		{"default", DefaultParams, true},
		{"fixed", Fixed(time.Second), true},
		{"zero hmin", Params{HMax: time.Second, Backoff: 2}, false},
		{"hmax < hmin", Params{HMin: 2 * time.Second, HMax: time.Second, Backoff: 2}, false},
		{"backoff < 1", Params{HMin: time.Second, HMax: time.Minute, Backoff: 0.5}, false},
		{"backoff 1 variable", Params{HMin: time.Second, HMax: time.Minute, Backoff: 1}, false},
		{"backoff 1.5", Params{HMin: time.Second, HMax: time.Minute, Backoff: 1.5}, true},
	}
	for _, tc := range cases {
		if err := tc.p.Validate(); (err == nil) != tc.ok {
			t.Errorf("%s: Validate() = %v, want ok=%v", tc.name, err, tc.ok)
		}
	}
}

func TestScheduleIntervalSequence(t *testing.T) {
	s, err := NewSchedule(DefaultParams)
	if err != nil {
		t.Fatal(err)
	}
	if got := s.OnData(); got != 250*time.Millisecond {
		t.Fatalf("OnData() = %v, want 250ms", got)
	}
	want := []time.Duration{
		500 * time.Millisecond, time.Second, 2 * time.Second, 4 * time.Second,
		8 * time.Second, 16 * time.Second, 32 * time.Second,
		32 * time.Second, 32 * time.Second, // capped
	}
	for i, w := range want {
		if got := s.OnHeartbeat(); got != w {
			t.Fatalf("heartbeat %d interval = %v, want %v", i+1, got, w)
		}
	}
	if s.Index() != uint32(len(want)) {
		t.Fatalf("Index() = %d, want %d", s.Index(), len(want))
	}
	// Data resets.
	if got := s.OnData(); got != 250*time.Millisecond {
		t.Fatalf("OnData() after burst = %v, want 250ms", got)
	}
	if s.Index() != 0 {
		t.Fatalf("Index() after data = %d, want 0", s.Index())
	}
}

func TestTimesMatchesPaperTimeline(t *testing.T) {
	// Figure 3 timeline for hmin=0.25, backoff=2: heartbeats at
	// 0.25, 0.75, 1.75, 3.75, 7.75, ... after the data packet.
	got := Times(DefaultParams, 10*time.Second, 0)
	want := []time.Duration{
		250 * time.Millisecond, 750 * time.Millisecond,
		1750 * time.Millisecond, 3750 * time.Millisecond,
		7750 * time.Millisecond,
	}
	if len(got) != len(want) {
		t.Fatalf("Times = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Times[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestCountVariableDISScenario(t *testing.T) {
	// dt = 120s (terrain changes every two minutes): heartbeats at
	// 0.25,0.75,1.75,3.75,7.75,15.75,31.75,63.75,95.75 → 9.
	if got := CountVariable(DefaultParams, 120*time.Second); got != 9 {
		t.Fatalf("CountVariable(120s) = %d, want 9", got)
	}
	if got := CountFixed(DefaultParams, 120*time.Second); got != 479 {
		t.Fatalf("CountFixed(120s) = %d, want 479", got)
	}
	// Paper: "the variable heartbeat reduces heartbeat bandwidth by a
	// factor of 53.4" (Fig 5) / 53.3 (Table 1). Our exact discrete count
	// gives 479/9 = 53.2; accept the paper's band.
	ratio := OverheadRatio(DefaultParams, 120*time.Second)
	if ratio < 52 || ratio > 54 {
		t.Fatalf("OverheadRatio(120s) = %.1f, want ≈53", ratio)
	}
}

func TestNoHeartbeatsWhenDataFasterThanHMin(t *testing.T) {
	if got := CountVariable(DefaultParams, 250*time.Millisecond); got != 0 {
		t.Fatalf("CountVariable(hmin) = %d, want 0 (data preempts)", got)
	}
	if got := CountFixed(DefaultParams, 250*time.Millisecond); got != 0 {
		t.Fatalf("CountFixed(hmin) = %d, want 0", got)
	}
	if got := CountVariable(DefaultParams, 100*time.Millisecond); got != 0 {
		t.Fatalf("CountVariable(0.1s) = %d, want 0", got)
	}
}

func TestVariableNeverExceedsFixed(t *testing.T) {
	for dt := 100 * time.Millisecond; dt < 1000*time.Second; dt = dt * 13 / 10 {
		v := CountVariable(DefaultParams, dt)
		f := CountFixed(DefaultParams, dt)
		if v > f {
			t.Fatalf("dt=%v: variable %d > fixed %d", dt, v, f)
		}
	}
}

func TestRateLimits(t *testing.T) {
	// Figure 4's asymptotes: variable → 1/HMax, fixed → 1/HMin as dt → ∞.
	p := DefaultParams
	dt := 100000 * time.Second
	if r := RateVariable(p, dt); math.Abs(r-1.0/32) > 0.002 {
		t.Errorf("RateVariable(∞) = %v, want ≈1/32", r)
	}
	if r := RateFixed(p, dt); math.Abs(r-4) > 0.01 {
		t.Errorf("RateFixed(∞) = %v, want ≈4", r)
	}
}

func TestOverheadRatioTable1Shape(t *testing.T) {
	// Table 1: the ratio grows monotonically with backoff at dt=120s.
	backoffs := []float64{1.5, 2.0, 2.5, 3.0, 3.5, 4.0}
	prev := 0.0
	for _, b := range backoffs {
		p := Params{HMin: 250 * time.Millisecond, HMax: 32 * time.Second, Backoff: b}
		r := OverheadRatio(p, 120*time.Second)
		if r < prev {
			t.Fatalf("ratio not monotone in backoff: backoff=%v ratio=%.1f < previous %.1f", b, r, prev)
		}
		prev = r
	}
	if prev < 60 {
		t.Fatalf("ratio at backoff=4 is %.1f, want > 60", prev)
	}
}

func TestExpectedCountsExponentialModel(t *testing.T) {
	p := DefaultParams
	// Closed form sanity: fixed expected count at mean 120s.
	f := ExpectedCountFixed(p, 120*time.Second)
	if math.Abs(f-479.5) > 1 {
		t.Errorf("ExpectedCountFixed = %.1f, want ≈479.5", f)
	}
	v := ExpectedCountVariable(p, 120*time.Second)
	if v < 8 || v > 11 {
		t.Errorf("ExpectedCountVariable = %.2f, want ≈9.2", v)
	}
	// Expected ratio lands in the same ≈50x regime as the deterministic one.
	if r := f / v; r < 45 || r > 60 {
		t.Errorf("expected-model ratio = %.1f, want ≈52", r)
	}
}

func TestDetectionDelayIsolatedLoss(t *testing.T) {
	// An isolated loss (burst shorter than HMin) is detected at HMin.
	for _, burst := range []time.Duration{0, time.Millisecond, 249 * time.Millisecond} {
		if got := DetectionDelay(DefaultParams, burst); got != 250*time.Millisecond {
			t.Fatalf("DetectionDelay(%v) = %v, want 250ms", burst, got)
		}
	}
}

func TestDetectionDelayBurstBound(t *testing.T) {
	// §2.1.1: detection ≤ 2×t_burst (backoff 2), and ≤ t_burst + HMax.
	for burst := 300 * time.Millisecond; burst < 300*time.Second; burst = burst * 17 / 10 {
		d := DetectionDelay(DefaultParams, burst)
		if d < burst {
			t.Fatalf("burst=%v: detection %v before burst end", burst, d)
		}
		if bound := DetectionBound(DefaultParams, burst); d > bound {
			t.Fatalf("burst=%v: detection %v exceeds bound %v", burst, d, bound)
		}
	}
}

// Property: for any valid params and burst, the detection delay respects
// the paper's bound and is at least the burst length.
func TestDetectionBoundProperty(t *testing.T) {
	f := func(hminMS, burstMS uint16, backoffTenths uint8) bool {
		hmin := time.Duration(int(hminMS)%1000+1) * time.Millisecond
		backoff := 1.1 + float64(backoffTenths%30)/10
		p := Params{HMin: hmin, HMax: hmin * 128, Backoff: backoff}
		if p.Validate() != nil {
			return true
		}
		burst := time.Duration(burstMS) * time.Millisecond
		d := DetectionDelay(p, burst)
		if burst <= p.HMin {
			return d == p.HMin
		}
		// d ≥ burst and d ≤ the exact analytic bound.
		return d >= burst && d <= DetectionBound(p, burst)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// Property: the schedule's emitted intervals are nondecreasing between
// data packets and never exceed HMax.
func TestScheduleMonotoneProperty(t *testing.T) {
	f := func(steps uint8) bool {
		s, err := NewSchedule(DefaultParams)
		if err != nil {
			return false
		}
		prev := s.OnData()
		for i := 0; i < int(steps); i++ {
			next := s.OnHeartbeat()
			if next < prev || next > DefaultParams.HMax {
				return false
			}
			prev = next
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: Times(), CountVariable() and the live Schedule agree.
func TestAnalyticsMatchScheduleProperty(t *testing.T) {
	f := func(dtMS uint32) bool {
		dt := time.Duration(dtMS%10000000) * time.Millisecond
		times := Times(DefaultParams, dt, 0)
		if len(times) != CountVariable(DefaultParams, dt) {
			return false
		}
		// Replay through a live schedule.
		s, _ := NewSchedule(DefaultParams)
		t := s.OnData()
		for i := 0; ; i++ {
			if t >= dt {
				return i == len(times)
			}
			if i >= len(times) || times[i] != t {
				return false
			}
			t += s.OnHeartbeat()
		}
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestFixedScheduleConstantInterval(t *testing.T) {
	s, err := NewSchedule(Fixed(time.Second))
	if err != nil {
		t.Fatal(err)
	}
	if s.OnData() != time.Second {
		t.Fatal("fixed OnData != h")
	}
	for i := 0; i < 10; i++ {
		if s.OnHeartbeat() != time.Second {
			t.Fatal("fixed OnHeartbeat != h")
		}
	}
}
