// Package heartbeat implements LBRM's variable heartbeat scheme (§2.1) and
// the fixed-rate baseline it is compared against, plus the analytic
// overhead and loss-detection models behind the paper's Figure 4, Figure 5
// and Table 1.
//
// In the variable scheme the sender keeps an inter-heartbeat time h. Every
// data transmission resets h to HMin; after each heartbeat is sent, h is
// multiplied by Backoff, saturating at HMax. Heartbeats therefore cluster
// right after data — where fast loss detection matters — and thin out as
// the channel stays idle.
package heartbeat

import (
	"fmt"
	"math"
	"time"
)

// DefaultParams are the paper's DIS parameters: 1/4-second minimum
// heartbeat (the terrain freshness requirement), 32-second maximum, and a
// backoff multiple of 2.
var DefaultParams = Params{
	HMin:    250 * time.Millisecond,
	HMax:    32 * time.Second,
	Backoff: 2,
}

// Params configures a heartbeat schedule.
type Params struct {
	// HMin is the interval from a data packet to the first heartbeat, and
	// the fixed baseline's constant interval. It equals the application's
	// MaxIT freshness requirement.
	HMin time.Duration
	// HMax caps the inter-heartbeat interval.
	HMax time.Duration
	// Backoff multiplies the interval after each heartbeat (paper footnote
	// 2 allows any multiple; the paper's implementation uses 2).
	Backoff float64
}

// Validate reports whether the parameters are usable.
func (p Params) Validate() error {
	if p.HMin <= 0 {
		return fmt.Errorf("heartbeat: HMin %v must be positive", p.HMin)
	}
	if p.HMax < p.HMin {
		return fmt.Errorf("heartbeat: HMax %v < HMin %v", p.HMax, p.HMin)
	}
	if p.Backoff < 1 {
		return fmt.Errorf("heartbeat: backoff %v must be ≥ 1", p.Backoff)
	}
	if p.Backoff == 1 && p.HMax != p.HMin {
		// Backoff 1 degenerates to the fixed scheme; allow it only when
		// explicitly fixed (HMax == HMin) to avoid silent misconfiguration.
		return fmt.Errorf("heartbeat: backoff 1 requires HMax == HMin")
	}
	return nil
}

// Fixed returns the fixed-heartbeat baseline with interval h (the basic
// receiver-reliable scheme of §2).
func Fixed(h time.Duration) Params {
	return Params{HMin: h, HMax: h, Backoff: 1}
}

// Schedule tracks the current inter-heartbeat interval for one sender.
// It is pure bookkeeping: the caller (the LBRM sender) owns the timers.
type Schedule struct {
	p Params
	h time.Duration
	// idx counts heartbeats since the last data packet.
	idx uint32
}

// NewSchedule returns a schedule in the post-data state: the first interval
// returned by OnData applies after the stream's first transmission.
func NewSchedule(p Params) (*Schedule, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return &Schedule{p: p, h: p.HMin}, nil
}

// Params returns the schedule's parameters.
func (s *Schedule) Params() Params { return s.p }

// OnData records a data transmission and returns the interval until the
// next heartbeat (HMin).
func (s *Schedule) OnData() time.Duration {
	s.h = s.p.HMin
	s.idx = 0
	return s.h
}

// OnHeartbeat records that a heartbeat was sent and returns the interval
// until the next one (previous interval × backoff, capped at HMax).
func (s *Schedule) OnHeartbeat() time.Duration {
	s.idx++
	next := time.Duration(float64(s.h) * s.p.Backoff)
	if next > s.p.HMax || next < s.h /* overflow */ {
		next = s.p.HMax
	}
	s.h = next
	return s.h
}

// Index returns the number of heartbeats sent since the last data packet.
func (s *Schedule) Index() uint32 { return s.idx }

// Times returns the heartbeat offsets after a data packet that fall
// strictly inside an idle period of length dt (the next data packet at dt
// preempts any heartbeat due exactly then), up to max entries (max ≤ 0
// means no cap).
func Times(p Params, dt time.Duration, max int) []time.Duration {
	var out []time.Duration
	h := p.HMin
	t := p.HMin
	for t < dt {
		out = append(out, t)
		if max > 0 && len(out) >= max {
			break
		}
		h = time.Duration(float64(h) * p.Backoff)
		if h > p.HMax || h <= 0 {
			h = p.HMax
		}
		t += h
	}
	return out
}

// CountVariable returns the number of heartbeats the variable scheme emits
// during an idle period of length dt between two data packets.
func CountVariable(p Params, dt time.Duration) int {
	n := 0
	h := p.HMin
	t := p.HMin
	for t < dt {
		n++
		h = time.Duration(float64(h) * p.Backoff)
		if h > p.HMax || h <= 0 {
			h = p.HMax
		}
		t += h
	}
	return n
}

// CountFixed returns the number of heartbeats the fixed scheme (interval
// HMin) emits during an idle period of length dt.
func CountFixed(p Params, dt time.Duration) int {
	if dt <= p.HMin {
		return 0
	}
	n := int(dt / p.HMin)
	if dt%p.HMin == 0 {
		n-- // the heartbeat due exactly at dt is preempted by the data packet
	}
	return n
}

// RateVariable returns the variable scheme's heartbeat packets/second for
// periodic data at interval dt (Figure 4's falling curve).
func RateVariable(p Params, dt time.Duration) float64 {
	if dt <= 0 {
		return 0
	}
	return float64(CountVariable(p, dt)) / dt.Seconds()
}

// RateFixed returns the fixed scheme's heartbeat packets/second for
// periodic data at interval dt (Figure 4's plateau at 1/HMin).
func RateFixed(p Params, dt time.Duration) float64 {
	if dt <= 0 {
		return 0
	}
	return float64(CountFixed(p, dt)) / dt.Seconds()
}

// OverheadRatio returns RateFixed/RateVariable — Figure 5's curve and
// Table 1's metric. It returns NaN when the variable scheme emits no
// heartbeats (dt ≤ HMin).
func OverheadRatio(p Params, dt time.Duration) float64 {
	v := CountVariable(p, dt)
	f := CountFixed(p, dt)
	if v == 0 {
		return math.NaN()
	}
	return float64(f) / float64(v)
}

// ExpectedCountVariable returns the expected heartbeats per data interval
// when data inter-arrival times are exponential with the given mean — the
// smooth-model alternative to the deterministic count (used to
// cross-check Table 1; see EXPERIMENTS.md).
func ExpectedCountVariable(p Params, mean time.Duration) float64 {
	sum := 0.0
	h := p.HMin
	t := p.HMin
	m := mean.Seconds()
	for i := 0; i < 100000; i++ {
		term := math.Exp(-t.Seconds() / m)
		sum += term
		if term < 1e-12 {
			break
		}
		h = time.Duration(float64(h) * p.Backoff)
		if h > p.HMax || h <= 0 {
			h = p.HMax
		}
		t += h
	}
	return sum
}

// ExpectedCountFixed is ExpectedCountVariable for the fixed scheme; it has
// the closed form 1/(e^(HMin/mean) − 1).
func ExpectedCountFixed(p Params, mean time.Duration) float64 {
	return 1 / (math.Expm1(p.HMin.Seconds() / mean.Seconds()))
}

// DetectionDelay returns how long after a lost data packet's transmission
// the receiver detects the loss, for the paper's burst congestion model
// (§2.1.1): the data packet is sent at the start of a burst of length
// tBurst during which the receiver gets nothing; the first heartbeat
// escaping the burst reveals the gap. A zero result means no heartbeat
// ever escapes (cannot happen for valid params since intervals cap at
// HMax).
func DetectionDelay(p Params, tBurst time.Duration) time.Duration {
	h := p.HMin
	t := p.HMin
	for {
		if t >= tBurst {
			return t
		}
		h = time.Duration(float64(h) * p.Backoff)
		if h > p.HMax || h <= 0 {
			h = p.HMax
		}
		t += h
	}
}

// DetectionBound returns the analytic bound on DetectionDelay: HMin for
// isolated losses, otherwise backoff×tBurst+HMin (since heartbeat offsets
// satisfy t_{k+1} = backoff·t_k + HMin), capped at tBurst+HMax once
// intervals saturate. The paper states the backoff-2 case loosely as
// "2×t_burst".
func DetectionBound(p Params, tBurst time.Duration) time.Duration {
	if tBurst <= p.HMin {
		return p.HMin
	}
	b := time.Duration(p.Backoff*float64(tBurst)) + p.HMin
	if cap := tBurst + p.HMax; b > cap {
		return cap
	}
	return b
}
