// Package srm implements a wb-style reliable multicast baseline — the
// "lightweight sessions" recovery scheme of Floyd, Jacobson, Liu, McCanne
// and Zhang that LBRM's §6 compares against.
//
// Recovery is unorganized: a receiver that detects a loss multicasts a
// repair request to the whole group after a randomized delay proportional
// to its distance from the source (to let another member's identical
// request suppress its own); any member holding the data multicasts the
// repair, again after a randomized suppression delay. The result is highly
// fault-tolerant but pays ≥ one group-wide request plus one group-wide
// repair per loss, and its recovery time is a small multiple of the RTT to
// the source even for losses a LAN away — exactly the costs LBRM's
// organized hierarchy avoids.
//
// Session messages announcing the highest sequence number double as the
// loss detector for idle periods, like LBRM's fixed heartbeat baseline.
package srm

import (
	"time"

	"lbrm/internal/seqtrack"
	"lbrm/internal/transport"
	"lbrm/internal/vtime"
	"lbrm/internal/wire"
)

// Config parametrizes an SRM member. Request timers are drawn uniformly
// from [C1·d, (C1+C2)·d] where d is the member's one-way delay estimate to
// the source; repair timers from [D1·d, (D1+D2)·d]. The defaults are the
// SRM paper's.
type Config struct {
	// Group is the multicast group.
	Group wire.GroupID
	// Source is the stream identity (the sending member sets IsSource).
	Source wire.SourceID
	// IsSource marks the data source member.
	IsSource bool
	// SessionInterval is the fixed session-message period (source only).
	SessionInterval time.Duration
	// DistanceToSource is the member's one-way delay estimate to the
	// source (SRM learns this from session timestamps; the testbed injects
	// the true value).
	DistanceToSource time.Duration
	// C1, C2 scale the request timer; D1, D2 the repair timer.
	C1, C2, D1, D2 float64
	// OnData observes delivered packets (receivers).
	OnData func(seq uint64, payload []byte, recovered bool)
}

func (c Config) withDefaults() Config {
	if c.SessionInterval == 0 {
		c.SessionInterval = time.Second
	}
	if c.C1 == 0 {
		c.C1 = 2
	}
	if c.C2 == 0 {
		c.C2 = 2
	}
	if c.D1 == 0 {
		c.D1 = 1
	}
	if c.D2 == 0 {
		c.D2 = 1
	}
	if c.DistanceToSource == 0 {
		c.DistanceToSource = 40 * time.Millisecond
	}
	return c
}

// Stats counts a member's protocol activity.
type Stats struct {
	DataSent           uint64
	SessionsSent       uint64
	Delivered          uint64
	Duplicates         uint64
	RequestsSent       uint64 // multicast repair requests
	RequestsSuppressed uint64
	RepairsSent        uint64 // multicast repairs
	RepairsSuppressed  uint64
	Recovered          uint64
	Malformed          uint64
}

// Member is one SRM group member (source or receiver; every member caches
// data and participates in repair).
type Member struct {
	cfg Config
	env transport.Env

	seq   uint64 // source: last sent
	cache map[uint64][]byte
	track seqtrack.Tracker

	// pending repair requests (we are missing the packet).
	reqTimers map[uint64]*srmTimer
	// pending repairs (we hold the packet, someone asked).
	repTimers map[uint64]*srmTimer
	// loss detection → recovery latency measurement.
	lossAt map[uint64]time.Time
	// RecoveryTimes records, per recovered seq, detection → delivery.
	RecoveryTimes map[uint64]time.Duration

	stats Stats
}

type srmTimer struct {
	timer    vtime.Timer
	interval time.Duration
}

// New returns an SRM member.
func New(cfg Config) *Member {
	return &Member{
		cfg:           cfg.withDefaults(),
		cache:         make(map[uint64][]byte),
		reqTimers:     make(map[uint64]*srmTimer),
		repTimers:     make(map[uint64]*srmTimer),
		lossAt:        make(map[uint64]time.Time),
		RecoveryTimes: make(map[uint64]time.Duration),
	}
}

// Stats returns a snapshot of the member's counters.
func (m *Member) Stats() Stats { return m.stats }

// SetDistance updates the member's one-way delay estimate to the source
// (in real SRM this is learned from session-message timestamps; testbeds
// inject the true value).
func (m *Member) SetDistance(d time.Duration) { m.cfg.DistanceToSource = d }

// Contiguous returns the in-order watermark.
func (m *Member) Contiguous() uint64 { return m.track.Contiguous() }

// Start implements transport.Handler.
func (m *Member) Start(env transport.Env) {
	m.env = env
	if err := env.Join(m.cfg.Group); err != nil {
		panic("srm: join failed: " + err.Error())
	}
	if m.cfg.IsSource {
		m.env.AfterFunc(m.cfg.SessionInterval, m.sessionTick)
	}
}

// Send multicasts one data packet (source only).
func (m *Member) Send(payload []byte) (uint64, error) {
	m.seq++
	p := wire.Packet{
		Type: wire.TypeData, Source: m.cfg.Source, Group: m.cfg.Group,
		Seq: m.seq, Payload: payload,
	}
	m.track.Mark(m.seq)
	m.cache[m.seq] = append([]byte(nil), payload...)
	m.stats.DataSent++
	return m.seq, m.multicast(&p)
}

func (m *Member) sessionTick() {
	p := wire.Packet{
		Type: wire.TypeHeartbeat, Source: m.cfg.Source, Group: m.cfg.Group,
		Seq: m.seq,
	}
	_ = m.multicast(&p)
	m.stats.SessionsSent++
	m.env.AfterFunc(m.cfg.SessionInterval, m.sessionTick)
}

// Recv implements transport.Handler.
func (m *Member) Recv(from transport.Addr, data []byte) {
	var p wire.Packet
	if err := p.Unmarshal(data); err != nil {
		m.stats.Malformed++
		return
	}
	if p.Group != m.cfg.Group || p.Source != m.cfg.Source {
		return
	}
	switch p.Type {
	case wire.TypeData, wire.TypeRetrans:
		m.onData(&p)
	case wire.TypeHeartbeat:
		m.onSession(&p)
	case wire.TypeNack:
		m.onRequest(&p)
	}
}

func (m *Member) onData(p *wire.Packet) {
	if !m.track.Contacted() && p.Seq > 0 {
		m.track.SetBase(p.Seq - 1)
	}
	recovered := p.Type == wire.TypeRetrans
	if !m.track.Mark(p.Seq) {
		m.stats.Duplicates++
		// A repair we were about to send was beaten by someone else's.
		if recovered {
			m.suppressRepair(p.Seq)
		}
		return
	}
	m.cache[p.Seq] = append([]byte(nil), p.Payload...)
	m.stats.Delivered++
	// Cancel our own pending request; record recovery latency.
	if st := m.reqTimers[p.Seq]; st != nil {
		st.timer.Stop()
		delete(m.reqTimers, p.Seq)
	}
	if at, ok := m.lossAt[p.Seq]; ok {
		m.RecoveryTimes[p.Seq] = m.env.Now().Sub(at)
		delete(m.lossAt, p.Seq)
		m.stats.Recovered++
	}
	if recovered {
		m.suppressRepair(p.Seq)
	}
	if m.cfg.OnData != nil {
		m.cfg.OnData(p.Seq, p.Payload, recovered)
	}
	m.detectLosses(p.Seq)
}

func (m *Member) onSession(p *wire.Packet) {
	if m.track.SetBase(p.Seq) {
		return // first contact: adopt the position, request nothing
	}
	m.detectLosses(p.Seq)
}

// srmWindow bounds how far behind a member will chase repairs; further
// behind it adopts the stream position (bounding the per-seq timer state).
const srmWindow = 2048

// detectLosses schedules randomized repair requests for every hole up to
// hi.
func (m *Member) detectLosses(hi uint64) {
	if hi < m.track.Highest() {
		hi = m.track.Highest()
	}
	if hi > m.track.Contiguous()+srmWindow {
		m.track.Advance(hi - srmWindow)
	}
	now := m.env.Now()
	for _, rg := range m.track.Missing(hi, 0) {
		for seq := rg.From; seq <= rg.To; seq++ {
			if m.reqTimers[seq] != nil {
				continue
			}
			if _, ok := m.lossAt[seq]; !ok {
				m.lossAt[seq] = now
			}
			m.scheduleRequest(seq, 1)
		}
	}
}

// scheduleRequest arms the randomized request timer (backoff doubles the
// interval on suppression).
func (m *Member) scheduleRequest(seq uint64, mult float64) {
	d := float64(m.cfg.DistanceToSource)
	lo := m.cfg.C1 * d * mult
	span := m.cfg.C2 * d * mult
	wait := time.Duration(lo + m.env.Rand().Float64()*span)
	st := &srmTimer{interval: wait}
	st.timer = m.env.AfterFunc(wait, func() {
		delete(m.reqTimers, seq)
		if m.track.Seen(seq) {
			return
		}
		req := wire.Packet{
			Type: wire.TypeNack, Source: m.cfg.Source, Group: m.cfg.Group,
			Ranges: []wire.SeqRange{{From: seq, To: seq}},
		}
		_ = m.multicast(&req)
		m.stats.RequestsSent++
		// Re-arm with backoff in case the repair never comes.
		m.scheduleRequest(seq, mult*2)
	})
	m.reqTimers[seq] = st
}

// onRequest handles a multicast repair request: suppress our own pending
// request for the same data, and schedule a repair if we hold it.
func (m *Member) onRequest(p *wire.Packet) {
	for _, rg := range p.Ranges {
		for seq := rg.From; seq <= rg.To; seq++ {
			// Request suppression: someone else asked first; back off.
			if st := m.reqTimers[seq]; st != nil {
				st.timer.Stop()
				delete(m.reqTimers, seq)
				m.stats.RequestsSuppressed++
				m.scheduleRequest(seq, 2)
				continue
			}
			if payload, ok := m.cache[seq]; ok && m.repTimers[seq] == nil {
				m.scheduleRepair(seq, payload)
			}
		}
	}
}

func (m *Member) scheduleRepair(seq uint64, payload []byte) {
	d := float64(m.cfg.DistanceToSource)
	wait := time.Duration(m.cfg.D1*d + m.env.Rand().Float64()*m.cfg.D2*d)
	st := &srmTimer{interval: wait}
	st.timer = m.env.AfterFunc(wait, func() {
		delete(m.repTimers, seq)
		rep := wire.Packet{
			Type: wire.TypeRetrans, Flags: wire.FlagRetransmission,
			Source: m.cfg.Source, Group: m.cfg.Group, Seq: seq, Payload: payload,
		}
		_ = m.multicast(&rep)
		m.stats.RepairsSent++
	})
	m.repTimers[seq] = st
}

// suppressRepair cancels our pending repair when another member's repair
// for the same data is heard.
func (m *Member) suppressRepair(seq uint64) {
	if st := m.repTimers[seq]; st != nil {
		st.timer.Stop()
		delete(m.repTimers, seq)
		m.stats.RepairsSuppressed++
	}
}

func (m *Member) multicast(p *wire.Packet) error {
	buf, err := p.Marshal()
	if err != nil {
		return err
	}
	return m.env.Multicast(m.cfg.Group, transport.TTLGlobal, buf)
}
