package srm

import (
	"fmt"
	"testing"
	"time"

	"lbrm/internal/netsim"
	"lbrm/internal/wire"
)

const g = wire.GroupID(4)

type fleet struct {
	net     *netsim.Network
	source  *Member
	members []*Member
	nodes   []*netsim.Node
	sites   []*netsim.Site
}

// build creates a source plus receivers spread across sites, with correct
// distance estimates injected.
func build(t *testing.T, seed int64, sites, perSite int) *fleet {
	t.Helper()
	f := &fleet{net: netsim.New(seed)}
	srcSite := f.net.NewSite(netsim.SiteParams{Name: "src"})
	f.source = New(Config{Group: g, Source: 1, IsSource: true,
		SessionInterval: 200 * time.Millisecond})
	srcNode := srcSite.NewHost("source", f.source)
	for i := 0; i < sites; i++ {
		site := f.net.NewSite(netsim.SiteParams{Name: fmt.Sprintf("s%d", i)})
		f.sites = append(f.sites, site)
		for j := 0; j < perSite; j++ {
			m := New(Config{Group: g, Source: 1})
			node := site.NewHost("", m)
			f.members = append(f.members, m)
			f.nodes = append(f.nodes, node)
			// Inject the true one-way distance (SRM learns it from
			// session timestamps).
			m.SetDistance(f.net.PathDelay(srcNode.ID(), node.ID()))
		}
	}
	f.net.Start()
	return f
}

func TestSRMLosslessDelivery(t *testing.T) {
	f := build(t, 1, 2, 3)
	for i := 0; i < 5; i++ {
		if _, err := f.source.Send([]byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
		f.net.RunFor(100 * time.Millisecond)
	}
	f.net.RunFor(time.Second)
	for i, m := range f.members {
		if m.Contiguous() != 5 {
			t.Fatalf("member %d contig = %d, want 5", i, m.Contiguous())
		}
		if st := m.Stats(); st.RequestsSent != 0 || st.RepairsSent != 0 {
			t.Fatalf("member %d recovery traffic on lossless run: %+v", i, st)
		}
	}
}

func TestSRMRecoversSingleLoss(t *testing.T) {
	f := build(t, 2, 2, 3)
	f.source.Send([]byte("one"))
	f.net.RunFor(200 * time.Millisecond)
	// One member's downlink drops the next packet.
	f.nodes[0].DownLink().SetLoss(&netsim.FirstN{N: 1})
	f.source.Send([]byte("two"))
	f.net.RunFor(3 * time.Second)
	for i, m := range f.members {
		if m.Contiguous() != 2 {
			t.Fatalf("member %d contig = %d, want 2", i, m.Contiguous())
		}
	}
	victim := f.members[0]
	if victim.Stats().Recovered != 1 {
		t.Fatalf("victim stats = %+v", victim.Stats())
	}
	// The request was multicast group-wide: everyone else heard it (the
	// crying-baby cost). Total requests ≥ 1, repairs ≥ 1.
	var reqs, reps uint64
	for _, m := range f.members {
		reqs += m.Stats().RequestsSent
		reps += m.Stats().RepairsSent
	}
	reps += f.source.Stats().RepairsSent
	if reqs < 1 || reps < 1 {
		t.Fatalf("requests=%d repairs=%d", reqs, reps)
	}
	// Recovery time is proportional to the distance to the source (request
	// timer C1·d minimum), far slower than a LAN RTT.
	d, ok := victim.RecoveryTimes[2]
	if !ok {
		t.Fatal("no recovery time recorded")
	}
	if d < 40*time.Millisecond {
		t.Fatalf("recovery in %v: suspiciously fast for wb-style recovery", d)
	}
}

func TestSRMSuppressionLimitsDuplicateRequests(t *testing.T) {
	// A whole site (10 members) loses the same packet: randomized
	// suppression should keep the number of multicast requests well below
	// the number of losers.
	f := build(t, 3, 1, 10)
	f.source.Send([]byte("one"))
	f.net.RunFor(200 * time.Millisecond)
	f.sites[0].TailDown().SetLoss(&netsim.FirstN{N: 1})
	f.source.Send([]byte("two"))
	f.net.RunFor(5 * time.Second)
	var reqs, recovered uint64
	for _, m := range f.members {
		reqs += m.Stats().RequestsSent
		recovered += m.Stats().Recovered
	}
	if recovered != 10 {
		t.Fatalf("recovered = %d, want 10", recovered)
	}
	if reqs >= 10 {
		t.Fatalf("requests = %d: suppression ineffective", reqs)
	}
	if reqs == 0 {
		t.Fatal("no requests at all")
	}
}

func TestSRMSessionMessageRevealsIdleLoss(t *testing.T) {
	f := build(t, 4, 1, 2)
	f.source.Send([]byte("one"))
	f.net.RunFor(300 * time.Millisecond)
	f.nodes[0].DownLink().SetLoss(&netsim.FirstN{N: 1})
	f.source.Send([]byte("final")) // lost at member 0; no more data
	f.net.RunFor(5 * time.Second)  // session messages reveal it
	if f.members[0].Contiguous() != 2 {
		t.Fatalf("idle loss never recovered: contig = %d", f.members[0].Contiguous())
	}
}

func TestSRMLateJoinViaSession(t *testing.T) {
	f := build(t, 5, 1, 1)
	f.source.Send([]byte("old"))
	f.net.RunFor(50 * time.Millisecond)
	// New member joins mid-stream.
	late := New(Config{Group: g, Source: 1})
	site := f.net.NewSite(netsim.SiteParams{Name: "late"})
	site.NewHost("late", late)
	f.net.RunFor(2 * time.Second)
	if st := late.Stats(); st.RequestsSent != 0 {
		t.Fatalf("late joiner requested history: %+v", st)
	}
	f.source.Send([]byte("new"))
	f.net.RunFor(time.Second)
	if late.Stats().Delivered != 1 {
		t.Fatalf("late joiner stats = %+v, want the new packet", late.Stats())
	}
}
