package logger

import (
	"testing"
	"time"

	"lbrm/internal/transport"
	"lbrm/internal/transport/transporttest"
	"lbrm/internal/wire"
)

const (
	testGroup  = wire.GroupID(7)
	testSource = wire.SourceID(42)
)

var (
	srcAddr     = transporttest.Addr("source")
	primaryAddr = transporttest.Addr("primary")
	rcvA        = transporttest.Addr("rcvA")
	rcvB        = transporttest.Addr("rcvB")
	rcvC        = transporttest.Addr("rcvC")
)

func mustMarshal(t *testing.T, p wire.Packet) []byte {
	t.Helper()
	b, err := p.Marshal()
	if err != nil {
		t.Fatalf("marshal %v: %v", p.Type, err)
	}
	return b
}

func dataPkt(seq uint64, payload string) wire.Packet {
	return wire.Packet{Type: wire.TypeData, Source: testSource, Group: testGroup,
		Seq: seq, Payload: []byte(payload)}
}

func nackPkt(ranges ...wire.SeqRange) wire.Packet {
	return wire.Packet{Type: wire.TypeNack, Source: testSource, Group: testGroup,
		Ranges: ranges}
}

func newSecondary(t *testing.T, cfg SecondaryConfig) (*Secondary, *transporttest.Env) {
	t.Helper()
	if cfg.Group == 0 {
		cfg.Group = testGroup
	}
	if cfg.Primary == nil {
		cfg.Primary = primaryAddr
	}
	env := transporttest.NewEnv("secondary")
	s := NewSecondary(cfg)
	s.Start(env)
	return s, env
}

func TestSecondaryJoinsGroup(t *testing.T) {
	_, env := newSecondary(t, SecondaryConfig{})
	if !env.Joined[testGroup] {
		t.Fatal("secondary did not join its group")
	}
}

func TestSecondaryLogsData(t *testing.T) {
	s, env := newSecondary(t, SecondaryConfig{})
	s.Recv(srcAddr, mustMarshal(t, dataPkt(1, "one")))
	s.Recv(srcAddr, mustMarshal(t, dataPkt(1, "one")))
	st := s.Store(StreamKey{Source: testSource, Group: testGroup})
	if st == nil || !st.Has(1) {
		t.Fatal("data not logged")
	}
	if got := s.Stats(); got.PacketsLogged != 1 || got.Duplicates != 1 {
		t.Fatalf("stats = %+v", got)
	}
	env.Advance(time.Second)
	if n := len(env.Sents) + len(env.Mcasts); n != 0 {
		t.Fatalf("lossless stream generated %d transmissions", n)
	}
}

func TestSecondaryServesNackUnicast(t *testing.T) {
	s, env := newSecondary(t, SecondaryConfig{})
	s.Recv(srcAddr, mustMarshal(t, dataPkt(1, "payload-1")))
	s.Recv(rcvA, mustMarshal(t, nackPkt(wire.SeqRange{From: 1, To: 1})))
	sents := env.SentPackets()
	if len(sents) != 1 {
		t.Fatalf("sent %d packets, want 1 retrans", len(sents))
	}
	r := sents[0]
	if r.Type != wire.TypeRetrans || r.Seq != 1 || string(r.Payload) != "payload-1" {
		t.Fatalf("retrans = %+v", r)
	}
	if r.Flags&wire.FlagFromLogger == 0 || r.Flags&wire.FlagRetransmission == 0 {
		t.Fatalf("retrans flags = %v", r.Flags)
	}
	if env.Sents[0].To != rcvA {
		t.Fatalf("retrans to %v, want %v", env.Sents[0].To, rcvA)
	}
	if s.Stats().RetransUnicast != 1 {
		t.Fatalf("stats = %+v", s.Stats())
	}
}

func TestSecondaryRemulticastsUnderDemand(t *testing.T) {
	s, env := newSecondary(t, SecondaryConfig{RemcastThreshold: 3})
	s.Recv(srcAddr, mustMarshal(t, dataPkt(1, "hot")))
	for _, r := range []transport.Addr{rcvA, rcvB, rcvC} {
		s.Recv(r, mustMarshal(t, nackPkt(wire.SeqRange{From: 1, To: 1})))
	}
	// First two get unicasts; the third requester crosses the threshold.
	if got := s.Stats(); got.RetransUnicast != 2 || got.Remulticasts != 1 {
		t.Fatalf("stats = %+v, want 2 unicast + 1 remulticast", got)
	}
	mc := env.McastPackets()
	if len(mc) != 1 || mc[0].Type != wire.TypeRetrans {
		t.Fatalf("multicasts = %v", mc)
	}
	if env.Mcasts[0].TTL != transport.TTLSite {
		t.Fatalf("re-multicast TTL = %d, want site scope %d", env.Mcasts[0].TTL, transport.TTLSite)
	}
	// A fourth request inside the window is satisfied by the re-multicast:
	// no further traffic.
	s.Recv(transporttest.Addr("rcvD"), mustMarshal(t, nackPkt(wire.SeqRange{From: 1, To: 1})))
	if got := s.Stats(); got.RetransUnicast != 2 || got.Remulticasts != 1 {
		t.Fatalf("stats after 4th request = %+v", got)
	}
	// After the window expires the counting restarts.
	env.Advance(200 * time.Millisecond)
	s.Recv(rcvA, mustMarshal(t, nackPkt(wire.SeqRange{From: 1, To: 1})))
	if got := s.Stats(); got.RetransUnicast != 3 {
		t.Fatalf("stats after window = %+v, want unicast again", got)
	}
}

func TestSecondaryFetchesMissingFromPrimaryOnClientNack(t *testing.T) {
	s, env := newSecondary(t, SecondaryConfig{NackDelay: 20 * time.Millisecond})
	// Two receivers ask for a packet the logger never saw → exactly one
	// NACK crosses to the primary (the paper's 20 → 1 reduction).
	s.Recv(rcvA, mustMarshal(t, nackPkt(wire.SeqRange{From: 3, To: 3})))
	s.Recv(rcvB, mustMarshal(t, nackPkt(wire.SeqRange{From: 3, To: 3})))
	if len(env.Sents) != 0 {
		t.Fatal("NACK sent before aggregation delay")
	}
	env.Advance(25 * time.Millisecond)
	sents := env.SentPackets()
	if len(sents) != 1 || sents[0].Type != wire.TypeNack {
		t.Fatalf("sent %v, want one NACK", sents)
	}
	if env.Sents[0].To != primaryAddr {
		t.Fatalf("NACK to %v, want primary", env.Sents[0].To)
	}
	env.Sents = nil
	// Primary answers; both waiters are served.
	retr := wire.Packet{Type: wire.TypeRetrans, Flags: wire.FlagRetransmission | wire.FlagFromLogger,
		Source: testSource, Group: testGroup, Seq: 3, Payload: []byte("three")}
	s.Recv(primaryAddr, mustMarshal(t, retr))
	sents = env.SentPackets()
	if len(sents) != 2 {
		t.Fatalf("served %d waiters, want 2", len(sents))
	}
	for _, p := range sents {
		if p.Seq != 3 || string(p.Payload) != "three" {
			t.Fatalf("waiter got %+v", p)
		}
	}
	if s.Stats().NacksToPrimary != 1 {
		t.Fatalf("stats = %+v", s.Stats())
	}
	// Fetch resolved: no retries later.
	env.Advance(5 * time.Second)
	if len(env.Sents) != 2 {
		t.Fatalf("unexpected retries after satisfaction: %d", len(env.Sents))
	}
}

func TestSecondarySelfHealsSequenceGap(t *testing.T) {
	s, env := newSecondary(t, SecondaryConfig{NackDelay: 20 * time.Millisecond})
	s.Recv(srcAddr, mustMarshal(t, dataPkt(1, "a")))
	s.Recv(srcAddr, mustMarshal(t, dataPkt(4, "d"))) // gap 2..3
	env.Advance(25 * time.Millisecond)
	sents := env.SentPackets()
	if len(sents) != 1 || sents[0].Type != wire.TypeNack {
		t.Fatalf("want one gap NACK, got %v", sents)
	}
	want := wire.SeqRange{From: 2, To: 3}
	if len(sents[0].Ranges) != 1 || sents[0].Ranges[0] != want {
		t.Fatalf("ranges = %v, want %v", sents[0].Ranges, want)
	}
}

func TestSecondaryHeartbeatRevealsLoss(t *testing.T) {
	s, env := newSecondary(t, SecondaryConfig{NackDelay: 20 * time.Millisecond})
	s.Recv(srcAddr, mustMarshal(t, dataPkt(1, "a")))
	hb := wire.Packet{Type: wire.TypeHeartbeat, Source: testSource, Group: testGroup,
		Seq: 3, HeartbeatIdx: 1}
	s.Recv(srcAddr, mustMarshal(t, hb))
	env.Advance(25 * time.Millisecond)
	sents := env.SentPackets()
	if len(sents) != 1 || sents[0].Type != wire.TypeNack {
		t.Fatalf("want heartbeat-triggered NACK, got %v", sents)
	}
	if r := sents[0].Ranges[0]; r.From != 2 || r.To != 3 {
		t.Fatalf("ranges = %v, want [2,3]", sents[0].Ranges)
	}
}

func TestSecondaryInlineHeartbeatRepairs(t *testing.T) {
	s, env := newSecondary(t, SecondaryConfig{NackDelay: 20 * time.Millisecond})
	s.Recv(srcAddr, mustMarshal(t, dataPkt(1, "a")))
	// Data 2 lost; heartbeat carries it inline (§7 extension).
	hb := wire.Packet{Type: wire.TypeHeartbeat, Flags: wire.FlagInlineData,
		Source: testSource, Group: testGroup, Seq: 2, HeartbeatIdx: 1,
		Payload: []byte("b")}
	s.Recv(srcAddr, mustMarshal(t, hb))
	st := s.Store(StreamKey{Source: testSource, Group: testGroup})
	if !st.Has(2) {
		t.Fatal("inline heartbeat payload not logged")
	}
	env.Advance(time.Second)
	if len(env.Sents) != 0 {
		t.Fatalf("NACK sent although inline heartbeat repaired the loss: %v", env.SentPackets())
	}
}

func TestSecondaryRetriesAndAbandons(t *testing.T) {
	s, env := newSecondary(t, SecondaryConfig{
		NackDelay: 10 * time.Millisecond, RequestTimeout: 100 * time.Millisecond, MaxRetries: 3,
	})
	s.Recv(rcvA, mustMarshal(t, nackPkt(wire.SeqRange{From: 5, To: 5})))
	env.Advance(2 * time.Second)
	if got := len(env.SentPackets()); got != 3 {
		t.Fatalf("sent %d NACKs, want MaxRetries=3", got)
	}
	if s.Stats().FetchesAbandoned != 1 {
		t.Fatalf("stats = %+v, want 1 abandonment", s.Stats())
	}
	env.Sents = nil
	// A fresh client request re-opens the abandoned sequence.
	s.Recv(rcvB, mustMarshal(t, nackPkt(wire.SeqRange{From: 5, To: 5})))
	env.Advance(50 * time.Millisecond)
	if got := len(env.SentPackets()); got != 1 {
		t.Fatalf("re-request sent %d NACKs, want 1", got)
	}
}

func TestSecondaryAckerSelection(t *testing.T) {
	s, env := newSecondary(t, SecondaryConfig{})
	sel := wire.Packet{Type: wire.TypeAckerSelect, Source: testSource, Group: testGroup,
		Epoch: 1, PAck: 1.0, K: 5}
	s.Recv(srcAddr, mustMarshal(t, sel))
	sents := env.SentPackets()
	if len(sents) != 1 || sents[0].Type != wire.TypeAckerResponse || sents[0].Epoch != 1 {
		t.Fatalf("acker response = %v", sents)
	}
	env.Sents = nil
	// Data in epoch 1 is acknowledged to the source.
	d := dataPkt(1, "x")
	d.Epoch = 1
	s.Recv(srcAddr, mustMarshal(t, d))
	sents = env.SentPackets()
	if len(sents) != 1 || sents[0].Type != wire.TypeAck || sents[0].Seq != 1 {
		t.Fatalf("ack = %v", sents)
	}
	env.Sents = nil
	// Data in a different epoch: no ack.
	d2 := dataPkt(2, "y")
	d2.Epoch = 2
	s.Recv(srcAddr, mustMarshal(t, d2))
	if len(env.Sents) != 0 {
		t.Fatal("acked data outside our epoch")
	}
	// A retransmission is never acked even in-epoch.
	r := wire.Packet{Type: wire.TypeRetrans, Flags: wire.FlagRetransmission,
		Source: testSource, Group: testGroup, Seq: 3, Epoch: 1, Payload: []byte("z")}
	s.Recv(srcAddr, mustMarshal(t, r))
	if len(env.Sents) != 0 {
		t.Fatal("acked a retransmission")
	}
}

func TestSecondaryAckerSelectionProbZero(t *testing.T) {
	s, env := newSecondary(t, SecondaryConfig{})
	sel := wire.Packet{Type: wire.TypeAckerSelect, Source: testSource, Group: testGroup,
		Epoch: 1, PAck: 0, K: 5}
	s.Recv(srcAddr, mustMarshal(t, sel))
	if len(env.Sents) != 0 {
		t.Fatal("responded to selection with pAck=0")
	}
	d := dataPkt(1, "x")
	d.Epoch = 1
	s.Recv(srcAddr, mustMarshal(t, d))
	if len(env.Sents) != 0 {
		t.Fatal("non-acker acked data")
	}
}

func TestSecondaryNewEpochReplacesOld(t *testing.T) {
	s, env := newSecondary(t, SecondaryConfig{})
	sel1 := wire.Packet{Type: wire.TypeAckerSelect, Source: testSource, Group: testGroup,
		Epoch: 1, PAck: 1, K: 5}
	s.Recv(srcAddr, mustMarshal(t, sel1))
	// New epoch, not selected this time.
	sel2 := sel1
	sel2.Epoch = 2
	sel2.PAck = 0
	s.Recv(srcAddr, mustMarshal(t, sel2))
	env.Sents = nil
	d := dataPkt(1, "x")
	d.Epoch = 2
	s.Recv(srcAddr, mustMarshal(t, d))
	if len(env.Sents) != 0 {
		t.Fatal("acked epoch-2 data after losing acker role")
	}
	// Stale re-announcement of epoch 1 is ignored.
	s.Recv(srcAddr, mustMarshal(t, sel1))
	if len(env.Sents) != 0 {
		t.Fatal("responded to stale epoch announcement")
	}
}

func TestSecondaryDisableAcking(t *testing.T) {
	s, env := newSecondary(t, SecondaryConfig{DisableAcking: true})
	sel := wire.Packet{Type: wire.TypeAckerSelect, Source: testSource, Group: testGroup,
		Epoch: 1, PAck: 1, K: 5}
	s.Recv(srcAddr, mustMarshal(t, sel))
	probe := wire.Packet{Type: wire.TypeSizeProbe, Source: testSource, Group: testGroup,
		ProbeID: 1, PAck: 1}
	s.Recv(srcAddr, mustMarshal(t, probe))
	if len(env.Sents) != 0 {
		t.Fatal("acking disabled but responses sent")
	}
}

func TestSecondaryProbeResponse(t *testing.T) {
	s, env := newSecondary(t, SecondaryConfig{})
	probe := wire.Packet{Type: wire.TypeSizeProbe, Source: testSource, Group: testGroup,
		ProbeID: 9, PAck: 1}
	s.Recv(srcAddr, mustMarshal(t, probe))
	sents := env.SentPackets()
	if len(sents) != 1 || sents[0].Type != wire.TypeSizeProbeResponse || sents[0].ProbeID != 9 {
		t.Fatalf("probe response = %v", sents)
	}
}

func TestSecondaryDiscoveryReply(t *testing.T) {
	s, env := newSecondary(t, SecondaryConfig{DiscoveryJitter: 5 * time.Millisecond})
	q := wire.Packet{Type: wire.TypeDiscoveryQuery, Source: testSource, Group: testGroup}
	s.Recv(rcvA, mustMarshal(t, q))
	env.Advance(6 * time.Millisecond)
	sents := env.SentPackets()
	if len(sents) != 1 || sents[0].Type != wire.TypeDiscoveryReply {
		t.Fatalf("discovery reply = %v", sents)
	}
	if sents[0].Addr != "fake:secondary" {
		t.Fatalf("advertised addr = %q", sents[0].Addr)
	}
	if env.Sents[0].To != rcvA {
		t.Fatalf("reply to %v, want querier", env.Sents[0].To)
	}
}

func TestSecondaryFollowsRedirect(t *testing.T) {
	s, env := newSecondary(t, SecondaryConfig{NackDelay: 10 * time.Millisecond})
	newPrimary := transporttest.Addr("replica1")
	redir := wire.Packet{Type: wire.TypePrimaryRedirect, Source: testSource, Group: testGroup,
		Addr: newPrimary.String()}
	s.Recv(srcAddr, mustMarshal(t, redir))
	s.Recv(rcvA, mustMarshal(t, nackPkt(wire.SeqRange{From: 2, To: 2})))
	env.Advance(20 * time.Millisecond)
	if len(env.Sents) != 1 || env.Sents[0].To != newPrimary {
		t.Fatalf("NACK went to %v, want redirected primary", env.Sents)
	}
	if s.Stats().RedirectsFollowed != 1 {
		t.Fatalf("stats = %+v", s.Stats())
	}
}

func TestSecondaryIgnoresOtherGroupsAndGarbage(t *testing.T) {
	s, env := newSecondary(t, SecondaryConfig{})
	other := dataPkt(1, "x")
	other.Group = 99
	s.Recv(srcAddr, mustMarshal(t, other))
	s.Recv(srcAddr, []byte("garbage"))
	if st := s.Store(StreamKey{Source: testSource, Group: 99}); st != nil {
		t.Fatal("logged foreign group")
	}
	if s.Stats().Malformed != 1 {
		t.Fatalf("stats = %+v", s.Stats())
	}
	env.Advance(time.Second)
	if len(env.Sents) != 0 {
		t.Fatal("reacted to ignored traffic")
	}
}

func TestSecondaryAgeEvictionOnIdleStream(t *testing.T) {
	s, env := newSecondary(t, SecondaryConfig{
		Retention: Retention{MaxAge: 500 * time.Millisecond},
	})
	s.Recv(srcAddr, mustMarshal(t, dataPkt(1, "ephemeral")))
	st := s.Store(StreamKey{Source: testSource, Group: testGroup})
	if !st.Has(1) {
		t.Fatal("not stored")
	}
	// No further traffic: the periodic tick must still expire it.
	env.Advance(2 * time.Second)
	if st.Has(1) {
		t.Fatal("expired packet survived on an idle stream")
	}
	if !st.Seen(1) {
		t.Fatal("Seen lost on eviction")
	}
}

func TestSecondaryStopSilences(t *testing.T) {
	s, env := newSecondary(t, SecondaryConfig{NackDelay: 10 * time.Millisecond})
	s.Recv(srcAddr, mustMarshal(t, dataPkt(1, "a")))
	s.Recv(srcAddr, mustMarshal(t, dataPkt(3, "c"))) // gap → fetch armed
	s.Stop()
	env.Advance(10 * time.Second)
	if len(env.Sents) != 0 {
		t.Fatalf("stopped secondary sent %d packets", len(env.Sents))
	}
	s.Recv(rcvA, mustMarshal(t, nackPkt(wire.SeqRange{From: 1, To: 1})))
	if len(env.Sents) != 0 {
		t.Fatal("stopped secondary served a request")
	}
}

func TestSecondaryRecoveryWindowSkipsForgedHead(t *testing.T) {
	s, env := newSecondary(t, SecondaryConfig{
		NackDelay: 10 * time.Millisecond, RecoveryWindow: 100,
	})
	s.Recv(srcAddr, mustMarshal(t, dataPkt(1, "a")))
	hb := wire.Packet{Type: wire.TypeHeartbeat, Source: testSource, Group: testGroup,
		Seq: 1 << 50, HeartbeatIdx: 1}
	s.Recv(srcAddr, mustMarshal(t, hb))
	if s.Stats().SkippedAhead != 1 {
		t.Fatalf("stats = %+v, want a window skip", s.Stats())
	}
	env.Advance(50 * time.Millisecond)
	for _, p := range env.SentPackets() {
		if p.Type == wire.TypeNack {
			for _, rg := range p.Ranges {
				if rg.Count() > 100 {
					t.Fatalf("NACK to primary chases outside window: %v", rg)
				}
			}
		}
	}
}
