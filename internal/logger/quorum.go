package logger

// Quorum replication mode (DESIGN.md §12): the primary withholds the
// source-ack watermark until a configurable write quorum of replicas has
// applied each packet. Replication acks propagate around a ring — primary →
// R1 → R2 → … → primary — with each hop piggybacking its cumulative applied
// watermark on the circulating token, so the per-packet replication message
// cost stays O(1) in the replica count (one sync-class message per ring
// link) instead of the 2R of direct fan-out with per-replica acks.
//
// The ring is an optimization, not the durability mechanism: the periodic
// direct LogSync repair tick (syncTick) stays armed underneath it and
// re-sends anything the per-replica watermarks have not covered, so a lost
// token costs latency, never durability. When tokens stop returning the
// primary falls back to direct fan-in wholesale and probes a repaired ring
// (computed from the replicas that prove themselves live) on a jittered
// backoff. Everything is epoch-fenced exactly like the rest of the failover
// machinery; ring tokens additionally carry a ring version so a token
// launched on a superseded topology dies at the first surviving hop.

import (
	"time"

	"lbrm/internal/obs"
	"lbrm/internal/transport"
	"lbrm/internal/vtime"
	"lbrm/internal/wire"
)

// Quorum health gauge values (primary.quorum.health).
const (
	// QuorumHealthOK: every stream's quorum watermark tracks the log.
	QuorumHealthOK = 0
	// QuorumHealthLagging: some acks are parked behind the quorum.
	QuorumHealthLagging = 1
	// QuorumHealthDegraded: acks have been parked past QuorumDeadline —
	// the quorum is unreachable or unsatisfiable.
	QuorumHealthDegraded = 2
)

// ringRTTWindow bounds the launch-time buffer used to measure ring RTT.
const ringRTTWindow = 64

// tokenLaunch remembers when a ring token left, keyed loosely by stream and
// sequence; a fixed circular buffer instead of a map keeps the hot path
// allocation-free (an overwritten entry just loses one RTT sample).
type tokenLaunch struct {
	src wire.SourceID
	seq uint64
	at  int64
}

// quorumState is the acting primary's side of the ring protocol.
type quorumState struct {
	// ver is the current ring generation; tokens and role installations
	// carry it, and anything from an older generation is dropped.
	ver uint32
	// ring holds indices into p.replicas in hop order.
	ring []int
	// direct is the degraded replication path: ring tokens stopped
	// returning, so just-logged packets go back to direct LogSync fan-out
	// until a repair probe completes the circle.
	direct bool
	// probing marks an outstanding repair probe token.
	probing bool
	// repairs counts repair attempts since the last restore (backoff).
	repairs int
	// outstanding counts current-generation data tokens in flight;
	// lastReturn is when the last token (data or probe) completed the
	// circle, and outSince when outstanding last rose from zero. A stall
	// means a token has been in flight for RingStallTimeout with no
	// return — measured from whichever of the two is later, so that at
	// send rates slower than the timeout a freshly launched token is not
	// mistaken for a stale one just because the previous return is a full
	// send interval old. All reset on a generation change — tokens of a
	// superseded ring die at the first surviving hop by construction.
	outstanding int
	lastReturn  int64
	outSince    int64
	// parkedSince is when the current lagging episode began (0 = none).
	parkedSince int64
	degraded    bool
	// launches is the RTT sample buffer (see tokenLaunch).
	launches [ringRTTWindow]tokenLaunch
	li       int
	// tickTimer drives quorumTick; repairTimer the ring-repair backoff.
	tickTimer   vtime.Timer
	repairTimer vtime.Timer
}

// ringRole is a replica's installed position in the primary's ack ring.
type ringRole struct {
	active bool
	epoch  uint32
	ver    uint32
	pos    uint8 // 1-based hop position
	size   uint8 // number of replica hops
	succ   transport.Addr
}

// quorumOn reports whether this server is currently gating source acks on
// the write quorum (acting primary with the mode configured).
func (p *Primary) quorumOn() bool {
	return p.cfg.Quorum > 0 && !p.replica
}

// quorumSeq is the write-quorum watermark for a stream: the highest sequence
// number applied by at least cfg.Quorum replicas. Deliberately unclamped —
// a quorum larger than the replica set is unsatisfiable and yields 0,
// parking acknowledgements and surfacing degraded health rather than
// quietly weakening the guarantee.
func (p *Primary) quorumSeq(key StreamKey) uint64 {
	return p.rankSeq(key, p.cfg.Quorum)
}

// initQuorum enters quorum mode on an acting primary. optimistic forms the
// full ring immediately (a configured clean start); a promoted primary
// instead starts in direct fan-in and repairs a ring out of the replicas
// that prove themselves live — the fault that elected it may have taken a
// ring member with it.
func (p *Primary) initQuorum(optimistic bool) {
	if p.cfg.Quorum <= 0 {
		return
	}
	if p.q == nil {
		p.q = &quorumState{}
	}
	q := p.q
	if optimistic && len(p.replicas) > 0 {
		p.formRing(true)
	} else {
		q.direct = true
		q.probing = false
		if len(p.replicas) > 0 {
			p.armRingRepair()
		}
	}
	p.armQuorumTick()
}

// formRing computes a new ring generation and installs it. With all set
// every replica joins; otherwise only recently-seen replicas do (falling
// back to all when none qualify, e.g. right after promotion).
func (p *Primary) formRing(all bool) {
	q := p.q
	q.ver++
	q.outstanding = 0 // tokens of the old generation can never return
	q.outSince = 0
	q.ring = q.ring[:0]
	if !all {
		cutoff := p.now() - 3*int64(p.cfg.SyncRetry)
		for i, r := range p.replicas {
			if r.lastSeen > 0 && r.lastSeen >= cutoff {
				q.ring = append(q.ring, i)
			}
		}
	}
	if len(q.ring) == 0 {
		for i := range p.replicas {
			q.ring = append(q.ring, i)
		}
	}
	if len(q.ring) > wire.MaxQuorumSlots {
		q.ring = q.ring[:wire.MaxQuorumSlots]
	}
	p.installRing()
}

// installRing ships every ring member its role: generation, 1-based hop
// position, ring size, and successor address (the last hop's successor is
// the primary itself, closing the circle).
func (p *Primary) installRing() {
	q := p.q
	self := p.env.LocalAddr().String()
	n := len(q.ring)
	for i, ri := range q.ring {
		succ := self
		if i+1 < n {
			succ = p.replicas[q.ring[i+1]].addr.String()
		}
		cfgPkt := wire.Packet{
			Type: wire.TypeRingConfig, Group: p.cfg.Group, Epoch: p.epoch,
			RingVer: q.ver, RingPos: uint8(i + 1), RingSize: uint8(n),
			Addr: succ,
		}
		p.send(p.replicas[ri].addr, &cfgPkt)
		p.stats.RingConfigsSent++
	}
}

// replicateOrRing ships one just-logged packet to the replicas: in ring
// mode as a single payload-carrying ring token, otherwise as the direct
// LogSync fan-out. The periodic syncTick stays armed either way and repairs
// lost tokens, so the ring never weakens durability.
func (p *Primary) replicateOrRing(st *priStream, seq uint64) {
	if q := p.q; q != nil && !q.direct && len(q.ring) > 0 {
		if payload, ok := st.store.Get(seq); ok {
			// Fresh work cancels the idle backoff, mirroring replicate(): a
			// lost token should be repaired within one base SyncRetry.
			if p.syncIdle > 0 {
				p.syncIdle = 0
				p.armSync(p.syncInterval())
			}
			p.ringLaunch(st, seq, payload)
			return
		}
	}
	p.replicate(st, seq)
}

// ringLaunch starts one data token around the ring.
func (p *Primary) ringLaunch(st *priStream, seq uint64, payload []byte) {
	q := p.q
	tok := wire.Packet{
		Type: wire.TypeQuorumAck, Source: st.key.Source, Group: st.key.Group,
		Seq: seq, Epoch: p.epoch, RingVer: q.ver, Payload: payload,
	}
	p.send(p.replicas[q.ring[0]].addr, &tok)
	p.stats.QuorumLaunched++
	now := p.now()
	if q.outstanding == 0 {
		q.outSince = now
	}
	q.outstanding++
	q.launches[q.li] = tokenLaunch{src: st.key.Source, seq: seq, at: now}
	q.li++
	if q.li == ringRTTWindow {
		q.li = 0
	}
}

// onQuorumAck dispatches a ring token: replicas forward it, the acting
// primary folds the completed circle. Epoch fencing mirrors every other
// authority-bearing message.
func (p *Primary) onQuorumAck(pkt *wire.Packet) {
	if p.observeEpoch(pkt.Epoch) {
		return // we were acting on a stale epoch; the new primary owns the ring
	}
	if p.staleAuthority(pkt.Epoch) {
		p.stats.StaleQuorumAcks++
		p.mx.sink.Emit(p.now(), obs.KindFenceHit, uint64(p.epoch), uint64(pkt.Epoch), uint64(pkt.Type))
		return
	}
	if p.replica {
		p.forwardRingToken(pkt)
		return
	}
	p.ringReturn(pkt)
}

// forwardRingToken is the replica-side hop: apply the payload, append our
// cumulative watermark, forward to the installed successor. The last hop
// drops the payload — the primary already holds it, and the return leg only
// needs the watermarks.
func (p *Primary) forwardRingToken(pkt *wire.Packet) {
	rr := &p.ring
	if !rr.active || pkt.RingVer != rr.ver || int(rr.pos) != len(pkt.Watermarks)+1 {
		// No role, a superseded generation, or a hop out of ring order
		// (stale topology mid-repair): drop it. The primary's stall
		// detector re-forms the ring; syncTick repairs the data.
		p.stats.StaleRingTokens++
		return
	}
	var wm uint64
	if pkt.Seq > 0 {
		st := p.stream(KeyOf(pkt))
		if len(pkt.Payload) > 0 {
			if st.store.Put(pkt.Seq, pkt.Payload, p.env.Now()) {
				p.stats.QuorumApplied++
				p.mx.quorumApplied.Inc()
			} else {
				p.stats.Duplicates++
				p.mx.duplicates.Inc()
			}
		}
		wm = st.store.Contiguous()
	}
	// Probe tokens (Seq 0) carry a zero watermark: they only prove the
	// circle is whole. The copy-and-append goes through the reusable wmBuf
	// so the steady-state forward path stays allocation-free.
	buf := append(p.wmBuf[:0], pkt.Watermarks...)
	buf = append(buf, wm)
	p.wmBuf = buf
	pkt.Watermarks = buf
	pkt.RingPos = rr.pos
	pkt.Epoch = p.epoch
	if rr.pos == rr.size {
		pkt.Payload = nil
	}
	p.send(rr.succ, pkt)
	p.stats.QuorumForwarded++
}

// ringReturn folds a token that completed the circle: every hop's watermark
// becomes that replica's cumulative ack (monotonically — see
// priStream.lastQuorumAck for why regressions are ignored), and the stream's
// quorum-gated source ack is re-minted.
func (p *Primary) ringReturn(pkt *wire.Packet) {
	q := p.q
	if q == nil || pkt.RingVer != q.ver || len(pkt.Watermarks) != len(q.ring) {
		p.stats.StaleRingTokens++
		return
	}
	now := p.now()
	q.lastReturn = now
	if pkt.Seq != 0 && q.outstanding > 0 {
		q.outstanding--
	}
	if pkt.Seq == 0 {
		// A repair probe made it all the way around: every hop is alive.
		for j := range pkt.Watermarks {
			p.replicas[q.ring[j]].lastSeen = now
		}
		if q.probing {
			q.probing = false
			if q.direct {
				q.direct = false
				q.repairs = 0
				p.stats.RingRepairs++
				p.mx.ringRepairs.Inc()
				p.mx.sink.Emit(now, obs.KindRingRepair, 2, uint64(q.ver), uint64(len(q.ring)))
			}
		}
		return
	}
	key := KeyOf(pkt)
	for j, wm := range pkt.Watermarks {
		r := p.replicas[q.ring[j]]
		if wm > r.acked[key] {
			r.acked[key] = wm
		}
		r.lastSeen = now
	}
	p.stats.QuorumReturns++
	var rtt int64
	for i := range q.launches {
		l := &q.launches[i]
		if l.seq == pkt.Seq && l.src == pkt.Source && l.at > 0 {
			rtt = now - l.at
			*l = tokenLaunch{}
			break
		}
	}
	if rtt > 0 {
		p.mx.ringRTT.Observe(uint64(rtt) / uint64(time.Millisecond))
	}
	p.mx.sink.EmitFlight(now, obs.KindQuorum, pkt.Seq, p.quorumSeq(key), uint64(rtt))
	if st := p.streams[key]; st != nil {
		p.ackSource(st)
	}
}

// onRingConfig installs (or refuses) a ring role on a replica.
func (p *Primary) onRingConfig(pkt *wire.Packet) {
	if p.observeEpoch(pkt.Epoch) {
		return // we were acting; the config proves a newer primary owns the log
	}
	if p.staleAuthority(pkt.Epoch) {
		p.stats.StaleRingConfigs++
		p.mx.sink.Emit(p.now(), obs.KindFenceHit, uint64(p.epoch), uint64(pkt.Epoch), uint64(pkt.Type))
		return
	}
	if !p.replica {
		return // an acting primary takes no forwarding role
	}
	rr := &p.ring
	if rr.active && pkt.Epoch == rr.epoch && pkt.RingVer < rr.ver {
		p.stats.StaleRingConfigs++
		return
	}
	succ, err := p.env.ParseAddr(pkt.Addr)
	if err != nil {
		p.stats.Malformed++
		return
	}
	rr.active = true
	rr.epoch = pkt.Epoch
	rr.ver = pkt.RingVer
	rr.pos = pkt.RingPos
	rr.size = pkt.RingSize
	rr.succ = succ
	p.stats.RingConfigsApplied++
}

// armQuorumTick (re)schedules the quorum housekeeping tick, reusing one
// timer handle. The period is SyncRetry jittered like the sync tick.
func (p *Primary) armQuorumTick() {
	d := transport.Backoff{Base: p.cfg.SyncRetry}.Interval(0, p.env.Rand())
	q := p.q
	if q.tickTimer != nil {
		q.tickTimer.Reset(d)
		return
	}
	q.tickTimer = p.after(d, p.quorumTick)
}

// quorumTick is the quorum-mode housekeeping tick: publish the depth and
// health gauges, re-ack parked streams (rate-limited liveness proof toward
// the source while the watermark is withheld), and detect a stalled ring —
// falling back to direct fan-in and scheduling jittered-backoff repair.
func (p *Primary) quorumTick() {
	q := p.q
	if q == nil || p.replica {
		return // demoted; initQuorum re-arms on re-promotion
	}
	now := p.now()
	lagging := false
	depth := len(p.replicas)
	for key, st := range p.streams {
		contig := st.store.Contiguous()
		if contig == 0 {
			continue
		}
		if p.quorumSeq(key) < contig {
			lagging = true
		}
		// Depth: how many replicas actually back the minted watermark.
		if wm := st.lastQuorumAck; wm > 0 {
			n := 0
			for _, r := range p.replicas {
				if r.acked[key] >= wm {
					n++
				}
			}
			if n < depth {
				depth = n
			}
		}
	}
	p.mx.quorumDepth.Set(int64(depth))
	health := int64(QuorumHealthOK)
	if lagging {
		if q.parkedSince == 0 {
			q.parkedSince = now
		}
		health = QuorumHealthLagging
		if now-q.parkedSince >= int64(p.cfg.QuorumDeadline) {
			health = QuorumHealthDegraded
			if !q.degraded {
				q.degraded = true
				p.stats.QuorumDegradations++
			}
		}
		for _, st := range p.streams {
			if st.lastQuorumAck < st.store.Contiguous() {
				p.ackSource(st)
			}
		}
	} else {
		q.parkedSince = 0
		q.degraded = false
	}
	p.mx.quorumHealth.Set(health)
	flightSince := q.lastReturn
	if q.outSince > flightSince {
		flightSince = q.outSince
	}
	if !q.direct && q.outstanding > 0 &&
		now-flightSince >= int64(p.cfg.RingStallTimeout) {
		q.direct = true
		q.probing = false
		q.outstanding = 0
		q.repairs = 0
		p.stats.RingStalls++
		p.mx.ringStalls.Inc()
		p.mx.sink.Emit(now, obs.KindRingRepair, 0, uint64(q.ver), uint64(len(q.ring)))
		p.armRingRepair()
	}
	p.armQuorumTick()
}

// armRingRepair schedules the next ring-repair attempt on a jittered
// exponential backoff, reusing one timer handle.
func (p *Primary) armRingRepair() {
	q := p.q
	n := q.repairs
	if n > 6 {
		n = 6
	}
	d := transport.Backoff{Base: p.cfg.SyncRetry}.Interval(n, p.env.Rand())
	if q.repairTimer != nil {
		q.repairTimer.Reset(d)
		return
	}
	q.repairTimer = p.after(d, p.ringRepair)
}

// ringRepair forms a candidate ring from the replicas that have recently
// proven themselves live, installs it, and launches a probe token. The ring
// is only trusted back (direct fan-in ends) when the probe completes the
// circle; until then attempts repeat with backoff.
func (p *Primary) ringRepair() {
	q := p.q
	if q == nil || p.replica || !q.direct || len(p.replicas) == 0 {
		return
	}
	p.formRing(false)
	q.probing = true
	q.repairs++
	p.stats.RingProbes++
	p.mx.sink.Emit(p.now(), obs.KindRingRepair, 1, uint64(q.ver), uint64(len(q.ring)))
	probe := wire.Packet{
		Type: wire.TypeQuorumAck, Group: p.cfg.Group,
		Epoch: p.epoch, RingVer: q.ver,
	}
	p.send(p.replicas[q.ring[0]].addr, &probe)
	p.armRingRepair()
}
