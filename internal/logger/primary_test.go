package logger

import (
	"testing"

	"lbrm/internal/transport"
	"time"

	"lbrm/internal/transport/transporttest"
	"lbrm/internal/wire"
)

var (
	replica1 = transporttest.Addr("replica1")
	replica2 = transporttest.Addr("replica2")
)

func newPrimary(t *testing.T, cfg PrimaryConfig) (*Primary, *transporttest.Env) {
	t.Helper()
	if cfg.Group == 0 {
		cfg.Group = testGroup
	}
	env := transporttest.NewEnv("primary")
	p := NewPrimary(cfg)
	p.Start(env)
	return p, env
}

func TestPrimaryJoinsGroupAndAcksSource(t *testing.T) {
	p, env := newPrimary(t, PrimaryConfig{})
	if !env.Joined[testGroup] {
		t.Fatal("primary did not join group")
	}
	p.Recv(srcAddr, mustMarshal(t, dataPkt(1, "one")))
	sents := env.SentPackets()
	if len(sents) != 1 || sents[0].Type != wire.TypeSourceAck {
		t.Fatalf("sent %v, want SourceAck", sents)
	}
	ack := sents[0]
	if ack.Seq != 1 || ack.ReplicaSeq != 1 {
		t.Fatalf("ack seqs = %d/%d, want 1/1 (no replicas → both = contig)", ack.Seq, ack.ReplicaSeq)
	}
	if env.Sents[0].To != srcAddr {
		t.Fatalf("ack to %v", env.Sents[0].To)
	}
	key := StreamKey{Source: testSource, Group: testGroup}
	if p.Contiguous(key) != 1 {
		t.Fatalf("Contiguous = %d", p.Contiguous(key))
	}
}

func TestPrimaryAckIsCumulative(t *testing.T) {
	p, env := newPrimary(t, PrimaryConfig{})
	p.Recv(srcAddr, mustMarshal(t, dataPkt(1, "a")))
	p.Recv(srcAddr, mustMarshal(t, dataPkt(3, "c"))) // gap at 2
	sents := env.SentPackets()
	if len(sents) != 2 {
		t.Fatalf("want 2 acks, got %v", sents)
	}
	if sents[1].Seq != 1 {
		t.Fatalf("ack after gap = %d, want cumulative 1", sents[1].Seq)
	}
}

func TestPrimaryRecoversOwnLossFromSource(t *testing.T) {
	p, env := newPrimary(t, PrimaryConfig{NackDelay: 10 * time.Millisecond})
	p.Recv(srcAddr, mustMarshal(t, dataPkt(1, "a")))
	p.Recv(srcAddr, mustMarshal(t, dataPkt(3, "c")))
	env.Sents = nil
	env.Advance(15 * time.Millisecond)
	sents := env.SentPackets()
	if len(sents) != 1 || sents[0].Type != wire.TypeNack {
		t.Fatalf("want NACK to source, got %v", sents)
	}
	if r := sents[0].Ranges[0]; r.From != 2 || r.To != 2 {
		t.Fatalf("NACK ranges = %v", sents[0].Ranges)
	}
	if env.Sents[0].To != srcAddr {
		t.Fatalf("NACK to %v, want source", env.Sents[0].To)
	}
	env.Sents = nil
	// Source retransmits; primary acks cumulatively through 3.
	retr := wire.Packet{Type: wire.TypeRetrans, Flags: wire.FlagRetransmission,
		Source: testSource, Group: testGroup, Seq: 2, Payload: []byte("b")}
	p.Recv(srcAddr, mustMarshal(t, retr))
	sents = env.SentPackets()
	if len(sents) != 1 || sents[0].Type != wire.TypeSourceAck || sents[0].Seq != 3 {
		t.Fatalf("post-repair ack = %v, want cumulative 3", sents)
	}
	env.Sents = nil
	env.Advance(5 * time.Second)
	if len(env.Sents) != 0 {
		t.Fatalf("spurious retries after repair: %v", env.SentPackets())
	}
}

func TestPrimaryHeartbeatRevealsLoss(t *testing.T) {
	p, env := newPrimary(t, PrimaryConfig{NackDelay: 10 * time.Millisecond})
	hb := wire.Packet{Type: wire.TypeHeartbeat, Source: testSource, Group: testGroup,
		Seq: 2, HeartbeatIdx: 1}
	p.Recv(srcAddr, mustMarshal(t, hb))
	env.Advance(15 * time.Millisecond)
	sents := env.SentPackets()
	if len(sents) != 1 || sents[0].Type != wire.TypeNack {
		t.Fatalf("want NACK, got %v", sents)
	}
	// The primary, unlike a secondary, backfills full history: 1..2.
	if r := sents[0].Ranges[0]; r.From != 1 || r.To != 2 {
		t.Fatalf("ranges = %v, want [1,2]", sents[0].Ranges)
	}
}

func TestPrimaryServesClientNack(t *testing.T) {
	p, env := newPrimary(t, PrimaryConfig{})
	p.Recv(srcAddr, mustMarshal(t, dataPkt(1, "one")))
	env.Sents = nil
	p.Recv(rcvA, mustMarshal(t, nackPkt(wire.SeqRange{From: 1, To: 1})))
	sents := env.SentPackets()
	if len(sents) != 1 || sents[0].Type != wire.TypeRetrans || string(sents[0].Payload) != "one" {
		t.Fatalf("retrans = %v", sents)
	}
	if sents[0].Flags&wire.FlagFromLogger == 0 {
		t.Fatal("retrans missing FlagFromLogger")
	}
	if p.Stats().RetransServed != 1 {
		t.Fatalf("stats = %+v", p.Stats())
	}
}

func TestPrimaryQueuesClientNackForUnseenPacket(t *testing.T) {
	p, env := newPrimary(t, PrimaryConfig{NackDelay: 10 * time.Millisecond})
	p.Recv(srcAddr, mustMarshal(t, dataPkt(1, "a")))
	env.Sents = nil
	// Client asks for 2, which the primary hasn't seen yet.
	p.Recv(rcvA, mustMarshal(t, nackPkt(wire.SeqRange{From: 2, To: 2})))
	env.Advance(15 * time.Millisecond)
	sents := env.SentPackets()
	if len(sents) != 1 || sents[0].Type != wire.TypeNack || env.Sents[0].To != srcAddr {
		t.Fatalf("want NACK to source, got %v", sents)
	}
	env.Sents = nil
	p.Recv(srcAddr, mustMarshal(t, dataPkt(2, "b")))
	var served bool
	for i, q := range env.SentPackets() {
		if q.Type == wire.TypeRetrans && q.Seq == 2 && env.Sents[i].To == rcvA {
			served = true
		}
	}
	if !served {
		t.Fatalf("queued client not served after packet arrived: %v", env.SentPackets())
	}
}

func TestPrimaryReplication(t *testing.T) {
	p, env := newPrimary(t, PrimaryConfig{
		Replicas: []transport.Addr{replica1, replica2},
	})
	p.Recv(srcAddr, mustMarshal(t, dataPkt(1, "a")))
	var syncs int
	for i, q := range env.SentPackets() {
		if q.Type == wire.TypeLogSync {
			syncs++
			if to := env.Sents[i].To; to != replica1 && to != replica2 {
				t.Fatalf("LogSync to %v", to)
			}
			if q.Seq != 1 || string(q.Payload) != "a" {
				t.Fatalf("LogSync = %+v", q)
			}
		}
		if q.Type == wire.TypeSourceAck && q.ReplicaSeq != 0 {
			t.Fatalf("ReplicaSeq = %d before any replica ack, want 0", q.ReplicaSeq)
		}
	}
	if syncs != 2 {
		t.Fatalf("LogSyncs = %d, want 2", syncs)
	}
	env.Sents = nil
	// replica1 acks seq 1; rank-1 replica seq becomes 1.
	ackR := wire.Packet{Type: wire.TypeLogSyncAck, Source: testSource, Group: testGroup, Seq: 1, Epoch: 1}
	p.Recv(replica1, mustMarshal(t, ackR))
	p.Recv(srcAddr, mustMarshal(t, dataPkt(2, "b")))
	for _, q := range env.SentPackets() {
		if q.Type == wire.TypeSourceAck {
			if q.Seq != 2 || q.ReplicaSeq != 1 {
				t.Fatalf("SourceAck = seq %d replicaSeq %d, want 2/1", q.Seq, q.ReplicaSeq)
			}
		}
	}
}

func TestPrimaryReplicaRank2(t *testing.T) {
	p, env := newPrimary(t, PrimaryConfig{
		Replicas:    []transport.Addr{replica1, replica2},
		ReplicaRank: 2,
	})
	p.Recv(srcAddr, mustMarshal(t, dataPkt(1, "a")))
	ackR := wire.Packet{Type: wire.TypeLogSyncAck, Source: testSource, Group: testGroup, Seq: 1, Epoch: 1}
	p.Recv(replica1, mustMarshal(t, ackR))
	env.Sents = nil
	p.Recv(srcAddr, mustMarshal(t, dataPkt(2, "b")))
	for _, q := range env.SentPackets() {
		if q.Type == wire.TypeSourceAck && q.ReplicaSeq != 0 {
			t.Fatalf("rank-2 ReplicaSeq = %d, want 0 (second replica has nothing)", q.ReplicaSeq)
		}
	}
}

func TestPrimarySyncRetryUntilReplicaAcks(t *testing.T) {
	p, env := newPrimary(t, PrimaryConfig{
		Replicas:  []transport.Addr{replica1},
		SyncRetry: 100 * time.Millisecond,
	})
	p.Recv(srcAddr, mustMarshal(t, dataPkt(1, "a")))
	env.Sents = nil
	env.Advance(350 * time.Millisecond)
	resends := 0
	for _, q := range env.SentPackets() {
		if q.Type == wire.TypeLogSync && q.Seq == 1 {
			resends++
		}
	}
	if resends < 2 {
		t.Fatalf("LogSync resends = %d, want ≥ 2", resends)
	}
	// Ack stops the resends.
	ackR := wire.Packet{Type: wire.TypeLogSyncAck, Source: testSource, Group: testGroup, Seq: 1, Epoch: 1}
	p.Recv(replica1, mustMarshal(t, ackR))
	env.Sents = nil
	env.Advance(500 * time.Millisecond)
	for _, q := range env.SentPackets() {
		if q.Type == wire.TypeLogSync {
			t.Fatalf("LogSync resent after ack: %+v", q)
		}
	}
}

func TestReplicaAppliesLogSyncAndPromotes(t *testing.T) {
	p, env := newPrimary(t, PrimaryConfig{Replica: true})
	if env.Joined[testGroup] {
		t.Fatal("replica joined multicast group before promotion")
	}
	if !p.IsReplica() {
		t.Fatal("IsReplica() = false")
	}
	// Multicast data must be ignored in replica role.
	p.Recv(srcAddr, mustMarshal(t, dataPkt(9, "ignored")))
	key := StreamKey{Source: testSource, Group: testGroup}
	if p.Contiguous(key) != 0 {
		t.Fatal("replica logged multicast data")
	}
	// LogSync applies and is acked cumulatively.
	sync := wire.Packet{Type: wire.TypeLogSync, Source: testSource, Group: testGroup,
		Seq: 1, Payload: []byte("a")}
	p.Recv(primaryAddr, mustMarshal(t, sync))
	sents := env.SentPackets()
	if len(sents) != 1 || sents[0].Type != wire.TypeLogSyncAck || sents[0].Seq != 1 {
		t.Fatalf("LogSyncAck = %v", sents)
	}
	env.Sents = nil
	// State query.
	q := wire.Packet{Type: wire.TypeLogStateQuery, Source: testSource, Group: testGroup}
	p.Recv(srcAddr, mustMarshal(t, q))
	sents = env.SentPackets()
	if len(sents) != 1 || sents[0].Type != wire.TypeLogStateReply || sents[0].Seq != 1 {
		t.Fatalf("LogStateReply = %v", sents)
	}
	env.Sents = nil
	// Promotion: joins the group and acks the promoting source.
	prom := wire.Packet{Type: wire.TypePromote, Source: testSource, Group: testGroup}
	p.Recv(srcAddr, mustMarshal(t, prom))
	if p.IsReplica() {
		t.Fatal("still replica after promote")
	}
	if !env.Joined[testGroup] {
		t.Fatal("promoted replica did not join group")
	}
	sents = env.SentPackets()
	if len(sents) != 1 || sents[0].Type != wire.TypeSourceAck || sents[0].Seq != 1 {
		t.Fatalf("post-promotion ack = %v", sents)
	}
	// Now it logs multicast data and serves NACKs like a primary.
	env.Sents = nil
	p.Recv(srcAddr, mustMarshal(t, dataPkt(2, "b")))
	if p.Contiguous(key) != 2 {
		t.Fatalf("promoted primary Contiguous = %d, want 2", p.Contiguous(key))
	}
	p.Recv(rcvA, mustMarshal(t, nackPkt(wire.SeqRange{From: 1, To: 1})))
	found := false
	for _, s := range env.SentPackets() {
		if s.Type == wire.TypeRetrans && s.Seq == 1 && string(s.Payload) == "a" {
			found = true
		}
	}
	if !found {
		t.Fatal("promoted primary did not serve pre-promotion packet")
	}
}

func TestPrimaryIgnoresForeignGroupAndGarbage(t *testing.T) {
	p, env := newPrimary(t, PrimaryConfig{})
	foreign := dataPkt(1, "x")
	foreign.Group = 99
	p.Recv(srcAddr, mustMarshal(t, foreign))
	p.Recv(srcAddr, []byte{1, 2, 3})
	if p.Stats().PacketsLogged != 0 || p.Stats().Malformed != 1 {
		t.Fatalf("stats = %+v", p.Stats())
	}
	if len(env.Sents) != 0 {
		t.Fatal("responded to ignored traffic")
	}
}

func TestPrimaryAgeEvictionOnIdleStream(t *testing.T) {
	p, env := newPrimary(t, PrimaryConfig{
		Retention: Retention{MaxAge: 500 * time.Millisecond},
	})
	p.Recv(srcAddr, mustMarshal(t, dataPkt(1, "ephemeral")))
	key := StreamKey{Source: testSource, Group: testGroup}
	if !p.Store(key).Has(1) {
		t.Fatal("not stored")
	}
	env.Advance(2 * time.Second)
	if p.Store(key).Has(1) {
		t.Fatal("expired packet survived on an idle stream")
	}
}

func TestPrimaryStopSilences(t *testing.T) {
	p, env := newPrimary(t, PrimaryConfig{NackDelay: 10 * time.Millisecond,
		Replicas: []transport.Addr{replica1}, SyncRetry: 100 * time.Millisecond})
	p.Recv(srcAddr, mustMarshal(t, dataPkt(1, "a")))
	p.Stop()
	env.Sents = nil
	env.Advance(10 * time.Second)
	if len(env.Sents) != 0 {
		t.Fatalf("stopped primary sent %d packets (sync retries?)", len(env.Sents))
	}
	p.Recv(rcvA, mustMarshal(t, nackPkt(wire.SeqRange{From: 1, To: 1})))
	if len(env.Sents) != 0 {
		t.Fatal("stopped primary served a request")
	}
}

// TestAdvanceRecordCrossesSkippedHole is the failover regression for LogSync
// advance records: when a primary skips an unrecoverable backfill hole, the
// empty FlagLogAdvance record must move its replica's watermark across the
// gap, so that promoting that replica later (with the same release floor)
// does not re-serve the skip through a backfill episode of its own.
func TestAdvanceRecordCrossesSkippedHole(t *testing.T) {
	p, penv := newPrimary(t, PrimaryConfig{Replicas: []transport.Addr{replica1}})
	// The replica has peers of its own, so a promotion that still sees the
	// hole WOULD start a backfill — that is exactly the regression guarded.
	r, renv := newPrimary(t, PrimaryConfig{Replica: true,
		Peers: []transport.Addr{replica2}})
	key := StreamKey{Source: testSource, Group: testGroup}
	relay := func() {
		for _, s := range penv.TakeSents() {
			if s.To == replica1 {
				r.Recv(primaryAddr, s.Data)
			}
		}
	}
	p.Recv(srcAddr, mustMarshal(t, dataPkt(1, "a")))
	p.Recv(srcAddr, mustMarshal(t, dataPkt(2, "b")))
	relay() // eager LogSyncs for 1 and 2
	if r.Contiguous(key) != 2 {
		t.Fatalf("replica Contiguous = %d, want 2", r.Contiguous(key))
	}

	// The source re-promotes the acting primary with a release floor far
	// above its log (the post-crash gap of §2.2.3). With no peers to backfill
	// from, the hole is unrecoverable: the primary skips it and must ship an
	// advance record so the replica watermark crosses the gap too.
	prom := wire.Packet{Type: wire.TypePromote, Source: testSource,
		Group: testGroup, Seq: 10, Epoch: 2}
	p.Recv(srcAddr, mustMarshal(t, prom))
	if got := p.Contiguous(key); got != 10 {
		t.Fatalf("primary Contiguous = %d, want 10 after skip", got)
	}
	if p.Stats().AdvancesSent == 0 {
		t.Fatal("skipping the hole sent no advance record")
	}
	foundAdv := false
	for _, s := range penv.Sents {
		var pkt wire.Packet
		if err := pkt.Unmarshal(s.Data); err != nil {
			t.Fatal(err)
		}
		if s.To == replica1 && pkt.Type == wire.TypeLogSync &&
			pkt.Flags&wire.FlagLogAdvance != 0 {
			foundAdv = true
			if pkt.Seq != 10 {
				t.Fatalf("advance Seq = %d, want 10", pkt.Seq)
			}
			if len(pkt.Payload) != 0 {
				t.Fatal("advance record carries a payload")
			}
		}
	}
	if !foundAdv {
		t.Fatal("no FlagLogAdvance record on the wire to the replica")
	}
	relay()
	if got := r.Contiguous(key); got != 10 {
		t.Fatalf("replica Contiguous = %d, want 10 after advance", got)
	}
	if r.Stats().AdvancesApplied != 1 {
		t.Fatalf("AdvancesApplied = %d, want 1", r.Stats().AdvancesApplied)
	}

	// Promote the replica with the same floor: its watermark is already past
	// the hole, so it must NOT re-serve the skip — no backfill episode, no
	// peer probes, and the very first ack carries the advanced watermark.
	renv.TakeSents()
	prom2 := wire.Packet{Type: wire.TypePromote, Source: testSource,
		Group: testGroup, Seq: 10, Epoch: 3}
	r.Recv(srcAddr, mustMarshal(t, prom2))
	if r.IsReplica() {
		t.Fatal("replica was not promoted")
	}
	if n := r.Stats().BackfillsStarted; n != 0 {
		t.Fatalf("promoted replica re-served the skip: BackfillsStarted = %d", n)
	}
	sents := renv.SentPackets()
	if len(sents) != 1 || sents[0].Type != wire.TypeSourceAck || sents[0].Seq != 10 {
		t.Fatalf("post-promotion sends = %v, want one SourceAck at 10", sents)
	}
}

// TestPromoteWithForgedWatermarkBoundsSyncScan reproduces a hang found by
// the adversarial-packet fuzzer (seed 0): a demoted primary re-promoted
// with a forged huge release watermark skips the unrecoverable hole via
// Advance, and the replica sync tick must then jump the gap rather than
// walk it one sequence number at a time (2^60 Store.Get calls).
func TestPromoteWithForgedWatermarkBoundsSyncScan(t *testing.T) {
	p, env := newPrimary(t, PrimaryConfig{
		Replicas:  []transport.Addr{replica1},
		SyncRetry: 50 * time.Millisecond,
	})
	p.Recv(srcAddr, mustMarshal(t, dataPkt(1, "one")))
	// Redirect naming another server demotes the acting primary.
	redir := wire.Packet{Type: wire.TypePrimaryRedirect, Source: testSource,
		Group: testGroup, Addr: transporttest.Addr("other").String(), Epoch: 2}
	p.Recv(srcAddr, mustMarshal(t, redir))
	if !p.IsReplica() {
		t.Fatal("primary did not demote on redirect naming another server")
	}
	// Re-promotion with a forged astronomical watermark: no peers can serve
	// the hole, so it is skipped, advancing contiguity by ~2^60.
	prom := wire.Packet{Type: wire.TypePromote, Source: testSource,
		Group: testGroup, Seq: 1 << 60, Epoch: 3}
	p.Recv(srcAddr, mustMarshal(t, prom))
	key := StreamKey{Source: testSource, Group: testGroup}
	if got := p.Contiguous(key); got != 1<<60 {
		t.Fatalf("Contiguous = %d, want %d", got, uint64(1)<<60)
	}
	// The sync tick over the un-acked replica must complete promptly; before
	// the gap-jumping fix this walked every sequence number in the hole.
	env.Advance(time.Second)
	if p.Stats().Demotions != 1 {
		t.Fatalf("Demotions = %d, want 1", p.Stats().Demotions)
	}
}
