package logger

import (
	"testing"
	"time"

	"lbrm/internal/transport"
	"lbrm/internal/transport/transporttest"
	"lbrm/internal/wire"
)

var (
	regionalA = transporttest.Addr("regionalA")
	regionalB = transporttest.Addr("regionalB")
)

// treeSecondary builds a site secondary parented to regionalA with
// regionalB as the re-home sibling and the primary as the chain top.
func treeSecondary(t *testing.T) (*Secondary, *transporttest.Env) {
	t.Helper()
	return newSecondary(t, SecondaryConfig{
		Parents:        []transport.Addr{regionalA},
		Siblings:       []transport.Addr{regionalB},
		NackDelay:      10 * time.Millisecond,
		RequestTimeout: 50 * time.Millisecond,
		MaxRetries:     2,
	})
}

func TestCandidateChainOrder(t *testing.T) {
	cfg := SecondaryConfig{
		Primary:  primaryAddr,
		Parents:  []transport.Addr{regionalA},
		Siblings: []transport.Addr{regionalB},
	}.withDefaults()
	got := cfg.candidates()
	want := []parentCand{{regionalA, 1}, {regionalB, 1}, {primaryAddr, 2}}
	if len(got) != len(want) {
		t.Fatalf("candidates = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("candidates[%d] = %v, want %v", i, got[i], want[i])
		}
	}
	// Flat config: the chain is just the primary, one tier up.
	flat := SecondaryConfig{Primary: primaryAddr}.withDefaults().candidates()
	if len(flat) != 1 || flat[0] != (parentCand{primaryAddr, 1}) {
		t.Fatalf("flat candidates = %v", flat)
	}
	// A primary already listed last is not duplicated.
	dup := SecondaryConfig{
		Primary: primaryAddr,
		Parents: []transport.Addr{regionalA, primaryAddr},
	}.withDefaults().candidates()
	if len(dup) != 2 || dup[1] != (parentCand{primaryAddr, 2}) {
		t.Fatalf("dedup candidates = %v", dup)
	}
}

// TestSecondaryRehomesThroughChain walks the whole degradation path: the
// dead immediate parent costs MaxRetries NACKs, then the logger re-homes
// to the sibling, then to the primary, and only abandons when the entire
// chain is exhausted. Every NACK must stamp its target's tier.
func TestSecondaryRehomesThroughChain(t *testing.T) {
	s, env := treeSecondary(t)
	s.Recv(rcvA, mustMarshal(t, nackPkt(wire.SeqRange{From: 5, To: 5})))
	env.Advance(time.Minute)
	sents := env.SentPackets()
	if len(sents) != 6 {
		t.Fatalf("sent %d NACKs, want 2 per candidate = 6", len(sents))
	}
	wantTargets := []transport.Addr{regionalA, regionalA, regionalB, regionalB, primaryAddr, primaryAddr}
	wantTiers := []int{1, 1, 1, 1, 2, 2}
	for i, p := range sents {
		if p.Type != wire.TypeNack {
			t.Fatalf("sent[%d] = %v, want NACK", i, p.Type)
		}
		if env.Sents[i].To != wantTargets[i] {
			t.Fatalf("NACK %d to %v, want %v", i, env.Sents[i].To, wantTargets[i])
		}
		if p.Tier() != wantTiers[i] {
			t.Fatalf("NACK %d tier = %d, want %d", i, p.Tier(), wantTiers[i])
		}
	}
	got := s.Stats()
	if got.Rehomes != 2 || got.FetchesAbandoned != 1 {
		t.Fatalf("stats = %+v, want 2 rehomes then 1 abandonment", got)
	}
	if addr, tier := s.Parent(); addr != primaryAddr || tier != 2 {
		t.Fatalf("Parent() = %v tier %d, want primary tier 2", addr, tier)
	}
}

// TestSecondaryRehomeBackfills: sequence numbers the logger gave up on at
// a dead parent are re-requested from the re-home target (the backfill).
func TestSecondaryRehomeBackfills(t *testing.T) {
	s, env := treeSecondary(t)
	s.Recv(rcvA, mustMarshal(t, nackPkt(wire.SeqRange{From: 5, To: 6})))
	env.Advance(time.Minute)
	for i, sent := range env.Sents[2:4] {
		p := env.SentPackets()[2+i]
		if sent.To != regionalB {
			t.Fatalf("backfill NACK to %v, want sibling", sent.To)
		}
		if len(p.Ranges) != 1 || p.Ranges[0] != (wire.SeqRange{From: 5, To: 6}) {
			t.Fatalf("backfill ranges = %v, want full original demand", p.Ranges)
		}
	}
}

// TestSecondaryReparentConvergesBack: a healed regional's TypeReparent
// announcement pulls re-homed children back and re-fires their fetches at
// it.
func TestSecondaryReparentConvergesBack(t *testing.T) {
	s, env := treeSecondary(t)
	s.Recv(rcvA, mustMarshal(t, nackPkt(wire.SeqRange{From: 5, To: 5})))
	// Burn through regionalA and regionalB; end parked on the primary.
	env.Advance(2 * time.Second)
	if addr, _ := s.Parent(); addr != primaryAddr {
		t.Fatalf("Parent() = %v, want primary after two rehomes", addr)
	}
	// Fresh demand while parked on the primary keeps a fetch episode live.
	s.Recv(rcvB, mustMarshal(t, nackPkt(wire.SeqRange{From: 5, To: 5})))
	env.Advance(15 * time.Millisecond)
	env.Sents = nil
	ann := wire.Packet{Type: wire.TypeReparent, Group: testGroup,
		TreeEpoch: 2, Addr: regionalA.String()}
	ann.SetTier(1)
	s.Recv(regionalA, mustMarshal(t, ann))
	if addr, tier := s.Parent(); addr != regionalA || tier != 1 {
		t.Fatalf("Parent() = %v tier %d, want regionalA tier 1", addr, tier)
	}
	if got := s.Stats(); got.ReparentsFollowed != 1 {
		t.Fatalf("stats = %+v, want 1 reparent followed", got)
	}
	// The in-flight fetch re-targets the recovered parent immediately,
	// without waiting out a backoff interval.
	sents := env.SentPackets()
	if len(sents) == 0 || env.Sents[0].To != regionalA {
		t.Fatalf("no backfill NACK to recovered parent; sents = %v", sents)
	}
	if sents[0].Tier() != 1 {
		t.Fatalf("backfill NACK tier = %d, want 1", sents[0].Tier())
	}
}

// TestSecondaryReparentFences: replayed (same tree epoch) and stale
// primary-epoch announcements must not move the parent.
func TestSecondaryReparentFences(t *testing.T) {
	s, env := treeSecondary(t)
	s.Recv(rcvA, mustMarshal(t, nackPkt(wire.SeqRange{From: 5, To: 5})))
	env.Advance(2 * time.Second) // park on the primary
	// The logger has observed primary epoch 5.
	hb := wire.Packet{Type: wire.TypeHeartbeat, Source: testSource, Group: testGroup,
		Seq: 1, HeartbeatIdx: 1, PrimaryEpoch: 5}
	s.Recv(srcAddr, mustMarshal(t, hb))

	// Announcement stamped with an older primary epoch: fenced.
	ann := wire.Packet{Type: wire.TypeReparent, Group: testGroup,
		TreeEpoch: 2, Epoch: 3, Addr: regionalA.String()}
	ann.SetTier(1)
	s.Recv(regionalA, mustMarshal(t, ann))
	if got := s.Stats(); got.StaleReparents != 1 || got.ReparentsFollowed != 0 {
		t.Fatalf("stats after stale primary epoch = %+v", got)
	}
	if addr, _ := s.Parent(); addr != primaryAddr {
		t.Fatalf("fenced announcement moved parent to %v", addr)
	}

	// Fresh announcement adopts; an exact replay of it is fenced by the
	// per-tier tree epoch.
	fresh := wire.Packet{Type: wire.TypeReparent, Group: testGroup,
		TreeEpoch: 2, Epoch: 5, Addr: regionalA.String()}
	fresh.SetTier(1)
	s.Recv(regionalA, mustMarshal(t, fresh))
	if addr, _ := s.Parent(); addr != regionalA {
		t.Fatalf("fresh announcement not adopted; parent = %v", addr)
	}
	// Re-home away again, then replay the same tree epoch: must stay put.
	env.Advance(2 * time.Second)
	s.Recv(regionalA, mustMarshal(t, fresh))
	if got := s.Stats(); got.StaleReparents != 2 {
		t.Fatalf("stats after replay = %+v, want 2 stale reparents", got)
	}
}

// TestSecondaryAnnouncesOnStart: a tier node multicasts its TypeReparent
// with region scope when it boots.
func TestSecondaryAnnouncesOnStart(t *testing.T) {
	cfg := SecondaryConfig{
		Group: testGroup, Primary: primaryAddr,
		Tier: 1, TreeEpoch: 3,
	}
	env := transporttest.NewEnv("regional")
	s := NewSecondary(cfg)
	s.Start(env)
	mc := env.McastPackets()
	if len(mc) != 1 || mc[0].Type != wire.TypeReparent {
		t.Fatalf("boot multicasts = %v, want one REPARENT", mc)
	}
	if mc[0].Tier() != 1 || mc[0].TreeEpoch != 3 {
		t.Fatalf("announcement tier/epoch = %d/v%d, want 1/v3", mc[0].Tier(), mc[0].TreeEpoch)
	}
	if env.Mcasts[0].TTL != transport.TTLRegion {
		t.Fatalf("announce TTL = %d, want region scope %d", env.Mcasts[0].TTL, transport.TTLRegion)
	}
	got, err := env.ParseAddr(mc[0].Addr)
	if err != nil || got != transporttest.Addr("regional") {
		t.Fatalf("announced addr = %q (%v)", mc[0].Addr, err)
	}
	// A leaf (tier 0) stays silent.
	leafEnv := transporttest.NewEnv("leaf")
	NewSecondary(SecondaryConfig{Group: testGroup, Primary: primaryAddr}).Start(leafEnv)
	if len(leafEnv.Mcasts) != 0 {
		t.Fatalf("tier-0 logger announced itself: %v", leafEnv.McastPackets())
	}
}

// TestSecondaryRedirectWhileParentedLow: a primary failover redirect
// updates the chain's final slot but does not steal fetches from a live
// lower-tier parent; a later escalation targets the new primary.
func TestSecondaryRedirectWhileParentedLow(t *testing.T) {
	s, env := treeSecondary(t)
	newPrimary := transporttest.Addr("primary2")
	s.Recv(rcvA, mustMarshal(t, nackPkt(wire.SeqRange{From: 5, To: 5})))
	env.Advance(15 * time.Millisecond) // first fetch fired at regionalA
	red := wire.Packet{Type: wire.TypePrimaryRedirect, Source: testSource, Group: testGroup,
		Epoch: 2, Addr: newPrimary.String()}
	s.Recv(primaryAddr, mustMarshal(t, red))
	if addr, _ := s.Parent(); addr != regionalA {
		t.Fatalf("redirect stole the parent: %v", addr)
	}
	// Exhaust the chain: the final escalation goes to the redirected
	// primary, not the boot-time one.
	env.Advance(time.Minute)
	var toNew, toOld int
	for _, sent := range env.Sents {
		switch sent.To {
		case newPrimary:
			toNew++
		case primaryAddr:
			toOld++
		}
	}
	if toNew == 0 || toOld != 0 {
		t.Fatalf("escalation sent %d to new primary, %d to old; want all primary-tier NACKs at the new one", toNew, toOld)
	}
}
