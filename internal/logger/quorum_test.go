package logger

import (
	"fmt"
	"testing"
	"time"

	"lbrm/internal/obs"
	"lbrm/internal/transport"
	"lbrm/internal/transport/transporttest"
	"lbrm/internal/wire"
)

// qnode is one logger in a miniature quorum cluster, with its own fake env.
type qnode struct {
	name string
	p    *Primary
	env  *transporttest.Env
}

// qcluster wires a primary and its replicas together by shuttling captured
// datagrams between their fake envs.
type qcluster struct {
	t      *testing.T
	nodes  []*qnode
	byAddr map[transport.Addr]*qnode
	// drop, when set, silently discards datagrams (simulated partition).
	drop func(from, to transport.Addr) bool
}

// newQuorumCluster builds a primary with nreps replicas in quorum mode.
// cfg seeds the primary's config; replicas copy it with the role flipped.
func newQuorumCluster(t *testing.T, quorum, nreps int, cfg PrimaryConfig) *qcluster {
	t.Helper()
	if cfg.Group == 0 {
		cfg.Group = testGroup
	}
	cfg.Quorum = quorum
	c := &qcluster{t: t, byAddr: make(map[transport.Addr]*qnode)}
	var repAddrs []transport.Addr
	for i := 1; i <= nreps; i++ {
		repAddrs = append(repAddrs, transporttest.Addr(fmt.Sprintf("r%d", i)))
	}
	pcfg := cfg
	pcfg.Replicas = repAddrs
	pn := &qnode{name: "primary", p: NewPrimary(pcfg), env: transporttest.NewEnv("primary")}
	c.add(pn)
	for i := 1; i <= nreps; i++ {
		rcfg := cfg
		rcfg.Replica = true
		rcfg.Epoch = 0
		for j, a := range repAddrs {
			if j != i-1 {
				rcfg.Peers = append(rcfg.Peers, a)
			}
		}
		name := fmt.Sprintf("r%d", i)
		c.add(&qnode{name: name, p: NewPrimary(rcfg), env: transporttest.NewEnv(name)})
	}
	for _, n := range c.nodes {
		n.p.Start(n.env)
	}
	c.pump()
	return c
}

func (c *qcluster) add(n *qnode) {
	c.nodes = append(c.nodes, n)
	c.byAddr[n.env.LocalAddr()] = n
}

func (c *qcluster) primary() *qnode { return c.nodes[0] }

// pump delivers captured datagrams between nodes until the cluster is
// quiescent. Unroutable destinations (e.g. the source) stay captured on the
// sending env for the test to inspect.
func (c *qcluster) pump() {
	for moved := true; moved; {
		moved = false
		for _, n := range c.nodes {
			var keep []transporttest.Sent
			for _, s := range n.env.TakeSents() {
				dst := c.byAddr[s.To]
				if dst == nil {
					keep = append(keep, transporttest.Sent{
						To: s.To, Data: append([]byte(nil), s.Data...)})
					continue
				}
				moved = true
				if c.drop != nil && c.drop(n.env.LocalAddr(), s.To) {
					continue
				}
				dst.p.Recv(n.env.LocalAddr(), s.Data)
			}
			n.env.Sents = append(n.env.Sents, keep...)
		}
	}
}

// advance steps every node's clock together, pumping between steps.
func (c *qcluster) advance(d time.Duration) {
	const step = 10 * time.Millisecond
	for elapsed := time.Duration(0); elapsed < d; elapsed += step {
		for _, n := range c.nodes {
			n.env.Advance(step)
		}
		c.pump()
	}
}

// sourceAcks decodes the SourceAcks captured on the primary's env (they are
// unroutable in the cluster) and clears them.
func (c *qcluster) sourceAcks() []wire.Packet {
	var acks []wire.Packet
	var keep []transporttest.Sent
	for _, s := range c.primary().env.Sents {
		var p wire.Packet
		if err := p.Unmarshal(s.Data); err != nil {
			c.t.Fatalf("malformed captured packet: %v", err)
		}
		if p.Type == wire.TypeSourceAck {
			acks = append(acks, p)
		} else {
			keep = append(keep, s)
		}
	}
	c.primary().env.Sents = keep
	return acks
}

func (c *qcluster) sendData(seq uint64, payload string) {
	c.primary().p.Recv(srcAddr, mustMarshal(c.t, dataPkt(seq, payload)))
	c.pump()
}

func TestQuorumRingHappyPath(t *testing.T) {
	c := newQuorumCluster(t, 2, 2, PrimaryConfig{})
	pn := c.primary()
	if got := pn.p.Stats().RingConfigsSent; got != 2 {
		t.Fatalf("RingConfigsSent = %d, want 2", got)
	}
	c.sendData(1, "one")
	acks := c.sourceAcks()
	if len(acks) == 0 || acks[len(acks)-1].Seq != 1 {
		t.Fatalf("acks = %+v, want final cumulative 1", acks)
	}
	// The first ack (minted at data arrival, before the token returned) must
	// have been quorum-parked at 0, and the final one fully replicated.
	if acks[0].Seq != 0 {
		t.Fatalf("first ack Seq = %d, want parked 0", acks[0].Seq)
	}
	ps := pn.p.Stats()
	if ps.QuorumLaunched != 1 || ps.QuorumReturns != 1 {
		t.Fatalf("launched/returns = %d/%d, want 1/1", ps.QuorumLaunched, ps.QuorumReturns)
	}
	if ps.LogSyncsSent != 0 {
		t.Fatalf("LogSyncsSent = %d, want 0 (ring mode replicates via tokens)", ps.LogSyncsSent)
	}
	for _, n := range c.nodes[1:] {
		rs := n.p.Stats()
		if rs.QuorumApplied != 1 || rs.QuorumForwarded != 1 {
			t.Fatalf("%s applied/forwarded = %d/%d, want 1/1", n.name, rs.QuorumApplied, rs.QuorumForwarded)
		}
		if got := n.p.Contiguous(StreamKey{Source: testSource, Group: testGroup}); got != 1 {
			t.Fatalf("%s contiguous = %d, want 1", n.name, got)
		}
	}
}

// TestQuorumPerPacketCostConstant is the unit-level half of the O(1) claim:
// the primary sends exactly one sync-class message per logged packet
// regardless of replica count (the tap-based accounting test in
// internal/chaos covers the full datapath).
func TestQuorumPerPacketCostConstant(t *testing.T) {
	const packets = 20
	for _, nreps := range []int{3, 5} {
		c := newQuorumCluster(t, 1, nreps, PrimaryConfig{})
		for seq := uint64(1); seq <= packets; seq++ {
			c.sendData(seq, "x")
		}
		ps := c.primary().p.Stats()
		if ps.QuorumLaunched != packets {
			t.Fatalf("%d replicas: QuorumLaunched = %d, want %d", nreps, ps.QuorumLaunched, packets)
		}
		if ps.LogSyncsSent != 0 {
			t.Fatalf("%d replicas: LogSyncsSent = %d, want 0", nreps, ps.LogSyncsSent)
		}
		// Every replica forwards each token exactly once: R+1 link messages
		// per packet in total, one per ring link.
		for _, n := range c.nodes[1:] {
			if got := n.p.Stats().QuorumForwarded; got != packets {
				t.Fatalf("%d replicas: %s forwarded %d, want %d", nreps, n.name, got, packets)
			}
		}
	}
}

func TestQuorumParksAcksUntilQuorum(t *testing.T) {
	c := newQuorumCluster(t, 2, 2, PrimaryConfig{})
	// Partition both replicas: tokens die on the wire.
	c.drop = func(from, to transport.Addr) bool { return to != c.primary().env.LocalAddr() }
	c.sendData(1, "one")
	c.sendData(2, "two")
	for _, a := range c.sourceAcks() {
		if a.Seq != 0 {
			t.Fatalf("ack Seq = %d while quorum unreachable, want 0", a.Seq)
		}
	}
	if ps := c.primary().p.Stats(); ps.AcksParked == 0 {
		t.Fatal("AcksParked not counted")
	}
	// Heal: the periodic LogSync repair closes the gap, and the direct-path
	// LogSyncAcks mint the withheld watermark.
	c.drop = nil
	c.advance(3 * time.Second)
	acks := c.sourceAcks()
	if len(acks) == 0 || acks[len(acks)-1].Seq != 2 {
		t.Fatalf("post-heal acks = %+v, want final 2", acks)
	}
	for i := 1; i < len(acks); i++ {
		if acks[i].Seq < acks[i-1].Seq {
			t.Fatalf("ack watermark regressed: %+v", acks)
		}
	}
}

func TestQuorumUnsatisfiableReportsDegraded(t *testing.T) {
	sink := obs.NewSink()
	c := newQuorumCluster(t, 3, 2, PrimaryConfig{Obs: sink}) // quorum > replicas
	c.sendData(1, "one")
	c.advance(3 * time.Second) // past the 2s QuorumDeadline
	for _, a := range c.sourceAcks() {
		if a.Seq != 0 {
			t.Fatalf("ack Seq = %d with unsatisfiable quorum, want 0", a.Seq)
		}
	}
	ps := c.primary().p.Stats()
	if ps.QuorumDegradations == 0 {
		t.Fatal("QuorumDegradations not counted")
	}
	if got := sink.Gauge("primary.quorum.health").Value(); got != QuorumHealthDegraded {
		t.Fatalf("health gauge = %d, want %d (degraded)", got, QuorumHealthDegraded)
	}
	// Parked acks keep flowing as liveness proof (rate-limited, not silent).
	before := c.primary().p.Stats().SourceAcks
	c.advance(time.Second)
	if after := c.primary().p.Stats().SourceAcks; after <= before {
		t.Fatal("no liveness re-acks while parked")
	}
}

func TestRingStallFallsBackAndRepairs(t *testing.T) {
	c := newQuorumCluster(t, 1, 2, PrimaryConfig{})
	r1 := c.nodes[1].env.LocalAddr()
	c.sendData(1, "one")
	if ps := c.primary().p.Stats(); ps.QuorumReturns != 1 {
		t.Fatalf("ring not working before fault: %+v", ps)
	}
	// Partition the first hop: tokens die there, nothing returns.
	c.drop = func(from, to transport.Addr) bool { return to == r1 }
	c.sendData(2, "two")
	c.advance(2 * time.Second)
	ps := c.primary().p.Stats()
	if ps.RingStalls == 0 {
		t.Fatalf("stall not detected: %+v", ps)
	}
	// Direct fan-in + the surviving replica satisfy quorum 1: the ack for
	// seq 2 must have been minted despite the dead ring hop.
	acks := c.sourceAcks()
	if len(acks) == 0 || acks[len(acks)-1].Seq != 2 {
		t.Fatalf("acks during fallback = %+v, want final 2", acks)
	}
	// Repair routes AROUND the dead hop: the probe ring is formed from the
	// replicas that prove themselves live, so it comes back without r1.
	if ps.RingRepairs == 0 {
		t.Fatalf("ring not repaired around the dead hop: %+v", ps)
	}
	// The repaired ring replicates and acks with the fault still present.
	returns := ps.QuorumReturns
	c.sendData(3, "three")
	ps = c.primary().p.Stats()
	if ps.QuorumReturns != returns+1 {
		t.Fatalf("post-repair token did not return (returns %d → %d)", returns, ps.QuorumReturns)
	}
	acks = c.sourceAcks()
	if len(acks) == 0 || acks[len(acks)-1].Seq != 3 {
		t.Fatalf("post-repair acks = %+v, want final 3", acks)
	}
	// Heal the partition: the excluded replica catches up via the direct
	// LogSync repair tick even while off the ring.
	c.drop = nil
	c.advance(3 * time.Second)
	if got := c.nodes[1].p.Contiguous(StreamKey{Source: testSource, Group: testGroup}); got != 3 {
		t.Fatalf("healed replica contiguous = %d, want 3 (direct repair)", got)
	}
}

func TestQuorumAckFencing(t *testing.T) {
	c := newQuorumCluster(t, 1, 2, PrimaryConfig{Epoch: 5})
	pn := c.primary()
	// A token from a superseded primary epoch is fenced at the primary.
	stale := wire.Packet{Type: wire.TypeQuorumAck, Source: testSource, Group: testGroup,
		Seq: 9, Epoch: 3, RingVer: 1, Watermarks: []uint64{9, 9}}
	pn.p.Recv(rcvA, mustMarshal(t, stale))
	if got := pn.p.Stats().StaleQuorumAcks; got != 1 {
		t.Fatalf("StaleQuorumAcks = %d, want 1", got)
	}
	// A current-epoch token with a superseded ring version is dropped too.
	old := wire.Packet{Type: wire.TypeQuorumAck, Source: testSource, Group: testGroup,
		Seq: 9, Epoch: 5, RingVer: 99, Watermarks: []uint64{9, 9}}
	pn.p.Recv(rcvA, mustMarshal(t, old))
	if got := pn.p.Stats().StaleRingTokens; got != 1 {
		t.Fatalf("StaleRingTokens = %d, want 1", got)
	}
	// Replica side: a stale-epoch token must not be applied or forwarded.
	rn := c.nodes[1]
	staleFwd := wire.Packet{Type: wire.TypeQuorumAck, Source: testSource, Group: testGroup,
		Seq: 9, Epoch: 3, RingVer: rn.p.ring.ver, Payload: []byte("x")}
	rn.p.Recv(pn.env.LocalAddr(), mustMarshal(t, staleFwd))
	rs := rn.p.Stats()
	if rs.StaleQuorumAcks != 1 || rs.QuorumApplied != 0 {
		t.Fatalf("replica stale fencing: %+v", rs)
	}
}

// TestReplicaRankValidation pins the construction-time ReplicaRank clamp
// (satellite: out-of-range ranks must not select nonsense or panic later).
func TestReplicaRankValidation(t *testing.T) {
	cases := []struct {
		rank    int
		nreps   int
		want    int
		clamped uint64
	}{
		{rank: 0, nreps: 2, want: 1, clamped: 0},  // documented default, not a clamp
		{rank: -3, nreps: 2, want: 1, clamped: 1}, // nonsense negative
		{rank: 5, nreps: 2, want: 2, clamped: 1},  // past the roster
		{rank: 2, nreps: 2, want: 2, clamped: 0},  // in range
	}
	for _, tc := range cases {
		var reps []transport.Addr
		for i := 0; i < tc.nreps; i++ {
			reps = append(reps, transporttest.Addr(fmt.Sprintf("r%d", i+1)))
		}
		p := NewPrimary(PrimaryConfig{Group: testGroup, ReplicaRank: tc.rank, Replicas: reps})
		if p.cfg.ReplicaRank != tc.want {
			t.Errorf("rank %d with %d replicas: got %d, want %d",
				tc.rank, tc.nreps, p.cfg.ReplicaRank, tc.want)
		}
		if p.stats.RankClamped != tc.clamped {
			t.Errorf("rank %d: RankClamped = %d, want %d", tc.rank, p.stats.RankClamped, tc.clamped)
		}
	}
	// Rank selection end-to-end: a clamped rank reports the least
	// up-to-date replica, not a phantom one.
	p := NewPrimary(PrimaryConfig{Group: testGroup, ReplicaRank: 9,
		Replicas: []transport.Addr{replica1, replica2}})
	env := transporttest.NewEnv("primary")
	p.Start(env)
	p.Recv(srcAddr, mustMarshal(t, dataPkt(1, "a")))
	ack := wire.Packet{Type: wire.TypeLogSyncAck, Source: testSource, Group: testGroup,
		Seq: 1, Epoch: 1}
	p.Recv(replica1, mustMarshal(t, ack))
	key := StreamKey{Source: testSource, Group: testGroup}
	if got := p.replicaSeq(key); got != 0 {
		t.Fatalf("replicaSeq = %d, want 0 (rank clamped to 2, replica2 has nothing)", got)
	}
}

// TestPromotionBackfillAckedEpochSemantics pins the interplay of the
// promotion-gap backfill, the per-stream replica acked map, and the epoch
// bump (satellite): a promoted replica adopts the election epoch, fences
// stale-epoch LogSyncAcks out of the acked map, backfills the gap from its
// peer, and only mints quorum-gated acks from fresh-epoch progress.
func TestPromotionBackfillAckedEpochSemantics(t *testing.T) {
	peer := transporttest.Addr("peer")
	p := NewPrimary(PrimaryConfig{Group: testGroup, Replica: true, Quorum: 1,
		Peers: []transport.Addr{peer}})
	env := transporttest.NewEnv("rp")
	p.Start(env)
	// Replica life: synced through 2 at epoch 1.
	for seq := uint64(1); seq <= 2; seq++ {
		sync := wire.Packet{Type: wire.TypeLogSync, Source: testSource, Group: testGroup,
			Seq: seq, Epoch: 1, Payload: []byte("d")}
		p.Recv(peer, mustMarshal(t, sync))
	}
	if p.Epoch() != 1 {
		t.Fatalf("epoch = %d, want 1 (adopted from syncs)", p.Epoch())
	}
	env.Sents = nil
	// Promotion at epoch 3 with release floor 5: a 3..5 gap to backfill.
	prom := wire.Packet{Type: wire.TypePromote, Source: testSource, Group: testGroup,
		Seq: 5, Epoch: 3}
	p.Recv(srcAddr, mustMarshal(t, prom))
	if p.IsReplica() || p.Epoch() != 3 {
		t.Fatalf("replica=%v epoch=%d after promote, want acting at 3", p.IsReplica(), p.Epoch())
	}
	if got := p.Stats().BackfillsStarted; got != 1 {
		t.Fatalf("BackfillsStarted = %d, want 1", got)
	}
	key := StreamKey{Source: testSource, Group: testGroup}
	// A stale LogSyncAck from the old epoch claims the peer already holds 5.
	// It must be fenced out of the acked map, or the quorum watermark would
	// count a copy that predates the election.
	staleAck := wire.Packet{Type: wire.TypeLogSyncAck, Source: testSource, Group: testGroup,
		Seq: 5, Epoch: 1}
	p.Recv(peer, mustMarshal(t, staleAck))
	if got := p.Stats().StaleSyncAcks; got != 1 {
		t.Fatalf("StaleSyncAcks = %d, want 1", got)
	}
	if got := p.quorumSeq(key); got != 0 {
		t.Fatalf("quorumSeq = %d after fenced ack, want 0", got)
	}
	// The peer answers the backfill probe; the promoted primary NACKs the
	// gap and the peer serves it.
	reply := wire.Packet{Type: wire.TypeLogStateReply, Source: testSource, Group: testGroup,
		Seq: 5, Epoch: 3}
	p.Recv(peer, mustMarshal(t, reply))
	for seq := uint64(3); seq <= 5; seq++ {
		retr := wire.Packet{Type: wire.TypeRetrans, Flags: wire.FlagRetransmission | wire.FlagFromLogger,
			Source: testSource, Group: testGroup, Seq: seq, Payload: []byte("d")}
		p.Recv(peer, mustMarshal(t, retr))
	}
	if got := p.Contiguous(key); got != 5 {
		t.Fatalf("contiguous = %d after backfill, want 5", got)
	}
	// Quorum gating across the promotion: acks stay parked until the peer
	// acknowledges at the fresh epoch.
	env.Sents = nil
	freshAck := wire.Packet{Type: wire.TypeLogSyncAck, Source: testSource, Group: testGroup,
		Seq: 5, Epoch: 3}
	p.Recv(peer, mustMarshal(t, freshAck))
	if got := p.quorumSeq(key); got != 5 {
		t.Fatalf("quorumSeq = %d after fresh ack, want 5", got)
	}
	var final *wire.Packet
	for _, s := range env.SentPackets() {
		if s.Type == wire.TypeSourceAck {
			final = &s
		}
	}
	if final == nil || final.Seq != 5 || final.Epoch != 3 {
		t.Fatalf("final ack = %+v, want Seq 5 at epoch 3", final)
	}
}
