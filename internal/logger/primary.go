package logger

import (
	"time"

	"lbrm/internal/obs"
	"lbrm/internal/transport"
	"lbrm/internal/vtime"
	"lbrm/internal/wire"
)

// PrimaryConfig configures a primary logging server or a replica (§2.2.3).
type PrimaryConfig struct {
	// Group is the multicast group to log.
	Group wire.GroupID
	// Retention bounds the log (primaries typically retain more than
	// secondaries).
	Retention Retention
	// Replicas lists replica logging servers to keep synchronized.
	Replicas []transport.Addr
	// ReplicaRank selects which replica's cumulative sequence number is
	// reported to the source as the replicated-logger sequence: 1 means
	// the most up-to-date replica (the paper's default), 2 the
	// second-most (stronger guarantee), and so on. Out-of-range values are
	// clamped into [1, len(Replicas)] at construction (PrimaryStats.
	// RankClamped counts the adjustment).
	ReplicaRank int
	// Quorum enables quorum replication mode when > 0: the primary
	// withholds the source-ack watermark until Quorum replicas have
	// applied each packet, replicating via the ack ring (DESIGN.md §12).
	// Deliberately unclamped against len(Replicas): an unsatisfiable
	// quorum parks acknowledgements and surfaces degraded health instead
	// of quietly weakening the durability guarantee. 0 disables the mode.
	Quorum int
	// QuorumDeadline is how long acknowledgements may stay parked behind
	// a lagging quorum before the primary reports degraded health.
	QuorumDeadline time.Duration
	// RingStallTimeout is how long the primary waits for an outstanding
	// ring token before declaring the ring stalled, falling back to
	// direct fan-in, and starting jittered-backoff ring repair.
	RingStallTimeout time.Duration
	// SyncRetry is the interval for re-sending unacknowledged LogSyncs.
	SyncRetry time.Duration
	// SyncBatch caps LogSync retransmissions per replica per retry tick.
	SyncBatch int
	// NackDelay aggregates the primary's own gap discoveries before it
	// NACKs the source.
	NackDelay time.Duration
	// RequestTimeout is the retry interval for unanswered NACKs to the
	// source.
	RequestTimeout time.Duration
	// MaxRetries bounds those retries.
	MaxRetries int
	// Replica starts the server in the replica role: it does not join the
	// multicast group and only applies LogSyncs until promoted.
	Replica bool
	// Peers lists the other replicas of the same log. A replica promoted to
	// primary whose log ends below the source's retention floor (packets the
	// source already released under its durability rule) backfills the gap
	// from these peers via LogStateQuery + NACK instead of serving a
	// permanent hole (§2.2.3 failover).
	Peers []transport.Addr
	// Epoch is the initial primary-authority epoch. The configured acting
	// primary defaults to 1 (matching the sender's initial epoch); replicas
	// start at 0 and adopt epochs from LogSyncs and promotions.
	Epoch uint32
	// UnsafeNoFence disables epoch fencing, reverting to the pre-epoch
	// demote-on-redirect heuristic. Test-only: it exists so the chaos
	// harness can demonstrate that the un-fenced-single-primary invariant
	// actually trips when fencing is removed. Never set in production.
	UnsafeNoFence bool
	// Obs receives metrics and trace events (nil = uninstrumented).
	Obs *obs.Sink
}

func (c PrimaryConfig) withDefaults() PrimaryConfig {
	if c.ReplicaRank == 0 {
		c.ReplicaRank = 1
	}
	if c.SyncRetry == 0 {
		c.SyncRetry = 200 * time.Millisecond
	}
	if c.QuorumDeadline == 0 {
		c.QuorumDeadline = 2 * time.Second
	}
	if c.RingStallTimeout == 0 {
		c.RingStallTimeout = 2 * c.SyncRetry
	}
	if c.SyncBatch == 0 {
		c.SyncBatch = 64
	}
	if c.NackDelay == 0 {
		c.NackDelay = 20 * time.Millisecond
	}
	if c.RequestTimeout == 0 {
		c.RequestTimeout = 500 * time.Millisecond
	}
	if c.MaxRetries == 0 {
		c.MaxRetries = 8
	}
	if !c.Replica && c.Epoch == 0 {
		c.Epoch = 1
	}
	return c
}

// PrimaryStats counts a primary logger's protocol activity.
type PrimaryStats struct {
	PacketsLogged    uint64
	Duplicates       uint64
	SourceAcks       uint64
	NacksToSource    uint64
	NacksFromClients uint64
	SeqsRequested    uint64
	RetransServed    uint64
	LogSyncsSent     uint64
	LogSyncAcks      uint64
	LogSyncsApplied  uint64
	StateQueries     uint64
	Promotions       uint64
	Demotions        uint64 // stepped down after a redirect named another primary
	// Promotion-gap backfill (§2.2.3): a promoted replica fetching packets
	// the source has already released from its peer replicas.
	BackfillsStarted uint64
	BackfillNacks    uint64
	BackfillSkipped  uint64 // sequence numbers given up as unrecoverable
	// Epoch fencing (§2.2.3 failover hygiene).
	StaleSyncs     uint64 // LogSyncs dropped for carrying an old epoch
	StaleSyncAcks  uint64 // LogSyncAcks dropped for carrying an old epoch
	StaleRedirects uint64 // redirects ignored for carrying an old epoch
	StalePromotes  uint64 // promotions ignored for carrying an old epoch
	// LogSync advance records (watermark jumps across skipped holes).
	AdvancesSent    uint64
	AdvancesApplied uint64
	Malformed       uint64
	// Quorum replication mode (DESIGN.md §12).
	QuorumLaunched     uint64 // ring tokens launched (one per logged packet)
	QuorumForwarded    uint64 // ring tokens forwarded (replica role)
	QuorumApplied      uint64 // packets applied from ring tokens (replica role)
	QuorumReturns      uint64 // data tokens that completed the ring
	AcksParked         uint64 // source acks capped below the log watermark
	QuorumDegradations uint64 // lagging episodes that outlived QuorumDeadline
	RingStalls         uint64 // ring stall detections (fallback to direct fan-in)
	RingRepairs        uint64 // successful ring re-formations (probe returned)
	RingProbes         uint64 // repair probe tokens launched
	RingConfigsSent    uint64 // ring role installations sent to replicas
	RingConfigsApplied uint64 // ring roles this replica accepted
	StaleQuorumAcks    uint64 // ring tokens fenced for an old epoch
	StaleRingTokens    uint64 // ring tokens dropped for a superseded ring version
	StaleRingConfigs   uint64 // ring configs fenced or superseded
	RankClamped        uint64 // out-of-range ReplicaRank clamped at construction
}

// Primary is the primary logging server: it logs every packet from the
// source (recovering its own losses directly from the source, which buffers
// until acknowledged), acknowledges the source with the dual sequence
// numbers of §2.2.3, serves retransmission requests, and replicates the log.
//
// With cfg.Replica it starts as a passive replica that applies LogSyncs
// and answers state queries until a TypePromote arrives.
type Primary struct {
	cfg      PrimaryConfig
	env      transport.Env
	streams  map[StreamKey]*priStream
	replicas []*replicaState
	stats    PrimaryStats
	replica  bool
	stopped  bool
	// epoch is the highest primary-authority epoch observed (or held, when
	// acting). Authority-bearing traffic below it is fenced; observing a
	// higher one while acting demotes this server deterministically.
	epoch uint32
	// syncTimer drives the LogSync repair tick; syncIdle counts consecutive
	// ticks with nothing to send, driving the idle backoff.
	syncTimer vtime.Timer
	syncIdle  int
	// backfill is the active promotion-gap backfill episode (nil when none).
	backfill *backfillState
	// last is a one-entry stream cache (see Secondary.last).
	last *priStream
	// q is the quorum-mode ring state (nil while the mode is off or the
	// server has not yet acted as primary with cfg.Quorum > 0).
	q *quorumState
	// ring is this server's replica-side ring role (forwarding hop).
	ring ringRole
	// rankBuf is the reusable per-replica watermark sort buffer, keeping
	// replicaSeq/quorumSeq allocation-free on the ack hot path.
	rankBuf []uint64
	// wmBuf is the reusable ring-token watermark buffer for the replica
	// forward hop (the decoded slice aliases Decoder storage that must not
	// be grown in place).
	wmBuf []uint64
	// dec recycles NACK range storage across decodes.
	dec wire.Decoder
	// scratch is the reusable wire-encoding buffer (bindings copy).
	scratch []byte
	// mx caches the preregistered metric handles (all nil-safe).
	mx primaryMetrics
}

// primaryMetrics holds the primary's preregistered observability handles.
type primaryMetrics struct {
	sink            *obs.Sink
	tx              *obs.ClassCounters
	logged          *obs.Counter
	duplicates      *obs.Counter
	nacksReceived   *obs.Counter
	sourceAcks      *obs.Counter
	logSyncsSent    *obs.Counter
	logSyncsApplied *obs.Counter
	retransServed   *obs.Counter
	nacksToSource   *obs.Counter
	backfillNacks   *obs.Counter
	promotions      *obs.Counter
	demotions       *obs.Counter
	backfills       *obs.Counter
	backfillSkipped *obs.Counter
	staleSyncs      *obs.Counter
	staleSyncAcks   *obs.Counter
	staleRedirects  *obs.Counter
	stalePromotes   *obs.Counter
	advancesSent    *obs.Counter
	advancesApplied *obs.Counter
	epoch           *obs.Gauge
	// Quorum replication mode.
	quorumApplied *obs.Counter
	acksParked    *obs.Counter
	ringStalls    *obs.Counter
	ringRepairs   *obs.Counter
	quorumDepth   *obs.Gauge
	quorumHealth  *obs.Gauge
	quorumLag     *obs.Histogram
	ringRTT       *obs.Histogram
}

func newPrimaryMetrics(sink *obs.Sink) primaryMetrics {
	return primaryMetrics{
		sink:       sink,
		tx:         sink.Classes("primary.tx", wire.TrafficClassNames()),
		logged:     sink.Counter("primary.logged"),
		duplicates: sink.Counter("primary.duplicates"),
		// nacks_received is the primary's inbound escalation load — the
		// health engine's storm/escalation signal (DESIGN.md §15).
		nacksReceived:   sink.Counter("primary.nacks_received"),
		sourceAcks:      sink.Counter("primary.source_acks"),
		logSyncsSent:    sink.Counter("primary.logsyncs_sent"),
		logSyncsApplied: sink.Counter("primary.logsyncs_applied"),
		retransServed:   sink.Counter("primary.retrans_served"),
		nacksToSource:   sink.Counter("primary.nacks_to_source"),
		backfillNacks:   sink.Counter("primary.backfill_nacks"),
		promotions:      sink.Counter("primary.promotions"),
		demotions:       sink.Counter("primary.demotions"),
		backfills:       sink.Counter("primary.backfills"),
		backfillSkipped: sink.Counter("primary.backfill_skipped"),
		staleSyncs:      sink.Counter("primary.fence.stale_syncs"),
		staleSyncAcks:   sink.Counter("primary.fence.stale_sync_acks"),
		staleRedirects:  sink.Counter("primary.fence.stale_redirects"),
		stalePromotes:   sink.Counter("primary.fence.stale_promotes"),
		advancesSent:    sink.Counter("primary.advances_sent"),
		advancesApplied: sink.Counter("primary.advances_applied"),
		epoch:           sink.Gauge("primary.epoch"),
		quorumApplied:   sink.Counter("primary.quorum.applied"),
		acksParked:      sink.Counter("primary.quorum.acks_parked"),
		ringStalls:      sink.Counter("primary.quorum.ring_stalls"),
		ringRepairs:     sink.Counter("primary.quorum.ring_repairs"),
		quorumDepth:     sink.Gauge("primary.quorum.depth"),
		quorumHealth:    sink.Gauge("primary.quorum.health"),
		quorumLag: sink.Histogram("primary.quorum.replication_lag",
			[]uint64{1, 2, 4, 8, 16, 32, 64, 128, 256, 512}),
		ringRTT: sink.Histogram("primary.quorum.ring_rtt_ms",
			[]uint64{1, 2, 5, 10, 25, 50, 100, 250}),
	}
}

type priStream struct {
	key    StreamKey
	store  *Store
	source transport.Addr
	// pendingReq holds downstream requesters waiting for packets we lack.
	pendingReq map[uint64]map[transport.Addr]bool
	// fetch state toward the source.
	nackTimer  vtime.Timer
	retryTimer vtime.Timer
	retries    int
	// Quorum mode: lastQuorumAck is the highest quorum-gated watermark
	// minted toward the source (never regresses — a replica restart may
	// pull the truthful quorum watermark back, but the promise already
	// made stands); lastAckSeq/lastAckAt rate-limit re-acks at a parked
	// watermark, which only serve as primary-liveness proof.
	lastQuorumAck uint64
	lastAckSeq    uint64
	lastAckAt     int64
}

type replicaState struct {
	addr  transport.Addr
	acked map[StreamKey]uint64 // cumulative LogSyncAck per stream
	// lastSeen is when the replica last proved liveness (LogSyncAck or a
	// ring-token hop); ring repair prefers recently-seen replicas.
	lastSeen int64
}

// backfillState tracks a promoted replica's fetch of the packets released
// by the source before the old primary died (§2.2.3 failover gap).
type backfillState struct {
	st      *priStream
	floor   uint64 // the source's release watermark: we must hold ≤ floor
	retries int
	// lastContig/fruitless detect stalled episodes: rounds that close no
	// part of the hole. Peers that are alive but equally cold can never
	// help, so a few fruitless rounds skip the hole early instead of
	// riding the full backed-off MaxRetries schedule.
	lastContig uint64
	fruitless  int
	timer      vtime.Timer
}

// NewPrimary returns a primary logger (or replica) for cfg.
func NewPrimary(cfg PrimaryConfig) *Primary {
	cfg = cfg.withDefaults()
	p := &Primary{
		cfg:     cfg,
		streams: make(map[StreamKey]*priStream),
		replica: cfg.Replica,
		epoch:   cfg.Epoch,
		mx:      newPrimaryMetrics(cfg.Obs),
	}
	p.mx.epoch.Set(int64(cfg.Epoch))
	// Validate ReplicaRank against the configured replica set: a negative
	// rank or one past the roster cannot select anything meaningful, so it
	// is clamped into range (and counted) rather than silently misreported
	// or left to index out of bounds on a future roster change.
	if p.cfg.ReplicaRank < 1 {
		p.cfg.ReplicaRank = 1
		p.stats.RankClamped++
	} else if n := len(p.cfg.Replicas); n > 0 && p.cfg.ReplicaRank > n {
		p.cfg.ReplicaRank = n
		p.stats.RankClamped++
	}
	if p.cfg.Quorum < 0 {
		p.cfg.Quorum = 0
	}
	for _, a := range cfg.Replicas {
		p.replicas = append(p.replicas, &replicaState{addr: a, acked: make(map[StreamKey]uint64)})
	}
	return p
}

// Stats returns a snapshot of the logger's counters.
func (p *Primary) Stats() PrimaryStats { return p.stats }

// Stop halts the logger's timers and packet processing and releases any
// disk spill files. Safe to call once.
func (p *Primary) Stop() {
	p.stopped = true
	for _, st := range p.streams {
		st.store.Close()
	}
}

// after schedules fn guarded by the stopped flag.
func (p *Primary) after(d time.Duration, fn func()) vtime.Timer {
	return p.env.AfterFunc(d, func() {
		if !p.stopped {
			fn()
		}
	})
}

// IsReplica reports whether the server is still in the replica role.
func (p *Primary) IsReplica() bool { return p.replica }

// Epoch returns the highest primary-authority epoch this server has held
// or observed.
func (p *Primary) Epoch() uint32 { return p.epoch }

// staleAuthority reports whether authority-bearing traffic at epoch e must
// be fenced (dropped without effect).
func (p *Primary) staleAuthority(e uint32) bool {
	return !p.cfg.UnsafeNoFence && e < p.epoch
}

// observeEpoch folds an observed primary epoch into p.epoch. Seeing a
// higher epoch while acting means the source elected someone else and this
// server missed the announcement (typically it was partitioned away): it
// self-demotes deterministically and the return value is true. This is the
// fencing discipline of view-numbered leader election — demote on evidence,
// not on heuristics.
func (p *Primary) observeEpoch(e uint32) bool {
	if p.cfg.UnsafeNoFence || e <= p.epoch {
		return false
	}
	old := p.epoch
	p.epoch = e
	p.mx.sink.Emit(p.now(), obs.KindEpochBump, uint64(old), uint64(e), 0)
	p.mx.epoch.Set(int64(e))
	if !p.replica {
		p.demote()
		return true
	}
	return false
}

// now returns the environment clock in nanoseconds (0 before Start).
func (p *Primary) now() int64 {
	if p.env == nil {
		return 0
	}
	return p.env.Now().UnixNano()
}

// demote steps an acting primary down to the replica role: the log is kept
// and NACKs/state queries keep being served, but the server leaves the data
// group and stops acknowledging sources. Any backfill episode dies with the
// role; the new primary owns closing the hole now.
func (p *Primary) demote() {
	p.replica = true
	p.ring.active = false // wait for the new primary to install a fresh role
	p.stats.Demotions++
	p.mx.demotions.Inc()
	p.mx.sink.Emit(p.now(), obs.KindDemote, uint64(p.epoch), uint64(p.epoch), 0)
	if bf := p.backfill; bf != nil {
		if bf.timer != nil {
			bf.timer.Stop()
			bf.timer = nil
		}
		p.backfill = nil
	}
	p.env.Leave(p.cfg.Group)
}

// Store returns the log store for a stream (nil if unknown).
func (p *Primary) Store(key StreamKey) *Store {
	if st := p.streams[key]; st != nil {
		return st.store
	}
	return nil
}

// Contiguous returns the cumulative logged sequence for a stream.
func (p *Primary) Contiguous(key StreamKey) uint64 {
	if st := p.streams[key]; st != nil {
		return st.store.Contiguous()
	}
	return 0
}

// Start implements transport.Handler.
func (p *Primary) Start(env transport.Env) {
	p.env = env
	if !p.replica {
		p.joinAndSync()
		// A configured acting primary starts with an optimistic full ring:
		// every replica is assumed live until the ring proves otherwise.
		p.initQuorum(true)
	}
	p.startEviction()
}

func (p *Primary) joinAndSync() {
	if err := p.env.Join(p.cfg.Group); err != nil {
		panic("logger: primary failed to join group: " + err.Error())
	}
	if len(p.replicas) > 0 {
		p.armSync(p.syncInterval())
	}
}

// armSync (re)schedules the LogSync repair tick, reusing one timer handle.
func (p *Primary) armSync(d time.Duration) {
	if p.syncTimer != nil {
		p.syncTimer.Reset(d)
		return
	}
	p.syncTimer = p.after(d, p.syncTick)
}

// syncInterval is the next repair-tick delay: SyncRetry jittered ±25%,
// doubling while consecutive ticks find nothing to send. Jitter keeps
// primaries of different groups (and a promoted replica next to a restarted
// one) from ticking in lockstep; the idle backoff keeps a fully synchronized
// replica set nearly silent.
func (p *Primary) syncInterval() time.Duration {
	return transport.Backoff{Base: p.cfg.SyncRetry}.Interval(p.syncIdle, p.env.Rand())
}

// startEviction arms the periodic retention tick (runs in both roles).
func (p *Primary) startEviction() {
	if d := evictInterval(p.cfg.Retention); d > 0 {
		p.after(d, p.evictTick)
	}
}

// evictTick enforces age-based retention even on idle streams.
func (p *Primary) evictTick() {
	now := p.env.Now()
	for _, st := range p.streams {
		st.store.EvictExpired(now)
	}
	p.after(evictInterval(p.cfg.Retention), p.evictTick)
}

// Recv implements transport.Handler.
func (p *Primary) Recv(from transport.Addr, data []byte) {
	if p.stopped {
		return
	}
	var pkt wire.Packet
	// The shared Decoder recycles NACK range storage across packets:
	// pkt.Ranges is dead once this call returns, so the alias is safe.
	if err := p.dec.Unmarshal(data, &pkt); err != nil {
		p.stats.Malformed++
		return
	}
	if pkt.Group != p.cfg.Group {
		return
	}
	switch pkt.Type {
	case wire.TypeData, wire.TypeRetrans:
		if !p.replica {
			p.onData(from, &pkt)
		}
	case wire.TypeHeartbeat:
		if !p.replica {
			p.onHeartbeat(from, &pkt)
		}
	case wire.TypeNack:
		p.onNack(from, &pkt)
	case wire.TypeLogSync:
		p.onLogSync(from, &pkt)
	case wire.TypeLogSyncAck:
		p.onLogSyncAck(from, &pkt)
	case wire.TypeQuorumAck:
		p.onQuorumAck(&pkt)
	case wire.TypeRingConfig:
		p.onRingConfig(&pkt)
	case wire.TypeLogStateQuery:
		p.onStateQuery(from, &pkt)
	case wire.TypeLogStateReply:
		p.onPeerStateReply(from, &pkt)
	case wire.TypePromote:
		p.onPromote(from, &pkt)
	case wire.TypePrimaryRedirect:
		p.onPrimaryRedirect(&pkt)
	}
}

func (p *Primary) stream(key StreamKey) *priStream {
	if st := p.last; st != nil && st.key == key {
		return st
	}
	st := p.streams[key]
	if st == nil {
		st = &priStream{
			key:        key,
			store:      NewStore(p.cfg.Retention),
			pendingReq: make(map[uint64]map[transport.Addr]bool),
		}
		p.streams[key] = st
	}
	p.last = st
	return st
}

func (p *Primary) onData(from transport.Addr, pkt *wire.Packet) {
	st := p.stream(KeyOf(pkt))
	if pkt.Type == wire.TypeData && pkt.Flags&wire.FlagFromLogger == 0 {
		st.source = from
	}
	if st.store.Put(pkt.Seq, pkt.Payload, p.env.Now()) {
		p.stats.PacketsLogged++
		p.mx.logged.Inc()
		p.replicateOrRing(st, pkt.Seq)
	} else {
		p.stats.Duplicates++
		p.mx.duplicates.Inc()
	}
	if waiters := st.pendingReq[pkt.Seq]; len(waiters) > 0 {
		delete(st.pendingReq, pkt.Seq)
		for w := range waiters {
			p.retransmit(st, pkt.Seq, w)
		}
	}
	// A backfill episode completes as soon as the hole closes, not at the
	// next retry tick.
	if bf := p.backfill; bf != nil && bf.st == st && st.store.Contiguous() >= bf.floor {
		p.finishBackfill(bf)
	}
	p.ackSource(st)
	p.checkGaps(st)
}

func (p *Primary) onHeartbeat(from transport.Addr, pkt *wire.Packet) {
	// The piggybacked primary epoch is the post-partition fencing path: a
	// stale primary that missed the redirect multicast learns from the very
	// next heartbeat that a newer epoch was minted, and steps down before
	// acking anything else.
	if p.observeEpoch(pkt.PrimaryEpoch) {
		return
	}
	st := p.stream(KeyOf(pkt))
	st.source = from
	if pkt.Flags&wire.FlagInlineData != 0 && pkt.Seq > 0 {
		if st.store.Put(pkt.Seq, pkt.Payload, p.env.Now()) {
			p.stats.PacketsLogged++
			p.mx.logged.Inc()
			p.replicateOrRing(st, pkt.Seq)
			p.ackSource(st)
		}
	}
	// Heartbeats reveal losses: the heartbeat's seq is the last data seq.
	if pkt.Seq > st.store.Contiguous() {
		p.checkGapsUpTo(st, pkt.Seq)
	}
}

// ackSource sends the dual-sequence-number acknowledgement to the source:
// the primary's cumulative logged sequence, and the replicated-logger
// sequence (the rank-selected replica's cumulative ack). With no replicas
// configured they coincide, so a source configured to wait for replica
// durability still makes progress.
//
// In quorum mode (cfg.Quorum > 0) the acknowledged watermark is capped at
// the write-quorum watermark: the source never releases a packet fewer than
// Quorum replicas have applied. Capped ("parked") acks are rate-limited —
// they carry no new information and only prove the primary is alive.
func (p *Primary) ackSource(st *priStream) {
	if st.source == nil {
		return
	}
	seq := st.store.Contiguous()
	repSeq := p.replicaSeq(st.key)
	if p.quorumOn() {
		contig := seq
		if qs := p.quorumSeq(st.key); qs < seq {
			seq = qs
		}
		// The minted watermark never regresses (see priStream.lastQuorumAck).
		if seq < st.lastQuorumAck {
			seq = st.lastQuorumAck
		} else {
			st.lastQuorumAck = seq
		}
		if repSeq > seq {
			repSeq = seq
		}
		now := p.now()
		if seq < contig {
			if seq == st.lastAckSeq && now-st.lastAckAt < int64(p.cfg.SyncRetry) {
				return // parked duplicate; the next token return re-acks
			}
			p.stats.AcksParked++
			p.mx.acksParked.Inc()
			p.mx.quorumLag.Observe(contig - seq)
		}
		st.lastAckSeq = seq
		st.lastAckAt = now
	}
	ack := wire.Packet{
		Type: wire.TypeSourceAck, Source: st.key.Source, Group: st.key.Group,
		Seq: seq, ReplicaSeq: repSeq,
		Epoch: p.epoch,
	}
	p.send(st.source, &ack)
	p.stats.SourceAcks++
	p.mx.sourceAcks.Inc()
}

// replicaSeq computes the replicated-logger sequence number for a stream.
func (p *Primary) replicaSeq(key StreamKey) uint64 {
	if len(p.replicas) == 0 {
		if st := p.streams[key]; st != nil {
			return st.store.Contiguous()
		}
		return 0
	}
	rank := p.cfg.ReplicaRank
	if rank > len(p.replicas) {
		rank = len(p.replicas)
	}
	return p.rankSeq(key, rank)
}

// rankSeq returns the rank-th largest per-replica cumulative watermark for
// the stream (1 = most up-to-date replica), or 0 when rank is out of range.
// It reuses p.rankBuf with an in-place insertion sort — replica sets are
// tiny and sort.Slice would allocate on the ack hot path.
func (p *Primary) rankSeq(key StreamKey, rank int) uint64 {
	if rank < 1 || rank > len(p.replicas) {
		return 0
	}
	buf := p.rankBuf[:0]
	for _, r := range p.replicas {
		buf = append(buf, r.acked[key])
	}
	p.rankBuf = buf
	for i := 1; i < len(buf); i++ {
		for j := i; j > 0 && buf[j] > buf[j-1]; j-- {
			buf[j], buf[j-1] = buf[j-1], buf[j]
		}
	}
	return buf[rank-1]
}

// replicate eagerly ships one just-logged packet to every replica.
func (p *Primary) replicate(st *priStream, seq uint64) {
	if len(p.replicas) == 0 {
		return
	}
	// Fresh work cancels the idle backoff: a loss of this eager copy should
	// be repaired within one base SyncRetry, not a backed-off multiple.
	if p.syncIdle > 0 {
		p.syncIdle = 0
		p.armSync(p.syncInterval())
	}
	payload, ok := st.store.Get(seq)
	if !ok {
		return
	}
	sync := wire.Packet{
		Type: wire.TypeLogSync, Source: st.key.Source, Group: st.key.Group,
		Seq: seq, Payload: payload, Epoch: p.epoch,
	}
	for _, r := range p.replicas {
		p.send(r.addr, &sync)
		p.stats.LogSyncsSent++
		p.mx.logSyncsSent.Inc()
	}
}

// sendAdvance ships a LogSync advance record: no payload, just "move your
// watermark past Seq". Without it a replica's cumulative ack sticks below
// any hole the primary skipped as unrecoverable, and a later promotion
// re-serves the whole skip through its own backfill.
func (p *Primary) sendAdvance(st *priStream, to transport.Addr, seq uint64) {
	adv := wire.Packet{
		Type: wire.TypeLogSync, Flags: wire.FlagLogAdvance,
		Source: st.key.Source, Group: st.key.Group,
		Seq: seq, Epoch: p.epoch,
	}
	p.send(to, &adv)
	p.stats.AdvancesSent++
	p.mx.advancesSent.Inc()
}

// syncTick periodically re-sends LogSyncs the replicas have not
// acknowledged.
func (p *Primary) syncTick() {
	anySent := false
	for _, r := range p.replicas {
		for key, st := range p.streams {
			contig := st.store.Contiguous()
			sent := 0
			for seq := r.acked[key] + 1; seq <= contig && sent < p.cfg.SyncBatch; seq++ {
				payload, ok := st.store.Get(seq)
				if !ok {
					// Evicted or skipped; the replica can never catch up on
					// this one. Tell it to advance its watermark across the
					// unservable range, then jump to the next servable packet
					// — without the advance record the replica's cumulative
					// ack sticks below the gap forever and this loop re-sends
					// the same batch every tick.
					next := st.store.NextRetained(seq + 1)
					if next == 0 || next > contig {
						p.sendAdvance(st, r.addr, contig)
						sent++
						anySent = true
						break
					}
					p.sendAdvance(st, r.addr, next-1)
					sent++
					anySent = true
					seq = next - 1
					continue
				}
				sync := wire.Packet{
					Type: wire.TypeLogSync, Source: key.Source, Group: key.Group,
					Seq: seq, Payload: payload, Epoch: p.epoch,
				}
				p.send(r.addr, &sync)
				p.stats.LogSyncsSent++
				p.mx.logSyncsSent.Inc()
				sent++
				anySent = true
			}
		}
	}
	if anySent {
		p.syncIdle = 0
	} else if p.syncIdle < 8 {
		p.syncIdle++
	}
	p.armSync(p.syncInterval())
}

func (p *Primary) onNack(from transport.Addr, pkt *wire.Packet) {
	st := p.stream(KeyOf(pkt))
	p.stats.NacksFromClients++
	p.mx.nacksReceived.Inc()
	budget := maxSeqsPerNack
	needFetch := false
	for _, r := range pkt.Ranges {
		for seq := r.From; seq <= r.To && budget > 0; seq++ {
			budget--
			p.stats.SeqsRequested++
			if st.store.Has(seq) {
				p.retransmit(st, seq, from)
				continue
			}
			if st.store.Seen(seq) {
				continue // evicted; unrecoverable here
			}
			w := st.pendingReq[seq]
			if w == nil {
				w = make(map[transport.Addr]bool)
				st.pendingReq[seq] = w
			}
			w[from] = true
			needFetch = true
		}
	}
	if needFetch {
		p.checkGaps(st)
	}
}

func (p *Primary) retransmit(st *priStream, seq uint64, to transport.Addr) {
	payload, ok := st.store.Get(seq)
	if !ok {
		return
	}
	// FlagViaPrimary classifies the repair as a §2.2.2 primary callback for
	// the flight recorder; a secondary relaying this packet propagates it.
	r := wire.Packet{
		Type:   wire.TypeRetrans,
		Flags:  wire.FlagRetransmission | wire.FlagFromLogger | wire.FlagViaPrimary,
		Source: st.key.Source, Group: st.key.Group, Seq: seq, Payload: payload,
	}
	p.send(to, &r)
	p.stats.RetransServed++
	p.mx.retransServed.Inc()
	p.mx.sink.EmitFlight(p.now(), obs.KindServe, seq, uint64(wire.PathPrimaryCallback), 0)
}

func (p *Primary) onLogSync(from transport.Addr, pkt *wire.Packet) {
	p.observeEpoch(pkt.Epoch)
	st := p.stream(KeyOf(pkt))
	if p.staleAuthority(pkt.Epoch) {
		// A fenced primary is still replicating. Do not apply its log, but
		// do ack with our (higher) epoch: the stale primary fences itself
		// the moment the ack arrives.
		p.stats.StaleSyncs++
		p.mx.staleSyncs.Inc()
		p.mx.sink.Emit(p.now(), obs.KindFenceHit, uint64(p.epoch), uint64(pkt.Epoch), uint64(pkt.Type))
		p.sendSyncAck(from, st)
		return
	}
	if pkt.Flags&wire.FlagLogAdvance != 0 {
		if pkt.Seq > st.store.Contiguous() {
			st.store.Advance(pkt.Seq)
			p.stats.AdvancesApplied++
			p.mx.advancesApplied.Inc()
			p.mx.sink.Emit(p.now(), obs.KindAdvance, pkt.Seq, 0, 0)
			// A promoted replica with replicas of its own forwards the
			// advance, like any other sync.
			if !p.replica {
				for _, r := range p.replicas {
					p.sendAdvance(st, r.addr, pkt.Seq)
				}
			}
		}
		p.sendSyncAck(from, st)
		return
	}
	if st.store.Put(pkt.Seq, pkt.Payload, p.env.Now()) {
		p.stats.LogSyncsApplied++
		p.mx.logSyncsApplied.Inc()
	}
	p.sendSyncAck(from, st)
	// A promoted replica with replicas of its own forwards the sync on.
	if !p.replica {
		p.replicateOrRing(st, pkt.Seq)
	}
}

func (p *Primary) sendSyncAck(to transport.Addr, st *priStream) {
	ack := wire.Packet{
		Type: wire.TypeLogSyncAck, Source: st.key.Source, Group: st.key.Group,
		Seq: st.store.Contiguous(), Epoch: p.epoch,
	}
	p.send(to, &ack)
}

func (p *Primary) onLogSyncAck(from transport.Addr, pkt *wire.Packet) {
	if p.observeEpoch(pkt.Epoch) {
		return // the replica knows a newer primary: we just self-demoted
	}
	if p.staleAuthority(pkt.Epoch) {
		p.stats.StaleSyncAcks++
		p.mx.staleSyncAcks.Inc()
		p.mx.sink.Emit(p.now(), obs.KindFenceHit, uint64(p.epoch), uint64(pkt.Epoch), uint64(pkt.Type))
		return
	}
	p.stats.LogSyncAcks++
	key := KeyOf(pkt)
	for _, r := range p.replicas {
		if r.addr == from {
			r.lastSeen = p.now()
			if pkt.Seq > r.acked[key] {
				r.acked[key] = pkt.Seq
				// Direct fan-in progress mints quorum-gated acks too (the
				// ring path acks on token return).
				if p.quorumOn() {
					if st := p.streams[key]; st != nil {
						p.ackSource(st)
					}
				}
			}
			return
		}
	}
}

func (p *Primary) onStateQuery(from transport.Addr, pkt *wire.Packet) {
	p.stats.StateQueries++
	key := KeyOf(pkt)
	var contig uint64
	if st := p.streams[key]; st != nil {
		contig = st.store.Contiguous()
	}
	reply := wire.Packet{
		Type: wire.TypeLogStateReply, Source: pkt.Source, Group: pkt.Group,
		Seq: contig, Epoch: p.epoch,
	}
	p.send(from, &reply)
}

// onPromote turns a replica into the acting primary: it joins the
// multicast group, records the promoting source's address, and from then
// on acknowledges and serves like a primary (§2.2.3).
//
// The packet's Seq carries the source's release watermark: every sequence
// number at or below it has left the source's retention buffer, so if this
// replica's log ends earlier (it was not actually the most up-to-date, or
// replication lagged the release rule), the gap can only be recovered from
// peer replicas — a backfill episode starts. The replica also adopts its
// peers as replication targets so the dual-sequence-number durability story
// survives the failover.
func (p *Primary) onPromote(from transport.Addr, pkt *wire.Packet) {
	if !p.cfg.UnsafeNoFence && pkt.Epoch < p.epoch {
		// A delayed or replayed promotion from a superseded election; acting
		// on it would resurrect exactly the split-brain the epoch prevents.
		p.stats.StalePromotes++
		p.mx.stalePromotes.Inc()
		p.mx.sink.Emit(p.now(), obs.KindFenceHit, uint64(p.epoch), uint64(pkt.Epoch), uint64(pkt.Type))
		return
	}
	if pkt.Epoch > p.epoch {
		p.mx.sink.Emit(p.now(), obs.KindEpochBump, uint64(p.epoch), uint64(pkt.Epoch), 0)
		p.epoch = pkt.Epoch
		p.mx.epoch.Set(int64(p.epoch))
	}
	if !p.replica {
		// Re-promoted while already acting (the sender re-elected us, e.g.
		// after a fruitless probe round): adopt the fresh epoch, refresh the
		// source address, and prove liveness; the roles are already right.
		st := p.stream(KeyOf(pkt))
		st.source = from
		if floor := pkt.Seq; floor > st.store.Contiguous() && p.backfill == nil {
			p.startBackfill(st, floor)
		}
		p.ackSource(st)
		return
	}
	p.replica = false
	p.ring.active = false // the ring role died with the old primary
	p.stats.Promotions++
	p.mx.promotions.Inc()
	p.mx.sink.Emit(p.now(), obs.KindPromote, uint64(p.epoch), pkt.Seq, 0)
	if len(p.replicas) == 0 {
		for _, a := range p.cfg.Peers {
			p.replicas = append(p.replicas, &replicaState{addr: a, acked: make(map[StreamKey]uint64)})
		}
	}
	p.joinAndSync()
	// A promoted primary cannot assume the old ring survived the fault that
	// elected it: start in direct fan-in and probe a ring out of the peers
	// that prove themselves live.
	p.initQuorum(false)
	st := p.stream(KeyOf(pkt))
	st.source = from
	if floor := pkt.Seq; floor > st.store.Contiguous() {
		p.startBackfill(st, floor)
	}
	p.ackSource(st)
}

// onPrimaryRedirect handles the source's group-wide announcement of where
// the log lives now. An acting primary that is NOT the named server has
// been superseded — the source elected someone else, typically after this
// server was unreachable long enough to be declared dead — and must step
// down, or the deployment ends up with two acting primaries (split-brain):
// both acknowledge sources and serve clients from logs that then diverge.
// Demotion is safe: the log is kept, the server keeps answering NACKs and
// state queries like any replica, and it can be promoted again later.
//
// The redirect carries the epoch of the election that produced it: one
// from an older epoch is fenced (a delayed multicast must not demote the
// rightful primary of a later election).
func (p *Primary) onPrimaryRedirect(pkt *wire.Packet) {
	if p.replica {
		return
	}
	addr, err := p.env.ParseAddr(pkt.Addr)
	if err != nil {
		p.stats.Malformed++
		return
	}
	if !p.cfg.UnsafeNoFence && pkt.Epoch < p.epoch {
		p.stats.StaleRedirects++
		p.mx.staleRedirects.Inc()
		p.mx.sink.Emit(p.now(), obs.KindFenceHit, uint64(p.epoch), uint64(pkt.Epoch), uint64(pkt.Type))
		return
	}
	if pkt.Epoch > p.epoch && !p.cfg.UnsafeNoFence {
		p.mx.sink.Emit(p.now(), obs.KindEpochBump, uint64(p.epoch), uint64(pkt.Epoch), 0)
		p.epoch = pkt.Epoch
		p.mx.epoch.Set(int64(p.epoch))
	}
	if addr.String() == p.env.LocalAddr().String() {
		return // the redirect names us: we are the rightful primary
	}
	p.demote()
}

// startBackfill begins recovering (Contiguous, floor] — packets the source
// has released — from peer replicas. Peers are probed with LogStateQuery
// (confirming liveness and waking their state); any reply triggers a NACK
// for the still-missing ranges, which the peer serves from its log. When no
// peer can help within MaxRetries, the hole is declared unrecoverable and
// skipped so the acknowledgement watermark (and with it the source's
// retention buffer) is not wedged forever.
func (p *Primary) startBackfill(st *priStream, floor uint64) {
	if len(p.cfg.Peers) == 0 {
		p.skipBackfillHole(st, floor)
		return
	}
	p.stats.BackfillsStarted++
	p.mx.backfills.Inc()
	bf := &backfillState{st: st, floor: floor, lastContig: st.store.Contiguous()}
	p.backfill = bf
	q := wire.Packet{
		Type: wire.TypeLogStateQuery, Source: st.key.Source, Group: st.key.Group,
	}
	for _, a := range p.cfg.Peers {
		p.send(a, &q)
	}
	p.armBackfillRetry(bf)
}

func (p *Primary) armBackfillRetry(bf *backfillState) {
	d := transport.Backoff{Base: p.cfg.RequestTimeout}.Interval(bf.retries, p.env.Rand())
	bf.timer = p.after(d, func() {
		bf.timer = nil
		p.backfillRetry(bf)
	})
}

// backfillRetry re-probes the peers (or gives up) when a retry interval
// elapses without the hole closing.
func (p *Primary) backfillRetry(bf *backfillState) {
	if p.backfill != bf {
		return
	}
	contig := bf.st.store.Contiguous()
	if contig >= bf.floor {
		p.finishBackfill(bf)
		return
	}
	if contig > bf.lastContig {
		bf.lastContig = contig
		bf.fruitless = 0
	} else {
		bf.fruitless++
	}
	bf.retries++
	if bf.retries >= p.cfg.MaxRetries || bf.fruitless >= 3 {
		p.skipBackfillHole(bf.st, bf.floor)
		p.finishBackfill(bf)
		return
	}
	// Keep acknowledging the source while the episode runs: the ack carries
	// an unchanged watermark but proves this primary is alive and working,
	// so the source does not keep re-electing while the log recovers.
	p.ackSource(bf.st)
	q := wire.Packet{
		Type: wire.TypeLogStateQuery, Source: bf.st.key.Source, Group: bf.st.key.Group,
	}
	for _, a := range p.cfg.Peers {
		p.send(a, &q)
	}
	p.armBackfillRetry(bf)
}

// onPeerStateReply handles a peer replica's LogStateReply during backfill:
// a live peer is asked (via NACK) for everything still missing below the
// floor, regardless of its reported contiguous sequence — a peer whose own
// log has an early hole may still hold the later packets we need.
func (p *Primary) onPeerStateReply(from transport.Addr, pkt *wire.Packet) {
	bf := p.backfill
	if bf == nil {
		return
	}
	st := bf.st
	if KeyOf(pkt) != st.key {
		return
	}
	if st.store.Contiguous() >= bf.floor {
		p.finishBackfill(bf)
		return
	}
	ranges := st.store.Missing(bf.floor, wire.MaxNackRanges)
	if len(ranges) == 0 {
		p.finishBackfill(bf)
		return
	}
	nack := wire.Packet{
		Type: wire.TypeNack, Source: st.key.Source, Group: st.key.Group,
		Ranges: ranges,
	}
	p.send(from, &nack)
	p.stats.BackfillNacks++
	p.mx.backfillNacks.Inc()
}

// finishBackfill ends the episode (the hole is closed or skipped) and
// re-acknowledges the source with the advanced watermark.
func (p *Primary) finishBackfill(bf *backfillState) {
	if bf.timer != nil {
		bf.timer.Stop()
		bf.timer = nil
	}
	if p.backfill == bf {
		p.backfill = nil
	}
	p.ackSource(bf.st)
}

// skipBackfillHole declares (Contiguous, floor] unrecoverable: no peer can
// serve it and the source has released it. The store advances past the hole
// so acknowledgement progress resumes; clients NACKing into the hole see it
// as evicted and abandon through their own escalation path.
func (p *Primary) skipBackfillHole(st *priStream, floor uint64) {
	contig := st.store.Contiguous()
	if floor <= contig {
		return
	}
	missing := uint64(0)
	for _, r := range st.store.Missing(floor, 0) {
		missing += r.Count()
	}
	st.store.Advance(floor)
	p.stats.BackfillSkipped += missing
	p.mx.backfillSkipped.Add(missing)
	p.mx.sink.Emit(p.now(), obs.KindSkipAhead, contig, floor, missing)
	// Replicas can never recover the hole either (this primary was elected
	// as the most up-to-date copy): ship them an advance record so their
	// cumulative acks cross the gap instead of wedging below it, and so a
	// later promotion does not re-serve the whole skip.
	for _, r := range p.replicas {
		p.sendAdvance(st, r.addr, floor)
	}
}

// checkGaps arms the aggregation timer for the primary's own recovery from
// the source.
func (p *Primary) checkGaps(st *priStream) {
	p.checkGapsUpTo(st, 0)
}

func (p *Primary) checkGapsUpTo(st *priStream, hi uint64) {
	if hi < st.store.Highest() {
		hi = st.store.Highest()
	}
	if len(st.store.Missing(hi, 1)) == 0 && len(st.pendingReq) == 0 {
		return
	}
	if st.nackTimer != nil || st.retryTimer != nil {
		return
	}
	st.nackTimer = p.after(p.cfg.NackDelay, func() {
		st.nackTimer = nil
		st.retries = 0
		p.fetchFromSource(st, hi)
	})
}

// fetchFromSource NACKs the source for the primary's own missing packets;
// the source serves them from its retention buffer (it may not discard
// until the primary acknowledges, §2.2).
func (p *Primary) fetchFromSource(st *priStream, hi uint64) {
	if hi < st.store.Highest() {
		hi = st.store.Highest()
	}
	ranges := st.store.Missing(hi, wire.MaxNackRanges)
	// A hole under an active backfill floor belongs to the peer replicas,
	// not the source: the source has released everything at or below the
	// floor and can never serve it.
	if bf := p.backfill; bf != nil && bf.st == st {
		trimmed := ranges[:0]
		for _, r := range ranges {
			if r.To <= bf.floor {
				continue
			}
			if r.From <= bf.floor {
				r.From = bf.floor + 1
			}
			trimmed = append(trimmed, r)
		}
		ranges = trimmed
	}
	// Include packets requested by clients that we never saw at all
	// (beyond hi).
	for seq := range st.pendingReq {
		if !st.store.Seen(seq) && seq > hi {
			ranges = append(ranges, wire.SeqRange{From: seq, To: seq})
		}
	}
	if len(ranges) == 0 || st.source == nil {
		st.retries = 0
		return
	}
	if len(ranges) > wire.MaxNackRanges {
		ranges = ranges[:wire.MaxNackRanges]
	}
	if st.retries >= p.cfg.MaxRetries {
		st.retries = 0
		return
	}
	st.retries++
	nack := wire.Packet{
		Type: wire.TypeNack, Source: st.key.Source, Group: st.key.Group,
		Ranges: ranges,
	}
	p.send(st.source, &nack)
	p.stats.NacksToSource++
	p.mx.nacksToSource.Inc()
	// Jittered exponential backoff (see Secondary.fetchMissing): the primary
	// must not hammer a source that is down or partitioned at a fixed period.
	retry := transport.Backoff{Base: p.cfg.RequestTimeout}.Interval(st.retries-1, p.env.Rand())
	st.retryTimer = p.after(retry, func() {
		st.retryTimer = nil
		p.fetchFromSource(st, 0)
	})
}

func (p *Primary) send(to transport.Addr, pkt *wire.Packet) {
	buf, err := pkt.AppendMarshal(p.scratch[:0])
	if err != nil {
		return
	}
	p.scratch = buf
	p.mx.tx.Record(int(wire.ClassOf(pkt.Type)), len(buf))
	_ = p.env.Send(to, buf)
}
