package logger

import (
	"testing"
	"time"

	"lbrm/internal/transport"
	"lbrm/internal/transport/transporttest"
	"lbrm/internal/wire"
)

func batch(child string, n int) RepairBatch {
	seqs := make([]uint64, n)
	for i := range seqs {
		seqs[i] = uint64(i + 1)
	}
	return RepairBatch{Child: transporttest.Addr(child), Seqs: seqs}
}

func TestScheduleRepairsLPTBeatsFIFO(t *testing.T) {
	// A small early request ahead of a huge one is the FIFO worst case:
	// the big child's relay tail starts late.
	fifo := []RepairBatch{batch("small", 1), batch("big", 100), batch("mid", 10)}
	fifoSpan := RepairMakespan(fifo)
	lpt := append([]RepairBatch(nil), fifo...)
	ScheduleRepairs(lpt)
	lptSpan := RepairMakespan(lpt)
	if lpt[0].Child != transporttest.Addr("big") || lpt[2].Child != transporttest.Addr("small") {
		t.Fatalf("LPT order = %v", lpt)
	}
	// FIFO: completions 1+1, 101+100, 111+10 → 201.
	// LPT: 100+100, 110+10, 111+1 → 200; span(LPT) ≤ span(FIFO) always.
	if fifoSpan != 201 || lptSpan != 200 {
		t.Fatalf("makespan fifo=%d lpt=%d, want 201/200", fifoSpan, lptSpan)
	}
	if lptSpan > fifoSpan {
		t.Fatalf("LPT makespan %d worse than FIFO %d", lptSpan, fifoSpan)
	}
}

func TestScheduleRepairsStableOnTies(t *testing.T) {
	b := []RepairBatch{batch("a", 2), batch("b", 2), batch("c", 5), batch("d", 2)}
	ScheduleRepairs(b)
	got := []string{string(b[0].Child.(transporttest.Addr)), string(b[1].Child.(transporttest.Addr)),
		string(b[2].Child.(transporttest.Addr)), string(b[3].Child.(transporttest.Addr))}
	want := []string{"c", "a", "b", "d"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("schedule order = %v, want %v", got, want)
		}
	}
}

// TestSecondaryMakespanRepairOrdering: with MakespanRepair on, locally
// served NACKs batch for one NackDelay and release largest-demand-first;
// a duplicate request within the window is not served twice.
func TestSecondaryMakespanRepairOrdering(t *testing.T) {
	s, env := newSecondary(t, SecondaryConfig{
		MakespanRepair: true,
		NackDelay:      10 * time.Millisecond,
		RemcastThreshold: 99, // keep everything unicast in this test
	})
	for seq := uint64(1); seq <= 6; seq++ {
		s.Recv(srcAddr, mustMarshal(t, dataPkt(seq, "x")))
	}
	// Small demand arrives first, then the big one, then a duplicate.
	s.Recv(rcvA, mustMarshal(t, nackPkt(wire.SeqRange{From: 1, To: 1})))
	s.Recv(rcvB, mustMarshal(t, nackPkt(wire.SeqRange{From: 2, To: 5})))
	s.Recv(rcvA, mustMarshal(t, nackPkt(wire.SeqRange{From: 1, To: 1})))
	if len(env.Sents) != 0 {
		t.Fatalf("repairs released before the scheduling window closed: %d", len(env.Sents))
	}
	env.Advance(15 * time.Millisecond)
	sents := env.SentPackets()
	if len(sents) != 5 {
		t.Fatalf("released %d repairs, want 5 (4 big + 1 small, dup dropped)", len(sents))
	}
	// Largest demand first: rcvB's four repairs, then rcvA's one.
	for i, p := range sents {
		wantTo := transport.Addr(rcvB)
		if i == 4 {
			wantTo = rcvA
		}
		if env.Sents[i].To != wantTo {
			t.Fatalf("repair %d to %v, want %v", i, env.Sents[i].To, wantTo)
		}
		if p.Type != wire.TypeRetrans {
			t.Fatalf("repair %d type = %v", i, p.Type)
		}
	}
	if got := s.Stats(); got.RetransUnicast != 5 {
		t.Fatalf("stats = %+v, want 5 unicast repairs", got)
	}
}

// TestSecondaryMakespanRepairCoalesces: demand from RemcastThreshold
// children within one window folds into a single site re-multicast.
func TestSecondaryMakespanRepairCoalesces(t *testing.T) {
	s, env := newSecondary(t, SecondaryConfig{
		MakespanRepair: true,
		NackDelay:      10 * time.Millisecond,
		RemcastThreshold: 3,
	})
	s.Recv(srcAddr, mustMarshal(t, dataPkt(1, "hot")))
	for _, r := range []transport.Addr{rcvA, rcvB, rcvC} {
		s.Recv(r, mustMarshal(t, nackPkt(wire.SeqRange{From: 1, To: 1})))
	}
	env.Advance(15 * time.Millisecond)
	if got := s.Stats(); got.Remulticasts != 1 || got.RetransUnicast != 0 {
		t.Fatalf("stats = %+v, want one re-multicast and no unicasts", got)
	}
	mc := env.McastPackets()
	if len(mc) != 1 || mc[0].Type != wire.TypeRetrans || mc[0].Seq != 1 {
		t.Fatalf("multicasts = %v", mc)
	}
}
