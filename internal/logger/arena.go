package logger

// arena is a per-stream chunked payload allocator. Packet payloads are
// copied into large append-only chunks instead of one heap allocation per
// packet; a chunk is recycled onto a free list once every payload in it has
// been evicted. Because the store evicts oldest-first and the arena fills
// chunks in arrival order, chunks drain almost in order and the steady
// state (ring at capacity, every Put evicting one packet) allocates
// nothing.
//
// A span returned by alloc stays valid until its release; the bytes it
// references are owned by the arena (callers of Store.Get must copy if
// they retain past the next Put/eviction).

// arenaChunkSize is the payload capacity of one chunk. It comfortably
// exceeds the maximum packet size, so a payload never spans chunks.
const arenaChunkSize = 256 << 10

// span references one payload inside the arena. The zero span (chunk 0,
// n 0) is used for empty payloads and never dereferenced.
type span struct {
	chunk int32
	off   int32
	n     int32
}

type arenaChunk struct {
	buf  []byte
	live int // payloads referencing this chunk and not yet released
}

type arena struct {
	chunks []*arenaChunk
	active int   // index of the chunk being filled (-1 before first alloc)
	free   []int // retired chunks ready for reuse
}

func newArena() arena { return arena{active: -1} }

// alloc copies data into the arena and returns its span.
func (a *arena) alloc(data []byte) span {
	if len(data) == 0 {
		return span{}
	}
	if a.active < 0 || arenaChunkSize-len(a.chunks[a.active].buf) < len(data) {
		a.activate(len(data))
	}
	c := a.chunks[a.active]
	off := len(c.buf)
	c.buf = append(c.buf, data...)
	c.live++
	return span{chunk: int32(a.active), off: int32(off), n: int32(len(data))}
}

// activate makes a chunk with room for size the active one, reusing a
// retired chunk when possible.
func (a *arena) activate(size int) {
	if a.active >= 0 && a.chunks[a.active].live == 0 {
		// The outgoing chunk already drained while active: retire it.
		a.free = append(a.free, a.active)
	}
	if n := len(a.free); n > 0 {
		idx := a.free[n-1]
		a.free = a.free[:n-1]
		a.chunks[idx].buf = a.chunks[idx].buf[:0]
		a.active = idx
		return
	}
	capacity := arenaChunkSize
	if size > capacity {
		capacity = size // defensive; payloads are far below chunk size
	}
	a.chunks = append(a.chunks, &arenaChunk{buf: make([]byte, 0, capacity)})
	a.active = len(a.chunks) - 1
}

// get returns the payload bytes for a span (aliasing arena memory).
func (a *arena) get(sp span) []byte {
	if sp.n == 0 {
		return nil
	}
	return a.chunks[sp.chunk].buf[sp.off : sp.off+sp.n : sp.off+sp.n]
}

// release drops one payload reference; a fully-drained non-active chunk
// goes back on the free list for reuse.
func (a *arena) release(sp span) {
	if sp.n == 0 {
		return
	}
	c := a.chunks[sp.chunk]
	c.live--
	if c.live == 0 && int(sp.chunk) != a.active {
		a.free = append(a.free, int(sp.chunk))
	}
}
