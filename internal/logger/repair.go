package logger

import (
	"slices"

	"lbrm/internal/transport"
)

// Makespan-aware repair scheduling (DESIGN.md §13). When a tier rebuilds
// after a fault — a healed partition, a re-homed subtree backfilling — a
// parent logger faces many children NACKing large ranges at once. Serving
// them FIFO lets one early small request delay the fleet's largest
// recovery. The parent instead batches demand for one NackDelay window and
// releases it largest-demand-first: under the relay model (the parent
// serializes repairs on its downlink and a child completes one relay
// period after its last repair, forwarding/applying what it received), the
// child with the most outstanding work also has the longest tail, so
// ordering by descending demand is Jackson's rule for single-machine
// scheduling with delivery times and minimizes the fleet-wide recovery
// makespan. Opt-in via SecondaryConfig.MakespanRepair; off, repairs are
// served FIFO as each NACK arrives, byte-identical to the flat design.

// RepairBatch is one child's outstanding repair demand within a scheduling
// window.
type RepairBatch struct {
	// Child is the requester the repairs are owed to.
	Child transport.Addr
	// Seqs are the demanded sequence numbers in request order.
	Seqs []uint64

	// stream is the owning stream when the batch was queued by a live
	// Secondary (nil in pure scheduling tests).
	stream *secStream
}

// ScheduleRepairs orders batches to minimize fleet-wide recovery makespan:
// largest demand first, stable for equal demands so arrival order still
// breaks ties deterministically.
func ScheduleRepairs(batches []RepairBatch) {
	slices.SortStableFunc(batches, func(a, b RepairBatch) int {
		switch {
		case len(a.Seqs) > len(b.Seqs):
			return -1
		case len(a.Seqs) < len(b.Seqs):
			return 1
		}
		return 0
	})
}

// RepairMakespan evaluates a release order under the relay model: the
// parent serializes batches (serve cost = demand size, in repair-slot
// units) and each child completes its recovery one relay period — again
// its demand size, the time to apply and forward what it received — after
// its last repair is released. The fleet makespan is the latest child
// completion.
func RepairMakespan(batches []RepairBatch) int {
	served, makespan := 0, 0
	for _, b := range batches {
		served += len(b.Seqs)
		if done := served + len(b.Seqs); done > makespan {
			makespan = done
		}
	}
	return makespan
}

// queueRepair records one locally-servable (child, seq) demand in the
// current scheduling window, opening the window if it is the first.
func (s *Secondary) queueRepair(st *secStream, seq uint64, from transport.Addr) {
	for i := range s.repairQ {
		b := &s.repairQ[i]
		if b.Child == from && b.stream == st {
			if slices.Contains(b.Seqs, seq) {
				return // duplicate request within the window
			}
			b.Seqs = append(b.Seqs, seq)
			return
		}
	}
	s.repairQ = append(s.repairQ, RepairBatch{Child: from, Seqs: []uint64{seq}, stream: st})
	if s.repairTimer == nil {
		s.repairTimer = s.after(s.cfg.NackDelay, s.releaseRepairs)
	}
}

// releaseRepairs closes the scheduling window: hot sequences demanded by
// RemcastThreshold children coalesce into one site re-multicast (§2.2.1),
// then the remaining unicast batches go out largest-demand-first.
func (s *Secondary) releaseRepairs() {
	s.repairTimer = nil
	q := s.repairQ
	s.repairQ = nil
	if len(q) == 0 {
		return
	}
	type streamSeq struct {
		st  *secStream
		seq uint64
	}
	counts := make(map[streamSeq]int)
	for _, b := range q {
		for _, seq := range b.Seqs {
			counts[streamSeq{b.stream, seq}]++
		}
	}
	remulticast := make(map[streamSeq]bool)
	for k, n := range counts {
		if n >= s.cfg.RemcastThreshold {
			remulticast[k] = true
			s.retransmit(k.st, k.seq, nil, false)
		}
	}
	ScheduleRepairs(q)
	for _, b := range q {
		for _, seq := range b.Seqs {
			if remulticast[streamSeq{b.stream, seq}] {
				continue
			}
			s.retransmit(b.stream, seq, b.Child, false)
		}
	}
}
